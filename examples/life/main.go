// Life: APL-style programming with the SAC array library.
//
// The paper's premise is that WITH-loop-defined library functions enable
// "a very generic programming style where application programs are
// constructed in multiple layers of abstractions" (§1) — the APL
// tradition. The canonical APL showpiece is Conway's Game of Life as a
// composition of whole-array operations, and the library built for MG
// already contains everything needed: Rotate for the neighbourhood,
// element-wise arithmetic for the counts, relational operators and Where
// for the rule. The board is periodic — the same toroidal topology as the
// MG benchmark's grids.
//
//	go run ./examples/life [-n 32] [-steps 40]
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/sacmg"
)

// step advances the board one generation, entirely with array operations:
//
//	neighbours = Σ rotations of the board over the 8 offsets
//	survive    = board ∧ (neighbours == 2 ∨ neighbours == 3)
//	born       = ¬board ∧ (neighbours == 3)
func step(env *sacmg.Env, board *sacmg.Array) *sacmg.Array {
	neigh := sacmg.NewArray(board.Shape())
	for di := -1; di <= 1; di++ {
		for dj := -1; dj <= 1; dj++ {
			if di == 0 && dj == 0 {
				continue
			}
			shifted := sacmg.Rotate(env, 1, dj, sacmg.Rotate(env, 0, di, board))
			neigh = sacmg.Add(env, neigh, shifted)
		}
	}
	two := sacmg.GenarrayVal(env, board.Shape(), 2)
	three := sacmg.GenarrayVal(env, board.Shape(), 3)
	is2 := sacmg.Eq(env, neigh, two)
	is3 := sacmg.Eq(env, neigh, three)
	// survive: alive and (2 or 3 neighbours); born: dead and exactly 3.
	twoOrThree := sacmg.Greater(env, sacmg.Add(env, is2, is3), sacmg.NewArray(board.Shape()))
	survive := sacmg.Mul(env, board, twoOrThree)
	return sacmg.Where(env, board, survive, is3)
}

func main() {
	n := flag.Int("n", 32, "board extent")
	steps := flag.Int("steps", 40, "generations to run")
	flag.Parse()

	env := sacmg.NewEnv()
	board := sacmg.NewArray(sacmg.ShapeOf(*n, *n))
	// A glider and a blinker.
	for _, p := range [][2]int{{1, 2}, {2, 3}, {3, 1}, {3, 2}, {3, 3}} {
		board.Set(sacmg.Index{p[0], p[1]}, 1)
	}
	for _, p := range [][2]int{{10, 10}, {10, 11}, {10, 12}} {
		board.Set(sacmg.Index{p[0], p[1]}, 1)
	}

	fmt.Printf("Game of Life on a %d² torus, %d generations, pure array operations\n\n",
		*n, *steps)
	for g := 0; g <= *steps; g++ {
		if g%(*steps/4) == 0 {
			fmt.Printf("generation %d (population %.0f):\n", g, sacmg.Sum(env, board))
			render(board)
		}
		board = step(env, board)
	}
	fmt.Println("The glider crosses the periodic boundary and reappears on the")
	fmt.Println("other side — the same wrap-around the MG grids use.")
}

func render(board *sacmg.Array) {
	shp := board.Shape()
	for i := 0; i < shp[0]; i++ {
		var line strings.Builder
		for j := 0; j < shp[1]; j++ {
			if board.At(sacmg.Index{i, j}) != 0 {
				line.WriteByte('#')
			} else {
				line.WriteByte('.')
			}
		}
		fmt.Println(line.String())
	}
	fmt.Println()
}
