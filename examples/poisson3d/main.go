// Poisson3D: solve a 3-D Poisson problem with the paper's generic
// multigrid solver and watch the residual contract.
//
// The NAS benchmark poses ∇²u = v with periodic boundaries and a
// right-hand side of twenty ±1 point charges. This example poses a
// smoother physical problem — a smooth zero-mean charge distribution on a
// 64³ periodic grid — and runs MGrid V-cycles one by one, printing the
// residual norm after each. Multigrid's signature property is visible
// immediately: the residual shrinks by a near-constant factor every cycle,
// independent of the grid size.
//
//	go run ./examples/poisson3d [-n 64] [-cycles 8]
package main

import (
	"flag"
	"fmt"
	"math"

	"repro/sacmg"
)

func main() {
	n := flag.Int("n", 64, "interior grid extent per axis (power of two)")
	cycles := flag.Int("cycles", 8, "number of V-cycles")
	flag.Parse()
	if *n&(*n-1) != 0 || *n < 4 {
		fmt.Println("n must be a power of two >= 4")
		return
	}

	env := sacmg.NewEnv()
	solver := sacmg.NewSolver(env)

	// Build the right-hand side on the extended grid: a zero-mean smooth
	// charge distribution (three crossed sine modes).
	m := *n + 2
	shp := sacmg.ShapeOf(m, m, m)
	v := sacmg.NewArray(shp)
	h := 2 * math.Pi / float64(*n)
	for i := 1; i <= *n; i++ {
		for j := 1; j <= *n; j++ {
			for k := 1; k <= *n; k++ {
				x, y, z := float64(i-1)*h, float64(j-1)*h, float64(k-1)*h
				v.Set3(i, j, k, math.Sin(x)*math.Cos(2*y)*math.Sin(3*z))
			}
		}
	}

	residNorm := func(u *sacmg.Array) float64 {
		au := solver.Resid(u)
		r := sacmg.Sub(env, v, au)
		env.Release(au)
		sum := 0.0
		for i := 1; i <= *n; i++ {
			for j := 1; j <= *n; j++ {
				for k := 1; k <= *n; k++ {
					x := r.At3(i, j, k)
					sum += x * x
				}
			}
		}
		env.Release(r)
		return math.Sqrt(sum / float64((*n)*(*n)*(*n)))
	}

	fmt.Printf("Poisson problem on a %d³ periodic grid\n", *n)
	u := sacmg.NewArray(shp)
	prev := residNorm(u)
	fmt.Printf("cycle  0: ||r|| = %.6e\n", prev)
	for c := 1; c <= *cycles; c++ {
		// One MGrid iteration = one residual evaluation + one V-cycle
		// correction (paper Fig. 4).
		next := solver.MGrid(v, 1)
		if c == 1 {
			env.Release(u)
			u = next
		} else {
			// Continue from the current u: r = v - A·u; u += VCycle(r).
			env.Release(next)
			au := solver.Resid(u)
			r := sacmg.Sub(env, v, au)
			env.Release(au)
			z := solver.VCycle(r)
			env.Release(r)
			u2 := sacmg.Add(env, u, z)
			env.Release(z)
			env.Release(u)
			u = u2
		}
		cur := residNorm(u)
		fmt.Printf("cycle %2d: ||r|| = %.6e   contraction %.3f\n", c, cur, cur/prev)
		prev = cur
	}

	fmt.Printf("\nsolution range: max|u| = %.6f (finite: %v)\n",
		sacmg.MaxAbs(env, u), !math.IsNaN(sacmg.Sum(env, u)))
	fmt.Println("A near-constant contraction factor per cycle is the multigrid property")
	fmt.Println("the V-cycle exists to deliver (paper §3).")
}
