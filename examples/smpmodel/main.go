// SMPModel: predict parallel performance with the SMP cost model.
//
// The paper's Figures 12/13 were measured on a 12-processor SUN Ultra
// Enterprise 4000. This example shows the substitution used to reproduce
// them on a single-core machine (DESIGN.md §4): run the real SAC-style
// benchmark once with the kernel probe attached, feed the measured work
// profile to the calibrated machine model, and print the predicted speedup
// curve — plus what-if variants that expose the model's structure:
// disabling the memory manager's cost, the adaptive sequential threshold,
// or the fork/join overhead.
//
//	go run ./examples/smpmodel [-class W]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/nas"
	"repro/internal/smp"
	wl "repro/internal/withloop"
)

func main() {
	className := flag.String("class", "W", "NPB size class to profile")
	flag.Parse()
	class, err := nas.ClassByName(*className)
	if err != nil {
		fmt.Println(err)
		return
	}

	// 1. Measure: one real serial benchmark run with the probe attached.
	col := smp.NewCollector("SAC", class)
	env := wl.Default()
	b := core.NewBenchmark(class, env)
	b.Solver.Probe = col.Probe
	rnm2, _ := b.Run()
	profile := col.Profile()
	fmt.Printf("measured profile (verified run, rnm2 = %.6e):\n%s\n", rnm2, profile)

	// 2. Predict: the calibrated Enterprise 4000 model.
	machine := smp.Enterprise4000()
	fmt.Printf("predicted execution on the simulated SMP, P = 1..%d\n\n", machine.MaxProcs)
	header := fmt.Sprintf("%-34s", "variant")
	for p := 1; p <= machine.MaxProcs; p++ {
		header += fmt.Sprintf("%6d", p)
	}
	fmt.Println(header)

	show := func(label string, tr smp.Traits) {
		fmt.Printf("%-34s", label)
		for _, s := range machine.Speedups(profile, tr) {
			fmt.Printf("%6.2f", s)
		}
		fmt.Println()
	}

	show("SAC (calibrated)", smp.SAC)

	noAlloc := smp.SAC
	noAlloc.Name = "SAC, free memory manager"
	noAlloc.AllocCost = 0
	noAlloc.AllocFrac = 0
	show("  - without memory-manager cost", noAlloc)

	noAdaptive := smp.SAC
	noAdaptive.Name = "SAC, no sequential threshold"
	noAdaptive.Adaptive = false
	show("  - without sequential threshold", noAdaptive)

	freeFork := smp.SAC
	freeFork.Name = "SAC, free fork/join"
	freeFork.ForkJoin = 0
	show("  - without fork/join overhead", freeFork)

	fmt.Println()
	fmt.Println("The gap between the first two rows is the paper's diagnosis: dynamic")
	fmt.Println("memory management costs are invariant in grid size, so they cap the")
	fmt.Println("speedup on the small grids at the bottom of the V-cycle (§5).")
	fmt.Println()

	// 3. Robustness: how much does each calibrated constant matter?
	machine.WriteSensitivity(os.Stdout, profile, smp.SAC)
}
