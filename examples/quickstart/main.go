// Quickstart: the SAC array library in five minutes.
//
// This example walks through the building blocks the paper's MG program is
// made of: first-class n-dimensional arrays, WITH-loops, the array-library
// functions of Fig. 10, and finally the verified NAS MG benchmark itself.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/sacmg"
)

func main() {
	// An environment is the runtime of a "compiled SAC program":
	// scheduler, memory manager and optimization level.
	env := sacmg.NewEnv()

	// --- WITH-loops ------------------------------------------------------
	// with ( . <= iv <= . ) genarray([4,4], iv[0]*10 + iv[1])
	shp := sacmg.ShapeOf(4, 4)
	a := env.Genarray(shp, sacmg.Full(shp), func(iv sacmg.Index) float64 {
		return float64(iv[0]*10 + iv[1])
	})
	fmt.Println("genarray over the full range:")
	printMatrix(a)

	// A generator with a step filter: every second column.
	striped := env.Genarray(shp, sacmg.Full(shp).WithStep([]int{1, 2}),
		func(iv sacmg.Index) float64 { return 1 })
	fmt.Println("genarray with step [1,2] (zeros outside the generator):")
	printMatrix(striped)

	// fold: a reduction over an index set.
	total := env.Fold(shp, sacmg.Inner(shp),
		func(acc, v float64) float64 { return acc + v }, 0,
		func(iv sacmg.Index) float64 { return a.At(iv) })
	fmt.Printf("fold(+) over the inner elements: %g\n\n", total)

	// --- the array library (paper Fig. 10) --------------------------------
	big := sacmg.GenarrayVal(env, sacmg.ShapeOf(8, 8), 1)
	small := sacmg.Condense(env, 2, big) // every 2nd element per axis
	fmt.Printf("condense(2, 8x8 of ones) has shape %v, sum %g\n",
		small.Shape(), sacmg.Sum(env, small))

	spread := sacmg.Scatter(env, 2, small) // back to 8x8, zeros between
	fmt.Printf("scatter(2, ...) has shape %v, sum %g (values only at even positions)\n",
		spread.Shape(), sacmg.Sum(env, spread))

	frame := sacmg.Embed(env, sacmg.ShapeOf(6, 6), []int{1, 1}, small)
	fmt.Printf("embed into 6x6 at [1,1]: corner value %g, centre value %g\n",
		frame.At(sacmg.Index{0, 0}), frame.At(sacmg.Index{1, 1}))

	back := sacmg.Take(env, small.Shape(), sacmg.Embed(env, sacmg.ShapeOf(5, 5), []int{0, 0}, small))
	fmt.Printf("take(shape(a), embed(..., a)) == a: %v\n\n", back.Equal(small))

	// --- element-wise arithmetic and reductions ---------------------------
	x := sacmg.FromSlice(sacmg.ShapeOf(4), []float64{1, 2, 3, 4})
	y := sacmg.FromSlice(sacmg.ShapeOf(4), []float64{10, 20, 30, 40})
	fmt.Printf("x + y        = %v\n", sacmg.Add(env, x, y))
	fmt.Printf("y - x        = %v\n", sacmg.Sub(env, y, x))
	fmt.Printf("sum(x)       = %g\n", sacmg.Sum(env, x))
	fmt.Printf("maxabs(y)    = %g\n", sacmg.MaxAbs(env, y))
	fmt.Printf("rotate(x, 1) = %v\n\n", sacmg.Rotate(env, 0, 1, x))

	// --- the real thing: NAS MG, class S ----------------------------------
	bench := sacmg.NewBenchmark(sacmg.ClassS, env)
	rnm2, _ := bench.Run()
	ok, _ := sacmg.ClassS.Verify(rnm2)
	fmt.Printf("NAS MG class %s: rnm2 = %.10e, verified = %v\n",
		sacmg.ClassS, rnm2, ok)
}

func printMatrix(a *sacmg.Array) {
	shp := a.Shape()
	for i := 0; i < shp[0]; i++ {
		for j := 0; j < shp[1]; j++ {
			fmt.Printf("%5.1f", a.At(sacmg.Index{i, j}))
		}
		fmt.Println()
	}
	fmt.Println()
}
