// MPIHalo: the distributed-memory MG of the paper's future-work section.
//
// "A direct comparison with the MPI-based parallel reference
// implementation of NAS-MG would be interesting" (paper §7). This example
// runs the domain-decomposed solver (internal/mgmpi) on the simulated
// message-passing world across rank counts, verifying each run against
// the official NPB reference and reporting the communication structure —
// the halo-exchange and agglomeration traffic a real MPI run pays for.
//
//	go run ./examples/mpihalo [-class S] [-ranks 1,2,4,8]
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/sacmg"
)

func main() {
	className := flag.String("class", "S", "NPB size class")
	ranksFlag := flag.String("ranks", "1,2,4,8", "comma-separated rank counts (powers of two)")
	flag.Parse()

	class, err := sacmg.ClassByName(*className)
	if err != nil {
		fmt.Println(err)
		return
	}

	fmt.Printf("NAS MG class %s, slab-decomposed over a simulated MPI world\n\n", class)
	fmt.Printf("%6s %14s %9s %10s %12s %12s %10s\n",
		"ranks", "rnm2", "verified", "time", "messages", "volume", "msg/iter")
	for _, tok := range strings.Split(*ranksFlag, ",") {
		ranks, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fmt.Println("bad rank count:", tok)
			return
		}
		s := sacmg.NewMPISolver(class, ranks)
		start := time.Now()
		rnm2, _ := s.Run()
		elapsed := time.Since(start)
		verified, _ := class.Verify(rnm2)
		st := s.Stats()
		fmt.Printf("%6d %14.6e %9v %10v %12d %9.2f MB %10.1f\n",
			ranks, rnm2, verified, elapsed.Round(time.Millisecond),
			st.Messages, float64(st.Bytes)/1e6,
			float64(st.Messages)/float64(class.Iter))
	}

	// The NPB MPI reference uses 3-D processor grids because cubes have
	// less surface per volume than slabs: compare at 8 ranks.
	cube := sacmg.NewMPISolver3D(class, 2, 2, 2)
	rnm2, _ := cube.Run()
	verified, _ := class.Verify(rnm2)
	st := cube.Stats()
	fmt.Printf("%6s %14.6e %9v %10s %12d %9.2f MB %10s\n",
		"(2,2,2)", rnm2, verified, "-", st.Messages, float64(st.Bytes)/1e6, "-")

	fmt.Println()
	fmt.Println("Every row verifies against the official NPB reference norm: the")
	fmt.Println("decomposition changes the communication structure, not the numerics.")
	fmt.Println("(The world is simulated in one address space, so the times show")
	fmt.Println("messaging overhead, not network cost; the message/byte counts are")
	fmt.Println("what a real cluster run would put on the wire.)")
}
