// Heat2D: the paper's dimension-invariance claim in action.
//
// "Although NAS-MG specifically addresses 3-dimensional grids only, this
// SAC code could be reused for grids of any dimension without alteration."
// (paper §4). This example reuses the exact same Solver — MGrid, VCycle,
// Fine2Coarse, Coarse2Fine, SetupPeriodicBorder, unchanged — on a
// 2-dimensional problem: the steady-state heat distribution of a plate
// with periodic edges and a pattern of hot and cold spots. Only the
// stencil coefficient vectors change (the 2-D 9-point Laplacian and its
// companions instead of the NPB 3-D sets), exactly the kind of
// customization the paper advertises for library-level building blocks.
//
//	go run ./examples/heat2d [-n 128] [-cycles 10]
package main

import (
	"flag"
	"fmt"
	"math"
	"strings"

	"repro/sacmg"
)

func main() {
	n := flag.Int("n", 128, "interior grid extent (power of two)")
	cycles := flag.Int("cycles", 10, "number of V-cycles")
	flag.Parse()
	if *n&(*n-1) != 0 || *n < 8 {
		fmt.Println("n must be a power of two >= 8")
		return
	}

	env := sacmg.NewEnv()
	solver := sacmg.NewSolver(env)
	// 2-D coefficient sets: 9-point Laplacian operator, full-weighting
	// restriction (with the 4x coarse-grid compensation), bilinear
	// interpolation, damped point smoother.
	solver.Operator = sacmg.Coeffs{-10.0 / 3.0, 2.0 / 3.0, 1.0 / 6.0, 0}
	solver.Project = sacmg.Coeffs{1.0, 0.5, 0.25, 0}
	solver.Interp = sacmg.Coeffs{1.0, 0.5, 0.25, 0}
	solver.Smoother = sacmg.Coeffs{-0.3, 0.0, 0.0, 0}

	// Heat sources (+) and sinks (−) on the extended 2-D grid; zero mean so
	// the periodic problem is solvable.
	m := *n + 2
	v := sacmg.NewArray(sacmg.ShapeOf(m, m))
	spots := []struct {
		fx, fy, q float64
	}{
		{0.25, 0.25, +1}, {0.75, 0.75, +1}, {0.25, 0.75, -1}, {0.75, 0.25, -1},
	}
	for _, s := range spots {
		ci, cj := 1+int(s.fx*float64(*n)), 1+int(s.fy*float64(*n))
		// A small Gaussian blob around each spot.
		for di := -4; di <= 4; di++ {
			for dj := -4; dj <= 4; dj++ {
				i, j := ci+di, cj+dj
				if i < 1 || i > *n || j < 1 || j > *n {
					continue
				}
				w := math.Exp(-float64(di*di+dj*dj) / 6.0)
				v.Set(sacmg.Index{i, j}, v.At(sacmg.Index{i, j})+s.q*w)
			}
		}
	}
	// Remove the mean.
	mean := 0.0
	for i := 1; i <= *n; i++ {
		for j := 1; j <= *n; j++ {
			mean += v.At(sacmg.Index{i, j})
		}
	}
	mean /= float64((*n) * (*n))
	for i := 1; i <= *n; i++ {
		for j := 1; j <= *n; j++ {
			v.Set(sacmg.Index{i, j}, v.At(sacmg.Index{i, j})-mean)
		}
	}

	residNorm := func(u *sacmg.Array) float64 {
		au := solver.Resid(u)
		r := sacmg.Sub(env, v, au)
		env.Release(au)
		sum := 0.0
		for i := 1; i <= *n; i++ {
			for j := 1; j <= *n; j++ {
				x := r.At(sacmg.Index{i, j})
				sum += x * x
			}
		}
		env.Release(r)
		return math.Sqrt(sum / float64((*n)*(*n)))
	}

	fmt.Printf("2-D heat equation on a %d² periodic plate — same MGrid code as 3-D MG\n", *n)
	u := sacmg.NewArray(sacmg.ShapeOf(m, m))
	fmt.Printf("cycle  0: ||r|| = %.6e\n", residNorm(u))
	env.Release(u)
	u = solver.MGrid(v, *cycles)
	fmt.Printf("cycle %2d: ||r|| = %.6e\n\n", *cycles, residNorm(u))

	// Render the temperature field as ASCII art.
	fmt.Println("steady-state temperature (hot = '#', cold = '.', ambient = ' '):")
	maxAbs := sacmg.MaxAbs(env, u)
	ramp := " .:-=+*%#"
	step := max(*n/48, 1)
	for i := 1; i <= *n; i += step {
		var line strings.Builder
		for j := 1; j <= *n; j += step {
			t := u.At(sacmg.Index{i, j}) / maxAbs // -1..1
			switch {
			case t < -0.15:
				line.WriteByte('.')
			case t > 0.15:
				idx := int(t * float64(len(ramp)-1))
				line.WriteByte(ramp[idx])
			default:
				line.WriteByte(' ')
			}
		}
		fmt.Println(line.String())
	}
	fmt.Printf("\nmax|u| = %.4f; the hot (+) and cold (−) quadrants mirror the sources.\n", maxAbs)
}
