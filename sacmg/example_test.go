package sacmg_test

import (
	"fmt"

	"repro/sacmg"
)

// The complete NAS MG benchmark, verified against the official reference.
func Example() {
	env := sacmg.NewEnv()
	b := sacmg.NewBenchmark(sacmg.ClassS, env)
	rnm2, _ := b.Run()
	ok, _ := sacmg.ClassS.Verify(rnm2)
	fmt.Println("verified:", ok)
	// Output: verified: true
}

// WITH-loops are the single construct everything is built from: a
// generator selects an index set, an operation maps it.
func ExampleEnv_Genarray() {
	env := sacmg.NewEnv()
	shp := sacmg.ShapeOf(3, 3)
	a := env.Genarray(shp, sacmg.Full(shp), func(iv sacmg.Index) float64 {
		return float64(iv[0]*3 + iv[1])
	})
	fmt.Println(sacmg.Sum(env, a))
	// Output: 36
}

// Strided generators express grid selections — here every second element.
func ExampleGen() {
	env := sacmg.NewEnv()
	shp := sacmg.ShapeOf(6)
	g := sacmg.Full(shp).WithStep([]int{2})
	a := env.Genarray(shp, g, func(sacmg.Index) float64 { return 1 })
	fmt.Println(a.Data())
	// Output: [1 0 1 0 1 0]
}

// The Fig. 10 library functions compose: condense∘scatter is the identity.
func ExampleCondense() {
	env := sacmg.NewEnv()
	a := sacmg.FromSlice(sacmg.ShapeOf(2, 2), []float64{1, 2, 3, 4})
	round := sacmg.Condense(env, 2, sacmg.Scatter(env, 2, a))
	fmt.Println(round.Equal(a))
	// Output: true
}

// The rank-generic solver runs unchanged on any dimension; here a
// trivially solvable 3-D system.
func ExampleSolver_MGrid() {
	env := sacmg.NewEnv()
	s := sacmg.NewSolver(env)
	v := sacmg.NewArray(sacmg.ShapeOf(10, 10, 10)) // zero right-hand side
	u := s.MGrid(v, 2)
	fmt.Println(sacmg.MaxAbs(env, u))
	// Output: 0
}

// The distributed solver reports its communication structure.
func ExampleMPISolver() {
	s := sacmg.NewMPISolver(sacmg.ClassS, 2)
	rnm2, _ := s.Run()
	ok, _ := sacmg.ClassS.Verify(rnm2)
	fmt.Println("verified:", ok, "— messages >", s.Stats().Messages > 0)
	// Output: verified: true — messages > true
}
