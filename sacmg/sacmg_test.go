package sacmg_test

import (
	"math"
	"testing"

	"repro/sacmg"
)

// The package-level quick start from the doc comment must work verbatim.
func TestQuickStart(t *testing.T) {
	env := sacmg.NewEnv()
	b := sacmg.NewBenchmark(sacmg.ClassS, env)
	rnm2, _ := b.Run()
	ok, known := sacmg.ClassS.Verify(rnm2)
	if !known || !ok {
		t.Fatalf("quick start did not verify: rnm2 = %v", rnm2)
	}
}

func TestArrayConstruction(t *testing.T) {
	a := sacmg.NewArray(sacmg.ShapeOf(2, 3))
	if a.Dim() != 2 || a.Size() != 6 {
		t.Fatal("NewArray wrong")
	}
	b := sacmg.FromSlice(sacmg.ShapeOf(2), []float64{1, 2})
	if b.At(sacmg.Index{1}) != 2 {
		t.Fatal("FromSlice wrong")
	}
	if sacmg.Scalar(5).Dim() != 0 {
		t.Fatal("Scalar wrong")
	}
}

func TestWithLoopViaFacade(t *testing.T) {
	env := sacmg.NewEnv()
	shp := sacmg.ShapeOf(4, 4)
	a := env.Genarray(shp, sacmg.Full(shp), func(iv sacmg.Index) float64 {
		return float64(iv[0]*4 + iv[1])
	})
	if got := sacmg.Sum(env, a); got != 120 {
		t.Fatalf("Sum = %v, want 120", got)
	}
	inner := env.Genarray(shp, sacmg.Inner(shp), func(sacmg.Index) float64 { return 1 })
	if got := sacmg.Sum(env, inner); got != 4 {
		t.Fatalf("inner Sum = %v, want 4", got)
	}
	g := sacmg.Gen([]int{0, 0}, []int{4, 4})
	if g.Count() != 16 {
		t.Fatalf("Gen Count = %d", g.Count())
	}
}

func TestArrayLibraryViaFacade(t *testing.T) {
	env := sacmg.NewEnv()
	a := sacmg.GenarrayVal(env, sacmg.ShapeOf(4, 4, 4), 2)
	if sacmg.MaxAbs(env, a) != 2 {
		t.Fatal("GenarrayVal/MaxAbs wrong")
	}
	c := sacmg.Condense(env, 2, a)
	if !c.Shape().Equal(sacmg.ShapeOf(2, 2, 2)) {
		t.Fatal("Condense shape wrong")
	}
	s := sacmg.Scatter(env, 2, c)
	if sacmg.Sum(env, s) != 16 {
		t.Fatalf("Scatter sum = %v", sacmg.Sum(env, s))
	}
	e := sacmg.Embed(env, sacmg.ShapeOf(3, 3, 3), []int{0, 0, 0}, c)
	tk := sacmg.Take(env, c.Shape(), e)
	if !tk.Equal(c) {
		t.Fatal("take∘embed identity failed via facade")
	}
	d := sacmg.Drop(env, []int{1, 0, 0}, a)
	if !d.Shape().Equal(sacmg.ShapeOf(3, 4, 4)) {
		t.Fatal("Drop shape wrong")
	}
	sum := sacmg.Add(env, a, a)
	if sacmg.MaxAbs(env, sum) != 4 {
		t.Fatal("Add wrong")
	}
	if sacmg.MaxAbs(env, sacmg.Sub(env, a, a)) != 0 {
		t.Fatal("Sub wrong")
	}
	if sacmg.MaxAbs(env, sacmg.Mul(env, a, a)) != 4 {
		t.Fatal("Mul wrong")
	}
	if sacmg.MaxAbs(env, sacmg.Scale(env, 3, a)) != 6 {
		t.Fatal("Scale wrong")
	}
	if math.Abs(sacmg.L2Norm(env, a)-2) > 1e-15 {
		t.Fatal("L2Norm wrong")
	}
	r := sacmg.Rotate(env, 0, 1, sacmg.FromSlice(sacmg.ShapeOf(3), []float64{1, 2, 3}))
	if r.At(sacmg.Index{0}) != 3 {
		t.Fatal("Rotate wrong")
	}
	sh := sacmg.Shift(env, 0, 1, 9, sacmg.FromSlice(sacmg.ShapeOf(3), []float64{1, 2, 3}))
	if sh.At(sacmg.Index{0}) != 9 {
		t.Fatal("Shift wrong")
	}
}

func TestStencilViaFacade(t *testing.T) {
	env := sacmg.NewEnv()
	a := sacmg.GenarrayVal(env, sacmg.ShapeOf(4, 4, 4), 1)
	out := sacmg.Relax(env, a, sacmg.OperatorA)
	// A annihilates constants.
	if sacmg.MaxAbs(env, out) > 1e-13 {
		t.Fatal("OperatorA on constants not ~0")
	}
	// The coefficient sets are the NPB values.
	if sacmg.OperatorA[0] != -8.0/3.0 || sacmg.ProjectP[0] != 0.5 || sacmg.InterpQ[0] != 1.0 {
		t.Fatal("coefficient sets wrong")
	}
	if sacmg.SmootherSWA[3] != 0 || sacmg.SmootherBC[0] != -3.0/17.0 {
		t.Fatal("smoother sets wrong")
	}
}

func TestSolverViaFacade(t *testing.T) {
	env := sacmg.NewEnv()
	s := sacmg.NewSolver(env)
	v := sacmg.NewArray(sacmg.ShapeOf(10, 10, 10))
	u := s.MGrid(v, 2)
	if sacmg.MaxAbs(env, u) != 0 {
		t.Fatal("MGrid(0) != 0")
	}
}

func TestClassesViaFacade(t *testing.T) {
	if len(sacmg.Classes()) != 5 {
		t.Fatal("Classes() wrong")
	}
	c, err := sacmg.ClassByName("W")
	if err != nil || c.N != 64 || c.Iter != 40 {
		t.Fatalf("ClassByName(W) = %v, %v", c, err)
	}
	if _, err := sacmg.ClassByName("Z"); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestParallelEnvViaFacade(t *testing.T) {
	env := sacmg.NewParallelEnv(3)
	defer env.Close()
	if env.Workers() != 3 {
		t.Fatalf("Workers = %d", env.Workers())
	}
	b := sacmg.NewBenchmark(sacmg.ClassS, env)
	rnm2, _ := b.Run()
	if ok, known := sacmg.ClassS.Verify(rnm2); !known || !ok {
		t.Fatal("parallel benchmark did not verify")
	}
}

func TestMachineViaFacade(t *testing.T) {
	m := sacmg.Enterprise4000()
	if m.MaxProcs != 10 {
		t.Fatalf("MaxProcs = %d", m.MaxProcs)
	}
}

func TestOptLevelConstants(t *testing.T) {
	env := sacmg.NewEnv()
	if env.Opt != sacmg.O3 {
		t.Fatal("default env not O3")
	}
	env.Opt = sacmg.O0
	b := sacmg.NewBenchmark(sacmg.ClassS, env)
	rnm2, _ := b.Run()
	if ok, _ := sacmg.ClassS.Verify(rnm2); !ok {
		t.Fatal("O0 benchmark did not verify")
	}
	_ = []sacmg.OptLevel{sacmg.O0, sacmg.O1, sacmg.O2, sacmg.O3}
}

func TestPeriodicViaFacade(t *testing.T) {
	env := sacmg.NewEnv()
	b := sacmg.NewPeriodicBenchmark(sacmg.ClassS, env)
	rnm2, _ := b.Run()
	if ok, known := sacmg.ClassS.Verify(rnm2); !known || !ok {
		t.Fatalf("periodic benchmark did not verify: %v", rnm2)
	}
	s := sacmg.NewPeriodicSolver(env)
	u := s.MGrid(sacmg.NewArray(sacmg.ShapeOf(8, 8, 8)), 1)
	if sacmg.MaxAbs(env, u) != 0 {
		t.Fatal("periodic MGrid(0) != 0")
	}
}

func TestMPIViaFacade(t *testing.T) {
	s := sacmg.NewMPISolver(sacmg.ClassS, 4)
	rnm2, _ := s.Run()
	if ok, known := sacmg.ClassS.Verify(rnm2); !known || !ok {
		t.Fatalf("MPI solver did not verify: %v", rnm2)
	}
	var st sacmg.CommStats = s.Stats()
	if st.Messages == 0 {
		t.Fatal("no communication recorded")
	}
}

func TestExtendedLibraryViaFacade(t *testing.T) {
	env := sacmg.NewEnv()
	a := sacmg.FromSlice(sacmg.ShapeOf(4), []float64{1, -2, 3, -4})
	zero := sacmg.NewArray(sacmg.ShapeOf(4))
	pos := sacmg.Greater(env, a, zero)
	if sacmg.Sum(env, pos) != 2 {
		t.Fatal("Greater wrong")
	}
	if sacmg.Sum(env, sacmg.Eq(env, a, a)) != 4 {
		t.Fatal("Eq wrong")
	}
	if sacmg.Sum(env, sacmg.Less(env, a, zero)) != 2 {
		t.Fatal("Less wrong")
	}
	if sacmg.Sum(env, sacmg.LessEq(env, a, a)) != 4 {
		t.Fatal("LessEq wrong")
	}
	w := sacmg.Where(env, pos, a, sacmg.Neg(env, a))
	if sacmg.MinVal(env, w) != 1 {
		t.Fatalf("Where/Neg/MinVal composition wrong: %v", w)
	}
	if sacmg.MaxVal(env, sacmg.Abs(env, a)) != 4 {
		t.Fatal("Abs/MaxVal wrong")
	}
	if sacmg.Product(env, sacmg.Abs(env, a)) != 24 {
		t.Fatal("Product wrong")
	}
	if !sacmg.Any(env, a) || sacmg.All(env, zero) {
		t.Fatal("Any/All wrong")
	}
	m := sacmg.Reshape(env, sacmg.ShapeOf(2, 2), a)
	if sacmg.Sum(env, sacmg.SumAxis(env, 0, m)) != -2 {
		t.Fatal("Reshape/SumAxis wrong")
	}
	tr := sacmg.Transpose(env, nil, m)
	if tr.At(sacmg.Index{1, 0}) != m.At(sacmg.Index{0, 1}) {
		t.Fatal("Transpose wrong")
	}
	cat := sacmg.Concat(env, 0, m, m)
	if !cat.Shape().Equal(sacmg.ShapeOf(4, 2)) {
		t.Fatal("Concat wrong")
	}
	if !sacmg.Tile(env, sacmg.ShapeOf(1, 2), []int{1, 0}, m).Equal(
		sacmg.Drop(env, []int{1, 0}, m)) {
		t.Fatal("Tile/Drop wrong")
	}
	if sacmg.Iota(env, 3).At(sacmg.Index{2}) != 2 {
		t.Fatal("Iota wrong")
	}
}

func TestWCycleViaFacade(t *testing.T) {
	env := sacmg.NewEnv()
	b := sacmg.NewBenchmark(sacmg.ClassS, env)
	b.Solver.Gamma = 2
	b.Solver.PostSmooth = 2
	rnm2, _ := b.Run()
	// The extended cycle converges at least as well as the plain one, so
	// the final residual is at most the official value plus tolerance.
	ref, _, _ := sacmg.ClassS.VerifyValue()
	if rnm2 > ref+1e-8 {
		t.Fatalf("W(0,2)-cycle residual %v worse than V-cycle reference %v", rnm2, ref)
	}
}

func TestMPI3DViaFacade(t *testing.T) {
	s := sacmg.NewMPISolver3D(sacmg.ClassS, 2, 2, 1)
	rnm2, _ := s.Run()
	if ok, known := sacmg.ClassS.Verify(rnm2); !known || !ok {
		t.Fatalf("3-D MPI solver did not verify: %v", rnm2)
	}
}
