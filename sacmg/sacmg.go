// Package sacmg is the public API of the SAC-MG reproduction: a functional
// array-programming library in the style of SAC (Single Assignment C)
// together with the NAS benchmark MG built on top of it, reproducing
// Grelck, "Implementing the NAS Benchmark MG in SAC" (IPPS 2002).
//
// The package is a façade over the repository's internal components:
//
//   - n-dimensional arrays as first-class values (Array, Shape, Index);
//   - the WITH-loop construct — generators plus genarray/modarray/fold —
//     executed by an environment (Env) that models the SAC compiler's
//     optimization level, implicit multithreading and reference-counted
//     memory management;
//   - the SAC array library (Condense, Scatter, Embed, Take, element-wise
//     arithmetic, reductions);
//   - 27-point stencil relaxation kernels with the NPB coefficient sets;
//   - the rank-generic multigrid solver of the paper (Solver, with MGrid
//     and VCycle) and the NPB MG benchmark driver (Benchmark);
//   - the benchmark's problem classes and official verification.
//
// # Quick start
//
//	env := sacmg.NewEnv()
//	b := sacmg.NewBenchmark(sacmg.ClassS, env)
//	rnm2, _ := b.Run()
//	ok, _ := sacmg.ClassS.Verify(rnm2)   // true: matches the NPB reference
//
// See the examples directory for complete programs.
package sacmg

import (
	"repro/internal/aplib"
	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/mgmpi"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/periodic"
	"repro/internal/shape"
	"repro/internal/smp"
	"repro/internal/stencil"
	wl "repro/internal/withloop"
)

// --- arrays ----------------------------------------------------------------

// Array is a dense n-dimensional float64 array (SAC's double[+]).
type Array = array.Array

// Shape is the extent vector of an array or index space.
type Shape = shape.Shape

// Index is a position in an n-dimensional index space.
type Index = shape.Index

// ShapeOf builds a Shape from extents: ShapeOf(4, 4, 4).
func ShapeOf(extents ...int) Shape { return shape.Of(extents...) }

// NewArray allocates a zeroed array of the given shape.
func NewArray(shp Shape) *Array { return array.New(shp) }

// FromSlice builds an array of the given shape from row-major elements.
func FromSlice(shp Shape, elems []float64) *Array { return array.FromSlice(shp, elems) }

// Scalar builds a rank-0 array.
func Scalar(v float64) *Array { return array.Scalar(v) }

// --- WITH-loop engine --------------------------------------------------------

// Env is the evaluation environment of a SAC program: scheduler, memory
// pool and modeled compiler optimization level.
type Env = wl.Env

// OptLevel models the sac2c optimization level (O0..O3).
type OptLevel = wl.OptLevel

// Optimization levels, cumulative: O0 generic evaluation, O1 dense-box
// fast paths, O2 library fusion and in-place reuse, O3 stencil
// specialization and WITH-loop folding.
const (
	O0 = wl.O0
	O1 = wl.O1
	O2 = wl.O2
	O3 = wl.O3
)

// NewEnv returns the default sequential, fully optimized environment.
func NewEnv() *Env { return wl.Default() }

// NewParallelEnv returns an environment with its own pool of workers —
// SAC's implicit parallelization. Close it with Env.Close.
func NewParallelEnv(workers int) *Env { return wl.Parallel(workers) }

// Generator denotes a WITH-loop index-vector set
// (lower <= iv < upper step s width w).
type Generator = wl.Generator

// Gen builds a dense generator.
func Gen(lower, upper []int) Generator { return wl.Gen(lower, upper) }

// Full covers every index of shp — SAC's ( . <= iv <= . ).
func Full(shp Shape) Generator { return wl.Full(shp) }

// Inner covers every non-boundary index of shp.
func Inner(shp Shape) Generator { return wl.Inner(shp) }

// --- array library ------------------------------------------------------------

// GenarrayVal is genarray(shp, val): a constant array.
func GenarrayVal(e *Env, shp Shape, val float64) *Array { return aplib.GenarrayVal(e, shp, val) }

// Condense is condense(str, a): strided sub-sampling (paper Fig. 10).
func Condense(e *Env, str int, a *Array) *Array { return aplib.Condense(e, str, a) }

// Scatter is scatter(str, a): strided spreading with zero fill.
func Scatter(e *Env, str int, a *Array) *Array { return aplib.Scatter(e, str, a) }

// Embed is embed(shp, pos, a): a placed inside a larger zero array.
func Embed(e *Env, shp Shape, pos []int, a *Array) *Array { return aplib.Embed(e, shp, pos, a) }

// Take is take(shp, a): the leading sub-array of shape shp.
func Take(e *Env, shp Shape, a *Array) *Array { return aplib.Take(e, shp, a) }

// Drop removes the first off[j] elements along each axis.
func Drop(e *Env, off []int, a *Array) *Array { return aplib.Drop(e, off, a) }

// Add, Sub and Mul are the element-wise arithmetic operators.
func Add(e *Env, a, b *Array) *Array { return aplib.Add(e, a, b) }

// Sub returns a - b element-wise.
func Sub(e *Env, a, b *Array) *Array { return aplib.Sub(e, a, b) }

// Mul returns a * b element-wise.
func Mul(e *Env, a, b *Array) *Array { return aplib.Mul(e, a, b) }

// Scale returns k * a element-wise.
func Scale(e *Env, k float64, a *Array) *Array { return aplib.Scale(e, k, a) }

// Sum folds + over all elements.
func Sum(e *Env, a *Array) float64 { return aplib.Sum(e, a) }

// MaxAbs folds max over absolute values.
func MaxAbs(e *Env, a *Array) float64 { return aplib.MaxAbs(e, a) }

// L2Norm is sqrt(mean of squares) over all elements.
func L2Norm(e *Env, a *Array) float64 { return aplib.L2Norm(e, a) }

// Rotate cyclically rotates a along an axis.
func Rotate(e *Env, axis, off int, a *Array) *Array { return aplib.Rotate(e, axis, off, a) }

// Shift shifts a along an axis, filling vacated positions.
func Shift(e *Env, axis, off int, fill float64, a *Array) *Array {
	return aplib.Shift(e, axis, off, fill, a)
}

// --- stencils -------------------------------------------------------------------

// Coeffs holds the four 27-point stencil coefficients
// (centre, face, edge, corner).
type Coeffs = stencil.Coeffs

// The NPB stencil coefficient sets.
var (
	// OperatorA is the discrete Poisson operator.
	OperatorA = stencil.A
	// SmootherSWA is the smoother for classes S, W, A.
	SmootherSWA = stencil.SClassSWA
	// SmootherBC is the smoother for classes B, C.
	SmootherBC = stencil.SClassBC
	// ProjectP is the fine-to-coarse projection operator.
	ProjectP = stencil.P
	// InterpQ is the coarse-to-fine interpolation operator.
	InterpQ = stencil.Q
)

// Relax applies a 27-point stencil to the inner elements of a (rank 1–3).
func Relax(e *Env, a *Array, c Coeffs) *Array { return stencil.Relax(e, a, c) }

// --- multigrid and benchmark ----------------------------------------------------

// Solver is the paper's rank-generic multigrid algorithm (MGrid, VCycle,
// Resid, Smooth, Fine2Coarse, Coarse2Fine).
type Solver = core.Solver

// NewSolver creates a solver in the given environment with the NPB 3-D
// stencils.
func NewSolver(env *Env) *Solver { return core.New(env) }

// Benchmark runs the NPB MG benchmark with the SAC-style solver.
type Benchmark = core.Benchmark

// NewBenchmark creates a benchmark instance for a class.
func NewBenchmark(class Class, env *Env) *Benchmark { return core.NewBenchmark(class, env) }

// --- NPB problem spec ------------------------------------------------------------

// Class is an NPB MG size class with its verification data.
type Class = nas.Class

// The NPB 2.3 size classes.
var (
	ClassS = nas.ClassS // 32³, 4 iterations
	ClassW = nas.ClassW // 64³, 40 iterations
	ClassA = nas.ClassA // 256³, 4 iterations
	ClassB = nas.ClassB // 256³, 20 iterations
	ClassC = nas.ClassC // 512³, 20 iterations
)

// Classes lists all size classes.
func Classes() []Class { return nas.Classes() }

// ClassByName resolves "S", "W", "A", "B" or "C".
func ClassByName(name string) (Class, error) { return nas.ClassByName(name) }

// --- SMP simulation ---------------------------------------------------------------

// Machine is the simulated shared-memory multiprocessor used to reproduce
// the paper's parallel experiments (Figs. 12/13); see internal/smp.
type Machine = smp.Machine

// Enterprise4000 is the calibrated model of the paper's 12-processor SUN
// Ultra Enterprise 4000.
func Enterprise4000() Machine { return smp.Enterprise4000() }

// --- extensions (paper §7, future work) ---------------------------------------

// PeriodicSolver is the border-free MG variant of the paper's future-work
// section: compact n³ grids, wrap-around stencils, no artificial boundary
// elements. Bit-identical to Solver on the NPB problem.
type PeriodicSolver = periodic.Solver

// NewPeriodicSolver creates the border-free solver.
func NewPeriodicSolver(env *Env) *PeriodicSolver { return periodic.New(env) }

// PeriodicBenchmark runs the NPB benchmark on compact grids.
type PeriodicBenchmark = periodic.Benchmark

// NewPeriodicBenchmark creates a compact-grid benchmark instance.
func NewPeriodicBenchmark(class Class, env *Env) *PeriodicBenchmark {
	return periodic.NewBenchmark(class, env)
}

// MPISolver is the domain-decomposed MG in the style of the NPB MPI
// reference implementation, running on the simulated message-passing
// world (the paper's requested comparison).
type MPISolver = mgmpi.Solver

// NewMPISolver creates a 1-D slab-decomposed solver with the given number
// of ranks (a power of two; 2·ranks must not exceed the class extent).
func NewMPISolver(class Class, ranks int) *MPISolver { return mgmpi.New(class, ranks) }

// NewMPISolver3D creates a solver over an explicit 3-D processor grid —
// the decomposition the NPB MPI reference uses.
func NewMPISolver3D(class Class, r0, r1, r2 int) *MPISolver {
	return mgmpi.New3D(class, r0, r1, r2)
}

// CommStats reports message-passing traffic (messages, bytes).
type CommStats = mpi.Stats

// --- the wider array library -----------------------------------------------------

// Eq, Less, LessEq and Greater are the element-wise relational operators
// (APL booleans: 0.0 / 1.0).
func Eq(e *Env, a, b *Array) *Array      { return aplib.Eq(e, a, b) }
func Less(e *Env, a, b *Array) *Array    { return aplib.Less(e, a, b) }
func LessEq(e *Env, a, b *Array) *Array  { return aplib.LessEq(e, a, b) }
func Greater(e *Env, a, b *Array) *Array { return aplib.Greater(e, a, b) }

// Where selects element-wise: cond ? a : b.
func Where(e *Env, cond, a, b *Array) *Array { return aplib.Where(e, cond, a, b) }

// Abs and Neg are element-wise absolute value and negation.
func Abs(e *Env, a *Array) *Array { return aplib.Abs(e, a) }
func Neg(e *Env, a *Array) *Array { return aplib.Neg(e, a) }

// Product, MinVal and MaxVal are the remaining full reductions.
func Product(e *Env, a *Array) float64 { return aplib.Product(e, a) }
func MinVal(e *Env, a *Array) float64  { return aplib.MinVal(e, a) }
func MaxVal(e *Env, a *Array) float64  { return aplib.MaxVal(e, a) }

// All and Any are the boolean reductions.
func All(e *Env, a *Array) bool { return aplib.All(e, a) }
func Any(e *Env, a *Array) bool { return aplib.Any(e, a) }

// SumAxis reduces along one axis with +.
func SumAxis(e *Env, axis int, a *Array) *Array { return aplib.SumAxis(e, axis, a) }

// Reshape, Transpose, Concat, Tile and Iota are the structural operations.
func Reshape(e *Env, shp Shape, a *Array) *Array    { return aplib.Reshape(e, shp, a) }
func Transpose(e *Env, perm []int, a *Array) *Array { return aplib.Transpose(e, perm, a) }
func Concat(e *Env, axis int, a, b *Array) *Array   { return aplib.Concat(e, axis, a, b) }
func Tile(e *Env, shp Shape, pos []int, a *Array) *Array {
	return aplib.Tile(e, shp, pos, a)
}

// Iota returns [0, 1, ..., n-1].
func Iota(e *Env, n int) *Array { return aplib.Iota(e, n) }
