package health

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// feed runs one synthetic solve over the given per-iteration norms
// (iteration i observes norms[i] at its start, NPB style), returning the
// monitor.
func feed(m *Monitor, norms []float64) {
	for i, norm := range norms {
		m.BeginIteration(i + 1)
		if m.WantsResid() {
			// ObserveResidual takes the interior sum of squares over
			// points; invert the rnm2 convention for a 1-point grid.
			m.ObserveResidual(5, norm*norm, norm, 1)
		}
	}
}

func TestHealthyContraction(t *testing.T) {
	m := New(Config{})
	// A clean 0.2-per-iteration contraction, like the verified class-S run.
	feed(m, []float64{1, 0.2, 0.04, 0.008})
	m.ObserveFinal(0.0016, 0.0008)
	r := m.Report(metrics.Snapshot{})
	if r.Verdict != "healthy" {
		t.Fatalf("verdict = %s, want healthy", r.Verdict)
	}
	if !r.OK() {
		t.Fatalf("healthy report not OK: %+v", r)
	}
	if math.Abs(r.ConvergenceRate-0.2) > 1e-12 {
		t.Fatalf("convergence rate = %g, want 0.2", r.ConvergenceRate)
	}
	if r.Iterations != 4 {
		t.Fatalf("iterations = %d, want 4", r.Iterations)
	}
	if r.VerdictIteration != 0 {
		t.Fatalf("healthy run has verdict iteration %d", r.VerdictIteration)
	}
}

func TestStallDetectedWithinOneIteration(t *testing.T) {
	m := New(Config{})
	// Contraction freezes at iteration 4: the norm stops moving while
	// still far above the floating-point floor.
	feed(m, []float64{1, 0.2, 0.04, 0.04})
	r := m.Report(metrics.Snapshot{})
	if r.Verdict != "stalled" {
		t.Fatalf("verdict = %s, want stalled", r.Verdict)
	}
	if r.VerdictIteration != 4 {
		t.Fatalf("stall flagged at iteration %d, want 4 (within one iteration)", r.VerdictIteration)
	}
	if r.OK() {
		t.Fatal("stalled report claims OK")
	}
}

func TestDivergenceDetected(t *testing.T) {
	m := New(Config{})
	feed(m, []float64{1, 0.2, 0.4})
	r := m.Report(metrics.Snapshot{})
	if r.Verdict != "diverging" {
		t.Fatalf("verdict = %s, want diverging", r.Verdict)
	}
	if r.VerdictIteration != 3 {
		t.Fatalf("divergence flagged at iteration %d, want 3", r.VerdictIteration)
	}
}

func TestUnhealthyVerdictSticks(t *testing.T) {
	m := New(Config{})
	// A divergence followed by good ratios must stay flagged.
	feed(m, []float64{1, 2, 0.2, 0.04})
	r := m.Report(metrics.Snapshot{})
	if r.Verdict != "diverging" {
		t.Fatalf("verdict = %s, want diverging (sticky)", r.Verdict)
	}
	if r.VerdictIteration != 2 {
		t.Fatalf("verdict iteration = %d, want 2", r.VerdictIteration)
	}
}

func TestFloorGuardSuppressesStall(t *testing.T) {
	m := New(Config{})
	// The measured class-W tail: the residual reaches the floating-point
	// floor (~3e-16 of the first residual) and its ratios flatten to ~1.
	// That is convergence, not a stall.
	feed(m, []float64{1, 1e-6, 1e-12, 2.5e-16, 2.5e-16, 2.51e-16})
	r := m.Report(metrics.Snapshot{})
	if r.Verdict != "converged" {
		t.Fatalf("verdict = %s, want converged (floor guard)", r.Verdict)
	}
	if !r.OK() {
		t.Fatal("converged report not OK")
	}
}

func TestNonFiniteResidual(t *testing.T) {
	m := New(Config{})
	m.BeginIteration(1)
	m.ObserveResidual(5, math.NaN(), math.NaN(), 1)
	r := m.Report(metrics.Snapshot{})
	if r.Verdict != "non-finite" {
		t.Fatalf("verdict = %s, want non-finite", r.Verdict)
	}
	if r.VerdictIteration != 1 {
		t.Fatalf("verdict iteration = %d, want 1", r.VerdictIteration)
	}
}

func TestNonFiniteSample(t *testing.T) {
	m := New(Config{})
	m.BeginIteration(2)
	m.ObserveNonFinite("addRelax", 5)
	r := m.Report(metrics.Snapshot{})
	if r.Verdict != "non-finite" {
		t.Fatalf("verdict = %s, want non-finite", r.Verdict)
	}
	if r.NonFiniteKernel != "addRelax" || r.NonFiniteLevel != 5 {
		t.Fatalf("fault site = %s@%d, want addRelax@5", r.NonFiniteKernel, r.NonFiniteLevel)
	}
	if r.NonFinite != 1 {
		t.Fatalf("non-finite count = %d, want 1", r.NonFinite)
	}
}

func TestBeginIterationResetsRun(t *testing.T) {
	m := New(Config{})
	feed(m, []float64{1, 0.2, 0.4}) // diverging run
	if v := m.Report(metrics.Snapshot{}).Verdict; v != "diverging" {
		t.Fatalf("first run verdict = %s, want diverging", v)
	}
	feed(m, []float64{1, 0.2, 0.04}) // fresh healthy run on the same monitor
	r := m.Report(metrics.Snapshot{})
	if r.Verdict != "healthy" {
		t.Fatalf("second run verdict = %s, want healthy after reset", r.Verdict)
	}
	if r.Iterations != 2 {
		t.Fatalf("second run iterations = %d, want 2", r.Iterations)
	}
}

func TestWantsResidOncePerIteration(t *testing.T) {
	m := New(Config{})
	m.BeginIteration(1)
	if !m.WantsResid() {
		t.Fatal("WantsResid false at iteration start")
	}
	m.ObserveResidual(5, 1, 1, 1)
	if m.WantsResid() {
		t.Fatal("WantsResid true after the iteration residual was observed")
	}
	m.BeginIteration(2)
	if !m.WantsResid() {
		t.Fatal("WantsResid false after BeginIteration")
	}
}

func TestImbalanceFromSnapshot(t *testing.T) {
	snap := metrics.Snapshot{Workers: []metrics.WorkerStat{
		{Worker: 0, Loops: 10, BusyNanos: 3e9},
		{Worker: 1, Loops: 10, BusyNanos: 1e9},
	}}
	m := New(Config{})
	feed(m, []float64{1, 0.2})
	r := m.Report(snap)
	// max 3s over mean 2s.
	if math.Abs(r.WorkerImbalance-1.5) > 1e-12 {
		t.Fatalf("imbalance = %g, want 1.5", r.WorkerImbalance)
	}
	if len(r.Workers) != 2 {
		t.Fatalf("worker rows = %d, want 2", len(r.Workers))
	}
	if math.Abs(r.Workers[0].Share-0.75) > 1e-12 {
		t.Fatalf("worker 0 share = %g, want 0.75", r.Workers[0].Share)
	}
	if Imbalance(nil) != 0 {
		t.Fatal("Imbalance(nil) != 0")
	}
}

func TestNilMonitorSafe(t *testing.T) {
	var m *Monitor
	m.BeginIteration(1)
	if m.WantsResid() {
		t.Fatal("nil monitor wants a residual")
	}
	m.ObserveResidual(5, 1, 1, 1)
	m.ObserveFinal(1, 1)
	m.ObserveNonFinite("x", 0)
	if m.Enabled() {
		t.Fatal("nil monitor claims enabled")
	}
	if m.SampleStride() != 0 {
		t.Fatal("nil monitor has a sample stride")
	}
	if m.Iteration() != 0 {
		t.Fatal("nil monitor has an iteration")
	}
	if r := m.Report(metrics.Snapshot{}); r.Verdict != "disabled" {
		t.Fatalf("nil monitor verdict = %s, want disabled", r.Verdict)
	}
}

func TestNilMonitorZeroAlloc(t *testing.T) {
	var m *Monitor
	allocs := testing.AllocsPerRun(100, func() {
		m.BeginIteration(1)
		_ = m.WantsResid()
		m.ObserveResidual(5, 1, 1, 1)
		m.ObserveFinal(1, 1)
		m.ObserveNonFinite("x", 0)
		_ = m.SampleStride()
	})
	if allocs != 0 {
		t.Fatalf("nil monitor hooks allocate %.1f per run, want 0", allocs)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := New(Config{}).Config()
	if cfg.Expected != 0.6 || cfg.StallRatio != 0.97 || cfg.DivergeRatio != 1.5 ||
		cfg.FloorRatio != 1e-14 || cfg.SampleStride != 1024 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	custom := New(Config{Expected: 0.3, SampleStride: 16}).Config()
	if custom.Expected != 0.3 || custom.SampleStride != 16 || custom.StallRatio != 0.97 {
		t.Fatalf("custom config not honoured: %+v", custom)
	}
}

func TestVerdictStrings(t *testing.T) {
	want := []string{"unknown", "healthy", "converged", "stalled", "diverging", "non-finite"}
	got := Verdicts()
	if len(got) != len(want) {
		t.Fatalf("Verdicts() has %d entries, want %d", len(got), len(want))
	}
	for i, v := range got {
		if v.String() != want[i] {
			t.Fatalf("verdict %d = %s, want %s", i, v, want[i])
		}
	}
	if !Healthy.OK() || !Converged.OK() || !Unknown.OK() {
		t.Fatal("good verdicts not OK")
	}
	if Stalled.OK() || Diverging.OK() || NonFinite.OK() {
		t.Fatal("bad verdicts OK")
	}
}

func TestWriteText(t *testing.T) {
	m := New(Config{})
	feed(m, []float64{1, 0.2, 0.04})
	var buf bytes.Buffer
	m.Report(metrics.Snapshot{Workers: []metrics.WorkerStat{
		{Worker: 0, Loops: 4, BusyNanos: 1e9},
		{Worker: 1, Loops: 4, BusyNanos: 1e9},
	}}).WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"verdict: healthy", "convergence rate: 0.2000", "worker imbalance: 1.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	m := New(Config{})
	feed(m, []float64{1, 0.2, 0.04})
	var buf bytes.Buffer
	m.Report(metrics.Snapshot{}).WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`mg_health_verdict{verdict="healthy"} 1`,
		`mg_health_verdict{verdict="stalled"} 0`,
		"mg_health_iterations_total 2",
		"mg_health_convergence_rate 0.",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
