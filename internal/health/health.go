// Package health is the runtime convergence monitor of the MG solve: the
// layer that *interprets* the raw observability signals (internal/metrics)
// while a solve is still running, instead of leaving them for offline
// analysis.
//
// The paper's claim is measured behaviour — per-class runtimes and
// verified rnm2 norms — and a "production-scale, heavy-traffic" deployment
// (ROADMAP) needs to know *during* a solve whether that behaviour still
// holds: is the residual contracting at the multigrid rate the paper's
// verified norms imply, has it stalled, is it diverging, has a NaN or Inf
// crept into a grid, and are the scheduler's workers actually sharing the
// load. A Monitor answers those questions from three cheap signals:
//
//  1. Per-iteration residual norms. The solver's fused residual kernel
//     already touches every grid point once per iteration; with a monitor
//     attached it folds the NPB norm accumulation into that same traversal
//     (core's subRelaxNorm), so the per-iteration rnm2 sequence costs no
//     extra grid pass. The monitor tracks the contraction ratio
//     rnm2_i / rnm2_{i−1} against the configured expectation.
//  2. Sampled NaN/Inf guards. Checking every point of every kernel output
//     would double the memory traffic; checking a strided sample costs a
//     few dozen loads per kernel invocation and still catches non-finite
//     corruption within one iteration, because NaNs propagate through the
//     27-point stencils at one halo per application (and the per-iteration
//     norm is an every-point NaN detector one iteration later at the
//     latest).
//  3. Per-worker busy time from the metrics collector's RecordBusy shards
//     (sched.Pool), from which the report derives utilization shares and
//     the max/mean imbalance gauge.
//
// # Verdicts
//
// The contraction ratio classifies each iteration: above DivergeRatio the
// solve is diverging, above StallRatio it has stalled, otherwise it is
// healthy. One deliberate exception, calibrated on the verified NPB runs:
// once the residual has fallen below FloorRatio relative to the first
// residual, flat ratios mean the solve has converged to the
// floating-point floor, not stalled — class W (40 iterations) reaches
// rnm2 ≈ 2.5e-18 around iteration 35 and its last five ratios hover at
// ~1.0 while the run still verifies bit-exactly. Unhealthy verdicts are
// sticky: a later good ratio does not clear a recorded stall.
//
// # Disabled path
//
// A nil *Monitor is the disabled monitor: every method is nil-safe and
// allocation-free, so instrumented code calls the hooks unconditionally
// and an unmonitored run pays one nil check per hook site
// (TestMonitorDisabledZeroAlloc; BenchmarkMetricsDisabled in the root
// package holds the whole disabled observability path to benchmark
// parity).
package health

import (
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/metrics"
)

// Verdict classifies the convergence behaviour observed so far.
type Verdict int

const (
	// Unknown means no residual has been observed yet.
	Unknown Verdict = iota
	// Healthy means every observed contraction ratio was below the stall
	// threshold.
	Healthy
	// Converged means the residual reached the floating-point floor
	// (below FloorRatio of the first residual); ratios near 1 are
	// expected there and do not count as stalls.
	Converged
	// Stalled means a contraction ratio reached StallRatio while the
	// residual was still far from the floor.
	Stalled
	// Diverging means a contraction ratio exceeded DivergeRatio.
	Diverging
	// NonFinite means a NaN or Inf was observed, either by a sampled
	// kernel guard or in a residual norm.
	NonFinite
)

// String returns the verdict name used in reports, JSON and Prometheus
// labels.
func (v Verdict) String() string {
	switch v {
	case Unknown:
		return "unknown"
	case Healthy:
		return "healthy"
	case Converged:
		return "converged"
	case Stalled:
		return "stalled"
	case Diverging:
		return "diverging"
	case NonFinite:
		return "non-finite"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Verdicts lists every verdict, in declaration order (the Prometheus
// state metric emits one series per entry).
func Verdicts() []Verdict {
	return []Verdict{Unknown, Healthy, Converged, Stalled, Diverging, NonFinite}
}

// OK reports whether the verdict describes an acceptable solve.
func (v Verdict) OK() bool { return v == Unknown || v == Healthy || v == Converged }

// Config tunes the monitor's thresholds. The zero value selects the
// defaults below, calibrated on the verified NPB classes (see the package
// comment and the per-iteration ratio table in DESIGN.md §3.4).
type Config struct {
	// Expected is the anticipated per-iteration contraction factor of the
	// residual norm — the paper's MG V-cycle contracts rnm2 by ~0.12–0.37
	// per iteration on the verified classes, so the default expectation
	// is 0.6 with headroom. It feeds the report (observed vs expected)
	// and the Prometheus gauge; it is not a verdict threshold.
	Expected float64
	// StallRatio is the contraction ratio at or above which an iteration
	// counts as stalled (default 0.97).
	StallRatio float64
	// DivergeRatio is the contraction ratio above which an iteration
	// counts as diverging (default 1.5).
	DivergeRatio float64
	// FloorRatio is the residual level, relative to the first observed
	// residual, below which flat ratios mean "converged to the
	// floating-point floor" rather than "stalled" (default 1e-14; class W
	// bottoms out at rnm2/first ≈ 3e-16 and keeps verifying).
	FloorRatio float64
	// SampleStride is the element stride of the NaN/Inf kernel guards
	// (default 1024: a few dozen loads per kernel invocation at class-A
	// sizes).
	SampleStride int
}

func (c Config) withDefaults() Config {
	if c.Expected <= 0 {
		c.Expected = 0.6
	}
	if c.StallRatio <= 0 {
		c.StallRatio = 0.97
	}
	if c.DivergeRatio <= 0 {
		c.DivergeRatio = 1.5
	}
	if c.FloorRatio <= 0 {
		c.FloorRatio = 1e-14
	}
	if c.SampleStride <= 0 {
		c.SampleStride = 1024
	}
	return c
}

// Monitor accumulates convergence observations of one solve at a time.
// It is attached through withloop.Env.Health; the solver hooks
// (internal/core/observe.go) feed it. A Monitor survives repeated solves
// of the same benchmark instance: the first iteration of a new solve
// resets the run state. All methods are safe for concurrent use and
// nil-safe (see the package comment).
type Monitor struct {
	mu  sync.Mutex
	cfg Config

	iter        int     // current 1-based iteration
	residSeen   bool    // iteration residual already observed this iteration
	first, last float64 // first and most recent residual norm
	ratios      int     // contraction ratios observed
	logSum      float64 // Σ log(ratio), for the geometric-mean rate
	lastRatio   float64
	verdict     Verdict
	verdictIter int    // iteration of the first unhealthy observation
	faultKernel string // kernel of the first non-finite sample, if any
	faultLevel  int
	nonFinite   uint64 // non-finite observations (samples and norms)
}

// New creates a monitor with the given thresholds (zero fields take the
// documented defaults).
func New(cfg Config) *Monitor { return &Monitor{cfg: cfg.withDefaults()} }

// Enabled reports whether the monitor is live (false for nil).
func (m *Monitor) Enabled() bool { return m != nil }

// Config returns the monitor's effective (default-filled) configuration.
func (m *Monitor) Config() Config {
	if m == nil {
		return Config{}.withDefaults()
	}
	return m.cfg
}

// SampleStride returns the NaN/Inf guard stride (0 when disabled, which
// callers must treat as "do not sample").
func (m *Monitor) SampleStride() int {
	if m == nil {
		return 0
	}
	return m.cfg.SampleStride
}

// BeginIteration marks the start of MGrid iteration iter (1-based).
// Iteration 1 starts a fresh solve: all run state of a previous solve on
// the same monitor is discarded.
func (m *Monitor) BeginIteration(iter int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if iter <= 1 {
		m.first, m.last = 0, 0
		m.ratios, m.logSum, m.lastRatio = 0, 0, 0
		m.verdict, m.verdictIter = Unknown, 0
		m.faultKernel, m.faultLevel = "", 0
		m.nonFinite = 0
	}
	m.iter = iter
	m.residSeen = false
	m.mu.Unlock()
}

// Iteration returns the current 1-based iteration (0 before the first).
func (m *Monitor) Iteration() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.iter
}

// WantsResid reports whether the solver should fold the residual norm
// into its next finest-grid residual evaluation: true exactly once per
// iteration (the first residual of an iteration is ‖v − A·u‖, the
// convergence signal; later finest-grid residuals belong to the V-cycle's
// interior). Nil monitors never want one.
func (m *Monitor) WantsResid() bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.residSeen
}

// ObserveResidual records the iteration residual: sumSq is the interior
// sum of squares over points grid points (the NPB rnm2 convention),
// maxAbs the max norm. It must follow a true WantsResid.
func (m *Monitor) ObserveResidual(level int, sumSq, maxAbs float64, points int64) {
	if m == nil {
		return
	}
	norm := math.Sqrt(sumSq / float64(points))
	m.mu.Lock()
	m.residSeen = true
	m.observeNorm(norm)
	m.mu.Unlock()
	_ = maxAbs
	_ = level
}

// ObserveFinal records the closing residual norm of the solve (the NPB
// verification value) — one more contraction observation after the last
// iteration.
func (m *Monitor) ObserveFinal(rnm2, rnmu float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if math.IsNaN(rnmu) || math.IsInf(rnmu, 0) {
		m.nonFinite++
		m.setVerdict(NonFinite)
	}
	m.observeNorm(rnm2)
	m.mu.Unlock()
}

// observeNorm folds one residual norm into the run state. Caller holds mu.
func (m *Monitor) observeNorm(norm float64) {
	if math.IsNaN(norm) || math.IsInf(norm, 0) {
		m.nonFinite++
		m.setVerdict(NonFinite)
		return
	}
	if m.first == 0 && m.ratios == 0 && m.last == 0 {
		m.first, m.last = norm, norm
		return
	}
	prev := m.last
	m.last = norm
	if prev == 0 {
		return // exact zero residual: nothing left to contract
	}
	ratio := norm / prev
	m.ratios++
	m.lastRatio = ratio
	if ratio > 0 {
		m.logSum += math.Log(ratio)
	}
	atFloor := m.first > 0 && norm <= m.first*m.cfg.FloorRatio
	switch {
	case ratio > m.cfg.DivergeRatio:
		m.setVerdict(Diverging)
	case ratio >= m.cfg.StallRatio && !atFloor:
		m.setVerdict(Stalled)
	case atFloor:
		if m.verdict == Unknown || m.verdict == Healthy {
			m.verdict = Converged
		}
	default:
		if m.verdict == Unknown {
			m.verdict = Healthy
		}
	}
}

// setVerdict latches an unhealthy verdict (first unhealthy observation
// wins; later good ratios never clear it). Caller holds mu.
func (m *Monitor) setVerdict(v Verdict) {
	if m.verdict == Stalled || m.verdict == Diverging || m.verdict == NonFinite {
		return
	}
	m.verdict = v
	m.verdictIter = m.iter
}

// ObserveNonFinite records a non-finite value caught by a sampled kernel
// guard.
func (m *Monitor) ObserveNonFinite(kernel string, level int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.nonFinite++
	if m.faultKernel == "" {
		m.faultKernel, m.faultLevel = kernel, level
	}
	m.setVerdict(NonFinite)
	m.mu.Unlock()
}

// WorkerLoad is one worker's share of the parallel-loop busy time.
type WorkerLoad struct {
	Worker      int     `json:"worker"`
	Loops       uint64  `json:"loops"`
	BusySeconds float64 `json:"busySeconds"`
	// Share is this worker's fraction of the summed busy time (1/W is
	// perfectly balanced).
	Share float64 `json:"share"`
}

// Report is the summarized health of one solve, rendered by WriteText /
// WritePrometheus and embedded in cmd/mg's -json summary.
type Report struct {
	Verdict string `json:"verdict"`
	// VerdictIteration is the iteration of the first unhealthy
	// observation (0 when the solve stayed healthy).
	VerdictIteration int `json:"verdictIteration,omitempty"`
	// Iterations is the number of contraction ratios observed.
	Iterations    int     `json:"iterations"`
	FirstResidual float64 `json:"firstResidual"`
	LastResidual  float64 `json:"lastResidual"`
	// ConvergenceRate is the geometric mean of the observed contraction
	// ratios; ExpectedRate is the configured expectation it is judged
	// against.
	ConvergenceRate float64 `json:"convergenceRate"`
	LastRatio       float64 `json:"lastRatio"`
	ExpectedRate    float64 `json:"expectedRate"`
	// NonFinite counts NaN/Inf observations; NonFiniteKernel names the
	// kernel whose sampled guard fired first, if any.
	NonFinite       uint64 `json:"nonFinite,omitempty"`
	NonFiniteKernel string `json:"nonFiniteKernel,omitempty"`
	NonFiniteLevel  int    `json:"nonFiniteLevel,omitempty"`
	// WorkerImbalance is max/mean of the per-worker busy times (1.0 is
	// perfectly balanced, 0 means no worker data was collected).
	WorkerImbalance float64      `json:"workerImbalance,omitempty"`
	Workers         []WorkerLoad `json:"workers,omitempty"`
}

// OK reports whether the report's verdict is acceptable.
func (r Report) OK() bool {
	for _, v := range Verdicts() {
		if v.String() == r.Verdict {
			return v.OK()
		}
	}
	return false
}

// Report summarizes the monitor's run state, deriving the load-balance
// gauges from the collector snapshot (pass a zero Snapshot when no
// collector was attached). A nil monitor reports verdict "disabled".
func (m *Monitor) Report(snap metrics.Snapshot) Report {
	if m == nil {
		return Report{Verdict: "disabled"}
	}
	m.mu.Lock()
	r := Report{
		Verdict:          m.verdict.String(),
		VerdictIteration: m.verdictIter,
		Iterations:       m.ratios,
		FirstResidual:    m.first,
		LastResidual:     m.last,
		LastRatio:        m.lastRatio,
		ExpectedRate:     m.cfg.Expected,
		NonFinite:        m.nonFinite,
		NonFiniteKernel:  m.faultKernel,
		NonFiniteLevel:   m.faultLevel,
	}
	if m.ratios > 0 {
		r.ConvergenceRate = math.Exp(m.logSum / float64(m.ratios))
	}
	m.mu.Unlock()
	r.WorkerImbalance = Imbalance(snap.Workers)
	r.Workers = workerLoads(snap.Workers)
	return r
}

// Imbalance derives the max/mean busy-time ratio from the collector's
// per-worker statistics: 1.0 is perfectly balanced, W is one worker doing
// everything, 0 means no data.
func Imbalance(workers []metrics.WorkerStat) float64 {
	var sum, maxBusy float64
	for _, w := range workers {
		b := float64(w.BusyNanos)
		sum += b
		if b > maxBusy {
			maxBusy = b
		}
	}
	if sum == 0 || len(workers) == 0 {
		return 0
	}
	return maxBusy / (sum / float64(len(workers)))
}

// workerLoads converts the collector's worker rows into report rows with
// busy-time shares.
func workerLoads(workers []metrics.WorkerStat) []WorkerLoad {
	var sum float64
	for _, w := range workers {
		sum += float64(w.BusyNanos)
	}
	var loads []WorkerLoad
	for _, w := range workers {
		l := WorkerLoad{Worker: w.Worker, Loops: w.Loops, BusySeconds: float64(w.BusyNanos) / 1e9}
		if sum > 0 {
			l.Share = float64(w.BusyNanos) / sum
		}
		loads = append(loads, l)
	}
	return loads
}

// WriteText renders the human-readable health block (cmd/mg -health,
// cmd/mgbench -fig health).
func (r Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Convergence health\n")
	fmt.Fprintf(w, "verdict: %s", r.Verdict)
	if r.VerdictIteration > 0 {
		fmt.Fprintf(w, " (at iteration %d)", r.VerdictIteration)
	}
	fmt.Fprintln(w)
	if r.Iterations > 0 {
		fmt.Fprintf(w, "residual: %.6e -> %.6e over %d contractions\n",
			r.FirstResidual, r.LastResidual, r.Iterations)
		fmt.Fprintf(w, "convergence rate: %.4f per iteration (last %.4f, expected <= %.2f)\n",
			r.ConvergenceRate, r.LastRatio, r.ExpectedRate)
	}
	if r.NonFinite > 0 {
		fmt.Fprintf(w, "non-finite observations: %d", r.NonFinite)
		if r.NonFiniteKernel != "" {
			fmt.Fprintf(w, " (first sampled in %s@%d)", r.NonFiniteKernel, r.NonFiniteLevel)
		}
		fmt.Fprintln(w)
	}
	if r.WorkerImbalance > 0 {
		fmt.Fprintf(w, "worker imbalance: %.3f (max/mean busy)\n", r.WorkerImbalance)
		for _, l := range r.Workers {
			fmt.Fprintf(w, "worker %2d: %6d loops, %10.3f ms busy (%.1f%% share)\n",
				l.Worker, l.Loops, l.BusySeconds*1e3, l.Share*100)
		}
	}
}

// WritePrometheus renders the report as Prometheus text-format metrics,
// appended after the collector metrics on cmd/mg's /metrics endpoint.
// The verdict is a state metric: one mg_health_verdict series per known
// verdict, value 1 for the active one.
func (r Report) WritePrometheus(w io.Writer) {
	fmt.Fprintln(w, "# HELP mg_health_verdict Convergence verdict of the running solve (1 = active state).")
	fmt.Fprintln(w, "# TYPE mg_health_verdict gauge")
	for _, v := range Verdicts() {
		val := 0
		if v.String() == r.Verdict {
			val = 1
		}
		fmt.Fprintf(w, "mg_health_verdict{verdict=%q} %d\n", v.String(), val)
	}
	fmt.Fprintln(w, "# HELP mg_health_iterations_total Contraction ratios observed this solve.")
	fmt.Fprintln(w, "# TYPE mg_health_iterations_total counter")
	fmt.Fprintf(w, "mg_health_iterations_total %d\n", r.Iterations)
	fmt.Fprintln(w, "# HELP mg_health_residual_norm Most recent residual L2 norm (NPB rnm2).")
	fmt.Fprintln(w, "# TYPE mg_health_residual_norm gauge")
	fmt.Fprintf(w, "mg_health_residual_norm %g\n", r.LastResidual)
	fmt.Fprintln(w, "# HELP mg_health_convergence_rate Geometric-mean contraction ratio per iteration.")
	fmt.Fprintln(w, "# TYPE mg_health_convergence_rate gauge")
	fmt.Fprintf(w, "mg_health_convergence_rate %g\n", r.ConvergenceRate)
	fmt.Fprintln(w, "# HELP mg_health_expected_rate Configured expected contraction ratio.")
	fmt.Fprintln(w, "# TYPE mg_health_expected_rate gauge")
	fmt.Fprintf(w, "mg_health_expected_rate %g\n", r.ExpectedRate)
	fmt.Fprintln(w, "# HELP mg_health_nonfinite_total NaN/Inf observations (sampled guards and norms).")
	fmt.Fprintln(w, "# TYPE mg_health_nonfinite_total counter")
	fmt.Fprintf(w, "mg_health_nonfinite_total %d\n", r.NonFinite)
	if r.WorkerImbalance > 0 {
		fmt.Fprintln(w, "# HELP mg_health_worker_imbalance Max/mean per-worker busy time (1 = balanced).")
		fmt.Fprintln(w, "# TYPE mg_health_worker_imbalance gauge")
		fmt.Fprintf(w, "mg_health_worker_imbalance %g\n", r.WorkerImbalance)
	}
	for _, l := range r.Workers {
		fmt.Fprintf(w, "mg_health_worker_busy_seconds_total{worker=\"%d\"} %g\n", l.Worker, l.BusySeconds)
	}
}
