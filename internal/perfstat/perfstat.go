// Package perfstat is the statistical engine of the performance
// regression lab: repeated-sample collection with warm-up discard,
// Tukey-fence outlier rejection, median/mean summaries, bootstrap
// confidence intervals for the median, and Mann–Whitney U comparison
// verdicts (faster / slower / indistinguishable at a configurable
// significance level and minimum effect size).
//
// The design follows the benchmarking methodology literature referenced
// in PAPERS.md: single best-of-N numbers (the NPB reporting convention
// used by harness.RunFig11) are fine for tables, but any *claim* that one
// build is faster or slower than another needs repeated samples and a
// rank-based test that does not assume normal timing noise. Timing
// distributions are right-skewed (interrupts, frequency transitions, GC),
// which is why the package prefers medians over means and the
// distribution-free Mann–Whitney U test over Student's t.
package perfstat

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Options configures Collect.
type Options struct {
	// Samples is the number of recorded measurements (default 10).
	Samples int
	// Warmup is the number of leading measurements discarded before
	// recording starts — cold caches, first-touch page faults and JIT-like
	// effects (tuner calibration) land here (default 2).
	Warmup int
}

func (o Options) withDefaults() Options {
	if o.Samples < 1 {
		o.Samples = 10
	}
	if o.Warmup < 0 {
		o.Warmup = 2
	}
	return o
}

// Collect runs body Warmup+Samples times and returns the wall-clock
// seconds of the recorded (post-warm-up) runs, in execution order.
func Collect(opts Options, body func()) []float64 {
	opts = opts.withDefaults()
	samples := make([]float64, 0, opts.Samples)
	for i := 0; i < opts.Warmup+opts.Samples; i++ {
		start := time.Now()
		body()
		if i >= opts.Warmup {
			samples = append(samples, time.Since(start).Seconds())
		}
	}
	return samples
}

// CalibrationIters is the size of the fixed calibration workload: a
// dependent multiply-add chain long enough (a few ms) to ride out
// scheduler jitter but cheap enough to run before every snapshot.
const CalibrationIters = 8 << 20

// spinSink defeats dead-code elimination of the calibration loop.
var spinSink float64

// Spin executes the fixed calibration workload — CalibrationIters
// dependent floating-point multiply-adds — and returns its wall time in
// seconds. The chain is latency-bound, so its time tracks the effective
// CPU speed the process is getting (frequency scaling, hypervisor steal,
// co-tenant pressure) and is untouched by changes to the benchmark code.
func Spin() float64 {
	start := time.Now()
	x := 1.0
	for i := 0; i < CalibrationIters; i++ {
		x = x*1.0000000001 + 1e-12
	}
	spinSink = x
	return time.Since(start).Seconds()
}

// Calibrate returns a robust estimate (outlier-rejected median of 9
// runs) of the calibration workload's wall time on this host right now.
// Snapshots store it so comparisons can normalize away host-speed
// differences: the same tree measured on a machine running half as fast
// would otherwise read as a 2x regression of every row.
func Calibrate() float64 {
	samples := make([]float64, 9)
	for i := range samples {
		samples[i] = Spin()
	}
	return Median(RejectOutliers(samples))
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the sample median (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, 0.5)
}

// Quantile returns the interpolated q-quantile (0 ≤ q ≤ 1) of xs —
// p50/p99 latency reporting for the saturation benchmarks (cmd/mgload).
// It returns 0 for an empty slice and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted interpolates the q-quantile of an ascending slice.
func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// RejectOutliers returns the samples inside the Tukey fences
// [Q1 − 1.5·IQR, Q3 + 1.5·IQR]. Slices with fewer than 4 samples are
// returned unchanged (quartiles are meaningless), as are slices whose
// IQR is zero beyond the fence test (identical samples all survive).
func RejectOutliers(xs []float64) []float64 {
	if len(xs) < 4 {
		return xs
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q1 := quantileSorted(s, 0.25)
	q3 := quantileSorted(s, 0.75)
	iqr := q3 - q1
	lo, hi := q1-1.5*iqr, q3+1.5*iqr
	kept := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x >= lo && x <= hi {
			kept = append(kept, x)
		}
	}
	if len(kept) == 0 {
		return xs // degenerate fences; keep the data
	}
	return kept
}

// BootstrapCI estimates a confidence interval for the median by
// percentile bootstrap with iters resamples (default 1000 when iters
// <= 0). conf is the coverage, e.g. 0.95. The resampling RNG is seeded
// deterministically so snapshots are reproducible run-to-run.
func BootstrapCI(xs []float64, conf float64, iters int) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if len(xs) == 1 {
		return xs[0], xs[0]
	}
	if iters <= 0 {
		iters = 1000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	rng := rand.New(rand.NewSource(0x6d67)) // "mg"; fixed for reproducibility
	meds := make([]float64, iters)
	resample := make([]float64, len(xs))
	for i := range meds {
		for j := range resample {
			resample[j] = xs[rng.Intn(len(xs))]
		}
		sort.Float64s(resample)
		meds[i] = quantileSorted(resample, 0.5)
	}
	sort.Float64s(meds)
	tail := (1 - conf) / 2
	return quantileSorted(meds, tail), quantileSorted(meds, 1-tail)
}

// MannWhitney runs the two-sided Mann–Whitney U test on two independent
// samples, returning the U statistic (the smaller of U1/U2) and the
// p-value under the tie-corrected normal approximation with continuity
// correction. Degenerate inputs (an empty side, or all observations
// tied) return p = 1: no evidence of a difference.
func MannWhitney(a, b []float64) (u, p float64) {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return 0, 1
	}
	type obs struct {
		v    float64
		inA  bool
		rank float64
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v: v, inA: true})
	}
	for _, v := range b {
		all = append(all, obs{v: v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks to ties and accumulate the tie correction Σ(t³−t).
	tieSum := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			all[k].rank = mid
		}
		t := float64(j - i)
		tieSum += t*t*t - t
		i = j
	}

	r1 := 0.0
	for _, o := range all {
		if o.inA {
			r1 += o.rank
		}
	}
	u1 := r1 - n1*(n1+1)/2
	u2 := n1*n2 - u1
	u = math.Min(u1, u2)

	n := n1 + n2
	mean := n1 * n2 / 2
	variance := n1 * n2 / 12 * ((n + 1) - tieSum/(n*(n-1)))
	if variance <= 0 {
		return u, 1 // every observation tied
	}
	z := (u - mean + 0.5) / math.Sqrt(variance) // continuity-corrected; z <= ~0
	if z > 0 {
		z = 0
	}
	p = math.Erfc(-z / math.Sqrt2) // two-sided: 2·Φ(z) for z <= 0
	if p > 1 {
		p = 1
	}
	return u, p
}

// Verdict classifies a base-vs-current comparison.
type Verdict int

const (
	// Indistinguishable: no statistically significant difference beyond
	// the minimum effect size.
	Indistinguishable Verdict = iota
	// Faster: current is significantly faster than base.
	Faster
	// Slower: current is significantly slower than base — a regression.
	Slower
)

// String renders the verdict as the word the comparison table prints.
func (v Verdict) String() string {
	switch v {
	case Faster:
		return "faster"
	case Slower:
		return "slower"
	default:
		return "indistinguishable"
	}
}

// Thresholds configures when a measured difference counts.
type Thresholds struct {
	// Alpha is the significance level of the Mann–Whitney test
	// (default 0.01).
	Alpha float64
	// MinRel is the minimum relative median change, e.g. 0.10 for 10%.
	// Differences that are statistically significant but smaller than
	// this are reported indistinguishable — with enough samples the test
	// detects arbitrarily small systematic shifts (thermal drift, ASLR
	// layout), which are not regressions anyone should gate on.
	MinRel float64
	// MinAbs is the minimum absolute median change in seconds (default
	// 0: disabled). Rows whose medians are microseconds apart pass any
	// relative threshold on scheduler noise alone; a caller comparing
	// per-kernel rows sets a floor here.
	MinAbs float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.Alpha <= 0 || t.Alpha >= 1 {
		t.Alpha = 0.01
	}
	if t.MinRel < 0 {
		t.MinRel = 0
	}
	if t.MinAbs < 0 {
		t.MinAbs = 0
	}
	return t
}

// Comparison is the result of comparing two sample sets.
type Comparison struct {
	// BaseMedian and CurMedian are the outlier-rejected medians (seconds).
	BaseMedian, CurMedian float64
	// Delta is the relative median change (CurMedian−BaseMedian)/BaseMedian.
	Delta float64
	// P is the two-sided Mann–Whitney p-value.
	P float64
	// Verdict is the classification under the thresholds.
	Verdict Verdict
}

// Compare classifies current against base: outlier rejection on both
// sides, Mann–Whitney on the cleaned samples, then the verdict — Slower
// or Faster only when the difference is simultaneously significant
// (p < Alpha), large enough relatively (|Delta| >= MinRel) and large
// enough absolutely (|CurMedian−BaseMedian| >= MinAbs).
func Compare(base, cur []float64, th Thresholds) Comparison {
	th = th.withDefaults()
	b := RejectOutliers(base)
	c := RejectOutliers(cur)
	bm, cm := Median(b), Median(c)
	_, p := MannWhitney(b, c)
	delta := 0.0
	if bm > 0 {
		delta = (cm - bm) / bm
	}
	out := Comparison{BaseMedian: bm, CurMedian: cm, Delta: delta, P: p, Verdict: Indistinguishable}
	if p < th.Alpha && math.Abs(delta) >= th.MinRel && math.Abs(cm-bm) >= th.MinAbs {
		if delta > 0 {
			out.Verdict = Slower
		} else if delta < 0 {
			out.Verdict = Faster
		}
	}
	return out
}
