package perfstat

import (
	"math"
	"testing"
)

func TestMeanMedian(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v, want 0", got)
	}
	xs := []float64{3, 1, 2}
	if got := Mean(xs); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Median(xs); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
	// Even count interpolates.
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median = %v, want 2.5", got)
	}
	// Median must not reorder the caller's slice.
	if xs[0] != 3 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestRejectOutliers(t *testing.T) {
	// A planted far outlier is dropped; the bulk survives.
	xs := []float64{10, 10.1, 9.9, 10.2, 9.8, 10, 100}
	kept := RejectOutliers(xs)
	if len(kept) != 6 {
		t.Fatalf("kept %d samples, want 6: %v", len(kept), kept)
	}
	for _, x := range kept {
		if x > 50 {
			t.Errorf("outlier %v survived", x)
		}
	}
	// Fewer than 4 samples: untouched.
	small := []float64{1, 100}
	if got := RejectOutliers(small); len(got) != 2 {
		t.Errorf("small slice filtered: %v", got)
	}
	// All-identical samples: all survive the zero-width fences.
	same := []float64{5, 5, 5, 5, 5}
	if got := RejectOutliers(same); len(got) != 5 {
		t.Errorf("identical samples filtered: %v", got)
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := []float64{9.8, 9.9, 10, 10, 10.1, 10.2, 10.1, 9.9, 10, 10}
	lo, hi := BootstrapCI(xs, 0.95, 500)
	if lo > hi {
		t.Fatalf("inverted interval [%v, %v]", lo, hi)
	}
	med := Median(xs)
	if med < lo || med > hi {
		t.Errorf("median %v outside CI [%v, %v]", med, lo, hi)
	}
	// Deterministic seed: repeated calls agree exactly.
	lo2, hi2 := BootstrapCI(xs, 0.95, 500)
	if lo != lo2 || hi != hi2 {
		t.Errorf("bootstrap not reproducible: [%v,%v] vs [%v,%v]", lo, hi, lo2, hi2)
	}
	// Single sample degenerates to a point.
	lo, hi = BootstrapCI([]float64{7}, 0.95, 100)
	if lo != 7 || hi != 7 {
		t.Errorf("single-sample CI [%v, %v], want [7, 7]", lo, hi)
	}
}

func TestMannWhitney(t *testing.T) {
	// Identical samples: every observation tied, p = 1.
	a := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if _, p := MannWhitney(a, a); p != 1 {
		t.Errorf("all-ties p = %v, want 1", p)
	}
	// Fully separated samples: decisive.
	lo := []float64{1, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 1.01, 0.99, 1}
	hi := []float64{2, 2.1, 1.9, 2.05, 1.95, 2.02, 1.98, 2.01, 1.99, 2}
	if _, p := MannWhitney(lo, hi); p >= 0.001 {
		t.Errorf("separated samples p = %v, want < 0.001", p)
	}
	// Symmetry: order of arguments must not matter.
	_, p1 := MannWhitney(lo, hi)
	_, p2 := MannWhitney(hi, lo)
	if math.Abs(p1-p2) > 1e-12 {
		t.Errorf("asymmetric p: %v vs %v", p1, p2)
	}
	// Empty side: no evidence.
	if _, p := MannWhitney(nil, hi); p != 1 {
		t.Errorf("empty-side p = %v, want 1", p)
	}
	// Heavily overlapping samples: not significant.
	b := []float64{1, 1.2, 0.8, 1.1, 0.9, 1.05, 0.95, 1}
	c := []float64{1.02, 1.18, 0.82, 1.08, 0.92, 1.03, 0.97, 1.01}
	if _, p := MannWhitney(b, c); p < 0.05 {
		t.Errorf("overlapping samples p = %v, want >= 0.05", p)
	}
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

func TestCompareVerdicts(t *testing.T) {
	base := []float64{1, 1.01, 0.99, 1.02, 0.98, 1, 1.01, 0.99, 1, 1.02}
	th := Thresholds{Alpha: 0.01, MinRel: 0.10}

	if got := Compare(base, base, th); got.Verdict != Indistinguishable {
		t.Errorf("self-compare verdict = %v, want indistinguishable", got.Verdict)
	}
	if got := Compare(base, scale(base, 1.5), th); got.Verdict != Slower {
		t.Errorf("1.5x slowdown verdict = %v (p=%v delta=%v), want slower", got.Verdict, got.P, got.Delta)
	}
	if got := Compare(base, scale(base, 0.5), th); got.Verdict != Faster {
		t.Errorf("2x speedup verdict = %v, want faster", got.Verdict)
	}
	// A significant but sub-threshold shift stays indistinguishable.
	if got := Compare(base, scale(base, 1.05), th); got.Verdict != Indistinguishable {
		t.Errorf("5%% shift with 10%% threshold verdict = %v, want indistinguishable", got.Verdict)
	}
	// The absolute floor suppresses microsecond-scale noise.
	tiny := scale(base, 1e-6)
	thAbs := Thresholds{Alpha: 0.01, MinRel: 0.10, MinAbs: 50e-6}
	if got := Compare(tiny, scale(tiny, 2), thAbs); got.Verdict != Indistinguishable {
		t.Errorf("sub-floor shift verdict = %v, want indistinguishable", got.Verdict)
	}
	// Delta reports the relative median change.
	got := Compare(base, scale(base, 1.5), th)
	if math.Abs(got.Delta-0.5) > 0.05 {
		t.Errorf("Delta = %v, want ~0.5", got.Delta)
	}
}

func TestCollect(t *testing.T) {
	calls := 0
	samples := Collect(Options{Samples: 5, Warmup: 2}, func() { calls++ })
	if calls != 7 {
		t.Errorf("body ran %d times, want 7 (2 warmup + 5 samples)", calls)
	}
	if len(samples) != 5 {
		t.Errorf("got %d samples, want 5", len(samples))
	}
	for _, s := range samples {
		if s < 0 {
			t.Errorf("negative sample %v", s)
		}
	}
}
