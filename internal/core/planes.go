// Interior/boundary plane splitting for communication/computation
// overlap. A distributed kernel that wants to hide its halo exchange
// computes the planes adjacent to the exchanged faces first, puts them
// on the wire, and fills the interior while the network drains — the
// split Bianco & Varetto's generic stencil library builds its
// distributed performance on. The association order of every plane is
// unchanged (each plane's statements are those of the unsplit loop, only
// the global plane order differs), so results stay bit-identical; the
// split is pure schedule.
package core

// PlaneSpan is an inclusive range [Lo, Hi] of grid planes along the
// decomposed axis. An empty span has Hi < Lo.
type PlaneSpan struct {
	Lo, Hi int
}

// Empty reports whether the span contains no planes.
func (s PlaneSpan) Empty() bool { return s.Hi < s.Lo }

// Count returns the number of planes in the span.
func (s PlaneSpan) Count() int {
	if s.Empty() {
		return 0
	}
	return s.Hi - s.Lo + 1
}

// SplitPlanes partitions the interior planes of an extended grid of n0
// planes (interior 1..n0-2, halo planes 0 and n0-1) into the boundary
// planes — those a periodic face exchange along the decomposed axis puts
// on the wire, in the order they should be computed and sent — and the
// interior span whose computation can overlap that exchange.
//
// With one interior plane the single plane is both faces (it is sent in
// both directions); with two there is no overlappable interior at all.
// SplitPlanes panics below one interior plane: such a level must be
// agglomerated, never exchanged.
func SplitPlanes(n0 int) (boundary []int, interior PlaneSpan) {
	lp := n0 - 2
	if lp < 1 {
		panic("core: SplitPlanes needs at least one interior plane")
	}
	if lp == 1 {
		return []int{1}, PlaneSpan{Lo: 2, Hi: 1}
	}
	return []int{1, lp}, PlaneSpan{Lo: 2, Hi: lp - 1}
}
