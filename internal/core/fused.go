// WITH-loop folding: the cross-operation fusions sac2c performs on the MG
// code (Scholz, "Effects of WITH-Loop Folding on the NAS Benchmark MG in
// SAC", IFL'98 — reference [28] of the paper). At optimization level O3 the
// composite expressions of MGrid/VCycle collapse into single traversals:
//
//	v - Resid(u)                 → subRelax   (one pass, no A·u temporary)
//	z + Smooth(r)                → addRelax   (one pass, no S·r temporary)
//	condense(2, Relax(r, P))     → projectCondense (P evaluated only at the
//	                               surviving even points — 1/8 of the work)
//	Relax(take(scatter(rn)), Q)  → interpolate (exploits the zeros of the
//	                               scattered grid: 1–8 reads per element)
//
// Each folded kernel reproduces the unfolded composition bit-for-bit
// (modulo the sign of zero): neighbour sums accumulate in the same
// lexicographic order as the generic stencil kernel, and additions of
// exact zeros — which is all the folded forms eliminate — cannot change an
// IEEE-754 sum. The package test TestOptLevelsBitIdentical holds the O3
// pipeline to that contract.
package core

import (
	"repro/internal/array"
	"repro/internal/shape"
	"repro/internal/stencil"
	wl "repro/internal/withloop"
)

// foldable reports whether the folded rank-3 kernels apply.
func (s *Solver) foldable(a *array.Array) bool {
	return s.Env.Opt >= wl.O3 && a.Dim() == 3
}

// forPlanes partitions the interior planes [1, n0-1) of a rank-3 grid
// across the environment's workers.
func forPlanes(e *wl.Env, n0, perPlane int, body func(lo, hi int)) {
	opts := e.ForOpt
	if perPlane > 0 {
		opts.SeqThreshold = max(opts.SeqThreshold, e.SeqThreshold) / perPlane
	}
	e.Sched.For(n0-2, opts, func(lo, hi, _ int) { body(lo+1, hi+1) })
}

// subRelax computes out = v − Relax(u, c): the folded form of
// aplib.Sub(v, Resid(u)). u must have its periodic border prepared.
// Boundary elements are v's (the relaxation contributes zero there).
func subRelax(e *wl.Env, v, u *array.Array, c stencil.Coeffs) *array.Array {
	shp := u.Shape()
	n0, n1, n2 := shp[0], shp[1], shp[2]
	out := e.NewArrayDirty(shp)
	od, vd, ud := out.Data(), v.Data(), u.Data()
	copyBorders(od, vd, n0, n1, n2)
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	forPlanes(e, n0, (n1-2)*(n2-2), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n1-1; j++ {
				mm := ((i-1)*n1 + (j - 1)) * n2
				mz := ((i-1)*n1 + j) * n2
				mp := ((i-1)*n1 + (j + 1)) * n2
				zm := (i*n1 + (j - 1)) * n2
				zz := (i*n1 + j) * n2
				zp := (i*n1 + (j + 1)) * n2
				pm := ((i+1)*n1 + (j - 1)) * n2
				pz := ((i+1)*n1 + j) * n2
				pp := ((i+1)*n1 + (j + 1)) * n2
				uMM, uMZ, uMP := ud[mm:mm+n2], ud[mz:mz+n2], ud[mp:mp+n2]
				uZM, uZZ, uZP := ud[zm:zm+n2], ud[zz:zz+n2], ud[zp:zp+n2]
				uPM, uPZ, uPP := ud[pm:pm+n2], ud[pz:pz+n2], ud[pp:pp+n2]
				oZZ, vZZ := od[zz:zz+n2], vd[zz:zz+n2]
				oZZ[0] = vZZ[0]
				oZZ[n2-1] = vZZ[n2-1]
				if c1 == 0 {
					// Constant folding of the zero face coefficient (the
					// A stencil): c1·s1 is an exact zero, so c0·x + c1·s1
					// equals c0·x and the six face additions disappear —
					// the specialization sac2c derives from the constant
					// coefficient vector.
					for k := 1; k < n2-1; k++ {
						s2 := uMM[k] + uMZ[k-1] + uMZ[k+1] + uMP[k] +
							uZM[k-1] + uZM[k+1] + uZP[k-1] + uZP[k+1] +
							uPM[k] + uPZ[k-1] + uPZ[k+1] + uPP[k]
						s3 := uMM[k-1] + uMM[k+1] + uMP[k-1] + uMP[k+1] +
							uPM[k-1] + uPM[k+1] + uPP[k-1] + uPP[k+1]
						oZZ[k] = vZZ[k] - ((c0*uZZ[k] + c2*s2) + c3*s3)
					}
					continue
				}
				for k := 1; k < n2-1; k++ {
					s1 := uMZ[k] + uZM[k] + uZZ[k-1] + uZZ[k+1] + uZP[k] + uPZ[k]
					s2 := uMM[k] + uMZ[k-1] + uMZ[k+1] + uMP[k] +
						uZM[k-1] + uZM[k+1] + uZP[k-1] + uZP[k+1] +
						uPM[k] + uPZ[k-1] + uPZ[k+1] + uPP[k]
					s3 := uMM[k-1] + uMM[k+1] + uMP[k-1] + uMP[k+1] +
						uPM[k-1] + uPM[k+1] + uPP[k-1] + uPP[k+1]
					oZZ[k] = vZZ[k] - (((c0*uZZ[k] + c1*s1) + c2*s2) + c3*s3)
				}
			}
		}
	})
	return out
}

// addRelax computes out = z + Relax(r, c): the folded form of
// aplib.Add(z, Smooth(r)). r must have its periodic border prepared.
func addRelax(e *wl.Env, z, r *array.Array, c stencil.Coeffs) *array.Array {
	shp := z.Shape()
	n0, n1, n2 := shp[0], shp[1], shp[2]
	out := e.NewArrayDirty(shp)
	od, zd, rd := out.Data(), z.Data(), r.Data()
	copyBorders(od, zd, n0, n1, n2)
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	forPlanes(e, n0, (n1-2)*(n2-2), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n1-1; j++ {
				mm := ((i-1)*n1 + (j - 1)) * n2
				mz := ((i-1)*n1 + j) * n2
				mp := ((i-1)*n1 + (j + 1)) * n2
				zm := (i*n1 + (j - 1)) * n2
				zz := (i*n1 + j) * n2
				zp := (i*n1 + (j + 1)) * n2
				pm := ((i+1)*n1 + (j - 1)) * n2
				pz := ((i+1)*n1 + j) * n2
				pp := ((i+1)*n1 + (j + 1)) * n2
				rMM, rMZ, rMP := rd[mm:mm+n2], rd[mz:mz+n2], rd[mp:mp+n2]
				rZM, rZZ, rZP := rd[zm:zm+n2], rd[zz:zz+n2], rd[zp:zp+n2]
				rPM, rPZ, rPP := rd[pm:pm+n2], rd[pz:pz+n2], rd[pp:pp+n2]
				oZZ, zZZ := od[zz:zz+n2], zd[zz:zz+n2]
				oZZ[0] = zZZ[0]
				oZZ[n2-1] = zZZ[n2-1]
				if c3 == 0 {
					// Constant folding of the zero corner coefficient
					// (the S stencils): the eight corner additions
					// disappear; c3·s3 was an exact zero.
					for k := 1; k < n2-1; k++ {
						s1 := rMZ[k] + rZM[k] + rZZ[k-1] + rZZ[k+1] + rZP[k] + rPZ[k]
						s2 := rMM[k] + rMZ[k-1] + rMZ[k+1] + rMP[k] +
							rZM[k-1] + rZM[k+1] + rZP[k-1] + rZP[k+1] +
							rPM[k] + rPZ[k-1] + rPZ[k+1] + rPP[k]
						oZZ[k] = zZZ[k] + ((c0*rZZ[k] + c1*s1) + c2*s2)
					}
					continue
				}
				for k := 1; k < n2-1; k++ {
					s1 := rMZ[k] + rZM[k] + rZZ[k-1] + rZZ[k+1] + rZP[k] + rPZ[k]
					s2 := rMM[k] + rMZ[k-1] + rMZ[k+1] + rMP[k] +
						rZM[k-1] + rZM[k+1] + rZP[k-1] + rZP[k+1] +
						rPM[k] + rPZ[k-1] + rPZ[k+1] + rPP[k]
					s3 := rMM[k-1] + rMM[k+1] + rMP[k-1] + rMP[k+1] +
						rPM[k-1] + rPM[k+1] + rPP[k-1] + rPP[k+1]
					oZZ[k] = zZZ[k] + (((c0*rZZ[k] + c1*s1) + c2*s2) + c3*s3)
				}
			}
		}
	})
	return out
}

// addRelaxPlus computes out = u + (z + Relax(r, c)): the folded MGrid
// iteration tail u + VCycle-result. The inner parenthesisation matches the
// unfolded Add(u, addRelax(z, r)) bit for bit. r must have its periodic
// border prepared; boundary elements are u + z.
func addRelaxPlus(e *wl.Env, u, z, r *array.Array, c stencil.Coeffs) *array.Array {
	shp := z.Shape()
	n0, n1, n2 := shp[0], shp[1], shp[2]
	out := e.NewArrayDirty(shp)
	od, udat, zd, rd := out.Data(), u.Data(), z.Data(), r.Data()
	addBorders(od, udat, zd, n0, n1, n2)
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	forPlanes(e, n0, (n1-2)*(n2-2), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n1-1; j++ {
				mm := ((i-1)*n1 + (j - 1)) * n2
				mz := ((i-1)*n1 + j) * n2
				mp := ((i-1)*n1 + (j + 1)) * n2
				zm := (i*n1 + (j - 1)) * n2
				zz := (i*n1 + j) * n2
				zp := (i*n1 + (j + 1)) * n2
				pm := ((i+1)*n1 + (j - 1)) * n2
				pz := ((i+1)*n1 + j) * n2
				pp := ((i+1)*n1 + (j + 1)) * n2
				rMM, rMZ, rMP := rd[mm:mm+n2], rd[mz:mz+n2], rd[mp:mp+n2]
				rZM, rZZ, rZP := rd[zm:zm+n2], rd[zz:zz+n2], rd[zp:zp+n2]
				rPM, rPZ, rPP := rd[pm:pm+n2], rd[pz:pz+n2], rd[pp:pp+n2]
				oZZ, uZZ, zZZ := od[zz:zz+n2], udat[zz:zz+n2], zd[zz:zz+n2]
				oZZ[0] = uZZ[0] + zZZ[0]
				oZZ[n2-1] = uZZ[n2-1] + zZZ[n2-1]
				if c3 == 0 {
					for k := 1; k < n2-1; k++ {
						s1 := rMZ[k] + rZM[k] + rZZ[k-1] + rZZ[k+1] + rZP[k] + rPZ[k]
						s2 := rMM[k] + rMZ[k-1] + rMZ[k+1] + rMP[k] +
							rZM[k-1] + rZM[k+1] + rZP[k-1] + rZP[k+1] +
							rPM[k] + rPZ[k-1] + rPZ[k+1] + rPP[k]
						oZZ[k] = uZZ[k] + (zZZ[k] + ((c0*rZZ[k] + c1*s1) + c2*s2))
					}
					continue
				}
				for k := 1; k < n2-1; k++ {
					s1 := rMZ[k] + rZM[k] + rZZ[k-1] + rZZ[k+1] + rZP[k] + rPZ[k]
					s2 := rMM[k] + rMZ[k-1] + rMZ[k+1] + rMP[k] +
						rZM[k-1] + rZM[k+1] + rZP[k-1] + rZP[k+1] +
						rPM[k] + rPZ[k-1] + rPZ[k+1] + rPP[k]
					s3 := rMM[k-1] + rMM[k+1] + rMP[k-1] + rMP[k+1] +
						rPM[k-1] + rPM[k+1] + rPP[k-1] + rPP[k+1]
					oZZ[k] = uZZ[k] + (zZZ[k] + (((c0*rZZ[k] + c1*s1) + c2*s2) + c3*s3))
				}
			}
		}
	})
	return out
}

// addBorders writes dst = a + b on the six boundary planes of a rank-3
// grid.
func addBorders(dst, a, b []float64, n0, n1, n2 int) {
	plane := n1 * n2
	for x := 0; x < plane; x++ {
		dst[x] = a[x] + b[x]
	}
	off := (n0 - 1) * plane
	for x := 0; x < plane; x++ {
		dst[off+x] = a[off+x] + b[off+x]
	}
	for i := 1; i < n0-1; i++ {
		top := i * plane
		for x := 0; x < n2; x++ {
			dst[top+x] = a[top+x] + b[top+x]
		}
		bot := top + (n1-1)*n2
		for x := 0; x < n2; x++ {
			dst[bot+x] = a[bot+x] + b[bot+x]
		}
		for j := 1; j < n1-1; j++ {
			row := (i*n1 + j) * n2
			dst[row] = a[row] + b[row]
			dst[row+n2-1] = a[row+n2-1] + b[row+n2-1]
		}
	}
}

// projectCondense computes the folded Fine2Coarse tail:
// embed(shape+1, 0, condense(2, Relax(r, c))) — the P stencil evaluated
// only at the even fine points that survive condensation. r must have its
// periodic border prepared. The coarse boundary is zero, exactly like the
// unfolded relax (zero border) → condense → embed chain.
func projectCondense(e *wl.Env, r *array.Array, c stencil.Coeffs) *array.Array {
	mf := r.Shape()[0]
	// condense halves the extent (mf/2), embed adds the missing boundary
	// element: the coarse extended extent is mf/2 + 1.
	mo := mf/2 + 1
	out := e.NewArray(shape.Of(mo, mo, mo))
	od, rd := out.Data(), r.Data()
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	forPlanes(e, mo, (mo-2)*(mo-2), func(lo, hi int) {
		for jc := lo; jc < hi; jc++ {
			i := 2 * jc
			for j2 := 1; j2 < mo-1; j2++ {
				j := 2 * j2
				mm := ((i-1)*mf + (j - 1)) * mf
				mz := ((i-1)*mf + j) * mf
				mp := ((i-1)*mf + (j + 1)) * mf
				zm := (i*mf + (j - 1)) * mf
				zz := (i*mf + j) * mf
				zp := (i*mf + (j + 1)) * mf
				pm := ((i+1)*mf + (j - 1)) * mf
				pz := ((i+1)*mf + j) * mf
				pp := ((i+1)*mf + (j + 1)) * mf
				base := (jc*mo + j2) * mo
				for j1 := 1; j1 < mo-1; j1++ {
					k := 2 * j1
					s1 := rd[mz+k] + rd[zm+k] + rd[zz+k-1] + rd[zz+k+1] + rd[zp+k] + rd[pz+k]
					s2 := rd[mm+k] + rd[mz+k-1] + rd[mz+k+1] + rd[mp+k] +
						rd[zm+k-1] + rd[zm+k+1] + rd[zp+k-1] + rd[zp+k+1] +
						rd[pm+k] + rd[pz+k-1] + rd[pz+k+1] + rd[pp+k]
					s3 := rd[mm+k-1] + rd[mm+k+1] + rd[mp+k-1] + rd[mp+k+1] +
						rd[pm+k-1] + rd[pm+k+1] + rd[pp+k-1] + rd[pp+k+1]
					od[base+j1] = ((c0*rd[zz+k] + c1*s1) + c2*s2) + c3*s3
				}
			}
		}
	})
	return out
}

// interpolate computes the folded Coarse2Fine:
// Relax(take(shape−2, scatter(2, rn)), Q) — exploiting that the scattered
// grid is zero except at even positions, so each fine element is a
// Q-weighted sum of its 1, 2, 4 or 8 nearest coarse points (trilinear
// interpolation). rn must have its periodic border prepared. The
// contributing coarse values are summed in the same lexicographic offset
// order as the generic kernel, so the result is bit-identical to the
// unfolded chain (the eliminated terms are exact zeros).
func interpolate(e *wl.Env, rn *array.Array, c stencil.Coeffs) *array.Array {
	mc := rn.Shape()[0]
	mf := 2*mc - 2
	out := e.NewArray(shape.Of(mf, mf, mf))
	od, zd := out.Data(), rn.Data()
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	forPlanes(e, mf, (mf-2)*(mf-2), func(lo, hi int) {
		for f3 := lo; f3 < hi; f3++ {
			l3, h3, o3 := f3/2, (f3+1)/2, f3&1 == 1
			for f2 := 1; f2 < mf-1; f2++ {
				l2, h2, o2 := f2/2, (f2+1)/2, f2&1 == 1
				// Row bases of the up-to-four contributing coarse rows.
				bll := (l3*mc + l2) * mc
				blh := (l3*mc + h2) * mc
				bhl := (h3*mc + l2) * mc
				bhh := (h3*mc + h2) * mc
				base := (f3*mf + f2) * mf
				for f1 := 1; f1 < mf-1; f1++ {
					l1, h1, o1 := f1/2, (f1+1)/2, f1&1 == 1
					var val float64
					switch {
					case !o3 && !o2 && !o1:
						val = c0 * zd[bll+l1]
					case !o3 && !o2 && o1:
						val = c1 * (zd[bll+l1] + zd[bll+h1])
					case !o3 && o2 && !o1:
						val = c1 * (zd[bll+l1] + zd[blh+l1])
					case o3 && !o2 && !o1:
						val = c1 * (zd[bll+l1] + zd[bhl+l1])
					case !o3 && o2 && o1:
						val = c2 * (zd[bll+l1] + zd[bll+h1] + zd[blh+l1] + zd[blh+h1])
					case o3 && !o2 && o1:
						val = c2 * (zd[bll+l1] + zd[bll+h1] + zd[bhl+l1] + zd[bhl+h1])
					case o3 && o2 && !o1:
						val = c2 * (zd[bll+l1] + zd[blh+l1] + zd[bhl+l1] + zd[bhh+l1])
					default:
						val = c3 * (zd[bll+l1] + zd[bll+h1] + zd[blh+l1] + zd[blh+h1] +
							zd[bhl+l1] + zd[bhl+h1] + zd[bhh+l1] + zd[bhh+h1])
					}
					od[base+f1] = val
				}
			}
		}
	})
	return out
}

// copyBorders copies the six boundary planes of a rank-3 grid from src to
// dst (both flat, same extents).
func copyBorders(dst, src []float64, n0, n1, n2 int) {
	plane := n1 * n2
	copy(dst[:plane], src[:plane])
	copy(dst[(n0-1)*plane:], src[(n0-1)*plane:])
	for i := 1; i < n0-1; i++ {
		top := i * plane
		copy(dst[top:top+n2], src[top:top+n2])
		bot := top + (n1-1)*n2
		copy(dst[bot:bot+n2], src[bot:bot+n2])
	}
	// The k-axis edges of every interior row.
	for i := 1; i < n0-1; i++ {
		for j := 1; j < n1-1; j++ {
			row := (i*n1 + j) * n2
			dst[row] = src[row]
			dst[row+n2-1] = src[row+n2-1]
		}
	}
}
