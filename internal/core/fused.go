// WITH-loop folding: the cross-operation fusions sac2c performs on the MG
// code (Scholz, "Effects of WITH-Loop Folding on the NAS Benchmark MG in
// SAC", IFL'98 — reference [28] of the paper). At optimization level O3 the
// composite expressions of MGrid/VCycle collapse into single traversals:
//
//	v - Resid(u)                 → subRelax   (one pass, no A·u temporary)
//	z + Smooth(r)                → addRelax   (one pass, no S·r temporary)
//	condense(2, Relax(r, P))     → projectCondense (P evaluated only at the
//	                               surviving even points — 1/8 of the work)
//	Relax(take(scatter(rn)), Q)  → interpolate (exploits the zeros of the
//	                               scattered grid: 1–8 reads per element)
//	norm2u3(v - Resid(u))        → subRelaxNorm (the final-residual norms
//	                               accumulate in the residual pass — the
//	                               grid is read once instead of twice)
//
// Each folded kernel reproduces the unfolded composition bit-for-bit
// (modulo the sign of zero): neighbour sums fold in the canonical
// line-buffer-compatible association of internal/stencil (its package
// comment defines the u1/u2/s1/s2/s3 grouping), and additions of exact
// zeros — which is all the folded forms eliminate — cannot change an
// IEEE-754 sum. The package test TestOptLevelsBitIdentical holds the O3
// pipeline to that contract.
//
// # Tiled traversal and per-level plans
//
// Every kernel traverses its interior planes under an execution plan
// resolved per (kernel, level) through Env.PlanFor: scheduling policy,
// chunk, sequential threshold, a j/k cache-tile edge, and the inner-loop
// kernel variant (internal/tune; Env.Tile and Env.Variant force values
// without a tuner). Within a plane the j/k loops are blocked into
// tile×tile strips and the nine stencil row bases roll forward by one row
// stride per j step instead of being recomputed with per-row multiplies.
// Tiling only permutes writes of independent output elements, so any tile
// size is bit-identical to the untiled traversal; the norm accumulation
// of subRelaxNorm keeps per-row running partials (always left-to-right in
// k) folded in ascending row and plane order, so it too is invariant
// under tile size, worker count and policy
// (TestTiledKernelsBitIdentical).
//
// # Kernel variants
//
// Each plane kernel has three interchangeable inner-loop backends,
// selected per (kernel, level) by the plan's Kernel field:
//
//   - scalar: the tiled loops above, u1/u2 sub-sums expanded inline.
//   - buffered: the f77 line-buffer form — u1/u2 memoised in two
//     mempool-backed row buffers threaded through the j sweep, cutting
//     the additions per element from 26 to 14. Because the buffers hold
//     exactly the canonical sub-sums, the results (grids and norms) are
//     bit-identical to scalar; buffered plans ignore the tile edge (the
//     buffers already serialise a full row through the cache).
//   - simd: the buffered form with the buffer fills and the combine loop
//     vectorised 4-wide (internal/simd; AVX2 on amd64, a pure-Go fallback
//     elsewhere). Lane arithmetic executes the same per-element operation
//     tree, so simd output is bit-identical too — the combine rows always
//     apply all four coefficient terms (like the generic O0 kernel) where
//     the scalar loops drop exact-zero terms, which cannot change a sum.
//
// The variant can be forced globally with the MG_FORCE_VARIANT
// environment variable or the -variant flag (Env.Variant).
package core

import (
	"math"
	"time"

	"repro/internal/array"
	"repro/internal/metrics"
	"repro/internal/nas"
	"repro/internal/shape"
	"repro/internal/stencil"
	"repro/internal/tune"
	wl "repro/internal/withloop"
)

// ResidNorm evaluates the NPB verification norms of the final residual,
// ‖v − A·u‖: rnm2 (the scaled L2 norm) and rnmu (the max norm). At O3 on
// rank-3 grids the norm accumulation folds into the residual traversal
// (subRelaxNorm — the residual grid is written and normed in one pass
// instead of being re-read); otherwise the residual is materialised and
// normed separately. Both paths fold the sum of squares in the canonical
// plane/row order of nas.Norm2u3Planes, so the norms are bit-identical
// across optimization levels, worker counts, policies and tile sizes.
func (s *Solver) ResidNorm(v, u *array.Array, n int) (rnm2, rnmu float64) {
	e := s.Env
	if s.foldable(u) {
		var sumSq, maxAbs float64
		r := s.probe("resid", u, func() *array.Array {
			ub := s.SetupPeriodicBorder(u)
			out, sq, mx := subRelaxNorm(e, v, ub, s.Operator)
			s.releaseIfCopy(ub, u)
			sumSq, maxAbs = sq, mx
			return out
		})
		e.Release(r)
		total := float64(n) * float64(n) * float64(n)
		return math.Sqrt(sumSq / total), maxAbs
	}
	return s.ResidNormSeparate(v, u, n)
}

// ResidNormSeparate is the unfused reference for ResidNorm: a residual
// pass followed by a second pass over the stored grid for the norms.
// Exported for the fused-vs-separate ablation benchmarks; Solve uses
// ResidNorm.
func (s *Solver) ResidNormSeparate(v, u *array.Array, n int) (rnm2, rnmu float64) {
	r := s.residSubtract(v, u)
	rnm2, rnmu = nas.Norm2u3Planes(r, n)
	s.Env.Release(r)
	return rnm2, rnmu
}

// foldable reports whether the folded rank-3 kernels apply.
func (s *Solver) foldable(a *array.Array) bool {
	return s.Env.Opt >= wl.O3 && a.Dim() == 3
}

// levelOfExtent computes log2 of an interior extent — the MG level tag.
func levelOfExtent(n int) int {
	l := 0
	for ; n > 1; n >>= 1 {
		l++
	}
	return l
}

// kernelClock starts the metrics timer for one fused-kernel invocation.
// Kernels call it at function entry — before output allocation and border
// copies — so the recorded time covers the whole invocation, not just the
// plane sweep (at class-A sizes the pool's zeroing of a fresh 258³ output
// is a solid fraction of the kernel). Without a collector it returns the
// zero time at the cost of one nil check.
func kernelClock(e *wl.Env) (t time.Time) {
	if e.Metrics != nil {
		t = time.Now()
	}
	return
}

// forPlanes partitions the interior planes [1, n0-1) of a rank-3 grid
// across the environment's workers under the (kernel, level) plan, passing
// the plan's tile edge to the body. od is the kernel's output storage:
// with a health monitor attached it gets the sampled NaN/Inf guard
// (observe.go) after the sweep — inside the timed window but after the
// tuner commit, so calibration timings stay clean. With a collector
// attached the invocation is recorded under (kernel, level) as the time
// since started (the caller's kernelClock, taken before it allocated the
// output); without any sink the only extra cost is two nil checks.
func forPlanes(e *wl.Env, kernel string, started time.Time, n0, perPlane int, od []float64, body func(lo, hi, tile int, variant string)) {
	level := levelOfExtent(n0 - 2)
	opts, tile, variant, commit := e.PlanFor(kernel, level, perPlane)
	e.Sched.For(n0-2, opts, func(lo, hi, _ int) { body(lo+1, hi+1, tile, variant) })
	commit()
	healthSample(e, kernel, level, od)
	if m := e.Metrics; m != nil {
		m.RecordVariant(0, kernel, level, variant, int64(n0-2)*int64(perPlane), time.Since(started))
	}
}

// KernelCosts is the per-point work model of the fused kernels, feeding
// the derived GFLOP/s and bandwidth columns of the metrics report. Flops
// count the arithmetic of one output point (the A stencil drops its zero
// c1 term, the S stencil its zero c3 term); bytes count unique stream
// traffic (input grids read once, the output written once — cache-resident
// stencil re-reads excluded, so the column reads as effective bandwidth).
var KernelCosts = map[string]metrics.Cost{
	"subRelax":        {Flops: 24, Bytes: 3 * 8}, // reads u, v; writes out
	"addRelax":        {Flops: 23, Bytes: 3 * 8}, // reads z, r; writes out
	"projectCondense": {Flops: 30, Bytes: 2 * 8}, // reads 8 fine pts (≈1 stream per coarse pt); writes out
	"interpolate":     {Flops: 4, Bytes: 2 * 8},  // reads ≤1 coarse pt per fine pt; writes out
	"comm3":           {Flops: 0, Bytes: 2 * 8},  // border exchange: each boundary pt read + written
	"genarray":        {Flops: 0, Bytes: 8},      // grid initialization: each pt written once
	metrics.TotalKernel: {
		// The NPB whole-benchmark operation count: 58 flops per fine
		// grid point per iteration (nas.Class.FlopCount), ~4 streams.
		Flops: 58, Bytes: 4 * 8,
	},
}

// KernelCost resolves the per-point work model for a (kernel, variant)
// pair: the line-buffered variants amortise the u1/u2 row sums across the
// sliding k window (stencil.FlopsPerElement("buffered")), so their
// per-point flop counts are lower than the scalar recomputation —
// without this, buffered/simd plans would be costed as scalar and the
// report's GFLOP/s would overstate the work done. Unknown variants (and
// scalar) fall back to KernelCosts; byte counts are variant-independent.
func KernelCost(kernel, variant string) metrics.Cost {
	if lined(variant) {
		if c, ok := bufferedKernelCosts[kernel]; ok {
			return c
		}
	}
	return KernelCosts[kernel]
}

// HasVariants reports whether kernel dispatches on the plan's kernel
// variant. Only the rank-3 fused plane kernels do; the rest (border
// exchange, initialization, pseudo-kernel totals) have a single backend.
func HasVariants(kernel string) bool {
	_, ok := bufferedKernelCosts[kernel]
	return ok
}

// bufferedKernelCosts: per-point flops of the line-buffered forms. Each
// output point pays its share of the row-buffer fills (6 adds: two
// 4-term sums per point, reused 3× as the window slides) plus the
// combine. subRelax drops c1 (6+2+1 adds, 3 mults, 2 combines, 1 sub =
// 15); addRelax drops c3 (6+2+2 adds, 3 mults, 2 combines, 1 add = 16);
// projectCondense consumes only even fine columns so each coarse point
// pays 12 fill adds (+5 s-adds, 4 mults, 3 combines = 24); interpolate
// averages ≈3 (one buffered fill add plus a mult, or a mult alone). The
// simd variant computes the full 4-term tree (+4 flops on the relax
// kernels) but shares this model: the report tracks useful work, not
// lanes spent multiplying exact zeros.
var bufferedKernelCosts = map[string]metrics.Cost{
	"subRelax":        {Flops: 15, Bytes: 3 * 8},
	"addRelax":        {Flops: 16, Bytes: 3 * 8},
	"projectCondense": {Flops: 24, Bytes: 2 * 8},
	"interpolate":     {Flops: 3, Bytes: 2 * 8},
}

// tileOr returns the effective tile edge: tile when positive, otherwise
// the whole extent (untiled).
func tileOr(tile, n int) int {
	if tile > 0 {
		return tile
	}
	return n
}

// lined reports whether a plan variant selects the line-buffered form
// (buffered or simd). Anything else — including an unknown forced
// variant — dispatches to the scalar loops.
func lined(variant string) bool {
	return variant == tune.VariantBuffered || variant == tune.VariantSIMD
}

// lineBuffers borrows the u1/u2 row buffers of the line-buffered plane
// kernels from the environment's pool. Each scheduler partition takes its
// own pair inside its body invocation (worker-local by construction), so
// parallel plans stay allocation-free once the pool is warm.
func lineBuffers(e *wl.Env, n int) (u1, u2 []float64, done func()) {
	u1 = e.Pool.GetDirty(n)
	u2 = e.Pool.GetDirty(n)
	return u1, u2, func() {
		e.Pool.Put(u1)
		e.Pool.Put(u2)
	}
}

// subRelax computes out = v − Relax(u, c): the folded form of
// aplib.Sub(v, Resid(u)). u must have its periodic border prepared.
// Boundary elements are v's (the relaxation contributes zero there).
func subRelax(e *wl.Env, v, u *array.Array, c stencil.Coeffs) *array.Array {
	started := kernelClock(e)
	shp := u.Shape()
	n0, n1, n2 := shp[0], shp[1], shp[2]
	out := e.NewArrayDirty(shp)
	od, vd, ud := out.Data(), v.Data(), u.Data()
	copyBorders(od, vd, n0, n1, n2)
	forPlanes(e, "subRelax", started, n0, (n1-2)*(n2-2), od, func(lo, hi, tile int, variant string) {
		if lined(variant) {
			u1, u2, done := lineBuffers(e, n2)
			defer done()
			vec := variant == tune.VariantSIMD
			for i := lo; i < hi; i++ {
				subRelaxPlaneLined(od, vd, ud, n1, n2, i, c, u1, u2, vec)
			}
			return
		}
		for i := lo; i < hi; i++ {
			subRelaxPlane(od, vd, ud, n1, n2, i, tile, c)
		}
	})
	return out
}

// subRelaxPlane relaxes interior plane i of subRelax, j/k-tiled. The three
// centre-row bases (planes i−1, i, i+1 at row j) roll forward one row
// stride per j step; the j±1 neighbour rows are one stride either side.
func subRelaxPlane(od, vd, ud []float64, n1, n2, i, tile int, c stencil.Coeffs) {
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	tj, tk := tileOr(tile, n1-2), tileOr(tile, n2-2)
	for jt := 1; jt < n1-1; jt += tj {
		jEnd := min(jt+tj, n1-1)
		for kt := 1; kt < n2-1; kt += tk {
			kEnd := min(kt+tk, n2-1)
			mz := ((i-1)*n1 + jt) * n2
			zz := (i*n1 + jt) * n2
			pz := ((i+1)*n1 + jt) * n2
			for j := jt; j < jEnd; j, mz, zz, pz = j+1, mz+n2, zz+n2, pz+n2 {
				uMM, uMZ, uMP := ud[mz-n2:mz], ud[mz:mz+n2], ud[mz+n2:mz+2*n2]
				uZM, uZZ, uZP := ud[zz-n2:zz], ud[zz:zz+n2], ud[zz+n2:zz+2*n2]
				uPM, uPZ, uPP := ud[pz-n2:pz], ud[pz:pz+n2], ud[pz+n2:pz+2*n2]
				oZZ, vZZ := od[zz:zz+n2], vd[zz:zz+n2]
				if c1 == 0 {
					// Constant folding of the zero face coefficient (the
					// A stencil): c1·s1 is an exact zero, so c0·x + c1·s1
					// equals c0·x and s1's additions disappear — the
					// specialization sac2c derives from the constant
					// coefficient vector.
					for k := kt; k < kEnd; k++ {
						u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
						u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
						u2m := ((uMM[k-1] + uMP[k-1]) + uPM[k-1]) + uPP[k-1]
						u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
						u2p := ((uMM[k+1] + uMP[k+1]) + uPM[k+1]) + uPP[k+1]
						s2 := (u2z + u1m) + u1p
						s3 := u2m + u2p
						oZZ[k] = vZZ[k] - ((c0*uZZ[k] + c2*s2) + c3*s3)
					}
					continue
				}
				for k := kt; k < kEnd; k++ {
					u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
					u1z := ((uMZ[k] + uZM[k]) + uZP[k]) + uPZ[k]
					u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
					u2m := ((uMM[k-1] + uMP[k-1]) + uPM[k-1]) + uPP[k-1]
					u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
					u2p := ((uMM[k+1] + uMP[k+1]) + uPM[k+1]) + uPP[k+1]
					s1 := (uZZ[k-1] + uZZ[k+1]) + u1z
					s2 := (u2z + u1m) + u1p
					s3 := u2m + u2p
					oZZ[k] = vZZ[k] - (((c0*uZZ[k] + c1*s1) + c2*s2) + c3*s3)
				}
			}
		}
	}
}

// subRelaxNorm computes out = v − Relax(u, c) and, in the same traversal,
// the NPB norm partials of out's interior: the sum of squares folded in
// the canonical row→plane order of nas.Norm2u3Planes, and the maximum
// absolute value. One grid read replaces the resid-then-norm two-pass
// sequence. Per-row partials accumulate strictly left-to-right in k (the
// k tiles of a row extend the same running accumulator), rows fold in
// ascending j and planes in ascending i, so the sums are bit-identical
// for every tile size, worker count and scheduling policy.
func subRelaxNorm(e *wl.Env, v, u *array.Array, c stencil.Coeffs) (out *array.Array, sumSq, maxAbs float64) {
	started := kernelClock(e)
	shp := u.Shape()
	n0, n1, n2 := shp[0], shp[1], shp[2]
	out = e.NewArrayDirty(shp)
	od, vd, ud := out.Data(), v.Data(), u.Data()
	copyBorders(od, vd, n0, n1, n2)
	sums := make([]float64, n0)
	maxs := make([]float64, n0)
	forPlanes(e, "subRelax", started, n0, (n1-2)*(n2-2), od, func(lo, hi, tile int, variant string) {
		if lined(variant) {
			u1, u2, done := lineBuffers(e, n2)
			defer done()
			vec := variant == tune.VariantSIMD
			for i := lo; i < hi; i++ {
				sums[i], maxs[i] = subRelaxNormPlaneLined(od, vd, ud, n1, n2, i, c, u1, u2, vec)
			}
			return
		}
		rowSum := make([]float64, tileOr(tile, n1-2))
		for i := lo; i < hi; i++ {
			sums[i], maxs[i] = subRelaxNormPlane(od, vd, ud, n1, n2, i, tile, c, rowSum)
		}
	})
	for i := 1; i < n0-1; i++ {
		sumSq += sums[i]
		if maxs[i] > maxAbs {
			maxAbs = maxs[i]
		}
	}
	return out, sumSq, maxAbs
}

// subRelaxNormPlane is subRelaxPlane plus the norm partials of plane i.
// rowSum is worker-local scratch holding one j-strip of running row sums.
func subRelaxNormPlane(od, vd, ud []float64, n1, n2, i, tile int, c stencil.Coeffs,
	rowSum []float64) (sum, maxAbs float64) {
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	tj, tk := tileOr(tile, n1-2), tileOr(tile, n2-2)
	for jt := 1; jt < n1-1; jt += tj {
		jEnd := min(jt+tj, n1-1)
		rs := rowSum[:jEnd-jt]
		for x := range rs {
			rs[x] = 0
		}
		for kt := 1; kt < n2-1; kt += tk {
			kEnd := min(kt+tk, n2-1)
			mz := ((i-1)*n1 + jt) * n2
			zz := (i*n1 + jt) * n2
			pz := ((i+1)*n1 + jt) * n2
			for j := jt; j < jEnd; j, mz, zz, pz = j+1, mz+n2, zz+n2, pz+n2 {
				uMM, uMZ, uMP := ud[mz-n2:mz], ud[mz:mz+n2], ud[mz+n2:mz+2*n2]
				uZM, uZZ, uZP := ud[zz-n2:zz], ud[zz:zz+n2], ud[zz+n2:zz+2*n2]
				uPM, uPZ, uPP := ud[pz-n2:pz], ud[pz:pz+n2], ud[pz+n2:pz+2*n2]
				oZZ, vZZ := od[zz:zz+n2], vd[zz:zz+n2]
				acc := rs[j-jt]
				if c1 == 0 {
					for k := kt; k < kEnd; k++ {
						u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
						u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
						u2m := ((uMM[k-1] + uMP[k-1]) + uPM[k-1]) + uPP[k-1]
						u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
						u2p := ((uMM[k+1] + uMP[k+1]) + uPM[k+1]) + uPP[k+1]
						s2 := (u2z + u1m) + u1p
						s3 := u2m + u2p
						r := vZZ[k] - ((c0*uZZ[k] + c2*s2) + c3*s3)
						oZZ[k] = r
						acc += r * r
						if a := math.Abs(r); a > maxAbs {
							maxAbs = a
						}
					}
				} else {
					for k := kt; k < kEnd; k++ {
						u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
						u1z := ((uMZ[k] + uZM[k]) + uZP[k]) + uPZ[k]
						u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
						u2m := ((uMM[k-1] + uMP[k-1]) + uPM[k-1]) + uPP[k-1]
						u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
						u2p := ((uMM[k+1] + uMP[k+1]) + uPM[k+1]) + uPP[k+1]
						s1 := (uZZ[k-1] + uZZ[k+1]) + u1z
						s2 := (u2z + u1m) + u1p
						s3 := u2m + u2p
						r := vZZ[k] - (((c0*uZZ[k] + c1*s1) + c2*s2) + c3*s3)
						oZZ[k] = r
						acc += r * r
						if a := math.Abs(r); a > maxAbs {
							maxAbs = a
						}
					}
				}
				rs[j-jt] = acc
			}
		}
		for _, v := range rs {
			sum += v
		}
	}
	return sum, maxAbs
}

// addRelax computes out = z + Relax(r, c): the folded form of
// aplib.Add(z, Smooth(r)). r must have its periodic border prepared.
func addRelax(e *wl.Env, z, r *array.Array, c stencil.Coeffs) *array.Array {
	started := kernelClock(e)
	shp := z.Shape()
	n0, n1, n2 := shp[0], shp[1], shp[2]
	out := e.NewArrayDirty(shp)
	od, zd, rd := out.Data(), z.Data(), r.Data()
	copyBorders(od, zd, n0, n1, n2)
	forPlanes(e, "addRelax", started, n0, (n1-2)*(n2-2), od, func(lo, hi, tile int, variant string) {
		if lined(variant) {
			u1, u2, done := lineBuffers(e, n2)
			defer done()
			vec := variant == tune.VariantSIMD
			for i := lo; i < hi; i++ {
				addRelaxPlaneLined(od, zd, nil, rd, n1, n2, i, c, u1, u2, vec)
			}
			return
		}
		for i := lo; i < hi; i++ {
			addRelaxPlane(od, zd, nil, rd, n1, n2, i, tile, c)
		}
	})
	return out
}

// addRelaxPlus computes out = u + (z + Relax(r, c)): the folded MGrid
// iteration tail u + VCycle-result. The inner parenthesisation matches the
// unfolded Add(u, addRelax(z, r)) bit for bit. r must have its periodic
// border prepared; boundary elements are u + z.
func addRelaxPlus(e *wl.Env, u, z, r *array.Array, c stencil.Coeffs) *array.Array {
	started := kernelClock(e)
	shp := z.Shape()
	n0, n1, n2 := shp[0], shp[1], shp[2]
	out := e.NewArrayDirty(shp)
	od, udat, zd, rd := out.Data(), u.Data(), z.Data(), r.Data()
	addBorders(od, udat, zd, n0, n1, n2)
	forPlanes(e, "addRelax", started, n0, (n1-2)*(n2-2), od, func(lo, hi, tile int, variant string) {
		if lined(variant) {
			u1, u2, done := lineBuffers(e, n2)
			defer done()
			vec := variant == tune.VariantSIMD
			for i := lo; i < hi; i++ {
				addRelaxPlaneLined(od, zd, udat, rd, n1, n2, i, c, u1, u2, vec)
			}
			return
		}
		for i := lo; i < hi; i++ {
			addRelaxPlane(od, zd, udat, rd, n1, n2, i, tile, c)
		}
	})
	return out
}

// addRelaxPlane relaxes interior plane i for addRelax (ud == nil,
// out = z + S·r) and addRelaxPlus (ud != nil, out = u + (z + S·r)),
// j/k-tiled with rolling row bases like subRelaxPlane.
func addRelaxPlane(od, zd, ud, rd []float64, n1, n2, i, tile int, c stencil.Coeffs) {
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	tj, tk := tileOr(tile, n1-2), tileOr(tile, n2-2)
	for jt := 1; jt < n1-1; jt += tj {
		jEnd := min(jt+tj, n1-1)
		for kt := 1; kt < n2-1; kt += tk {
			kEnd := min(kt+tk, n2-1)
			mz := ((i-1)*n1 + jt) * n2
			zz := (i*n1 + jt) * n2
			pz := ((i+1)*n1 + jt) * n2
			for j := jt; j < jEnd; j, mz, zz, pz = j+1, mz+n2, zz+n2, pz+n2 {
				rMM, rMZ, rMP := rd[mz-n2:mz], rd[mz:mz+n2], rd[mz+n2:mz+2*n2]
				rZM, rZZ, rZP := rd[zz-n2:zz], rd[zz:zz+n2], rd[zz+n2:zz+2*n2]
				rPM, rPZ, rPP := rd[pz-n2:pz], rd[pz:pz+n2], rd[pz+n2:pz+2*n2]
				oZZ, zZZ := od[zz:zz+n2], zd[zz:zz+n2]
				switch {
				case ud == nil && c3 == 0:
					// Constant folding of the zero corner coefficient
					// (the S stencils): c3·s3 was an exact zero, so s3's
					// corner additions disappear.
					for k := kt; k < kEnd; k++ {
						u1m := ((rMZ[k-1] + rZM[k-1]) + rZP[k-1]) + rPZ[k-1]
						u1z := ((rMZ[k] + rZM[k]) + rZP[k]) + rPZ[k]
						u1p := ((rMZ[k+1] + rZM[k+1]) + rZP[k+1]) + rPZ[k+1]
						u2z := ((rMM[k] + rMP[k]) + rPM[k]) + rPP[k]
						s1 := (rZZ[k-1] + rZZ[k+1]) + u1z
						s2 := (u2z + u1m) + u1p
						oZZ[k] = zZZ[k] + ((c0*rZZ[k] + c1*s1) + c2*s2)
					}
				case ud == nil:
					for k := kt; k < kEnd; k++ {
						u1m := ((rMZ[k-1] + rZM[k-1]) + rZP[k-1]) + rPZ[k-1]
						u1z := ((rMZ[k] + rZM[k]) + rZP[k]) + rPZ[k]
						u1p := ((rMZ[k+1] + rZM[k+1]) + rZP[k+1]) + rPZ[k+1]
						u2m := ((rMM[k-1] + rMP[k-1]) + rPM[k-1]) + rPP[k-1]
						u2z := ((rMM[k] + rMP[k]) + rPM[k]) + rPP[k]
						u2p := ((rMM[k+1] + rMP[k+1]) + rPM[k+1]) + rPP[k+1]
						s1 := (rZZ[k-1] + rZZ[k+1]) + u1z
						s2 := (u2z + u1m) + u1p
						s3 := u2m + u2p
						oZZ[k] = zZZ[k] + (((c0*rZZ[k] + c1*s1) + c2*s2) + c3*s3)
					}
				case c3 == 0:
					uZZ := ud[zz : zz+n2]
					for k := kt; k < kEnd; k++ {
						u1m := ((rMZ[k-1] + rZM[k-1]) + rZP[k-1]) + rPZ[k-1]
						u1z := ((rMZ[k] + rZM[k]) + rZP[k]) + rPZ[k]
						u1p := ((rMZ[k+1] + rZM[k+1]) + rZP[k+1]) + rPZ[k+1]
						u2z := ((rMM[k] + rMP[k]) + rPM[k]) + rPP[k]
						s1 := (rZZ[k-1] + rZZ[k+1]) + u1z
						s2 := (u2z + u1m) + u1p
						oZZ[k] = uZZ[k] + (zZZ[k] + ((c0*rZZ[k] + c1*s1) + c2*s2))
					}
				default:
					uZZ := ud[zz : zz+n2]
					for k := kt; k < kEnd; k++ {
						u1m := ((rMZ[k-1] + rZM[k-1]) + rZP[k-1]) + rPZ[k-1]
						u1z := ((rMZ[k] + rZM[k]) + rZP[k]) + rPZ[k]
						u1p := ((rMZ[k+1] + rZM[k+1]) + rZP[k+1]) + rPZ[k+1]
						u2m := ((rMM[k-1] + rMP[k-1]) + rPM[k-1]) + rPP[k-1]
						u2z := ((rMM[k] + rMP[k]) + rPM[k]) + rPP[k]
						u2p := ((rMM[k+1] + rMP[k+1]) + rPM[k+1]) + rPP[k+1]
						s1 := (rZZ[k-1] + rZZ[k+1]) + u1z
						s2 := (u2z + u1m) + u1p
						s3 := u2m + u2p
						oZZ[k] = uZZ[k] + (zZZ[k] + (((c0*rZZ[k] + c1*s1) + c2*s2) + c3*s3))
					}
				}
			}
		}
	}
}

// addBorders writes dst = a + b on the six boundary planes of a rank-3
// grid.
func addBorders(dst, a, b []float64, n0, n1, n2 int) {
	plane := n1 * n2
	for x := 0; x < plane; x++ {
		dst[x] = a[x] + b[x]
	}
	off := (n0 - 1) * plane
	for x := 0; x < plane; x++ {
		dst[off+x] = a[off+x] + b[off+x]
	}
	for i := 1; i < n0-1; i++ {
		top := i * plane
		for x := 0; x < n2; x++ {
			dst[top+x] = a[top+x] + b[top+x]
		}
		bot := top + (n1-1)*n2
		for x := 0; x < n2; x++ {
			dst[bot+x] = a[bot+x] + b[bot+x]
		}
		for j := 1; j < n1-1; j++ {
			row := (i*n1 + j) * n2
			dst[row] = a[row] + b[row]
			dst[row+n2-1] = a[row+n2-1] + b[row+n2-1]
		}
	}
}

// projectCondense computes the folded Fine2Coarse tail:
// embed(shape+1, 0, condense(2, Relax(r, c))) — the P stencil evaluated
// only at the even fine points that survive condensation. r must have its
// periodic border prepared. The coarse boundary is zero, exactly like the
// unfolded relax (zero border) → condense → embed chain.
func projectCondense(e *wl.Env, r *array.Array, c stencil.Coeffs) *array.Array {
	started := kernelClock(e)
	mf := r.Shape()[0]
	// condense halves the extent (mf/2), embed adds the missing boundary
	// element: the coarse extended extent is mf/2 + 1.
	mo := mf/2 + 1
	out := e.NewArray(shape.Of(mo, mo, mo))
	od, rd := out.Data(), r.Data()
	forPlanes(e, "projectCondense", started, mo, (mo-2)*(mo-2), od, func(lo, hi, tile int, variant string) {
		if lined(variant) {
			u1, u2, done := lineBuffers(e, mf)
			defer done()
			vec := variant == tune.VariantSIMD
			for jc := lo; jc < hi; jc++ {
				projectCondensePlaneLined(od, rd, mf, mo, jc, c, u1, u2, vec)
			}
			return
		}
		for jc := lo; jc < hi; jc++ {
			projectCondensePlane(od, rd, mf, mo, jc, tile, c)
		}
	})
	return out
}

// projectCondensePlane projects coarse plane jc, j/k-tiled over the coarse
// index space. The fine row bases advance two row strides per coarse row.
func projectCondensePlane(od, rd []float64, mf, mo, jc, tile int, c stencil.Coeffs) {
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	i := 2 * jc
	tj, tk := tileOr(tile, mo-2), tileOr(tile, mo-2)
	for jt := 1; jt < mo-1; jt += tj {
		jEnd := min(jt+tj, mo-1)
		for kt := 1; kt < mo-1; kt += tk {
			kEnd := min(kt+tk, mo-1)
			mz := ((i-1)*mf + 2*jt) * mf
			zz := (i*mf + 2*jt) * mf
			pz := ((i+1)*mf + 2*jt) * mf
			base := (jc*mo + jt) * mo
			for j2 := jt; j2 < jEnd; j2, mz, zz, pz, base = j2+1, mz+2*mf, zz+2*mf, pz+2*mf, base+mo {
				mm, mp := mz-mf, mz+mf
				zm, zp := zz-mf, zz+mf
				pm, pp := pz-mf, pz+mf
				for j1 := kt; j1 < kEnd; j1++ {
					k := 2 * j1
					u1m := ((rd[mz+k-1] + rd[zm+k-1]) + rd[zp+k-1]) + rd[pz+k-1]
					u1z := ((rd[mz+k] + rd[zm+k]) + rd[zp+k]) + rd[pz+k]
					u1p := ((rd[mz+k+1] + rd[zm+k+1]) + rd[zp+k+1]) + rd[pz+k+1]
					u2m := ((rd[mm+k-1] + rd[mp+k-1]) + rd[pm+k-1]) + rd[pp+k-1]
					u2z := ((rd[mm+k] + rd[mp+k]) + rd[pm+k]) + rd[pp+k]
					u2p := ((rd[mm+k+1] + rd[mp+k+1]) + rd[pm+k+1]) + rd[pp+k+1]
					s1 := (rd[zz+k-1] + rd[zz+k+1]) + u1z
					s2 := (u2z + u1m) + u1p
					s3 := u2m + u2p
					od[base+j1] = ((c0*rd[zz+k] + c1*s1) + c2*s2) + c3*s3
				}
			}
		}
	}
}

// interpolate computes the folded Coarse2Fine:
// Relax(take(shape−2, scatter(2, rn)), Q) — exploiting that the scattered
// grid is zero except at even positions, so each fine element is a
// Q-weighted sum of its 1, 2, 4 or 8 nearest coarse points (trilinear
// interpolation). rn must have its periodic border prepared. The
// contributing coarse values fold in the canonical association of the
// generic kernel (each parity case is a surviving u1/u2 sub-sum chain),
// so the result is bit-identical to the unfolded chain (the eliminated
// terms are exact zeros).
func interpolate(e *wl.Env, rn *array.Array, c stencil.Coeffs) *array.Array {
	started := kernelClock(e)
	mc := rn.Shape()[0]
	mf := 2*mc - 2
	out := e.NewArray(shape.Of(mf, mf, mf))
	od, zd := out.Data(), rn.Data()
	forPlanes(e, "interpolate", started, mf, (mf-2)*(mf-2), od, func(lo, hi, tile int, variant string) {
		if lined(variant) {
			// One cross-row buffer of coarse-row length suffices: the
			// parity cases pair at most the four coarse rows of one
			// fine row.
			b := e.Pool.GetDirty(mc)
			defer e.Pool.Put(b)
			vec := variant == tune.VariantSIMD
			for f3 := lo; f3 < hi; f3++ {
				interpolatePlaneLined(od, zd, mc, mf, f3, c, b, vec)
			}
			return
		}
		for f3 := lo; f3 < hi; f3++ {
			interpolatePlane(od, zd, mc, mf, f3, tile, c)
		}
	})
	return out
}

// interpolatePlane interpolates fine plane f3, j/k-tiled over the fine
// index space. The four contributing coarse row bases are derived with two
// multiplies per row (the high row is the low row or one stride above).
func interpolatePlane(od, zd []float64, mc, mf, f3, tile int, c stencil.Coeffs) {
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	l3, h3, o3 := f3/2, (f3+1)/2, f3&1 == 1
	rowL3, rowH3 := l3*mc, h3*mc
	tj, tk := tileOr(tile, mf-2), tileOr(tile, mf-2)
	for jt := 1; jt < mf-1; jt += tj {
		jEnd := min(jt+tj, mf-1)
		for kt := 1; kt < mf-1; kt += tk {
			kEnd := min(kt+tk, mf-1)
			base := (f3*mf + jt) * mf
			for f2 := jt; f2 < jEnd; f2, base = f2+1, base+mf {
				l2, h2, o2 := f2/2, (f2+1)/2, f2&1 == 1
				// Row bases of the up-to-four contributing coarse rows.
				bll := (rowL3 + l2) * mc
				blh := bll + (h2-l2)*mc
				bhl := (rowH3 + l2) * mc
				bhh := bhl + (h2-l2)*mc
				for f1 := kt; f1 < kEnd; f1++ {
					l1, h1, o1 := f1/2, (f1+1)/2, f1&1 == 1
					var val float64
					switch {
					case !o3 && !o2 && !o1:
						val = c0 * zd[bll+l1]
					case !o3 && !o2 && o1:
						val = c1 * (zd[bll+l1] + zd[bll+h1])
					case !o3 && o2 && !o1:
						val = c1 * (zd[bll+l1] + zd[blh+l1])
					case o3 && !o2 && !o1:
						val = c1 * (zd[bll+l1] + zd[bhl+l1])
					case !o3 && o2 && o1:
						val = c2 * ((zd[bll+l1] + zd[blh+l1]) + (zd[bll+h1] + zd[blh+h1]))
					case o3 && !o2 && o1:
						val = c2 * ((zd[bll+l1] + zd[bhl+l1]) + (zd[bll+h1] + zd[bhl+h1]))
					case o3 && o2 && !o1:
						val = c2 * (((zd[bll+l1] + zd[blh+l1]) + zd[bhl+l1]) + zd[bhh+l1])
					default:
						val = c3 * ((((zd[bll+l1] + zd[blh+l1]) + zd[bhl+l1]) + zd[bhh+l1]) +
							(((zd[bll+h1] + zd[blh+h1]) + zd[bhl+h1]) + zd[bhh+h1]))
					}
					od[base+f1] = val
				}
			}
		}
	}
}

// copyBorders copies the six boundary planes of a rank-3 grid from src to
// dst (both flat, same extents).
func copyBorders(dst, src []float64, n0, n1, n2 int) {
	plane := n1 * n2
	copy(dst[:plane], src[:plane])
	copy(dst[(n0-1)*plane:], src[(n0-1)*plane:])
	for i := 1; i < n0-1; i++ {
		top := i * plane
		copy(dst[top:top+n2], src[top:top+n2])
		bot := top + (n1-1)*n2
		copy(dst[bot:bot+n2], src[bot:bot+n2])
	}
	// The k-axis edges of every interior row.
	for i := 1; i < n0-1; i++ {
		for j := 1; j < n1-1; j++ {
			row := (i*n1 + j) * n2
			dst[row] = src[row]
			dst[row+n2-1] = src[row+n2-1]
		}
	}
}
