// The SAC program as data: an expression IR of the MG algorithm and the
// WITH-loop-folding optimizer that rewrites it.
//
// fused.go supplies hand-written folded kernels; this file demonstrates
// that the folds are *derivable*: the paper's VCycle/MGrid expressions are
// built as an operation DAG (exactly the compositions of Figs. 4/6/7), and
// Optimize applies the rewrite rules of WITH-loop folding (paper reference
// [28]) to produce the fused forms mechanically:
//
//	Sub(v, Relax(Border(u), c))             → FSubRelax(v, u, c)
//	Add(z, Relax(Border(r), c))             → FAddRelax(z, r, c)
//	EmbedGrow(Condense(Relax(Border(r),c))) → FProject(r, c)
//	Relax(TakeShrink(Scatter(Border(z))),c) → FInterp(z, c)
//
// Eval executes either form; the test suite checks that the optimized DAG
// produces bit-identical results and counts how many whole-array
// traversals folding eliminates.
package core

import (
	"fmt"

	"repro/internal/aplib"
	"repro/internal/array"
	"repro/internal/shape"
	"repro/internal/stencil"
)

// Expr is one node of a SAC program DAG. Sub-expressions are shared by
// pointer; Eval memoizes per node, so a value used twice is computed once
// (SAC's own semantics — it names intermediate values).
type Expr interface{ exprNode() }

// Input references a named argument array.
type Input struct{ Name string }

// Border is SetupPeriodicBorder(X).
type Border struct{ X Expr }

// RelaxOp is RelaxKernel(X, C).
type RelaxOp struct {
	X Expr
	C stencil.Coeffs
}

// SubOp is the element-wise A − B.
type SubOp struct{ A, B Expr }

// AddOp is the element-wise A + B.
type AddOp struct{ A, B Expr }

// CondenseOp is condense(2, X).
type CondenseOp struct{ X Expr }

// EmbedGrow is embed(shape(X)+1, 0, X) — the Fine2Coarse padding.
type EmbedGrow struct{ X Expr }

// ScatterOp is scatter(2, X).
type ScatterOp struct{ X Expr }

// TakeShrink is take(shape(X)−2, X) — the Coarse2Fine trimming.
type TakeShrink struct{ X Expr }

// The folded forms produced by Optimize:

// FSubRelax is V − Relax(Border(U), C) in one traversal.
type FSubRelax struct {
	V, U Expr
	C    stencil.Coeffs
}

// FAddRelax is Z + Relax(Border(R), C) in one traversal.
type FAddRelax struct {
	Z, R Expr
	C    stencil.Coeffs
}

// FProject is EmbedGrow(Condense(Relax(Border(R), C))) in one traversal
// of the surviving points.
type FProject struct {
	R Expr
	C stencil.Coeffs
}

// FInterp is Relax(TakeShrink(Scatter(Border(Z))), C) as direct
// interpolation.
type FInterp struct {
	Z Expr
	C stencil.Coeffs
}

func (*Input) exprNode()      {}
func (*Border) exprNode()     {}
func (*RelaxOp) exprNode()    {}
func (*SubOp) exprNode()      {}
func (*AddOp) exprNode()      {}
func (*CondenseOp) exprNode() {}
func (*EmbedGrow) exprNode()  {}
func (*ScatterOp) exprNode()  {}
func (*TakeShrink) exprNode() {}
func (*FSubRelax) exprNode()  {}
func (*FAddRelax) exprNode()  {}
func (*FProject) exprNode()   {}
func (*FInterp) exprNode()    {}

// VCycleExpr builds the paper's Fig. 4 V-cycle as an expression DAG over
// the residual input r, for a hierarchy of the given depth (depth 1 is
// the coarsest level: a single smoothing step). The structure is the
// literal composition of Resid, Smooth, Fine2Coarse and Coarse2Fine from
// Figs. 6/7.
func VCycleExpr(r Expr, depth int, smoother stencil.Coeffs) Expr {
	if depth <= 1 {
		return &RelaxOp{X: &Border{X: r}, C: smoother} // z = Smooth(r)
	}
	// rn = Fine2Coarse(r) = embed(+1, condense(2, Relax(Border(r), P)))
	rn := &EmbedGrow{X: &CondenseOp{X: &RelaxOp{X: &Border{X: r}, C: stencil.P}}}
	zn := VCycleExpr(rn, depth-1, smoother)
	// z = Coarse2Fine(zn) = Relax(take(-2, scatter(2, Border(zn))), Q)
	z := &RelaxOp{X: &TakeShrink{X: &ScatterOp{X: &Border{X: zn}}}, C: stencil.Q}
	// r2 = r − Resid(z);  result = z + Smooth(r2)
	r2 := &SubOp{A: r, B: &RelaxOp{X: &Border{X: z}, C: stencil.A}}
	return &AddOp{A: z, B: &RelaxOp{X: &Border{X: r2}, C: smoother}}
}

// MGridIterExpr builds one iteration of the paper's Fig. 4 MGrid loop as
// an expression over the inputs u and v:
//
//	r = v − Resid(u);  u' = u + VCycle(r)
//
// The returned DAG computes u'.
func MGridIterExpr(u, v Expr, depth int, smoother stencil.Coeffs) Expr {
	r := &SubOp{A: v, B: &RelaxOp{X: &Border{X: u}, C: stencil.A}}
	return &AddOp{A: u, B: VCycleExpr(r, depth, smoother)}
}

// Optimize applies the WITH-loop-folding rewrite rules bottom-up and
// returns the rewritten DAG with the number of folds performed. Shared
// sub-expressions are rewritten once.
func Optimize(e Expr) (Expr, int) {
	folds := 0
	memo := map[Expr]Expr{}
	var opt func(Expr) Expr
	opt = func(e Expr) Expr {
		if r, ok := memo[e]; ok {
			return r
		}
		var out Expr
		switch n := e.(type) {
		case *Input:
			out = n
		case *Border:
			out = &Border{X: opt(n.X)}
		case *RelaxOp:
			x := opt(n.X)
			// Relax(TakeShrink(Scatter(Border(z)))) → FInterp(z).
			if tk, ok := x.(*TakeShrink); ok {
				if sc, ok := tk.X.(*ScatterOp); ok {
					if bd, ok := sc.X.(*Border); ok {
						folds++
						out = &FInterp{Z: bd.X, C: n.C}
						break
					}
				}
			}
			out = &RelaxOp{X: x, C: n.C}
		case *SubOp:
			a, b := opt(n.A), opt(n.B)
			// Sub(v, Relax(Border(u))) → FSubRelax(v, u).
			if rl, ok := b.(*RelaxOp); ok {
				if bd, ok := rl.X.(*Border); ok {
					folds++
					out = &FSubRelax{V: a, U: bd.X, C: rl.C}
					break
				}
			}
			out = &SubOp{A: a, B: b}
		case *AddOp:
			a, b := opt(n.A), opt(n.B)
			// Add(z, Relax(Border(r))) → FAddRelax(z, r).
			if rl, ok := b.(*RelaxOp); ok {
				if bd, ok := rl.X.(*Border); ok {
					folds++
					out = &FAddRelax{Z: a, R: bd.X, C: rl.C}
					break
				}
			}
			out = &AddOp{A: a, B: b}
		case *EmbedGrow:
			x := opt(n.X)
			// EmbedGrow(Condense(Relax(Border(r)))) → FProject(r).
			if cd, ok := x.(*CondenseOp); ok {
				if rl, ok := cd.X.(*RelaxOp); ok {
					if bd, ok := rl.X.(*Border); ok {
						folds++
						out = &FProject{R: bd.X, C: rl.C}
						break
					}
				}
			}
			out = &EmbedGrow{X: x}
		case *CondenseOp:
			out = &CondenseOp{X: opt(n.X)}
		case *ScatterOp:
			out = &ScatterOp{X: opt(n.X)}
		case *TakeShrink:
			out = &TakeShrink{X: opt(n.X)}
		default:
			out = e // already-folded nodes pass through
		}
		memo[e] = out
		return out
	}
	return opt(e), folds
}

// Traversals counts the whole-array operations a DAG performs — the
// static cost metric WITH-loop folding improves (each fused node is one
// traversal where the unfolded form needed two to four).
func Traversals(e Expr) int {
	seen := map[Expr]bool{}
	var walk func(Expr) int
	walk = func(e Expr) int {
		if seen[e] {
			return 0
		}
		seen[e] = true
		switch n := e.(type) {
		case *Input:
			return 0
		case *Border:
			return 1 + walk(n.X)
		case *RelaxOp:
			return 1 + walk(n.X)
		case *SubOp:
			return 1 + walk(n.A) + walk(n.B)
		case *AddOp:
			return 1 + walk(n.A) + walk(n.B)
		case *CondenseOp:
			return 1 + walk(n.X)
		case *EmbedGrow:
			return 1 + walk(n.X)
		case *ScatterOp:
			return 1 + walk(n.X)
		case *TakeShrink:
			return 1 + walk(n.X)
		case *FSubRelax:
			return 2 + walk(n.V) + walk(n.U) // border + fused traversal
		case *FAddRelax:
			return 2 + walk(n.Z) + walk(n.R)
		case *FProject:
			return 2 + walk(n.R)
		case *FInterp:
			return 2 + walk(n.Z)
		default:
			panic(fmt.Sprintf("core: Traversals: unknown node %T", e))
		}
	}
	return walk(e)
}

// EvalExpr evaluates a program DAG against named inputs. Shared nodes are
// computed once. Inputs are never mutated (Border copies before updating),
// so the evaluation is purely functional like the SAC source.
func (s *Solver) EvalExpr(e Expr, inputs map[string]*array.Array) *array.Array {
	memo := map[Expr]*array.Array{}
	var eval func(Expr) *array.Array
	eval = func(e Expr) *array.Array {
		if v, ok := memo[e]; ok {
			return v
		}
		var out *array.Array
		switch n := e.(type) {
		case *Input:
			v, ok := inputs[n.Name]
			if !ok {
				panic(fmt.Sprintf("core: EvalExpr: unbound input %q", n.Name))
			}
			out = v
		case *Border:
			out = s.SetupPeriodicBorder(eval(n.X).Clone())
		case *RelaxOp:
			out = stencil.Relax(s.Env, eval(n.X), n.C)
		case *SubOp:
			out = aplib.Sub(s.Env, eval(n.A), eval(n.B))
		case *AddOp:
			out = aplib.Add(s.Env, eval(n.A), eval(n.B))
		case *CondenseOp:
			out = aplib.Condense(s.Env, 2, eval(n.X))
		case *EmbedGrow:
			x := eval(n.X)
			out = aplib.Embed(s.Env, shape.Shape(shape.AddScalar([]int(x.Shape()), 1)),
				shape.Zeros(x.Dim()), x)
		case *ScatterOp:
			out = aplib.Scatter(s.Env, 2, eval(n.X))
		case *TakeShrink:
			x := eval(n.X)
			out = aplib.Take(s.Env, shape.Shape(shape.AddScalar([]int(x.Shape()), -2)), x)
		case *FSubRelax:
			ub := s.SetupPeriodicBorder(eval(n.U).Clone())
			out = subRelax(s.Env, eval(n.V), ub, n.C)
		case *FAddRelax:
			rb := s.SetupPeriodicBorder(eval(n.R).Clone())
			out = addRelax(s.Env, eval(n.Z), rb, n.C)
		case *FProject:
			rb := s.SetupPeriodicBorder(eval(n.R).Clone())
			out = projectCondense(s.Env, rb, n.C)
		case *FInterp:
			zb := s.SetupPeriodicBorder(eval(n.Z).Clone())
			out = interpolate(s.Env, zb, n.C)
		default:
			panic(fmt.Sprintf("core: EvalExpr: unknown node %T", e))
		}
		memo[e] = out
		return out
	}
	return eval(e)
}
