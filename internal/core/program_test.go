package core

import (
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/nas"
	"repro/internal/shape"
	"repro/internal/stencil"
	wl "repro/internal/withloop"
)

// residualInput builds a class-S-like residual grid to feed the VCycle
// expression.
func residualInput(n int) *array.Array {
	m := n + 2
	r := array.New(shape.Of(m, m, m))
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			for k := 1; k <= n; k++ {
				r.Set3(i, j, k, math.Sin(float64(i*j+k)*0.13))
			}
		}
	}
	nas.Comm3(r)
	return r
}

// The expression DAG of the paper's VCycle, evaluated naively, must agree
// with Solver.VCycle at O2 (the unfolded composition) element for element.
func TestVCycleExprMatchesSolver(t *testing.T) {
	env := wl.Default()
	env.Opt = wl.O2 // unfolded compositional path in Solver
	s := New(env)
	depth := 4
	n := 1 << depth
	r := residualInput(n)

	expr := VCycleExpr(&Input{Name: "r"}, depth, stencil.SClassSWA)
	got := s.EvalExpr(expr, map[string]*array.Array{"r": r.Clone()})
	want := s.VCycle(r.Clone())
	// Interior elements identical (borders of intermediate results are
	// dead values).
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			for k := 1; k <= n; k++ {
				if got.At3(i, j, k) != want.At3(i, j, k) {
					t.Fatalf("expr VCycle differs at (%d,%d,%d): %.17g vs %.17g",
						i, j, k, got.At3(i, j, k), want.At3(i, j, k))
				}
			}
		}
	}
}

// Optimize must find every fold in the V-cycle DAG and the optimized DAG
// must evaluate to the same values.
func TestOptimizeFoldsAndPreservesSemantics(t *testing.T) {
	depth := 4
	expr := VCycleExpr(&Input{Name: "r"}, depth, stencil.SClassSWA)
	opt, folds := Optimize(expr)
	// Per non-base level: FProject + FInterp + FSubRelax + FAddRelax = 4.
	wantFolds := 4 * (depth - 1)
	if folds != wantFolds {
		t.Fatalf("folds = %d, want %d", folds, wantFolds)
	}

	before := Traversals(expr)
	after := Traversals(opt)
	if after >= before {
		t.Fatalf("folding did not reduce traversals: %d -> %d", before, after)
	}
	t.Logf("whole-array traversals: %d unfolded -> %d folded (%.0f%% saved, %d folds)",
		before, after, 100*(1-float64(after)/float64(before)), folds)

	env := wl.Default()
	s := New(env)
	n := 1 << depth
	r := residualInput(n)
	a := s.EvalExpr(expr, map[string]*array.Array{"r": r})
	b := s.EvalExpr(opt, map[string]*array.Array{"r": r})
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			for k := 1; k <= n; k++ {
				if a.At3(i, j, k) != b.At3(i, j, k) {
					t.Fatalf("optimized DAG differs at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

// The base case (depth 1) is a single smoothing with nothing to fold.
func TestOptimizeBaseCase(t *testing.T) {
	expr := VCycleExpr(&Input{Name: "r"}, 1, stencil.SClassSWA)
	if _, ok := expr.(*RelaxOp); !ok {
		t.Fatalf("depth-1 expression is %T, want *RelaxOp", expr)
	}
	opt, folds := Optimize(expr)
	if folds != 0 {
		t.Fatalf("base case folded %d times", folds)
	}
	if _, ok := opt.(*RelaxOp); !ok {
		t.Fatalf("base case rewritten to %T", opt)
	}
}

// Shared sub-expressions are evaluated once: evaluating a DAG where one
// node feeds two consumers must not recompute it (checked via a counting
// input wrapper — the DAG evaluator memoizes by node identity, so the
// doubly-consumed Border node appears once in the memo).
func TestEvalExprMemoizesSharedNodes(t *testing.T) {
	env := wl.Default()
	s := New(env)
	r := &Input{Name: "r"}
	shared := &Border{X: r}
	// shared feeds both sides of an Add.
	e := &AddOp{A: &RelaxOp{X: shared, C: stencil.A}, B: &RelaxOp{X: shared, C: stencil.SClassSWA}}
	in := residualInput(4)
	got := s.EvalExpr(e, map[string]*array.Array{"r": in})
	// Reference: compute by hand.
	b := s.SetupPeriodicBorder(in.Clone())
	want := array.New(in.Shape())
	ra := stencil.Relax(env, b, stencil.A)
	rs := stencil.Relax(env, b, stencil.SClassSWA)
	for i := range want.Data() {
		want.Data()[i] = ra.Data()[i] + rs.Data()[i]
	}
	if !got.ApproxEqual(want, 0) {
		t.Fatal("shared-node evaluation wrong")
	}
}

func TestEvalExprUnboundInputPanics(t *testing.T) {
	s := New(wl.Default())
	defer func() {
		if recover() == nil {
			t.Error("unbound input did not panic")
		}
	}()
	s.EvalExpr(&Input{Name: "missing"}, nil)
}

// Inputs must never be mutated by evaluation (functional semantics).
func TestEvalExprPreservesInputs(t *testing.T) {
	env := wl.Default()
	s := New(env)
	r := residualInput(8)
	orig := r.Clone()
	expr, _ := Optimize(VCycleExpr(&Input{Name: "r"}, 3, stencil.SClassSWA))
	s.EvalExpr(expr, map[string]*array.Array{"r": r})
	if !r.Equal(orig) {
		t.Fatal("evaluation mutated its input")
	}
}

// A full MGrid iteration as an expression, optimized, must reproduce the
// solver's iteration on the NPB problem.
func TestMGridIterExprMatchesSolver(t *testing.T) {
	env := wl.Default()
	env.Opt = wl.O2
	s := New(env)
	class := nas.ClassS
	b := NewBenchmark(class, env)
	b.Reset()
	v := b.V()
	u0 := env.NewArray(v.Shape())

	// Solver: one iteration.
	want := s.MGrid(v, 1)

	// Expression: optimized DAG for the same iteration.
	expr, folds := Optimize(MGridIterExpr(&Input{Name: "u"}, &Input{Name: "v"},
		class.LT(), class.SmootherCoeffs()))
	if folds < class.LT() {
		t.Fatalf("only %d folds in the MGrid iteration", folds)
	}
	got := s.EvalExpr(expr, map[string]*array.Array{"u": u0, "v": v})
	n := class.N
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			for k := 1; k <= n; k++ {
				if got.At3(i, j, k) != want.At3(i, j, k) {
					t.Fatalf("MGrid expression differs at (%d,%d,%d): %.17g vs %.17g",
						i, j, k, got.At3(i, j, k), want.At3(i, j, k))
				}
			}
		}
	}
}
