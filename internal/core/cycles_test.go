package core

import (
	"math"
	"testing"

	"repro/internal/aplib"
	"repro/internal/array"
	"repro/internal/nas"
	"repro/internal/shape"
	wl "repro/internal/withloop"
)

// contractionFactor measures the mean per-cycle residual reduction of a
// configured solver on the class-S problem.
func contractionFactor(t *testing.T, configure func(*Solver)) float64 {
	t.Helper()
	env := wl.Default()
	b := NewBenchmark(nas.ClassS, env)
	configure(b.Solver)
	b.Reset()
	n := nas.ClassS.N
	norm := func(u *array.Array) float64 {
		r := b.Solver.residSubtract(b.V(), u)
		rnm2, _ := nas.Norm2u3(r, n)
		env.Release(r)
		return rnm2
	}
	u := env.NewArray(b.V().Shape())
	start := norm(u)
	const cycles = 3
	cur := u
	for c := 0; c < cycles; c++ {
		r := b.Solver.residSubtract(b.V(), cur)
		z := b.Solver.VCycle(r)
		env.Release(r)
		next := aplib.Add(env, cur, z)
		env.Release(z)
		env.Release(cur)
		cur = next
	}
	end := norm(cur)
	return math.Pow(end/start, 1.0/cycles)
}

// Gamma=1 must reproduce the plain benchmark exactly (it is the default
// configuration under another name).
func TestGammaOneIsBenchmark(t *testing.T) {
	base, _ := NewBenchmark(nas.ClassS, wl.Default()).Run()
	env := wl.Default()
	b := NewBenchmark(nas.ClassS, env)
	b.Solver.Gamma = 1
	b.Solver.PostSmooth = 1
	got, _ := b.Run()
	if got != base {
		t.Fatalf("Gamma=1/PostSmooth=1 changed the result: %v vs %v", got, base)
	}
}

// A W-cycle contracts at least as fast per cycle as a V-cycle (it does
// strictly more coarse-grid work).
func TestWCycleContractsFaster(t *testing.T) {
	v := contractionFactor(t, func(*Solver) {})
	w := contractionFactor(t, func(s *Solver) { s.Gamma = 2 })
	if w > v*1.02 {
		t.Fatalf("W-cycle contraction %.4f worse than V-cycle %.4f", w, v)
	}
	t.Logf("contraction per cycle: V %.4f, W %.4f", v, w)
}

// Extra post-smoothing strictly improves the per-cycle contraction.
func TestPostSmoothingImprovesContraction(t *testing.T) {
	one := contractionFactor(t, func(*Solver) {})
	three := contractionFactor(t, func(s *Solver) { s.PostSmooth = 3 })
	if three >= one {
		t.Fatalf("3 post-smoothing steps (%.4f) not better than 1 (%.4f)", three, one)
	}
	t.Logf("contraction per cycle: 1 smooth %.4f, 3 smooths %.4f", one, three)
}

// The W-cycle still verifies the NPB norm? No — it computes a *different*
// (better) approximation, so the official constant no longer applies; but
// it must still converge to a solution of the same system: the final
// residual must be no larger than the V-cycle benchmark's.
func TestWCycleResidualNotWorse(t *testing.T) {
	vb := NewBenchmark(nas.ClassS, wl.Default())
	vNorm, _ := vb.Run()
	env := wl.Default()
	wb := NewBenchmark(nas.ClassS, env)
	wb.Solver.Gamma = 2
	wNorm, _ := wb.Run()
	if wNorm > vNorm {
		t.Fatalf("W-cycle final residual %.6e worse than V-cycle %.6e", wNorm, vNorm)
	}
}

// Cycle extensions compose with the rank-generic path (2-D grids).
func TestWCycleRank2(t *testing.T) {
	env := wl.Default()
	s := New(env)
	s.Operator = [4]float64{-10.0 / 3.0, 2.0 / 3.0, 1.0 / 6.0, 0}
	s.Project = [4]float64{1.0, 0.5, 0.25, 0}
	s.Interp = [4]float64{1.0, 0.5, 0.25, 0}
	s.Smoother = [4]float64{-0.3, 0.0, 0.0, 0}
	s.Gamma = 2
	s.PostSmooth = 2
	n := 16
	v := array.New(shape.Of(n+2, n+2))
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			v.Set(shape.Index{i, j},
				math.Sin(2*math.Pi*float64(i-1)/float64(n))*math.Cos(2*math.Pi*float64(j-1)/float64(n)))
		}
	}
	u := s.MGrid(v, 4)
	for _, x := range u.Data() {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("2-D W-cycle produced non-finite values")
		}
	}
}

// All optimization levels agree for the extended configurations too (the
// folded fast path is bypassed, but O0 vs O2 still must match).
func TestCycleExtensionsLevelEquivalence(t *testing.T) {
	run := func(opt wl.OptLevel) float64 {
		env := wl.Default()
		env.Opt = opt
		b := NewBenchmark(nas.ClassS, env)
		b.Solver.Gamma = 2
		b.Solver.PostSmooth = 2
		rnm2, _ := b.Run()
		return rnm2
	}
	ref := run(wl.O0)
	for _, opt := range []wl.OptLevel{wl.O1, wl.O2, wl.O3} {
		if got := run(opt); got != ref {
			t.Fatalf("opt %v: %v != O0's %v", opt, got, ref)
		}
	}
}
