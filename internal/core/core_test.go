package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/aplib"
	"repro/internal/array"
	"repro/internal/f77"
	"repro/internal/nas"
	"repro/internal/sched"
	"repro/internal/shape"
	"repro/internal/stencil"
	"repro/internal/tune"
	wl "repro/internal/withloop"
)

// TestVerifyClassS: the high-level SAC program must pass the official NPB
// verification, like the low-level reference.
func TestVerifyClassS(t *testing.T) {
	b := NewBenchmark(nas.ClassS, wl.Default())
	rnm2, _ := b.Run()
	want, _, _ := nas.ClassS.VerifyValue()
	if verified, ok := nas.ClassS.Verify(rnm2); !ok || !verified {
		t.Fatalf("class S rnm2 = %.13e, want %.13e ± %g", rnm2, want, nas.Epsilon)
	}
}

func TestVerifyClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W skipped in -short")
	}
	b := NewBenchmark(nas.ClassW, wl.Default())
	rnm2, _ := b.Run()
	if verified, ok := nas.ClassW.Verify(rnm2); !ok || !verified {
		want, _, _ := nas.ClassW.VerifyValue()
		t.Fatalf("class W rnm2 = %.13e, want %.13e", rnm2, want)
	}
}

// Cross-implementation: the SAC-style solution must agree with the f77
// reference far beyond the verification tolerance (they compute the same
// algorithm with different association of floating-point operations).
func TestMatchesF77Reference(t *testing.T) {
	b := NewBenchmark(nas.ClassS, wl.Default())
	sacNorm, _ := b.Run()
	ref := f77.New(nas.ClassS)
	refNorm, _ := ref.Run()
	if rel := math.Abs(sacNorm-refNorm) / refNorm; rel > 1e-10 {
		t.Fatalf("SAC %.15e vs f77 %.15e: relative difference %.2e", sacNorm, refNorm, rel)
	}
	// Solution grids agree element-wise on the interior.
	n := nas.ClassS.N
	for i3 := 1; i3 <= n; i3++ {
		for i2 := 1; i2 <= n; i2++ {
			for i1 := 1; i1 <= n; i1++ {
				a := b.U().At3(i3, i2, i1)
				f := ref.U().At3(i3, i2, i1)
				if d := math.Abs(a - f); d > 1e-14 {
					t.Fatalf("u differs at (%d,%d,%d): %.17g vs %.17g", i3, i2, i1, a, f)
				}
			}
		}
	}
}

// Every optimization level produces bit-identical benchmark results: the
// fused kernels replicate the generic WITH-loop arithmetic exactly.
func TestOptLevelsBitIdentical(t *testing.T) {
	var ref float64
	for i, opt := range []wl.OptLevel{wl.O0, wl.O1, wl.O2, wl.O3} {
		env := wl.Default()
		env.Opt = opt
		rnm2, _ := NewBenchmark(nas.ClassS, env).Run()
		if i == 0 {
			ref = rnm2
			continue
		}
		if rnm2 != ref {
			t.Fatalf("opt %v: rnm2 = %.17e, O0 = %.17e (not bitwise equal)", opt, rnm2, ref)
		}
	}
}

// Implicit parallelization must not change a single bit.
func TestParallelBitIdentical(t *testing.T) {
	seq, _ := NewBenchmark(nas.ClassS, wl.Default()).Run()
	for _, workers := range []int{2, 4} {
		env := wl.Parallel(workers)
		rnm2, _ := NewBenchmark(nas.ClassS, env).Run()
		env.Close()
		if rnm2 != seq {
			t.Fatalf("%d workers: rnm2 = %.17e, sequential %.17e", workers, rnm2, seq)
		}
	}
}

// SetupPeriodicBorder must agree exactly with the low-level comm3.
func TestSetupPeriodicBorderMatchesComm3(t *testing.T) {
	for _, opt := range []wl.OptLevel{wl.O0, wl.O1, wl.O2, wl.O3} {
		env := wl.Default()
		env.Opt = opt
		s := New(env)
		m := 8
		a := array.New(shape.Of(m, m, m))
		for i := range a.Data() {
			a.Data()[i] = math.Sin(float64(i) * 0.31)
		}
		want := a.Clone()
		nas.Comm3(want)
		got := s.SetupPeriodicBorder(a.Clone())
		if !got.Equal(want) {
			t.Fatalf("opt %v: SetupPeriodicBorder != Comm3 (max diff %g)", opt, got.MaxAbsDiff(want))
		}
	}
}

// At O2+ the border update happens in place; below O2 the argument is
// preserved (functional semantics).
func TestSetupPeriodicBorderReuseSemantics(t *testing.T) {
	mk := func() *array.Array {
		a := array.New(shape.Of(6, 6, 6))
		for i := range a.Data() {
			a.Data()[i] = float64(i)
		}
		return a
	}
	envHi := wl.Default()
	a := mk()
	if got := New(envHi).SetupPeriodicBorder(a); got != a {
		t.Fatal("O3: border update did not reuse the argument")
	}
	envLo := wl.Default()
	envLo.Opt = wl.O1
	b := mk()
	orig := b.Clone()
	got := New(envLo).SetupPeriodicBorder(b)
	if got == b {
		t.Fatal("O1: border update mutated the argument")
	}
	if !b.Equal(orig) {
		t.Fatal("O1: argument contents changed")
	}
}

func TestSetupPeriodicBorderRank1(t *testing.T) {
	s := New(wl.Default())
	a := array.FromSlice(shape.Of(6), []float64{9, 1, 2, 3, 4, 9})
	got := s.SetupPeriodicBorder(a)
	want := array.FromSlice(shape.Of(6), []float64{4, 1, 2, 3, 4, 1})
	if !got.Equal(want) {
		t.Fatalf("rank-1 border = %v, want %v", got, want)
	}
}

func TestSetupPeriodicBorderScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rank-0 did not panic")
		}
	}()
	New(wl.Default()).SetupPeriodicBorder(array.Scalar(1))
}

// VCycle terminates at the 2³-interior grid: feeding it the smallest legal
// grid must apply exactly one smoothing step.
func TestVCycleBaseCase(t *testing.T) {
	env := wl.Default()
	s := New(env)
	r := array.New(shape.Of(4, 4, 4))
	for i := range r.Data() {
		r.Data()[i] = math.Cos(float64(i))
	}
	got := s.VCycle(r.Clone())
	want := s.Smooth(r.Clone())
	if !got.Equal(want) {
		t.Fatal("VCycle base case is not a single Smooth")
	}
}

// MGrid with zero right-hand side returns the zero solution.
func TestMGridZeroRHS(t *testing.T) {
	env := wl.Default()
	s := New(env)
	v := array.New(shape.Of(10, 10, 10))
	u := s.MGrid(v, 3)
	for _, x := range u.Data() {
		if x != 0 {
			t.Fatal("MGrid(0) != 0")
		}
	}
}

// The same rank-generic code runs on a 2-D grid (the paper: "this SAC code
// could be reused for grids of any dimension without alteration") — with
// dimension-appropriate stencil coefficients it converges.
func TestMGridRank2Converges(t *testing.T) {
	env := wl.Default()
	s := New(env)
	// 9-point Laplacian, full-weighting restriction (×4 h² compensation),
	// bilinear interpolation, damped-Jacobi-style smoother.
	s.Operator = stencil.Coeffs{-10.0 / 3.0, 2.0 / 3.0, 1.0 / 6.0, 0}
	s.Project = stencil.Coeffs{1.0, 0.5, 0.25, 0}
	s.Interp = stencil.Coeffs{1.0, 0.5, 0.25, 0}
	s.Smoother = stencil.Coeffs{-0.3, 0.0, 0.0, 0}

	n := 32
	v := array.New(shape.Of(n+2, n+2))
	// Zero-mean periodic right-hand side.
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			x := 2 * math.Pi * float64(i-1) / float64(n)
			y := 2 * math.Pi * float64(j-1) / float64(n)
			v.Set(shape.Index{i, j}, math.Sin(x)*math.Cos(2*y))
		}
	}
	residNorm := func(u *array.Array) float64 {
		au := s.Resid(u)
		r := aplib.Sub(env, v, au)
		env.Release(au)
		sum := 0.0
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				x := r.At(shape.Index{i, j})
				sum += x * x
			}
		}
		env.Release(r)
		return math.Sqrt(sum / float64(n*n))
	}
	u0 := array.New(shape.Of(n+2, n+2))
	start := residNorm(u0)
	u := s.MGrid(v, 6)
	end := residNorm(u)
	if !(end < start*1e-2) {
		t.Fatalf("2-D MGrid did not converge: ‖r‖ %g → %g", start, end)
	}
	for _, x := range u.Data() {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("2-D MGrid produced non-finite values")
		}
	}
}

// The same code also runs on a 1-D grid.
func TestMGridRank1Runs(t *testing.T) {
	env := wl.Default()
	s := New(env)
	s.Operator = stencil.Coeffs{-2, 1, 0, 0} // 1-D Laplacian
	s.Project = stencil.Coeffs{2, 1, 0, 0}
	s.Interp = stencil.Coeffs{1, 0.5, 0, 0}
	s.Smoother = stencil.Coeffs{-0.4, 0, 0, 0}
	n := 64
	v := array.New(shape.Of(n + 2))
	for i := 1; i <= n; i++ {
		v.Set(shape.Index{i}, math.Sin(2*math.Pi*float64(i-1)/float64(n)))
	}
	u := s.MGrid(v, 4)
	if u.Shape()[0] != n+2 {
		t.Fatalf("1-D result shape %v", u.Shape())
	}
	for _, x := range u.Data() {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("1-D MGrid produced non-finite values")
		}
	}
}

// Fine2Coarse output has the correct coarse shape, Coarse2Fine restores
// the fine shape — the Fig. 8/9 geometry.
func TestGridMappingShapes(t *testing.T) {
	s := New(wl.Default())
	fine := array.New(shape.Of(18, 18, 18)) // 16³ interior
	coarse := s.Fine2Coarse(fine)
	if !coarse.Shape().Equal(shape.Of(10, 10, 10)) {
		t.Fatalf("Fine2Coarse shape = %v, want [10,10,10]", coarse.Shape())
	}
	back := s.Coarse2Fine(coarse)
	if !back.Shape().Equal(shape.Of(18, 18, 18)) {
		t.Fatalf("Coarse2Fine shape = %v, want [18,18,18]", back.Shape())
	}
}

// Coarse2Fine of a constant-interior coarse grid yields the same constant
// on the whole fine interior (interpolation reproduces constants).
func TestCoarse2FineReproducesConstants(t *testing.T) {
	s := New(wl.Default())
	coarse := array.New(shape.Of(6, 6, 6))
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 4; j++ {
			for k := 1; k <= 4; k++ {
				coarse.Set3(i, j, k, 2.5)
			}
		}
	}
	fine := s.Coarse2Fine(coarse)
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			for k := 1; k <= 8; k++ {
				if d := math.Abs(fine.At3(i, j, k) - 2.5); d > 1e-14 {
					t.Fatalf("fine(%d,%d,%d) = %g, want 2.5", i, j, k, fine.At3(i, j, k))
				}
			}
		}
	}
}

// The memory pool must absorb the functional allocation traffic: after one
// benchmark run, most array requests are satisfied by reuse.
func TestMemoryPoolAbsorbsTraffic(t *testing.T) {
	env := wl.Default()
	b := NewBenchmark(nas.ClassS, env)
	b.Run()
	env.Pool.Reset()
	b.Run() // second run: every size class is warm
	st := env.Pool.Stats()
	if st.Reuses == 0 {
		t.Fatal("memory pool never reused a buffer")
	}
	if st.Reuses < st.Allocs {
		t.Fatalf("pool mostly missing: %v", st)
	}
}

// Probe coverage: one MGrid iteration must report resid/smooth at every
// level and the two mappings between all adjacent levels.
func TestProbeCoverage(t *testing.T) {
	env := wl.Default()
	b := NewBenchmark(nas.ClassS, env)
	counts := map[string]int{}
	levels := map[string]map[int]bool{}
	b.Solver.Probe = func(region string, level int, _ time.Duration) {
		counts[region]++
		if levels[region] == nil {
			levels[region] = map[int]bool{}
		}
		levels[region][level] = true
	}
	b.Reset()
	u := b.Solver.MGrid(b.V(), 1)
	env.Release(u)
	lt := nas.ClassS.LT()
	// One iteration: resid at top (MGrid) + per-level resids in VCycle
	// (levels 2..lt), smooth at every level, mappings between all pairs.
	if counts["fine2coarse"] != lt-1 || counts["coarse2fine"] != lt-1 {
		t.Fatalf("mapping probe counts wrong: %v", counts)
	}
	if counts["smooth"] != lt {
		t.Fatalf("smooth count = %d, want %d", counts["smooth"], lt)
	}
	if counts["resid"] != lt {
		t.Fatalf("resid count = %d, want %d", counts["resid"], lt)
	}
	for _, lvl := range []int{1, lt} {
		if !levels["smooth"][lvl] {
			t.Fatalf("smooth never probed at level %d: %v", lvl, levels["smooth"])
		}
	}
}

func TestBenchmarkRunDeterministic(t *testing.T) {
	b := NewBenchmark(nas.ClassS, wl.Default())
	a, _ := b.Run()
	c, _ := b.Run()
	if a != c {
		t.Fatalf("two runs differ: %v vs %v", a, c)
	}
}

func BenchmarkSACClassSIteration(b *testing.B) {
	env := wl.Default()
	bench := NewBenchmark(nas.ClassS, env)
	bench.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := bench.Solver.MGrid(bench.V(), 1)
		env.Release(u)
	}
}

// The whole benchmark runs under the memory pool's release-discipline
// checking: every buffer released exactly once, and the iteration loop
// does not leak (live buffer count stays flat across runs).
func TestReleaseDisciplineParanoid(t *testing.T) {
	env := wl.Default()
	env.Pool.SetParanoid(true)
	b := NewBenchmark(nas.ClassS, env)
	b.Run() // panics on any double/foreign release
	live1 := env.Pool.Live()
	b.Run()
	live2 := env.Pool.Live()
	if live2 > live1 {
		t.Fatalf("live buffers grew between runs: %d -> %d (leak)", live1, live2)
	}
}

// The tiled, norm-fused kernels must reproduce the sequential default O3
// path bit for bit — the verification norms and the full solution grid —
// for every worker count, scheduling policy and tile size, including tile
// edges that do not divide the grid. This is the determinism contract that
// lets the autotuner experiment with plans mid-run.
func TestTiledKernelsBitIdentical(t *testing.T) {
	refB := NewBenchmark(nas.ClassS, wl.Default())
	refN2, refNU := refB.Run()
	refU := refB.U().Clone()

	check := func(t *testing.T, env *wl.Env) {
		defer env.Close()
		b := NewBenchmark(nas.ClassS, env)
		rnm2, rnmu := b.Run()
		if rnm2 != refN2 || rnmu != refNU {
			t.Fatalf("norms (%.17e, %.17e) != reference (%.17e, %.17e)",
				rnm2, rnmu, refN2, refNU)
		}
		if !b.U().Equal(refU) {
			t.Fatalf("solution grid differs from reference (max diff %g)",
				b.U().MaxAbsDiff(refU))
		}
	}

	for _, workers := range []int{1, 2, 4, 8} {
		policies := sched.Policies()
		if workers == 1 {
			policies = policies[:1] // policy is irrelevant on one worker
		}
		for _, policy := range policies {
			for _, tile := range []int{0, 5, 8, 32} {
				env := wl.Parallel(workers)
				env.ForOpt.Policy = policy
				env.Tile = tile
				t.Run(fmt.Sprintf("w%d_%s_tile%d", workers, policy, tile), func(t *testing.T) {
					check(t, env)
				})
			}
		}
	}

	// A calibrating tuner cycles through its whole candidate set mid-run
	// (different plan almost every kernel invocation) and must still not
	// change a bit.
	t.Run("tuner_calibrating", func(t *testing.T) {
		env := wl.Parallel(4)
		env.Tune = tune.New(env.Workers())
		env.Tune.Trials = 1
		check(t, env)
	})
}

// TestBufferedBitIdentical: the line-buffered and simd kernel variants
// must reproduce the sequential scalar run bit-for-bit — norms and the
// full solution grid — across worker counts and scheduling policies.
// This is the contract that lets the autotuner switch variants freely
// without perturbing NPB verification (see the package comment's
// "Kernel variants" section).
func TestBufferedBitIdentical(t *testing.T) {
	refB := NewBenchmark(nas.ClassS, wl.Default())
	refN2, refNU := refB.Run()
	refU := refB.U().Clone()

	check := func(t *testing.T, env *wl.Env) {
		defer env.Close()
		b := NewBenchmark(nas.ClassS, env)
		rnm2, rnmu := b.Run()
		if rnm2 != refN2 || rnmu != refNU {
			t.Fatalf("norms (%.17e, %.17e) != scalar reference (%.17e, %.17e)",
				rnm2, rnmu, refN2, refNU)
		}
		if !b.U().Equal(refU) {
			t.Fatalf("solution grid differs from scalar reference (max diff %g)",
				b.U().MaxAbsDiff(refU))
		}
	}

	variants := []string{tune.VariantBuffered, tune.VariantSIMD}
	for _, variant := range variants {
		for _, workers := range []int{1, 2, 4, 8} {
			policies := sched.Policies()
			if workers == 1 {
				policies = policies[:1] // policy is irrelevant on one worker
			}
			for _, policy := range policies {
				env := wl.Parallel(workers)
				env.ForOpt.Policy = policy
				env.Variant = variant
				t.Run(fmt.Sprintf("%s_w%d_%s", variant, workers, policy), func(t *testing.T) {
					check(t, env)
				})
			}
		}
	}

	// A calibrating tuner now cycles variant plans too (scalar, buffered
	// and — where available — simd candidates interleave mid-run).
	t.Run("tuner_calibrating_variants", func(t *testing.T) {
		env := wl.Parallel(4)
		env.Tune = tune.New(env.Workers())
		env.Tune.Trials = 1
		check(t, env)
	})

	// An unknown forced variant must degrade to scalar, not misbehave.
	t.Run("unknown_variant_is_scalar", func(t *testing.T) {
		env := wl.Parallel(2)
		env.Variant = "turbo"
		check(t, env)
	})
}
