package core

import "testing"

func TestSplitPlanes(t *testing.T) {
	cases := []struct {
		n0       int
		boundary []int
		interior PlaneSpan
	}{
		{3, []int{1}, PlaneSpan{2, 1}},          // one interior plane: both faces
		{4, []int{1, 2}, PlaneSpan{2, 1}},       // two planes: nothing to overlap
		{5, []int{1, 3}, PlaneSpan{2, 2}},       // one overlappable plane
		{34, []int{1, 32}, PlaneSpan{2, 31}},    // class-S slab over 8 ranks
		{258, []int{1, 256}, PlaneSpan{2, 255}}, // class-A slab, 1 rank
	}
	for _, c := range cases {
		boundary, interior := SplitPlanes(c.n0)
		if len(boundary) != len(c.boundary) {
			t.Fatalf("n0=%d: boundary %v, want %v", c.n0, boundary, c.boundary)
		}
		for i := range boundary {
			if boundary[i] != c.boundary[i] {
				t.Fatalf("n0=%d: boundary %v, want %v", c.n0, boundary, c.boundary)
			}
		}
		if interior != c.interior {
			t.Fatalf("n0=%d: interior %+v, want %+v", c.n0, interior, c.interior)
		}
		// The split must cover the interior exactly once.
		seen := map[int]bool{}
		for _, p := range boundary {
			seen[p] = true
		}
		for p := interior.Lo; p <= interior.Hi; p++ {
			if seen[p] {
				t.Fatalf("n0=%d: plane %d both boundary and interior", c.n0, p)
			}
			seen[p] = true
		}
		if got, want := len(seen), c.n0-2; got != want {
			t.Fatalf("n0=%d: split covers %d planes, want %d", c.n0, got, want)
		}
		if got := interior.Count(); got != c.n0-2-len(c.boundary) {
			t.Fatalf("n0=%d: interior Count=%d", c.n0, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SplitPlanes(2) did not panic")
		}
	}()
	SplitPlanes(2)
}
