// Line-buffered and SIMD backends of the fused O3 plane kernels — the
// "buffered" and "simd" kernel variants of the per-(kernel, level) plans
// (see the package comment's "Kernel variants" section).
//
// The scalar kernels recompute every in-plane sub-sum of the canonical
// association three times (at k−1, k and k+1 as the k loop slides). The
// functions here memoise those sub-sums the way the Fortran MG reference
// does (internal/f77): two row buffers u1/u2 hold, for one (i, j) row,
//
//	u1[k] = ((x[i−1][j][k] + x[i][j−1][k]) + x[i][j+1][k]) + x[i+1][j][k]
//	u2[k] = ((x[i−1][j−1][k] + x[i−1][j+1][k]) + x[i+1][j−1][k]) + x[i+1][j+1][k]
//
// filled once per row, and each output point combines three neighbouring
// buffer entries. Because the buffers hold exactly the sub-sums the
// canonical association already groups, memoisation changes no value:
// the buffered results — grids and norms — are bit-identical to scalar
// (TestBufferedBitIdentical). With vec set the fills and combines run
// through internal/simd, whose lanes execute the same operation tree;
// the simd combine applies all four coefficient terms where the scalar
// branches drop exact zeros, which cannot change an IEEE-754 sum.
//
// The lined kernels ignore the plan's tile edge: tiling only permutes
// independent writes (no result change), and the line buffers already
// serialise whole rows through the cache, which is what the j/k tiling
// of the scalar kernels approximates.
package core

import (
	"math"

	"repro/internal/simd"
	"repro/internal/stencil"
)

// subRelaxPlaneLined is subRelaxPlane in the line-buffered form:
// out = v − A·u on interior plane i.
func subRelaxPlaneLined(od, vd, ud []float64, n1, n2, i int, c stencil.Coeffs,
	u1, u2 []float64, vec bool) {
	mz := ((i-1)*n1 + 1) * n2
	zz := (i*n1 + 1) * n2
	pz := ((i+1)*n1 + 1) * n2
	for j := 1; j < n1-1; j, mz, zz, pz = j+1, mz+n2, zz+n2, pz+n2 {
		subRelaxRowLined(od, vd, ud, mz, zz, pz, n2, c, u1, u2, vec)
	}
}

// subRelaxNormPlaneLined is subRelaxPlaneLined plus the NPB norm partials
// of plane i. The residual row is written first and the partials fold
// from the stored values left-to-right, rows in ascending j — the same
// values in the same order as the scalar kernel's interleaved
// accumulation, so the norms stay bit-identical.
func subRelaxNormPlaneLined(od, vd, ud []float64, n1, n2, i int, c stencil.Coeffs,
	u1, u2 []float64, vec bool) (sum, maxAbs float64) {
	mz := ((i-1)*n1 + 1) * n2
	zz := (i*n1 + 1) * n2
	pz := ((i+1)*n1 + 1) * n2
	for j := 1; j < n1-1; j, mz, zz, pz = j+1, mz+n2, zz+n2, pz+n2 {
		subRelaxRowLined(od, vd, ud, mz, zz, pz, n2, c, u1, u2, vec)
		oZZ := od[zz : zz+n2]
		var acc float64
		for k := 1; k < n2-1; k++ {
			r := oZZ[k]
			acc += r * r
			if a := math.Abs(r); a > maxAbs {
				maxAbs = a
			}
		}
		sum += acc
	}
	return sum, maxAbs
}

// subRelaxRowLined computes one residual row of subRelaxPlaneLined, given
// the three rolled centre-row bases.
func subRelaxRowLined(od, vd, ud []float64, mz, zz, pz, n2 int, c stencil.Coeffs,
	u1, u2 []float64, vec bool) {
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	uMM, uMZ, uMP := ud[mz-n2:mz], ud[mz:mz+n2], ud[mz+n2:mz+2*n2]
	uZM, uZZ, uZP := ud[zz-n2:zz], ud[zz:zz+n2], ud[zz+n2:zz+2*n2]
	uPM, uPZ, uPP := ud[pz-n2:pz], ud[pz:pz+n2], ud[pz+n2:pz+2*n2]
	oZZ, vZZ := od[zz:zz+n2], vd[zz:zz+n2]
	if vec {
		simd.Sum4(u1, uMZ, uZM, uZP, uPZ)
		simd.Sum4(u2, uMM, uMP, uPM, uPP)
		simd.SubRelaxRow(oZZ, vZZ, uZZ, u1, u2, (*[4]float64)(&c))
		return
	}
	for k := 0; k < n2; k++ {
		u1[k] = ((uMZ[k] + uZM[k]) + uZP[k]) + uPZ[k]
		u2[k] = ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
	}
	if c1 == 0 {
		for k := 1; k < n2-1; k++ {
			oZZ[k] = vZZ[k] - ((c0*uZZ[k] + c2*((u2[k]+u1[k-1])+u1[k+1])) +
				c3*(u2[k-1]+u2[k+1]))
		}
		return
	}
	for k := 1; k < n2-1; k++ {
		oZZ[k] = vZZ[k] - (((c0*uZZ[k] + c1*((uZZ[k-1]+uZZ[k+1])+u1[k])) +
			c2*((u2[k]+u1[k-1])+u1[k+1])) + c3*(u2[k-1]+u2[k+1]))
	}
}

// addRelaxPlaneLined is addRelaxPlane in the line-buffered form:
// out = z + S·r (ud == nil) or out = u + (z + S·r) on interior plane i.
func addRelaxPlaneLined(od, zd, ud, rd []float64, n1, n2, i int, c stencil.Coeffs,
	u1, u2 []float64, vec bool) {
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	cp := (*[4]float64)(&c)
	mz := ((i-1)*n1 + 1) * n2
	zz := (i*n1 + 1) * n2
	pz := ((i+1)*n1 + 1) * n2
	for j := 1; j < n1-1; j, mz, zz, pz = j+1, mz+n2, zz+n2, pz+n2 {
		rMM, rMZ, rMP := rd[mz-n2:mz], rd[mz:mz+n2], rd[mz+n2:mz+2*n2]
		rZM, rZZ, rZP := rd[zz-n2:zz], rd[zz:zz+n2], rd[zz+n2:zz+2*n2]
		rPM, rPZ, rPP := rd[pz-n2:pz], rd[pz:pz+n2], rd[pz+n2:pz+2*n2]
		oZZ, zZZ := od[zz:zz+n2], zd[zz:zz+n2]
		if vec {
			simd.Sum4(u1, rMZ, rZM, rZP, rPZ)
			simd.Sum4(u2, rMM, rMP, rPM, rPP)
			if ud == nil {
				simd.AddRelaxRow(oZZ, zZZ, rZZ, u1, u2, cp)
			} else {
				simd.AddRelaxPlusRow(oZZ, ud[zz:zz+n2], zZZ, rZZ, u1, u2, cp)
			}
			continue
		}
		for k := 0; k < n2; k++ {
			u1[k] = ((rMZ[k] + rZM[k]) + rZP[k]) + rPZ[k]
			u2[k] = ((rMM[k] + rMP[k]) + rPM[k]) + rPP[k]
		}
		switch {
		case ud == nil && c3 == 0:
			// The S stencils' zero corner coefficient: c3·s3 is an
			// exact zero, mirrored from the scalar specialization.
			for k := 1; k < n2-1; k++ {
				oZZ[k] = zZZ[k] + ((c0*rZZ[k] + c1*((rZZ[k-1]+rZZ[k+1])+u1[k])) +
					c2*((u2[k]+u1[k-1])+u1[k+1]))
			}
		case ud == nil:
			for k := 1; k < n2-1; k++ {
				oZZ[k] = zZZ[k] + (((c0*rZZ[k] + c1*((rZZ[k-1]+rZZ[k+1])+u1[k])) +
					c2*((u2[k]+u1[k-1])+u1[k+1])) + c3*(u2[k-1]+u2[k+1]))
			}
		case c3 == 0:
			uZZ := ud[zz : zz+n2]
			for k := 1; k < n2-1; k++ {
				oZZ[k] = uZZ[k] + (zZZ[k] + ((c0*rZZ[k] + c1*((rZZ[k-1]+rZZ[k+1])+u1[k])) +
					c2*((u2[k]+u1[k-1])+u1[k+1])))
			}
		default:
			uZZ := ud[zz : zz+n2]
			for k := 1; k < n2-1; k++ {
				oZZ[k] = uZZ[k] + (zZZ[k] + (((c0*rZZ[k] + c1*((rZZ[k-1]+rZZ[k+1])+u1[k])) +
					c2*((u2[k]+u1[k-1])+u1[k+1])) + c3*(u2[k-1]+u2[k+1])))
			}
		}
	}
}

// projectCondensePlaneLined is projectCondensePlane in the line-buffered
// form. The buffers span the fine row (length mf): every fine index
// feeds some coarse point's s1/s2/s3, so nothing filled is wasted.
func projectCondensePlaneLined(od, rd []float64, mf, mo, jc int, c stencil.Coeffs,
	u1, u2 []float64, vec bool) {
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	i := 2 * jc
	mz := ((i-1)*mf + 2) * mf
	zz := (i*mf + 2) * mf
	pz := ((i+1)*mf + 2) * mf
	base := (jc*mo + 1) * mo
	for j2 := 1; j2 < mo-1; j2, mz, zz, pz, base = j2+1, mz+2*mf, zz+2*mf, pz+2*mf, base+mo {
		rMM, rMZ, rMP := rd[mz-mf:mz], rd[mz:mz+mf], rd[mz+mf:mz+2*mf]
		rZM, rZZ, rZP := rd[zz-mf:zz], rd[zz:zz+mf], rd[zz+mf:zz+2*mf]
		rPM, rPZ, rPP := rd[pz-mf:pz], rd[pz:pz+mf], rd[pz+mf:pz+2*mf]
		if vec {
			simd.Sum4(u1, rMZ, rZM, rZP, rPZ)
			simd.Sum4(u2, rMM, rMP, rPM, rPP)
		} else {
			for t := 1; t < mf; t++ {
				u1[t] = ((rMZ[t] + rZM[t]) + rZP[t]) + rPZ[t]
				u2[t] = ((rMM[t] + rMP[t]) + rPM[t]) + rPP[t]
			}
		}
		for j1 := 1; j1 < mo-1; j1++ {
			k := 2 * j1
			s1 := (rZZ[k-1] + rZZ[k+1]) + u1[k]
			s2 := (u2[k] + u1[k-1]) + u1[k+1]
			s3 := u2[k-1] + u2[k+1]
			od[base+j1] = ((c0*rZZ[k] + c1*s1) + c2*s2) + c3*s3
		}
	}
}

// interpolatePlaneLined is interpolatePlane in the line-buffered form:
// the up-to-four contributing coarse rows of one fine row collapse into
// one cross-row buffer b (their canonical pairwise sums), after which
// every fine element is one buffer read (even f1) or one buffered pair
// (odd f1). b has coarse-row length mc.
func interpolatePlaneLined(od, zd []float64, mc, mf, f3 int, c stencil.Coeffs,
	b []float64, vec bool) {
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	l3, h3, o3 := f3/2, (f3+1)/2, f3&1 == 1
	rowL3, rowH3 := l3*mc, h3*mc
	base := (f3*mf + 1) * mf
	for f2 := 1; f2 < mf-1; f2, base = f2+1, base+mf {
		l2, h2, o2 := f2/2, (f2+1)/2, f2&1 == 1
		bll := (rowL3 + l2) * mc
		blh := bll + (h2-l2)*mc
		bhl := (rowH3 + l2) * mc
		bhh := bhl + (h2-l2)*mc
		oRow := od[base : base+mf]
		// cEven/cOdd are the Q weights of the on-axis and between-axis
		// fine columns given how many of the f3/f2 axes are off-anchor.
		var cEven, cOdd float64
		switch {
		case !o3 && !o2:
			// Both outer axes on-anchor: single coarse row, no buffer.
			zRow := zd[bll : bll+mc]
			for f1 := 1; f1 < mf-1; f1++ {
				l1, h1 := f1/2, (f1+1)/2
				if f1&1 == 0 {
					oRow[f1] = c0 * zRow[l1]
				} else {
					oRow[f1] = c1 * (zRow[l1] + zRow[h1])
				}
			}
			continue
		case !o3 && o2:
			fillSum2(b, zd[bll:bll+mc], zd[blh:blh+mc], vec)
			cEven, cOdd = c1, c2
		case o3 && !o2:
			fillSum2(b, zd[bll:bll+mc], zd[bhl:bhl+mc], vec)
			cEven, cOdd = c1, c2
		default:
			fillSum4(b, zd[bll:bll+mc], zd[blh:blh+mc], zd[bhl:bhl+mc], zd[bhh:bhh+mc], vec)
			cEven, cOdd = c2, c3
		}
		for f1 := 1; f1 < mf-1; f1++ {
			l1, h1 := f1/2, (f1+1)/2
			if f1&1 == 0 {
				oRow[f1] = cEven * b[l1]
			} else {
				oRow[f1] = cOdd * (b[l1] + b[h1])
			}
		}
	}
}

// fillSum2 and fillSum4 fill a cross-row buffer in the canonical
// association, vectorised when vec is set.
func fillSum2(dst, a, b []float64, vec bool) {
	if vec {
		simd.Sum2(dst, a, b)
		return
	}
	for m := range dst {
		dst[m] = a[m] + b[m]
	}
}

func fillSum4(dst, a, b, c, d []float64, vec bool) {
	if vec {
		simd.Sum4(dst, a, b, c, d)
		return
	}
	for m := range dst {
		dst[m] = ((a[m] + b[m]) + c[m]) + d[m]
	}
}
