// Package core is the paper's contribution: the generic, high-level
// SAC implementation of NAS-MG (paper §4, Figs. 4, 6 and 7), transliterated
// into Go on top of the WITH-loop engine and the SAC array library.
//
// The code mirrors the SAC source function by function:
//
//	double[+] MGrid(double[+] v, int iter)        → Solver.MGrid
//	double[+] VCycle(double[+] r)                 → Solver.VCycle
//	double[+] Resid(double[+] u)                  → Solver.Resid
//	double[+] Smooth(double[+] r)                 → Solver.Smooth
//	double[+] Fine2Coarse(double[+] r)            → Solver.Fine2Coarse
//	double[+] Coarse2Fine(double[+] rn)           → Solver.Coarse2Fine
//	SetupPeriodicBorder(u)                        → Solver.SetupPeriodicBorder
//
// Like the SAC original, every function is rank-generic: the same MGrid
// solves 1-, 2- and 3-dimensional periodic Poisson problems ("this SAC code
// could be reused for grids of any dimension without alteration"). Grids
// are in extended form — one artificial periodic boundary element on each
// side of every axis (Fig. 5) — which is why VCycle recurses while
// shape(r)[0] > 2+2.
//
// # Memory semantics
//
// The functions are written in SAC's functional style: each operation
// produces a fresh array, and this package plays the role of SAC's
// reference counter by releasing intermediates into the environment's
// memory pool the moment their last consumer has run. One deliberate
// deviation mirrors a SAC reuse optimization: at optimization level O2+,
// SetupPeriodicBorder updates the argument's boundary elements in place
// instead of copying the whole grid. The boundary planes of an extended
// grid are dead values that every consumer re-initialises, so the
// destructive update is unobservable to the algorithm (asserted by the
// equivalence tests, which compare results across all optimization
// levels).
package core

import (
	"fmt"

	"repro/internal/aplib"
	"repro/internal/array"
	"repro/internal/nas"
	"repro/internal/nasrand"
	"repro/internal/shape"
	"repro/internal/stencil"
	wl "repro/internal/withloop"
)

// Solver runs the SAC-style MG algorithm in a given environment with a
// given smoother. The zero value is invalid; use New.
type Solver struct {
	// Env is the WITH-loop evaluation environment (scheduling, memory
	// pool, optimization level).
	Env *wl.Env
	// Smoother holds the S-stencil coefficients (class dependent).
	Smoother stencil.Coeffs
	// Operator (A), Project (P) and Interp (Q) are the remaining stencils.
	// They default to the NPB 3-D coefficient vectors; rank-generic reuse
	// on other dimensions (e.g. the 2-D heat example) substitutes
	// dimension-appropriate sets — the paper's point that programmers can
	// customise the building blocks themselves.
	Operator, Project, Interp stencil.Coeffs
	// Gamma is the cycle index: 1 (or 0) is the V-cycle of the benchmark
	// (Fig. 3); 2 is the W-cycle of the multigrid literature the paper
	// cites (Hackbusch) — the coarse-grid correction is applied Gamma
	// times per level, re-evaluating the coarse residual in between.
	Gamma int
	// PostSmooth is the number of smoothing steps after the coarse-grid
	// correction; 1 (or 0) is the benchmark's single step. Extra steps
	// re-evaluate the residual first: z += Smooth(r − A·z).
	PostSmooth int
	// Probe, when non-nil, receives per-operation timings (see nas.Probe).
	Probe nas.Probe
	// Cancel, when non-nil, is polled once at the top of every MGrid
	// iteration; when it returns true the remaining iterations are
	// abandoned and the current approximation is returned. Service
	// callers (internal/jobq) poll a context here so a cancelled job
	// releases its workers within one V-cycle. A nil Cancel costs one
	// predictable nil check per iteration and never changes results.
	Cancel func() bool
}

// New creates a solver with the paper's default smoother (classes S/W/A)
// and the NPB operator stencils.
func New(env *wl.Env) *Solver {
	return &Solver{
		Env:      env,
		Smoother: stencil.SClassSWA,
		Operator: stencil.A,
		Project:  stencil.P,
		Interp:   stencil.Q,
	}
}

// MGrid is the paper's Fig. 4 top-level function:
//
//	u = genarray(shape(v), 0.0);
//	for (i = 0; i < iter; i += 1) {
//	    r = v - Resid(u);
//	    u = u + VCycle(r);
//	}
//	return u;
//
// v is the extended right-hand-side grid; the returned u is the
// approximate solution of ∇²u = v with periodic boundaries. The caller
// owns both v and the result.
func (s *Solver) MGrid(v *array.Array, iter int) *array.Array {
	e := s.Env
	u := s.newGuess(v)
	for i := 0; i < iter; i++ {
		if s.Cancel != nil && s.Cancel() {
			break
		}
		s.traceIter(i, v)
		if s.foldable(u) && v.Shape()[0] > 2+2 && s.Gamma <= 1 && s.PostSmooth <= 1 {
			// Folded iteration: the finest V-cycle level is inlined so
			// that u + (z + Smooth(r₂)) becomes a single traversal —
			// one more WITH-loop folding step across the VCycle call
			// boundary.
			r := s.residSubtract(v, u)
			rn := s.Fine2Coarse(r)
			zn := s.VCycle(rn)
			e.Release(rn)
			z := s.Coarse2Fine(zn)
			e.Release(zn)
			r2 := s.residSubtract(r, z)
			e.Release(r)
			u2 := s.smoothAddInto(u, z, r2)
			e.Release(r2)
			e.Release(z)
			e.Release(u)
			u = u2
			continue
		}
		r := s.residSubtract(v, u)
		z := s.VCycle(r)
		e.Release(r)
		u2 := aplib.Add(e, u, z)
		e.Release(z)
		e.Release(u)
		u = u2
	}
	return u
}

// smoothAddInto evaluates u + (z + Smooth(r)) in one folded traversal —
// bitwise the same association as the unfolded Add(u, smoothAdd(z, r)).
func (s *Solver) smoothAddInto(u, z, r *array.Array) *array.Array {
	return s.probe("smooth", r, func() *array.Array {
		rb := s.SetupPeriodicBorder(r)
		out := addRelaxPlus(s.Env, u, z, rb, s.Smoother)
		s.releaseIfCopy(rb, r)
		return out
	})
}

// residSubtract evaluates v − Resid(u). At O3 on rank-3 grids the
// subtraction folds into the relaxation (WITH-loop folding, see fused.go);
// otherwise the composition is evaluated literally.
func (s *Solver) residSubtract(v, u *array.Array) *array.Array {
	e := s.Env
	if s.foldable(u) {
		return s.probe("resid", u, func() *array.Array {
			ub := s.SetupPeriodicBorder(u)
			out := s.subRelaxObserved(v, ub)
			s.releaseIfCopy(ub, u)
			return out
		})
	}
	au := s.Resid(u)
	r := aplib.Sub(e, v, au)
	e.Release(au)
	return r
}

// smoothAdd evaluates z + Smooth(r), folded at O3 on rank-3 grids.
func (s *Solver) smoothAdd(z, r *array.Array) *array.Array {
	e := s.Env
	if s.foldable(r) {
		return s.probe("smooth", r, func() *array.Array {
			rb := s.SetupPeriodicBorder(r)
			out := addRelax(e, z, rb, s.Smoother)
			s.releaseIfCopy(rb, r)
			return out
		})
	}
	sm := s.Smooth(r)
	z2 := aplib.Add(e, z, sm)
	e.Release(sm)
	return z2
}

// VCycle is the paper's Fig. 4 recursive V-cycle:
//
//	if (shape(r)[[0]] > 2+2) {
//	    rn = Fine2Coarse(r);  zn = VCycle(rn);  z = Coarse2Fine(zn);
//	    r  = r - Resid(z);    z  = z + Smooth(r);
//	} else {
//	    z = Smooth(r);
//	}
//
// It consumes nothing: the argument r still belongs to the caller.
func (s *Solver) VCycle(r *array.Array) *array.Array {
	e := s.Env
	defer s.traceLevel(r)()
	if r.Shape()[0] > 2+2 {
		rn := s.Fine2Coarse(r)
		zn := s.VCycle(rn)
		// W-cycle extension: apply the coarse-grid correction Gamma
		// times, refreshing the coarse residual in between. Gamma <= 1
		// is the benchmark's plain V-cycle and adds no work.
		for g := 1; g < s.Gamma; g++ {
			rn2 := s.residSubtract(rn, zn)
			dz := s.VCycle(rn2)
			e.Release(rn2)
			zn2 := aplib.Add(e, zn, dz)
			e.Release(dz)
			e.Release(zn)
			zn = zn2
		}
		e.Release(rn)
		z := s.Coarse2Fine(zn)
		e.Release(zn)
		r2 := s.residSubtract(r, z)
		z2 := s.smoothAdd(z, r2)
		e.Release(r2)
		e.Release(z)
		// Extra post-smoothing steps (PostSmooth > 1): each re-evaluates
		// the residual of the current correction.
		for ps := 1; ps < s.PostSmooth; ps++ {
			r3 := s.residSubtract(r, z2)
			z3 := s.smoothAdd(z2, r3)
			e.Release(r3)
			e.Release(z2)
			z2 = z3
		}
		return z2
	}
	return s.Smooth(r)
}

// Resid applies the residual operator A to u (paper Fig. 6):
//
//	u = SetupPeriodicBorder(u);  u = RelaxKernel(u, A);
//
// The result is A·u on the interior with zero boundary. u's interior is
// untouched (only its dead boundary planes may be refreshed in place).
func (s *Solver) Resid(u *array.Array) *array.Array {
	return s.probe("resid", u, func() *array.Array {
		ub := s.SetupPeriodicBorder(u)
		out := stencil.Relax(s.Env, ub, s.Operator)
		s.releaseIfCopy(ub, u)
		return out
	})
}

// Smooth applies the smoothing operator S to r (paper Fig. 6).
func (s *Solver) Smooth(r *array.Array) *array.Array {
	return s.probe("smooth", r, func() *array.Array {
		rb := s.SetupPeriodicBorder(r)
		out := stencil.Relax(s.Env, rb, s.Smoother)
		s.releaseIfCopy(rb, r)
		return out
	})
}

// Fine2Coarse maps a fine grid to the next coarser one (paper Fig. 7):
//
//	rs = SetupPeriodicBorder(r);
//	rr = RelaxKernel(rs, P);
//	rc = condense(2, rr);
//	rn = embed(shape(rc)+1, 0*shape(rc), rc);
//
// The P relaxation averages the fine grid; condense keeps every second
// element; embed pads the missing boundary element back (Fig. 8).
func (s *Solver) Fine2Coarse(r *array.Array) *array.Array {
	return s.probe("fine2coarse", r, func() *array.Array {
		e := s.Env
		rs := s.SetupPeriodicBorder(r)
		if s.foldable(r) {
			// Folded: relax ∘ condense ∘ embed in one traversal of the
			// surviving points (fused.go).
			rn := projectCondense(e, rs, s.Project)
			s.releaseIfCopy(rs, r)
			return rn
		}
		rr := stencil.Relax(e, rs, s.Project)
		s.releaseIfCopy(rs, r)
		rc := aplib.Condense(e, 2, rr)
		e.Release(rr)
		rn := aplib.Embed(e, shape.Shape(shape.AddScalar([]int(rc.Shape()), 1)),
			shape.Zeros(rc.Dim()), rc)
		e.Release(rc)
		return rn
	})
}

// Coarse2Fine maps a coarse grid to the next finer one (paper Fig. 7):
//
//	rp = SetupPeriodicBorder(rn);
//	rs = scatter(2, rp);
//	rt = take(shape(rs)-2, rs);
//	r  = RelaxKernel(rt, Q);
//
// Scatter spreads the coarse values over every second fine position (with
// zeros in between); take trims the two superfluous trailing elements per
// axis (Fig. 9); the Q relaxation fills the gaps by (bi/tri)linear
// interpolation.
func (s *Solver) Coarse2Fine(rn *array.Array) *array.Array {
	return s.probe("coarse2fine", rn, func() *array.Array {
		e := s.Env
		rp := s.SetupPeriodicBorder(rn)
		if s.foldable(rn) {
			// Folded: scatter ∘ take ∘ relax as direct trilinear
			// interpolation (fused.go).
			out := interpolate(e, rp, s.Interp)
			s.releaseIfCopy(rp, rn)
			return out
		}
		rs := aplib.Scatter(e, 2, rp)
		s.releaseIfCopy(rp, rn)
		rt := aplib.Take(e, shape.Shape(shape.AddScalar([]int(rs.Shape()), -2)), rs)
		e.Release(rs)
		out := stencil.Relax(e, rt, s.Interp)
		e.Release(rt)
		return out
	})
}

// releaseIfCopy releases derived when SetupPeriodicBorder produced a fresh
// array rather than updating orig in place.
func (s *Solver) releaseIfCopy(derived, orig *array.Array) {
	if derived != orig {
		s.Env.Release(derived)
	}
}

// SetupPeriodicBorder initialises the artificial boundary elements of an
// extended grid from the opposite interior planes (paper Fig. 5): along
// every axis (last to first), plane 0 receives plane m−2 and plane m−1
// receives plane 1. It is expressed as a chain of 2·rank modarray
// WITH-loops; at optimization level O2+ the chain folds into an in-place
// update of the argument (which is then returned). The result is
// element-wise identical either way.
func (s *Solver) SetupPeriodicBorder(a *array.Array) *array.Array {
	rank := a.Dim()
	if rank < 1 {
		panic(fmt.Sprintf("core: SetupPeriodicBorder on rank-%d array", rank))
	}
	e := s.Env
	if e.Opt >= wl.O3 && rank == 3 {
		// Folded: the chain of six plane modarrays collapses into one
		// in-place border exchange (identical result; the equality with
		// the WITH-loop chain is asserted by the package tests).
		s.comm3(a)
		return a
	}
	cur := a
	for axis := rank - 1; axis >= 0; axis-- {
		m := cur.Shape()[axis]
		for _, side := range [2]struct{ dst, src int }{{0, m - 2}, {m - 1, 1}} {
			g := planeGenerator(cur.Shape(), axis, side.dst)
			from := cur // the array the body reads (fixed per step)
			src := side.src
			axis := axis
			f := func(iv shape.Index) float64 {
				saved := iv[axis]
				iv[axis] = src
				v := from.At(iv)
				iv[axis] = saved
				return v
			}
			switch {
			case e.Opt >= wl.O2:
				cur = e.ModarrayReuse(cur, g, f) // in place; cur stays == a
			case cur == a:
				cur = e.Modarray(a, g, f) // first step copies; a preserved
			default:
				next := e.Modarray(cur, g, f)
				e.Release(cur)
				cur = next
			}
		}
	}
	return cur
}

// planeGenerator builds the generator selecting the full cross-section
// plane iv[axis] == pos.
func planeGenerator(shp shape.Shape, axis, pos int) wl.Generator {
	lower := shape.Zeros(shp.Rank())
	upper := append([]int(nil), shp...)
	lower[axis] = pos
	upper[axis] = pos + 1
	return wl.Gen(lower, upper)
}

// --- NAS benchmark driver -------------------------------------------------------

// Benchmark runs the NPB MG benchmark with the SAC-style solver.
type Benchmark struct {
	// Class is the NPB size class.
	Class nas.Class
	// Solver executes the algorithm; its smoother is set from Class.
	Solver *Solver
	// Seed selects the zran3 charge stream; 0 means the official NPB
	// seed. Non-default seeds define alternative deterministic problems
	// (no published verification constant applies to them).
	Seed uint64

	v, u *array.Array
}

// NewBenchmark builds a benchmark instance in the given environment.
func NewBenchmark(class nas.Class, env *wl.Env) *Benchmark {
	s := New(env)
	s.Smoother = class.SmootherCoeffs()
	return &Benchmark{Class: class, Solver: s}
}

// Reset builds the initial state: the zran3 right-hand side (identical to
// the other implementations) and no solution yet.
func (b *Benchmark) Reset() {
	e := b.Solver.Env
	if b.v == nil {
		b.v = e.NewArray(b.Class.ExtShape(b.Class.LT()))
	}
	seed := b.Seed
	if seed == 0 {
		seed = nasrand.DefaultSeed
	}
	nas.Zran3Seeded(b.v, b.Class.N, seed)
	if b.u != nil {
		e.Release(b.u)
		b.u = nil
	}
}

// Run executes Reset followed by Solve — the full benchmark.
func (b *Benchmark) Run() (rnm2, rnmu float64) {
	b.Reset()
	return b.Solve()
}

// Solve executes the timed section on the state prepared by Reset:
// Class.Iter full MGrid iterations followed by a final residual
// evaluation, returning the NPB norms. It is the exact counterpart of
// f77's resid + nit×(mg3P + resid): MGrid folds the leading residual
// computation of each iteration into its loop, so one extra residual at
// the end closes the telescope. Timing Solve alone matches the NPB rule
// that "timing is restricted to multigrid iterations and ignores startup
// overhead" (paper §5).
func (b *Benchmark) Solve() (rnm2, rnmu float64) {
	e := b.Solver.Env
	if b.u != nil {
		e.Release(b.u)
	}
	if e.Observing() {
		return b.observedSolve()
	}
	b.u = b.Solver.MGrid(b.v, b.Class.Iter)
	return b.Solver.ResidNorm(b.v, b.u, b.Class.N)
}

// U returns the solution grid of the last Run (nil before the first Run).
func (b *Benchmark) U() *array.Array { return b.u }

// V returns the right-hand side grid (nil before the first Reset).
func (b *Benchmark) V() *array.Array { return b.v }
