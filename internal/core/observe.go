// Observability hooks of the SAC solver: every metrics/trace call site
// lives here so that core.go stays the clean transliteration of the
// paper's SAC program. The code-size figure (harness.RunCodeSize) counts
// core.go alone as the algorithm; this file rides in the excluded row
// with fused.go, the modeled sac2c output.
//
// The hooks partition the solve into disjoint timed windows — the fused
// kernels (fused.go), the border exchange (comm3), and the initial-guess
// allocation (newGuess) — so Snapshot.Coverage sums to at most the
// "solve" pseudo-kernel recorded by observedSolve. Region probes
// (resid/smooth/fine2coarse/coarse2fine) go to the trace only and never
// feed the collector, keeping the two views free of double counting.
package core

import (
	"math"
	"time"

	"repro/internal/aplib"
	"repro/internal/array"
	"repro/internal/metrics"
	"repro/internal/nas"
	wl "repro/internal/withloop"
)

// levelOf computes log2(interior extent) of an extended grid.
func levelOf(a *array.Array) int {
	return levelOfExtent(a.Shape()[0] - 2)
}

// probe wraps one V-cycle operation with the timing hook and, when the
// environment carries a tracer, emits a span event. The level tag is log2
// of the grid's interior extent. Region spans go to the trace only — the
// per-kernel collector is fed by the fused loops underneath (fused.go), so
// the two views never double-count the same nanoseconds.
func (s *Solver) probe(region string, a *array.Array, f func() *array.Array) *array.Array {
	tr := s.Env.Trace
	if s.Probe == nil && tr == nil {
		return f()
	}
	level := levelOf(a)
	start := time.Now()
	out := f()
	elapsed := time.Since(start)
	if s.Probe != nil {
		s.Probe(region, level, elapsed)
	}
	if tr != nil {
		tr.Emit(metrics.Event{Ev: "span", Kernel: region, Level: level, Nanos: int64(elapsed)})
	}
	return out
}

// newGuess allocates MGrid's zero initial guess. The allocation faults in
// a full fine grid — at class-A sizes a solid slice of the solve — so
// with a collector attached it is recorded under its own "genarray" row
// rather than vanishing from the coverage sum.
func (s *Solver) newGuess(v *array.Array) *array.Array {
	e := s.Env
	if m := e.Metrics; m != nil {
		start := time.Now()
		u := aplib.GenarrayVal(e, v.Shape(), 0.0)
		m.Record(0, "genarray", levelOf(v), int64(u.Size()), time.Since(start))
		return u
	}
	return aplib.GenarrayVal(e, v.Shape(), 0.0)
}

// traceIter marks the start of MGrid iteration i+1 in the event trace and
// advances the health monitor's iteration clock (iteration 1 starts a
// fresh monitored run, so repeated solves on one environment work).
func (s *Solver) traceIter(i int, v *array.Array) {
	s.Env.Health.BeginIteration(i + 1)
	if tr := s.Env.Trace; tr != nil {
		tr.Emit(metrics.Event{Ev: "iter", Iter: i + 1, Level: levelOf(v)})
	}
}

// subRelaxObserved is residSubtract's folded kernel dispatch with the
// health monitor consulted: the first finest-grid residual of each MGrid
// iteration — the convergence signal ‖v − A·u‖ — switches to subRelaxNorm,
// which folds the NPB norm accumulation into the traversal it performs
// anyway (bit-identical output grid, no extra pass), and feeds the
// monitor's contraction tracking. Every other residual of the iteration
// (the V-cycle interior) takes the plain folded kernel.
func (s *Solver) subRelaxObserved(v, ub *array.Array) *array.Array {
	e := s.Env
	if h := e.Health; h.WantsResid() {
		out, sumSq, maxAbs := subRelaxNorm(e, v, ub, s.Operator)
		if f := testFaultNorm; f != nil {
			sumSq = f(sumSq)
		}
		n := int64(out.Shape()[0] - 2)
		h.ObserveResidual(levelOf(out), sumSq, maxAbs, n*n*n)
		return out
	}
	return subRelax(e, v, ub, s.Operator)
}

// Test-only fault injection (core's health tests): testFaultGrid may
// corrupt a kernel's output grid from inside the sampled guard window —
// the written NaN lands in the real grid and propagates through the
// stencils like a genuine corruption — and testFaultNorm may rewrite the
// folded residual sum of squares to fake a stall. Both are nil outside
// tests.
var (
	testFaultGrid func(kernel string, level int, data []float64)
	testFaultNorm func(sumSq float64) float64
)

// healthSample is the fused kernels' NaN/Inf guard: a strided scan of the
// output grid, called by forPlanes inside the kernel's timed window. At
// the default stride of 1024 it touches a few dozen cache lines per
// invocation — checking every point would double the kernel's memory
// traffic — and still flags corruption within one iteration: NaNs spread
// one halo per stencil application, and the per-iteration residual norm
// is an every-point detector one iteration later at the latest.
func healthSample(e *wl.Env, kernel string, level int, data []float64) {
	h := e.Health
	if h == nil {
		return
	}
	if f := testFaultGrid; f != nil {
		f(kernel, level, data)
	}
	stride := h.SampleStride()
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(data); i += stride {
		if v := data[i]; math.IsNaN(v) || math.IsInf(v, 0) {
			h.ObserveNonFinite(kernel, level)
			return
		}
	}
}

// traceLevel emits the "down" transition into r's V-cycle level and
// returns the matching "up" emitter for the caller to defer.
func (s *Solver) traceLevel(r *array.Array) func() {
	tr := s.Env.Trace
	if tr == nil {
		return func() {}
	}
	level := levelOf(r)
	tr.Emit(metrics.Event{Ev: "level", Level: level, Dir: "down"})
	return func() { tr.Emit(metrics.Event{Ev: "level", Level: level, Dir: "up"}) }
}

// comm3 is the folded SetupPeriodicBorder body: one in-place border
// exchange, recorded under its own collector row when a collector is
// attached (the exchange runs outside the fused kernels' timed windows).
func (s *Solver) comm3(a *array.Array) {
	if m := s.Env.Metrics; m != nil {
		start := time.Now()
		nas.Comm3(a)
		n := int64(a.Shape()[0])
		m.Record(0, "comm3", levelOf(a), 6*n*n, time.Since(start))
		return
	}
	nas.Comm3(a)
}

// observedSolve is Benchmark.Solve with a collector or tracer attached:
// the whole timed section becomes the "solve" pseudo-kernel, the
// denominator of Snapshot.Coverage. Points is the NPB convention — fine
// grid points per residual+V-cycle pass, Iter iterations plus the
// closing residual.
func (b *Benchmark) observedSolve() (rnm2, rnmu float64) {
	e := b.Solver.Env
	start := time.Now()
	b.u = b.Solver.MGrid(b.v, b.Class.Iter)
	rnm2, rnmu = b.Solver.ResidNorm(b.v, b.u, b.Class.N)
	elapsed := time.Since(start)
	n := int64(b.Class.N)
	e.Metrics.Record(0, metrics.TotalKernel, b.Class.LT(),
		n*n*n*int64(b.Class.Iter+1), elapsed)
	e.Trace.Emit(metrics.Event{Ev: "solve", Level: b.Class.LT(),
		Nanos: int64(elapsed), Iter: b.Class.Iter, Rnm2: rnm2})
	// The closing residual is one more contraction observation — and the
	// norms are an every-point NaN check of the final grid.
	e.Health.ObserveFinal(rnm2, rnmu)
	return rnm2, rnmu
}
