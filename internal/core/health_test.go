package core

import (
	"math"
	"testing"

	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/nas"
	wl "repro/internal/withloop"
)

// healthSolve runs a class-S solve with a fresh monitor attached and
// returns the monitor plus the final norms.
func healthSolve(t *testing.T, workers int) (*health.Monitor, float64, float64) {
	t.Helper()
	var env *wl.Env
	if workers > 1 {
		env = wl.Parallel(workers)
	} else {
		env = wl.Default()
	}
	defer env.Close()
	m := health.New(health.Config{})
	env.Health = m
	b := NewBenchmark(nas.ClassS, env)
	b.Reset()
	rnm2, rnmu := b.Solve()
	return m, rnm2, rnmu
}

// A verified class-S run must come out healthy, with the geometric-mean
// convergence rate matching the observed first/last residuals (the
// per-ratio product telescopes) and staying well under the expected MG
// contraction bound.
func TestHealthyRunReportsConvergenceRate(t *testing.T) {
	m, rnm2, _ := healthSolve(t, 1)
	if verified, ok := nas.ClassS.Verify(rnm2); !ok || !verified {
		t.Fatalf("monitored solve did not verify: rnm2 = %.13e", rnm2)
	}
	rep := m.Report(metrics.Snapshot{})
	if rep.Verdict != "healthy" {
		t.Fatalf("verdict = %q, want healthy", rep.Verdict)
	}
	if rep.Iterations != nas.ClassS.Iter {
		t.Fatalf("observed %d contraction ratios, want %d", rep.Iterations, nas.ClassS.Iter)
	}
	want := math.Pow(rep.LastResidual/rep.FirstResidual, 1/float64(rep.Iterations))
	if diff := math.Abs(rep.ConvergenceRate - want); diff > 1e-12 {
		t.Fatalf("rate %.17g, telescoped %.17g (diff %g)", rep.ConvergenceRate, want, diff)
	}
	if rep.ConvergenceRate >= rep.ExpectedRate {
		t.Fatalf("rate %g not under expected bound %g", rep.ConvergenceRate, rep.ExpectedRate)
	}
}

// Attaching the monitor must not change the computed norms: the folded
// subRelaxNorm writes the same grid bit for bit, and the sampling guard
// only reads.
func TestHealthMonitorPreservesNorms(t *testing.T) {
	env := wl.Default()
	b := NewBenchmark(nas.ClassS, env)
	b.Reset()
	wantN2, wantNu := b.Solve()
	env.Close()

	_, rnm2, rnmu := healthSolve(t, 1)
	if rnm2 != wantN2 || rnmu != wantNu {
		t.Fatalf("monitored solve norms %.17e/%.17e, bare %.17e/%.17e",
			rnm2, rnmu, wantN2, wantNu)
	}
}

// A NaN poisoned into a fused kernel's output mid-solve must flip the
// verdict to nonfinite within the iteration it appears in: the strided
// sample guard runs inside every fused kernel invocation.
func TestInjectedNaNFlaggedWithinOneIteration(t *testing.T) {
	env := wl.Default()
	defer env.Close()
	m := health.New(health.Config{})
	env.Health = m

	const poisonAt = 2
	var poisoned bool
	testFaultGrid = func(kernel string, level int, data []float64) {
		if m.Iteration() == poisonAt && !poisoned && len(data) > 0 {
			data[0] = math.NaN()
			poisoned = true
		}
	}
	defer func() { testFaultGrid = nil }()

	b := NewBenchmark(nas.ClassS, env)
	b.Reset()
	b.Solve()

	if !poisoned {
		t.Fatal("fault hook never fired")
	}
	rep := m.Report(metrics.Snapshot{})
	if rep.Verdict != "non-finite" {
		t.Fatalf("verdict = %q, want non-finite", rep.Verdict)
	}
	if rep.VerdictIteration != poisonAt {
		t.Fatalf("flagged at iteration %d, poisoned at %d", rep.VerdictIteration, poisonAt)
	}
	if rep.NonFinite == 0 || rep.NonFiniteKernel == "" {
		t.Fatalf("report names no kernel: %+v", rep)
	}
}

// Freezing the residual norm (the artificial stall: every iteration
// reports the same residual) must be flagged as a stall on the first
// repeated observation.
func TestInjectedStallFlaggedWithinOneIteration(t *testing.T) {
	env := wl.Default()
	defer env.Close()
	m := health.New(health.Config{})
	env.Health = m

	var frozen float64
	testFaultNorm = func(sumSq float64) float64 {
		if frozen == 0 {
			frozen = sumSq
		}
		return frozen
	}
	defer func() { testFaultNorm = nil }()

	b := NewBenchmark(nas.ClassS, env)
	b.Reset()
	b.Solve()

	rep := m.Report(metrics.Snapshot{})
	if rep.Verdict != "stalled" {
		t.Fatalf("verdict = %q, want stalled", rep.Verdict)
	}
	// Iteration 1 stores the first norm; iteration 2 is the first
	// repeat, and the verdict must land there — within one iteration.
	if rep.VerdictIteration != 2 {
		t.Fatalf("stall flagged at iteration %d, want 2", rep.VerdictIteration)
	}
}

// The monitor must see exactly one residual observation per iteration —
// the finest-grid iteration residual — not the folded interior ones.
func TestMonitorSeesOneResidualPerIteration(t *testing.T) {
	m, _, _ := healthSolve(t, 2)
	rep := m.Report(metrics.Snapshot{})
	if rep.Iterations != nas.ClassS.Iter {
		t.Fatalf("iterations = %d, want %d", rep.Iterations, nas.ClassS.Iter)
	}
	// The final ObserveFinal(rnm2) must agree with the last in-loop
	// residual: same subtraction, same norm.
	if rep.LastResidual == 0 || math.IsNaN(rep.LastResidual) {
		t.Fatalf("last residual %g", rep.LastResidual)
	}
}
