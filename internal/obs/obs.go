// Package obs is the request-scoped observability layer of the solver
// service: 128-bit trace IDs minted at HTTP ingress and threaded through
// the job queue into the kernel tracer, a stage-latency decomposition
// (ingress → queue → dedup → solve → respond) exported as Prometheus
// histograms, structured logging via log/slog with every line carrying
// trace_id/job_id/tenant/stage, and an always-on flight recorder — a
// fixed-size lock-free ring of recent per-job stage records that dumps
// itself to JSON on anomaly triggers (non-finite norms, queue-full
// bursts, drain, SIGQUIT) and on demand.
//
// Everything is nil-safe and free when disabled: a nil *Observer makes
// every hook a single nil check with no allocations, the same contract
// internal/metrics and internal/health keep for the solve hot path
// (asserted by TestObserverDisabledZeroAlloc).
package obs

import (
	"log/slog"
	"time"
)

// Config configures an Observer. Zero values select working defaults: a
// discard logger, 256 flight-recorder slots, no dump directory (dumps go
// to HTTP only).
type Config struct {
	// Log receives the service's structured log lines; nil discards.
	Log *slog.Logger
	// FlightSlots is the job-record ring capacity (default 256).
	FlightSlots int
	// FlightDir, when non-empty, is where anomaly-triggered dumps are
	// written as JSON files; empty disables file dumps (the
	// /debug/flightrecorder endpoint still serves snapshots).
	FlightDir string
	// DumpMinInterval rate-limits anomaly file dumps (default 10s) so a
	// burst of poisoned jobs produces one dump, not hundreds.
	DumpMinInterval time.Duration
	// BurstWindow/BurstCount define the queue-full-burst trigger: at
	// least BurstCount rejections inside one BurstWindow dumps the
	// recorder (defaults 2s / 16).
	BurstWindow time.Duration
	BurstCount  int
}

// Observer ties the layer together for the job queue and the HTTP front
// end: a logger, the stage histograms and the flight recorder. A nil
// Observer disables everything at the cost of one nil check per hook.
type Observer struct {
	log  *slog.Logger
	hist *StageHist
	rec  *FlightRecorder
}

// New builds an Observer from the config.
func New(cfg Config) *Observer {
	log := cfg.Log
	if log == nil {
		log = Discard()
	}
	return &Observer{
		log:  log,
		hist: NewStageHist(),
		rec: NewFlightRecorder(FlightConfig{
			Slots:           cfg.FlightSlots,
			Dir:             cfg.FlightDir,
			DumpMinInterval: cfg.DumpMinInterval,
			BurstWindow:     cfg.BurstWindow,
			BurstCount:      cfg.BurstCount,
		}),
	}
}

// Log returns the observer's logger; Discard() when the observer is nil,
// so callers can log unconditionally.
func (o *Observer) Log() *slog.Logger {
	if o == nil {
		return Discard()
	}
	return o.log
}

// Hist returns the stage histograms (nil on a nil observer).
func (o *Observer) Hist() *StageHist {
	if o == nil {
		return nil
	}
	return o.hist
}

// Recorder returns the flight recorder (nil on a nil observer).
func (o *Observer) Recorder() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// JobAdmitted records one admission: a log line and a queue-depth sample.
func (o *Observer) JobAdmitted(traceID, jobID, tenant string, queued, running int) {
	if o == nil {
		return
	}
	o.rec.NoteDepth(queued, running)
	o.log.Info("job admitted",
		"trace_id", traceID, "job_id", jobID, "tenant", tenant,
		"stage", StageQueue, "queue_depth", queued)
}

// JobDeduped records one submission coalescing onto an in-flight job.
func (o *Observer) JobDeduped(traceID, jobID, tenant string) {
	if o == nil {
		return
	}
	o.log.Info("job deduplicated onto in-flight solve",
		"trace_id", traceID, "job_id", jobID, "tenant", tenant,
		"stage", StageDedup)
}

// JobRejected records one admission-control rejection and arms the
// queue-full-burst trigger: a burst of rejections dumps the recorder
// once (the postmortem of "why did we shed load?").
func (o *Observer) JobRejected(traceID, tenant string, retryAfter time.Duration) {
	if o == nil {
		return
	}
	o.log.Warn("job rejected: queue full",
		"trace_id", traceID, "tenant", tenant,
		"stage", StageIngress, "retry_after", retryAfter.String())
	if path, ok := o.rec.NoteRejection(); ok {
		o.log.Warn("flight recorder dumped", "reason", ReasonQueueFullBurst, "path", path)
	}
}

// JobFinished records one terminal job: the stage histograms, the flight
// ring, a log line, and — for jobs failed on a non-finite norm — an
// anomaly dump naming the job.
func (o *Observer) JobFinished(rec JobRecord) {
	if o == nil {
		return
	}
	o.hist.ObserveJob(rec)
	o.rec.Add(rec)
	o.rec.NoteDepth(rec.QueueDepth, rec.Running)
	attrs := []any{
		"trace_id", rec.TraceID, "job_id", rec.JobID, "tenant", rec.Tenant,
		"stage", StageRespond, "state", rec.State,
		"queue_s", rec.QueueSeconds, "solve_s", rec.SolveSeconds,
		"total_s", rec.TotalSeconds,
	}
	switch {
	case rec.NonFinite:
		o.log.Error("job failed on non-finite norm", append(attrs, "error", rec.Error)...)
		if path, ok := o.rec.Trigger(ReasonNonFinite); ok {
			o.log.Error("flight recorder dumped", "reason", ReasonNonFinite,
				"trace_id", rec.TraceID, "job_id", rec.JobID, "path", path)
		}
	case rec.Error != "":
		o.log.Warn("job finished", append(attrs, "error", rec.Error)...)
	default:
		o.log.Info("job finished", attrs...)
	}
}

// DrainStarted records the start of graceful shutdown and snapshots the
// recorder — the state of the queue at the moment intake stopped.
func (o *Observer) DrainStarted() {
	if o == nil {
		return
	}
	o.log.Info("drain started", "stage", StageRespond)
	if path, ok := o.rec.Trigger(ReasonDrain); ok {
		o.log.Info("flight recorder dumped", "reason", ReasonDrain, "path", path)
	}
}

// HealthVerdict records a health-monitor verdict into the recorder's
// recent-verdict history.
func (o *Observer) HealthVerdict(verdict string) {
	if o == nil {
		return
	}
	o.rec.NoteHealth(verdict)
}
