// The stage model of one service request, and its Prometheus
// exposition. A job entering POST /v1/solve passes through a fixed
// pipeline of stages, each bounded by a monotonic timestamp the queue
// records:
//
//	ingress   submit entry → admission decision (parse/dedup/reject)
//	queue     admission → a runner dequeues the job
//	dedup     a coalesced submitter's attach → the shared job's terminal
//	          transition (only submissions answered by another job's
//	          execution observe this stage)
//	solve     runner start → solver return
//	respond   solver return → terminal result published to waiters
//
// The decomposition is what lets a slow job be attributed: a large
// queue stage is backlog, a large dedup stage is a popular problem
// already in flight, a large solve stage is the kernel itself.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Stage names, in pipeline order.
const (
	StageIngress = "ingress"
	StageQueue   = "queue"
	StageDedup   = "dedup"
	StageSolve   = "solve"
	StageRespond = "respond"
)

// Stages lists the stage names in pipeline order.
var Stages = []string{StageIngress, StageQueue, StageDedup, StageSolve, StageRespond}

// JobRecord is the flight-record of one terminal job: identity, outcome
// and the full stage decomposition. It is what the flight recorder
// retains and what the stage histograms consume.
type JobRecord struct {
	// Seq is the recorder's admission counter, stamped by Add — it
	// orders records across ring wraparound.
	Seq uint64 `json:"seq"`
	// TraceID/JobID/Tenant join the record to logs, traces and the API.
	TraceID string `json:"traceId"`
	JobID   string `json:"jobId"`
	Tenant  string `json:"tenant,omitempty"`
	// Class/Impl identify the problem.
	Class string `json:"class,omitempty"`
	Impl  string `json:"impl,omitempty"`
	// State is the terminal state (done, failed, cancelled); Error the
	// failure reason; NonFinite marks the poisoned-norm failure mode
	// that triggers an anomaly dump.
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
	NonFinite bool   `json:"nonFinite,omitempty"`
	// SubmitUnixNano is the wall-clock submit time (the only wall stamp;
	// stage durations are monotonic differences).
	SubmitUnixNano int64 `json:"submitUnixNano"`
	// The stage decomposition, in seconds.
	IngressSeconds float64 `json:"ingressSeconds"`
	QueueSeconds   float64 `json:"queueSeconds"`
	SolveSeconds   float64 `json:"solveSeconds"`
	RespondSeconds float64 `json:"respondSeconds"`
	TotalSeconds   float64 `json:"totalSeconds"`
	// DedupWaiters counts submissions that coalesced onto this job;
	// DedupWaitSeconds holds each coalesced submitter's attach→terminal
	// wait (the time the shared execution saved it).
	DedupWaiters     int       `json:"dedupWaiters,omitempty"`
	DedupWaitSeconds []float64 `json:"dedupWaitSeconds,omitempty"`
	// QueueDepth/Running are the queue gauges at the terminal
	// transition — the congestion context of the record.
	QueueDepth int `json:"queueDepth"`
	Running    int `json:"running"`
	// Rnm2 is the final residual norm of a successful solve.
	Rnm2 float64 `json:"rnm2,omitempty"`
	// Cached marks records synthesized for cache hits (no solve ran).
	Cached bool `json:"cached,omitempty"`
}

// StageBuckets are the mgd_stage_seconds histogram bucket bounds, in
// seconds: sub-millisecond ingress/respond hops through multi-minute
// class-C solves.
var StageBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// histKey labels one histogram series.
type histKey struct {
	stage  string
	status string
}

// hist is one cumulative histogram.
type hist struct {
	buckets []uint64 // one count per StageBuckets bound; +Inf is count
	sum     float64
	count   uint64
}

// StageHist is the per-(stage, terminal-status) latency histogram set
// behind the daemon's mgd_stage_seconds metric. Safe for concurrent
// use; a nil *StageHist drops observations for free.
type StageHist struct {
	mu     sync.Mutex
	series map[histKey]*hist
}

// NewStageHist builds an empty histogram set.
func NewStageHist() *StageHist {
	return &StageHist{series: make(map[histKey]*hist)}
}

// Observe records one stage duration under the job's terminal status.
func (h *StageHist) Observe(stage, status string, seconds float64) {
	if h == nil {
		return
	}
	key := histKey{stage: stage, status: status}
	h.mu.Lock()
	s := h.series[key]
	if s == nil {
		s = &hist{buckets: make([]uint64, len(StageBuckets))}
		h.series[key] = s
	}
	for i, bound := range StageBuckets {
		if seconds <= bound {
			s.buckets[i]++
		}
	}
	s.sum += seconds
	s.count++
	h.mu.Unlock()
}

// ObserveJob records a terminal job's full stage decomposition: every
// stage the job passed through, labelled with its terminal state. The
// dedup stage is observed once per coalesced waiter (their wait is the
// time the shared execution saved them).
func (h *StageHist) ObserveJob(rec JobRecord) {
	if h == nil {
		return
	}
	h.Observe(StageIngress, rec.State, rec.IngressSeconds)
	if !rec.Cached {
		h.Observe(StageQueue, rec.State, rec.QueueSeconds)
		h.Observe(StageSolve, rec.State, rec.SolveSeconds)
		h.Observe(StageRespond, rec.State, rec.RespondSeconds)
	}
	for _, wait := range rec.DedupWaitSeconds {
		h.Observe(StageDedup, rec.State, wait)
	}
}

// Snapshot returns the current series as (stage, status) → (buckets,
// sum, count) in deterministic order, for tests and JSON views.
type StageSeries struct {
	Stage   string   `json:"stage"`
	Status  string   `json:"status"`
	Buckets []uint64 `json:"buckets"`
	Sum     float64  `json:"sum"`
	Count   uint64   `json:"count"`
}

// Snapshot copies the histogram set.
func (h *StageHist) Snapshot() []StageSeries {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]StageSeries, 0, len(h.series))
	for key, s := range h.series {
		out = append(out, StageSeries{
			Stage:   key.stage,
			Status:  key.status,
			Buckets: append([]uint64(nil), s.buckets...),
			Sum:     s.sum,
			Count:   s.count,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Status < out[j].Status
	})
	return out
}

// WritePrometheus renders the histogram set in Prometheus text
// exposition format as mgd_stage_seconds — the request-latency rows of
// the daemon's /metrics endpoint. Nil-safe (writes nothing).
func (h *StageHist) WritePrometheus(w io.Writer) {
	series := h.Snapshot()
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP mgd_stage_seconds Per-stage request latency by terminal status.\n")
	fmt.Fprintf(w, "# TYPE mgd_stage_seconds histogram\n")
	for _, s := range series {
		for i, bound := range StageBuckets {
			fmt.Fprintf(w, "mgd_stage_seconds_bucket{stage=%q,status=%q,le=%q} %d\n",
				s.Stage, s.Status, formatBound(bound), s.Buckets[i])
		}
		fmt.Fprintf(w, "mgd_stage_seconds_bucket{stage=%q,status=%q,le=\"+Inf\"} %d\n",
			s.Stage, s.Status, s.Count)
		fmt.Fprintf(w, "mgd_stage_seconds_sum{stage=%q,status=%q} %g\n", s.Stage, s.Status, s.Sum)
		fmt.Fprintf(w, "mgd_stage_seconds_count{stage=%q,status=%q} %d\n", s.Stage, s.Status, s.Count)
	}
}

// formatBound renders a bucket bound the way Prometheus clients expect
// (no trailing zeros, no scientific notation for these magnitudes).
func formatBound(v float64) string {
	return fmt.Sprintf("%g", v)
}
