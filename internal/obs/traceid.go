// Trace identity: 128-bit IDs minted at HTTP ingress (or accepted from
// the X-Mg-Trace-Id header) and carried through the job queue, the
// structured logs, the kernel tracer and the flight recorder — the join
// key of the whole observability layer.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a request's trace ID, both
// inbound (a client or an upstream proxy propagating its own ID) and
// outbound (the daemon echoing the ID it assigned).
const TraceHeader = "X-Mg-Trace-Id"

// TraceID is a 128-bit request identifier, rendered as 32 lower-case
// hex digits (the W3C trace-context trace-id format).
type TraceID [16]byte

// zeroTrace is the invalid all-zero ID.
var zeroTrace TraceID

// traceSeq de-duplicates IDs minted inside one crypto/rand failure
// window (see NewTraceID's fallback).
var traceSeq atomic.Uint64

// NewTraceID mints a random 128-bit trace ID. It never fails: if the
// system entropy source errors (vanishingly rare), the fallback mixes
// the wall clock with a process-local counter — unique within the
// process, which is all the tracing layer needs.
func NewTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err == nil && id != zeroTrace {
		return id
	}
	binary.BigEndian.PutUint64(id[:8], uint64(time.Now().UnixNano()))
	binary.BigEndian.PutUint64(id[8:], traceSeq.Add(1))
	return id
}

// String renders the ID as 32 hex digits.
func (id TraceID) String() string {
	return hex.EncodeToString(id[:])
}

// Valid reports whether the ID is non-zero.
func (id TraceID) Valid() bool { return id != zeroTrace }

// ParseTraceID parses a 32-hex-digit trace ID (the wire format of
// TraceHeader). The W3C trace-context format is strict: exactly 32
// lower-case hex digits, and the all-zero ID is the invalid marker —
// upper case, other lengths and non-hex bytes are all rejected, so a
// parsed ID always round-trips through String unchanged.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace ID %q: want 32 hex digits, have %d bytes", s, len(s))
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return TraceID{}, fmt.Errorf("obs: trace ID %q: byte %d is not a lower-case hex digit", s, i)
		}
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: trace ID %q: %v", s, err)
	}
	if !id.Valid() {
		return TraceID{}, fmt.Errorf("obs: trace ID %q: the all-zero ID is invalid", s)
	}
	return id, nil
}

// ValidTraceID reports whether s parses as a trace ID.
func ValidTraceID(s string) bool {
	_, err := ParseTraceID(s)
	return err == nil
}
