package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceIDMintParse pins the trace-id contract: NewTraceID mints
// distinct, valid, 32-hex-digit IDs; ParseTraceID round-trips them and
// rejects everything malformed (wrong length, non-hex, all-zero).
func TestTraceIDMintParse(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if !id.Valid() {
			t.Fatalf("minted invalid trace ID %v", id)
		}
		s := id.String()
		if len(s) != 32 {
			t.Fatalf("trace ID %q is %d chars, want 32", s, len(s))
		}
		if seen[s] {
			t.Fatalf("duplicate trace ID %q", s)
		}
		seen[s] = true
		back, err := ParseTraceID(s)
		if err != nil || back != id {
			t.Fatalf("round trip of %q: %v %v", s, back, err)
		}
	}
	for _, bad := range []string{
		"", "abc", strings.Repeat("0", 32), strings.Repeat("g", 32),
		strings.Repeat("a", 31), strings.Repeat("a", 33),
		"ABCDEF00112233445566778899aabbcc", // upper case is not canonical
	} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true", bad)
		}
	}
}

// TestLoggerFormats pins the -log-format contract: text and json
// handlers, and a typed error for anything else.
func TestLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "json", 0)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("job admitted", "trace_id", "00112233445566778899aabbccddeeff", "job_id", "abc", "stage", StageQueue)
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("json log line %q: %v", buf.String(), err)
	}
	for _, key := range []string{"trace_id", "job_id", "stage", "msg"} {
		if _, ok := line[key]; !ok {
			t.Errorf("json log line missing %q: %v", key, line)
		}
	}

	buf.Reset()
	log, err = NewLogger(&buf, "text", 0)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "tenant", "gold")
	if !strings.Contains(buf.String(), "tenant=gold") {
		t.Errorf("text log line %q missing tenant attr", buf.String())
	}

	if _, err := NewLogger(&buf, "xml", 0); err == nil {
		t.Error("NewLogger accepted format xml")
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted level loud")
	}
}

// TestFlightRingWraparound fills a small ring far past capacity from
// concurrent writers (run under -race in CI) and checks the snapshot
// invariants: capacity records retained, every record internally
// consistent, sequence numbers unique and ordered, lifetime count exact.
func TestFlightRingWraparound(t *testing.T) {
	const slots, writers, perWriter = 8, 4, 100
	rec := NewFlightRecorder(FlightConfig{Slots: slots})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				rec.Add(JobRecord{TraceID: id, JobID: id, State: "done"})
				rec.NoteDepth(i, w)
				rec.NoteHealth("converging")
			}
		}()
	}
	wg.Wait()

	d := rec.Snapshot(ReasonRequest)
	if d.JobsSeen != writers*perWriter {
		t.Fatalf("JobsSeen = %d, want %d", d.JobsSeen, writers*perWriter)
	}
	if len(d.Jobs) != slots {
		t.Fatalf("retained %d records, want the ring capacity %d", len(d.Jobs), slots)
	}
	seenSeq := map[uint64]bool{}
	seenSlot := map[uint64]bool{}
	for i, r := range d.Jobs {
		if seenSeq[r.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", r.Seq)
		}
		seenSeq[r.Seq] = true
		if slot := r.Seq % slots; seenSlot[slot] {
			t.Fatalf("two records map to ring slot %d", slot)
		} else {
			seenSlot[slot] = true
		}
		if i > 0 && d.Jobs[i-1].Seq > r.Seq {
			t.Fatalf("snapshot not seq-ordered: %d before %d", d.Jobs[i-1].Seq, r.Seq)
		}
		// Torn records would show here: the IDs are written together.
		if r.TraceID != r.JobID {
			t.Fatalf("torn record: trace %q vs job %q", r.TraceID, r.JobID)
		}
	}
}

// TestFlightTriggerDump covers the anomaly path end to end: a poisoned
// job fed through the Observer triggers a non-finite dump file whose
// JSON names the job, and the rate limiter swallows an immediate repeat.
func TestFlightTriggerDump(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "json", 0)
	if err != nil {
		t.Fatal(err)
	}
	o := New(Config{Log: log, FlightDir: dir, DumpMinInterval: time.Hour})

	o.JobFinished(JobRecord{
		TraceID: "00112233445566778899aabbccddeeff", JobID: "deadbeef00000001",
		Tenant: "chaos", State: "failed", Error: "non-finite residual norm",
		NonFinite: true, SolveSeconds: 0.25, TotalSeconds: 0.5,
	})

	files, err := filepath.Glob(filepath.Join(dir, "flight-*-"+ReasonNonFinite+".json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("dump files = %v (err %v), want exactly one non-finite dump", files, err)
	}
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(blob, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Reason != ReasonNonFinite {
		t.Fatalf("dump reason = %q, want %q", d.Reason, ReasonNonFinite)
	}
	found := false
	for _, r := range d.Jobs {
		if r.JobID == "deadbeef00000001" && r.NonFinite {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump does not name the poisoned job: %s", blob)
	}
	if !strings.Contains(buf.String(), "deadbeef00000001") {
		t.Error("log lines do not carry the poisoned job's id")
	}

	// Rate limit: a second anomaly inside DumpMinInterval is recorded in
	// the ring but does not produce a second file.
	o.JobFinished(JobRecord{TraceID: "ffee2233445566778899aabbccddeeff",
		JobID: "deadbeef00000002", State: "failed", NonFinite: true})
	files, _ = filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if len(files) != 1 {
		t.Fatalf("rate limiter let a second dump through: %v", files)
	}
	if got := o.Recorder().Dumps(); got != 1 {
		t.Fatalf("Dumps() = %d, want 1", got)
	}
}

// TestFlightBurstTrigger pins the queue-full-burst trigger: BurstCount
// rejections inside one window fire exactly one dump.
func TestFlightBurstTrigger(t *testing.T) {
	rec := NewFlightRecorder(FlightConfig{BurstWindow: time.Hour, BurstCount: 3, DumpMinInterval: time.Hour})
	for i := 0; i < 2; i++ {
		if _, fired := rec.NoteRejection(); fired {
			t.Fatalf("burst trigger fired after %d rejections, want 3", i+1)
		}
	}
	if _, fired := rec.NoteRejection(); !fired {
		t.Fatal("burst trigger did not fire on the 3rd rejection")
	}
	if rec.Dumps() != 1 {
		t.Fatalf("Dumps() = %d, want 1", rec.Dumps())
	}
}

// TestStageHistPrometheus pins the mgd_stage_seconds exposition: one
// histogram series per (stage, status) with cumulative buckets, +Inf,
// sum and count; cached jobs observe ingress only.
func TestStageHistPrometheus(t *testing.T) {
	h := NewStageHist()
	h.ObserveJob(JobRecord{State: "done",
		IngressSeconds: 0.0002, QueueSeconds: 0.02, SolveSeconds: 0.4,
		RespondSeconds: 0.0001, TotalSeconds: 0.42,
		DedupWaitSeconds: []float64{0.3, 0.35}})
	h.ObserveJob(JobRecord{State: "done", Cached: true, IngressSeconds: 0.0001})

	byKey := map[string]StageSeries{}
	for _, s := range h.Snapshot() {
		byKey[s.Stage+"/"+s.Status] = s
	}
	if got := byKey["ingress/done"].Count; got != 2 {
		t.Fatalf("ingress count = %d, want 2 (cold + cached)", got)
	}
	if got := byKey["solve/done"].Count; got != 1 {
		t.Fatalf("solve count = %d, want 1 (cached job must not observe solve)", got)
	}
	if got := byKey["dedup/done"].Count; got != 2 {
		t.Fatalf("dedup count = %d, want one observation per waiter", got)
	}

	var buf bytes.Buffer
	h.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		"# TYPE mgd_stage_seconds histogram",
		`mgd_stage_seconds_bucket{stage="solve",status="done",le="+Inf"} 1`,
		`mgd_stage_seconds_count{stage="ingress",status="done"} 2`,
		`mgd_stage_seconds_sum{stage="queue",status="done"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Buckets are cumulative: each count ≥ the previous bound's.
	s := byKey["solve/done"]
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i] < s.Buckets[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, s.Buckets)
		}
	}
}

// TestObserverDisabledZeroAlloc pins the disabled fast path — the same
// contract internal/metrics and internal/health keep: a nil Observer
// (and its nil recorder/histograms) must make every hook free.
func TestObserverDisabledZeroAlloc(t *testing.T) {
	var o *Observer
	var rec *FlightRecorder
	var h *StageHist
	allocs := testing.AllocsPerRun(1000, func() {
		o.JobAdmitted("t", "j", "tenant", 1, 1)
		o.JobDeduped("t", "j", "tenant")
		o.JobRejected("t", "tenant", time.Second)
		o.JobFinished(JobRecord{})
		o.HealthVerdict("converging")
		rec.Add(JobRecord{})
		rec.NoteDepth(1, 1)
		rec.NoteHealth("x")
		h.Observe(StageSolve, "done", 0.1)
		h.ObserveJob(JobRecord{})
	})
	if allocs != 0 {
		t.Fatalf("disabled observer path allocates %v bytes/op, want 0", allocs)
	}
}

// TestObserverNilAccessors: the accessors of a nil observer return
// usable values, so call sites never nil-check.
func TestObserverNilAccessors(t *testing.T) {
	var o *Observer
	o.Log().Info("dropped")
	if o.Hist() != nil || o.Recorder() != nil {
		t.Fatal("nil observer must return nil hist/recorder")
	}
	var buf bytes.Buffer
	if err := o.Recorder().WriteTo(&buf, ReasonRequest); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("nil recorder snapshot is not JSON: %v", err)
	}
	if _, fired := o.Recorder().Trigger(ReasonSignal); fired {
		t.Fatal("nil recorder trigger fired")
	}
}
