// Structured logging setup shared by the service binaries (cmd/mgd,
// cmd/mgload, cmd/mgrank): one log/slog logger per process, JSON or
// text via -log-format, every service line carrying the request-scoped
// attributes (trace_id, job_id, tenant, stage) that join logs to traces
// and flight records.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// discard is the process-wide no-op logger behind Discard.
var discard = slog.New(discardHandler{})

// discardHandler drops every record before formatting (Enabled is
// false, so slog never builds the record). It is what keeps a nil
// Observer's Log() path allocation-free.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (h discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h discardHandler) WithGroup(string) slog.Handler           { return h }

// Discard returns a logger that drops everything — the default when no
// log sink is configured, so call sites never nil-check.
func Discard() *slog.Logger { return discard }

// NewLogger builds the service logger: format "text" (the default,
// logfmt-style key=value lines) or "json" (one JSON object per line,
// machine-ingestible), at the given level, writing to w.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}
