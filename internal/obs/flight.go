// The anomaly flight recorder: an always-on, fixed-size, lock-free ring
// of recent per-job stage records plus short histories of queue depth
// and health verdicts. Writers pay one atomic increment and one pointer
// store per record — bounded memory, ~zero cost when idle — so the
// recorder can stay enabled in production. On an anomaly trigger
// (non-finite norm, queue-full burst, drain start, SIGQUIT) or an HTTP
// request it serializes itself to a JSON snapshot: the last N jobs with
// their full stage decompositions, the recent congestion history, and
// the last health verdicts — the postmortem of "what was the service
// doing when it went wrong?".
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Dump trigger reasons.
const (
	ReasonNonFinite      = "non-finite-norm"
	ReasonQueueFullBurst = "queue-full-burst"
	ReasonDrain          = "drain"
	ReasonSignal         = "sigquit"
	ReasonRequest        = "http-request"
)

// FlightConfig configures a FlightRecorder; zero values select the
// defaults documented on Config.
type FlightConfig struct {
	Slots           int
	DepthSlots      int
	HealthSlots     int
	Dir             string
	DumpMinInterval time.Duration
	BurstWindow     time.Duration
	BurstCount      int
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Slots < 1 {
		c.Slots = 256
	}
	if c.DepthSlots < 1 {
		c.DepthSlots = 512
	}
	if c.HealthSlots < 1 {
		c.HealthSlots = 32
	}
	if c.DumpMinInterval <= 0 {
		c.DumpMinInterval = 10 * time.Second
	}
	if c.BurstWindow <= 0 {
		c.BurstWindow = 2 * time.Second
	}
	if c.BurstCount < 1 {
		c.BurstCount = 16
	}
	return c
}

// DepthSample is one point of the queue-depth history.
type DepthSample struct {
	UnixNano int64 `json:"unixNano"`
	Queued   int   `json:"queued"`
	Running  int   `json:"running"`
}

// HealthMark is one recorded health verdict.
type HealthMark struct {
	UnixNano int64  `json:"unixNano"`
	Verdict  string `json:"verdict"`
}

// FlightRecorder is the ring set. All Note/Add methods are lock-free
// (an atomic counter claims a slot, an atomic pointer publishes the
// record) and safe for any number of concurrent writers; Snapshot and
// Trigger are concurrent-safe readers. A nil *FlightRecorder drops
// everything for free.
type FlightRecorder struct {
	cfg FlightConfig

	jobs      []atomic.Pointer[JobRecord]
	jobSeq    atomic.Uint64
	depth     []atomic.Pointer[DepthSample]
	depthSeq  atomic.Uint64
	health    []atomic.Pointer[HealthMark]
	healthSeq atomic.Uint64

	dumps atomic.Uint64

	// Dump rate limiting and the rejection-burst trigger state; these
	// paths are off the per-job hot path, so a mutex is fine.
	mu         sync.Mutex
	lastDump   time.Time
	burstStart time.Time
	burstCount int
}

// NewFlightRecorder builds a recorder with the given config.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{
		cfg:    cfg,
		jobs:   make([]atomic.Pointer[JobRecord], cfg.Slots),
		depth:  make([]atomic.Pointer[DepthSample], cfg.DepthSlots),
		health: make([]atomic.Pointer[HealthMark], cfg.HealthSlots),
	}
}

// Add records one terminal job, stamping its Seq. The oldest record in
// the ring is overwritten once the ring has wrapped.
func (r *FlightRecorder) Add(rec JobRecord) {
	if r == nil {
		return
	}
	seq := r.jobSeq.Add(1) - 1
	// Copy into a fresh variable so the heap allocation (the stored
	// pointer escapes) happens after the nil check — a nil recorder's
	// Add must stay allocation-free, not pay for an escaping parameter.
	stored := rec
	stored.Seq = seq
	r.jobs[seq%uint64(len(r.jobs))].Store(&stored)
}

// NoteDepth records one queue-depth sample.
func (r *FlightRecorder) NoteDepth(queued, running int) {
	if r == nil {
		return
	}
	s := &DepthSample{UnixNano: time.Now().UnixNano(), Queued: queued, Running: running}
	seq := r.depthSeq.Add(1) - 1
	r.depth[seq%uint64(len(r.depth))].Store(s)
}

// NoteHealth records one health verdict.
func (r *FlightRecorder) NoteHealth(verdict string) {
	if r == nil {
		return
	}
	m := &HealthMark{UnixNano: time.Now().UnixNano(), Verdict: verdict}
	seq := r.healthSeq.Add(1) - 1
	r.health[seq%uint64(len(r.health))].Store(m)
}

// NoteRejection feeds the queue-full-burst trigger: when BurstCount
// rejections land inside one BurstWindow, the recorder dumps itself
// once (subject to the dump rate limit) and resets the window. Returns
// the dump path and true when a dump was written.
func (r *FlightRecorder) NoteRejection() (string, bool) {
	if r == nil {
		return "", false
	}
	now := time.Now()
	r.mu.Lock()
	if r.burstStart.IsZero() || now.Sub(r.burstStart) > r.cfg.BurstWindow {
		r.burstStart = now
		r.burstCount = 0
	}
	r.burstCount++
	fire := r.burstCount >= r.cfg.BurstCount
	if fire {
		r.burstStart = time.Time{}
		r.burstCount = 0
	}
	r.mu.Unlock()
	if !fire {
		return "", false
	}
	return r.Trigger(ReasonQueueFullBurst)
}

// Dump is one serialized flight-recorder snapshot.
type Dump struct {
	// Time is the snapshot wall time; Reason the trigger.
	Time   string `json:"time"`
	Reason string `json:"reason"`
	// Jobs are the retained records, oldest first; JobsSeen is the
	// lifetime admission count (JobsSeen − len(Jobs) records have been
	// overwritten).
	Jobs     []JobRecord `json:"jobs"`
	JobsSeen uint64      `json:"jobsSeen"`
	// Depth is the recent queue-depth history, oldest first.
	Depth []DepthSample `json:"depth,omitempty"`
	// Health is the recent health-verdict history, oldest first.
	Health []HealthMark `json:"health,omitempty"`
	// Dumps counts snapshots taken before this one.
	Dumps uint64 `json:"dumps"`
}

// Snapshot collects the rings into a Dump. Concurrent writers may land
// mid-snapshot; each slot read is atomic, so every record is internally
// consistent and ordering is restored by Seq.
func (r *FlightRecorder) Snapshot(reason string) Dump {
	d := Dump{
		Time:   time.Now().UTC().Format(time.RFC3339Nano),
		Reason: reason,
	}
	if r == nil {
		return d
	}
	d.JobsSeen = r.jobSeq.Load()
	d.Dumps = r.dumps.Load()
	for i := range r.jobs {
		if rec := r.jobs[i].Load(); rec != nil {
			d.Jobs = append(d.Jobs, *rec)
		}
	}
	sort.Slice(d.Jobs, func(i, j int) bool { return d.Jobs[i].Seq < d.Jobs[j].Seq })
	for i := range r.depth {
		if s := r.depth[i].Load(); s != nil {
			d.Depth = append(d.Depth, *s)
		}
	}
	sort.Slice(d.Depth, func(i, j int) bool { return d.Depth[i].UnixNano < d.Depth[j].UnixNano })
	for i := range r.health {
		if m := r.health[i].Load(); m != nil {
			d.Health = append(d.Health, *m)
		}
	}
	sort.Slice(d.Health, func(i, j int) bool { return d.Health[i].UnixNano < d.Health[j].UnixNano })
	return d
}

// WriteTo serializes a snapshot with the given reason as indented JSON.
func (r *FlightRecorder) WriteTo(w io.Writer, reason string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot(reason))
}

// Trigger takes an anomaly snapshot: rate-limited by DumpMinInterval
// (a burst of anomalies produces one postmortem, not hundreds) and
// written to a timestamped JSON file under Dir. Without a Dir the
// trigger only bumps the dump counter — the snapshot stays available
// via Snapshot/HTTP. Returns the file path (empty without a Dir) and
// whether the trigger fired.
func (r *FlightRecorder) Trigger(reason string) (string, bool) {
	if r == nil {
		return "", false
	}
	now := time.Now()
	r.mu.Lock()
	if !r.lastDump.IsZero() && now.Sub(r.lastDump) < r.cfg.DumpMinInterval {
		r.mu.Unlock()
		return "", false
	}
	r.lastDump = now
	r.mu.Unlock()
	n := r.dumps.Add(1)
	if r.cfg.Dir == "" {
		return "", true
	}
	path := filepath.Join(r.cfg.Dir,
		fmt.Sprintf("flight-%s-%d-%s.json", now.UTC().Format("20060102T150405"), n, reason))
	f, err := os.Create(path)
	if err != nil {
		return "", false
	}
	defer f.Close()
	if err := r.WriteTo(f, reason); err != nil {
		return "", false
	}
	return path, true
}

// Dumps returns the number of triggers that fired.
func (r *FlightRecorder) Dumps() uint64 {
	if r == nil {
		return 0
	}
	return r.dumps.Load()
}
