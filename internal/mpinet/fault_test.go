package mpinet

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// rawPeer builds a 2-rank world where rank 0 is a real Transport and
// rank 1 is a bare TCP connection the test drives byte by byte — the
// harness for injecting malformed traffic. Returns the transport and
// the test's end of the wire.
func rawPeer(t *testing.T, ioTimeout time.Duration) (*Transport, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	dialed := make(chan net.Conn, 1)
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Error(err)
			dialed <- nil
			return
		}
		dialed <- c
	}()
	accepted, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	raw := <-dialed
	if raw == nil {
		t.FailNow()
	}
	cfg := Config{Rank: 0, Size: 2, Addr: "-", IOTimeout: ioTimeout, DialRetries: 1, DialBackoff: time.Millisecond}.withDefaults()
	peers := make([]*peer, 2)
	peers[1] = newPeer(1, accepted, cfg.QueueDepth)
	tr := newTransport(cfg, peers)
	t.Cleanup(func() { tr.Close(); raw.Close() })
	return tr, raw
}

// recvErr runs Recv(1, tag) and asserts it fails within the deadline
// budget rather than hanging.
func recvErr(t *testing.T, tr *Transport, budget time.Duration) error {
	t.Helper()
	start := time.Now()
	_, err := tr.Recv(1, 9)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Recv succeeded, want a typed error")
	}
	if elapsed > budget {
		t.Fatalf("Recv took %v to fail, want under %v (no hang)", elapsed, budget)
	}
	return err
}

func TestFaultTornFrame(t *testing.T) {
	tr, raw := rawPeer(t, 300*time.Millisecond)
	// A valid header promising 10 floats, then silence: the stream has
	// started a frame and must finish it within IOTimeout.
	full := encodeFrame(1, 9, make([]float64, 10))
	if _, err := raw.Write(full[:headerLen+4]); err != nil {
		t.Fatal(err)
	}
	// The pending Recv fails within its own deadline; the torn frame is
	// detected on the same clock, so assert the transport's recorded
	// failure rather than racing the two timers.
	recvErr(t, tr, 2*time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for tr.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	var fe *FrameError
	if err := tr.Err(); !errors.As(err, &fe) {
		t.Fatalf("transport error %v (%T), want *FrameError", err, err)
	}
	if fe.Peer != 1 {
		t.Errorf("FrameError.Peer = %d, want 1", fe.Peer)
	}
}

func TestFaultBadChecksum(t *testing.T) {
	tr, raw := rawPeer(t, time.Second)
	frame := encodeFrame(1, 9, []float64{1, 2, 3})
	frame[len(frame)-1] ^= 0xff
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	err := recvErr(t, tr, 2*time.Second)
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v (%T), want *ChecksumError", err, err)
	}
	if ce.Peer != 1 || ce.Tag != 9 {
		t.Errorf("ChecksumError = %+v, want Peer 1 Tag 9", ce)
	}
}

func TestFaultBadMagic(t *testing.T) {
	tr, raw := rawPeer(t, time.Second)
	junk := make([]byte, 64)
	for i := range junk {
		junk[i] = 0x5a
	}
	if _, err := raw.Write(junk); err != nil {
		t.Fatal(err)
	}
	err := recvErr(t, tr, 2*time.Second)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v (%T), want *FrameError (desynchronized stream)", err, err)
	}
}

func TestFaultPeerClosesMidSolve(t *testing.T) {
	tr, raw := rawPeer(t, 5*time.Second)
	// The peer dies without a goodbye — a crash, not a clean exit.
	done := make(chan error, 1)
	go func() {
		_, err := tr.Recv(1, 9)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Recv block
	raw.Close()
	select {
	case err := <-done:
		var pe *PeerError
		if !errors.As(err, &pe) {
			t.Fatalf("error %v (%T), want *PeerError", err, err)
		}
		if pe.Peer != 1 || pe.Op != "read" {
			t.Errorf("PeerError = %+v, want Peer 1 Op read", pe)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv still blocked 2s after the peer connection dropped")
	}
}

func TestFaultAbortRelayNamesCulprit(t *testing.T) {
	tr, raw := rawPeer(t, 5*time.Second)
	// Rank 1 relays that rank 7 died; our pending Recv must surface
	// PeerDeadError{Peer: 7, Via: 1}.
	if _, err := raw.Write(encodeFrame(1, tagAbort, []float64{7})); err != nil {
		t.Fatal(err)
	}
	err := recvErr(t, tr, 2*time.Second)
	var dead *PeerDeadError
	if !errors.As(err, &dead) {
		t.Fatalf("error %v (%T), want *PeerDeadError", err, err)
	}
	if dead.Peer != 7 || dead.Via != 1 {
		t.Errorf("PeerDeadError = %+v, want Peer 7 Via 1", dead)
	}
}

func TestFaultRecvTimeout(t *testing.T) {
	tr, _ := rawPeer(t, 200*time.Millisecond)
	err := recvErr(t, tr, 2*time.Second)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error %v (%T), want *TimeoutError", err, err)
	}
	if te.Peer != 1 {
		t.Errorf("TimeoutError.Peer = %d, want 1", te.Peer)
	}
}

func TestFaultGoodbyeIsNotDeath(t *testing.T) {
	tr, raw := rawPeer(t, time.Second)
	// A message, then a clean goodbye and EOF: the message must deliver
	// and the transport must not fail.
	if _, err := raw.Write(encodeFrame(1, 9, []float64{42})); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(encodeFrame(1, tagGoodbye, nil)); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	data, err := tr.Recv(1, 9)
	if err != nil {
		t.Fatalf("Recv after goodbye: %v", err)
	}
	if len(data) != 1 || data[0] != 42 {
		t.Fatalf("payload = %v, want [42]", data)
	}
	time.Sleep(50 * time.Millisecond)
	if err := tr.Err(); err != nil {
		t.Fatalf("transport failed after a clean goodbye: %v", err)
	}
}

// TestFaultVersionMismatch joins a rendezvous with a future protocol
// version: rank 0's Accept and the joiner's own bootstrap must both
// fail with VersionError.
func TestFaultVersionMismatch(t *testing.T) {
	cfg := Config{Rank: 0, Size: 2, Addr: "127.0.0.1:0", IOTimeout: 2 * time.Second}
	rz, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acceptErr := make(chan error, 1)
	go func() {
		_, err := rz.Accept()
		acceptErr <- err
	}()
	conn, err := net.Dial("tcp", rz.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeHello(conn, time.Second, hello{version: 99, rank: 1, size: 2, addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	// Rank 0 rejects the world.
	err = <-acceptErr
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("Accept error %v (%T), want *VersionError", err, err)
	}
	if ve.Got != 99 {
		t.Errorf("VersionError.Got = %d, want 99", ve.Got)
	}
	// The joiner learns the same from the reply.
	if _, err := readReply(conn, time.Second, 2); err == nil {
		t.Error("joiner readReply succeeded, want version rejection")
	} else if !errors.As(err, &ve) {
		t.Errorf("joiner error %v (%T), want *VersionError", err, err)
	}
}

// TestFaultHandshakeBadRank joins with an out-of-range rank id.
func TestFaultHandshakeBadRank(t *testing.T) {
	cfg := Config{Rank: 0, Size: 2, Addr: "127.0.0.1:0", IOTimeout: 2 * time.Second}
	rz, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acceptErr := make(chan error, 1)
	go func() {
		_, err := rz.Accept()
		acceptErr <- err
	}()
	conn, err := net.Dial("tcp", rz.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeHello(conn, time.Second, hello{version: ProtocolVersion, rank: 5, size: 2, addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	err = <-acceptErr
	var he *HandshakeError
	if !errors.As(err, &he) {
		t.Fatalf("Accept error %v (%T), want *HandshakeError", err, err)
	}
	if he.Peer != 5 {
		t.Errorf("HandshakeError.Peer = %d, want 5", he.Peer)
	}
}

// TestFaultRendezvousTimeout starts a world that never completes: rank
// 0 must give up at the rendezvous deadline with a TimeoutError naming
// the missing ranks, not hang.
func TestFaultRendezvousTimeout(t *testing.T) {
	cfg := Config{
		Rank: 0, Size: 3, Addr: "127.0.0.1:0",
		IOTimeout: 300 * time.Millisecond, DialRetries: 1, DialBackoff: time.Millisecond,
	}
	rz, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = rz.Accept()
	elapsed := time.Since(start)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("Accept error %v (%T), want *TimeoutError", err, err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Accept took %v to give up", elapsed)
	}
}

// TestFaultImplausibleLength rejects a frame whose length field would
// demand an absurd allocation.
func TestFaultImplausibleLength(t *testing.T) {
	tr, raw := rawPeer(t, time.Second)
	hdr := make([]byte, headerLen)
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], 1)
	binary.LittleEndian.PutUint32(hdr[8:], 9)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(maxFrameFloats+1))
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	err := recvErr(t, tr, 2*time.Second)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v (%T), want *FrameError", err, err)
	}
}
