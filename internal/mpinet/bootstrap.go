package mpinet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// The bootstrap. Rank 0 is the rendezvous point: it listens on the
// well-known address and every other rank dials it (with retry/backoff,
// so the N processes may be launched in any order) and sends a hello —
// protocol version, rank id, world size, grid class, and the address of
// its own freshly opened mesh listener. Once all N−1 ranks have joined,
// rank 0 answers each with the address book and the mesh is completed
// pairwise: for every pair the higher rank dials the lower rank's
// listener and identifies itself with the same hello; the rank-0 pairs
// reuse the rendezvous connections. Any disagreement — version, world
// size, class, duplicate or out-of-range rank — aborts the bootstrap
// with a typed error on both sides of the offending connection.
//
// Hello frame (little-endian):
//
//	u32 magic "MGHL" · u16 version · u32 rank · u32 size · u8 class ·
//	u16 addrLen · addr
//
// Rendezvous reply:
//
//	u32 magic · u16 version · u8 status · u16 msgLen · msg ·
//	[status 0] (size−1) × (u16 addrLen · addr)   — mesh addrs of ranks 1..N−1

type hello struct {
	version uint16
	rank    int
	size    int
	class   byte
	addr    string
}

const (
	statusOK      = 0
	statusVersion = 1
	statusRefused = 2
)

func writeHello(conn net.Conn, timeout time.Duration, h hello) error {
	buf := make([]byte, 0, 17+len(h.addr))
	buf = binary.LittleEndian.AppendUint32(buf, helloMagic)
	buf = binary.LittleEndian.AppendUint16(buf, h.version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.rank))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.size))
	buf = append(buf, h.class)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(h.addr)))
	buf = append(buf, h.addr...)
	conn.SetWriteDeadline(time.Now().Add(timeout))
	_, err := conn.Write(buf)
	return err
}

func readHello(conn net.Conn, timeout time.Duration) (hello, error) {
	conn.SetReadDeadline(time.Now().Add(timeout))
	var fixed [17]byte
	if _, err := io.ReadFull(conn, fixed[:]); err != nil {
		return hello{}, &HandshakeError{Peer: -1, Reason: fmt.Sprintf("short hello: %v", err)}
	}
	if m := binary.LittleEndian.Uint32(fixed[0:]); m != helloMagic {
		return hello{}, &HandshakeError{Peer: -1, Reason: fmt.Sprintf("bad hello magic %08x", m)}
	}
	h := hello{
		version: binary.LittleEndian.Uint16(fixed[4:]),
		rank:    int(binary.LittleEndian.Uint32(fixed[6:])),
		size:    int(binary.LittleEndian.Uint32(fixed[10:])),
		class:   fixed[14],
	}
	addrLen := int(binary.LittleEndian.Uint16(fixed[15:]))
	if addrLen > 0 {
		addr := make([]byte, addrLen)
		if _, err := io.ReadFull(conn, addr); err != nil {
			return hello{}, &HandshakeError{Peer: h.rank, Reason: fmt.Sprintf("short hello address: %v", err)}
		}
		h.addr = string(addr)
	}
	return h, nil
}

func writeReply(conn net.Conn, timeout time.Duration, status byte, msg string, addrs []string) error {
	buf := make([]byte, 0, 9+len(msg))
	buf = binary.LittleEndian.AppendUint32(buf, helloMagic)
	buf = binary.LittleEndian.AppendUint16(buf, ProtocolVersion)
	buf = append(buf, status)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	if status == statusOK {
		for _, a := range addrs[1:] { // rank 0's address is already known
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a)))
			buf = append(buf, a...)
		}
	}
	conn.SetWriteDeadline(time.Now().Add(timeout))
	_, err := conn.Write(buf)
	return err
}

// readReply parses the rendezvous answer on a joiner. The wait is
// bounded by the rendezvous timeout, not the I/O timeout: rank 0 only
// answers once the slowest rank has joined.
func readReply(conn net.Conn, timeout time.Duration, size int) ([]string, error) {
	conn.SetReadDeadline(time.Now().Add(timeout))
	var fixed [9]byte
	if _, err := io.ReadFull(conn, fixed[:]); err != nil {
		return nil, &HandshakeError{Peer: 0, Reason: fmt.Sprintf("short rendezvous reply: %v", err)}
	}
	if m := binary.LittleEndian.Uint32(fixed[0:]); m != helloMagic {
		return nil, &HandshakeError{Peer: 0, Reason: fmt.Sprintf("bad reply magic %08x", m)}
	}
	if v := binary.LittleEndian.Uint16(fixed[4:]); v != ProtocolVersion {
		return nil, &VersionError{Want: ProtocolVersion, Got: v}
	}
	status := fixed[6]
	msg := make([]byte, binary.LittleEndian.Uint16(fixed[7:]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		return nil, &HandshakeError{Peer: 0, Reason: fmt.Sprintf("short reply detail: %v", err)}
	}
	switch status {
	case statusOK:
	case statusVersion:
		return nil, &VersionError{Want: ProtocolVersion, Got: ProtocolVersion} // unreachable: version surfaced above
	default:
		return nil, &HandshakeError{Peer: 0, Reason: string(msg)}
	}
	addrs := make([]string, size)
	for rank := 1; rank < size; rank++ {
		var l [2]byte
		if _, err := io.ReadFull(conn, l[:]); err != nil {
			return nil, &HandshakeError{Peer: 0, Reason: fmt.Sprintf("short directory: %v", err)}
		}
		a := make([]byte, binary.LittleEndian.Uint16(l[:]))
		if _, err := io.ReadFull(conn, a); err != nil {
			return nil, &HandshakeError{Peer: 0, Reason: fmt.Sprintf("short directory: %v", err)}
		}
		addrs[rank] = string(a)
	}
	return addrs, nil
}

func newPeer(rank int, conn net.Conn, queueDepth int) *peer {
	return &peer{
		rank:  rank,
		conn:  conn,
		out:   make(chan []byte, queueDepth),
		inbox: make(chan inMsg, inboxDepth),
	}
}

// Rendezvous is rank 0's open bootstrap: the listener exists (Addr
// reports the bound address, useful with a ":0" ephemeral port) but the
// world is not yet assembled.
type Rendezvous struct {
	cfg Config
	ln  net.Listener
}

// Listen binds rank 0's rendezvous listener. Complete the bootstrap
// with Accept.
func Listen(cfg Config) (*Rendezvous, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rank != 0 {
		return nil, fmt.Errorf("mpinet: Listen is rank 0's side of the bootstrap, got rank %d", cfg.Rank)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("mpinet: rendezvous listen on %s: %w", cfg.Addr, err)
	}
	return &Rendezvous{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound rendezvous address — the string ranks 1..N−1
// must dial.
func (r *Rendezvous) Addr() string { return r.ln.Addr().String() }

// Close abandons a rendezvous without completing it.
func (r *Rendezvous) Close() error { return r.ln.Close() }

// Accept waits for all N−1 ranks to join, validates every handshake,
// distributes the address book, and returns rank 0's transport. On any
// protocol disagreement it aborts with a typed error; if the world is
// still incomplete at the rendezvous timeout it returns a TimeoutError
// naming the missing ranks.
func (r *Rendezvous) Accept() (*Transport, error) {
	cfg := r.cfg
	defer r.ln.Close()
	if tl, ok := r.ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(cfg.rendezvousTimeout()))
	}
	conns := make([]net.Conn, cfg.Size)
	addrs := make([]string, cfg.Size)
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	for joined := 0; joined < cfg.Size-1; joined++ {
		conn, err := r.ln.Accept()
		if err != nil {
			closeAll()
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, &TimeoutError{Peer: -1, Op: missingRanks(conns, cfg.Size), Wait: cfg.rendezvousTimeout()}
			}
			return nil, fmt.Errorf("mpinet: rendezvous accept: %w", err)
		}
		h, err := readHello(conn, cfg.IOTimeout)
		if err != nil {
			conn.Close()
			closeAll()
			return nil, err
		}
		if h.version != ProtocolVersion {
			writeReply(conn, cfg.IOTimeout, statusVersion, "", nil)
			conn.Close()
			closeAll()
			return nil, &VersionError{Want: ProtocolVersion, Got: h.version}
		}
		refuse := func(reason string) (*Transport, error) {
			writeReply(conn, cfg.IOTimeout, statusRefused, reason, nil)
			conn.Close()
			closeAll()
			return nil, &HandshakeError{Peer: h.rank, Reason: reason}
		}
		switch {
		case h.rank < 1 || h.rank >= cfg.Size:
			return refuse(fmt.Sprintf("rank %d outside world of size %d", h.rank, cfg.Size))
		case conns[h.rank] != nil:
			return refuse(fmt.Sprintf("rank %d joined twice", h.rank))
		case h.size != cfg.Size:
			return refuse(fmt.Sprintf("world size mismatch: rendezvous has %d, joiner has %d", cfg.Size, h.size))
		case h.class != cfg.Class && h.class != 0 && cfg.Class != 0:
			return refuse(fmt.Sprintf("grid class mismatch: rendezvous solves %c, joiner solves %c", cfg.Class, h.class))
		case h.addr == "":
			return refuse(fmt.Sprintf("rank %d advertised no mesh address", h.rank))
		}
		conns[h.rank] = conn
		addrs[h.rank] = h.addr
	}
	for rank := 1; rank < cfg.Size; rank++ {
		if err := writeReply(conns[rank], cfg.IOTimeout, statusOK, "", addrs); err != nil {
			closeAll()
			return nil, &PeerError{Peer: rank, Op: "handshake", Err: err}
		}
	}
	peers := make([]*peer, cfg.Size)
	for rank := 1; rank < cfg.Size; rank++ {
		peers[rank] = newPeer(rank, conns[rank], cfg.QueueDepth)
	}
	return newTransport(cfg, peers), nil
}

// missingRanks describes which ranks never joined, for the rendezvous
// timeout error.
func missingRanks(conns []net.Conn, size int) string {
	var missing []int
	for rank := 1; rank < size; rank++ {
		if conns[rank] == nil {
			missing = append(missing, rank)
		}
	}
	return fmt.Sprintf("rendezvous (ranks %v never joined)", missing)
}

// dialRetry dials an address with the configured retry/backoff, so the
// N processes of a world may start in any order.
func dialRetry(addr string, cfg Config) (net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < cfg.DialRetries; attempt++ {
		conn, err := net.DialTimeout("tcp", addr, cfg.IOTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(cfg.DialBackoff)
	}
	return nil, fmt.Errorf("%w (after %d attempts, %v apart)", lastErr, cfg.DialRetries, cfg.DialBackoff)
}

// Join is a non-zero rank's side of the bootstrap: dial the rendezvous,
// hello, receive the address book, and complete this rank's slice of
// the mesh (dial every lower rank, accept every higher one).
func Join(cfg Config) (*Transport, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rank == 0 {
		return nil, fmt.Errorf("mpinet: Join is for ranks 1..N-1; rank 0 uses Listen/Accept")
	}
	conn, err := dialRetry(cfg.Addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("mpinet: rank %d: dialing rendezvous %s: %w", cfg.Rank, cfg.Addr, err)
	}
	// The mesh listener binds the interface this rank reached rank 0
	// from, so the advertised address is reachable by the other ranks.
	host, _, err := net.SplitHostPort(conn.LocalAddr().String())
	if err != nil {
		conn.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpinet: rank %d: mesh listen: %w", cfg.Rank, err)
	}
	fail := func(err error) (*Transport, error) {
		conn.Close()
		ln.Close()
		return nil, err
	}
	h := hello{version: ProtocolVersion, rank: cfg.Rank, size: cfg.Size, class: cfg.Class, addr: ln.Addr().String()}
	if err := writeHello(conn, cfg.IOTimeout, h); err != nil {
		return fail(&PeerError{Peer: 0, Op: "handshake", Err: err})
	}
	addrs, err := readReply(conn, cfg.rendezvousTimeout(), cfg.Size)
	if err != nil {
		return fail(err)
	}
	peers := make([]*peer, cfg.Size)
	peers[0] = newPeer(0, conn, cfg.QueueDepth)
	closePeers := func() {
		for _, p := range peers {
			if p != nil {
				p.conn.Close()
			}
		}
	}
	// Dial the mesh listeners of every lower rank.
	for rank := 1; rank < cfg.Rank; rank++ {
		mc, err := dialRetry(addrs[rank], cfg)
		if err != nil {
			closePeers()
			ln.Close()
			return nil, &PeerError{Peer: rank, Op: "mesh dial", Err: err}
		}
		if err := writeHello(mc, cfg.IOTimeout, hello{version: ProtocolVersion, rank: cfg.Rank, size: cfg.Size, class: cfg.Class}); err != nil {
			mc.Close()
			closePeers()
			ln.Close()
			return nil, &PeerError{Peer: rank, Op: "mesh handshake", Err: err}
		}
		peers[rank] = newPeer(rank, mc, cfg.QueueDepth)
	}
	// Accept the dials of every higher rank.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(cfg.rendezvousTimeout()))
	}
	for have := cfg.Rank + 1; have < cfg.Size; have++ {
		mc, err := ln.Accept()
		if err != nil {
			closePeers()
			ln.Close()
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, &TimeoutError{Peer: -1, Op: "mesh accept (higher ranks never dialed)", Wait: cfg.rendezvousTimeout()}
			}
			return nil, fmt.Errorf("mpinet: rank %d: mesh accept: %w", cfg.Rank, err)
		}
		ph, err := readHello(mc, cfg.IOTimeout)
		if err != nil {
			mc.Close()
			closePeers()
			ln.Close()
			return nil, err
		}
		switch {
		case ph.version != ProtocolVersion:
			mc.Close()
			closePeers()
			ln.Close()
			return nil, &VersionError{Want: ProtocolVersion, Got: ph.version}
		case ph.rank <= cfg.Rank || ph.rank >= cfg.Size || ph.size != cfg.Size ||
			(ph.class != cfg.Class && ph.class != 0 && cfg.Class != 0):
			mc.Close()
			closePeers()
			ln.Close()
			return nil, &HandshakeError{Peer: ph.rank, Reason: "inconsistent mesh hello"}
		case peers[ph.rank] != nil:
			mc.Close()
			closePeers()
			ln.Close()
			return nil, &HandshakeError{Peer: ph.rank, Reason: fmt.Sprintf("rank %d dialed twice", ph.rank)}
		}
		peers[ph.rank] = newPeer(ph.rank, mc, cfg.QueueDepth)
	}
	ln.Close()
	return newTransport(cfg, peers), nil
}

// Bootstrap opens one rank's transport: rank 0 listens on cfg.Addr and
// waits for the world, every other rank joins it. The convenience path
// for cmd/mgrank, where the rendezvous address is fixed; tests that
// need an ephemeral port use Listen/Accept + Join directly.
func Bootstrap(cfg Config) (*Transport, error) {
	if cfg.Rank == 0 {
		rz, err := Listen(cfg)
		if err != nil {
			return nil, err
		}
		return rz.Accept()
	}
	return Join(cfg)
}
