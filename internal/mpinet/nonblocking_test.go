package mpinet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mpi"
)

// A bidirectional nonblocking exchange over real sockets: post both
// receives and both sends, then wait. Data round-trips, double Wait is
// idempotent, and the split accounting keeps the blocking API's
// invariants — per-peer blocked time sums to ExchangeNanos and the
// blocked histogram holds one sample per message observed.
func TestRequestTCPRoundTrip(t *testing.T) {
	world := localWorld(t, 2, nil)
	t0, t1 := world[0], world[1]

	r0 := t0.Irecv(1, 5)
	r1 := t1.Irecv(0, 5)
	s0 := t0.Isend(1, 5, []float64{0.5})
	s1 := t1.Isend(0, 5, []float64{1.5})
	d0, err0 := r0.Wait()
	d1, err1 := r1.Wait()
	if err0 != nil || err1 != nil || d0[0] != 1.5 || d1[0] != 0.5 {
		t.Fatalf("exchange = %v,%v / %v,%v", d0, err0, d1, err1)
	}
	if err := mpi.WaitAll(s0, s1); err != nil {
		t.Fatal(err)
	}
	if d, err := r0.Wait(); err != nil || d[0] != 1.5 { // double Wait: same latched result
		t.Fatalf("second Wait = %v, %v", d, err)
	}

	for rank, tr := range world {
		st := tr.Stats()
		if st.Messages != 1 || st.Bytes != 8 || st.WireBytes <= st.Bytes {
			t.Errorf("rank %d counters = %+v (framing must exceed payload)", rank, st)
		}
		if st.BlockedNanos() != st.ExchangeNanos {
			t.Errorf("rank %d per-peer blocked %d != ExchangeNanos %d",
				rank, st.BlockedNanos(), st.ExchangeNanos)
		}
		// One sample for the send's first Wait, one for the receive's —
		// the double Wait above must not have added a third.
		if got := st.BlockedHist.Count(); got != 2 {
			t.Errorf("rank %d blocked-hist samples = %d, want 2", rank, got)
		}
	}
}

// A dropped Isend is still delivered: the frame was handed to the writer
// at post time, and the message counters with it.
func TestRequestTCPDroppedIsendDelivered(t *testing.T) {
	world := localWorld(t, 2, nil)
	world[0].Isend(1, 8, []float64{3, 4}) // never waited
	data, err := world[1].Recv(0, 8)
	if err != nil || len(data) != 2 || data[1] != 4 {
		t.Fatalf("Recv after dropped Isend = %v, %v", data, err)
	}
	st := world[0].Stats()
	if st.Messages != 1 || st.WireBytes == 0 {
		t.Fatalf("dropped Isend undercounted: %+v", st)
	}
	if got := st.BlockedHist.Count(); got != 0 {
		t.Fatalf("dropped Isend charged blocked time: %d samples", got)
	}
}

// A blocking Recv posted behind a still-pending Irecv on the same
// stream must not overtake it: the chain hands the first frame to the
// Irecv and the second to the Recv, which tag-matching would expose
// instantly if the order flipped.
func TestRequestTCPBlockingChainsBehindIrecv(t *testing.T) {
	world := localWorld(t, 2, nil)
	req := world[0].Irecv(1, 1) // inbox empty: pending
	got := make(chan error, 1)
	go func() {
		data, err := world[0].Recv(1, 2) // must chain behind req
		if err == nil && data[0] != 2 {
			err = errors.New("blocking Recv got the Irecv's payload")
		}
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the Recv reach awaitChain
	if err := world[1].Send(0, 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := world[1].Send(0, 2, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if data, err := req.Wait(); err != nil || data[0] != 1 {
		t.Fatalf("Irecv Wait = %v, %v", data, err)
	}
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

// The ISSUE's fault path: an Irecv posted against a rank that dies
// surfaces the typed *PeerDeadError at Wait — within the deadline,
// never a hang — and repeated Waits return the same latched error.
func TestRequestIrecvDeadRankSurfacesAtWait(t *testing.T) {
	tr, raw := rawPeer(t, 5*time.Second)
	req := tr.Irecv(1, 9) // nothing buffered: pending against the wire
	// The peer's death arrives as a relayed abort frame naming the dead
	// rank — the same frame a surviving rank forwards in a larger world.
	if _, err := raw.Write(encodeFrame(1, tagAbort, []float64{1})); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := req.Wait()
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("Wait took %v, want prompt failure (no hang)", elapsed)
	}
	var dead *PeerDeadError
	if !errors.As(err, &dead) {
		t.Fatalf("Wait error %v (%T), want *PeerDeadError", err, err)
	}
	if dead.Peer != 1 {
		t.Errorf("PeerDeadError.Peer = %d, want 1", dead.Peer)
	}
	if _, err2 := req.Wait(); err2 != err {
		t.Errorf("second Wait returned %v, want the latched %v", err2, err)
	}
	// The failure was never observed as a receive: no recv row, no
	// blocked-time sample beyond the Wait's.
	if row := tr.Stats().Peers; len(row) != 0 {
		t.Errorf("failed Irecv recorded traffic rows: %+v", row)
	}
}

// A connection torn down mid-Irecv (socket closed, no abort relay)
// also fails the Wait with a typed connection error, not a hang.
func TestRequestIrecvConnectionLostFailsAtWait(t *testing.T) {
	tr, raw := rawPeer(t, 5*time.Second)
	req := tr.Irecv(1, 9)
	raw.Close()
	start := time.Now()
	_, err := req.Wait()
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("Wait took %v, want prompt failure (no hang)", elapsed)
	}
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait error %v (%T), want *PeerError", err, err)
	}
	if pe.Peer != 1 {
		t.Errorf("PeerError.Peer = %d, want 1", pe.Peer)
	}
}
