package mpinet

import (
	"math"
	"sync"
	"testing"

	"repro/internal/mgmpi"
	"repro/internal/nas"
)

// TestTCPMatchesChannelTransport is the transport differential test:
// the same class-S 4-rank solve run over the in-process channel world
// and over a real TCP mesh must produce bit-identical rnm2 at every
// iteration — the wire format round-trips float64 exactly, and the
// transport must not perturb the algorithm. Message and payload counts
// must match too (the TCP run pays framing on top, which is what
// WireBytes reports).
func TestTCPMatchesChannelTransport(t *testing.T) {
	const ranks = 4
	class := nas.ClassS

	chanSolver := mgmpi.New(class, ranks)
	var chanIters []float64
	chanSolver.IterNorms = func(iter int, rnm2, rnmu float64) {
		chanIters = append(chanIters, rnm2)
	}
	chanRnm2, chanRnmu := chanSolver.Run()

	world := localWorld(t, ranks, nil)
	var tcpIters []float64
	finals := make([][2]float64, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for _, tr := range world {
		wg.Add(1)
		go func(tr *Transport) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("rank %d panicked: %v", tr.Rank(), r)
				}
			}()
			s, err := mgmpi.NewWithTransport(class, tr)
			if err != nil {
				errs[tr.Rank()] = err
				return
			}
			// The IterNorms flag is collective: every rank must enable
			// the intermediate reductions; only rank 0 is called back.
			s.IterNorms = func(iter int, rnm2, rnmu float64) {
				tcpIters = append(tcpIters, rnm2)
			}
			n2, nu := s.RunRank()
			finals[tr.Rank()] = [2]float64{n2, nu}
		}(tr)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}

	if len(tcpIters) != len(chanIters) {
		t.Fatalf("iteration count: TCP reported %d norms, channel %d", len(tcpIters), len(chanIters))
	}
	for i := range chanIters {
		if math.Float64bits(tcpIters[i]) != math.Float64bits(chanIters[i]) {
			t.Errorf("iter %d: rnm2 differs: TCP %x, channel %x", i, tcpIters[i], chanIters[i])
		}
	}
	for rank, f := range finals {
		if math.Float64bits(f[0]) != math.Float64bits(chanRnm2) || math.Float64bits(f[1]) != math.Float64bits(chanRnmu) {
			t.Errorf("rank %d final norms (%x, %x) != channel (%x, %x)", rank, f[0], f[1], chanRnm2, chanRnmu)
		}
	}
	if verified, ok := class.Verify(chanRnm2); !ok || !verified {
		t.Errorf("channel rnm2 %v fails NPB verification", chanRnm2)
	}

	// Communication volume: identical message count and payload bytes;
	// TCP additionally pays exactly frameOverhead per message.
	chanStats := chanSolver.Stats()
	var tcpMsgs, tcpBytes, tcpWire uint64
	for _, tr := range world {
		st := tr.Stats()
		tcpMsgs += st.Messages
		tcpBytes += st.Bytes
		tcpWire += st.WireBytes
	}
	if tcpMsgs != chanStats.Messages {
		t.Errorf("messages: TCP %d, channel %d", tcpMsgs, chanStats.Messages)
	}
	if tcpBytes != chanStats.Bytes {
		t.Errorf("payload bytes: TCP %d, channel %d", tcpBytes, chanStats.Bytes)
	}
	if want := tcpBytes + tcpMsgs*frameOverhead; tcpWire != want {
		t.Errorf("wire bytes: got %d, want payload+framing = %d", tcpWire, want)
	}
}
