package mpinet

import (
	"fmt"
	"time"
)

// The typed failure modes of the TCP transport. Every way a distributed
// solve can go wrong — a peer process dying, a corrupt or truncated
// frame, a protocol mismatch at the handshake, a stalled queue — surfaces
// as one of these within the configured deadline, so a failed run is
// diagnosable (which rank, which tag, what broke) instead of a hang.
// All of them are matchable with errors.As.

// PeerError reports a connection-level failure talking to one peer: the
// socket broke (the peer process likely exited or was killed) or an I/O
// deadline expired mid-operation.
type PeerError struct {
	Peer int    // the rank whose connection failed
	Op   string // "read", "write", "handshake"
	Err  error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("mpinet: connection to rank %d broken (%s): %v", e.Peer, e.Op, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// PeerDeadError reports that a rank is known dead: either its connection
// was lost directly, or another rank relayed an abort naming it.
type PeerDeadError struct {
	Peer int // the dead rank
	Via  int // the rank that relayed the abort; -1 when detected directly
}

func (e *PeerDeadError) Error() string {
	if e.Via < 0 {
		return fmt.Sprintf("mpinet: rank %d is dead (connection lost)", e.Peer)
	}
	return fmt.Sprintf("mpinet: rank %d is dead (abort relayed by rank %d)", e.Peer, e.Via)
}

// FrameError reports a malformed inbound frame: bad magic (the stream
// desynchronized), a torn frame (the peer stalled mid-frame until the
// read deadline), an impossible payload length, or a source rank that
// does not match the connection.
type FrameError struct {
	Peer   int
	Reason string
	Err    error // underlying I/O error, if any
}

func (e *FrameError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("mpinet: bad frame from rank %d: %s: %v", e.Peer, e.Reason, e.Err)
	}
	return fmt.Sprintf("mpinet: bad frame from rank %d: %s", e.Peer, e.Reason)
}

func (e *FrameError) Unwrap() error { return e.Err }

// ChecksumError reports a frame whose payload checksum did not match:
// the bytes were corrupted in flight or the stream is desynchronized.
type ChecksumError struct {
	Peer      int
	Tag       int
	Want, Got uint32
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("mpinet: checksum mismatch on frame from rank %d (tag %d): want %08x, got %08x",
		e.Peer, e.Tag, e.Want, e.Got)
}

// VersionError reports a protocol-version mismatch at the handshake: the
// two processes were built from incompatible revisions of the wire
// format.
type VersionError struct {
	Want, Got uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("mpinet: protocol version mismatch: this side speaks v%d, peer speaks v%d", e.Want, e.Got)
}

// HandshakeError reports a rendezvous or mesh handshake that failed for
// a reason other than the protocol version: wrong magic, a rank id out
// of range or already taken, or disagreement on world size or grid
// class.
type HandshakeError struct {
	Peer   int // the rank that misbehaved; -1 when unknown
	Reason string
}

func (e *HandshakeError) Error() string {
	if e.Peer < 0 {
		return "mpinet: handshake failed: " + e.Reason
	}
	return fmt.Sprintf("mpinet: handshake with rank %d failed: %s", e.Peer, e.Reason)
}

// TimeoutError reports an operation that exceeded its deadline: a Recv
// with no matching message, a Send blocked on a full writer queue, or a
// rendezvous still waiting for ranks to join.
type TimeoutError struct {
	Peer int // the rank being waited on; -1 for the whole world
	Tag  int
	Op   string
	Wait time.Duration
}

func (e *TimeoutError) Error() string {
	if e.Peer < 0 {
		return fmt.Sprintf("mpinet: %s timed out after %v", e.Op, e.Wait)
	}
	return fmt.Sprintf("mpinet: %s for rank %d (tag %d) timed out after %v — dead or deadlocked peer",
		e.Op, e.Peer, e.Tag, e.Wait)
}
