package mpinet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

// localWorld bootstraps a size-rank world over loopback, one transport
// per rank, all in this process. mut (optional) tweaks each rank's
// config before bootstrap.
func localWorld(t *testing.T, size int, mut func(rank int, cfg *Config)) []*Transport {
	t.Helper()
	base := Config{
		Size:        size,
		Addr:        "127.0.0.1:0",
		Class:       'S',
		DialRetries: 20,
		DialBackoff: 20 * time.Millisecond,
		IOTimeout:   10 * time.Second,
	}
	cfg0 := base
	cfg0.Rank = 0
	if mut != nil {
		mut(0, &cfg0)
	}
	rz, err := Listen(cfg0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := rz.Addr()

	transports := make([]*Transport, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	wg.Add(size)
	go func() {
		defer wg.Done()
		transports[0], errs[0] = rz.Accept()
	}()
	for rank := 1; rank < size; rank++ {
		go func(rank int) {
			defer wg.Done()
			cfg := base
			cfg.Rank = rank
			cfg.Addr = addr
			if mut != nil {
				mut(rank, &cfg)
			}
			transports[rank], errs[rank] = Join(cfg)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("bootstrap rank %d: %v", rank, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range transports {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return transports
}

func TestBootstrapSingleRank(t *testing.T) {
	world := localWorld(t, 1, nil)
	if world[0].Rank() != 0 || world[0].Size() != 1 {
		t.Fatalf("rank/size = %d/%d", world[0].Rank(), world[0].Size())
	}
}

func TestMeshExchange(t *testing.T) {
	const size = 4
	world := localWorld(t, size, nil)
	var wg sync.WaitGroup
	errCh := make(chan error, size)
	for _, tr := range world {
		wg.Add(1)
		go func(tr *Transport) {
			defer wg.Done()
			me := tr.Rank()
			// Everyone sends to everyone (tag encodes the pair), then
			// receives in rank order — per-pair FIFO plus (source, tag)
			// matching makes this deterministic.
			for dst := 0; dst < size; dst++ {
				if dst == me {
					continue
				}
				payload := []float64{float64(me), float64(dst), 3.25}
				if err := tr.Send(dst, 100*me+dst, payload); err != nil {
					errCh <- fmt.Errorf("rank %d send to %d: %w", me, dst, err)
					return
				}
			}
			for src := 0; src < size; src++ {
				if src == me {
					continue
				}
				got, err := tr.Recv(src, 100*src+me)
				if err != nil {
					errCh <- fmt.Errorf("rank %d recv from %d: %w", me, src, err)
					return
				}
				if len(got) != 3 || got[0] != float64(src) || got[1] != float64(me) || got[2] != 3.25 {
					errCh <- fmt.Errorf("rank %d: bad payload from %d: %v", me, src, got)
					return
				}
			}
		}(tr)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := world[0].Stats()
	wantMsgs := uint64(size - 1) // Messages counts sends, matching the channel transport
	if st.Messages != wantMsgs {
		t.Errorf("rank 0 Messages = %d, want %d", st.Messages, wantMsgs)
	}
	wantBytes := uint64((size - 1) * 3 * 8)
	if st.Bytes != wantBytes {
		t.Errorf("rank 0 Bytes = %d, want %d", st.Bytes, wantBytes)
	}
	wantWire := wantBytes + uint64(size-1)*frameOverhead
	if st.WireBytes != wantWire {
		t.Errorf("rank 0 WireBytes = %d, want %d", st.WireBytes, wantWire)
	}
	if st.ExchangeNanos <= 0 {
		t.Errorf("rank 0 ExchangeNanos = %d, want > 0", st.ExchangeNanos)
	}
}

// TestPeerStatsOverTCP checks that the TCP transport's per-(peer, tag)
// rows agree with the aggregate counters, and that the per-peer blocked
// time sums exactly to ExchangeNanos (mpinet counts full call durations
// on both views, so the equality is exact).
func TestPeerStatsOverTCP(t *testing.T) {
	const size = 3
	world := localWorld(t, size, nil)
	var wg sync.WaitGroup
	for _, tr := range world {
		wg.Add(1)
		go func(tr *Transport) {
			defer wg.Done()
			me := tr.Rank()
			for dst := 0; dst < size; dst++ {
				if dst != me {
					tr.Send(dst, 7, make([]float64, 16))
				}
			}
			for src := 0; src < size; src++ {
				if src != me {
					tr.Recv(src, 7)
				}
			}
		}(tr)
	}
	wg.Wait()
	for rank, tr := range world {
		st := tr.Stats()
		if len(st.Peers) != size-1 {
			t.Fatalf("rank %d: %d peer rows, want %d: %+v", rank, len(st.Peers), size-1, st.Peers)
		}
		var sent, recv uint64
		for _, p := range st.Peers {
			if p.Tag != 7 {
				t.Errorf("rank %d: unexpected tag %d", rank, p.Tag)
			}
			sent += p.SentMsgs
			recv += p.RecvMsgs
			if p.SentBytes != 16*8 || p.RecvBytes != 16*8 {
				t.Errorf("rank %d peer %d: bytes %d/%d, want 128/128", rank, p.Peer, p.SentBytes, p.RecvBytes)
			}
		}
		if sent != st.Messages || recv != st.Messages {
			t.Errorf("rank %d: per-peer sent/recv %d/%d != Messages %d", rank, sent, recv, st.Messages)
		}
		if got := st.BlockedNanos(); got != st.ExchangeNanos {
			t.Errorf("rank %d: per-peer blocked %d != ExchangeNanos %d", rank, got, st.ExchangeNanos)
		}
		if st.BlockedHist.Count() != 2*(size-1) {
			t.Errorf("rank %d: blocked hist count %d, want %d", rank, st.BlockedHist.Count(), 2*(size-1))
		}
		if st.QueueDepthHist.Count() != size-1 {
			t.Errorf("rank %d: depth hist count %d, want %d", rank, st.QueueDepthHist.Count(), size-1)
		}
	}
}

// TestConcurrentExchange is the -race target: every rank runs two
// goroutines concurrently pushing traffic around the ring in opposite
// directions on distinct tags, exercising the per-peer writer and
// reader loops under contention.
func TestConcurrentExchange(t *testing.T) {
	const size = 4
	const rounds = 50
	world := localWorld(t, size, nil)
	var wg sync.WaitGroup
	errCh := make(chan error, 2*size)
	for _, tr := range world {
		me := tr.Rank()
		right := (me + 1) % size
		left := (me + size - 1) % size
		run := func(sendTo, recvFrom, tag int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				out := []float64{float64(me), float64(i)}
				if err := tr.Send(sendTo, tag, out); err != nil {
					errCh <- fmt.Errorf("rank %d send (tag %d, round %d): %w", me, tag, i, err)
					return
				}
				in, err := tr.Recv(recvFrom, tag)
				if err != nil {
					errCh <- fmt.Errorf("rank %d recv (tag %d, round %d): %w", me, tag, i, err)
					return
				}
				if len(in) != 2 || in[0] != float64(recvFrom) || in[1] != float64(i) {
					errCh <- fmt.Errorf("rank %d tag %d round %d: bad payload %v", me, tag, i, in)
					return
				}
			}
		}
		wg.Add(2)
		go run(right, left, 7)  // clockwise ring
		go run(left, right, 11) // counter-clockwise ring
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestTagMatching checks that a Recv for a specific (source, tag) pair
// is satisfied even when a different tag from the same source arrives
// first — and that the mismatch is reported, since the MG solver's
// communication pattern never actually reorders tags per pair.
func TestTagMatching(t *testing.T) {
	world := localWorld(t, 2, nil)
	done := make(chan error, 1)
	go func() {
		if err := world[1].Send(0, 5, []float64{1}); err != nil {
			done <- err
			return
		}
		done <- world[1].Send(0, 6, []float64{2})
	}()
	if _, err := world[0].Recv(1, 6); err == nil {
		t.Fatal("Recv(tag 6) matched a tag-5 frame without error")
	}
	if err := <-done; err != nil {
		t.Fatalf("sender: %v", err)
	}
}

// TestCommOverTCP runs mpi.Comm collectives over the TCP transport —
// the same veneer the solver uses.
func TestCommOverTCP(t *testing.T) {
	const size = 4
	world := localWorld(t, size, nil)
	var wg sync.WaitGroup
	results := make([]float64, size)
	for _, tr := range world {
		wg.Add(1)
		go func(tr *Transport) {
			defer wg.Done()
			c := mpi.NewComm(tr)
			results[c.Rank()] = c.AllReduceSum(3, float64(c.Rank()+1))
		}(tr)
	}
	wg.Wait()
	for rank, got := range results {
		if got != 10 { // 1+2+3+4
			t.Errorf("rank %d: AllReduceSum = %v, want 10", rank, got)
		}
	}
}
