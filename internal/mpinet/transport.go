// Package mpinet is the real-network counterpart of the in-process
// channel runtime in internal/mpi: an implementation of mpi.Transport
// over TCP sockets, for runs where every rank is its own OS process
// (cmd/mgrank). Where the channel world measures communication
// *structure*, this transport pays the actual costs — serialization,
// framing, checksums, kernel round-trips — and reports them (wire bytes
// and exchange wall-time) through the extended mpi.Stats.
//
// Topology: a full mesh. Rank 0 listens on a well-known address; ranks
// 1..N-1 dial it (with retry/backoff, so processes may start in any
// order) and exchange a handshake carrying rank id, world size, grid
// class and protocol version, plus the address of their own mesh
// listener. Once everyone has joined, rank 0 distributes the address
// book and each pair of ranks establishes one TCP connection (the higher
// rank dials the lower; connections to rank 0 reuse the rendezvous
// sockets). Every connection then gets a reader goroutine and a writer
// goroutine with a bounded outgoing queue — Send enqueues a frame and
// blocks only when the queue is full (backpressure), Recv pops from the
// per-peer inbox.
//
// Failure is loud by construction: read/write deadlines bound every
// wire operation, a Recv waits at most the configured IOTimeout, and the
// first failure closes the transport, propagates a typed error (see
// errors.go) to every blocked call, and relays an abort frame naming the
// dead rank to all surviving peers — so killing one rank fails the whole
// world within the deadline, with the culprit named, instead of hanging.
package mpinet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi"
)

// Config describes one rank's slot in a TCP world.
type Config struct {
	// Rank is this process's rank, 0 <= Rank < Size.
	Rank int
	// Size is the world size.
	Size int
	// Addr is the rendezvous address: the address rank 0 listens on,
	// and the address every other rank dials.
	Addr string
	// Class is the NPB grid class the world will solve (e.g. 'S'); the
	// handshake rejects a joiner solving a different problem. Zero
	// disables the check.
	Class byte
	// DialRetries is how many times a joiner re-dials the rendezvous
	// (and mesh peers) before giving up. Default 60.
	DialRetries int
	// DialBackoff is the pause between dial attempts. Default 250ms.
	DialBackoff time.Duration
	// IOTimeout bounds every wire operation: frame reads and writes, a
	// Recv with no matching message, a Send on a full writer queue.
	// Default 30s.
	IOTimeout time.Duration
	// QueueDepth bounds each peer's outgoing writer queue (frames), the
	// backpressure window. Default 16.
	QueueDepth int
}

// withDefaults fills unset tunables.
func (c Config) withDefaults() Config {
	if c.DialRetries <= 0 {
		c.DialRetries = 60
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 250 * time.Millisecond
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 30 * time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	return c
}

// rendezvousTimeout bounds the whole bootstrap: every rank must have
// joined and the directory must be distributed within it.
func (c Config) rendezvousTimeout() time.Duration {
	return c.IOTimeout + time.Duration(c.DialRetries)*c.DialBackoff
}

func (c Config) validate() error {
	if c.Size < 1 {
		return fmt.Errorf("mpinet: invalid world size %d", c.Size)
	}
	if c.Rank < 0 || c.Rank >= c.Size {
		return fmt.Errorf("mpinet: rank %d outside world of size %d", c.Rank, c.Size)
	}
	if c.Addr == "" {
		return errors.New("mpinet: no rendezvous address")
	}
	return nil
}

// inboxDepth bounds buffered inbound messages per peer; beyond it the
// reader goroutine stops draining the socket and TCP flow control
// pushes back on the sender.
const inboxDepth = 64

// peer is one established connection: a writer goroutine draining a
// bounded queue, and a reader goroutine filling a bounded inbox.
type peer struct {
	rank  int
	conn  net.Conn
	out   chan []byte // encoded frames awaiting the writer
	inbox chan inMsg  // decoded messages awaiting Recv
}

type inMsg struct {
	tag  int
	data []float64
}

// Transport is one rank's end of a TCP world. It implements
// mpi.Transport; wrap it in mpi.NewComm for the collective API, or hand
// it to mgmpi.NewWithTransport to run the solver on it.
type Transport struct {
	cfg   Config
	rank  int
	size  int
	peers []*peer // indexed by rank; peers[rank] is nil

	failed    chan struct{} // closed on first failure; failErr is set before
	closed    chan struct{} // closed by Close
	failErr   error
	failOnce  sync.Once
	closeOnce sync.Once
	readWg    sync.WaitGroup
	writeWg   sync.WaitGroup

	msgs, payloadBytes, wireBytes atomic.Uint64
	exchangeNanos                 atomic.Int64
	rec                           mpi.CommRecorder

	sendChain mpi.OpChain // per-dst FIFO of in-flight nonblocking sends
	recvChain mpi.OpChain // per-src FIFO of in-flight nonblocking receives
}

var _ mpi.Transport = (*Transport)(nil)

// newTransport wires up the goroutines over an established mesh.
func newTransport(cfg Config, peers []*peer) *Transport {
	t := &Transport{
		cfg:    cfg,
		rank:   cfg.Rank,
		size:   cfg.Size,
		peers:  peers,
		failed: make(chan struct{}),
		closed: make(chan struct{}),
	}
	for _, p := range peers {
		if p == nil {
			continue
		}
		t.readWg.Add(1)
		t.writeWg.Add(1)
		go t.readLoop(p)
		go t.writeLoop(p)
	}
	return t
}

// Rank returns this process's rank.
func (t *Transport) Rank() int { return t.rank }

// Size returns the world size.
func (t *Transport) Size() int { return t.size }

// Err returns the failure that broke the transport, or nil.
func (t *Transport) Err() error {
	select {
	case <-t.failed:
		return t.failErr
	default:
		return nil
	}
}

// Stats snapshots this rank's traffic counters: message and payload
// counts like the channel runtime, plus the wire volume (payload +
// framing), the wall time spent inside Send/Recv, and the per-(peer,
// tag) rows with blocked-time and queue-depth histograms. Safe to call
// concurrently with a solve (the Prometheus endpoint scrapes it live).
func (t *Transport) Stats() mpi.Stats {
	s := mpi.Stats{
		Messages:      t.msgs.Load(),
		Bytes:         t.payloadBytes.Load(),
		WireBytes:     t.wireBytes.Load(),
		ExchangeNanos: t.exchangeNanos.Load(),
	}
	t.rec.SnapshotInto(&s)
	return s
}

// awaitChain blocks until a still-in-flight nonblocking predecessor on
// the same stream completes, so a blocking call posted after an Isend or
// Irecv cannot overtake it (per-pair FIFO holds across both APIs). The
// time spent here falls inside the blocking call's own elapsed window,
// so it is accounted exactly like any other wait.
func (t *Transport) awaitChain(prev *mpi.AsyncRequest, peer, tag int, op string) error {
	if prev == nil {
		return nil
	}
	timer := time.NewTimer(t.cfg.IOTimeout)
	defer timer.Stop()
	select {
	case <-prev.Done():
		return nil
	case <-t.failed:
		return t.failErr
	case <-t.closed:
		return net.ErrClosed
	case <-timer.C:
		return &TimeoutError{Peer: peer, Tag: tag, Op: op, Wait: t.cfg.IOTimeout}
	}
}

// Send frames data and enqueues it on dst's writer. It blocks only when
// the bounded queue is full (backpressure), and at most IOTimeout.
func (t *Transport) Send(dst, tag int, data []float64) error {
	if dst < 0 || dst >= t.size || dst == t.rank {
		return fmt.Errorf("invalid destination rank %d (world size %d, self %d)", dst, t.size, t.rank)
	}
	start := time.Now()
	if err := t.awaitChain(t.sendChain.Pending(dst), dst, tag, "Send (pending Isend)"); err != nil {
		return err
	}
	frame := encodeFrame(t.rank, tag, data)
	p := t.peers[dst]
	depth := len(p.out)
	select {
	case p.out <- frame:
	default:
		timer := time.NewTimer(t.cfg.IOTimeout)
		defer timer.Stop()
		select {
		case p.out <- frame:
		case <-t.failed:
			return t.failErr
		case <-t.closed:
			return net.ErrClosed
		case <-timer.C:
			return &TimeoutError{Peer: dst, Tag: tag, Op: "Send (writer queue full)", Wait: t.cfg.IOTimeout}
		}
	}
	elapsed := int64(time.Since(start))
	t.msgs.Add(1)
	t.payloadBytes.Add(uint64(8 * len(data)))
	t.wireBytes.Add(uint64(len(frame)))
	t.exchangeNanos.Add(elapsed)
	t.rec.RecordSend(dst, tag, uint64(8*len(data)), elapsed, depth)
	return nil
}

// Recv blocks for the next message from src, at most IOTimeout, and
// checks its tag (per-connection FIFO makes a mismatch a protocol
// error).
func (t *Transport) Recv(src, tag int) ([]float64, error) {
	if src < 0 || src >= t.size || src == t.rank {
		return nil, fmt.Errorf("invalid source rank %d (world size %d, self %d)", src, t.size, t.rank)
	}
	start := time.Now()
	if err := t.awaitChain(t.recvChain.Pending(src), src, tag, "Recv (pending Irecv)"); err != nil {
		return nil, err
	}
	p := t.peers[src]
	var m inMsg
	select {
	case m = <-p.inbox:
	default:
		timer := time.NewTimer(t.cfg.IOTimeout)
		defer timer.Stop()
		select {
		case m = <-p.inbox:
		case <-t.failed:
			// The world failed, but this message may have been delivered
			// just before — prefer handing it over (the peer's final
			// send races its own teardown).
			select {
			case m = <-p.inbox:
			default:
				return nil, t.failErr
			}
		case <-t.closed:
			return nil, net.ErrClosed
		case <-timer.C:
			return nil, &TimeoutError{Peer: src, Tag: tag, Op: "Recv", Wait: t.cfg.IOTimeout}
		}
	}
	if m.tag != tag {
		return nil, fmt.Errorf("expected tag %d from rank %d, got tag %d", tag, src, m.tag)
	}
	elapsed := int64(time.Since(start))
	t.exchangeNanos.Add(elapsed)
	t.rec.RecordRecv(src, tag, uint64(8*len(m.data)), elapsed)
	return m.data, nil
}

// Isend frames data at post time and hands it to dst's writer without
// blocking: the per-peer writer queue is already asynchronous under the
// hood, so the fast path is one non-blocking channel send. Message, byte
// and wire counters are recorded here — the frame is in flight whether or
// not the Request is ever waited — while blocked time (a full writer
// queue, or a transport failure) is charged to the first Wait. A dead
// peer therefore surfaces as the typed error (PeerDeadError et al.) at
// Wait, never as a hang.
func (t *Transport) Isend(dst, tag int, data []float64) mpi.Request {
	if dst < 0 || dst >= t.size || dst == t.rank {
		return mpi.CompletedRequest(nil, fmt.Errorf("invalid destination rank %d (world size %d, self %d)", dst, t.size, t.rank))
	}
	frame := encodeFrame(t.rank, tag, data)
	p := t.peers[dst]
	depth := len(p.out)
	t.msgs.Add(1)
	t.payloadBytes.Add(uint64(8 * len(data)))
	t.wireBytes.Add(uint64(len(frame)))
	t.rec.RecordSendPosted(dst, tag, uint64(8*len(data)), depth)
	req := mpi.NewRequest(func(blocked int64, _ []float64, _ error) {
		t.exchangeNanos.Add(blocked)
		t.rec.RecordSendWait(dst, tag, blocked)
	})
	prev := t.sendChain.Push(dst, req)
	if prev == nil {
		select {
		case p.out <- frame:
			req.Complete(nil, nil)
			return req
		default:
		}
	}
	go t.finishIsend(req, prev, p, dst, tag, frame)
	return req
}

// finishIsend completes a slow-path Isend: after the chained predecessor
// (if any), enqueue under the same failure/timeout watches blocking Send
// has.
func (t *Transport) finishIsend(req, prev *mpi.AsyncRequest, p *peer, dst, tag int, frame []byte) {
	timer := time.NewTimer(t.cfg.IOTimeout)
	defer timer.Stop()
	if prev != nil {
		select {
		case <-prev.Done():
		case <-t.failed:
			req.Complete(nil, t.failErr)
			return
		case <-t.closed:
			req.Complete(nil, net.ErrClosed)
			return
		case <-timer.C:
			req.Complete(nil, &TimeoutError{Peer: dst, Tag: tag, Op: "Isend (writer queue full)", Wait: t.cfg.IOTimeout})
			return
		}
	}
	select {
	case p.out <- frame:
		req.Complete(nil, nil)
	case <-t.failed:
		req.Complete(nil, t.failErr)
	case <-t.closed:
		req.Complete(nil, net.ErrClosed)
	case <-timer.C:
		req.Complete(nil, &TimeoutError{Peer: dst, Tag: tag, Op: "Isend (writer queue full)", Wait: t.cfg.IOTimeout})
	}
}

// Irecv posts a receive against src's reader inbox. Nothing is recorded
// at post time; the receive row and blocked time are recorded by the
// first Wait — a dropped Request consumes its message in the background
// but was never observed by the caller.
func (t *Transport) Irecv(src, tag int) mpi.Request {
	if src < 0 || src >= t.size || src == t.rank {
		return mpi.CompletedRequest(nil, fmt.Errorf("invalid source rank %d (world size %d, self %d)", src, t.size, t.rank))
	}
	p := t.peers[src]
	req := mpi.NewRequest(func(blocked int64, data []float64, err error) {
		t.exchangeNanos.Add(blocked)
		if err == nil {
			t.rec.RecordRecv(src, tag, uint64(8*len(data)), blocked)
		}
	})
	prev := t.recvChain.Push(src, req)
	if prev == nil {
		select {
		case m := <-p.inbox:
			req.Complete(t.checkTag(m, src, tag))
			return req
		default:
		}
	}
	go t.finishIrecv(req, prev, p, src, tag)
	return req
}

// finishIrecv completes a slow-path Irecv after its chained predecessor,
// with the same delivered-just-before-failure drain nicety blocking Recv
// has.
func (t *Transport) finishIrecv(req, prev *mpi.AsyncRequest, p *peer, src, tag int) {
	timer := time.NewTimer(t.cfg.IOTimeout)
	defer timer.Stop()
	if prev != nil {
		select {
		case <-prev.Done():
		case <-t.failed:
			req.Complete(nil, t.failErr)
			return
		case <-t.closed:
			req.Complete(nil, net.ErrClosed)
			return
		case <-timer.C:
			req.Complete(nil, &TimeoutError{Peer: src, Tag: tag, Op: "Irecv", Wait: t.cfg.IOTimeout})
			return
		}
	}
	select {
	case m := <-p.inbox:
		req.Complete(t.checkTag(m, src, tag))
	case <-t.failed:
		select {
		case m := <-p.inbox:
			req.Complete(t.checkTag(m, src, tag))
		default:
			req.Complete(nil, t.failErr)
		}
	case <-t.closed:
		req.Complete(nil, net.ErrClosed)
	case <-timer.C:
		req.Complete(nil, &TimeoutError{Peer: src, Tag: tag, Op: "Irecv", Wait: t.cfg.IOTimeout})
	}
}

// checkTag validates a popped message against the posted receive's tag.
func (t *Transport) checkTag(m inMsg, src, tag int) ([]float64, error) {
	if m.tag != tag {
		return nil, fmt.Errorf("expected tag %d from rank %d, got tag %d", tag, src, m.tag)
	}
	return m.data, nil
}

// Close tears the mesh down: the writers flush whatever is still
// queued (so a final broadcast enqueued just before Close reaches the
// wire before the process exits), then the sockets close, the readers
// exit, and blocked calls unblock. Safe to call more than once.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		// Announce the clean departure so peers still mid-solve don't
		// mistake the coming EOF for a death (best-effort: a full queue
		// at shutdown is already abnormal).
		goodbye := encodeFrame(t.rank, tagGoodbye, nil)
		for _, p := range t.peers {
			if p != nil {
				select {
				case p.out <- goodbye:
				default:
				}
			}
		}
		close(t.closed)
		t.writeWg.Wait()
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		t.readWg.Wait()
	})
	return nil
}

// isShutdown reports whether Close was called (so conn errors during
// teardown are expected, not failures).
func (t *Transport) isShutdown() bool {
	select {
	case <-t.closed:
		return true
	default:
		return false
	}
}

// fail records the first failure, unblocks every pending call, and
// relays a best-effort abort frame naming the dead rank to all peers so
// the rest of the world fails with the culprit's name instead of a
// cascade of secondary timeouts.
func (t *Transport) fail(err error) {
	t.failOnce.Do(func() {
		t.failErr = err
		culprit := -1
		var dead *PeerDeadError
		var pe *PeerError
		var fe *FrameError
		var ce *ChecksumError
		switch {
		case errors.As(err, &dead):
			culprit = dead.Peer
		case errors.As(err, &pe):
			culprit = pe.Peer
		case errors.As(err, &fe):
			culprit = fe.Peer
		case errors.As(err, &ce):
			culprit = ce.Peer
		}
		if culprit >= 0 {
			abort := encodeFrame(t.rank, tagAbort, []float64{float64(culprit)})
			for _, p := range t.peers {
				if p != nil && p.rank != culprit {
					select {
					case p.out <- abort:
					default: // full queue: the peer will find out the hard way
					}
				}
			}
		}
		close(t.failed)
	})
}

// writeLoop drains one peer's queue onto the socket under a write
// deadline. It keeps running after a failure (to flush the abort frame)
// and exits on Close or a broken socket.
func (t *Transport) writeLoop(p *peer) {
	defer t.writeWg.Done()
	write := func(frame []byte) bool {
		p.conn.SetWriteDeadline(time.Now().Add(t.cfg.IOTimeout))
		if _, err := p.conn.Write(frame); err != nil {
			if !t.isShutdown() {
				t.fail(&PeerError{Peer: p.rank, Op: "write", Err: err})
			}
			return false
		}
		return true
	}
	for {
		select {
		case frame := <-p.out:
			if !write(frame) {
				return
			}
		case <-t.closed:
			// Flush the remaining queue before Close drops the socket.
			for {
				select {
				case frame := <-p.out:
					if !write(frame) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// readLoop decodes frames off one peer's socket into its inbox. The
// blocking read for the next frame's first byte carries no deadline (a
// rank legitimately receives nothing while it computes); once a frame
// has started, the rest of it must arrive within IOTimeout or it is a
// torn frame.
func (t *Transport) readLoop(p *peer) {
	defer t.readWg.Done()
	br := bufio.NewReaderSize(p.conn, 1<<16)
	hdr := make([]byte, headerLen)
	for {
		p.conn.SetReadDeadline(time.Time{})
		b0, err := br.ReadByte()
		if err != nil {
			if !t.isShutdown() {
				t.fail(&PeerError{Peer: p.rank, Op: "read", Err: err})
			}
			return
		}
		p.conn.SetReadDeadline(time.Now().Add(t.cfg.IOTimeout))
		hdr[0] = b0
		if _, err := io.ReadFull(br, hdr[1:]); err != nil {
			t.failRead(p, &FrameError{Peer: p.rank, Reason: "torn frame header", Err: err})
			return
		}
		h := decodeHeader(hdr)
		switch {
		case h.magic != frameMagic:
			t.failRead(p, &FrameError{Peer: p.rank, Reason: fmt.Sprintf("bad magic %08x (stream desynchronized)", h.magic)})
			return
		case h.src != p.rank:
			t.failRead(p, &FrameError{Peer: p.rank, Reason: fmt.Sprintf("frame claims source rank %d on the rank-%d connection", h.src, p.rank)})
			return
		case h.count < 0 || h.count > maxFrameFloats:
			t.failRead(p, &FrameError{Peer: p.rank, Reason: fmt.Sprintf("implausible payload length %d floats", h.count)})
			return
		}
		body := make([]byte, 8*h.count+checksumLen)
		if _, err := io.ReadFull(br, body); err != nil {
			t.failRead(p, &FrameError{Peer: p.rank, Reason: "torn frame payload", Err: err})
			return
		}
		sum := crc32Frame(hdr, body[:len(body)-checksumLen])
		if want := leU32(body[len(body)-checksumLen:]); sum != want {
			t.failRead(p, &ChecksumError{Peer: p.rank, Tag: h.tag, Want: want, Got: sum})
			return
		}
		data := decodeFloats(body[: len(body)-checksumLen : len(body)-checksumLen])
		if h.tag == tagGoodbye {
			// The peer finished and is closing; its EOF is expected.
			return
		}
		if h.tag == tagAbort {
			culprit := -1
			if len(data) == 1 {
				culprit = int(data[0])
			}
			t.fail(&PeerDeadError{Peer: culprit, Via: p.rank})
			return
		}
		select {
		case p.inbox <- inMsg{tag: h.tag, data: data}:
		case <-t.closed:
			return
		case <-t.failed:
			return
		}
	}
}

// failRead reports a read-side failure unless the transport is shutting
// down (teardown makes socket errors expected).
func (t *Transport) failRead(p *peer, err error) {
	if !t.isShutdown() {
		t.fail(err)
	}
}
