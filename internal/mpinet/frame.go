package mpinet

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// The wire format. Every message travels as one length-prefixed binary
// frame, little-endian throughout:
//
//	offset  size  field
//	0       4     magic 0x4d47464d ("MGFM")
//	4       4     source rank (uint32)
//	8       4     tag (int32)
//	12      4     payload length, in float64 values (uint32)
//	16      8·n   payload, little-endian IEEE-754 float64
//	16+8·n  4     CRC-32 (IEEE) over bytes [0, 16+8·n)
//
// The checksum covers header and payload, so a desynchronized stream is
// caught either by the magic (wrong framing) or the CRC (right framing,
// wrong bytes). float64 values round-trip through math.Float64bits, so a
// TCP run is bit-identical to an in-process run — the property the
// differential transport test pins.
const (
	// ProtocolVersion is carried in every handshake; both sides must
	// match exactly.
	ProtocolVersion uint16 = 1

	frameMagic uint32 = 0x4d47464d // "MGFM"
	helloMagic uint32 = 0x4d47484c // "MGHL"

	headerLen     = 16
	checksumLen   = 4
	frameOverhead = headerLen + checksumLen

	// maxFrameFloats bounds a single frame's payload (1 GiB of floats).
	// The largest legitimate message is a scatter of one rank's finest
	// sub-box; anything bigger is a corrupt length field, and rejecting
	// it keeps a desynchronized stream from demanding absurd
	// allocations.
	maxFrameFloats = 1 << 27

	// tagAbort is the transport-internal control tag that relays a
	// world abort: its one-float payload names the rank known dead.
	// Application tags are conventionally small non-negative ints and
	// Comm's internal collectives use small negatives, so the extreme
	// values cannot collide.
	tagAbort = math.MinInt32
	// tagGoodbye announces a clean departure (Close after a completed
	// solve): the EOF that follows on this connection is not a death.
	// Ranks finish at different moments, so without it the first rank
	// to exit would be reported dead by every survivor.
	tagGoodbye = math.MinInt32 + 1
)

// encodeFrame marshals one message into a wire frame.
func encodeFrame(src int, tag int, data []float64) []byte {
	buf := make([]byte, headerLen+8*len(data)+checksumLen)
	binary.LittleEndian.PutUint32(buf[0:], frameMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(src))
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(data)))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[headerLen+8*i:], math.Float64bits(v))
	}
	sum := crc32.ChecksumIEEE(buf[:len(buf)-checksumLen])
	binary.LittleEndian.PutUint32(buf[len(buf)-checksumLen:], sum)
	return buf
}

// frameHeader is the decoded fixed-size prefix of a frame.
type frameHeader struct {
	magic uint32
	src   int
	tag   int
	count int
}

func decodeHeader(b []byte) frameHeader {
	return frameHeader{
		magic: binary.LittleEndian.Uint32(b[0:]),
		src:   int(binary.LittleEndian.Uint32(b[4:])),
		tag:   int(int32(binary.LittleEndian.Uint32(b[8:]))),
		count: int(binary.LittleEndian.Uint32(b[12:])),
	}
}

// crc32Frame computes the frame checksum over header and payload.
func crc32Frame(hdr, payload []byte) uint32 {
	sum := crc32.ChecksumIEEE(hdr)
	return crc32.Update(sum, crc32.IEEETable, payload)
}

// leU32 reads one little-endian uint32.
func leU32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// decodeFloats unmarshals a little-endian float64 payload.
func decodeFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
