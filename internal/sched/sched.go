// Package sched is the shared-memory parallel runtime underneath the
// WITH-loop engine — the Go counterpart of SAC's implicit multithreading
// backend (Grelck, IFL'98/PhD'01), which the paper uses to parallelize the
// MG benchmark "without any additional programming effort".
//
// The runtime owns a pool of persistent worker goroutines and partitions
// one-dimensional iteration spaces across them under one of four scheduling
// policies (static block, static cyclic, dynamic self-scheduling, guided).
// The calling goroutine always participates as worker 0, so a pool of W
// workers uses W goroutines total, not W+1.
//
// Determinism contract: a For body only ever writes to positions derived
// from its own sub-range, and Reduce combines per-block partial results in
// block order. Consequently every computation in this repository produces
// bit-identical results for any worker count and any policy — a property
// the test suite checks and the MG cross-implementation verification relies
// on.
//
// Sequential threshold: SAC's runtime executes WITH-loops over small index
// spaces sequentially because fork/join overhead would dominate (the paper
// discusses exactly this effect on the coarse V-cycle grids). For mirrors
// that with ForOptions.SeqThreshold.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Policy selects how an iteration space is partitioned across workers.
type Policy int

const (
	// StaticBlock gives each worker one contiguous block of roughly n/W
	// iterations. Lowest overhead; the default, and what SAC's compiler
	// generates for uniform WITH-loops.
	StaticBlock Policy = iota
	// StaticCyclic deals fixed-size chunks round-robin to the workers.
	// Balances loops whose per-iteration cost varies periodically.
	StaticCyclic
	// Dynamic lets workers grab fixed-size chunks from a shared counter
	// (self-scheduling). Balances irregular loops at the cost of one
	// atomic operation per chunk.
	Dynamic
	// Guided is Dynamic with geometrically shrinking chunks, in the style
	// of OpenMP schedule(guided).
	Guided
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case StaticBlock:
		return "static-block"
	case StaticCyclic:
		return "static-cyclic"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists every scheduling policy, in declaration order.
func Policies() []Policy {
	return []Policy{StaticBlock, StaticCyclic, Dynamic, Guided}
}

// ParsePolicy resolves a policy name as produced by String.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q", name)
}

// MarshalText encodes the policy as its name, so tuning plans serialize
// readably ("dynamic" instead of 2).
func (p Policy) MarshalText() ([]byte, error) {
	if p < StaticBlock || p > Guided {
		return nil, fmt.Errorf("sched: cannot marshal %v", p)
	}
	return []byte(p.String()), nil
}

// UnmarshalText decodes a policy name.
func (p *Policy) UnmarshalText(text []byte) error {
	v, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// ForOptions tunes one parallel loop execution.
type ForOptions struct {
	// Policy is the partitioning strategy. Zero value is StaticBlock.
	Policy Policy
	// Chunk is the chunk size for StaticCyclic and Dynamic and the minimum
	// chunk for Guided. 0 means a policy-specific default.
	Chunk int
	// SeqThreshold executes the loop inline on the caller when the
	// iteration count is at or below it. 0 means "always parallelize"
	// (when the pool has more than one worker).
	SeqThreshold int
}

// Pool is a set of persistent worker goroutines. A Pool with one worker
// executes everything inline on the caller; that is the natural "compiled
// for sequential execution" mode of the paper's Fig. 11.
//
// A Pool is safe for concurrent use: several goroutines may execute For
// and Reduce on the same pool at once, in which case their chunks
// multiplex over the one worker set (the service mode of cmd/mgd, where
// many in-flight solves share one process-global pool). The determinism
// contract is unaffected — each call's partials combine in block order
// regardless of which physical worker ran them. SetMetrics and SetTracer
// remain single-owner configuration: call them before the pool executes
// loops, and never on a shared pool that other solves are using.
type Pool struct {
	nw     int
	work   chan func(worker int)
	closed atomic.Bool
	// persistent marks process-global pools (Sequential, Shared): Close
	// becomes a no-op so library code can unconditionally release its
	// runtime without tearing down a pool other solves still use.
	persistent bool
	// activeMu guards the dispatch channel against Close: For/Reduce hold
	// a read lock while fanning out, Close takes the write lock before
	// closing the channel, so a concurrent For either completes first or
	// observes closed and runs inline.
	activeMu sync.RWMutex
	wg       sync.WaitGroup
	// metrics, when non-nil, receives per-worker busy time for every
	// parallel fan-out (see SetMetrics). nil — the default — costs one
	// predictable nil check per fan-out.
	metrics *metrics.Collector
	// tracer, when non-nil, receives one "wspan" event per worker per
	// parallel fan-out (see SetTracer) — the raw material of the Perfetto
	// per-worker timeline tracks.
	tracer *metrics.Tracer
}

// SetMetrics attaches a collector that receives one RecordBusy per worker
// per parallel fan-out: the wall time the worker spent inside the loop
// body, the raw material of load-balance analysis. Call it before the
// pool executes loops (it is not synchronized against concurrent For).
// SetMetrics(nil) detaches.
func (p *Pool) SetMetrics(c *metrics.Collector) { p.metrics = c }

// SetTracer attaches a tracer that receives one Event{Ev: "wspan"} per
// worker per parallel fan-out: Worker spent Nanos inside the loop body,
// with the event's T stamping the span's end. Like SetMetrics, call it
// before the pool executes loops. SetTracer(nil) detaches.
//
// Note the sequential paths — a one-worker pool, or an iteration count at
// or below the sequential threshold — run inline on the caller and emit
// nothing, exactly as they skip RecordBusy: per-worker accounting
// describes parallel fan-outs only.
func (p *Pool) SetTracer(t *metrics.Tracer) { p.tracer = t }

// NewPool creates a pool with the given number of workers. workers <= 0
// selects runtime.GOMAXPROCS(0). The pool must be Closed when no longer
// needed unless it lives for the whole process.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{nw: workers}
	if workers > 1 {
		// Worker 0 is the calling goroutine; start workers 1..nw-1.
		p.work = make(chan func(worker int))
		for w := 1; w < workers; w++ {
			p.wg.Add(1)
			go p.worker(w)
		}
	}
	return p
}

func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for f := range p.work {
		f(id)
	}
}

// NewPersistent creates a pool like NewPool and marks it persistent:
// Close is a no-op, so the pool can be handed to library code that
// releases its runtime unconditionally. Use for process-global pools
// that live until exit.
func NewPersistent(workers int) *Pool {
	p := NewPool(workers)
	p.persistent = true
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.nw }

// Persistent reports whether the pool is process-global (Sequential,
// Shared, or built with NewPersistent): such pools ignore Close and must
// not have per-run observers attached.
func (p *Pool) Persistent() bool { return p.persistent }

// Close shuts the worker goroutines down. For on a closed pool runs
// sequentially. Close is idempotent, a no-op on persistent pools, and
// safe against concurrent For/Reduce: in-flight fan-outs complete before
// the dispatch channel closes.
func (p *Pool) Close() {
	if p.persistent {
		return
	}
	if p.closed.CompareAndSwap(false, true) && p.work != nil {
		p.activeMu.Lock() // wait for in-flight fan-outs to drain
		close(p.work)
		p.activeMu.Unlock()
		p.wg.Wait()
	}
}

// enter attempts to begin a parallel fan-out: it takes the dispatch read
// lock and re-checks closed under it. On true the caller must call
// p.exit() when the fan-out is done; on false the caller must run inline.
func (p *Pool) enter() bool {
	if p.work == nil {
		return false
	}
	p.activeMu.RLock()
	if p.closed.Load() {
		p.activeMu.RUnlock()
		return false
	}
	return true
}

func (p *Pool) exit() { p.activeMu.RUnlock() }

// Sequential is a process-wide single-worker pool for callers that want the
// sequential semantics without creating a pool.
var Sequential = NewPersistent(1)

// The process-global multi-worker pool, created on first use.
var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-global multi-worker pool, sized
// runtime.GOMAXPROCS(0) and created on first use. It is persistent —
// Close is a no-op — and is the worker set that concurrent solves of a
// resident daemon (cmd/mgd) multiplex over. Callers must not attach
// metrics or tracers to it.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPersistent(0) })
	return sharedPool
}

// For executes body over the half-open range [0, n), partitioned across the
// pool's workers according to opt. body(lo, hi, worker) processes the
// sub-range [lo, hi) on the given worker (0 <= worker < Workers()).
// For returns when the whole range has been processed. A panic in any body
// invocation is re-raised on the caller after all workers have finished.
func (p *Pool) For(n int, opt ForOptions, body func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	if p.nw == 1 || n <= opt.SeqThreshold || !p.enter() {
		body(0, n, 0)
		return
	}
	defer p.exit()
	switch opt.Policy {
	case StaticBlock:
		p.forStaticBlock(n, body)
	case StaticCyclic:
		p.forStaticCyclic(n, opt.chunkOr(defaultChunk(n, p.nw)), body)
	case Dynamic:
		p.forDynamic(n, opt.chunkOr(defaultChunk(n, p.nw)), body)
	case Guided:
		p.forGuided(n, opt.chunkOr(1), body)
	default:
		panic(fmt.Sprintf("sched: unknown policy %d", int(opt.Policy)))
	}
}

func (o ForOptions) chunkOr(def int) int {
	if o.Chunk > 0 {
		return o.Chunk
	}
	return def
}

// defaultChunk aims at 4 chunks per worker, a common balance point between
// scheduling overhead and load balance.
func defaultChunk(n, nw int) int {
	c := n / (nw * 4)
	if c < 1 {
		c = 1
	}
	return c
}

// runOnAll executes part(worker) on every worker, blocking until all have
// returned and propagating the first panic.
func (p *Pool) runOnAll(part func(worker int)) {
	var (
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	call := func(w int) {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, fmt.Sprintf("sched: worker %d panicked: %v", w, r))
			}
			wg.Done()
		}()
		if m, tr := p.metrics, p.tracer; m != nil || tr != nil {
			start := time.Now()
			part(w)
			elapsed := time.Since(start)
			m.RecordBusy(w, elapsed) // nil-safe
			if tr != nil {
				tr.Emit(metrics.Event{Ev: "wspan", Worker: w, Nanos: int64(elapsed)})
			}
			return
		}
		part(w)
	}
	wg.Add(p.nw)
	for w := 1; w < p.nw; w++ {
		w := w
		p.work <- func(int) { call(w) }
	}
	call(0) // caller participates as worker 0
	wg.Wait()
	if msg := panicked.Load(); msg != nil {
		panic(msg)
	}
}

func (p *Pool) forStaticBlock(n int, body func(lo, hi, worker int)) {
	nw := p.nw
	p.runOnAll(func(w int) {
		lo := w * n / nw
		hi := (w + 1) * n / nw
		if lo < hi {
			body(lo, hi, w)
		}
	})
}

func (p *Pool) forStaticCyclic(n, chunk int, body func(lo, hi, worker int)) {
	nw := p.nw
	p.runOnAll(func(w int) {
		for lo := w * chunk; lo < n; lo += nw * chunk {
			hi := min(lo+chunk, n)
			body(lo, hi, w)
		}
	})
}

func (p *Pool) forDynamic(n, chunk int, body func(lo, hi, worker int)) {
	var next atomic.Int64
	p.runOnAll(func(w int) {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := min(lo+chunk, n)
			body(lo, hi, w)
		}
	})
}

func (p *Pool) forGuided(n, minChunk int, body func(lo, hi, worker int)) {
	var (
		mu   sync.Mutex
		next int
	)
	take := func() (lo, hi int, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, 0, false
		}
		remaining := n - next
		chunk := remaining / (2 * p.nw)
		if chunk < minChunk {
			chunk = minChunk
		}
		lo = next
		hi = min(lo+chunk, n)
		next = hi
		return lo, hi, true
	}
	p.runOnAll(func(w int) {
		for {
			lo, hi, ok := take()
			if !ok {
				return
			}
			body(lo, hi, w)
		}
	})
}

// ReduceBlocks is the fixed block count Reduce decomposes every iteration
// space into (fewer when n is smaller). It is a constant — independent of
// the worker count — so that floating-point reductions combine in exactly
// the same tree for every pool size.
const ReduceBlocks = 64

// Reduce computes a deterministic parallel reduction over [0, n).
// partial(lo, hi) folds one sub-range starting from the neutral element;
// combine merges two partial results. The range is always decomposed into
// the same min(n, ReduceBlocks) blocks and the block partials are combined
// in ascending order, so the result is bit-identical for every worker count
// and scheduling policy — essential for floating-point reductions that feed
// verification. (The block structure does mean the result can differ in the
// last ulp from a flat left-to-right loop; callers comparing against such a
// loop must compare with a tolerance.)
func (p *Pool) Reduce(n int, opt ForOptions, neutral float64,
	partial func(lo, hi int) float64, combine func(a, b float64) float64) float64 {
	if n <= 0 {
		return neutral
	}
	nblocks := ReduceBlocks
	if nblocks > n {
		nblocks = n
	}
	parts := make([]float64, nblocks)
	fill := func(b int) {
		lo := b * n / nblocks
		hi := (b + 1) * n / nblocks
		parts[b] = partial(lo, hi)
	}
	if p.nw == 1 || n <= opt.SeqThreshold || !p.enter() {
		for b := 0; b < nblocks; b++ {
			fill(b)
		}
	} else {
		var next atomic.Int64
		p.runOnAll(func(int) {
			for {
				b := int(next.Add(1)) - 1
				if b >= nblocks {
					return
				}
				fill(b)
			}
		})
		p.exit()
	}
	acc := neutral
	for _, v := range parts {
		acc = combine(acc, v)
	}
	return acc
}
