package sched

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

var allPolicies = []Policy{StaticBlock, StaticCyclic, Dynamic, Guided}

// coverFor runs a For loop and checks that every index in [0,n) is visited
// exactly once.
func coverFor(t *testing.T, p *Pool, n int, opt ForOptions) {
	t.Helper()
	visited := make([]int32, n)
	p.For(n, opt, func(lo, hi, worker int) {
		if worker < 0 || worker >= p.Workers() {
			t.Errorf("worker id %d out of range [0,%d)", worker, p.Workers())
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visited[i], 1)
		}
	})
	for i, c := range visited {
		if c != 1 {
			t.Fatalf("policy %v workers %d n %d: index %d visited %d times",
				opt.Policy, p.Workers(), n, i, c)
		}
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7} {
		p := NewPool(workers)
		for _, pol := range allPolicies {
			for _, n := range []int{0, 1, 2, 5, 64, 1000, 1023} {
				coverFor(t, p, n, ForOptions{Policy: pol})
				coverFor(t, p, n, ForOptions{Policy: pol, Chunk: 3})
			}
		}
		p.Close()
	}
}

func TestForSequentialThreshold(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	ran := false
	p.For(10, ForOptions{SeqThreshold: 10}, func(lo, hi, worker int) {
		if lo != 0 || hi != 10 || worker != 0 {
			t.Errorf("threshold run got (lo,hi,worker)=(%d,%d,%d), want (0,10,0)", lo, hi, worker)
		}
		ran = true
	})
	if !ran {
		t.Fatal("body never ran")
	}
	// Above the threshold the loop must be split (with 4 workers, static
	// block gives 4 calls).
	var calls atomic.Int32
	p.For(100, ForOptions{SeqThreshold: 10}, func(lo, hi, worker int) { calls.Add(1) })
	if calls.Load() < 2 {
		t.Fatalf("loop above threshold not parallelized: %d calls", calls.Load())
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.For(0, ForOptions{}, func(lo, hi, worker int) { t.Error("body ran for n=0") })
	p.For(-5, ForOptions{}, func(lo, hi, worker int) { t.Error("body ran for n<0") })
}

func TestSinglePoolWorkerRunsInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers = %d", p.Workers())
	}
	calls := 0
	p.For(100, ForOptions{}, func(lo, hi, worker int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Errorf("single worker split the range: [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestNewPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("default pool has %d workers", p.Workers())
	}
}

func TestCloseIdempotentAndSequentialAfterClose(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close() // must not panic or deadlock
	ran := false
	p.For(10, ForOptions{}, func(lo, hi, worker int) {
		ran = true
		if lo != 0 || hi != 10 {
			t.Error("closed pool did not run sequentially")
		}
	})
	if !ran {
		t.Fatal("closed pool dropped the loop")
	}
}

func TestPanicPropagation(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	p.For(100, ForOptions{}, func(lo, hi, worker int) {
		if lo == 0 {
			panic("boom")
		}
	})
}

// The pool must survive a panic: subsequent loops still work.
func TestPoolUsableAfterPanic(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.For(10, ForOptions{}, func(lo, hi, worker int) { panic("x") })
	}()
	coverFor(t, p, 100, ForOptions{})
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{
		StaticBlock:  "static-block",
		StaticCyclic: "static-cyclic",
		Dynamic:      "dynamic",
		Guided:       "guided",
		Policy(99):   "Policy(99)",
	}
	for pol, want := range names {
		if pol.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(pol), pol.String(), want)
		}
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Error("unknown policy did not panic")
		}
	}()
	p.For(10, ForOptions{Policy: Policy(42)}, func(lo, hi, worker int) {})
}

func sumTo(n int) float64 { return float64(n) * float64(n-1) / 2 }

func TestReduceSum(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 10, 1000} {
			got := p.Reduce(n, ForOptions{}, 0,
				func(lo, hi int) float64 {
					s := 0.0
					for i := lo; i < hi; i++ {
						s += float64(i)
					}
					return s
				},
				func(a, b float64) float64 { return a + b })
			if got != sumTo(n) {
				t.Errorf("workers %d n %d: Reduce = %g, want %g", workers, n, got, sumTo(n))
			}
		}
		p.Close()
	}
}

func TestReduceMax(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	vals := make([]float64, 997)
	for i := range vals {
		vals[i] = math.Sin(float64(i) * 12.9898)
	}
	got := p.Reduce(len(vals), ForOptions{}, math.Inf(-1),
		func(lo, hi int) float64 {
			m := math.Inf(-1)
			for i := lo; i < hi; i++ {
				if vals[i] > m {
					m = vals[i]
				}
			}
			return m
		},
		math.Max)
	want := math.Inf(-1)
	for _, v := range vals {
		want = math.Max(want, v)
	}
	if got != want {
		t.Fatalf("Reduce max = %g, want %g", got, want)
	}
}

// Determinism: floating-point sums must be bit-identical across worker
// counts because partials are combined in block order. We construct values
// whose naive left-to-right sum differs from other orders, then check all
// pools agree with the 1-worker pool given the same block structure.
func TestReduceDeterministicAcrossRuns(t *testing.T) {
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = 1e-15 * float64(i%97) * math.Pow(10, float64(i%31)-15)
	}
	p := NewPool(6)
	defer p.Close()
	run := func() float64 {
		return p.Reduce(len(vals), ForOptions{}, 0,
			func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += vals[i]
				}
				return s
			},
			func(a, b float64) float64 { return a + b })
	}
	first := run()
	for i := 0; i < 20; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: Reduce = %v, want %v (non-deterministic)", i, got, first)
		}
	}
}

// Property: For with any policy computes the same per-index result as a
// plain loop (each worker writes only its own sub-range — no races).
func TestForMatchesSequentialQuick(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	f := func(seed uint16, polRaw uint8, chunkRaw uint8) bool {
		n := int(seed%500) + 1
		pol := allPolicies[int(polRaw)%len(allPolicies)]
		out := make([]float64, n)
		p.For(n, ForOptions{Policy: pol, Chunk: int(chunkRaw % 8)}, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				out[i] = float64(i) * 1.5
			}
		})
		for i := 0; i < n; i++ {
			if out[i] != float64(i)*1.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		b.Run(map[int]string{1: "seq", 4: "par4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.For(1024, ForOptions{}, func(lo, hi, w int) {
					for j := lo; j < hi; j++ {
						_ = j
					}
				})
			}
		})
		p.Close()
	}
}

// Policy names round-trip through the text encoding used by tuning plans.
func TestPolicyTextRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		text, err := p.MarshalText()
		if err != nil {
			t.Fatalf("%v: marshal: %v", p, err)
		}
		var back Policy
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%v: unmarshal %q: %v", p, text, err)
		}
		if back != p {
			t.Fatalf("round trip changed %v to %v", p, back)
		}
	}
	if _, err := ParsePolicy("nonsense"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown name")
	}
	if _, err := Policy(99).MarshalText(); err == nil {
		t.Fatal("MarshalText accepted an out-of-range policy")
	}
}

// Busy accounting: with a collector attached, every parallel fan-out
// records one loop and a positive busy time per participating worker;
// the single-worker pool and the sequential fast path record nothing.
func TestBusyAccountingPerWorkerCount(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		c := metrics.NewCollector(workers)
		p.SetMetrics(c)
		const fanouts = 3
		var total atomic.Int64
		for i := 0; i < fanouts; i++ {
			p.For(1<<14, ForOptions{}, func(lo, hi, worker int) {
				var s int64
				for j := lo; j < hi; j++ {
					s += int64(j)
				}
				total.Add(s)
			})
		}
		snap := c.Snapshot()
		if workers == 1 {
			// Inline path: no fan-out, so no per-worker accounting.
			if len(snap.Workers) != 0 {
				t.Fatalf("1 worker recorded busy shards: %+v", snap.Workers)
			}
			p.Close()
			continue
		}
		if len(snap.Workers) != workers {
			t.Fatalf("%d workers: %d busy shards", workers, len(snap.Workers))
		}
		for _, ws := range snap.Workers {
			if ws.Loops != fanouts {
				t.Fatalf("%d workers: worker %d took part in %d loops, want %d",
					workers, ws.Worker, ws.Loops, fanouts)
			}
			if ws.BusyNanos == 0 {
				t.Fatalf("%d workers: worker %d recorded zero busy time", workers, ws.Worker)
			}
		}
		p.Close()
	}
}

// With a tracer attached, each parallel fan-out emits one "wspan" event
// per worker; the sequential threshold path emits none.
func TestWspanEmission(t *testing.T) {
	var buf bytes.Buffer
	tr := metrics.NewTracer(&buf)
	p := NewPool(2)
	defer p.Close()
	p.SetTracer(tr)
	p.For(1<<12, ForOptions{}, func(lo, hi, worker int) {})
	p.For(8, ForOptions{SeqThreshold: 64}, func(lo, hi, worker int) {})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := metrics.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, e := range events {
		if e.Ev != "wspan" {
			t.Fatalf("unexpected event %q from the pool", e.Ev)
		}
		seen[e.Worker]++
		if e.Nanos < 0 {
			t.Fatalf("negative wspan duration %d", e.Nanos)
		}
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 1 {
		t.Fatalf("wspan events per worker = %v, want one for each of 2 workers", seen)
	}
}

// A shared pool must multiplex concurrent For calls from many goroutines
// — the service mode of cmd/mgd, where every in-flight solve schedules
// onto one worker set. Each caller's range must still be covered exactly
// once.
func TestConcurrentForOnSharedPool(t *testing.T) {
	p := NewPersistent(4)
	const (
		callers = 8
		n       = 1 << 14
	)
	var wg sync.WaitGroup
	sums := make([]int64, callers)
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				var sum atomic.Int64
				p.For(n, ForOptions{Policy: Policy(rep % 4)}, func(lo, hi, _ int) {
					s := int64(0)
					for i := lo; i < hi; i++ {
						s += int64(i)
					}
					sum.Add(s)
				})
				sums[c] = sum.Load()
			}
		}()
	}
	wg.Wait()
	want := int64(n) * int64(n-1) / 2
	for c, got := range sums {
		if got != want {
			t.Fatalf("caller %d: sum = %d, want %d", c, got, want)
		}
	}
}

// Close on a persistent pool is a no-op: the pool keeps executing in
// parallel afterwards. Sequential and Shared are persistent.
func TestPersistentPoolIgnoresClose(t *testing.T) {
	p := NewPersistent(2)
	p.Close()
	if p.closed.Load() {
		t.Fatal("Close marked a persistent pool closed")
	}
	hit := map[int]bool{}
	var mu sync.Mutex
	p.For(1<<12, ForOptions{}, func(lo, hi, worker int) {
		mu.Lock()
		hit[worker] = true
		mu.Unlock()
	})
	if len(hit) != 2 {
		t.Fatalf("workers used after Close = %v, want both", hit)
	}
	if !Sequential.Persistent() {
		t.Fatal("Sequential is not persistent")
	}
	if s := Shared(); !s.Persistent() || s != Shared() {
		t.Fatal("Shared must return one persistent pool")
	}
}

// Close racing concurrent For calls must neither panic (send on closed
// channel) nor lose range coverage: an in-flight fan-out completes, a
// late one runs inline.
func TestCloseRacesConcurrentFor(t *testing.T) {
	for rep := 0; rep < 20; rep++ {
		p := NewPool(4)
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sum atomic.Int64
				p.For(1<<10, ForOptions{}, func(lo, hi, _ int) {
					for i := lo; i < hi; i++ {
						sum.Add(int64(i))
					}
				})
				if want := int64(1<<10) * (1<<10 - 1) / 2; sum.Load() != want {
					panic("range not covered exactly once")
				}
			}()
		}
		p.Close()
		wg.Wait()
	}
}
