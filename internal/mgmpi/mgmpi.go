// Package mgmpi implements NAS-MG in the style of the MPI-based parallel
// reference implementation — the comparison the paper's future-work
// section asks for (§7: "a direct comparison with the MPI-based parallel
// reference implementation of NAS-MG would be interesting").
//
// Like the NPB MPI code, the grid is decomposed over a 3-dimensional
// processor grid: each rank owns a sub-box with one halo cell on every
// side, and the periodic boundary update comm3 becomes a sequence of
// face exchanges, one axis at a time in the serial update's order
// (contiguous axis first), so edge and corner values propagate exactly as
// in the serial code. Levels whose per-rank extent would drop below two
// cells on a distributed axis are agglomerated onto rank 0 and solved
// serially there — the coarse-grid agglomeration of distributed
// multigrid (NPB-MPI instead deactivates processors; agglomeration is the
// documented substitution, DESIGN.md §4).
//
// A 1-D slab decomposition is the special case (R, 1, 1); New uses it,
// New3D takes an explicit processor grid.
//
// Correctness: with one rank the grid computation is statement-identical
// to internal/f77; the norm reduction uses the canonical plane association
// of nas.Norm2u3Planes, so rnm2 is bit-identical to Norm2u3Planes over
// f77's residual grid (and rnmu bit-identical to f77 outright, max being
// association-free). For slab decompositions the plane-ordered reduction
// makes rnm2 bit-identical across every rank count; 3-D processor grids
// split planes across ranks and are deterministic but not plane-exact,
// and the NPB verification still passes (all asserted by tests). The
// package also reports
// the communication volume per benchmark run (messages and bytes), the
// quantity a real distributed run pays for.
package mgmpi

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"repro/internal/array"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/sched"
	"repro/internal/shape"
	"repro/internal/stencil"
)

// Message tags. Halo tags are offset by axis so protocol errors surface
// as tag mismatches.
const (
	tagGather = iota + 1
	tagScatter
	tagNorm
	tagBcast
	tagHaloBase // +2*axis (low face), +2*axis+1 (high face)
)

// Solver runs the benchmark on a simulated MPI world.
type Solver struct {
	// Class is the NPB size class.
	Class nas.Class
	// Procs is the processor grid (axis 0, 1, 2); the world size is
	// their product.
	Procs [3]int
	// IterNorms, when non-nil, receives the NPB norms after the initial
	// residual (iter 0) and after every V-cycle iteration (iter 1..Iter),
	// invoked on rank 0. Each intermediate report costs one collective
	// norm reduction; the default nil adds no communication.
	IterNorms func(iter int, rnm2, rnmu float64)
	// Trace, when non-nil, receives rank-tagged V-cycle events: the
	// "resid"/"mg3P" phase spans per rank, per-level kernel spans
	// (resid/smooth/fine2coarse/coarse2fine) inside the V-cycle, one
	// "send"/"recv" event per point-to-point message (peer, tag, level,
	// iteration, bytes and per-stream sequence number — enough for
	// cmd/mgtrace to pair both sides of every exchange across ranks),
	// plus iteration markers and the whole-solve summary from rank 0.
	// Rank identifies the emitter, so a multi-rank run becomes one
	// Perfetto process per rank. The tracer is safe for the ranks'
	// concurrent emits; tracing never changes the arithmetic (rnm2
	// stays bit-identical, asserted by tests).
	Trace *metrics.Tracer
	// OnIter, when non-nil, is invoked on every rank after each completed
	// V-cycle iteration (1-based), before any intermediate norm
	// reduction. cmd/mgrank uses it to kill a rank mid-solve at a
	// deterministic point for fault-injection tests.
	OnIter func(rank, iter int)
	// Overlap selects the nonblocking halo exchange: each kernel computes
	// its boundary planes first, posts Irecv/Isend for the axis-0 face
	// exchange, fills the interior planes while the wire drains, and only
	// then waits (DESIGN.md §4.7). Per-iteration rnm2 is bit-identical to
	// the synchronous path — the split reorders whole planes, never the
	// statements within one. Requires a 1-D slab decomposition (Procs =
	// (R,1,1)); runRank panics otherwise.
	Overlap bool
	// Threads is the number of sched.Pool workers each rank drives over
	// its plane loops (hybrid MPI×SMP). 0 or 1 keeps the rank serial.
	// Planes are disjoint per worker and folded in plane order, so rnm2
	// stays bit-identical for every thread count.
	Threads int

	world     *mpi.World    // in-process mode (New/New3D)
	transport mpi.Transport // single-rank mode (NewWithTransport)
}

// New creates a 1-D slab-decomposed solver over `ranks` ranks — the
// processor grid (ranks, 1, 1).
func New(class nas.Class, ranks int) *Solver { return New3D(class, ranks, 1, 1) }

// New3D creates a solver over the processor grid (r0, r1, r2). Every
// extent must be a power of two, and every distributed axis must keep at
// least two cells per rank at some level (2·r ≤ class.N).
func New3D(class nas.Class, r0, r1, r2 int) *Solver {
	if err := validateProcs(class, r0, r1, r2); err != nil {
		panic(err.Error())
	}
	return &Solver{Class: class, Procs: [3]int{r0, r1, r2}, world: mpi.NewWorld(r0 * r1 * r2)}
}

func validateProcs(class nas.Class, r0, r1, r2 int) error {
	for _, r := range [3]int{r0, r1, r2} {
		if r < 1 || r&(r-1) != 0 || (r > 1 && 2*r > class.N) {
			return fmt.Errorf("mgmpi: processor grid extents must be powers of two with 2*r <= %d, got (%d,%d,%d)",
				class.N, r0, r1, r2)
		}
	}
	return nil
}

// NewWithTransport creates one rank's view of a distributed solve over
// an external transport — typically an mpinet TCP mesh, where each rank
// is its own OS process and t is its endpoint. The processor grid is
// the 1-D slab decomposition (t.Size(), 1, 1), matching New; the
// algorithm (and therefore the per-iteration rnm2) is identical to the
// in-process channel world. Run the solve with RunRank.
func NewWithTransport(class nas.Class, t mpi.Transport) (*Solver, error) {
	if err := validateProcs(class, t.Size(), 1, 1); err != nil {
		return nil, err
	}
	return &Solver{Class: class, Procs: [3]int{t.Size(), 1, 1}, transport: t}, nil
}

// Ranks returns the world size.
func (s *Solver) Ranks() int { return s.Procs[0] * s.Procs[1] * s.Procs[2] }

// Stats returns the accumulated communication totals of all runs so
// far: every rank's counters summed for an in-process world, this
// process's rank alone in transport mode.
func (s *Solver) Stats() mpi.Stats {
	if s.world == nil {
		return s.transport.Stats()
	}
	return s.world.TotalStats()
}

// RankStats returns the accumulated per-rank communication counters (a
// single entry — this process's rank — in transport mode).
func (s *Solver) RankStats() []mpi.Stats {
	if s.world == nil {
		return []mpi.Stats{s.transport.Stats()}
	}
	return s.world.Stats()
}

// span times f and, with a tracer attached, emits it as a rank-tagged
// span event at the finest level (nil tracer: just f()).
func (s *Solver) span(rank int, kernel string, f func()) {
	tr := s.Trace
	if tr == nil {
		f()
		return
	}
	start := time.Now()
	f()
	tr.Emit(metrics.Event{Ev: "span", Kernel: kernel, Level: s.Class.LT(),
		Nanos: int64(time.Since(start)), Rank: rank})
}

// Run executes the full benchmark (reset, initial residual, Iter ×
// (V-cycle + residual), norms) across the in-process world and returns
// the final NPB norms. Only valid for solvers built with New/New3D.
func (s *Solver) Run() (rnm2, rnmu float64) {
	results := make([][2]float64, s.Ranks())
	s.world.Run(func(c *mpi.Comm) {
		n2, nu := s.runRank(c)
		results[c.Rank()] = [2]float64{n2, nu}
	})
	return results[0][0], results[0][1]
}

// RunRank executes this process's share of the benchmark over the
// transport the solver was built with (NewWithTransport) and returns
// the final NPB norms, valid on every rank (the norm reduction ends
// with a broadcast). Communication failures — a dead peer, a corrupt
// frame, a timeout — surface as panics from the mpi.Comm veneer naming
// the rank and tag; the caller (cmd/mgrank) recovers them into an exit
// status.
func (s *Solver) RunRank() (rnm2, rnmu float64) {
	if s.transport == nil {
		panic("mgmpi: RunRank requires a solver built with NewWithTransport")
	}
	return s.runRank(mpi.NewComm(s.transport))
}

// runRank is the per-rank benchmark body, identical under both modes.
func (s *Solver) runRank(c *mpi.Comm) (rnm2, rnmu float64) {
	rank := c.Rank()
	if s.Overlap && (s.Procs[1] > 1 || s.Procs[2] > 1) {
		panic(fmt.Sprintf("mgmpi: overlap requires a 1-D slab decomposition, got procs (%d,%d,%d)",
			s.Procs[0], s.Procs[1], s.Procs[2]))
	}
	var obs *commObserver
	if s.Trace != nil {
		// Interpose the trace observer between the solver and the
		// transport: every Send/Recv below emits a pairable event. The
		// untraced path keeps the bare transport — no wrapper, no cost.
		obs = newCommObserver(c.Transport(), s.Trace)
		c = mpi.NewComm(obs)
	}
	st := newRankState(c, s.Class, s.Procs)
	st.overlap = s.Overlap
	if s.Threads > 1 {
		st.pool = sched.NewPool(s.Threads)
		defer st.pool.Close()
	}
	st.obs = obs
	if s.Trace != nil {
		tr := s.Trace
		st.spanFn = func(kernel string, level int, nanos int64) {
			tr.Emit(metrics.Event{Ev: "span", Kernel: kernel, Level: level,
				Nanos: nanos, Rank: rank})
		}
	}
	st.reset()
	start := time.Now()
	s.span(rank, "resid", st.evalResid)
	report := func(iter int, n2, nu float64) {
		if s.IterNorms != nil && rank == 0 {
			s.IterNorms(iter, n2, nu)
		}
	}
	// norms() is collective; every rank must agree on whether the
	// intermediate reductions run, which they do because IterNorms
	// is read from the shared Solver (or the same flag passed to every
	// mgrank process).
	if s.IterNorms != nil {
		n2, nu := st.norms()
		report(0, n2, nu)
	}
	for it := 0; it < s.Class.Iter; it++ {
		if rank == 0 && s.Trace != nil {
			s.Trace.Emit(metrics.Event{Ev: "iter", Iter: it + 1, Level: s.Class.LT()})
		}
		if obs != nil {
			obs.iter = it + 1
		}
		s.span(rank, "mg3P", st.mg3P)
		s.span(rank, "resid", st.evalResid)
		if s.OnIter != nil {
			s.OnIter(rank, it+1)
		}
		if s.IterNorms != nil && it+1 < s.Class.Iter {
			n2, nu := st.norms()
			report(it+1, n2, nu)
		}
	}
	n2, nu := st.norms()
	report(s.Class.Iter, n2, nu)
	if rank == 0 && s.Trace != nil {
		s.Trace.Emit(metrics.Event{Ev: "solve", Level: s.Class.LT(),
			Nanos: int64(time.Since(start)), Iter: s.Class.Iter, Rnm2: n2})
	}
	return n2, nu
}

// --- per-rank state -------------------------------------------------------------

// rankState is one rank's view of the problem: its sub-box hierarchy for
// the distributed levels and (on rank 0) the full grids of the
// agglomerated coarse levels.
type rankState struct {
	c     *mpi.Comm
	class nas.Class
	lt    int    // finest level
	lcd   int    // coarsest distributed level
	procs [3]int // processor grid extents
	coord [3]int // this rank's grid coordinates
	a, cs stencil.Coeffs

	u, r map[int]*array.Array // distributed levels: local sub-boxes
	v    *array.Array         // finest right-hand-side sub-box

	uFull, rFull map[int]*array.Array // agglomerated levels (rank 0)

	// serialComm redirects comm3 to serial plane copies while rank 0
	// works on agglomerated full grids.
	serialComm bool

	// overlap selects the nonblocking interior/boundary-split exchange
	// (Solver.Overlap); pool, when non-nil, fans each kernel's plane loop
	// over multiple workers (Solver.Threads). Both nil/false by default.
	overlap bool
	pool    *sched.Pool

	// obs, when tracing, is the transport observer whose level/iter
	// fields tag every send/recv event; spanFn emits per-level kernel
	// spans. Both nil on the untraced path.
	obs    *commObserver
	spanFn func(kernel string, level int, nanos int64)
}

// setCommLevel tags subsequent send/recv events with the grid level the
// messages belong to. No-op without a tracer.
func (st *rankState) setCommLevel(level int) {
	if st.obs != nil {
		st.obs.level = level
	}
}

// kspan times f and emits it as a per-level kernel span when tracing
// (bare call otherwise).
func (st *rankState) kspan(kernel string, level int, f func()) {
	if st.spanFn == nil {
		f()
		return
	}
	start := time.Now()
	f()
	st.spanFn(kernel, level, int64(time.Since(start)))
}

func newRankState(c *mpi.Comm, class nas.Class, procs [3]int) *rankState {
	lt := class.LT()
	// Coarsest distributed level: at least two cells per rank along every
	// distributed axis, so every sub-box starts on an even global index
	// and the restriction/prolongation pairing stays rank-local.
	lcd := 1
	for _, r := range procs {
		l := 1
		for r > 1 && (1<<l) < 2*r {
			l++
		}
		if l > lcd {
			lcd = l
		}
	}
	rank := c.Rank()
	coord := [3]int{
		rank / (procs[1] * procs[2]),
		(rank / procs[2]) % procs[1],
		rank % procs[2],
	}
	st := &rankState{
		c: c, class: class, lt: lt, lcd: lcd, procs: procs, coord: coord,
		a: stencil.A, cs: class.SmootherCoeffs(),
		u: map[int]*array.Array{}, r: map[int]*array.Array{},
		uFull: map[int]*array.Array{}, rFull: map[int]*array.Array{},
	}
	for l := lcd; l <= lt; l++ {
		st.u[l] = array.New(st.boxShape(l))
		st.r[l] = array.New(st.boxShape(l))
	}
	st.v = array.New(st.boxShape(lt))
	if rank == 0 {
		for l := 1; l < lcd; l++ {
			st.uFull[l] = array.New(class.ExtShape(l))
			st.rFull[l] = array.New(class.ExtShape(l))
		}
		if lcd > 1 {
			st.rFull[lcd] = array.New(class.ExtShape(lcd))
			st.uFull[lcd] = array.New(class.ExtShape(lcd))
		}
	}
	return st
}

// local returns the number of interior cells this rank owns along axis a
// at a distributed level.
func (st *rankState) local(level, axis int) int { return (1 << level) / st.procs[axis] }

func (st *rankState) boxShape(level int) shape.Shape {
	return shape.Of(st.local(level, 0)+2, st.local(level, 1)+2, st.local(level, 2)+2)
}

// neighbour returns the rank of the grid neighbour along axis a (offset
// ±1, periodic).
func (st *rankState) neighbour(axis, delta int) int {
	nc := st.coord
	nc[axis] = (nc[axis] + delta + st.procs[axis]) % st.procs[axis]
	return (nc[0]*st.procs[1]+nc[1])*st.procs[2] + nc[2]
}

// --- sub-box pack/unpack ----------------------------------------------------------

// packBox copies the box [lo, hi] (inclusive) of d (extents n1×n2 within
// rows) into a fresh buffer.
func packBox(d []float64, n1, n2 int, lo, hi [3]int) []float64 {
	out := make([]float64, 0, (hi[0]-lo[0]+1)*(hi[1]-lo[1]+1)*(hi[2]-lo[2]+1))
	for i := lo[0]; i <= hi[0]; i++ {
		for j := lo[1]; j <= hi[1]; j++ {
			base := (i*n1 + j) * n2
			out = append(out, d[base+lo[2]:base+hi[2]+1]...)
		}
	}
	return out
}

// unpackBox writes buf into the box [lo, hi] of d.
func unpackBox(d []float64, n1, n2 int, lo, hi [3]int, buf []float64) {
	pos := 0
	width := hi[2] - lo[2] + 1
	for i := lo[0]; i <= hi[0]; i++ {
		for j := lo[1]; j <= hi[1]; j++ {
			base := (i*n1 + j) * n2
			copy(d[base+lo[2]:base+lo[2]+width], buf[pos:pos+width])
			pos += width
		}
	}
}

// copyBox copies the box src..srcHi of d onto dst (same extents) — the
// local form of a periodic exchange along an undistributed axis.
func copyBox(d []float64, n1, n2 int, lo, hi [3]int, dstLo [3]int) {
	for i := lo[0]; i <= hi[0]; i++ {
		for j := lo[1]; j <= hi[1]; j++ {
			src := (i*n1+j)*n2 + lo[2]
			di := dstLo[0] + (i - lo[0])
			dj := dstLo[1] + (j - lo[1])
			dst := (di*n1+dj)*n2 + dstLo[2]
			copy(d[dst:dst+hi[2]-lo[2]+1], d[src:src+hi[2]-lo[2]+1])
		}
	}
}

// --- comm3: the distributed periodic boundary update ------------------------------

// comm3 refreshes the halo cells of a local box. It mirrors the serial
// nas.Comm3 exactly: axes are processed contiguous-first (axis 2, then 1,
// then 0); each step covers the full extent of already-processed axes and
// the interior of not-yet-processed ones, so edges and corners propagate
// identically. Distributed axes exchange faces with the ring neighbours;
// undistributed axes copy locally.
func (st *rankState) comm3(a *array.Array) {
	shp := a.Shape()
	n0, n1, n2 := shp[0], shp[1], shp[2]
	d := a.Data()
	lp := [3]int{n0 - 2, n1 - 2, n2 - 2}

	// Tag the halo messages below with the grid level, recovered from
	// the box extent: a distributed axis owns global/procs cells, so the
	// global extent is lp·procs = 2^level.
	if st.obs != nil && !st.serialComm {
		for x := 0; x < 3; x++ {
			if st.procs[x] > 1 {
				st.setCommLevel(bits.Len(uint(lp[x]*st.procs[x])) - 1)
				break
			}
		}
	}

	// Per-axis data ranges (inclusive): already-processed axes span
	// everything including halos; later axes interior only.
	ranges := func(axis int) (lo, hi [3]int) {
		for x := 0; x < 3; x++ {
			switch {
			case x > axis: // processed before this one (we go 2,1,0)
				lo[x], hi[x] = 0, lp[x]+1
			case x < axis:
				lo[x], hi[x] = 1, lp[x]
			}
		}
		return lo, hi
	}
	setAxis := func(lo, hi [3]int, axis, v int) ([3]int, [3]int) {
		lo[axis], hi[axis] = v, v
		return lo, hi
	}

	for axis := 2; axis >= 0; axis-- {
		lo, hi := ranges(axis)
		if st.procs[axis] == 1 || st.serialComm {
			// Local periodic copies: halo 0 ← interior lp; halo lp+1 ← 1.
			sLo, sHi := setAxis(lo, hi, axis, lp[axis])
			dLo, _ := setAxis(lo, hi, axis, 0)
			copyBox(d, n1, n2, sLo, sHi, dLo)
			sLo, sHi = setAxis(lo, hi, axis, 1)
			dLo, _ = setAxis(lo, hi, axis, lp[axis]+1)
			copyBox(d, n1, n2, sLo, sHi, dLo)
			continue
		}
		up := st.neighbour(axis, +1)
		down := st.neighbour(axis, -1)
		tagHi := tagHaloBase + 2*axis
		tagLo := tagHaloBase + 2*axis + 1
		// Send my top interior face up; it becomes the upper neighbour's
		// low halo. Then the reverse direction.
		sLo, sHi := setAxis(lo, hi, axis, lp[axis])
		st.c.Send(up, tagHi, packBox(d, n1, n2, sLo, sHi))
		rLo, rHi := setAxis(lo, hi, axis, 0)
		unpackBox(d, n1, n2, rLo, rHi, st.c.Recv(down, tagHi))
		sLo, sHi = setAxis(lo, hi, axis, 1)
		st.c.Send(down, tagLo, packBox(d, n1, n2, sLo, sHi))
		rLo, rHi = setAxis(lo, hi, axis, lp[axis]+1)
		unpackBox(d, n1, n2, rLo, rHi, st.c.Recv(up, tagLo))
	}
}

// --- gather / scatter / broadcast ---------------------------------------------------

// globalBox returns this rank's interior box in extended-global
// coordinates at a distributed level.
func (st *rankState) globalBox(level int) (lo, hi [3]int) {
	for a := 0; a < 3; a++ {
		lp := st.local(level, a)
		lo[a] = st.coord[a]*lp + 1
		hi[a] = lo[a] + lp - 1
	}
	return lo, hi
}

// rankBoxOf returns rank r's interior box at a level (extended-global).
func (st *rankState) rankBoxOf(level, r int) (lo, hi [3]int) {
	coord := [3]int{
		r / (st.procs[1] * st.procs[2]),
		(r / st.procs[2]) % st.procs[1],
		r % st.procs[2],
	}
	for a := 0; a < 3; a++ {
		lp := (1 << level) / st.procs[a]
		lo[a] = coord[a]*lp + 1
		hi[a] = lo[a] + lp - 1
	}
	return lo, hi
}

// gatherToRoot assembles a distributed level into rank 0's full grid.
func (st *rankState) gatherToRoot(level int, box, full *array.Array) {
	st.setCommLevel(level)
	bs := box.Shape()
	interiorLo := [3]int{1, 1, 1}
	interiorHi := [3]int{bs[0] - 2, bs[1] - 2, bs[2] - 2}
	payload := packBox(box.Data(), bs[1], bs[2], interiorLo, interiorHi)
	if st.c.Rank() != 0 {
		st.c.Send(0, tagGather, payload)
		return
	}
	m := full.Shape()
	fLo, fHi := st.globalBox(level)
	unpackBox(full.Data(), m[1], m[2], fLo, fHi, payload)
	for src := 1; src < st.c.Size(); src++ {
		lo, hi := st.rankBoxOf(level, src)
		unpackBox(full.Data(), m[1], m[2], lo, hi, st.c.Recv(src, tagGather))
	}
	nas.Comm3(full)
}

// scatterFromRoot distributes rank 0's full grid into the local boxes of
// a distributed level (interior cells; halos are refreshed by comm3).
func (st *rankState) scatterFromRoot(level int, full, box *array.Array) {
	st.setCommLevel(level)
	bs := box.Shape()
	interiorLo := [3]int{1, 1, 1}
	interiorHi := [3]int{bs[0] - 2, bs[1] - 2, bs[2] - 2}
	if st.c.Rank() == 0 {
		m := full.Shape()
		for dst := 1; dst < st.c.Size(); dst++ {
			lo, hi := st.rankBoxOf(level, dst)
			st.c.Send(dst, tagScatter, packBox(full.Data(), m[1], m[2], lo, hi))
		}
		lo, hi := st.globalBox(level)
		unpackBox(box.Data(), bs[1], bs[2], interiorLo, interiorHi,
			packBox(full.Data(), m[1], m[2], lo, hi))
		return
	}
	unpackBox(box.Data(), bs[1], bs[2], interiorLo, interiorHi, st.c.Recv(0, tagScatter))
}

// broadcastFull distributes rank 0's full grid to every rank.
func (st *rankState) broadcastFull(full *array.Array, level int) *array.Array {
	if st.c.Size() == 1 {
		return full
	}
	st.setCommLevel(level)
	if st.c.Rank() == 0 {
		st.c.Broadcast(tagBcast, 0, full.Data())
		return full
	}
	data := st.c.Broadcast(tagBcast, 0, nil)
	out := array.New(st.class.ExtShape(level))
	copy(out.Data(), data)
	return out
}

// --- kernels (box forms of the mg.f loops) -----------------------------------------

// row slices one contiguous lateral row of a box with extents (·, n1, n2).
func row(d []float64, i, j, n1, n2 int) []float64 {
	base := (i*n1 + j) * n2
	return d[base : base+n2]
}

// resid computes r = v − A·u over the box interior and refreshes the
// periodic boundary — synchronously, or with the interior planes
// overlapping the halo exchange (fusedComm3).
func (st *rankState) resid(u, v, r *array.Array) {
	st.fusedComm3(r, func(lo, hi int) { st.residPlanes(u, v, r, lo, hi) })
}

// residPlanes computes r's planes [lo, hi] (inclusive). Scratch is
// per-call, so disjoint plane ranges may run on concurrent workers; each
// plane's statements are those of the full loop, so any plane schedule
// yields bit-identical values.
func (st *rankState) residPlanes(u, v, r *array.Array, lo, hi int) {
	shp := u.Shape()
	n1, n2 := shp[1], shp[2]
	ud, vd, rd := u.Data(), v.Data(), r.Data()
	a0, a2, a3 := st.a[0], st.a[2], st.a[3]
	u1 := make([]float64, n2)
	u2 := make([]float64, n2)
	for i3 := lo; i3 <= hi; i3++ {
		for i2 := 1; i2 < n1-1; i2++ {
			uMM, uMZ, uMP := row(ud, i3-1, i2-1, n1, n2), row(ud, i3-1, i2, n1, n2), row(ud, i3-1, i2+1, n1, n2)
			uZM, uZZ, uZP := row(ud, i3, i2-1, n1, n2), row(ud, i3, i2, n1, n2), row(ud, i3, i2+1, n1, n2)
			uPM, uPZ, uPP := row(ud, i3+1, i2-1, n1, n2), row(ud, i3+1, i2, n1, n2), row(ud, i3+1, i2+1, n1, n2)
			rZZ, vZZ := row(rd, i3, i2, n1, n2), row(vd, i3, i2, n1, n2)
			for i1 := 0; i1 < n2; i1++ {
				u1[i1] = uZM[i1] + uZP[i1] + uMZ[i1] + uPZ[i1]
				u2[i1] = uMM[i1] + uMP[i1] + uPM[i1] + uPP[i1]
			}
			for i1 := 1; i1 < n2-1; i1++ {
				rZZ[i1] = vZZ[i1] -
					a0*uZZ[i1] -
					a2*(u2[i1]+u1[i1-1]+u1[i1+1]) -
					a3*(u2[i1-1]+u2[i1+1])
			}
		}
	}
}

// psinv computes u += S·r over the box interior and refreshes u's halo.
func (st *rankState) psinv(r, u *array.Array) {
	st.fusedComm3(u, func(lo, hi int) { st.psinvPlanes(r, u, lo, hi) })
}

// psinvPlanes computes u's planes [lo, hi] (inclusive); see residPlanes.
func (st *rankState) psinvPlanes(r, u *array.Array, lo, hi int) {
	shp := u.Shape()
	n1, n2 := shp[1], shp[2]
	rd, ud := r.Data(), u.Data()
	c0, c1, c2 := st.cs[0], st.cs[1], st.cs[2]
	r1 := make([]float64, n2)
	r2 := make([]float64, n2)
	for i3 := lo; i3 <= hi; i3++ {
		for i2 := 1; i2 < n1-1; i2++ {
			rMM, rMZ, rMP := row(rd, i3-1, i2-1, n1, n2), row(rd, i3-1, i2, n1, n2), row(rd, i3-1, i2+1, n1, n2)
			rZM, rZZ, rZP := row(rd, i3, i2-1, n1, n2), row(rd, i3, i2, n1, n2), row(rd, i3, i2+1, n1, n2)
			rPM, rPZ, rPP := row(rd, i3+1, i2-1, n1, n2), row(rd, i3+1, i2, n1, n2), row(rd, i3+1, i2+1, n1, n2)
			uZZ := row(ud, i3, i2, n1, n2)
			for i1 := 0; i1 < n2; i1++ {
				r1[i1] = rZM[i1] + rZP[i1] + rMZ[i1] + rPZ[i1]
				r2[i1] = rMM[i1] + rMP[i1] + rPM[i1] + rPP[i1]
			}
			for i1 := 1; i1 < n2-1; i1++ {
				uZZ[i1] = uZZ[i1] +
					c0*rZZ[i1] +
					c1*(rZZ[i1-1]+rZZ[i1+1]+r1[i1]) +
					c2*(r2[i1]+r1[i1-1]+r1[i1+1])
			}
		}
	}
}

// rprj3 restricts the fine box rk to the coarse box rj. Box alignment
// makes the cell mapping local along every axis: coarse local (j3,j2,j1)
// sits under fine local (2j3, 2j2, 2j1).
func (st *rankState) rprj3(rk, rj *array.Array) {
	st.fusedComm3(rj, func(lo, hi int) { st.rprj3Planes(rk, rj, lo, hi) })
}

// rprj3Planes computes rj's coarse planes [lo, hi] (inclusive); see
// residPlanes.
func (st *rankState) rprj3Planes(rk, rj *array.Array, lo, hi int) {
	fs, cs := rk.Shape(), rj.Shape()
	fn1, fn2 := fs[1], fs[2]
	cn1, cn2 := cs[1], cs[2]
	rd, sd := rk.Data(), rj.Data()
	x1 := make([]float64, fn2)
	y1 := make([]float64, fn2)
	for j3 := lo; j3 <= hi; j3++ {
		i3 := 2 * j3
		for j2 := 1; j2 < cn1-1; j2++ {
			i2 := 2 * j2
			rMM, rMZ, rMP := row(rd, i3-1, i2-1, fn1, fn2), row(rd, i3-1, i2, fn1, fn2), row(rd, i3-1, i2+1, fn1, fn2)
			rZM, rZZ, rZP := row(rd, i3, i2-1, fn1, fn2), row(rd, i3, i2, fn1, fn2), row(rd, i3, i2+1, fn1, fn2)
			rPM, rPZ, rPP := row(rd, i3+1, i2-1, fn1, fn2), row(rd, i3+1, i2, fn1, fn2), row(rd, i3+1, i2+1, fn1, fn2)
			sRow := row(sd, j3, j2, cn1, cn2)
			for f := 1; f < fn2; f += 2 {
				x1[f] = rZM[f] + rZP[f] + rMZ[f] + rPZ[f]
				y1[f] = rMM[f] + rPM[f] + rMP[f] + rPP[f]
			}
			for j1 := 1; j1 < cn2-1; j1++ {
				f := 2 * j1
				y2 := rMM[f] + rPM[f] + rMP[f] + rPP[f]
				x2 := rZM[f] + rZP[f] + rMZ[f] + rPZ[f]
				sRow[j1] = 0.5*rZZ[f] +
					0.25*(rZZ[f-1]+rZZ[f+1]+x2) +
					0.125*(x1[f-1]+x1[f+1]+y2) +
					0.0625*(y1[f-1]+y1[f+1])
			}
		}
	}
}

// interpKernel adds the trilinear prolongation of the coarse boxes
// [lo, lo+count] (inclusive, per axis) of z onto the fine box u, writing
// fine cells 2·(c−lo) and 2·(c−lo)+1 along every axis. It serves the
// box-to-box case (lo = 0, count = coarse interior extent) and the
// agglomeration boundary (z the full grid, lo = this rank's coarse
// offset).
func interpKernel(z, u *array.Array, lo, count [3]int) {
	interpPlanes(z, u, lo, count, lo[0], lo[0]+count[0])
}

// interpPlanes prolongs the coarse planes [p0, p1] (inclusive, a
// sub-range of lo[0]..lo[0]+count[0]) of z onto u. Each coarse plane
// writes only its own pair of fine planes, so disjoint ranges may run on
// concurrent workers; fine plane anchoring stays relative to lo[0]
// regardless of the sub-range.
func interpPlanes(z, u *array.Array, lo, count [3]int, p0, p1 int) {
	zs, us := z.Shape(), u.Shape()
	zn1, zn2 := zs[1], zs[2]
	un1, un2 := us[1], us[2]
	zd, ud := z.Data(), u.Data()
	z1 := make([]float64, zn2)
	z2 := make([]float64, zn2)
	z3 := make([]float64, zn2)
	kLo, kHi := lo[2], lo[2]+count[2] // coarse cells along the row axis
	for c3 := p0; c3 <= p1; c3++ {
		f3 := 2 * (c3 - lo[0])
		for c2 := lo[1]; c2 <= lo[1]+count[1]; c2++ {
			f2 := 2 * (c2 - lo[1])
			zB, zJ := row(zd, c3, c2, zn1, zn2), row(zd, c3, c2+1, zn1, zn2)
			zK, zJK := row(zd, c3+1, c2, zn1, zn2), row(zd, c3+1, c2+1, zn1, zn2)
			// The fine row reads z1..z3 at b and b+1, so fill one past kHi.
			for b := kLo; b <= kHi+1; b++ {
				z1[b] = zJ[b] + zB[b]
				z2[b] = zK[b] + zB[b]
				z3[b] = zJK[b] + zK[b] + z1[b]
			}
			u00, u01 := row(ud, f3, f2, un1, un2), row(ud, f3, f2+1, un1, un2)
			u10, u11 := row(ud, f3+1, f2, un1, un2), row(ud, f3+1, f2+1, un1, un2)
			for b := kLo; b <= kHi; b++ {
				fb := 2 * (b - kLo)
				u00[fb] += zB[b]
				u00[fb+1] += 0.5 * (zB[b+1] + zB[b])
			}
			for b := kLo; b <= kHi; b++ {
				fb := 2 * (b - kLo)
				u01[fb] += 0.5 * z1[b]
				u01[fb+1] += 0.25 * (z1[b] + z1[b+1])
			}
			for b := kLo; b <= kHi; b++ {
				fb := 2 * (b - kLo)
				u10[fb] += 0.5 * z2[b]
				u10[fb+1] += 0.25 * (z2[b] + z2[b+1])
			}
			for b := kLo; b <= kHi; b++ {
				fb := 2 * (b - kLo)
				u11[fb] += 0.25 * z3[b]
				u11[fb+1] += 0.125 * (z3[b] + z3[b+1])
			}
		}
	}
}

// interpBox prolongs the coarse box z onto the fine box u (coarse local
// cell c under fine local 2c along every axis, covering the fine halos).
func (st *rankState) interpBox(z, u *array.Array) {
	zs := z.Shape()
	st.interp(z, u, [3]int{0, 0, 0}, [3]int{zs[0] - 2, zs[1] - 2, zs[2] - 2})
}

// boundaryInterp prolongs the (broadcast) full coarse grid onto this
// rank's fine box.
func (st *rankState) boundaryInterp(zFull, u *array.Array) {
	us := u.Shape()
	var lo, count [3]int
	for a := 0; a < 3; a++ {
		lpf := us[a] - 2
		lo[a] = st.coord[a] * lpf / 2
		count[a] = lpf / 2
	}
	st.interp(zFull, u, lo, count)
}

// interp fans the prolongation's coarse-plane loop over the rank's pool.
func (st *rankState) interp(z, u *array.Array, lo, count [3]int) {
	st.forPlanes(lo[0], lo[0]+count[0], func(p0, p1 int) {
		interpPlanes(z, u, lo, count, p0, p1)
	})
}

// --- driver -----------------------------------------------------------------------

// reset rebuilds the initial state: rank 0 evaluates zran3 on the full
// finest grid and scatters the sub-boxes.
func (st *rankState) reset() {
	for l := st.lcd; l <= st.lt; l++ {
		st.u[l].Zero()
		st.r[l].Zero()
	}
	for _, a := range st.uFull {
		a.Zero()
	}
	for _, a := range st.rFull {
		a.Zero()
	}
	if st.c.Rank() == 0 {
		full := array.New(st.class.ExtShape(st.lt))
		nas.Zran3(full, st.class.N)
		st.scatterFromRoot(st.lt, full, st.v)
	} else {
		st.scatterFromRoot(st.lt, nil, st.v)
	}
	st.comm3(st.v)
}

// mg3P is one V-cycle across the distributed and agglomerated levels.
// With a tracer attached every kernel call is also emitted as a
// per-level span (restrict at the target coarse level, prolong at the
// target fine level, matching the single-process tracer's naming), so
// the comm report can attribute compute vs blocked time per level.
func (st *rankState) mg3P() {
	lt, lcd := st.lt, st.lcd
	for l := lt; l > lcd; l-- {
		st.kspan("fine2coarse", l-1, func() { st.rprj3(st.r[l], st.r[l-1]) })
	}
	if lcd > 1 {
		st.gatherToRoot(lcd, st.r[lcd], st.rFull[lcd])
		if st.c.Rank() == 0 {
			st.serialDownUp()
		}
		zFull := st.broadcastFull(st.uFull[lcd-1], lcd-1)
		if lcd == lt {
			st.kspan("coarse2fine", lcd, func() { st.boundaryInterp(zFull, st.u[lcd]) })
			st.kspan("resid", lcd, func() { st.resid(st.u[lcd], st.v, st.r[lcd]) })
		} else {
			st.u[lcd].Zero()
			st.kspan("coarse2fine", lcd, func() { st.boundaryInterp(zFull, st.u[lcd]) })
			st.kspan("resid", lcd, func() { st.resid(st.u[lcd], st.r[lcd], st.r[lcd]) })
		}
		st.kspan("smooth", lcd, func() { st.psinv(st.r[lcd], st.u[lcd]) })
	} else {
		st.u[1].Zero()
		st.kspan("smooth", 1, func() { st.psinv(st.r[1], st.u[1]) })
	}
	for l := lcd + 1; l <= lt-1; l++ {
		st.u[l].Zero()
		st.kspan("coarse2fine", l, func() { st.interpBox(st.u[l-1], st.u[l]) })
		st.kspan("resid", l, func() { st.resid(st.u[l], st.r[l], st.r[l]) })
		st.kspan("smooth", l, func() { st.psinv(st.r[l], st.u[l]) })
	}
	if lt > lcd {
		st.kspan("coarse2fine", lt, func() { st.interpBox(st.u[lt-1], st.u[lt]) })
		st.kspan("resid", lt, func() { st.resid(st.u[lt], st.v, st.r[lt]) })
		st.kspan("smooth", lt, func() { st.psinv(st.r[lt], st.u[lt]) })
	}
}

// serialDownUp runs the agglomerated part of the V-cycle on rank 0.
func (st *rankState) serialDownUp() {
	st.serialComm = true
	defer func() { st.serialComm = false }()
	lcd := st.lcd
	for l := lcd; l >= 2; l-- {
		st.kspan("fine2coarse", l-1, func() { st.rprj3(st.rFull[l], st.rFull[l-1]) })
	}
	st.uFull[1].Zero()
	st.kspan("smooth", 1, func() { st.psinv(st.rFull[1], st.uFull[1]) })
	for l := 2; l <= lcd-1; l++ {
		st.uFull[l].Zero()
		st.kspan("coarse2fine", l, func() { st.interpBox(st.uFull[l-1], st.uFull[l]) })
		st.kspan("resid", l, func() { st.resid(st.uFull[l], st.rFull[l], st.rFull[l]) })
		st.kspan("smooth", l, func() { st.psinv(st.rFull[l], st.uFull[l]) })
	}
}

// evalResid recomputes the finest-level residual.
func (st *rankState) evalResid() {
	st.resid(st.u[st.lt], st.v, st.r[st.lt])
}

// norms computes the NPB norms over the distributed finest grid in the
// canonical plane association of nas.Norm2u3Planes: a running
// left-to-right sum per row, rows folded ascending into per-plane
// partials, plane partials folded in ascending global plane order. Each
// rank computes the partials of its own planes and sends them (plus its
// local max) to rank 0, which accumulates per-global-plane totals in rank
// order, folds the planes ascending, and broadcasts the result. For a
// slab decomposition every global plane has exactly one contributor, so
// the grand total is bit-identical to the serial Norm2u3Planes for every
// rank count; 3-D grids split planes across ranks and are merely
// deterministic. One rank short-circuits all communication.
func (st *rankState) norms() (rnm2, rnmu float64) {
	r := st.r[st.lt]
	shp := r.Shape()
	d := r.Data()
	lp := shp[0] - 2 // planes owned along the decomposed axis 0
	planes := make([]float64, lp, lp+1)
	planeMax := make([]float64, lp)
	// Per-plane partials may run on concurrent workers: each plane writes
	// its own slot, and the serial folds below (ascending planes for the
	// sum, any order for the max) keep the canonical association.
	st.forPlanes(1, lp, func(lo, hi int) {
		for i3 := lo; i3 <= hi; i3++ {
			var planeSum, planeAbs float64
			for i2 := 1; i2 < shp[1]-1; i2++ {
				base := (i3*shp[1] + i2) * shp[2]
				var rowSum float64
				for i1 := 1; i1 < shp[2]-1; i1++ {
					v := d[base+i1]
					rowSum += v * v
					if a := math.Abs(v); a > planeAbs {
						planeAbs = a
					}
				}
				planeSum += rowSum
			}
			planes[i3-1] = planeSum
			planeMax[i3-1] = planeAbs
		}
	})
	var maxAbs float64
	for _, m := range planeMax {
		if m > maxAbs {
			maxAbs = m
		}
	}
	total := float64(st.class.N)
	total = total * total * total
	st.setCommLevel(st.lt)
	if st.c.Size() == 1 {
		var sum float64
		for _, p := range planes {
			sum += p
		}
		return math.Sqrt(sum / total), maxAbs
	}
	if st.c.Rank() != 0 {
		st.c.Send(0, tagNorm, append(planes, maxAbs))
		res := st.c.Broadcast(tagNorm, 0, nil)
		return res[0], res[1]
	}
	planeTot := make([]float64, 1<<st.lt)
	addPlanes := func(rank int, part []float64) {
		g0 := rank / (st.procs[1] * st.procs[2]) * st.local(st.lt, 0)
		for i, p := range part {
			planeTot[g0+i] += p
		}
	}
	addPlanes(0, planes)
	for src := 1; src < st.c.Size(); src++ {
		payload := st.c.Recv(src, tagNorm)
		addPlanes(src, payload[:len(payload)-1])
		if m := payload[len(payload)-1]; m > maxAbs {
			maxAbs = m
		}
	}
	var sum float64
	for _, p := range planeTot {
		sum += p
	}
	rnm2 = math.Sqrt(sum / total)
	st.c.Broadcast(tagNorm, 0, []float64{rnm2, maxAbs})
	return rnm2, maxAbs
}
