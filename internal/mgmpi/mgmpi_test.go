package mgmpi

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/f77"
	"repro/internal/metrics"
	"repro/internal/nas"
)

// One rank must reproduce the serial Fortran port's grids bit for bit:
// the slab kernels are the same statements and the "ring" degenerates to
// the serial periodic copies. The norm reduction uses the canonical plane
// association, so rnm2 equals Norm2u3Planes over f77's residual grid
// exactly (and rnmu equals f77's outright — max has no association).
func TestSingleRankBitIdenticalToF77(t *testing.T) {
	ref := f77.New(nas.ClassS)
	_, wantU := ref.Run()
	want, _ := nas.Norm2u3Planes(ref.R(), nas.ClassS.N)
	s := New(nas.ClassS, 1)
	got, gotU := s.Run()
	if got != want {
		t.Fatalf("1-rank mgmpi rnm2 = %.17e, Norm2u3Planes(f77 residual) %.17e", got, want)
	}
	if gotU != wantU {
		t.Fatalf("1-rank mgmpi rnmu = %.17e, f77 %.17e", gotU, wantU)
	}
	if s.Stats().Messages != 0 {
		t.Fatalf("1-rank run sent %d messages", s.Stats().Messages)
	}
}

// Multi-rank slab runs verify officially and reproduce the 1-rank norms
// bit for bit: every global plane is owned by one rank, so the
// plane-ordered reduction is invariant under the rank count.
func TestMultiRankVerifies(t *testing.T) {
	want, wantU := New(nas.ClassS, 1).Run()
	for _, ranks := range []int{2, 4, 8, 16} {
		s := New(nas.ClassS, ranks)
		got, gotU := s.Run()
		if verified, ok := nas.ClassS.Verify(got); !ok || !verified {
			t.Fatalf("%d ranks: rnm2 = %.13e did not verify", ranks, got)
		}
		if got != want {
			t.Fatalf("%d ranks: rnm2 = %.17e vs 1 rank %.17e", ranks, got, want)
		}
		if gotU != wantU {
			t.Fatalf("%d ranks: rnmu = %.17e vs 1 rank %.17e", ranks, gotU, wantU)
		}
	}
}

func TestMultiRankClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W skipped in -short")
	}
	s := New(nas.ClassW, 4)
	rnm2, _ := s.Run()
	if verified, ok := nas.ClassW.Verify(rnm2); !ok || !verified {
		want, _, _ := nas.ClassW.VerifyValue()
		t.Fatalf("4-rank class W rnm2 = %.13e, want %.13e", rnm2, want)
	}
}

// Determinism: repeated runs produce identical results (deterministic
// collectives and FIFO messaging).
func TestRunsDeterministic(t *testing.T) {
	s := New(nas.ClassS, 4)
	a, _ := s.Run()
	b, _ := s.Run()
	if a != b {
		t.Fatalf("two runs differ: %v vs %v", a, b)
	}
}

// Communication structure: every rank sends the same number of halo
// messages (the decomposition is symmetric), and the total volume scales
// with the surface area, not the volume, of the slabs.
func TestCommunicationStructure(t *testing.T) {
	s := New(nas.ClassS, 4)
	s.Run()
	per := s.RankStats()
	// Ranks 1..N-1 are symmetric; rank 0 additionally scatters zran3,
	// gathers the agglomerated level and broadcasts its solution.
	if per[1].Messages != per[2].Messages || per[2].Messages != per[3].Messages {
		t.Fatalf("non-root ranks asymmetric: %+v", per)
	}
	if per[0].Messages <= per[1].Messages {
		t.Fatalf("root rank should send extra agglomeration traffic: %+v", per)
	}
	total := s.Stats()
	if total.Messages == 0 || total.Bytes == 0 {
		t.Fatal("no communication recorded")
	}
	// Surface scaling: each halo message carries one plane, ~(n+2)² values.
	n := nas.ClassS.N
	planeBytes := uint64((n+2)*(n+2)) * 8
	if total.Bytes < planeBytes {
		t.Fatalf("implausibly small traffic: %d bytes", total.Bytes)
	}
}

// More ranks exchange more, smaller messages; the per-rank volume drops.
func TestPerRankVolumeDropsWithRanks(t *testing.T) {
	vol := map[int]uint64{}
	for _, ranks := range []int{2, 8} {
		s := New(nas.ClassS, ranks)
		s.Run()
		max := uint64(0)
		for _, st := range s.RankStats()[1:] { // skip the root's extra traffic
			if st.Bytes > max {
				max = st.Bytes
			}
		}
		vol[ranks] = max
	}
	if vol[8] >= vol[2] {
		t.Fatalf("per-rank halo volume did not drop: 2 ranks %d bytes, 8 ranks %d bytes",
			vol[2], vol[8])
	}
}

func TestInvalidRanksPanics(t *testing.T) {
	for _, ranks := range []int{0, 3, 5, nas.ClassS.N} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ranks=%d did not panic", ranks)
				}
			}()
			New(nas.ClassS, ranks)
		}()
	}
}

func BenchmarkClassS4Ranks(b *testing.B) {
	s := New(nas.ClassS, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run()
	}
}

// True 3-D processor grids: every decomposition of the same world size
// verifies officially and matches the serial norms far beyond tolerance.
func Test3DDecompositionsVerify(t *testing.T) {
	ref := f77.New(nas.ClassS)
	want, wantU := ref.Run()
	grids := [][3]int{
		{2, 2, 1}, {1, 2, 2}, {2, 1, 2}, // 4 ranks, 2-D decompositions
		{2, 2, 2},            // 8 ranks, full 3-D
		{4, 2, 1}, {1, 4, 2}, // mixed extents
		{4, 4, 4}, // 64 ranks
	}
	for _, g := range grids {
		s := New3D(nas.ClassS, g[0], g[1], g[2])
		got, gotU := s.Run()
		if verified, ok := nas.ClassS.Verify(got); !ok || !verified {
			t.Fatalf("grid %v: rnm2 = %.13e did not verify", g, got)
		}
		if rel := math.Abs(got-want) / want; rel > 1e-12 {
			t.Fatalf("grid %v: rnm2 = %.15e vs serial %.15e (rel %.2e)", g, got, want, rel)
		}
		if gotU != wantU {
			t.Fatalf("grid %v: rnmu = %.17e vs serial %.17e", g, gotU, wantU)
		}
	}
}

// Decomposing different axes of the same world size yields identical
// interior arithmetic: the norms agree across orientations bitwise (the
// kernels sweep the same global cells; only the reduction blocking could
// differ, and for equal rank counts it does not).
func Test3DOrientationConsistency(t *testing.T) {
	a, aU := New3D(nas.ClassS, 4, 1, 1).Run()
	b, bU := New3D(nas.ClassS, 1, 1, 4).Run()
	if aU != bU {
		t.Fatalf("rnmu differs across orientations: %.17e vs %.17e", aU, bU)
	}
	if rel := math.Abs(a-b) / a; rel > 1e-13 {
		t.Fatalf("rnm2 differs across orientations: %.17e vs %.17e", a, b)
	}
}

// 3-D decompositions communicate less volume than 1-D at the same rank
// count (surface-to-volume: cubes beat slabs).
func Test3DCommunicatesLessThan1D(t *testing.T) {
	slab := New3D(nas.ClassS, 8, 1, 1)
	slab.Run()
	cube := New3D(nas.ClassS, 2, 2, 2)
	cube.Run()
	if cube.Stats().Bytes >= slab.Stats().Bytes {
		t.Fatalf("3-D volume %d >= 1-D volume %d bytes", cube.Stats().Bytes, slab.Stats().Bytes)
	}
	t.Logf("8 ranks: slab %d bytes, cube %d bytes (%.0f%% saved)",
		slab.Stats().Bytes, cube.Stats().Bytes,
		100*(1-float64(cube.Stats().Bytes)/float64(slab.Stats().Bytes)))
}

func Test3DClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W skipped in -short")
	}
	s := New3D(nas.ClassW, 2, 2, 2)
	rnm2, _ := s.Run()
	if verified, ok := nas.ClassW.Verify(rnm2); !ok || !verified {
		want, _, _ := nas.ClassW.VerifyValue()
		t.Fatalf("(2,2,2) class W rnm2 = %.13e, want %.13e", rnm2, want)
	}
}

func TestNew3DValidation(t *testing.T) {
	for _, g := range [][3]int{{3, 1, 1}, {0, 1, 1}, {1, 1, nas.ClassS.N}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("grid %v did not panic", g)
				}
			}()
			New3D(nas.ClassS, g[0], g[1], g[2])
		}()
	}
}

// A traced multi-rank run must tag every span with its emitting rank (so
// the Perfetto conversion can split ranks into processes), emit one iter
// marker per V-cycle and a single rank-0 solve event, and still verify.
func TestRankTaggedTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := metrics.NewTracer(&buf)
	s := New(nas.ClassS, 4)
	s.Trace = tr
	rnm2, _ := s.Run()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if verified, ok := nas.ClassS.Verify(rnm2); !ok || !verified {
		t.Fatalf("traced run did not verify: rnm2 = %.13e", rnm2)
	}
	events, err := metrics.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spanKernels := map[string]bool{
		"resid": true, "mg3P": true,
		"smooth": true, "fine2coarse": true, "coarse2fine": true,
	}
	ranks := map[int]int{}    // phase spans (resid at LT outside kspan + mg3P)
	perLevel := map[int]int{} // per-level kernel spans
	var iters, solves int
	var solveRnm2 float64
	for _, e := range events {
		switch e.Ev {
		case "span":
			if !spanKernels[e.Kernel] {
				t.Fatalf("unexpected span kernel %q", e.Kernel)
			}
			if e.Kernel == "mg3P" || (e.Kernel == "resid" && e.Level == nas.ClassS.LT()) {
				ranks[e.Rank]++
			}
			if e.Kernel != "mg3P" {
				perLevel[e.Level]++
			}
		case "iter":
			iters++
		case "solve":
			solves++
			solveRnm2 = e.Rnm2
			if e.Rank != 0 {
				t.Fatalf("solve event from rank %d, want 0", e.Rank)
			}
		}
	}
	if len(ranks) != 4 {
		t.Fatalf("spans from %d ranks, want 4: %v", len(ranks), ranks)
	}
	// Per rank, phase spans at the finest level: 1 initial resid +
	// Iter × (mg3P + final resid + the in-cycle finest resid kspan).
	want := 1 + 3*nas.ClassS.Iter
	for r, n := range ranks {
		if n != want {
			t.Fatalf("rank %d emitted %d finest-level phase spans, want %d", r, n, want)
		}
	}
	// The per-level kernel spans must cover every level of the hierarchy.
	for l := 1; l <= nas.ClassS.LT(); l++ {
		if perLevel[l] == 0 {
			t.Fatalf("no kernel spans at level %d: %v", l, perLevel)
		}
	}
	if iters != nas.ClassS.Iter || solves != 1 {
		t.Fatalf("iters=%d solves=%d, want %d/1", iters, solves, nas.ClassS.Iter)
	}
	if solveRnm2 != rnm2 {
		t.Fatalf("solve event rnm2 %.17e != returned %.17e", solveRnm2, rnm2)
	}
}

// TestCommEventsMatchStats runs a traced 4-rank channel world and checks
// the send/recv events against the transport's own counters: per rank,
// send events equal Stats().Messages, and globally every send pairs with
// exactly one recv under the (src, dst, tag, seq) key — the invariant
// the distributed observability layer (DESIGN.md §3.5) rests on.
func TestCommEventsMatchStats(t *testing.T) {
	var buf bytes.Buffer
	tr := metrics.NewTracer(&buf)
	s := New(nas.ClassS, 4)
	s.Trace = tr
	rnm2, _ := s.Run()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if verified, ok := nas.ClassS.Verify(rnm2); !ok || !verified {
		t.Fatalf("traced run did not verify: rnm2 = %.13e", rnm2)
	}
	events, err := metrics.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	type pairKey struct {
		src, dst, tag int
		seq           uint64
	}
	sendsByRank := map[int]uint64{}
	recvsByRank := map[int]uint64{}
	sends := map[pairKey]int{}
	recvs := map[pairKey]int{}
	for _, e := range events {
		switch e.Ev {
		case "send":
			sendsByRank[e.Rank]++
			sends[pairKey{e.Rank, e.Peer, e.Tag, e.Seq}]++
			if e.Bytes <= 0 {
				t.Fatalf("send event with %d bytes", e.Bytes)
			}
			if e.Level < 1 || e.Level > nas.ClassS.LT() {
				t.Fatalf("send event at implausible level %d", e.Level)
			}
		case "recv":
			recvsByRank[e.Rank]++
			recvs[pairKey{e.Peer, e.Rank, e.Tag, e.Seq}]++
		}
	}
	for rank, st := range s.RankStats() {
		if sendsByRank[rank] != st.Messages {
			t.Errorf("rank %d: %d send events != %d messages sent", rank, sendsByRank[rank], st.Messages)
		}
	}
	if len(sends) == 0 {
		t.Fatal("no send events in a 4-rank traced run")
	}
	for k, n := range sends {
		if n != 1 {
			t.Errorf("send key %+v seen %d times, want 1 (seq not unique)", k, n)
		}
		if recvs[k] != 1 {
			t.Errorf("send %+v matched by %d recvs, want 1", k, recvs[k])
		}
	}
	for k := range recvs {
		if sends[k] != 1 {
			t.Errorf("recv %+v has no matching send", k)
		}
	}
}

// TestTracedRunBitIdentical pins the acceptance requirement that
// observability never perturbs the arithmetic: per-iteration rnm2 with a
// tracer attached is bit-identical to the untraced run.
func TestTracedRunBitIdentical(t *testing.T) {
	collect := func(trace bool) []uint64 {
		s := New(nas.ClassS, 4)
		var tr *metrics.Tracer
		if trace {
			var buf bytes.Buffer
			tr = metrics.NewTracer(&buf)
			s.Trace = tr
		}
		var norms []uint64
		s.IterNorms = func(iter int, rnm2, rnmu float64) {
			norms = append(norms, math.Float64bits(rnm2))
		}
		rnm2, _ := s.Run()
		norms = append(norms, math.Float64bits(rnm2))
		if tr != nil {
			tr.Close()
		}
		return norms
	}
	plain := collect(false)
	traced := collect(true)
	if len(plain) != len(traced) {
		t.Fatalf("norm count mismatch: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("iter %d: traced rnm2 bits %016x != untraced %016x", i, traced[i], plain[i])
		}
	}
}

// TestDisabledObservabilityZeroAlloc pins the other half of the
// acceptance criterion: with no tracer the span/level helpers are inert
// — no observer, no closures reaching the heap, zero allocations.
func TestDisabledObservabilityZeroAlloc(t *testing.T) {
	st := &rankState{}
	sink := 0
	allocs := testing.AllocsPerRun(1000, func() {
		st.setCommLevel(5)
		st.kspan("resid", 5, func() { sink++ })
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkDisabledObservability(b *testing.B) {
	st := &rankState{}
	sink := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.setCommLevel(5)
		st.kspan("resid", 5, func() { sink++ })
	}
	_ = sink
}
