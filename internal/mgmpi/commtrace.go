// Distributed trace instrumentation: a Transport wrapper that emits one
// "send"/"recv" event per point-to-point call, tagged with enough context
// (rank, peer, tag, level, iteration, bytes, per-stream sequence number)
// for cmd/mgtrace to pair both sides of every exchange across merged
// per-rank trace files and align their clocks (DESIGN.md §3.5).
//
// The wrapper exists only while Solver.Trace is set; the untraced path
// never constructs it, so disabling observability costs nothing — the
// zero-alloc guarantee a benchmark in mgmpi_test.go pins.
package mgmpi

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/mpi"
)

// seqKey identifies one FIFO message stream from this rank's viewpoint:
// the remote rank and the tag.
type seqKey struct{ peer, tag int }

// commObserver wraps a Transport and emits a trace event per completed
// Send/Recv. Both transports guarantee per-(pair, direction) FIFO
// delivery, so numbering each (peer, tag) stream independently on both
// sides makes (src, dst, tag, seq) a globally unique pairing key: the
// n-th send on a stream is received by the n-th matching recv.
//
// level and iter are plain fields written by the owning rank's goroutine
// between communication phases (a rank's solve is single-threaded); the
// wrapper is NOT safe for concurrent use by multiple goroutines, matching
// the solver's use of its Comm.
//
// commObserver deliberately does not implement the optional Barrier
// method: the solver never calls Comm.Barrier, and hiding the inner
// transport's native barrier keeps the wrapper honest about what it can
// sequence-number (a native barrier would bypass Send/Recv accounting).
type commObserver struct {
	inner mpi.Transport
	tr    *metrics.Tracer
	rank  int
	level int
	iter  int

	sendSeq map[seqKey]uint64
	recvSeq map[seqKey]uint64
}

var _ mpi.Transport = (*commObserver)(nil)

func newCommObserver(inner mpi.Transport, tr *metrics.Tracer) *commObserver {
	return &commObserver{
		inner:   inner,
		tr:      tr,
		rank:    inner.Rank(),
		sendSeq: map[seqKey]uint64{},
		recvSeq: map[seqKey]uint64{},
	}
}

func (o *commObserver) Rank() int        { return o.inner.Rank() }
func (o *commObserver) Size() int        { return o.inner.Size() }
func (o *commObserver) Stats() mpi.Stats { return o.inner.Stats() }
func (o *commObserver) Close() error     { return o.inner.Close() }

func (o *commObserver) Send(dst, tag int, data []float64) error {
	start := time.Now()
	if err := o.inner.Send(dst, tag, data); err != nil {
		return err
	}
	k := seqKey{dst, tag}
	seq := o.sendSeq[k]
	o.sendSeq[k] = seq + 1
	o.tr.Emit(metrics.Event{
		Ev: "send", Rank: o.rank, Peer: dst, Tag: tag,
		Level: o.level, Iter: o.iter,
		Bytes: int64(8 * len(data)), Seq: seq,
		Nanos: int64(time.Since(start)),
	})
	return nil
}

func (o *commObserver) Recv(src, tag int) ([]float64, error) {
	start := time.Now()
	data, err := o.inner.Recv(src, tag)
	if err != nil {
		return nil, err
	}
	k := seqKey{src, tag}
	seq := o.recvSeq[k]
	o.recvSeq[k] = seq + 1
	o.tr.Emit(metrics.Event{
		Ev: "recv", Rank: o.rank, Peer: src, Tag: tag,
		Level: o.level, Iter: o.iter,
		Bytes: int64(8 * len(data)), Seq: seq,
		Nanos: int64(time.Since(start)),
	})
	return data, nil
}

// Isend emits its send event at post time — the message is on its way
// from here, and the pairing window against the matching recv must span
// the compute the caller overlaps, not collapse to the Wait. Nanos is
// the post call's own (near-zero) duration; the blocked tail lives in
// the transport's Wait-side accounting. The sequence number is taken at
// post, which is delivery order on a FIFO stream.
func (o *commObserver) Isend(dst, tag int, data []float64) mpi.Request {
	start := time.Now()
	req := o.inner.Isend(dst, tag, data)
	k := seqKey{dst, tag}
	seq := o.sendSeq[k]
	o.sendSeq[k] = seq + 1
	o.tr.Emit(metrics.Event{
		Ev: "send", Rank: o.rank, Peer: dst, Tag: tag,
		Level: o.level, Iter: o.iter,
		Bytes: int64(8 * len(data)), Seq: seq,
		Nanos: int64(time.Since(start)),
	})
	return req
}

// Irecv assigns the stream sequence number at post (post order is
// delivery order on a FIFO stream) but emits the recv event from the
// first Wait, when the payload — and its true size — exists. The event's
// Nanos is the time that Wait blocked: the exposed (non-overlapped) part
// of the exchange, which is exactly what the overlap report should see.
func (o *commObserver) Irecv(src, tag int) mpi.Request {
	k := seqKey{src, tag}
	seq := o.recvSeq[k]
	o.recvSeq[k] = seq + 1
	return &tracedRecv{
		req: o.inner.Irecv(src, tag),
		o:   o, src: src, tag: tag, seq: seq,
		level: o.level, iter: o.iter,
	}
}

// tracedRecv wraps an Irecv request to emit the recv trace event exactly
// once, on the first successful Wait/Test. The level/iter context is
// captured at post time — the event must describe the phase that posted
// the receive, not whatever phase the solver is in when it waits.
type tracedRecv struct {
	req         mpi.Request
	o           *commObserver
	src, tag    int
	seq         uint64
	level, iter int
	emitted     bool
}

func (r *tracedRecv) emit(data []float64, err error, nanos int64) {
	if r.emitted || err != nil {
		return
	}
	r.emitted = true
	r.o.tr.Emit(metrics.Event{
		Ev: "recv", Rank: r.o.rank, Peer: r.src, Tag: r.tag,
		Level: r.level, Iter: r.iter,
		Bytes: int64(8 * len(data)), Seq: r.seq,
		Nanos: nanos,
	})
}

func (r *tracedRecv) Wait() ([]float64, error) {
	start := time.Now()
	data, err := r.req.Wait()
	r.emit(data, err, int64(time.Since(start)))
	return data, err
}

func (r *tracedRecv) Test() (bool, []float64, error) {
	done, data, err := r.req.Test()
	if done {
		r.emit(data, err, 0)
	}
	return done, data, err
}
