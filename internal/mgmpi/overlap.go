// Overlapped halo exchange: the interior/boundary plane split that hides
// comm3 behind compute (ROADMAP item 1, DESIGN.md §4.7), plus the pool
// fan-out that makes each rank a hybrid MPI×SMP worker.
//
// The synchronous path computes every plane, then exchanges faces. The
// overlap path reorders whole planes: boundary planes (the ones the
// exchange ships) compute first and go on the wire as nonblocking
// Isend/Irecv; the interior planes compute while the network drains; the
// Waits come last. Bit-identity holds because a plane's statements are
// identical under every schedule — only the order *between* planes moves,
// and no two planes overlap in their writes. The same argument covers the
// thread fan-out (disjoint plane ranges per worker) and the per-plane
// lateral halo copies (plane i3's copies touch only plane i3).
package mgmpi

import (
	"math/bits"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/sched"
)

// forPlanes runs f over the inclusive plane range [lo, hi], fanned over
// the rank's pool when one is attached (sub-ranges are disjoint, workers
// share nothing but the grid) and inline otherwise.
func (st *rankState) forPlanes(lo, hi int, f func(lo, hi int)) {
	n := hi - lo + 1
	if n <= 0 {
		return
	}
	if st.pool == nil || n == 1 {
		f(lo, hi)
		return
	}
	st.pool.For(n, sched.ForOptions{}, func(a, b, _ int) { f(lo+a, lo+b-1) })
}

// fusedComm3 runs a kernel's plane loop and the halo refresh of its
// output box a as one fused operation: the synchronous path computes all
// planes (pool fan-out) then calls comm3; the overlap path interleaves
// them. compute(lo, hi) must fill a's planes [lo, hi] (inclusive) and be
// safe for disjoint concurrent ranges.
func (st *rankState) fusedComm3(a *array.Array, compute func(lo, hi int)) {
	if st.overlapActive() {
		st.overlapComm3(a, compute)
		return
	}
	st.forPlanes(1, a.Shape()[0]-2, compute)
	st.comm3(a)
}

// overlapActive reports whether the nonblocking split applies: overlap
// selected, a genuinely distributed axis-0 exchange (slab decomposition,
// more than one rank), and not inside rank 0's agglomerated serial phase.
func (st *rankState) overlapActive() bool {
	return st.overlap && !st.serialComm && st.procs[0] > 1
}

// planeLocal refreshes the lateral (axis 2, then axis 1) periodic halos
// of the single plane i3 — exactly the plane-i3 slice of the synchronous
// comm3's local-copy steps, in the same axis order: axis-2 halo cells for
// the interior rows first, then the full boundary rows, whose corner
// cells read the axis-2 values just written.
func planeLocal(d []float64, n1, n2, i3 int) {
	for i2 := 1; i2 <= n1-2; i2++ {
		base := (i3*n1 + i2) * n2
		d[base] = d[base+n2-2]
		d[base+n2-1] = d[base+1]
	}
	copy(row(d, i3, 0, n1, n2), row(d, i3, n1-2, n1, n2))
	copy(row(d, i3, n1-1, n1, n2), row(d, i3, 1, n1, n2))
}

// plane3 returns the inclusive box of plane i3 at its full lateral
// extents — the payload of the axis-0 face exchange.
func plane3(i3, n1, n2 int) (lo, hi [3]int) {
	return [3]int{i3, 0, 0}, [3]int{i3, n1 - 1, n2 - 1}
}

// overlapComm3 is the fused compute + nonblocking exchange for a slab
// decomposition. Schedule:
//
//	compute boundary planes → refresh their lateral halos →
//	post Irecv (both halo planes) and Isend (both faces) →
//	compute + refresh the interior planes while the wire drains →
//	wait for the receives, unpack the halo planes, wait for the sends.
//
// The messages (peers, tags, payloads) are those of the synchronous
// comm3's axis-0 step; the lateral axes, undistributed in a slab, are
// refreshed by per-plane local copies. Blocked time lands in the
// requests' Waits, so the transport stats now show only the *exposed*
// part of the exchange — the quantity the overlap report gates on.
func (st *rankState) overlapComm3(a *array.Array, compute func(lo, hi int)) {
	shp := a.Shape()
	n1, n2 := shp[1], shp[2]
	d := a.Data()
	lp := shp[0] - 2
	if st.obs != nil {
		st.setCommLevel(bits.Len(uint(lp*st.procs[0])) - 1)
	}
	boundary, interior := core.SplitPlanes(shp[0])
	for _, i3 := range boundary {
		compute(i3, i3)
		planeLocal(d, n1, n2, i3)
	}
	up := st.neighbour(0, +1)
	down := st.neighbour(0, -1)
	tagHi := tagHaloBase     // my top face → up's low halo
	tagLo := tagHaloBase + 1 // my bottom face → down's high halo
	recvDown := st.c.Irecv(down, tagHi)
	recvUp := st.c.Irecv(up, tagLo)
	sLo, sHi := plane3(lp, n1, n2)
	sendUp := st.c.Isend(up, tagHi, packBox(d, n1, n2, sLo, sHi))
	sLo, sHi = plane3(1, n1, n2)
	sendDown := st.c.Isend(down, tagLo, packBox(d, n1, n2, sLo, sHi))
	if !interior.Empty() {
		st.forPlanes(interior.Lo, interior.Hi, func(lo, hi int) {
			compute(lo, hi)
			for i3 := lo; i3 <= hi; i3++ {
				planeLocal(d, n1, n2, i3)
			}
		})
	}
	rLo, rHi := plane3(0, n1, n2)
	unpackBox(d, n1, n2, rLo, rHi, recvDown.Wait())
	rLo, rHi = plane3(lp+1, n1, n2)
	unpackBox(d, n1, n2, rLo, rHi, recvUp.Wait())
	sendUp.Wait()
	sendDown.Wait()
}
