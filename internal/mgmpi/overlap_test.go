package mgmpi

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/nas"
)

// iterBits runs one configuration and returns the bit patterns of every
// intermediate and final rnm2 the solve reports.
func iterBits(t *testing.T, class nas.Class, ranks, threads int, overlap bool) []uint64 {
	t.Helper()
	s := New(class, ranks)
	s.Overlap = overlap
	s.Threads = threads
	var bits []uint64
	s.IterNorms = func(_ int, rnm2, _ float64) {
		bits = append(bits, math.Float64bits(rnm2))
	}
	rnm2, _ := s.Run()
	if verified, ok := class.Verify(rnm2); !ok || !verified {
		t.Fatalf("ranks=%d threads=%d overlap=%v: rnm2 %.13e did not verify",
			ranks, threads, overlap, rnm2)
	}
	return append(bits, math.Float64bits(rnm2))
}

// TestOverlapBitIdentical is the tentpole's differential acceptance
// test: the overlapped halo exchange and the hybrid thread fan-out are
// pure schedule changes, so every intermediate rnm2 must be bitwise
// identical to the synchronous single-threaded solve — across rank
// counts, thread counts, and both exchange modes.
func TestOverlapBitIdentical(t *testing.T) {
	want := iterBits(t, nas.ClassS, 1, 1, false)
	for _, ranks := range []int{1, 2, 4} {
		for _, threads := range []int{1, 2} {
			for _, overlap := range []bool{false, true} {
				name := fmt.Sprintf("ranks=%d threads=%d overlap=%v", ranks, threads, overlap)
				got := iterBits(t, nas.ClassS, ranks, threads, overlap)
				if len(got) != len(want) {
					t.Fatalf("%s: %d norms, want %d", name, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: norm %d = %016x, want %016x (not bit-identical)",
							name, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// The overlapped exchange ships exactly the synchronous exchange's
// messages — same count, same payload volume — it only moves when they
// are posted and waited.
func TestOverlapCommVolumeMatches(t *testing.T) {
	sync := New(nas.ClassS, 4)
	sync.Run()
	over := New(nas.ClassS, 4)
	over.Overlap = true
	over.Run()
	ss, os := sync.Stats(), over.Stats()
	if ss.Messages != os.Messages || ss.Bytes != os.Bytes {
		t.Fatalf("volume diverged: sync %d msgs/%d B, overlap %d msgs/%d B",
			ss.Messages, ss.Bytes, os.Messages, os.Bytes)
	}
	// Blocked time still decomposes exactly onto the per-peer rows:
	// overlap moves it into the Waits, it must not leak out of the stats.
	for rank, st := range over.RankStats() {
		if st.BlockedNanos() != st.ExchangeNanos {
			t.Errorf("rank %d: per-peer blocked %d != ExchangeNanos %d",
				rank, st.BlockedNanos(), st.ExchangeNanos)
		}
	}
}

// Overlap requires a slab decomposition: the interior/boundary split
// only hides the axis-0 exchange, so a 3-D processor grid must be
// rejected loudly, not silently run a half-overlapped solve.
func TestOverlapNonSlabPanics(t *testing.T) {
	s := New3D(nas.ClassS, 2, 2, 1)
	s.Overlap = true
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("overlap on a non-slab decomposition did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "slab") {
			t.Fatalf("panic %q does not name the slab requirement", msg)
		}
	}()
	s.Run()
}

// A traced overlap run keeps the observability invariants: the solve
// verifies, per rank the send events equal the transport's message
// count, and every send pairs with exactly one recv under the
// (src, dst, tag, seq) key — with send events stamped at post time and
// recv events at Wait.
func TestOverlapTracedPairing(t *testing.T) {
	var buf bytes.Buffer
	tr := metrics.NewTracer(&buf)
	s := New(nas.ClassS, 4)
	s.Overlap = true
	s.Trace = tr
	rnm2, _ := s.Run()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if verified, ok := nas.ClassS.Verify(rnm2); !ok || !verified {
		t.Fatalf("traced overlap run did not verify: rnm2 = %.13e", rnm2)
	}
	events, err := metrics.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	type pairKey struct {
		src, dst, tag int
		seq           uint64
	}
	sendsByRank := map[int]uint64{}
	sends := map[pairKey]int{}
	recvs := map[pairKey]int{}
	for _, e := range events {
		switch e.Ev {
		case "send":
			sendsByRank[e.Rank]++
			sends[pairKey{e.Rank, e.Peer, e.Tag, e.Seq}]++
		case "recv":
			recvs[pairKey{e.Peer, e.Rank, e.Tag, e.Seq}]++
		}
	}
	for rank, st := range s.RankStats() {
		if sendsByRank[rank] != st.Messages {
			t.Errorf("rank %d: %d send events != %d messages sent", rank, sendsByRank[rank], st.Messages)
		}
	}
	if len(sends) == 0 {
		t.Fatal("no send events in a traced overlap run")
	}
	for k, n := range sends {
		if n != 1 || recvs[k] != 1 {
			t.Errorf("send %+v seen %d times, matched by %d recvs (want 1/1)", k, n, recvs[k])
		}
	}
	for k := range recvs {
		if sends[k] != 1 {
			t.Errorf("recv %+v has no matching send", k)
		}
	}
}
