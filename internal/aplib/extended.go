// The wider SAC standard library. Beyond the functions of the paper's
// Fig. 10, the paper describes the array library as providing
// "element-wise extensions of arithmetic and relational operators, typical
// reduction operations like sum and product, various subarray selection
// facilities, as well as shift and rotate operations". This file fills in
// that catalogue: relational operators (boolean arrays are 0.0/1.0, as in
// APL), the remaining reductions, subarray selection (Tile), structural
// operations (Reshape, Transpose, Concat), and the APL staples Iota and
// Where. Everything is defined through the WITH-loop engine, so all of it
// is implicitly parallel and obeys the environment's optimization level.
package aplib

import (
	"fmt"
	"math"

	"repro/internal/array"
	"repro/internal/shape"
	wl "repro/internal/withloop"
)

// --- element-wise relational operators (APL booleans: 0.0 / 1.0) ---------------

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Eq returns the element-wise a == b indicator array.
func Eq(e *wl.Env, a, b *array.Array) *array.Array {
	return binary(e, "Eq", a, b, func(x, y float64) float64 { return boolVal(x == y) })
}

// Less returns the element-wise a < b indicator array.
func Less(e *wl.Env, a, b *array.Array) *array.Array {
	return binary(e, "Less", a, b, func(x, y float64) float64 { return boolVal(x < y) })
}

// LessEq returns the element-wise a <= b indicator array.
func LessEq(e *wl.Env, a, b *array.Array) *array.Array {
	return binary(e, "LessEq", a, b, func(x, y float64) float64 { return boolVal(x <= y) })
}

// Greater returns the element-wise a > b indicator array.
func Greater(e *wl.Env, a, b *array.Array) *array.Array {
	return binary(e, "Greater", a, b, func(x, y float64) float64 { return boolVal(x > y) })
}

// Where selects element-wise: cond ? a : b, where cond is an indicator
// array (non-zero selects a).
func Where(e *wl.Env, cond, a, b *array.Array) *array.Array {
	checkSameShape("Where", cond, a)
	checkSameShape("Where", a, b)
	if fused(e) {
		out := e.NewArrayDirty(a.Shape())
		od, cd, ad, bd := out.Data(), cond.Data(), a.Data(), b.Data()
		e.Sched.For(len(od), forOpts(e), func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				if cd[i] != 0 {
					od[i] = ad[i]
				} else {
					od[i] = bd[i]
				}
			}
		})
		return out
	}
	shp := a.Shape()
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
		if cond.At(iv) != 0 {
			return a.At(iv)
		}
		return b.At(iv)
	})
}

// Abs returns |a| element-wise.
func Abs(e *wl.Env, a *array.Array) *array.Array {
	shp := a.Shape()
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
		return math.Abs(a.At(iv))
	})
}

// Neg returns -a element-wise.
func Neg(e *wl.Env, a *array.Array) *array.Array { return Scale(e, -1, a) }

// --- reductions -----------------------------------------------------------------

// Product folds * over all elements (neutral element 1).
func Product(e *wl.Env, a *array.Array) float64 {
	if fused(e) {
		d := a.Data()
		return e.Sched.Reduce(len(d), forOpts(e), 1,
			func(lo, hi int) float64 {
				p := 1.0
				for i := lo; i < hi; i++ {
					p *= d[i]
				}
				return p
			}, func(x, y float64) float64 { return x * y })
	}
	shp := a.Shape()
	return e.Fold(shp, wl.Full(shp), func(x, y float64) float64 { return x * y }, 1,
		func(iv shape.Index) float64 { return a.At(iv) })
}

// MinVal folds min over all elements. Panics on an empty array (no finite
// neutral element is universal; SAC's minval has the same restriction).
func MinVal(e *wl.Env, a *array.Array) float64 {
	if a.Size() == 0 {
		panic("aplib: MinVal of an empty array")
	}
	shp := a.Shape()
	return e.Fold(shp, wl.Full(shp), math.Min, math.Inf(1),
		func(iv shape.Index) float64 { return a.At(iv) })
}

// MaxVal folds max over all elements. Panics on an empty array.
func MaxVal(e *wl.Env, a *array.Array) float64 {
	if a.Size() == 0 {
		panic("aplib: MaxVal of an empty array")
	}
	shp := a.Shape()
	return e.Fold(shp, wl.Full(shp), math.Max, math.Inf(-1),
		func(iv shape.Index) float64 { return a.At(iv) })
}

// All reports whether every element is non-zero (APL ∧/).
func All(e *wl.Env, a *array.Array) bool {
	shp := a.Shape()
	v := e.Fold(shp, wl.Full(shp), math.Min, 1,
		func(iv shape.Index) float64 { return boolVal(a.At(iv) != 0) })
	return v != 0
}

// Any reports whether at least one element is non-zero (APL ∨/).
func Any(e *wl.Env, a *array.Array) bool {
	shp := a.Shape()
	v := e.Fold(shp, wl.Full(shp), math.Max, 0,
		func(iv shape.Index) float64 { return boolVal(a.At(iv) != 0) })
	return v != 0
}

// SumAxis reduces a along one axis with +, producing an array of rank-1
// lower (the sum over rows/columns/planes).
func SumAxis(e *wl.Env, axis int, a *array.Array) *array.Array {
	if axis < 0 || axis >= a.Dim() {
		panic(fmt.Sprintf("aplib: SumAxis: axis %d out of range for rank %d", axis, a.Dim()))
	}
	inShp := a.Shape()
	outShp := make(shape.Shape, 0, a.Dim()-1)
	for j, ext := range inShp {
		if j != axis {
			outShp = append(outShp, ext)
		}
	}
	n := inShp[axis]
	return e.Genarray(outShp, wl.Full(outShp), func(iv shape.Index) float64 {
		full := make(shape.Index, a.Dim())
		copy(full[:axis], iv[:axis])
		copy(full[axis+1:], iv[axis:])
		s := 0.0
		for i := 0; i < n; i++ {
			full[axis] = i
			s += a.At(full)
		}
		return s
	})
}

// --- structural operations --------------------------------------------------------

// Reshape reinterprets a's elements (row-major order preserved) under a
// new shape of equal size.
func Reshape(e *wl.Env, shp shape.Shape, a *array.Array) *array.Array {
	if shp.Size() != a.Size() {
		panic(fmt.Sprintf("aplib: Reshape: %v (size %d) incompatible with %v (size %d)",
			shp, shp.Size(), a.Shape(), a.Size()))
	}
	out := e.NewArrayDirty(shp)
	copy(out.Data(), a.Data())
	return out
}

// Transpose permutes a's axes: out[iv] = a[iv permuted by perm], where
// axis j of the result is axis perm[j] of the argument. Transpose(e, nil, a)
// reverses the axes (the APL default).
func Transpose(e *wl.Env, perm []int, a *array.Array) *array.Array {
	rank := a.Dim()
	if perm == nil {
		perm = make([]int, rank)
		for j := range perm {
			perm[j] = rank - 1 - j
		}
	}
	if len(perm) != rank {
		panic(fmt.Sprintf("aplib: Transpose: permutation %v does not match rank %d", perm, rank))
	}
	seen := make([]bool, rank)
	for _, p := range perm {
		if p < 0 || p >= rank || seen[p] {
			panic(fmt.Sprintf("aplib: Transpose: %v is not a permutation of axes 0..%d", perm, rank-1))
		}
		seen[p] = true
	}
	inShp := a.Shape()
	outShp := make(shape.Shape, rank)
	for j := range perm {
		outShp[j] = inShp[perm[j]]
	}
	return e.Genarray(outShp, wl.Full(outShp), func(iv shape.Index) float64 {
		src := make(shape.Index, rank)
		for j, p := range perm {
			src[p] = iv[j]
		}
		return a.At(src)
	})
}

// Concat concatenates a and b along the given axis. All other extents
// must agree.
func Concat(e *wl.Env, axis int, a, b *array.Array) *array.Array {
	if a.Dim() != b.Dim() {
		panic(fmt.Sprintf("aplib: Concat: rank mismatch %d vs %d", a.Dim(), b.Dim()))
	}
	if axis < 0 || axis >= a.Dim() {
		panic(fmt.Sprintf("aplib: Concat: axis %d out of range for rank %d", axis, a.Dim()))
	}
	as, bs := a.Shape(), b.Shape()
	for j := range as {
		if j != axis && as[j] != bs[j] {
			panic(fmt.Sprintf("aplib: Concat: shapes %v and %v disagree off axis %d", as, bs, axis))
		}
	}
	outShp := as.Clone()
	outShp[axis] = as[axis] + bs[axis]
	split := as[axis]
	return e.Genarray(outShp, wl.Full(outShp), func(iv shape.Index) float64 {
		if iv[axis] < split {
			return a.At(iv)
		}
		saved := iv[axis]
		iv[axis] = saved - split
		v := b.At(iv)
		iv[axis] = saved
		return v
	})
}

// Tile extracts the rectangular sub-array of the given shape starting at
// pos — SAC's tile(shp, pos, a), the general subarray selection that Take
// and Drop are special cases of.
func Tile(e *wl.Env, shp shape.Shape, pos []int, a *array.Array) *array.Array {
	if shp.Rank() != a.Dim() || len(pos) != a.Dim() {
		panic(fmt.Sprintf("aplib: Tile: rank mismatch shp %v pos %v a %v", shp, pos, a.Shape()))
	}
	if !shape.AllLessEq(shape.Zeros(len(pos)), pos) ||
		!shape.AllLessEq(shape.Add(pos, []int(shp)), []int(a.Shape())) {
		panic(fmt.Sprintf("aplib: Tile: window %v at %v exceeds %v", shp, pos, a.Shape()))
	}
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
		return a.At(shape.Index(shape.Add([]int(iv), pos)))
	})
}

// Iota returns the rank-1 ramp [0, 1, ..., n-1] — APL's ι.
func Iota(e *wl.Env, n int) *array.Array {
	shp := shape.Of(n)
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
		return float64(iv[0])
	})
}
