package aplib

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/array"
	"repro/internal/shape"
	wl "repro/internal/withloop"
)

func TestRelationalOperators(t *testing.T) {
	e := wl.Default()
	a := array.FromSlice(shape.Of(4), []float64{1, 2, 3, 4})
	b := array.FromSlice(shape.Of(4), []float64{2, 2, 2, 2})
	if got := Eq(e, a, b); !got.Equal(array.FromSlice(shape.Of(4), []float64{0, 1, 0, 0})) {
		t.Fatalf("Eq = %v", got)
	}
	if got := Less(e, a, b); !got.Equal(array.FromSlice(shape.Of(4), []float64{1, 0, 0, 0})) {
		t.Fatalf("Less = %v", got)
	}
	if got := LessEq(e, a, b); !got.Equal(array.FromSlice(shape.Of(4), []float64{1, 1, 0, 0})) {
		t.Fatalf("LessEq = %v", got)
	}
	if got := Greater(e, a, b); !got.Equal(array.FromSlice(shape.Of(4), []float64{0, 0, 1, 1})) {
		t.Fatalf("Greater = %v", got)
	}
}

func TestWhere(t *testing.T) {
	for _, e := range testEnvs() {
		cond := array.FromSlice(shape.Of(4), []float64{1, 0, 1, 0})
		a := array.FromSlice(shape.Of(4), []float64{10, 20, 30, 40})
		b := array.FromSlice(shape.Of(4), []float64{-1, -2, -3, -4})
		want := array.FromSlice(shape.Of(4), []float64{10, -2, 30, -4})
		if got := Where(e, cond, a, b); !got.Equal(want) {
			t.Fatalf("env %v: Where = %v", e.Opt, got)
		}
	}
}

func TestWhereShapeMismatchPanics(t *testing.T) {
	e := wl.Default()
	defer func() {
		if recover() == nil {
			t.Error("Where with mismatched shapes did not panic")
		}
	}()
	Where(e, array.New(shape.Of(2)), array.New(shape.Of(2)), array.New(shape.Of(3)))
}

func TestAbsNeg(t *testing.T) {
	e := wl.Default()
	a := array.FromSlice(shape.Of(3), []float64{-1, 0, 2})
	if got := Abs(e, a); !got.Equal(array.FromSlice(shape.Of(3), []float64{1, 0, 2})) {
		t.Fatalf("Abs = %v", got)
	}
	if got := Neg(e, a); !got.Equal(array.FromSlice(shape.Of(3), []float64{1, 0, -2})) {
		t.Fatalf("Neg = %v", got)
	}
}

func TestProduct(t *testing.T) {
	for _, e := range testEnvs() {
		a := array.FromSlice(shape.Of(4), []float64{1, 2, 3, 4})
		if got := Product(e, a); got != 24 {
			t.Fatalf("env %v: Product = %v", e.Opt, got)
		}
	}
	// Empty array: the neutral element.
	if got := Product(wl.Default(), array.New(shape.Of(0))); got != 1 {
		t.Fatalf("Product of empty = %v", got)
	}
}

func TestMinMaxVal(t *testing.T) {
	e := wl.Default()
	a := array.FromSlice(shape.Of(2, 3), []float64{3, -1, 4, 1, -5, 9})
	if got := MinVal(e, a); got != -5 {
		t.Fatalf("MinVal = %v", got)
	}
	if got := MaxVal(e, a); got != 9 {
		t.Fatalf("MaxVal = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinVal of empty did not panic")
		}
	}()
	MinVal(e, array.New(shape.Of(0)))
}

func TestAllAny(t *testing.T) {
	e := wl.Default()
	ones := array.NewFilled(shape.Of(3), 1)
	mixed := array.FromSlice(shape.Of(3), []float64{1, 0, 1})
	zeros := array.New(shape.Of(3))
	if !All(e, ones) || All(e, mixed) || All(e, zeros) {
		t.Fatal("All wrong")
	}
	if !Any(e, ones) || !Any(e, mixed) || Any(e, zeros) {
		t.Fatal("Any wrong")
	}
}

func TestSumAxis(t *testing.T) {
	e := wl.Default()
	a := array.FromSlice(shape.Of(2, 3), []float64{1, 2, 3, 4, 5, 6})
	rows := SumAxis(e, 1, a) // sum each row
	if !rows.Equal(array.FromSlice(shape.Of(2), []float64{6, 15})) {
		t.Fatalf("SumAxis(1) = %v", rows)
	}
	cols := SumAxis(e, 0, a) // sum each column
	if !cols.Equal(array.FromSlice(shape.Of(3), []float64{5, 7, 9})) {
		t.Fatalf("SumAxis(0) = %v", cols)
	}
	defer func() {
		if recover() == nil {
			t.Error("SumAxis with bad axis did not panic")
		}
	}()
	SumAxis(e, 2, a)
}

// Property: SumAxis composed over all axes equals the scalar Sum.
func TestSumAxisTotalsQuick(t *testing.T) {
	e := wl.Default()
	f := func(vals [12]int8) bool {
		data := make([]float64, 12)
		for i, v := range vals {
			data[i] = float64(v)
		}
		a := array.FromSlice(shape.Of(3, 4), data)
		byRows := SumAxis(e, 0, a)
		total := SumAxis(e, 0, byRows)
		return math.Abs(total.At(shape.Index{})-Sum(e, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReshape(t *testing.T) {
	e := wl.Default()
	a := array.FromSlice(shape.Of(2, 3), []float64{1, 2, 3, 4, 5, 6})
	r := Reshape(e, shape.Of(3, 2), a)
	if r.At(shape.Index{0, 1}) != 2 || r.At(shape.Index{2, 1}) != 6 {
		t.Fatalf("Reshape order wrong: %v", r)
	}
	flat := Reshape(e, shape.Of(6), a)
	if flat.Dim() != 1 || flat.At(shape.Index{4}) != 5 {
		t.Fatal("Reshape to rank 1 wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("size-changing Reshape did not panic")
		}
	}()
	Reshape(e, shape.Of(5), a)
}

func TestTranspose(t *testing.T) {
	e := wl.Default()
	a := array.FromSlice(shape.Of(2, 3), []float64{1, 2, 3, 4, 5, 6})
	tr := Transpose(e, nil, a)
	if !tr.Shape().Equal(shape.Of(3, 2)) {
		t.Fatalf("Transpose shape = %v", tr.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(shape.Index{j, i}) != a.At(shape.Index{i, j}) {
				t.Fatal("Transpose values wrong")
			}
		}
	}
	// Identity permutation.
	id := Transpose(e, []int{0, 1}, a)
	if !id.Equal(a) {
		t.Fatal("identity Transpose changed the array")
	}
	// Rank-3 cyclic permutation: axis j of result = axis perm[j] of a.
	b := array.New(shape.Of(2, 3, 4))
	for i := range b.Data() {
		b.Data()[i] = float64(i)
	}
	cyc := Transpose(e, []int{1, 2, 0}, b)
	if !cyc.Shape().Equal(shape.Of(3, 4, 2)) {
		t.Fatalf("cyclic Transpose shape = %v", cyc.Shape())
	}
	if cyc.At(shape.Index{1, 2, 0}) != b.At(shape.Index{0, 1, 2}) {
		t.Fatal("cyclic Transpose values wrong")
	}
}

func TestTransposeBadPermPanics(t *testing.T) {
	e := wl.Default()
	a := array.New(shape.Of(2, 2))
	for _, perm := range [][]int{{0}, {0, 0}, {0, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Transpose(%v) did not panic", perm)
				}
			}()
			Transpose(e, perm, a)
		}()
	}
}

// Property: Transpose twice with the reverse permutation is the identity.
func TestTransposeInvolutionQuick(t *testing.T) {
	e := wl.Default()
	f := func(vals [6]int8) bool {
		data := make([]float64, 6)
		for i, v := range vals {
			data[i] = float64(v)
		}
		a := array.FromSlice(shape.Of(2, 3), data)
		return Transpose(e, nil, Transpose(e, nil, a)).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConcat(t *testing.T) {
	e := wl.Default()
	a := array.FromSlice(shape.Of(2, 2), []float64{1, 2, 3, 4})
	b := array.FromSlice(shape.Of(1, 2), []float64{5, 6})
	v := Concat(e, 0, a, b)
	if !v.Equal(array.FromSlice(shape.Of(3, 2), []float64{1, 2, 3, 4, 5, 6})) {
		t.Fatalf("Concat axis 0 = %v", v)
	}
	c := array.FromSlice(shape.Of(2, 1), []float64{9, 8})
	h := Concat(e, 1, a, c)
	if !h.Equal(array.FromSlice(shape.Of(2, 3), []float64{1, 2, 9, 3, 4, 8})) {
		t.Fatalf("Concat axis 1 = %v", h)
	}
}

func TestConcatPanics(t *testing.T) {
	e := wl.Default()
	a := array.New(shape.Of(2, 2))
	for name, f := range map[string]func(){
		"rank":     func() { Concat(e, 0, a, array.New(shape.Of(2))) },
		"axis":     func() { Concat(e, 5, a, a) },
		"mismatch": func() { Concat(e, 0, a, array.New(shape.Of(2, 3))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Concat %s case did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: Take and Drop are Tile special cases.
func TestTileGeneralizesTakeDropQuick(t *testing.T) {
	e := wl.Default()
	f := func(posRaw [3]uint8) bool {
		a := ramp3(5, 6, 7)
		pos := []int{int(posRaw[0] % 3), int(posRaw[1] % 3), int(posRaw[2] % 3)}
		size := shape.Of(2, 3, 4)
		tile := Tile(e, size, pos, a)
		// Tile(shp, 0, a) == Take(shp, a)
		if !Tile(e, size, []int{0, 0, 0}, a).Equal(Take(e, size, a)) {
			return false
		}
		// Tile(shape-pos, pos, a) == Drop(pos, a)
		rest := shape.Shape(shape.Sub([]int(a.Shape()), pos))
		if !Tile(e, rest, pos, a).Equal(Drop(e, pos, a)) {
			return false
		}
		// Window contents.
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				for k := 0; k < 4; k++ {
					if tile.At3(i, j, k) != a.At3(i+pos[0], j+pos[1], k+pos[2]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTilePanics(t *testing.T) {
	e := wl.Default()
	a := ramp3(4, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Tile did not panic")
		}
	}()
	Tile(e, shape.Of(3, 3, 3), []int{2, 2, 2}, a)
}

func TestIota(t *testing.T) {
	e := wl.Default()
	if got := Iota(e, 5); !got.Equal(array.FromSlice(shape.Of(5), []float64{0, 1, 2, 3, 4})) {
		t.Fatalf("Iota = %v", got)
	}
	if got := Iota(e, 0); got.Size() != 0 {
		t.Fatalf("Iota(0) size = %d", got.Size())
	}
}

// An APL-style one-liner built from the extended library: the mean of the
// positive elements, computed entirely with array operations.
func TestAPLStyleComposition(t *testing.T) {
	e := wl.Default()
	a := array.FromSlice(shape.Of(6), []float64{3, -1, 4, -1, 5, -9})
	pos := Greater(e, a, array.New(shape.Of(6))) // a > 0
	masked := Mul(e, a, pos)                     // a × (a > 0)
	mean := Sum(e, masked) / Sum(e, pos)         // Σmasked / Σmask
	if math.Abs(mean-4) > 1e-15 {                // (3+4+5)/3
		t.Fatalf("APL composition = %v, want 4", mean)
	}
}
