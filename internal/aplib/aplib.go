// Package aplib is the SAC array library: the APL-style compound array
// operations that SAC ships as ordinary library code rather than built-in
// primitives. The paper's Fig. 10 gives the WITH-loop definitions of the
// functions the MG benchmark needs — genarray (with a default value),
// condense, scatter, embed, take — and the surrounding text lists the rest
// of the library the benchmark imports: element-wise extensions of
// arithmetic operators, reductions like sum, and shift/rotate.
//
// Every function here has two implementations with identical semantics:
//
//   - the WITH-loop definition, a direct transliteration of Fig. 10, used
//     at optimization levels O0/O1;
//   - a fused flat-loop kernel, used at O2+ — the effect of sac2c's
//     WITH-loop folding and specialization on this library code.
//
// The equivalence of the two is part of the test suite. None of the
// functions release their arguments; ownership stays with the caller
// (internal/core plays the role of SAC's reference counter and releases
// intermediates explicitly).
package aplib

import (
	"fmt"
	"math"

	"repro/internal/array"
	"repro/internal/sched"
	"repro/internal/shape"
	wl "repro/internal/withloop"
)

// fused reports whether the environment runs the library in fused mode.
func fused(e *wl.Env) bool { return e.Opt >= wl.O2 }

// GenarrayVal implements SAC's genarray(shp, val): an array of shape shp
// with every element set to val (Fig. 10, function genarray).
func GenarrayVal(e *wl.Env, shp shape.Shape, val float64) *array.Array {
	if fused(e) {
		out := e.NewArray(shp)
		if val != 0 {
			data := out.Data()
			e.Sched.For(len(data), forOpts(e), func(lo, hi, _ int) {
				for i := lo; i < hi; i++ {
					data[i] = val
				}
			})
		}
		return out
	}
	return e.Genarray(shp, wl.Full(shp), func(shape.Index) float64 { return val })
}

func forOpts(e *wl.Env) sched.ForOptions {
	o := e.ForOpt
	if o.SeqThreshold < e.SeqThreshold {
		o.SeqThreshold = e.SeqThreshold
	}
	return o
}

// Condense implements Fig. 10's condense(str, a): the array of shape
// shape(a)/str whose elements are a[str*iv] — the strided sub-sampling used
// by the fine-to-coarse mapping.
func Condense(e *wl.Env, str int, a *array.Array) *array.Array {
	outShp := shape.Shape(shape.DivScalar([]int(a.Shape()), str))
	if fused(e) && a.Dim() == 3 {
		out := e.NewArrayDirty(outShp)
		od, ad := out.Data(), a.Data()
		o1, o2 := outShp[1], outShp[2]
		a1, a2 := a.Shape()[1], a.Shape()[2]
		e.Sched.For(outShp[0], forOptsScaled(e, outShp.Size(), outShp[0]), func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				for j := 0; j < o1; j++ {
					src := (i*str*a1 + j*str) * a2
					dst := (i*o1 + j) * o2
					for k := 0; k < o2; k++ {
						od[dst+k] = ad[src+k*str]
					}
				}
			}
		})
		return out
	}
	return e.Genarray(outShp, wl.Full(outShp), func(iv shape.Index) float64 {
		return a.At(shape.Index(shape.MulScalar([]int(iv), str)))
	})
}

// Scatter implements Fig. 10's scatter(str, a): the array of shape
// str*shape(a) holding a[iv/str] at every position where all components of
// iv are multiples of str, and 0 elsewhere — the coarse-to-fine spreading.
func Scatter(e *wl.Env, str int, a *array.Array) *array.Array {
	outShp := shape.Shape(shape.MulScalar([]int(a.Shape()), str))
	if fused(e) && a.Dim() == 3 {
		out := e.NewArray(outShp) // zero background
		od, ad := out.Data(), a.Data()
		a1, a2 := a.Shape()[1], a.Shape()[2]
		n1, n2 := outShp[1], outShp[2]
		e.Sched.For(a.Shape()[0], forOptsScaled(e, a.Size(), a.Shape()[0]), func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				for j := 0; j < a1; j++ {
					src := (i*a1 + j) * a2
					dst := (i*str*n1 + j*str) * n2
					for k := 0; k < a2; k++ {
						od[dst+k*str] = ad[src+k]
					}
				}
			}
		})
		return out
	}
	g := wl.Full(outShp).WithStep(shape.Replicate(outShp.Rank(), str))
	return e.Genarray(outShp, g, func(iv shape.Index) float64 {
		return a.At(shape.Index(shape.DivScalar([]int(iv), str)))
	})
}

// Embed implements Fig. 10's embed(shp, pos, a): a new array of shape shp
// whose elements starting at index position pos are taken from a; the rest
// are 0.
func Embed(e *wl.Env, shp shape.Shape, pos []int, a *array.Array) *array.Array {
	if len(pos) != a.Dim() || shp.Rank() != a.Dim() {
		panic(fmt.Sprintf("aplib: Embed rank mismatch: shp %v pos %v a %v", shp, pos, a.Shape()))
	}
	if !shape.AllLessEq(shape.Add(pos, []int(a.Shape())), []int(shp)) || !shape.AllLessEq(shape.Zeros(len(pos)), pos) {
		panic(fmt.Sprintf("aplib: Embed: array %v at %v does not fit in %v", a.Shape(), pos, shp))
	}
	if fused(e) && a.Dim() == 3 {
		out := e.NewArray(shp)
		od, ad := out.Data(), a.Data()
		a0, a1, a2 := a.Shape()[0], a.Shape()[1], a.Shape()[2]
		n1, n2 := shp[1], shp[2]
		e.Sched.For(a0, forOptsScaled(e, a.Size(), a0), func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				for j := 0; j < a1; j++ {
					dst := ((i+pos[0])*n1+j+pos[1])*n2 + pos[2]
					src := (i*a1 + j) * a2
					copy(od[dst:dst+a2], ad[src:src+a2])
				}
			}
		})
		return out
	}
	g := wl.Gen(pos, shape.Add([]int(a.Shape()), pos))
	return e.Genarray(shp, g, func(iv shape.Index) float64 {
		return a.At(shape.Index(shape.Sub([]int(iv), pos)))
	})
}

// Take implements Fig. 10's take(shp, a): the leading sub-array of shape
// shp (which must fit inside a).
func Take(e *wl.Env, shp shape.Shape, a *array.Array) *array.Array {
	if shp.Rank() != a.Dim() || !shape.AllLessEq([]int(shp), []int(a.Shape())) {
		panic(fmt.Sprintf("aplib: Take: shape %v does not fit in %v", shp, a.Shape()))
	}
	if fused(e) && a.Dim() == 3 {
		out := e.NewArrayDirty(shp)
		od, ad := out.Data(), a.Data()
		a1, a2 := a.Shape()[1], a.Shape()[2]
		o1, o2 := shp[1], shp[2]
		e.Sched.For(shp[0], forOptsScaled(e, shp.Size(), shp[0]), func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				for j := 0; j < o1; j++ {
					src := (i*a1 + j) * a2
					dst := (i*o1 + j) * o2
					copy(od[dst:dst+o2], ad[src:src+o2])
				}
			}
		})
		return out
	}
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
		return a.At(iv)
	})
}

// Drop returns a minus its first off[j] elements along each axis j —
// the library complement of Take.
func Drop(e *wl.Env, off []int, a *array.Array) *array.Array {
	if len(off) != a.Dim() {
		panic(fmt.Sprintf("aplib: Drop rank mismatch: off %v a %v", off, a.Shape()))
	}
	outShp := shape.Shape(shape.Sub([]int(a.Shape()), off))
	if !outShp.Valid() {
		panic(fmt.Sprintf("aplib: Drop: offset %v exceeds shape %v", off, a.Shape()))
	}
	return e.Genarray(outShp, wl.Full(outShp), func(iv shape.Index) float64 {
		return a.At(shape.Index(shape.Add([]int(iv), off)))
	})
}

// --- element-wise arithmetic -------------------------------------------------

func checkSameShape(op string, a, b *array.Array) {
	if !a.Shape().Equal(b.Shape()) {
		panic(fmt.Sprintf("aplib: %s: shape mismatch %v vs %v", op, a.Shape(), b.Shape()))
	}
}

// binary applies op element-wise to two equally shaped arrays.
func binary(e *wl.Env, name string, a, b *array.Array, op func(x, y float64) float64) *array.Array {
	checkSameShape(name, a, b)
	if fused(e) {
		out := e.NewArrayDirty(a.Shape())
		od, ad, bd := out.Data(), a.Data(), b.Data()
		e.Sched.For(len(od), forOpts(e), func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				od[i] = op(ad[i], bd[i])
			}
		})
		return out
	}
	shp := a.Shape()
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
		return op(a.At(iv), b.At(iv))
	})
}

// Add returns a + b element-wise.
func Add(e *wl.Env, a, b *array.Array) *array.Array {
	return binary(e, "Add", a, b, func(x, y float64) float64 { return x + y })
}

// Sub returns a - b element-wise.
func Sub(e *wl.Env, a, b *array.Array) *array.Array {
	return binary(e, "Sub", a, b, func(x, y float64) float64 { return x - y })
}

// Mul returns a * b element-wise.
func Mul(e *wl.Env, a, b *array.Array) *array.Array {
	return binary(e, "Mul", a, b, func(x, y float64) float64 { return x * y })
}

// Scale returns k * a element-wise.
func Scale(e *wl.Env, k float64, a *array.Array) *array.Array {
	if fused(e) {
		out := e.NewArrayDirty(a.Shape())
		od, ad := out.Data(), a.Data()
		e.Sched.For(len(od), forOpts(e), func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				od[i] = k * ad[i]
			}
		})
		return out
	}
	shp := a.Shape()
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 { return k * a.At(iv) })
}

// AddScalar returns a + k element-wise.
func AddScalar(e *wl.Env, a *array.Array, k float64) *array.Array {
	shp := a.Shape()
	if fused(e) {
		out := e.NewArrayDirty(shp)
		od, ad := out.Data(), a.Data()
		e.Sched.For(len(od), forOpts(e), func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				od[i] = ad[i] + k
			}
		})
		return out
	}
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 { return a.At(iv) + k })
}

// --- reductions ---------------------------------------------------------------

// Sum folds + over all elements of a.
func Sum(e *wl.Env, a *array.Array) float64 {
	if fused(e) {
		d := a.Data()
		return e.Sched.Reduce(len(d), forOpts(e), 0,
			func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += d[i]
				}
				return s
			}, func(x, y float64) float64 { return x + y })
	}
	shp := a.Shape()
	return e.Fold(shp, wl.Full(shp), func(x, y float64) float64 { return x + y }, 0,
		func(iv shape.Index) float64 { return a.At(iv) })
}

// SumSq folds + over the squares of all elements of a (the building block
// of L2 norms).
func SumSq(e *wl.Env, a *array.Array) float64 {
	if fused(e) {
		d := a.Data()
		return e.Sched.Reduce(len(d), forOpts(e), 0,
			func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += d[i] * d[i]
				}
				return s
			}, func(x, y float64) float64 { return x + y })
	}
	shp := a.Shape()
	return e.Fold(shp, wl.Full(shp), func(x, y float64) float64 { return x + y }, 0,
		func(iv shape.Index) float64 { v := a.At(iv); return v * v })
}

// MaxAbs folds max over |a[iv]|.
func MaxAbs(e *wl.Env, a *array.Array) float64 {
	if fused(e) {
		d := a.Data()
		return e.Sched.Reduce(len(d), forOpts(e), 0,
			func(lo, hi int) float64 {
				m := 0.0
				for i := lo; i < hi; i++ {
					if v := math.Abs(d[i]); v > m {
						m = v
					}
				}
				return m
			}, math.Max)
	}
	shp := a.Shape()
	return e.Fold(shp, wl.Full(shp), math.Max, 0,
		func(iv shape.Index) float64 { return math.Abs(a.At(iv)) })
}

// L2Norm returns sqrt(sum(a²)/size(a)) — the discrete L2 norm the NPB
// verification uses (over whatever index set a covers).
func L2Norm(e *wl.Env, a *array.Array) float64 {
	return math.Sqrt(SumSq(e, a) / float64(a.Size()))
}

// --- structural operations ------------------------------------------------------

// Rotate cyclically rotates a by off positions along the given axis
// (positive off moves element i to i+off mod extent) — one of the
// "shift and rotate operations" the paper lists in the array library.
func Rotate(e *wl.Env, axis, off int, a *array.Array) *array.Array {
	if axis < 0 || axis >= a.Dim() {
		panic(fmt.Sprintf("aplib: Rotate: axis %d out of range for rank %d", axis, a.Dim()))
	}
	shp := a.Shape()
	n := shp[axis]
	if n == 0 {
		return a.Clone()
	}
	off = ((off % n) + n) % n
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
		j := iv[axis] - off
		if j < 0 {
			j += n
		}
		saved := iv[axis]
		iv[axis] = j
		v := a.At(iv)
		iv[axis] = saved
		return v
	})
}

// Shift shifts a by off positions along the given axis, filling vacated
// positions with fill.
func Shift(e *wl.Env, axis, off int, fill float64, a *array.Array) *array.Array {
	if axis < 0 || axis >= a.Dim() {
		panic(fmt.Sprintf("aplib: Shift: axis %d out of range for rank %d", axis, a.Dim()))
	}
	shp := a.Shape()
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
		j := iv[axis] - off
		if j < 0 || j >= shp[axis] {
			return fill
		}
		saved := iv[axis]
		iv[axis] = j
		v := a.At(iv)
		iv[axis] = saved
		return v
	})
}

func forOptsScaled(e *wl.Env, total, outer int) sched.ForOptions {
	o := forOpts(e)
	if outer > 0 {
		if per := total / outer; per > 0 {
			o.SeqThreshold = o.SeqThreshold / per
		}
	}
	return o
}
