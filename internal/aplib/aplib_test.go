package aplib

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/array"
	"repro/internal/shape"
	wl "repro/internal/withloop"
)

// testEnvs covers generic (O0), dense fast-path (O1), fused (O2/O3) and a
// parallel fused configuration.
func testEnvs() []*wl.Env {
	var list []*wl.Env
	for _, opt := range []wl.OptLevel{wl.O0, wl.O1, wl.O2, wl.O3} {
		e := wl.Default()
		e.Opt = opt
		e.SeqThreshold = 0
		list = append(list, e)
	}
	p := wl.Parallel(4)
	p.SeqThreshold = 0
	list = append(list, p)
	return list
}

// ramp3 builds a rank-3 array with distinct values.
func ramp3(n0, n1, n2 int) *array.Array {
	e := wl.Default()
	shp := shape.Of(n0, n1, n2)
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
		return float64(iv[0]*10000 + iv[1]*100 + iv[2] + 1)
	})
}

func TestGenarrayVal(t *testing.T) {
	for _, e := range testEnvs() {
		a := GenarrayVal(e, shape.Of(3, 4), 2.5)
		for _, v := range a.Data() {
			if v != 2.5 {
				t.Fatalf("env %v: GenarrayVal wrong", e.Opt)
			}
		}
		z := GenarrayVal(e, shape.Of(2, 2), 0)
		for _, v := range z.Data() {
			if v != 0 {
				t.Fatalf("env %v: GenarrayVal(0) wrong", e.Opt)
			}
		}
	}
}

func TestCondense(t *testing.T) {
	a := ramp3(6, 4, 8)
	for _, e := range testEnvs() {
		c := Condense(e, 2, a)
		if !c.Shape().Equal(shape.Of(3, 2, 4)) {
			t.Fatalf("env %v: Condense shape = %v", e.Opt, c.Shape())
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 2; j++ {
				for k := 0; k < 4; k++ {
					if c.At3(i, j, k) != a.At3(2*i, 2*j, 2*k) {
						t.Fatalf("env %v: Condense(%d,%d,%d) = %g, want %g",
							e.Opt, i, j, k, c.At3(i, j, k), a.At3(2*i, 2*j, 2*k))
					}
				}
			}
		}
	}
}

func TestCondenseRank2GenericPath(t *testing.T) {
	e := wl.Default() // O3, but rank-2 uses the generic path
	a := array.FromSlice(shape.Of(4, 4), []float64{
		0, 1, 2, 3,
		4, 5, 6, 7,
		8, 9, 10, 11,
		12, 13, 14, 15,
	})
	c := Condense(e, 2, a)
	want := array.FromSlice(shape.Of(2, 2), []float64{0, 2, 8, 10})
	if !c.Equal(want) {
		t.Fatalf("rank-2 Condense = %v, want %v", c, want)
	}
}

func TestScatter(t *testing.T) {
	a := ramp3(3, 2, 4)
	for _, e := range testEnvs() {
		s := Scatter(e, 2, a)
		if !s.Shape().Equal(shape.Of(6, 4, 8)) {
			t.Fatalf("env %v: Scatter shape = %v", e.Opt, s.Shape())
		}
		for i := 0; i < 6; i++ {
			for j := 0; j < 4; j++ {
				for k := 0; k < 8; k++ {
					want := 0.0
					if i%2 == 0 && j%2 == 0 && k%2 == 0 {
						want = a.At3(i/2, j/2, k/2)
					}
					if s.At3(i, j, k) != want {
						t.Fatalf("env %v: Scatter(%d,%d,%d) = %g, want %g",
							e.Opt, i, j, k, s.At3(i, j, k), want)
					}
				}
			}
		}
	}
}

// Paper invariant: condense(str, scatter(str, a)) == a.
func TestCondenseScatterIdentity(t *testing.T) {
	for _, e := range testEnvs() {
		for _, str := range []int{2, 3} {
			a := ramp3(4, 3, 5)
			round := Condense(e, str, Scatter(e, str, a))
			if !round.Equal(a) {
				t.Fatalf("env %v str %d: condense∘scatter is not the identity", e.Opt, str)
			}
		}
	}
}

func TestEmbed(t *testing.T) {
	a := ramp3(2, 2, 2)
	for _, e := range testEnvs() {
		b := Embed(e, shape.Of(4, 3, 5), []int{1, 0, 2}, a)
		for i := 0; i < 4; i++ {
			for j := 0; j < 3; j++ {
				for k := 0; k < 5; k++ {
					want := 0.0
					if i >= 1 && i < 3 && j < 2 && k >= 2 && k < 4 {
						want = a.At3(i-1, j, k-2)
					}
					if b.At3(i, j, k) != want {
						t.Fatalf("env %v: Embed(%d,%d,%d) = %g, want %g",
							e.Opt, i, j, k, b.At3(i, j, k), want)
					}
				}
			}
		}
	}
}

func TestEmbedPanics(t *testing.T) {
	e := wl.Default()
	a := ramp3(2, 2, 2)
	for name, f := range map[string]func(){
		"rank":     func() { Embed(e, shape.Of(3, 3), []int{0, 0}, a) },
		"overflow": func() { Embed(e, shape.Of(3, 3, 3), []int{2, 0, 0}, a) },
		"negative": func() { Embed(e, shape.Of(4, 4, 4), []int{-1, 0, 0}, a) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Embed %s case did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTake(t *testing.T) {
	a := ramp3(4, 5, 6)
	for _, e := range testEnvs() {
		tk := Take(e, shape.Of(2, 3, 4), a)
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				for k := 0; k < 4; k++ {
					if tk.At3(i, j, k) != a.At3(i, j, k) {
						t.Fatalf("env %v: Take wrong at (%d,%d,%d)", e.Opt, i, j, k)
					}
				}
			}
		}
	}
}

func TestTakePanics(t *testing.T) {
	e := wl.Default()
	defer func() {
		if recover() == nil {
			t.Error("oversized Take did not panic")
		}
	}()
	Take(e, shape.Of(5, 5, 5), ramp3(4, 4, 4))
}

// Paper invariant: take(shape(a), embed(shp, 0, a)) == a.
func TestEmbedTakeIdentity(t *testing.T) {
	for _, e := range testEnvs() {
		a := ramp3(3, 4, 2)
		big := Embed(e, shape.Of(5, 6, 4), shape.Zeros(3), a)
		round := Take(e, a.Shape(), big)
		if !round.Equal(a) {
			t.Fatalf("env %v: take∘embed is not the identity", e.Opt)
		}
	}
}

func TestDrop(t *testing.T) {
	e := wl.Default()
	a := ramp3(4, 4, 4)
	d := Drop(e, []int{1, 2, 0}, a)
	if !d.Shape().Equal(shape.Of(3, 2, 4)) {
		t.Fatalf("Drop shape = %v", d.Shape())
	}
	if d.At3(0, 0, 0) != a.At3(1, 2, 0) || d.At3(2, 1, 3) != a.At3(3, 3, 3) {
		t.Fatal("Drop elements wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized Drop did not panic")
		}
	}()
	Drop(e, []int{5, 0, 0}, a)
}

// Drop is the complement of Take: Drop(off, a) equals the trailing corner.
func TestTakeDropPartition(t *testing.T) {
	e := wl.Default()
	a := ramp3(4, 4, 4)
	off := []int{2, 1, 3}
	d := Drop(e, off, a)
	for i := 0; i < d.Shape()[0]; i++ {
		for j := 0; j < d.Shape()[1]; j++ {
			for k := 0; k < d.Shape()[2]; k++ {
				if d.At3(i, j, k) != a.At3(i+off[0], j+off[1], k+off[2]) {
					t.Fatal("Drop misaligned")
				}
			}
		}
	}
}

func TestArithmetic(t *testing.T) {
	for _, e := range testEnvs() {
		a := array.FromSlice(shape.Of(2, 2), []float64{1, 2, 3, 4})
		b := array.FromSlice(shape.Of(2, 2), []float64{10, 20, 30, 40})
		if got := Add(e, a, b); !got.Equal(array.FromSlice(shape.Of(2, 2), []float64{11, 22, 33, 44})) {
			t.Fatalf("env %v: Add = %v", e.Opt, got)
		}
		if got := Sub(e, b, a); !got.Equal(array.FromSlice(shape.Of(2, 2), []float64{9, 18, 27, 36})) {
			t.Fatalf("env %v: Sub = %v", e.Opt, got)
		}
		if got := Mul(e, a, a); !got.Equal(array.FromSlice(shape.Of(2, 2), []float64{1, 4, 9, 16})) {
			t.Fatalf("env %v: Mul = %v", e.Opt, got)
		}
		if got := Scale(e, 2, a); !got.Equal(array.FromSlice(shape.Of(2, 2), []float64{2, 4, 6, 8})) {
			t.Fatalf("env %v: Scale = %v", e.Opt, got)
		}
		if got := AddScalar(e, a, 1); !got.Equal(array.FromSlice(shape.Of(2, 2), []float64{2, 3, 4, 5})) {
			t.Fatalf("env %v: AddScalar = %v", e.Opt, got)
		}
	}
}

func TestArithmeticShapeMismatchPanics(t *testing.T) {
	e := wl.Default()
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched shapes did not panic")
		}
	}()
	Add(e, array.New(shape.Of(2)), array.New(shape.Of(3)))
}

func TestReductions(t *testing.T) {
	for _, e := range testEnvs() {
		a := array.FromSlice(shape.Of(5), []float64{1, -3, 2, -0.5, 4})
		if got := Sum(e, a); math.Abs(got-3.5) > 1e-15 {
			t.Fatalf("env %v: Sum = %g", e.Opt, got)
		}
		if got := SumSq(e, a); math.Abs(got-(1+9+4+0.25+16)) > 1e-12 {
			t.Fatalf("env %v: SumSq = %g", e.Opt, got)
		}
		if got := MaxAbs(e, a); got != 4 {
			t.Fatalf("env %v: MaxAbs = %g", e.Opt, got)
		}
		wantL2 := math.Sqrt((1 + 9 + 4 + 0.25 + 16) / 5)
		if got := L2Norm(e, a); math.Abs(got-wantL2) > 1e-15 {
			t.Fatalf("env %v: L2Norm = %g, want %g", e.Opt, got, wantL2)
		}
	}
}

func TestRotate(t *testing.T) {
	e := wl.Default()
	a := array.FromSlice(shape.Of(4), []float64{1, 2, 3, 4})
	if got := Rotate(e, 0, 1, a); !got.Equal(array.FromSlice(shape.Of(4), []float64{4, 1, 2, 3})) {
		t.Fatalf("Rotate +1 = %v", got)
	}
	if got := Rotate(e, 0, -1, a); !got.Equal(array.FromSlice(shape.Of(4), []float64{2, 3, 4, 1})) {
		t.Fatalf("Rotate -1 = %v", got)
	}
	if got := Rotate(e, 0, 4, a); !got.Equal(a) {
		t.Fatalf("Rotate full cycle = %v", got)
	}
	if got := Rotate(e, 0, 9, a); !got.Equal(Rotate(e, 0, 1, a)) {
		t.Fatal("Rotate does not reduce offset modulo extent")
	}
}

func TestRotateAxis(t *testing.T) {
	e := wl.Default()
	a := array.FromSlice(shape.Of(2, 3), []float64{1, 2, 3, 4, 5, 6})
	got := Rotate(e, 1, 1, a)
	want := array.FromSlice(shape.Of(2, 3), []float64{3, 1, 2, 6, 4, 5})
	if !got.Equal(want) {
		t.Fatalf("Rotate axis 1 = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("Rotate with bad axis did not panic")
		}
	}()
	Rotate(e, 2, 1, a)
}

func TestShift(t *testing.T) {
	e := wl.Default()
	a := array.FromSlice(shape.Of(4), []float64{1, 2, 3, 4})
	if got := Shift(e, 0, 1, 0, a); !got.Equal(array.FromSlice(shape.Of(4), []float64{0, 1, 2, 3})) {
		t.Fatalf("Shift +1 = %v", got)
	}
	if got := Shift(e, 0, -2, 9, a); !got.Equal(array.FromSlice(shape.Of(4), []float64{3, 4, 9, 9})) {
		t.Fatalf("Shift -2 = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Shift with bad axis did not panic")
		}
	}()
	Shift(e, -1, 1, 0, a)
}

// Rotate by n and -n compose to the identity.
func TestRotateInverseQuick(t *testing.T) {
	e := wl.Default()
	f := func(vals [6]float64, offRaw int8) bool {
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
		}
		a := array.FromSlice(shape.Of(2, 3), vals[:])
		off := int(offRaw)
		return Rotate(e, 1, -off, Rotate(e, 1, off, a)).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// All optimization levels agree bit-for-bit on every library function.
func TestFusedMatchesGenericQuick(t *testing.T) {
	ref := wl.Default()
	ref.Opt = wl.O0
	ref.SeqThreshold = 0
	fast := wl.Default() // O3
	fast.SeqThreshold = 0
	f := func(dims [3]uint8, strRaw uint8) bool {
		n0, n1, n2 := int(dims[0]%3)+1, int(dims[1]%3)+1, int(dims[2]%3)+1
		str := int(strRaw%2) + 2
		a := ramp3(n0*str, n1*str, n2*str)
		if !Condense(ref, str, a).Equal(Condense(fast, str, a)) {
			return false
		}
		small := ramp3(n0, n1, n2)
		if !Scatter(ref, str, small).Equal(Scatter(fast, str, small)) {
			return false
		}
		big := shape.Of(n0+2, n1+1, n2+3)
		pos := []int{1, 0, 2}
		if !Embed(ref, big, pos, small).Equal(Embed(fast, big, pos, small)) {
			return false
		}
		if !Take(ref, shape.Of(n0, n1, n2), a).Equal(Take(fast, shape.Of(n0, n1, n2), a)) {
			return false
		}
		if Sum(ref, a) != Sum(fast, a) || MaxAbs(ref, a) != MaxAbs(fast, a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddFused(b *testing.B) {
	e := wl.Default()
	a := ramp3(64, 64, 64)
	c := ramp3(64, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := Add(e, a, c)
		e.Release(out)
	}
}

func BenchmarkAddGeneric(b *testing.B) {
	e := wl.Default()
	e.Opt = wl.O1
	a := ramp3(64, 64, 64)
	c := ramp3(64, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := Add(e, a, c)
		e.Release(out)
	}
}
