// Package smp simulates the shared-memory multiprocessor of the paper's
// parallel experiments — a 12-processor SUN Ultra Enterprise 4000 — for
// reproducing Figures 12 and 13 on hardware that cannot run ten real
// processors (this container exposes a single core; see DESIGN.md §4,
// substitution 1).
//
// The simulator is a deterministic cost model. Its input is a Profile:
// real, measured per-kernel serial wall-clock times of one implementation
// (captured through the nas.Probe hook on an actual benchmark run). Its
// output is the predicted execution time at P processors:
//
//	T(P) = Σ_regions  Calls × t_call(P)
//
//	t_call(P) = t_serial                      if the region is sequential
//	          = alloc + work/chunks(P) × bw(P) + forkJoin   otherwise
//
// where
//
//   - alloc is the memory-management share of the call — SAC's
//     reference-counting overhead, which the paper stresses is invariant
//     in grid size and therefore dominates small grids;
//   - work/chunks(P) is the parallelizable share divided over
//     min(P, planes) — outer-plane decomposition limits parallelism on
//     coarse V-cycle grids to 2^level chunks;
//   - bw(P) = 1 + β(P−1) models memory-bus contention of the shared bus;
//   - forkJoin is the per-loop barrier cost of the runtime system.
//
// Each contestant has Traits describing how its compiler/runtime
// parallelizes: SAC parallelizes every WITH-loop but adaptively keeps
// loops sequential when that is cheaper (its sequential-threshold policy);
// the auto-parallelizing Fortran compiler handles only the clean
// resid/psinv nests; OpenMP parallelizes every annotated nest with the
// cheapest fork/join (Omni's microtasking) but without SAC's adaptivity.
// The trait constants are calibrated once against the speedup endpoints
// the paper reports (SAC 5.3/7.6, f77 2.8/4.0, OpenMP 8.0/9.0 for W/A at
// ten processors); everything else — the distribution of work over
// kernels and levels, and hence the shape of the curves — comes from the
// measured profiles.
package smp

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/nas"
)

// RegionKey identifies one kernel class at one grid level.
type RegionKey struct {
	Name  string
	Level int
}

// Region is the aggregated measurement of one kernel class.
type Region struct {
	RegionKey
	// Calls is the number of invocations per timed benchmark run.
	Calls int
	// Seconds is the total serial time of those invocations.
	Seconds float64
}

// Profile is the measured serial work profile of one implementation on
// one problem class.
type Profile struct {
	// Impl and Class label the profile.
	Impl  string
	Class nas.Class
	// Regions holds the per-kernel aggregates, sorted by level then name.
	Regions []Region
}

// Collector builds a Profile from nas.Probe callbacks. It is safe for
// concurrent use (probes can fire from worker goroutines).
type Collector struct {
	mu   sync.Mutex
	acc  map[RegionKey]*Region
	impl string
	cls  nas.Class
}

// NewCollector creates a collector for the given implementation label.
func NewCollector(impl string, class nas.Class) *Collector {
	return &Collector{acc: make(map[RegionKey]*Region), impl: impl, cls: class}
}

// Probe is the nas.Probe to attach to a solver.
func (c *Collector) Probe(region string, level int, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := RegionKey{Name: region, Level: level}
	r := c.acc[k]
	if r == nil {
		r = &Region{RegionKey: k}
		c.acc[k] = r
	}
	r.Calls++
	r.Seconds += elapsed.Seconds()
}

// Profile returns the aggregated profile.
func (c *Collector) Profile() Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := Profile{Impl: c.impl, Class: c.cls}
	for _, r := range c.acc {
		p.Regions = append(p.Regions, *r)
	}
	sort.Slice(p.Regions, func(i, j int) bool {
		if p.Regions[i].Level != p.Regions[j].Level {
			return p.Regions[i].Level < p.Regions[j].Level
		}
		return p.Regions[i].Name < p.Regions[j].Name
	})
	return p
}

// SerialSeconds is the profile's total measured serial time.
func (p Profile) SerialSeconds() float64 {
	total := 0.0
	for _, r := range p.Regions {
		total += r.Seconds
	}
	return total
}

// String renders the profile as a table for reports.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s class %c: %.4fs serial\n", p.Impl, p.Class.Name, p.SerialSeconds())
	for _, r := range p.Regions {
		fmt.Fprintf(&b, "  L%-2d %-12s calls %-4d total %8.3fms\n",
			r.Level, r.Name, r.Calls, r.Seconds*1e3)
	}
	return b.String()
}

// Traits describe how one implementation's compiler/runtime parallelizes.
type Traits struct {
	// Name labels the implementation in reports.
	Name string
	// ForkJoin is the barrier cost per parallel loop instance (seconds).
	ForkJoin float64
	// AllocPerCall × AllocCost is the sequential memory-management time
	// per kernel call; it never shrinks with P (grid-size invariant —
	// the reference-count bookkeeping the paper blames for small-grid
	// overhead).
	AllocPerCall float64
	// AllocCost is seconds per allocation event.
	AllocCost float64
	// AllocFrac is the fraction of each call's measured time that is
	// sequential memory traffic proportional to the grid size (zero
	// initialisation and copies of freshly allocated arrays).
	AllocFrac float64
	// Adaptive runtimes skip parallelization when the sequential form is
	// cheaper (SAC's sequential-threshold policy).
	Adaptive bool
	// Parallel lists the kernel names the implementation parallelizes.
	Parallel map[string]bool
}

// The calibrated trait sets of the paper's three contestants. The kernel
// name sets mirror the parallelization modes of internal/f77 (AutoPar,
// FullPar) and internal/core (every WITH-loop).
var (
	// SAC: implicit multithreading of every WITH-loop, pthread-based
	// fork/join, reference-counted dynamic memory management, adaptive
	// sequential threshold.
	SAC = Traits{
		Name:         "SAC",
		ForkJoin:     45e-6,
		AllocPerCall: 1.5,
		AllocCost:    13e-6,
		AllocFrac:    0.02,
		Adaptive:     true,
		Parallel: map[string]bool{
			"resid": true, "smooth": true, "fine2coarse": true, "coarse2fine": true,
			"psinv": true, "rprj3": true, "interp": true,
		},
	}
	// F77Auto: the SUN f77 auto-parallelizer handles the dependence-free
	// resid/psinv nests only; static memory (no allocation cost).
	F77Auto = Traits{
		Name:     "F77-auto",
		ForkJoin: 40e-6,
		Parallel: map[string]bool{"resid": true, "psinv": true},
	}
	// OpenMP: 30 hand-placed directives cover every nest; Omni's
	// microtasking has the cheapest fork/join; almost-static memory.
	OpenMP = Traits{
		Name:     "OpenMP",
		ForkJoin: 4e-6,
		Parallel: map[string]bool{
			"resid": true, "psinv": true, "rprj3": true, "interp": true,
			"smooth": true, "fine2coarse": true, "coarse2fine": true,
		},
	}
)

// Machine models the shared-memory host.
type Machine struct {
	// MaxProcs is the largest processor count to simulate (the paper
	// uses 10 of the machine's 12).
	MaxProcs int
	// Beta is the memory-bus contention coefficient: parallel work is
	// inflated by 1 + Beta·(P−1).
	Beta float64
}

// Enterprise4000 is the default machine model.
func Enterprise4000() Machine { return Machine{MaxProcs: 10, Beta: 0.012} }

// Predict returns the modeled execution time of the profiled program with
// the given traits at P processors.
func (m Machine) Predict(p Profile, tr Traits, procs int) float64 {
	if procs < 1 {
		panic(fmt.Sprintf("smp: invalid processor count %d", procs))
	}
	total := 0.0
	for _, r := range p.Regions {
		tCall := r.Seconds / float64(r.Calls)
		if procs == 1 || !tr.Parallel[r.Name] {
			total += r.Seconds
			continue
		}
		// Memory-management share of the call: an invariant per-event
		// part plus a size-proportional zero/copy part; both serial.
		alloc := tr.AllocPerCall*tr.AllocCost + tr.AllocFrac*tCall
		if alloc > tCall/2 {
			alloc = tCall / 2 // never more than half of a measured call
		}
		work := tCall - alloc
		// Outer-plane decomposition: a level-L grid has 2^L interior
		// planes to distribute.
		chunks := procs
		if planes := 1 << r.Level; planes < chunks {
			chunks = planes
		}
		bw := 1 + m.Beta*float64(procs-1)
		parCall := alloc + work/float64(chunks)*bw + tr.ForkJoin
		if tr.Adaptive && parCall > tCall {
			parCall = tCall
		}
		total += parCall * float64(r.Calls)
	}
	return total
}

// Speedups returns the self-relative speedup curve S(P) = T(1)/T(P) for
// P = 1..MaxProcs — one Figure-12 series.
func (m Machine) Speedups(p Profile, tr Traits) []float64 {
	base := m.Predict(p, tr, 1)
	out := make([]float64, m.MaxProcs)
	for procs := 1; procs <= m.MaxProcs; procs++ {
		out[procs-1] = base / m.Predict(p, tr, procs)
	}
	return out
}

// RelativeSpeedups returns the speedup curve relative to an external
// baseline time (the fastest sequential solution — Figure 13's rebasing
// to the serial Fortran-77 runtime).
func (m Machine) RelativeSpeedups(p Profile, tr Traits, baseline float64) []float64 {
	out := make([]float64, m.MaxProcs)
	for procs := 1; procs <= m.MaxProcs; procs++ {
		out[procs-1] = baseline / m.Predict(p, tr, procs)
	}
	return out
}
