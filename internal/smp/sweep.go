// Sensitivity analysis for the machine model: since Figures 12/13 rest on
// calibrated constants (DESIGN.md §4), the sweep API quantifies how much
// each constant matters, so readers can judge the model's robustness
// rather than trust a single parameterization.
package smp

import (
	"fmt"
	"io"
)

// SweepPoint is one model evaluation of a sensitivity sweep.
type SweepPoint struct {
	// Label names the varied parameter value, e.g. "Beta=0.006".
	Label string
	// SpeedupAtMax is the predicted speedup at Machine.MaxProcs.
	SpeedupAtMax float64
}

// SweepBeta evaluates the speedup endpoint under scaled bus-contention
// coefficients (factors scale the machine's Beta).
func (m Machine) SweepBeta(p Profile, tr Traits, factors []float64) []SweepPoint {
	var out []SweepPoint
	for _, f := range factors {
		mm := m
		mm.Beta = m.Beta * f
		s := mm.Speedups(p, tr)
		out = append(out, SweepPoint{
			Label:        fmt.Sprintf("Beta=%.4f", mm.Beta),
			SpeedupAtMax: s[len(s)-1],
		})
	}
	return out
}

// SweepForkJoin evaluates the speedup endpoint under scaled fork/join
// costs.
func (m Machine) SweepForkJoin(p Profile, tr Traits, factors []float64) []SweepPoint {
	var out []SweepPoint
	for _, f := range factors {
		t := tr
		t.ForkJoin = tr.ForkJoin * f
		s := m.Speedups(p, t)
		out = append(out, SweepPoint{
			Label:        fmt.Sprintf("ForkJoin=%.1fus", t.ForkJoin*1e6),
			SpeedupAtMax: s[len(s)-1],
		})
	}
	return out
}

// SweepAlloc evaluates the speedup endpoint under scaled memory-management
// costs (both the invariant and the size-proportional components).
func (m Machine) SweepAlloc(p Profile, tr Traits, factors []float64) []SweepPoint {
	var out []SweepPoint
	for _, f := range factors {
		t := tr
		t.AllocCost = tr.AllocCost * f
		t.AllocFrac = tr.AllocFrac * f
		s := m.Speedups(p, t)
		out = append(out, SweepPoint{
			Label:        fmt.Sprintf("Alloc x%.2g", f),
			SpeedupAtMax: s[len(s)-1],
		})
	}
	return out
}

// WriteSensitivity runs the three sweeps over half/nominal/double factors
// and renders them as a table — the robustness appendix of the Figure-12
// reproduction.
func (m Machine) WriteSensitivity(w io.Writer, p Profile, tr Traits) {
	factors := []float64{0.5, 1, 2}
	fmt.Fprintf(w, "model sensitivity (%s on %s class %c): speedup at P=%d\n",
		tr.Name, p.Impl, p.Class.Name, m.MaxProcs)
	rows := map[string][]SweepPoint{
		"bus contention": m.SweepBeta(p, tr, factors),
		"fork/join":      m.SweepForkJoin(p, tr, factors),
		"memory manager": m.SweepAlloc(p, tr, factors),
	}
	for _, name := range []string{"bus contention", "fork/join", "memory manager"} {
		fmt.Fprintf(w, "  %-15s", name)
		for _, pt := range rows[name] {
			fmt.Fprintf(w, "  %-18s %5.2f", pt.Label, pt.SpeedupAtMax)
		}
		fmt.Fprintln(w)
	}
}
