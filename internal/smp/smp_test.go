package smp

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/nas"
)

// mgLikeProfile builds a synthetic MG work profile: lt levels, per-level
// kernel calls whose cost shrinks by 8× per level down (the 3-D volume
// ratio), scaled so the finest-level kernel costs topSeconds.
func mgLikeProfile(impl string, class nas.Class, topSeconds float64) Profile {
	lt := class.LT()
	p := Profile{Impl: impl, Class: class}
	// Kernel weights approximating the measured profiles: the stencil
	// sweeps resid/psinv dominate; restriction touches 1/8 of the points
	// and prolongation is a light gather.
	weights := map[string]float64{"resid": 1.0, "psinv": 0.95, "rprj3": 0.14, "interp": 0.22}
	for level := 1; level <= lt; level++ {
		scale := topSeconds / math.Pow(8, float64(lt-level))
		for name, w := range weights {
			calls := class.Iter
			if name == "resid" && level == lt {
				calls = 2 * class.Iter // up-cycle resid + EvalResid
			}
			p.Regions = append(p.Regions, Region{
				RegionKey: RegionKey{Name: name, Level: level},
				Calls:     calls,
				Seconds:   scale * w * float64(calls),
			})
		}
	}
	return p
}

func at10(m Machine, p Profile, tr Traits) float64 {
	s := m.Speedups(p, tr)
	return s[len(s)-1]
}

func TestPredictOneProcessorIsSerial(t *testing.T) {
	m := Enterprise4000()
	p := mgLikeProfile("x", nas.ClassW, 2e-3)
	for _, tr := range []Traits{SAC, F77Auto, OpenMP} {
		if got, want := m.Predict(p, tr, 1), p.SerialSeconds(); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: Predict(1) = %v, want serial %v", tr.Name, got, want)
		}
	}
}

func TestPredictPanicsOnBadProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Predict(0) did not panic")
		}
	}()
	Enterprise4000().Predict(Profile{}, SAC, 0)
}

// Figure 12's qualitative content: at ten processors OpenMP scales best,
// SAC second, auto-parallelized Fortran worst; class A scales better than
// class W for everyone; and SAC gains the most from W→A.
func TestFigure12Shape(t *testing.T) {
	m := Enterprise4000()
	// Per-kernel top-level costs approximating the measured profiles
	// (f77 fastest, SAC slowest per kernel at class W granularity).
	mk := func(class nas.Class, top float64) map[string]Profile {
		return map[string]Profile{
			"f77": mgLikeProfile("f77", class, top),
			"sac": mgLikeProfile("sac", class, top*1.55),
			"omp": mgLikeProfile("omp", class, top*1.35),
		}
	}
	w := mk(nas.ClassW, 1.5e-3)
	a := mk(nas.ClassA, 1.5e-3*64*4/40) // A kernel is 64× bigger, 4 vs 40 iters

	sacW, sacA := at10(m, w["sac"], SAC), at10(m, a["sac"], SAC)
	f77W, f77A := at10(m, w["f77"], F77Auto), at10(m, a["f77"], F77Auto)
	ompW, ompA := at10(m, w["omp"], OpenMP), at10(m, a["omp"], OpenMP)

	if !(ompW > sacW && sacW > f77W) {
		t.Fatalf("class W ordering wrong: omp %.2f sac %.2f f77 %.2f", ompW, sacW, f77W)
	}
	if !(ompA > sacA && sacA > f77A) {
		t.Fatalf("class A ordering wrong: omp %.2f sac %.2f f77 %.2f", ompA, sacA, f77A)
	}
	if !(sacA > sacW && f77A > f77W && ompA > ompW) {
		t.Fatal("class A does not scale better than class W")
	}
	// SAC benefits the most from the larger problem (paper §5 last ¶).
	sacGain := sacA / sacW
	if sacGain <= ompA/ompW || sacGain <= f77A/f77W {
		t.Fatalf("SAC W→A gain %.2f not the largest (omp %.2f, f77 %.2f)",
			sacGain, ompA/ompW, f77A/f77W)
	}
	// Calibration bands around the paper's reported endpoints.
	checks := []struct {
		name      string
		got, want float64
	}{
		{"SAC W", sacW, 5.3}, {"SAC A", sacA, 7.6},
		{"f77 W", f77W, 2.8}, {"f77 A", f77A, 4.0},
		{"omp W", ompW, 8.0}, {"omp A", ompA, 9.0},
	}
	for _, c := range checks {
		if c.got < c.want*0.7 || c.got > c.want*1.3 {
			t.Errorf("%s speedup@10 = %.2f, outside ±30%% of the paper's %.1f", c.name, c.got, c.want)
		}
	}
}

// Speedup curves are monotone in P for MG-like profiles.
func TestSpeedupsMonotone(t *testing.T) {
	m := Enterprise4000()
	p := mgLikeProfile("x", nas.ClassA, 0.2)
	for _, tr := range []Traits{SAC, F77Auto, OpenMP} {
		s := m.Speedups(p, tr)
		if len(s) != m.MaxProcs {
			t.Fatalf("%s: %d entries", tr.Name, len(s))
		}
		if s[0] != 1 {
			t.Fatalf("%s: S(1) = %v", tr.Name, s[0])
		}
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1]-1e-9 {
				t.Fatalf("%s: speedup not monotone at P=%d: %v", tr.Name, i+1, s)
			}
		}
	}
}

// The adaptive (SAC) runtime never loses to its own serial execution.
func TestAdaptiveNeverSlowsDown(t *testing.T) {
	m := Enterprise4000()
	// A profile of only tiny coarse-level kernels.
	p := Profile{Impl: "tiny", Class: nas.ClassS}
	for level := 1; level <= 3; level++ {
		p.Regions = append(p.Regions, Region{
			RegionKey: RegionKey{Name: "resid", Level: level},
			Calls:     100, Seconds: 100 * 2e-7,
		})
	}
	for procs := 1; procs <= 10; procs++ {
		if tp := m.Predict(p, SAC, procs); tp > p.SerialSeconds()*(1+1e-9) {
			t.Fatalf("adaptive SAC slower than serial at P=%d: %v > %v",
				procs, tp, p.SerialSeconds())
		}
	}
	// A non-adaptive runtime pays fork/join on every tiny loop and loses.
	if tp := m.Predict(p, OpenMP, 10); tp <= p.SerialSeconds() {
		t.Fatalf("non-adaptive runtime shows no overhead on tiny loops: %v vs %v",
			tp, p.SerialSeconds())
	}
}

// Plane granularity: a level-1 grid has two interior planes, so no more
// than 2 chunks regardless of processors.
func TestPlaneGranularityLimit(t *testing.T) {
	m := Machine{MaxProcs: 10, Beta: 0}
	p := Profile{Impl: "coarse", Class: nas.ClassS, Regions: []Region{
		{RegionKey: RegionKey{Name: "resid", Level: 1}, Calls: 1, Seconds: 1.0},
	}}
	tr := Traits{Name: "ideal", Parallel: map[string]bool{"resid": true}}
	if got := m.Predict(p, tr, 10); got < 0.5-1e-9 {
		t.Fatalf("level-1 region exceeded 2-way parallelism: T = %v", got)
	}
	if got := at10(m, p, tr); got > 2+1e-9 {
		t.Fatalf("level-1 speedup %v > 2", got)
	}
}

// Sequential regions are untouched by P (Amdahl).
func TestSequentialRegionsUnaffected(t *testing.T) {
	m := Enterprise4000()
	p := Profile{Impl: "x", Class: nas.ClassS, Regions: []Region{
		{RegionKey: RegionKey{Name: "rprj3", Level: 8}, Calls: 1, Seconds: 1.0},
		{RegionKey: RegionKey{Name: "resid", Level: 8}, Calls: 1, Seconds: 1.0},
	}}
	// F77Auto parallelizes resid but not rprj3.
	t10 := m.Predict(p, F77Auto, 10)
	if t10 < 1.0 {
		t.Fatalf("sequential rprj3 share disappeared: T(10) = %v", t10)
	}
	if s := 2.0 / t10; s > 2.0 {
		t.Fatalf("Amdahl bound violated: speedup %v", s)
	}
}

func TestRelativeSpeedups(t *testing.T) {
	m := Enterprise4000()
	p := mgLikeProfile("sac", nas.ClassA, 0.2)
	own := m.Speedups(p, SAC)
	base := p.SerialSeconds() * 0.8 // a faster baseline (f77 serial)
	rel := m.RelativeSpeedups(p, SAC, base)
	for i := range rel {
		want := own[i] * 0.8
		if math.Abs(rel[i]-want) > 1e-9 {
			t.Fatalf("P=%d: relative %v, want %v", i+1, rel[i], want)
		}
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector("sac", nas.ClassS)
	c.Probe("resid", 5, 2*time.Millisecond)
	c.Probe("resid", 5, 3*time.Millisecond)
	c.Probe("smooth", 4, 1*time.Millisecond)
	p := c.Profile()
	if p.Impl != "sac" || p.Class.Name != 'S' {
		t.Fatal("labels lost")
	}
	if len(p.Regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(p.Regions))
	}
	// Sorted by level: smooth@4 first.
	if p.Regions[0].Name != "smooth" || p.Regions[0].Calls != 1 {
		t.Fatalf("region 0 = %+v", p.Regions[0])
	}
	if p.Regions[1].Calls != 2 || math.Abs(p.Regions[1].Seconds-5e-3) > 1e-12 {
		t.Fatalf("region 1 = %+v", p.Regions[1])
	}
	if math.Abs(p.SerialSeconds()-6e-3) > 1e-12 {
		t.Fatalf("serial = %v", p.SerialSeconds())
	}
}

func TestProfileString(t *testing.T) {
	p := mgLikeProfile("sac", nas.ClassW, 1e-3)
	s := p.String()
	for _, frag := range []string{"profile sac class W", "resid", "L6"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Profile.String missing %q:\n%s", frag, s)
		}
	}
}

// The alloc share is capped at half a call even for absurd trait values,
// keeping predictions finite and monotone.
func TestAllocCap(t *testing.T) {
	m := Machine{MaxProcs: 4, Beta: 0}
	p := Profile{Impl: "x", Class: nas.ClassS, Regions: []Region{
		{RegionKey: RegionKey{Name: "resid", Level: 8}, Calls: 1, Seconds: 1e-6},
	}}
	tr := Traits{Name: "greedy", AllocPerCall: 100, AllocCost: 1, // 100s nominal alloc
		Parallel: map[string]bool{"resid": true}}
	got := m.Predict(p, tr, 4)
	if got > 1e-6 {
		t.Fatalf("alloc cap failed: T = %v", got)
	}
}

// Sensitivity sweeps: each overhead parameter moves the endpoint in the
// expected direction, monotonically.
func TestSweepsMonotone(t *testing.T) {
	m := Enterprise4000()
	p := mgLikeProfile("sac", nas.ClassW, 1.5e-3)
	factors := []float64{0.25, 0.5, 1, 2, 4}

	beta := m.SweepBeta(p, SAC, factors)
	fj := m.SweepForkJoin(p, SAC, factors)
	alloc := m.SweepAlloc(p, SAC, factors)
	for name, pts := range map[string][]SweepPoint{"beta": beta, "forkjoin": fj, "alloc": alloc} {
		if len(pts) != len(factors) {
			t.Fatalf("%s: %d points", name, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].SpeedupAtMax > pts[i-1].SpeedupAtMax+1e-9 {
				t.Fatalf("%s: speedup not monotone in overhead: %+v", name, pts)
			}
		}
		if pts[0].SpeedupAtMax <= pts[len(pts)-1].SpeedupAtMax {
			t.Fatalf("%s: overhead had no effect: %+v", name, pts)
		}
	}
}

func TestWriteSensitivity(t *testing.T) {
	var buf strings.Builder
	m := Enterprise4000()
	p := mgLikeProfile("sac", nas.ClassW, 1.5e-3)
	m.WriteSensitivity(&buf, p, SAC)
	out := buf.String()
	for _, frag := range []string{"model sensitivity", "bus contention", "fork/join", "memory manager"} {
		if !strings.Contains(out, frag) {
			t.Errorf("sensitivity output missing %q:\n%s", frag, out)
		}
	}
}
