package mpi

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/metrics"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 1, 3, 4, 1023, 1024, -5} {
		h.Observe(v)
	}
	// 0 and -5 (clamped) land in bucket 0; 1,1 in bucket 1; 3 in bucket 2;
	// 4 in bucket 3; 1023 in bucket 10; 1024 in bucket 11.
	want := Hist{2, 2, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1}
	if len(h) != len(want) {
		t.Fatalf("bucket count = %d, want %d (%v)", len(h), len(want), h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, h[i], want[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if h.Bound(0) != 1 || h.Bound(1) != 2 || h.Bound(10) != 1024 {
		t.Errorf("Bound wrong: %d %d %d", h.Bound(0), h.Bound(1), h.Bound(10))
	}
}

func TestHistMergeAndQuantile(t *testing.T) {
	var a, b Hist
	a.Observe(1)
	b.Observe(1 << 20)
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d, want 2", a.Count())
	}
	if q := HistQuantile(a, 0.5); q != 2 {
		t.Errorf("p50 = %g, want 2", q)
	}
	if q := HistQuantile(a, 1.0); q != float64(1<<21) {
		t.Errorf("p100 = %g, want %d", q, 1<<21)
	}
	if !math.IsNaN(HistQuantile(nil, 0.5)) {
		t.Errorf("quantile of empty histogram should be NaN")
	}
}

// TestPeerStatsChannelWorld checks that the channel transport's per-peer
// rows agree with its aggregate counters, and that the per-peer blocked
// time sums exactly to ExchangeNanos.
func TestPeerStatsChannelWorld(t *testing.T) {
	w := NewWorld(2)
	const tag, n = 7, 64
	w.Run(func(c *Comm) {
		peer := 1 - c.Rank()
		buf := make([]float64, n)
		for i := 0; i < 5; i++ {
			if c.Rank() == 0 {
				c.Send(peer, tag, buf)
				c.Recv(peer, tag)
			} else {
				c.Recv(peer, tag)
				c.Send(peer, tag, buf)
			}
		}
	})
	for rank, s := range w.Stats() {
		var sentMsgs, recvMsgs, sentBytes uint64
		for _, p := range s.Peers {
			sentMsgs += p.SentMsgs
			recvMsgs += p.RecvMsgs
			sentBytes += p.SentBytes
			if p.Peer != 1-rank {
				t.Errorf("rank %d: unexpected peer %d", rank, p.Peer)
			}
			if p.Tag != tag {
				t.Errorf("rank %d: unexpected tag %d", rank, p.Tag)
			}
		}
		if sentMsgs != s.Messages {
			t.Errorf("rank %d: per-peer sent %d != Messages %d", rank, sentMsgs, s.Messages)
		}
		if recvMsgs != s.Messages {
			t.Errorf("rank %d: per-peer recv %d != %d (symmetric ping-pong)", rank, recvMsgs, s.Messages)
		}
		if sentBytes != s.Bytes {
			t.Errorf("rank %d: per-peer bytes %d != Bytes %d", rank, sentBytes, s.Bytes)
		}
		if got := s.BlockedNanos(); got != s.ExchangeNanos {
			t.Errorf("rank %d: per-peer blocked %d != ExchangeNanos %d", rank, got, s.ExchangeNanos)
		}
		if s.BlockedHist.Count() != 2*s.Messages {
			t.Errorf("rank %d: blocked hist count %d != sends+recvs %d", rank, s.BlockedHist.Count(), 2*s.Messages)
		}
		if s.QueueDepthHist.Count() != s.Messages {
			t.Errorf("rank %d: depth hist count %d != sends %d", rank, s.QueueDepthHist.Count(), s.Messages)
		}
	}
	tot := w.TotalStats()
	if got := tot.BlockedNanos(); got != tot.ExchangeNanos {
		t.Errorf("total per-peer blocked %d != total ExchangeNanos %d", got, tot.ExchangeNanos)
	}
	if tot.BlockedHist.Count() != 2*tot.Messages {
		t.Errorf("total blocked hist count %d != 2*Messages %d", tot.BlockedHist.Count(), 2*tot.Messages)
	}
}

func TestMergePeers(t *testing.T) {
	var s Stats
	s.MergePeers([]PeerStat{{Peer: 1, Tag: 2, SentMsgs: 1}, {Peer: 0, Tag: 5, RecvMsgs: 2}})
	s.MergePeers([]PeerStat{{Peer: 1, Tag: 2, SentMsgs: 3, SendBlockedNanos: 10}, {Peer: 1, Tag: 1, SentMsgs: 1}})
	want := []PeerStat{
		{Peer: 0, Tag: 5, RecvMsgs: 2},
		{Peer: 1, Tag: 1, SentMsgs: 1},
		{Peer: 1, Tag: 2, SentMsgs: 4, SendBlockedNanos: 10},
	}
	if len(s.Peers) != len(want) {
		t.Fatalf("rows = %+v, want %+v", s.Peers, want)
	}
	for i := range want {
		if s.Peers[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, s.Peers[i], want[i])
		}
	}
}

// TestWritePrometheusRoundTrip checks the exposition parses back with the
// repo's own strict parser and that the histogram series are cumulative
// and consistent.
func TestWritePrometheusRoundTrip(t *testing.T) {
	var rec CommRecorder
	rec.RecordSend(1, 3, 512, 1500, 2)
	rec.RecordSend(1, 3, 512, 0, 0)
	rec.RecordRecv(2, 3, 256, 9000)
	var s Stats
	s.Messages, s.Bytes, s.WireBytes, s.ExchangeNanos = 2, 1024, 1064, 10500
	rec.SnapshotInto(&s)

	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf, 3); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples, err := metrics.ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, buf.String())
	}
	find := func(name string, labels map[string]string) (float64, bool) {
	next:
		for _, smp := range samples {
			if smp.Name != name {
				continue
			}
			for k, v := range labels {
				if smp.Label(k) != v {
					continue next
				}
			}
			return smp.Value, true
		}
		return 0, false
	}
	if v, ok := find("mg_mpi_messages_total", map[string]string{"rank": "3"}); !ok || v != 2 {
		t.Errorf("messages_total = %v ok=%v, want 2", v, ok)
	}
	if v, ok := find("mg_mpi_peer_messages_total", map[string]string{"peer": "1", "tag": "3", "dir": "send"}); !ok || v != 2 {
		t.Errorf("peer send msgs = %v ok=%v, want 2", v, ok)
	}
	if v, ok := find("mg_mpi_peer_blocked_seconds_total", map[string]string{"peer": "2", "dir": "recv"}); !ok || v != 9000e-9 {
		t.Errorf("peer recv blocked = %v ok=%v, want 9e-6", v, ok)
	}
	if v, ok := find("mg_mpi_blocked_seconds_count", map[string]string{"rank": "3"}); !ok || v != 3 {
		t.Errorf("blocked hist count = %v ok=%v, want 3", v, ok)
	}
	// Buckets must be cumulative: the +Inf bucket equals the count.
	if v, ok := find("mg_mpi_blocked_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 3 {
		t.Errorf("+Inf bucket = %v ok=%v, want 3", v, ok)
	}
	if v, ok := find("mg_mpi_send_queue_depth_count", map[string]string{"rank": "3"}); !ok || v != 2 {
		t.Errorf("depth hist count = %v ok=%v, want 2", v, ok)
	}
}

// TestRecordSteadyStateZeroAlloc pins the acceptance requirement that the
// always-on stats path allocates nothing once a (peer, tag) pair has been
// seen and the histograms have grown to their working range.
func TestRecordSteadyStateZeroAlloc(t *testing.T) {
	var rec CommRecorder
	// Warm up: create the rows and grow both histograms past every bucket
	// the measured loop will touch.
	rec.RecordSend(1, 3, 4096, 1<<40, 1<<10)
	rec.RecordRecv(1, 3, 4096, 1<<40)
	allocs := testing.AllocsPerRun(1000, func() {
		rec.RecordSend(1, 3, 4096, 12345, 3)
		rec.RecordRecv(1, 3, 4096, 54321)
	})
	if allocs != 0 {
		t.Fatalf("steady-state record path allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkCommRecord(b *testing.B) {
	var rec CommRecorder
	rec.RecordSend(1, 3, 4096, 1<<40, 1<<10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.RecordSend(1, 3, 4096, int64(i), i&7)
	}
}
