package mpi

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestRunAllRanksExecute(t *testing.T) {
	w := NewWorld(5)
	var mask atomic.Int64
	w.Run(func(c *Comm) {
		if c.Size() != 5 {
			t.Errorf("Size = %d", c.Size())
		}
		mask.Add(1 << c.Rank())
	})
	if mask.Load() != 0b11111 {
		t.Fatalf("rank mask = %b", mask.Load())
	}
}

func TestSendRecvPointToPoint(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("Recv = %v", got)
			}
		}
	})
	total := w.TotalStats()
	if total.Messages != 1 || total.Bytes != 24 {
		t.Fatalf("stats = %+v", total)
	}
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not affect the receiver
		} else {
			if got := c.Recv(0, 0); got[0] != 42 {
				t.Errorf("received %v, want 42 (send did not copy)", got[0])
			}
		}
	})
}

func TestFIFOOrderingPerPair(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(1, i, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 5; i++ {
				if got := c.Recv(0, i); got[0] != float64(i) {
					t.Errorf("message %d out of order: %v", i, got)
				}
			}
		}
	})
}

func TestTagMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("tag mismatch not detected")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "tag") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{0})
		} else {
			c.Recv(0, 2)
		}
	})
}

func TestInvalidRankPanics(t *testing.T) {
	w := NewWorld(1)
	defer func() {
		if recover() == nil {
			t.Error("Send to invalid rank did not panic")
		}
	}()
	w.Run(func(c *Comm) { c.Send(3, 0, nil) })
}

func TestBarrierSynchronizes(t *testing.T) {
	w := NewWorld(4)
	var before, after atomic.Int32
	w.Run(func(c *Comm) {
		before.Add(1)
		c.Barrier()
		// Everyone must have incremented before anyone proceeds.
		if before.Load() != 4 {
			t.Errorf("rank %d passed the barrier with before = %d", c.Rank(), before.Load())
		}
		after.Add(1)
	})
	if after.Load() != 4 {
		t.Fatal("not all ranks finished")
	}
}

func TestBarrierReusable(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		for i := 0; i < 10; i++ {
			c.Barrier()
		}
	})
}

func TestAllReduceSumDeterministic(t *testing.T) {
	w := NewWorld(6)
	results := make([]float64, 6)
	w.Run(func(c *Comm) {
		results[c.Rank()] = c.AllReduceSum(1, float64(c.Rank())+0.5)
	})
	want := results[0]
	sum := 0.0
	for r := 0; r < 6; r++ {
		sum += float64(r) + 0.5
	}
	if want != sum {
		t.Fatalf("AllReduceSum = %v, want %v", want, sum)
	}
	for r, v := range results {
		if v != want {
			t.Fatalf("rank %d got %v, rank 0 got %v", r, v, want)
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		got := c.AllReduceMax(2, float64(-c.Rank()))
		if got != 0 {
			t.Errorf("AllReduceMax = %v, want 0", got)
		}
	})
}

func TestAllReduceSingleRank(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		if got := c.AllReduceSum(0, 7); got != 7 {
			t.Errorf("single-rank AllReduce = %v", got)
		}
	})
}

func TestBroadcast(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{3.14, 2.71}
		}
		got := c.Broadcast(5, 2, data)
		if len(got) != 2 || got[0] != 3.14 || got[1] != 2.71 {
			t.Errorf("rank %d Broadcast = %v", c.Rank(), got)
		}
	})
}

func TestSendRecvExchange(t *testing.T) {
	// A ring shift: every rank sends to the right, receives from the left.
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() - 1 + c.Size()) % c.Size()
		got := c.SendRecv(right, left, 9, []float64{float64(c.Rank())})
		if got[0] != float64(left) {
			t.Errorf("rank %d received %v, want %d", c.Rank(), got[0], left)
		}
	})
}

func TestPanicPropagation(t *testing.T) {
	w := NewWorld(3)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("rank panic was swallowed")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Other ranks block in a barrier; the aborting rank must release
		// them rather than deadlocking the test.
		defer func() { recover() }() // they get a "barrier broken" panic
		c.Barrier()
	})
}

// Property: AllReduceSum equals the rank-ordered sequential sum exactly
// (deterministic reduction order), for arbitrary per-rank values.
func TestAllReduceOrderQuick(t *testing.T) {
	f := func(vals [5]float32) bool {
		w := NewWorld(5)
		var out [5]float64
		w.Run(func(c *Comm) {
			out[c.Rank()] = c.AllReduceSum(0, float64(vals[c.Rank()]))
		})
		want := 0.0
		for _, v := range vals {
			want += float64(v)
		}
		for _, got := range out {
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccumulateAcrossRuns(t *testing.T) {
	w := NewWorld(2)
	body := func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 4))
		} else {
			c.Recv(0, 0)
		}
	}
	w.Run(body)
	w.Run(body)
	if got := w.TotalStats(); got.Messages != 2 || got.Bytes != 64 {
		t.Fatalf("accumulated stats = %+v", got)
	}
	per := w.Stats()
	if per[0].Messages != 2 || per[1].Messages != 0 {
		t.Fatalf("per-rank stats = %+v", per)
	}
}

func BenchmarkBarrier4(b *testing.B) {
	w := NewWorld(4)
	b.ResetTimer()
	w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			c.Barrier()
		}
	})
}

func BenchmarkHaloExchange(b *testing.B) {
	w := NewWorld(4)
	plane := make([]float64, 66*66)
	b.SetBytes(int64(len(plane) * 8 * 2))
	b.ResetTimer()
	w.Run(func(c *Comm) {
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() - 1 + c.Size()) % c.Size()
		for i := 0; i < b.N; i++ {
			c.Send(right, 1, plane)
			c.Recv(left, 1)
			c.Send(left, 2, plane)
			c.Recv(right, 2)
		}
	})
}

func TestWorldSize(t *testing.T) {
	if NewWorld(7).Size() != 7 {
		t.Fatal("World.Size wrong")
	}
}

// A Send stuck on a full mailbox must fail within the stall bound with a
// message naming the destination rank and the tag — the information a
// deadlocked halo exchange needs to be diagnosable.
func TestSendFullMailboxDiagnostics(t *testing.T) {
	w := NewWorld(2)
	w.Stall = 30 * time.Millisecond
	var msg string
	func() {
		defer func() { recover() }() // Run re-raises rank 0's panic
		w.Run(func(c *Comm) {
			if c.Rank() != 0 {
				return
			}
			defer func() {
				if r := recover(); r != nil {
					msg = fmt.Sprint(r)
					panic(r)
				}
			}()
			for i := 0; ; i++ {
				c.Send(1, 42, []float64{float64(i)})
			}
		})
	}()
	for _, want := range []string{"rank 1", "tag 42", "mailbox full"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("stalled Send panic %q does not mention %q", msg, want)
		}
	}
}

// A Recv blocked on a rank that has died (panicked) must fail promptly
// with a message naming the source rank and the tag.
func TestRecvFromDeadRankNamesRankAndTag(t *testing.T) {
	w := NewWorld(2)
	var msg string
	func() {
		defer func() { recover() }() // Run re-raises rank 1's panic
		w.Run(func(c *Comm) {
			if c.Rank() == 1 {
				panic("rank 1 dies")
			}
			defer func() {
				if r := recover(); r != nil {
					msg = fmt.Sprint(r)
				}
			}()
			c.Recv(1, 7)
		})
	}()
	for _, want := range []string{"rank 1", "tag 7", "dead"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("dead-peer Recv panic %q does not mention %q", msg, want)
		}
	}
}

// A Recv with no matching Send must fail at the stall bound, not hang.
func TestRecvStallTimesOut(t *testing.T) {
	w := NewWorld(2)
	w.Stall = 30 * time.Millisecond
	start := time.Now()
	var msg string
	func() {
		defer func() { recover() }()
		w.Run(func(c *Comm) {
			if c.Rank() != 0 {
				return
			}
			defer func() {
				if r := recover(); r != nil {
					msg = fmt.Sprint(r)
					panic(r)
				}
			}()
			c.Recv(1, 3)
		})
	}()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled Recv took %v, want ~30ms", elapsed)
	}
	for _, want := range []string{"rank 1", "tag 3"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("stalled Recv panic %q does not mention %q", msg, want)
		}
	}
}

// The channel transport implements the Transport seam directly: a pair of
// transports moves data without World.Run, and blocked exchange time is
// accounted in the stats.
func TestWorldTransportDirect(t *testing.T) {
	w := NewWorld(2)
	t0, t1 := w.Transport(0), w.Transport(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		data, err := t1.Recv(0, 5)
		if err != nil || len(data) != 2 || data[1] != 8 {
			t.Errorf("Recv = %v, %v", data, err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the receiver block (slow path)
	if err := t0.Send(1, 5, []float64{7, 8}); err != nil {
		t.Fatal(err)
	}
	<-done
	if st := w.Stats()[1]; st.ExchangeNanos <= 0 {
		t.Fatalf("blocked Recv recorded no exchange time: %+v", st)
	}
	if st := w.Stats()[0]; st.Messages != 1 || st.Bytes != 16 || st.WireBytes != 0 {
		t.Fatalf("sender stats = %+v (channel transport must report zero wire bytes)", st)
	}
}

// The message-based barrier fallback (used by transports without a native
// barrier) synchronizes and is reusable.
func TestMessageBarrierFallback(t *testing.T) {
	w := NewWorld(3)
	var before atomic.Int32
	w.Run(func(c *Comm) {
		// Strip the native barrier by re-wrapping the raw transport.
		cc := NewComm(noBarrier{c.Transport()})
		before.Add(1)
		cc.Barrier()
		if before.Load() != 3 {
			t.Errorf("rank %d passed the message barrier with before = %d", c.Rank(), before.Load())
		}
		cc.Barrier() // reusable
	})
}

// noBarrier hides the channel transport's native barrier so Comm takes
// the message-based path.
type noBarrier struct{ Transport }
