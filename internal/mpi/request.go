// Nonblocking point-to-point operations: the Request handle returned by
// Transport.Isend/Irecv, and the chaining machinery that keeps a stream
// of nonblocking operations FIFO per (pair, direction) — the ordering
// guarantee the blocking API already had, which tag-matched protocols
// (the solver's halo exchange) depend on.
//
// Semantics, shared by both transports (asserted by request_test.go and
// the mpinet nonblocking tests):
//
//   - An Isend is "in flight" from the moment it returns: the payload is
//     copied (or framed) at post time and will be delivered even if the
//     Request is dropped without Wait. Message and byte counters are
//     recorded at post; a dropped Request therefore never undercounts
//     traffic.
//   - Wait blocks until the operation completes and returns the received
//     payload (Irecv) or nil (Isend), plus the typed transport error if
//     the operation failed — a dead peer surfaces at Wait, never as a
//     hang. Wait may be called out of order across requests; chaining
//     completes operations in post order regardless.
//   - Double Wait is defined: the second and later calls return the same
//     (data, error) without blocking and without double-counting any
//     statistics — blocked time and the receive-side accounting are
//     latched on the first Wait only.
//   - A dropped Request (never waited) completes in the background. Its
//     blocked time and, for Irecv, its receive-side row are simply never
//     recorded — accounting describes what the caller observed.
//   - Test is a non-blocking Wait: done==false means still in flight;
//     done==true latches exactly like a first Wait.
//
// Blocked time is measured inside Wait, not inside the post call: the
// whole point of the nonblocking API is that the caller computes while
// the wire drains, so ExchangeNanos (and the per-peer blocked rows)
// count only the time the caller actually stood still.
package mpi

import (
	"sync"
	"time"
)

// Request is a waitable handle on a nonblocking Isend/Irecv.
type Request interface {
	// Wait blocks until the operation completes, returning the payload
	// (Irecv; nil for Isend) and the typed transport error if it failed.
	// Safe to call more than once; later calls return the same result
	// immediately.
	Wait() ([]float64, error)
	// Test polls for completion without blocking. done==true latches the
	// result exactly like a first Wait.
	Test() (done bool, data []float64, err error)
}

// WaitAll waits for every request and returns the first error
// encountered (in argument order), after all of them have completed.
func WaitAll(reqs ...Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AsyncRequest is the Request implementation shared by the channel
// transport and mpinet. The transport completes it (exactly once) with
// Complete; the first Wait/successful Test invokes onWait with the time
// the caller spent blocked, which is where the transports hang their
// deferred accounting (blocked nanos, receive rows).
type AsyncRequest struct {
	done chan struct{}
	data []float64
	err  error

	mu     sync.Mutex
	waited bool
	onWait func(blockedNanos int64, data []float64, err error)
}

// NewRequest creates an incomplete request. onFirstWait, if non-nil, is
// invoked exactly once — by the first Wait (with the time that call
// blocked) or the first successful Test (with zero) — on the waiting
// goroutine, which for the channel transport must be the rank's own
// (its aggregate Stats are goroutine-owned).
func NewRequest(onFirstWait func(blockedNanos int64, data []float64, err error)) *AsyncRequest {
	return &AsyncRequest{done: make(chan struct{}), onWait: onFirstWait}
}

// CompletedRequest returns an already-finished request — the fast paths
// (message already buffered, queue slot free, validation error) complete
// at post time and Wait returns immediately.
func CompletedRequest(data []float64, err error) *AsyncRequest {
	r := &AsyncRequest{done: make(chan struct{}), data: data, err: err}
	close(r.done)
	return r
}

// Complete finishes the request with its result. Must be called exactly
// once, and never on a CompletedRequest.
func (r *AsyncRequest) Complete(data []float64, err error) {
	r.data = data
	r.err = err
	close(r.done)
}

// Done exposes the completion channel for chaining: the next operation
// on the same (peer, direction) stream starts only after this one
// completed, preserving FIFO order.
func (r *AsyncRequest) Done() <-chan struct{} { return r.done }

// completed reports whether the operation has finished (without
// latching anything).
func (r *AsyncRequest) completed() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// latch runs the first-wait hook exactly once.
func (r *AsyncRequest) latch(blocked int64) {
	r.mu.Lock()
	if !r.waited {
		r.waited = true
		if r.onWait != nil {
			r.onWait(blocked, r.data, r.err)
		}
	}
	r.mu.Unlock()
}

// Wait implements Request.
func (r *AsyncRequest) Wait() ([]float64, error) {
	var blocked int64
	select {
	case <-r.done:
	default:
		start := time.Now()
		<-r.done
		blocked = int64(time.Since(start))
	}
	r.latch(blocked)
	return r.data, r.err
}

// Test implements Request.
func (r *AsyncRequest) Test() (bool, []float64, error) {
	select {
	case <-r.done:
		r.latch(0)
		return true, r.data, r.err
	default:
		return false, nil, nil
	}
}

// OpChain serializes one direction's nonblocking operations per peer so
// that a queue-full (or inbox-empty) slow path cannot be overtaken by a
// later operation on the same stream: each posted request chains on the
// previous one's completion. The fast path stays fast — with no pending
// predecessor the transport may complete the operation inline. Both
// transports embed two (send and receive); the zero value is ready.
type OpChain struct {
	mu   sync.Mutex
	tail map[int]*AsyncRequest
}

// Pending returns the still-running predecessor for key, or nil — the
// check a blocking call makes before its fast path, so it cannot overtake
// a nonblocking operation still queued on the same stream.
func (c *OpChain) Pending(key int) *AsyncRequest {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev := c.tail[key]; prev != nil && !prev.completed() {
		return prev
	}
	return nil
}

// Push registers r as the stream tail for key and returns the previous
// tail if it is still in flight (the request r must chain on), nil
// otherwise.
func (c *OpChain) Push(key int, r *AsyncRequest) *AsyncRequest {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tail == nil {
		c.tail = make(map[int]*AsyncRequest)
	}
	prev := c.tail[key]
	c.tail[key] = r
	if prev != nil && !prev.completed() {
		return prev
	}
	return nil
}
