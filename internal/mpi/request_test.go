package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// peerRow finds the (peer, tag) row in a snapshot, or a zero row.
func peerRow(s Stats, peer, tag int) PeerStat {
	for _, p := range s.Peers {
		if p.Peer == peer && p.Tag == tag {
			return p
		}
	}
	return PeerStat{}
}

// A nonblocking ring exchange: every rank posts its receive, then its
// send, computes "while the wire drains", and waits. The split
// accounting must be indistinguishable from the blocking API's: blocked
// time sums match ExchangeNanos, and both histograms hold exactly one
// sample per message.
func TestRequestOverlapExchangeStats(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		tr := c.Transport()
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() - 1 + c.Size()) % c.Size()
		rr := tr.Irecv(left, 1)
		sr := tr.Isend(right, 1, []float64{float64(c.Rank())})
		data, err := rr.Wait()
		if err != nil || len(data) != 1 || data[0] != float64(left) {
			t.Errorf("rank %d received %v, %v; want [%d]", c.Rank(), data, err, left)
		}
		if err := WaitAll(sr); err != nil {
			t.Errorf("rank %d send failed: %v", c.Rank(), err)
		}
	})
	for rank, st := range w.Stats() {
		if st.Messages != 1 || st.Bytes != 8 {
			t.Errorf("rank %d counters = %+v", rank, st)
		}
		if st.BlockedNanos() != st.ExchangeNanos {
			t.Errorf("rank %d per-peer blocked %d != ExchangeNanos %d",
				rank, st.BlockedNanos(), st.ExchangeNanos)
		}
		if got := st.BlockedHist.Count(); got != 2 { // one send Wait + one recv Wait
			t.Errorf("rank %d blocked-hist samples = %d, want 2", rank, got)
		}
		if got := st.QueueDepthHist.Count(); got != 1 {
			t.Errorf("rank %d depth-hist samples = %d, want 1", rank, got)
		}
	}
}

// Waits may happen in any order: the per-stream chain completes
// operations in post order regardless of which Request the caller
// blocks on first.
func TestRequestOutOfOrderWait(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		tr := c.Transport()
		if c.Rank() == 0 {
			for tag := 0; tag < 3; tag++ {
				if err := tr.Send(1, tag, []float64{float64(tag)}); err != nil {
					t.Errorf("send tag %d: %v", tag, err)
				}
			}
			return
		}
		reqs := make([]Request, 3)
		for tag := 0; tag < 3; tag++ {
			reqs[tag] = tr.Irecv(0, tag)
		}
		for tag := 2; tag >= 0; tag-- { // reverse of post order
			data, err := reqs[tag].Wait()
			if err != nil || data[0] != float64(tag) {
				t.Errorf("tag %d: got %v, %v", tag, data, err)
			}
		}
	})
	if st := w.Stats()[1]; peerRow(st, 0, 2).RecvMsgs != 1 {
		t.Fatalf("rank 1 rows = %+v", st.Peers)
	}
}

// Double Wait is defined: the second call returns the same result
// without blocking and without double-counting — the receive row is
// latched by the first Wait only.
func TestRequestDoubleWaitLatchesOnce(t *testing.T) {
	w := NewWorld(2)
	t0, t1 := w.Transport(0), w.Transport(1)
	if err := t0.Send(1, 4, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	req := t1.Irecv(0, 4)
	d1, err1 := req.Wait()
	d2, err2 := req.Wait()
	if err1 != nil || err2 != nil || len(d1) != 2 || len(d2) != 2 || d1[0] != d2[0] {
		t.Fatalf("Waits disagree: %v,%v / %v,%v", d1, err1, d2, err2)
	}
	st := w.Stats()[1]
	if row := peerRow(st, 0, 4); row.RecvMsgs != 1 || row.RecvBytes != 16 {
		t.Fatalf("double Wait double-counted: %+v", row)
	}
	if got := st.BlockedHist.Count(); got != 1 {
		t.Fatalf("blocked-hist samples = %d, want 1", got)
	}
}

// A dropped Isend is still delivered (the payload was captured at post),
// and its message counters were recorded at post — but no blocked-time
// sample, because the caller never stood still for it. A dropped Irecv
// consumes its message in the background without ever appearing in the
// receive rows.
func TestRequestDroppedStillDelivered(t *testing.T) {
	w := NewWorld(2)
	t0, t1 := w.Transport(0), w.Transport(1)

	buf := []float64{42}
	t0.Isend(1, 9, buf) // dropped: never waited
	buf[0] = -1         // must not affect the in-flight copy
	if data, err := t1.Recv(0, 9); err != nil || data[0] != 42 {
		t.Fatalf("Recv after dropped Isend = %v, %v", data, err)
	}
	st0 := w.Stats()[0]
	if st0.Messages != 1 || peerRow(st0, 1, 9).SentMsgs != 1 {
		t.Fatalf("dropped Isend undercounted: %+v", st0)
	}
	if got := st0.BlockedHist.Count(); got != 0 {
		t.Fatalf("dropped Isend charged blocked time: %d samples", got)
	}

	dropped := t1.Irecv(0, 10).(*AsyncRequest) // posted before the send: slow path
	if err := t0.Send(1, 10, []float64{7}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-dropped.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("dropped Irecv never consumed its message")
	}
	st1 := w.Stats()[1]
	if row := peerRow(st1, 0, 10); row.RecvMsgs != 0 {
		t.Fatalf("dropped Irecv recorded a receive row: %+v", row)
	}
}

// Test is a non-blocking Wait: false while in flight, and a true result
// latches exactly once.
func TestRequestTestPolls(t *testing.T) {
	w := NewWorld(2)
	t0, t1 := w.Transport(0), w.Transport(1)
	req := t1.Irecv(0, 3)
	if done, _, _ := req.Test(); done {
		t.Fatal("Test reported done before any send")
	}
	if err := t0.Send(1, 3, []float64{9}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done, data, err := req.Test()
		if done {
			if err != nil || data[0] != 9 {
				t.Fatalf("Test completed with %v, %v", data, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Test never reported completion")
		}
		time.Sleep(time.Millisecond)
	}
	if row := peerRow(w.Stats()[1], 0, 3); row.RecvMsgs != 1 {
		t.Fatalf("successful Test did not latch the receive row: %+v", row)
	}
}

// Nonblocking sends queued past the mailbox depth stay FIFO, and a
// blocking Send posted behind them cannot overtake: the receiver drains
// every tag in post order.
func TestRequestFIFOUnderBackpressure(t *testing.T) {
	const n = 3 * mailboxDepth
	w := NewWorld(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tr := w.Transport(1)
		time.Sleep(10 * time.Millisecond) // let the sender overrun the mailbox
		for tag := 0; tag < n; tag++ {
			data, err := tr.Recv(0, tag)
			if err != nil || data[0] != float64(tag) {
				t.Errorf("tag %d out of order: %v, %v", tag, data, err)
				return
			}
		}
		if data, err := tr.Recv(0, n); err != nil || data[0] != float64(n) {
			t.Errorf("blocking Send overtook the queued Isends: %v, %v", data, err)
		}
	}()
	tr := w.Transport(0)
	reqs := make([]Request, n)
	for tag := 0; tag < n; tag++ {
		reqs[tag] = tr.Isend(1, tag, []float64{float64(tag)})
	}
	if err := tr.Send(1, n, []float64{float64(n)}); err != nil { // chains behind the Isends
		t.Fatal(err)
	}
	if err := WaitAll(reqs...); err != nil {
		t.Fatal(err)
	}
	<-done
	if st := w.Stats()[0]; st.Messages != n+1 {
		t.Fatalf("sender counted %d messages, want %d", st.Messages, n+1)
	}
}

// An Irecv from a rank that dies surfaces the failure at Wait — never a
// hang — and repeated Waits return the same error.
func TestRequestIrecvDeadRankFailsAtWait(t *testing.T) {
	w := NewWorld(2)
	var msg string
	func() {
		defer func() { recover() }() // Run re-raises rank 1's panic
		w.Run(func(c *Comm) {
			if c.Rank() == 1 {
				panic("rank 1 dies")
			}
			req := c.Transport().Irecv(1, 7)
			_, err := req.Wait()
			if err == nil {
				t.Error("Irecv from a dead rank completed successfully")
				return
			}
			msg = err.Error()
			if _, err2 := req.Wait(); err2 == nil || err2.Error() != msg {
				t.Errorf("second Wait returned %v, want the latched %q", err2, msg)
			}
		})
	}()
	for _, want := range []string{"rank 1", "dead"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("dead-peer Wait error %q does not mention %q", msg, want)
		}
	}
}

// Posting to an invalid rank fails at Wait with a diagnosable error and
// records no traffic.
func TestRequestInvalidRank(t *testing.T) {
	w := NewWorld(1)
	tr := w.Transport(0)
	if _, err := tr.Isend(3, 0, []float64{1}).Wait(); err == nil || !strings.Contains(err.Error(), "invalid rank 3") {
		t.Fatalf("Isend to invalid rank: %v", err)
	}
	if _, err := tr.Irecv(-1, 0).Wait(); err == nil || !strings.Contains(err.Error(), "invalid rank -1") {
		t.Fatalf("Irecv from invalid rank: %v", err)
	}
	if st := w.Stats()[0]; st.Messages != 0 || len(st.Peers) != 0 {
		t.Fatalf("invalid-rank posts recorded traffic: %+v", st)
	}
}

// WaitAll waits for everything and reports the first error in argument
// order, skipping nils.
func TestRequestWaitAllFirstError(t *testing.T) {
	boom := errors.New("boom")
	later := errors.New("later")
	err := WaitAll(CompletedRequest(nil, nil), nil,
		CompletedRequest(nil, boom), CompletedRequest(nil, later))
	if err != boom {
		t.Fatalf("WaitAll = %v, want %v", err, boom)
	}
	if err := WaitAll(); err != nil {
		t.Fatalf("empty WaitAll = %v", err)
	}
}
