// Per-(peer, tag) communication accounting, shared by both transports.
// The aggregate Stats counters (Messages, Bytes, ExchangeNanos) say how
// much a rank communicated; the PeerStat rows and the histograms here say
// with whom, under which tag, and how the blocked time was distributed —
// the raw material of the skew/overlap report (DESIGN.md §3.5) and the
// mgrank Prometheus endpoint.
//
// A CommRecorder is one rank's collector. Its hot path (RecordSend /
// RecordRecv) takes one mutex, bumps a *PeerStat found in a small map and
// observes two histograms — zero allocations once a (peer, tag) pair has
// been seen, which a benchmark pins (commstats_test.go). Snapshots sort
// rows by (peer, tag) so reports and JSON output are deterministic.
package mpi

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
)

// PeerStat is one rank's traffic with one peer under one tag: how many
// messages and payload bytes went each way, and how long the rank was
// blocked inside the transport for them. The channel transport counts
// only slow-path waits (an immediate channel operation costs nothing
// measurable); internal/mpinet counts full call durations — in both
// cases the per-peer nanos sum to the rank's aggregate ExchangeNanos.
type PeerStat struct {
	Peer             int    `json:"peer"`
	Tag              int    `json:"tag"`
	SentMsgs         uint64 `json:"sentMsgs,omitempty"`
	SentBytes        uint64 `json:"sentBytes,omitempty"`
	RecvMsgs         uint64 `json:"recvMsgs,omitempty"`
	RecvBytes        uint64 `json:"recvBytes,omitempty"`
	SendBlockedNanos int64  `json:"sendBlockedNs,omitempty"`
	RecvBlockedNanos int64  `json:"recvBlockedNs,omitempty"`
}

// Hist is a power-of-two-bucketed histogram of non-negative samples:
// bucket 0 counts exact zeros, bucket i (i ≥ 1) counts values v with
// 2^(i-1) <= v < 2^i. It grows on demand and never shrinks, so the
// steady-state Observe path is allocation-free.
type Hist []uint64

// histIndex maps a sample to its bucket.
func histIndex(v uint64) int { return bits.Len64(v) }

// Observe adds one sample. Negative samples (clock weirdness) clamp to
// zero rather than corrupting the bucket index.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := histIndex(uint64(v))
	if n := len(*h); i >= n {
		*h = append(*h, make(Hist, i+1-n)...)
	}
	(*h)[i]++
}

// Merge adds another histogram's counts into h.
func (h *Hist) Merge(o Hist) {
	if n := len(o); n > len(*h) {
		*h = append(*h, make(Hist, n-len(*h))...)
	}
	for i, c := range o {
		(*h)[i] += c
	}
}

// Count returns the total number of observations.
func (h Hist) Count() uint64 {
	var n uint64
	for _, c := range h {
		n += c
	}
	return n
}

// Bound returns the exclusive upper bound of bucket i: 1 for bucket 0
// (zeros), 2^i for bucket i.
func (h Hist) Bound(i int) uint64 {
	if i == 0 {
		return 1
	}
	return 1 << uint(i)
}

// clone returns an independent copy (nil stays nil).
func (h Hist) clone() Hist {
	if h == nil {
		return nil
	}
	return append(Hist(nil), h...)
}

// peerTag keys a recorder's per-peer rows.
type peerTag struct{ peer, tag int }

// CommRecorder collects one rank's per-(peer, tag) rows and the two
// histograms. The zero value is ready to use.
type CommRecorder struct {
	mu      sync.Mutex
	peers   map[peerTag]*PeerStat
	blocked Hist // nanoseconds blocked per Send/Recv call
	depth   Hist // send-queue depth seen at enqueue time
}

func (r *CommRecorder) row(peer, tag int) *PeerStat {
	if r.peers == nil {
		r.peers = make(map[peerTag]*PeerStat)
	}
	k := peerTag{peer, tag}
	p := r.peers[k]
	if p == nil {
		p = &PeerStat{Peer: peer, Tag: tag}
		r.peers[k] = p
	}
	return p
}

// RecordSend accounts one completed send: payload bytes, the time the
// caller was blocked inside the transport, and the departure-queue depth
// observed before enqueue (mailbox fill for the channel transport, the
// writer goroutine's backlog for mpinet).
func (r *CommRecorder) RecordSend(peer, tag int, payloadBytes uint64, blockedNanos int64, queueDepth int) {
	r.mu.Lock()
	p := r.row(peer, tag)
	p.SentMsgs++
	p.SentBytes += payloadBytes
	p.SendBlockedNanos += blockedNanos
	r.blocked.Observe(blockedNanos)
	r.depth.Observe(int64(queueDepth))
	r.mu.Unlock()
}

// RecordSendPosted accounts a nonblocking send at post time: the message
// and byte counters and the departure-queue depth, but no blocked time —
// for nonblocking operations blocked time is measured inside Wait
// (RecordSendWait), not inside the post call. The blocked-time histogram
// therefore gets exactly one sample per message in both APIs: the call
// for blocking sends, the Wait for nonblocking ones.
func (r *CommRecorder) RecordSendPosted(peer, tag int, payloadBytes uint64, queueDepth int) {
	r.mu.Lock()
	p := r.row(peer, tag)
	p.SentMsgs++
	p.SentBytes += payloadBytes
	r.depth.Observe(int64(queueDepth))
	r.mu.Unlock()
}

// RecordSendWait accounts the blocked time of a nonblocking send's first
// Wait, completing the row its RecordSendPosted opened.
func (r *CommRecorder) RecordSendWait(peer, tag int, blockedNanos int64) {
	r.mu.Lock()
	p := r.row(peer, tag)
	p.SendBlockedNanos += blockedNanos
	r.blocked.Observe(blockedNanos)
	r.mu.Unlock()
}

// RecordRecv accounts one completed receive.
func (r *CommRecorder) RecordRecv(peer, tag int, payloadBytes uint64, blockedNanos int64) {
	r.mu.Lock()
	p := r.row(peer, tag)
	p.RecvMsgs++
	p.RecvBytes += payloadBytes
	p.RecvBlockedNanos += blockedNanos
	r.blocked.Observe(blockedNanos)
	r.mu.Unlock()
}

// SnapshotInto copies the recorder's rows and histograms into s, sorted
// by (peer, tag) for deterministic output.
func (r *CommRecorder) SnapshotInto(s *Stats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.peers) > 0 {
		s.Peers = make([]PeerStat, 0, len(r.peers))
		for _, p := range r.peers {
			s.Peers = append(s.Peers, *p)
		}
		sort.Slice(s.Peers, func(i, j int) bool {
			if s.Peers[i].Peer != s.Peers[j].Peer {
				return s.Peers[i].Peer < s.Peers[j].Peer
			}
			return s.Peers[i].Tag < s.Peers[j].Tag
		})
	}
	s.BlockedHist = r.blocked.clone()
	s.QueueDepthHist = r.depth.clone()
}

// MergePeers folds another rank's rows into s by (peer, tag) — used by
// TotalStats and report code that aggregates a world. The result
// describes volume per (peer, tag) across all ranks; the Peer field then
// names the remote end as seen by each contributing rank.
func (s *Stats) MergePeers(rows []PeerStat) {
	for _, p := range rows {
		i := sort.Search(len(s.Peers), func(i int) bool {
			if s.Peers[i].Peer != p.Peer {
				return s.Peers[i].Peer > p.Peer
			}
			return s.Peers[i].Tag >= p.Tag
		})
		if i < len(s.Peers) && s.Peers[i].Peer == p.Peer && s.Peers[i].Tag == p.Tag {
			q := &s.Peers[i]
			q.SentMsgs += p.SentMsgs
			q.SentBytes += p.SentBytes
			q.RecvMsgs += p.RecvMsgs
			q.RecvBytes += p.RecvBytes
			q.SendBlockedNanos += p.SendBlockedNanos
			q.RecvBlockedNanos += p.RecvBlockedNanos
			continue
		}
		s.Peers = append(s.Peers, PeerStat{})
		copy(s.Peers[i+1:], s.Peers[i:])
		s.Peers[i] = p
	}
}

// BlockedNanos sums the per-peer blocked time (send + recv) of the rows
// — by construction equal to the transport's aggregate ExchangeNanos.
func (s Stats) BlockedNanos() int64 {
	var n int64
	for _, p := range s.Peers {
		n += p.SendBlockedNanos + p.RecvBlockedNanos
	}
	return n
}

// WritePrometheus renders the stats in the Prometheus text exposition
// format (0.0.4), the same dialect internal/metrics speaks: aggregate
// counters, per-(peer, tag) labeled counters, and the blocked-time and
// queue-depth histograms with power-of-two le bounds. rank labels every
// series so scrapes from several mgrank processes aggregate cleanly.
func (s Stats) WritePrometheus(w io.Writer, rank int) error {
	bw := &errWriter{w: w}
	p := func(format string, args ...any) { fmt.Fprintf(bw, format, args...) }

	p("# HELP mg_mpi_messages_total Point-to-point messages sent by this rank.\n")
	p("# TYPE mg_mpi_messages_total counter\n")
	p("mg_mpi_messages_total{rank=\"%d\"} %d\n", rank, s.Messages)
	p("# HELP mg_mpi_payload_bytes_total Payload bytes sent by this rank.\n")
	p("# TYPE mg_mpi_payload_bytes_total counter\n")
	p("mg_mpi_payload_bytes_total{rank=\"%d\"} %d\n", rank, s.Bytes)
	p("# HELP mg_mpi_wire_bytes_total Framed bytes put on the wire by this rank.\n")
	p("# TYPE mg_mpi_wire_bytes_total counter\n")
	p("mg_mpi_wire_bytes_total{rank=\"%d\"} %d\n", rank, s.WireBytes)
	p("# HELP mg_mpi_exchange_seconds_total Wall time blocked in communication.\n")
	p("# TYPE mg_mpi_exchange_seconds_total counter\n")
	p("mg_mpi_exchange_seconds_total{rank=\"%d\"} %g\n", rank, float64(s.ExchangeNanos)/1e9)

	if len(s.Peers) > 0 {
		p("# HELP mg_mpi_peer_messages_total Messages exchanged with one peer under one tag, by direction.\n")
		p("# TYPE mg_mpi_peer_messages_total counter\n")
		for _, ps := range s.Peers {
			p("mg_mpi_peer_messages_total{rank=\"%d\",peer=\"%d\",tag=\"%d\",dir=\"send\"} %d\n", rank, ps.Peer, ps.Tag, ps.SentMsgs)
			p("mg_mpi_peer_messages_total{rank=\"%d\",peer=\"%d\",tag=\"%d\",dir=\"recv\"} %d\n", rank, ps.Peer, ps.Tag, ps.RecvMsgs)
		}
		p("# HELP mg_mpi_peer_payload_bytes_total Payload bytes exchanged with one peer under one tag, by direction.\n")
		p("# TYPE mg_mpi_peer_payload_bytes_total counter\n")
		for _, ps := range s.Peers {
			p("mg_mpi_peer_payload_bytes_total{rank=\"%d\",peer=\"%d\",tag=\"%d\",dir=\"send\"} %d\n", rank, ps.Peer, ps.Tag, ps.SentBytes)
			p("mg_mpi_peer_payload_bytes_total{rank=\"%d\",peer=\"%d\",tag=\"%d\",dir=\"recv\"} %d\n", rank, ps.Peer, ps.Tag, ps.RecvBytes)
		}
		p("# HELP mg_mpi_peer_blocked_seconds_total Time blocked in the transport per peer and tag, by direction.\n")
		p("# TYPE mg_mpi_peer_blocked_seconds_total counter\n")
		for _, ps := range s.Peers {
			p("mg_mpi_peer_blocked_seconds_total{rank=\"%d\",peer=\"%d\",tag=\"%d\",dir=\"send\"} %g\n", rank, ps.Peer, ps.Tag, float64(ps.SendBlockedNanos)/1e9)
			p("mg_mpi_peer_blocked_seconds_total{rank=\"%d\",peer=\"%d\",tag=\"%d\",dir=\"recv\"} %g\n", rank, ps.Peer, ps.Tag, float64(ps.RecvBlockedNanos)/1e9)
		}
	}

	writeHist := func(name, help string, h Hist, scale float64) {
		p("# HELP %s %s\n", name, help)
		p("# TYPE %s histogram\n", name)
		var cum uint64
		var sum float64
		for i, c := range h {
			cum += c
			// Bucket midpoint-free sum: use the exclusive bound as the
			// conventional overestimate; exact sums live in the counter
			// series above.
			sum += float64(c) * float64(h.Bound(i)) * scale
			p("%s_bucket{rank=\"%d\",le=\"%g\"} %d\n", name, rank, float64(h.Bound(i))*scale, cum)
		}
		p("%s_bucket{rank=\"%d\",le=\"+Inf\"} %d\n", name, rank, cum)
		p("%s_sum{rank=\"%d\"} %g\n", name, rank, sum)
		p("%s_count{rank=\"%d\"} %d\n", name, rank, cum)
	}
	writeHist("mg_mpi_blocked_seconds", "Blocked time per Send/Recv call.", s.BlockedHist, 1e-9)
	writeHist("mg_mpi_send_queue_depth", "Departure-queue depth observed at enqueue.", s.QueueDepthHist, 1)

	return bw.err
}

// errWriter latches the first write error so the exposition code above
// can stay free of per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// HistQuantile returns an upper bound for the q-quantile (0 < q <= 1) of
// the histogram, in the sample's native unit — the exclusive bound of
// the bucket where the cumulative count crosses q. Returns NaN on an
// empty histogram.
func HistQuantile(h Hist, q float64) float64 {
	total := h.Count()
	if total == 0 {
		return math.NaN()
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h {
		cum += c
		if cum >= target {
			return float64(h.Bound(i))
		}
	}
	return float64(h.Bound(len(h) - 1))
}
