package mpi

import "fmt"

// Transport is the point-to-point substrate one rank runs on: the
// contract is MPI-flavoured — Send/Recv with (source, tag) matching and
// FIFO ordering per (src, dst) pair — but says nothing about how bytes
// move. Two implementations exist:
//
//   - the channel runtime in this package (all ranks in one address
//     space, the "network" is Go channels — the simulation the original
//     future-work comparison runs on), and
//   - internal/mpinet, a real TCP transport with framed messages,
//     checksums and per-peer writer goroutines, for runs where every
//     rank is its own OS process (cmd/mgrank).
//
// Errors are returned, not panicked, so a transport can report a dead
// peer, a timeout or a corrupt frame precisely; Comm converts them to
// panics that name the (rank, tag) pair, which is what a stuck halo
// exchange needs to be diagnosable.
//
// A Transport is used by a single rank. Send and Recv may be called from
// multiple goroutines of that rank, but two goroutines must not Recv
// from the same source concurrently (messages would race for the tag).
type Transport interface {
	// Rank returns this rank's id, 0 <= Rank < Size.
	Rank() int
	// Size returns the world size.
	Size() int
	// Send transmits a copy of data to dst with the given tag. It blocks
	// only for backpressure (a full peer queue) and must preserve
	// per-(src, dst) FIFO ordering.
	Send(dst, tag int, data []float64) error
	// Recv blocks for the next message from src, which must carry the
	// expected tag (per-pair FIFO makes a mismatch a protocol error, not
	// a reordering).
	Recv(src, tag int) ([]float64, error)
	// Isend posts a send without blocking: the payload is captured at
	// post time and delivered in program order with every other send to
	// dst (blocking or not). Completion — and any transport error — is
	// observed through the returned Request; blocked time is measured
	// inside Wait, not here. See request.go for the full contract.
	Isend(dst, tag int, data []float64) Request
	// Irecv posts a receive without blocking. The returned Request's
	// Wait yields the payload; receives from src complete in post order,
	// so tag matching behaves exactly as under blocking Recv.
	Irecv(src, tag int) Request
	// Stats snapshots this rank's accumulated traffic counters.
	Stats() Stats
	// Close tears down the rank's connections. It must be safe to call
	// more than once and must unblock pending Send/Recv calls.
	Close() error
}

// barrierTransport is implemented by transports with a native barrier
// (the channel runtime uses a shared in-process barrier). Comm falls
// back to a message-based barrier otherwise.
type barrierTransport interface {
	Barrier() error
}

// tagInternal is the tag space reserved for Comm-level collectives built
// on Send/Recv (the message-based barrier). Negative tags never collide
// with application tags, which are conventionally small positive ints.
const tagInternal = -1

// Comm is one rank's communicator: the blocking, panic-on-error API the
// solver kernels program against, plus deterministic collectives built
// from point-to-point messages. A Comm is a thin veneer over a
// Transport; NewComm adapts any transport, and World.Run hands each rank
// a Comm over the in-process channel transport.
type Comm struct {
	t Transport
}

// NewComm wraps a transport in the communicator API.
func NewComm(t Transport) *Comm { return &Comm{t: t} }

// Transport returns the underlying transport.
func (c *Comm) Transport() Transport { return c.t }

// Rank returns this rank's id, 0 <= Rank < Size.
func (c *Comm) Rank() int { return c.t.Rank() }

// Size returns the world size.
func (c *Comm) Size() int { return c.t.Size() }

// Send transmits a copy of data to dst with the given tag. It blocks
// only for backpressure; a transport failure (dead peer, stalled
// mailbox, timeout) panics with the (rank, tag) pair so a stuck exchange
// names the culprit.
func (c *Comm) Send(dst, tag int, data []float64) {
	if err := c.t.Send(dst, tag, data); err != nil {
		panic(fmt.Sprintf("mpi: rank %d: Send to rank %d (tag %d): %v",
			c.t.Rank(), dst, tag, err))
	}
}

// Recv receives the next message from src, which must carry the expected
// tag. Transport failures panic with the (rank, tag) pair.
func (c *Comm) Recv(src, tag int) []float64 {
	data, err := c.t.Recv(src, tag)
	if err != nil {
		panic(fmt.Sprintf("mpi: rank %d: Recv from rank %d (tag %d): %v",
			c.t.Rank(), src, tag, err))
	}
	return data
}

// Pending is an in-flight nonblocking operation posted through the Comm
// veneer: like Comm.Send/Recv it converts transport errors to panics
// naming the (rank, peer, tag) triple, but only when they surface — at
// Wait, where a nonblocking failure becomes observable.
type Pending struct {
	req       Request
	rank      int
	peer, tag int
	recv      bool
}

// Wait blocks until the operation completes and returns the payload
// (nil for a send). Transport failures panic with the rank/peer/tag
// named, matching Comm.Send/Recv.
func (p *Pending) Wait() []float64 {
	data, err := p.req.Wait()
	if err != nil {
		op := "Isend to"
		if p.recv {
			op = "Irecv from"
		}
		panic(fmt.Sprintf("mpi: rank %d: %s rank %d (tag %d): %v",
			p.rank, op, p.peer, p.tag, err))
	}
	return data
}

// Request returns the underlying transport request (for Test/WaitAll).
func (p *Pending) Request() Request { return p.req }

// Isend posts a nonblocking send; the returned Pending's Wait panics on
// transport failure like Comm.Send does.
func (c *Comm) Isend(dst, tag int, data []float64) *Pending {
	return &Pending{req: c.t.Isend(dst, tag, data), rank: c.t.Rank(), peer: dst, tag: tag}
}

// Irecv posts a nonblocking receive; the returned Pending's Wait yields
// the payload and panics on transport failure like Comm.Recv does.
func (c *Comm) Irecv(src, tag int) *Pending {
	return &Pending{req: c.t.Irecv(src, tag), rank: c.t.Rank(), peer: src, tag: tag, recv: true}
}

// SendRecv exchanges buffers with two (possibly equal) partners: sends
// sendData to dst and receives from src, in an order that cannot
// deadlock for buffered transports.
func (c *Comm) SendRecv(dst, src, tag int, sendData []float64) []float64 {
	c.Send(dst, tag, sendData)
	return c.Recv(src, tag)
}

// Barrier blocks until every rank has reached it. Transports with a
// native barrier use it; otherwise the barrier is a gather-to-zero plus
// broadcast over a reserved tag.
func (c *Comm) Barrier() {
	if b, ok := c.t.(barrierTransport); ok {
		if err := b.Barrier(); err != nil {
			panic(fmt.Sprintf("mpi: rank %d: Barrier: %v", c.t.Rank(), err))
		}
		return
	}
	c.AllReduceSum(tagInternal, 0)
}

// AllReduce combines one value from every rank with op, applied in
// ascending rank order (deterministic), and returns the result on every
// rank. The reduction is implemented as gather-to-zero plus broadcast.
func (c *Comm) AllReduce(tag int, x float64, op func(a, b float64) float64) float64 {
	if c.Size() == 1 {
		return x
	}
	if c.Rank() == 0 {
		acc := x
		for src := 1; src < c.Size(); src++ {
			v := c.Recv(src, tag)
			acc = op(acc, v[0])
		}
		for dst := 1; dst < c.Size(); dst++ {
			c.Send(dst, tag, []float64{acc})
		}
		return acc
	}
	c.Send(0, tag, []float64{x})
	return c.Recv(0, tag)[0]
}

// AllReduceSum is AllReduce with addition.
func (c *Comm) AllReduceSum(tag int, x float64) float64 {
	return c.AllReduce(tag, x, func(a, b float64) float64 { return a + b })
}

// AllReduceMax is AllReduce with max.
func (c *Comm) AllReduceMax(tag int, x float64) float64 {
	return c.AllReduce(tag, x, func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	})
}

// Broadcast distributes root's buffer to every rank and returns it (the
// root returns its own buffer unchanged).
func (c *Comm) Broadcast(tag, root int, data []float64) []float64 {
	if c.Size() == 1 {
		return data
	}
	if c.Rank() == root {
		for dst := 0; dst < c.Size(); dst++ {
			if dst != root {
				c.Send(dst, tag, data)
			}
		}
		return data
	}
	return c.Recv(root, tag)
}
