// Package mpi is a deterministic message-passing runtime in the style of
// MPI, built on goroutines and channels. It exists for the comparison the
// paper's future-work section asks for: "a direct comparison with the
// MPI-based parallel reference implementation of NAS-MG would be
// interesting" (§7). internal/mgmpi implements a domain-decomposed MG on
// top of it; this package provides the SPMD substrate:
//
//   - the Transport interface (transport.go): point-to-point Send/Recv
//     with (source, tag) matching and per-pair FIFO ordering, the seam
//     that lets the same solver run on Go channels (this package) or on
//     real TCP sockets (internal/mpinet);
//   - World.Run, which launches one goroutine per rank over the channel
//     transport and joins them;
//   - Comm, the rank-facing communicator: blocking point-to-point ops
//     plus collective Barrier, AllReduce and Broadcast with deterministic
//     (rank-ordered) reduction — results are identical across runs;
//   - per-rank traffic statistics (message and byte counts), the basis of
//     the communication-cost reporting in EXPERIMENTS.md.
//
// The channel runtime is a simulation: all ranks share one address space
// and the "network" is Go channels, so it measures communication
// *structure* (counts, volumes, dependency patterns), not network
// latency; its Stats report zero wire bytes because nothing is framed or
// serialized. internal/mpinet is the same contract paying real costs.
package mpi

import (
	"fmt"
	"sync"
	"time"
)

// Stats counts one rank's traffic.
type Stats struct {
	// Messages is the number of point-to-point sends (collectives are
	// built from sends and are therefore included).
	Messages uint64
	// Bytes is the total payload volume sent, in bytes.
	Bytes uint64
	// WireBytes is the volume actually put on the wire, including
	// framing (headers and checksums). The in-process channel transport
	// reports zero: a simulated message pays no serialization.
	WireBytes uint64
	// ExchangeNanos is wall time spent blocked in communication (waiting
	// for mailbox space or for a peer's message). The channel transport
	// counts only blocked time — an immediate channel operation costs no
	// measurable exchange — while a real transport also pays framing and
	// kernel time on every call.
	ExchangeNanos int64

	// Peers breaks the traffic down per (peer, tag): counts, bytes and
	// blocked time in each direction, sorted by (peer, tag). The per-peer
	// blocked nanos sum to ExchangeNanos (see Stats.BlockedNanos).
	Peers []PeerStat `json:"peers,omitempty"`
	// BlockedHist is a power-of-two histogram of per-call blocked
	// nanoseconds; QueueDepthHist of the departure-queue depth seen at
	// enqueue (mailbox fill here, the writer backlog in mpinet).
	BlockedHist    Hist `json:"blockedHist,omitempty"`
	QueueDepthHist Hist `json:"queueDepthHist,omitempty"`
}

// DefaultStall bounds how long a channel-transport Send may wait on a
// full mailbox or a Recv on an empty one before failing with an error
// naming the (rank, tag) pair. A healthy halo exchange waits
// microseconds; minutes means the pairing is deadlocked. Override per
// world with World.Stall.
const DefaultStall = 2 * time.Minute

// World is one SPMD program instance: a fixed set of ranks and their
// mailboxes.
type World struct {
	// Stall overrides DefaultStall when positive: the longest a rank
	// blocks in Send/Recv before the operation fails diagnosably.
	Stall time.Duration

	size    int
	mail    [][]chan message // mail[src][dst]
	stats   []Stats
	rec     []CommRecorder // per-rank (peer, tag) rows and histograms
	barrier *barrier

	aborted   chan struct{} // closed when any rank panics
	abortOnce sync.Once
}

type message struct {
	tag  int
	data []float64
}

// mailboxDepth bounds in-flight messages per (src, dst) pair. MG's halo
// exchanges post at most two sends before the matching receives.
const mailboxDepth = 8

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	w := &World{
		size:    size,
		mail:    make([][]chan message, size),
		stats:   make([]Stats, size),
		rec:     make([]CommRecorder, size),
		barrier: newBarrier(size),
		aborted: make(chan struct{}),
	}
	for src := 0; src < size; src++ {
		w.mail[src] = make([]chan message, size)
		for dst := 0; dst < size; dst++ {
			w.mail[src][dst] = make(chan message, mailboxDepth)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns a snapshot of every rank's traffic counters, including
// the per-(peer, tag) rows and histograms. Call after Run has returned.
func (w *World) Stats() []Stats {
	out := append([]Stats(nil), w.stats...)
	for rank := range out {
		w.rec[rank].SnapshotInto(&out[rank])
	}
	return out
}

// TotalStats sums the per-rank counters and merges the histograms; the
// per-peer rows are folded with MergePeers, so the totals describe
// world-wide volume per (peer, tag).
func (w *World) TotalStats() Stats {
	var t Stats
	for _, s := range w.Stats() {
		t.Messages += s.Messages
		t.Bytes += s.Bytes
		t.WireBytes += s.WireBytes
		t.ExchangeNanos += s.ExchangeNanos
		t.MergePeers(s.Peers)
		t.BlockedHist.Merge(s.BlockedHist)
		t.QueueDepthHist.Merge(s.QueueDepthHist)
	}
	return t
}

// Transport returns the channel transport of one rank — the same
// substrate World.Run wires up, for callers that drive a single rank
// directly (tests, mgmpi.NewWithTransport differential runs).
func (w *World) Transport(rank int) Transport {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: invalid rank %d", rank))
	}
	return &chanTransport{w: w, rank: rank}
}

// stall returns the effective Send/Recv stall bound.
func (w *World) stall() time.Duration {
	if w.Stall > 0 {
		return w.Stall
	}
	return DefaultStall
}

// abort marks the world failed: the barrier breaks and every rank
// blocked in Send/Recv fails with a dead-peer error.
func (w *World) abort() {
	w.barrier.abort()
	w.abortOnce.Do(func() { close(w.aborted) })
}

// Run executes body once per rank, concurrently, and waits for all ranks
// to return. A panic on any rank is re-raised on the caller after the
// remaining ranks have been given the chance to finish or abort: the
// world's barrier breaks and blocked Send/Recv calls fail, so no rank
// hangs on a dead peer. Run may be called multiple times on the same
// world; statistics accumulate.
func (w *World) Run(body func(c *Comm)) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked any
	)
	wg.Add(w.size)
	for rank := 0; rank < w.size; rank++ {
		go func(rank int) {
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = fmt.Sprintf("mpi: rank %d panicked: %v", rank, r)
					}
					mu.Unlock()
					w.abort()
				}
				wg.Done()
			}()
			body(NewComm(&chanTransport{w: w, rank: rank}))
		}(rank)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// --- channel transport --------------------------------------------------------

// chanTransport is one rank's view of the in-process channel runtime: the
// original simulated network, now behind the Transport seam. Fast paths
// are the plain channel operations; only a full (or empty) mailbox takes
// the slow path that watches for world aborts and the stall bound.
//
// Blocking Send/Recv are implemented as Isend/Irecv + Wait, so blocking
// and nonblocking operations share one code path and one per-(peer,
// direction) FIFO chain — a blocking Send cannot overtake an Isend that
// is still queued behind a full mailbox. The accounting is equivalent:
// RecordSendPosted + RecordSendWait touch the same counters and observe
// the same histograms, once per message, as a single RecordSend.
type chanTransport struct {
	w    *World
	rank int

	sendChain OpChain // per-dst FIFO of in-flight sends
	recvChain OpChain // per-src FIFO of in-flight receives
}

func (t *chanTransport) Rank() int { return t.rank }
func (t *chanTransport) Size() int { return t.w.size }

// Stats returns this rank's counters, including the per-(peer, tag)
// rows and histograms.
func (t *chanTransport) Stats() Stats {
	s := t.w.stats[t.rank]
	t.w.rec[t.rank].SnapshotInto(&s)
	return s
}

// Close is a no-op: the channel world owns no external resources.
func (t *chanTransport) Close() error { return nil }

// Barrier uses the world's shared in-process barrier.
func (t *chanTransport) Barrier() error {
	t.w.barrier.await()
	return nil
}

func (t *chanTransport) Send(dst, tag int, data []float64) error {
	_, err := t.Isend(dst, tag, data).Wait()
	return err
}

func (t *chanTransport) Recv(src, tag int) ([]float64, error) {
	return t.Irecv(src, tag).Wait()
}

// Isend posts a send. The payload is copied and the message/byte counters
// and queue-depth sample are recorded here, at post time — the message is
// in flight whether or not the Request is ever waited. Blocked time (if
// the mailbox is full) is charged to the first Wait, on the waiting
// goroutine, which for this transport must be the rank's own: the
// aggregate Stats entry is goroutine-owned.
func (t *chanTransport) Isend(dst, tag int, data []float64) Request {
	w := t.w
	if dst < 0 || dst >= w.size {
		return CompletedRequest(nil, fmt.Errorf("invalid rank %d (world size %d)", dst, w.size))
	}
	buf := make([]float64, len(data))
	copy(buf, data)
	m := message{tag: tag, data: buf}
	depth := len(w.mail[t.rank][dst])
	w.stats[t.rank].Messages++
	w.stats[t.rank].Bytes += uint64(len(data)) * 8
	w.rec[t.rank].RecordSendPosted(dst, tag, uint64(len(data))*8, depth)

	req := NewRequest(func(blocked int64, _ []float64, _ error) {
		w.stats[t.rank].ExchangeNanos += blocked
		w.rec[t.rank].RecordSendWait(dst, tag, blocked)
	})
	prev := t.sendChain.Push(dst, req)
	if prev == nil {
		// No predecessor in flight: try to deliver inline.
		select {
		case w.mail[t.rank][dst] <- m:
			req.Complete(nil, nil)
			return req
		default:
		}
	}
	go t.finishSend(req, prev, dst, m)
	return req
}

// finishSend completes a slow-path Isend: after the chained predecessor
// (if any) finishes, deliver with the same abort/stall watches blocking
// Send always had. It touches only channels and the request — never the
// rank's unsynchronized Stats.
func (t *chanTransport) finishSend(req, prev *AsyncRequest, dst int, m message) {
	w := t.w
	start := time.Now()
	timer := time.NewTimer(w.stall())
	defer timer.Stop()
	if prev != nil {
		select {
		case <-prev.Done():
		case <-w.aborted:
			req.Complete(nil, fmt.Errorf("world aborted while blocked on a full mailbox (peer rank %d may be dead)", dst))
			return
		case <-timer.C:
			req.Complete(nil, fmt.Errorf("mailbox full for %v — no matching Recv on rank %d (deadlocked exchange?)",
				time.Since(start).Round(time.Millisecond), dst))
			return
		}
	}
	select {
	case w.mail[t.rank][dst] <- m:
		req.Complete(nil, nil)
	case <-w.aborted:
		req.Complete(nil, fmt.Errorf("world aborted while blocked on a full mailbox (peer rank %d may be dead)", dst))
	case <-timer.C:
		req.Complete(nil, fmt.Errorf("mailbox full for %v — no matching Recv on rank %d (deadlocked exchange?)",
			time.Since(start).Round(time.Millisecond), dst))
	}
}

// Irecv posts a receive. Nothing is recorded at post time: the
// receive-side row (message, bytes, blocked time) is recorded by the
// first Wait, on the waiting goroutine — a dropped Request consumes its
// message in the background but was never observed by the caller, so it
// never appears in the stats.
func (t *chanTransport) Irecv(src, tag int) Request {
	w := t.w
	if src < 0 || src >= w.size {
		return CompletedRequest(nil, fmt.Errorf("invalid rank %d (world size %d)", src, w.size))
	}
	req := NewRequest(func(blocked int64, data []float64, err error) {
		w.stats[t.rank].ExchangeNanos += blocked
		if err == nil {
			w.rec[t.rank].RecordRecv(src, tag, uint64(len(data))*8, blocked)
		}
	})
	prev := t.recvChain.Push(src, req)
	if prev == nil {
		select {
		case m := <-w.mail[src][t.rank]:
			req.Complete(recvCheck(m, src, tag))
			return req
		default:
		}
	}
	go t.finishRecv(req, prev, src, tag)
	return req
}

// finishRecv completes a slow-path Irecv after its chained predecessor.
func (t *chanTransport) finishRecv(req, prev *AsyncRequest, src, tag int) {
	w := t.w
	start := time.Now()
	timer := time.NewTimer(w.stall())
	defer timer.Stop()
	if prev != nil {
		select {
		case <-prev.Done():
		case <-w.aborted:
			req.Complete(nil, fmt.Errorf("world aborted while waiting (peer rank %d may be dead)", src))
			return
		case <-timer.C:
			req.Complete(nil, fmt.Errorf("no message from rank %d for %v (deadlocked exchange?)",
				src, time.Since(start).Round(time.Millisecond)))
			return
		}
	}
	select {
	case m := <-w.mail[src][t.rank]:
		req.Complete(recvCheck(m, src, tag))
	case <-w.aborted:
		req.Complete(nil, fmt.Errorf("world aborted while waiting (peer rank %d may be dead)", src))
	case <-timer.C:
		req.Complete(nil, fmt.Errorf("no message from rank %d for %v (deadlocked exchange?)",
			src, time.Since(start).Round(time.Millisecond)))
	}
}

// recvCheck validates a popped message's tag against the posted receive.
func recvCheck(m message, src, tag int) ([]float64, error) {
	if m.tag != tag {
		return nil, fmt.Errorf("expected tag %d, got tag %d", tag, m.tag)
	}
	return m.data, nil
}

// --- reusable barrier ---------------------------------------------------------

type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	waiting int
	gen     uint64
	broken  bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		panic("mpi: barrier used after a rank panicked")
	}
	gen := b.gen
	b.waiting++
	if b.waiting == b.size {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		panic("mpi: barrier broken by a panicking rank")
	}
}

// abort releases any ranks blocked in the barrier after a panic.
func (b *barrier) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.broken = true
	b.cond.Broadcast()
}
