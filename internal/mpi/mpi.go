// Package mpi is a deterministic message-passing runtime in the style of
// MPI, built on goroutines and channels. It exists for the comparison the
// paper's future-work section asks for: "a direct comparison with the
// MPI-based parallel reference implementation of NAS-MG would be
// interesting" (§7). internal/mgmpi implements a domain-decomposed MG on
// top of it; this package provides the SPMD substrate:
//
//   - World.Run launches one goroutine per rank and joins them;
//   - point-to-point Send/Recv with (source, tag) matching and per-pair
//     FIFO ordering;
//   - collective Barrier, AllReduce and Broadcast with deterministic
//     (rank-ordered) reduction — results are identical across runs;
//   - per-rank traffic statistics (message and byte counts), the basis of
//     the communication-cost reporting in EXPERIMENTS.md.
//
// The runtime is a simulation: all ranks share one address space and the
// "network" is Go channels, so it measures communication *structure*
// (counts, volumes, dependency patterns), not network latency.
package mpi

import (
	"fmt"
	"sync"
)

// Stats counts one rank's outgoing traffic.
type Stats struct {
	// Messages is the number of point-to-point sends (collectives are
	// built from sends and are therefore included).
	Messages uint64
	// Bytes is the total payload volume sent, in bytes.
	Bytes uint64
}

// World is one SPMD program instance: a fixed set of ranks and their
// mailboxes.
type World struct {
	size    int
	mail    [][]chan message // mail[src][dst]
	stats   []Stats
	barrier *barrier
}

type message struct {
	tag  int
	data []float64
}

// mailboxDepth bounds in-flight messages per (src, dst) pair. MG's halo
// exchanges post at most two sends before the matching receives.
const mailboxDepth = 8

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	w := &World{
		size:    size,
		mail:    make([][]chan message, size),
		stats:   make([]Stats, size),
		barrier: newBarrier(size),
	}
	for src := 0; src < size; src++ {
		w.mail[src] = make([]chan message, size)
		for dst := 0; dst < size; dst++ {
			w.mail[src][dst] = make(chan message, mailboxDepth)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns a snapshot of every rank's traffic counters. Call after
// Run has returned.
func (w *World) Stats() []Stats { return append([]Stats(nil), w.stats...) }

// TotalStats sums the per-rank counters.
func (w *World) TotalStats() Stats {
	var t Stats
	for _, s := range w.stats {
		t.Messages += s.Messages
		t.Bytes += s.Bytes
	}
	return t
}

// Run executes body once per rank, concurrently, and waits for all ranks
// to return. A panic on any rank is re-raised on the caller after the
// remaining ranks have been given the chance to finish or deadlock-free
// abort (their channels are buffered). Run may be called multiple times
// on the same world; statistics accumulate.
func (w *World) Run(body func(c *Comm)) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked any
	)
	wg.Add(w.size)
	for rank := 0; rank < w.size; rank++ {
		go func(rank int) {
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = fmt.Sprintf("mpi: rank %d panicked: %v", rank, r)
					}
					mu.Unlock()
					w.barrier.abort()
				}
				wg.Done()
			}()
			body(&Comm{w: w, rank: rank})
		}(rank)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Comm is one rank's communicator.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this rank's id, 0 <= Rank < Size.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Send transmits a copy of data to dst with the given tag. It blocks only
// when the (src, dst) mailbox is full.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.w.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", dst))
	}
	buf := make([]float64, len(data))
	copy(buf, data)
	c.w.mail[c.rank][dst] <- message{tag: tag, data: buf}
	c.w.stats[c.rank].Messages++
	c.w.stats[c.rank].Bytes += uint64(len(data)) * 8
}

// Recv receives the next message from src, which must carry the expected
// tag (messages between a pair of ranks are FIFO, so a tag mismatch is a
// protocol error, not a reordering).
func (c *Comm) Recv(src, tag int) []float64 {
	if src < 0 || src >= c.w.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", src))
	}
	m := <-c.w.mail[src][c.rank]
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d: expected tag %d from rank %d, got %d",
			c.rank, tag, src, m.tag))
	}
	return m.data
}

// SendRecv exchanges buffers with two (possibly equal) partners: sends
// sendData to dst and receives from src, in an order that cannot deadlock
// for buffered mailboxes.
func (c *Comm) SendRecv(dst, src, tag int, sendData []float64) []float64 {
	c.Send(dst, tag, sendData)
	return c.Recv(src, tag)
}

// Barrier blocks until every rank has reached it.
func (c *Comm) Barrier() { c.w.barrier.await() }

// AllReduce combines one value from every rank with op, applied in
// ascending rank order (deterministic), and returns the result on every
// rank. The reduction is implemented as gather-to-zero plus broadcast.
func (c *Comm) AllReduce(tag int, x float64, op func(a, b float64) float64) float64 {
	if c.w.size == 1 {
		return x
	}
	if c.rank == 0 {
		acc := x
		for src := 1; src < c.w.size; src++ {
			v := c.Recv(src, tag)
			acc = op(acc, v[0])
		}
		for dst := 1; dst < c.w.size; dst++ {
			c.Send(dst, tag, []float64{acc})
		}
		return acc
	}
	c.Send(0, tag, []float64{x})
	return c.Recv(0, tag)[0]
}

// AllReduceSum is AllReduce with addition.
func (c *Comm) AllReduceSum(tag int, x float64) float64 {
	return c.AllReduce(tag, x, func(a, b float64) float64 { return a + b })
}

// AllReduceMax is AllReduce with max.
func (c *Comm) AllReduceMax(tag int, x float64) float64 {
	return c.AllReduce(tag, x, func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	})
}

// Broadcast distributes root's buffer to every rank and returns it (the
// root returns its own buffer unchanged).
func (c *Comm) Broadcast(tag, root int, data []float64) []float64 {
	if c.w.size == 1 {
		return data
	}
	if c.rank == root {
		for dst := 0; dst < c.w.size; dst++ {
			if dst != root {
				c.Send(dst, tag, data)
			}
		}
		return data
	}
	return c.Recv(root, tag)
}

// --- reusable barrier ---------------------------------------------------------

type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	waiting int
	gen     uint64
	broken  bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		panic("mpi: barrier used after a rank panicked")
	}
	gen := b.gen
	b.waiting++
	if b.waiting == b.size {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		panic("mpi: barrier broken by a panicking rank")
	}
}

// abort releases any ranks blocked in the barrier after a panic.
func (b *barrier) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.broken = true
	b.cond.Broadcast()
}
