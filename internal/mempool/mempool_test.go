package mempool

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetZeroed(t *testing.T) {
	p := New(true)
	buf := p.Get(8)
	buf[3] = 42
	p.Put(buf)
	buf2 := p.Get(8)
	for i, v := range buf2 {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %g", i, v)
		}
	}
}

func TestGetDirtyReusesExactSize(t *testing.T) {
	p := New(true)
	a := p.GetDirty(16)
	p.Put(a)
	b := p.GetDirty(16)
	if &a[0] != &b[0] {
		t.Fatal("exact-size request did not reuse the freed buffer")
	}
	st := p.Stats()
	if st.Allocs != 1 || st.Reuses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDifferentSizesDoNotMix(t *testing.T) {
	p := New(true)
	a := p.GetDirty(16)
	p.Put(a)
	b := p.GetDirty(17)
	if len(b) != 17 {
		t.Fatalf("got len %d", len(b))
	}
	if p.Stats().Reuses != 0 {
		t.Fatal("pool reused a buffer of the wrong size")
	}
}

func TestDisabledPoolAlwaysAllocates(t *testing.T) {
	p := New(false)
	a := p.GetDirty(8)
	p.Put(a)
	b := p.GetDirty(8)
	if &a[0] == &b[0] {
		t.Fatal("disabled pool reused a buffer")
	}
	st := p.Stats()
	if st.Allocs != 2 || st.Reuses != 0 || st.Discards != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if p.Enabled() {
		t.Fatal("Enabled() = true for disabled pool")
	}
}

func TestNilPoolSafe(t *testing.T) {
	var p *Pool
	buf := p.Get(4)
	if len(buf) != 4 {
		t.Fatalf("nil pool Get len = %d", len(buf))
	}
	p.Put(buf)
	if p.Stats() != (Stats{}) {
		t.Fatal("nil pool stats not zero")
	}
	if p.Enabled() {
		t.Fatal("nil pool reports enabled")
	}
	if p.Retained() != 0 {
		t.Fatal("nil pool retains buffers")
	}
	p.Reset() // must not panic
}

func TestMaxPerSizeBound(t *testing.T) {
	p := New(true)
	p.SetMaxPerSize(2)
	bufs := [][]float64{p.GetDirty(4), p.GetDirty(4), p.GetDirty(4)}
	for _, b := range bufs {
		p.Put(b)
	}
	if p.Retained() != 2 {
		t.Fatalf("Retained = %d, want 2", p.Retained())
	}
	if p.Stats().Discards != 1 {
		t.Fatalf("Discards = %d, want 1", p.Stats().Discards)
	}
}

func TestPutEmptyNoop(t *testing.T) {
	p := New(true)
	p.Put(nil)
	p.Put([]float64{})
	if p.Stats().Puts != 0 || p.Retained() != 0 {
		t.Fatal("empty Put was recorded")
	}
}

func TestReset(t *testing.T) {
	p := New(true)
	p.Put(p.GetDirty(8))
	p.Reset()
	if p.Retained() != 0 || p.Stats() != (Stats{}) {
		t.Fatal("Reset did not clear state")
	}
	// Pool still usable after Reset.
	if len(p.Get(8)) != 8 {
		t.Fatal("pool unusable after Reset")
	}
}

func TestBytesAllocatedCounts(t *testing.T) {
	p := New(true)
	p.GetDirty(10)
	p.GetDirty(6)
	if got := p.Stats().BytesAllocated; got != 16*8 {
		t.Fatalf("BytesAllocated = %d, want %d", got, 16*8)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Allocs: 1, Reuses: 2, Puts: 3, Discards: 4, BytesAllocated: 5}
	str := s.String()
	for _, frag := range []string{"allocs=1", "reuses=2", "puts=3", "discards=4", "bytes=5"} {
		if !strings.Contains(str, frag) {
			t.Errorf("Stats.String() = %q missing %q", str, frag)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	p := New(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(size int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := p.Get(size)
				b[0] = float64(i)
				p.Put(b)
			}
		}(8 + g%3)
	}
	wg.Wait()
	st := p.Stats()
	if st.Puts != 8*200 {
		t.Fatalf("Puts = %d, want %d", st.Puts, 8*200)
	}
}

// Property: a Get after a Put of size n always yields a zeroed buffer of
// exactly n elements, for arbitrary interleavings of sizes.
func TestGetAfterPutQuick(t *testing.T) {
	f := func(sizes [12]uint8) bool {
		p := New(true)
		var held [][]float64
		for _, s := range sizes {
			n := int(s%32) + 1
			b := p.Get(n)
			if len(b) != n {
				return false
			}
			for _, v := range b {
				if v != 0 {
					return false
				}
			}
			b[0] = 1 // dirty it
			held = append(held, b)
			if len(held) > 3 {
				p.Put(held[0])
				held = held[1:]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGetPutPooled(b *testing.B) {
	p := New(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.GetDirty(64 * 64)
		p.Put(buf)
	}
}

func BenchmarkGetPutUnpooled(b *testing.B) {
	p := New(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.GetDirty(64 * 64)
		p.Put(buf)
	}
}

func TestParanoidDetectsDoublePut(t *testing.T) {
	p := New(true)
	p.SetParanoid(true)
	buf := p.GetDirty(8)
	p.Put(buf)
	defer func() {
		if recover() == nil {
			t.Error("double Put not detected")
		}
	}()
	p.Put(buf)
}

func TestParanoidDetectsForeignBuffer(t *testing.T) {
	p := New(true)
	p.SetParanoid(true)
	defer func() {
		if recover() == nil {
			t.Error("foreign Put not detected")
		}
	}()
	p.Put(make([]float64, 8))
}

func TestParanoidTracksReuse(t *testing.T) {
	p := New(true)
	p.SetParanoid(true)
	a := p.GetDirty(8)
	p.Put(a)
	b := p.GetDirty(8) // reuses a's buffer; must be live again
	if p.Live() != 1 {
		t.Fatalf("Live = %d, want 1", p.Live())
	}
	p.Put(b) // must not panic
	if p.Live() != 0 {
		t.Fatalf("Live = %d after final Put", p.Live())
	}
}

func TestParanoidOffByDefault(t *testing.T) {
	p := New(true)
	buf := p.GetDirty(8)
	p.Put(buf)
	p.Put(buf) // tolerated without paranoid mode (documented hazard)
	if p.Live() != 0 {
		t.Fatal("Live non-zero without paranoid mode")
	}
}

// A Scope draws from and returns to the parent's free lists — a buffer
// released by one scope satisfies another scope's request — while its
// own Stats count only its traffic.
func TestScopeSharesArenaWithOwnStats(t *testing.T) {
	arena := New(true)
	a := arena.Scope()
	b := arena.Scope()

	buf := a.GetDirty(64)
	buf[0] = 42
	a.Put(buf)
	got := b.GetDirty(64)
	if &got[0] != &buf[0] {
		t.Fatal("scope b did not reuse the buffer scope a released")
	}

	as, bs, rs := a.Stats(), b.Stats(), arena.Stats()
	if as.Allocs != 1 || as.Puts != 1 || as.Reuses != 0 {
		t.Fatalf("scope a stats = %v", as)
	}
	if bs.Allocs != 0 || bs.Reuses != 1 {
		t.Fatalf("scope b stats = %v", bs)
	}
	if rs.Allocs != 1 || rs.Reuses != 1 || rs.Puts != 1 {
		t.Fatalf("arena stats = %v", rs)
	}
}

// Scope of a scope shares the same root arena (no chains).
func TestScopeOfScopeSharesRoot(t *testing.T) {
	arena := New(true)
	s := arena.Scope().Scope()
	buf := s.GetDirty(8)
	s.Put(buf)
	if arena.Retained() != 1 {
		t.Fatalf("arena retained %d buffers, want 1", arena.Retained())
	}
}

// Reset on a scope clears only the scope's counters, never the shared
// free lists another job may be drawing from.
func TestScopeResetLeavesArena(t *testing.T) {
	arena := New(true)
	s := arena.Scope()
	s.Put(s.GetDirty(16))
	s.Reset()
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("scope stats after Reset = %v", st)
	}
	if arena.Retained() != 1 {
		t.Fatal("scope Reset dropped the arena's free list")
	}
}

// Paranoid release-discipline checking spans scopes: the arena tracks
// liveness, so a double Put through any view is caught.
func TestScopeParanoidSharesTracking(t *testing.T) {
	arena := New(true)
	arena.SetParanoid(true)
	s := arena.Scope()
	buf := s.GetDirty(8)
	s.Put(buf)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put through a scope did not panic")
		}
	}()
	arena.Put(buf)
}

// Concurrent scopes over one arena must be race-free and must account
// exactly: the sum of scope counters equals the arena's.
func TestConcurrentScopes(t *testing.T) {
	arena := New(true)
	const scopes, rounds = 8, 200
	var wg sync.WaitGroup
	views := make([]*Pool, scopes)
	for i := range views {
		views[i] = arena.Scope()
		wg.Add(1)
		go func(s *Pool) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				buf := s.GetDirty(32 + (r%4)*32)
				s.Put(buf)
			}
		}(views[i])
	}
	wg.Wait()
	var sum Stats
	for _, s := range views {
		st := s.Stats()
		sum.Allocs += st.Allocs
		sum.Reuses += st.Reuses
		sum.Puts += st.Puts
		sum.Discards += st.Discards
		sum.BytesAllocated += st.BytesAllocated
	}
	if got := arena.Stats(); got != sum {
		t.Fatalf("arena stats %v != sum of scope stats %v", got, sum)
	}
	if got := sum.Allocs + sum.Reuses; got != scopes*rounds {
		t.Fatalf("gets = %d, want %d", got, scopes*rounds)
	}
}

// Shared returns one process-global arena.
func TestSharedSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared returned two arenas")
	}
	if !Shared().Enabled() {
		t.Fatal("shared arena is not recycling")
	}
}
