// Package mempool models SAC's dynamic memory management.
//
// SAC is purely functional: every array operation conceptually produces a
// fresh array, and the runtime system reclaims argument arrays through
// reference counting. The paper attributes the residual scalability loss of
// the MG benchmark to exactly this subsystem: "the absolute overhead
// incurred by memory management operations is invariant against grid sizes
// involved, [so] it is negligible for large grids but shows a growing
// performance impact with decreasing grid size".
//
// This package reproduces that behaviour with a size-classed free list:
// a released buffer of n elements satisfies the next request for exactly n
// elements, which is the common case in MG where the same per-level grid
// sizes recur every V-cycle (SAC's reference-count-driven immediate reuse
// has the same effect). The pool keeps allocation statistics so experiments
// can report how much traffic the memory manager absorbs, and it can be
// disabled to measure the cost of always allocating — the malloc-per-op
// ablation in bench_test.go.
package mempool

import (
	"fmt"
	"sync"
)

// Stats counts memory-manager events since the pool was created or Reset.
type Stats struct {
	// Allocs is the number of requests that had to allocate fresh memory.
	Allocs uint64
	// Reuses is the number of requests satisfied from the free list.
	Reuses uint64
	// Puts is the number of buffers returned to the pool.
	Puts uint64
	// Discards is the number of returned buffers dropped because the free
	// list for their size class was full.
	Discards uint64
	// BytesAllocated is the total fresh memory allocated, in bytes.
	BytesAllocated uint64
}

// String summarizes the statistics on one line.
func (s Stats) String() string {
	return fmt.Sprintf("allocs=%d reuses=%d puts=%d discards=%d bytes=%d",
		s.Allocs, s.Reuses, s.Puts, s.Discards, s.BytesAllocated)
}

// Pool is a size-classed free list of float64 buffers. The zero value is
// not usable; call New. A nil *Pool behaves like a disabled pool (every Get
// allocates, every Put is dropped), so callers can thread an optional pool
// without nil checks.
//
// A Pool is safe for concurrent use. A process-global pool shared by many
// concurrent solves (see Shared) hands each solve a Scope: a view whose
// buffers come from and return to the shared free lists but whose Stats
// count only that solve's traffic — per-job accounting over one arena.
type Pool struct {
	mu         sync.Mutex
	free       map[int][][]float64
	stats      Stats
	enabled    bool
	maxPerSize int
	// paranoid tracks live buffers to detect release-discipline bugs
	// (double Put, Put of a foreign buffer) — the errors a real
	// reference-counting runtime must never make. Keys are the address of
	// the first element.
	paranoid map[*float64]bool
	// root is non-nil on scopes: the arena whose free lists, mutex and
	// configuration this view delegates to. The scope's own stats field is
	// then guarded by root.mu (scopes hold no lock of their own).
	root *Pool
}

// arena resolves the pool that owns the free lists: the pool itself, or
// the root for scopes.
func (p *Pool) arena() *Pool {
	if p.root != nil {
		return p.root
	}
	return p
}

// Scope returns a per-job view of the pool: Get and Put operate on the
// parent's free lists (and count in the parent's Stats as usual), but the
// scope's own Stats count only the traffic that went through this view.
// Scopes are cheap; create one per job. Scope of a scope shares the same
// root arena.
func (p *Pool) Scope() *Pool {
	return &Pool{root: p.arena()}
}

// The process-global arena, created on first use.
var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-global recycling arena, created on first
// use. Concurrent solves of a resident daemon draw their grids from it
// through per-job Scopes, so same-size buffers released by one solve
// satisfy the next solve's requests.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = New(true) })
	return sharedPool
}

// DefaultMaxPerSize bounds the number of retained buffers per size class.
// MG needs at most a handful of same-size temporaries alive at once.
const DefaultMaxPerSize = 8

// New creates a pool. If enabled is false the pool degenerates to plain
// allocation but still counts events, which keeps the ablation code paths
// identical.
func New(enabled bool) *Pool {
	return &Pool{
		free:       make(map[int][][]float64),
		enabled:    enabled,
		maxPerSize: DefaultMaxPerSize,
	}
}

// SetParanoid enables (or disables) release-discipline checking: every
// buffer handed out by Get is tracked, and Put panics when given a buffer
// that is not currently live — a double release or a foreign buffer.
// SAC's reference-counting correctness argument corresponds exactly to
// this discipline; the MG solvers run their test suites with it on.
func (p *Pool) SetParanoid(on bool) {
	a := p.arena()
	a.mu.Lock()
	defer a.mu.Unlock()
	if on {
		a.paranoid = make(map[*float64]bool)
	} else {
		a.paranoid = nil
	}
}

// SetMaxPerSize changes the per-size-class retention bound.
func (p *Pool) SetMaxPerSize(n int) {
	a := p.arena()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.maxPerSize = n
}

// Enabled reports whether the pool actually recycles buffers.
func (p *Pool) Enabled() bool {
	if p == nil {
		return false
	}
	a := p.arena()
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.enabled
}

// Get returns a zeroed buffer of exactly n float64s.
func (p *Pool) Get(n int) []float64 {
	buf := p.GetDirty(n)
	clear(buf)
	return buf
}

// GetDirty returns a buffer of exactly n float64s with unspecified contents.
// Use it when every element will be overwritten (modarray, full genarray).
func (p *Pool) GetDirty(n int) []float64 {
	if p == nil {
		return make([]float64, n)
	}
	a := p.arena()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.enabled {
		if list := a.free[n]; len(list) > 0 {
			buf := list[len(list)-1]
			a.free[n] = list[:len(list)-1]
			a.stats.Reuses++
			if p != a {
				p.stats.Reuses++
			}
			a.track(buf)
			return buf
		}
	}
	a.stats.Allocs++
	a.stats.BytesAllocated += uint64(n) * 8
	if p != a {
		p.stats.Allocs++
		p.stats.BytesAllocated += uint64(n) * 8
	}
	buf := make([]float64, n)
	a.track(buf)
	return buf
}

// track registers a live buffer under paranoid checking (caller holds mu).
func (p *Pool) track(buf []float64) {
	if p.paranoid != nil && len(buf) > 0 {
		p.paranoid[&buf[0]] = true
	}
}

// Put returns a buffer to the pool for reuse. The caller must not use buf
// afterwards. Putting a nil or empty buffer is a no-op.
func (p *Pool) Put(buf []float64) {
	if p == nil || len(buf) == 0 {
		return
	}
	a := p.arena()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.paranoid != nil {
		key := &buf[0]
		if !a.paranoid[key] {
			panic("mempool: Put of a buffer that is not live (double release or foreign buffer)")
		}
		delete(a.paranoid, key)
	}
	a.stats.Puts++
	if p != a {
		p.stats.Puts++
	}
	discard := func() {
		a.stats.Discards++
		if p != a {
			p.stats.Discards++
		}
	}
	if !a.enabled {
		discard()
		return
	}
	n := len(buf)
	if len(a.free[n]) >= a.maxPerSize {
		discard()
		return
	}
	a.free[n] = append(a.free[n], buf[:n])
}

// Stats returns a snapshot of the counters: the whole arena's for a root
// pool, this view's traffic only for a Scope.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	a := p.arena()
	a.mu.Lock()
	defer a.mu.Unlock()
	return p.stats
}

// Reset drops all retained buffers and zeroes the counters. On a Scope it
// zeroes only the scope's counters — the shared arena is untouched.
func (p *Pool) Reset() {
	if p == nil {
		return
	}
	a := p.arena()
	a.mu.Lock()
	defer a.mu.Unlock()
	p.stats = Stats{}
	if p != a {
		return
	}
	a.free = make(map[int][][]float64)
	if a.paranoid != nil {
		a.paranoid = make(map[*float64]bool)
	}
}

// Live returns the number of buffers currently tracked as outstanding
// (paranoid mode only; 0 otherwise). A steady-state leak in a solver
// shows up as Live growing across iterations.
func (p *Pool) Live() int {
	if p == nil {
		return 0
	}
	a := p.arena()
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.paranoid)
}

// Retained returns the number of buffers currently held on free lists,
// summed over all size classes.
func (p *Pool) Retained() int {
	if p == nil {
		return 0
	}
	a := p.arena()
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for _, list := range a.free {
		total += len(list)
	}
	return total
}
