// Package mempool models SAC's dynamic memory management.
//
// SAC is purely functional: every array operation conceptually produces a
// fresh array, and the runtime system reclaims argument arrays through
// reference counting. The paper attributes the residual scalability loss of
// the MG benchmark to exactly this subsystem: "the absolute overhead
// incurred by memory management operations is invariant against grid sizes
// involved, [so] it is negligible for large grids but shows a growing
// performance impact with decreasing grid size".
//
// This package reproduces that behaviour with a size-classed free list:
// a released buffer of n elements satisfies the next request for exactly n
// elements, which is the common case in MG where the same per-level grid
// sizes recur every V-cycle (SAC's reference-count-driven immediate reuse
// has the same effect). The pool keeps allocation statistics so experiments
// can report how much traffic the memory manager absorbs, and it can be
// disabled to measure the cost of always allocating — the malloc-per-op
// ablation in bench_test.go.
package mempool

import (
	"fmt"
	"sync"
)

// Stats counts memory-manager events since the pool was created or Reset.
type Stats struct {
	// Allocs is the number of requests that had to allocate fresh memory.
	Allocs uint64
	// Reuses is the number of requests satisfied from the free list.
	Reuses uint64
	// Puts is the number of buffers returned to the pool.
	Puts uint64
	// Discards is the number of returned buffers dropped because the free
	// list for their size class was full.
	Discards uint64
	// BytesAllocated is the total fresh memory allocated, in bytes.
	BytesAllocated uint64
}

// String summarizes the statistics on one line.
func (s Stats) String() string {
	return fmt.Sprintf("allocs=%d reuses=%d puts=%d discards=%d bytes=%d",
		s.Allocs, s.Reuses, s.Puts, s.Discards, s.BytesAllocated)
}

// Pool is a size-classed free list of float64 buffers. The zero value is
// not usable; call New. A nil *Pool behaves like a disabled pool (every Get
// allocates, every Put is dropped), so callers can thread an optional pool
// without nil checks.
type Pool struct {
	mu         sync.Mutex
	free       map[int][][]float64
	stats      Stats
	enabled    bool
	maxPerSize int
	// paranoid tracks live buffers to detect release-discipline bugs
	// (double Put, Put of a foreign buffer) — the errors a real
	// reference-counting runtime must never make. Keys are the address of
	// the first element.
	paranoid map[*float64]bool
}

// DefaultMaxPerSize bounds the number of retained buffers per size class.
// MG needs at most a handful of same-size temporaries alive at once.
const DefaultMaxPerSize = 8

// New creates a pool. If enabled is false the pool degenerates to plain
// allocation but still counts events, which keeps the ablation code paths
// identical.
func New(enabled bool) *Pool {
	return &Pool{
		free:       make(map[int][][]float64),
		enabled:    enabled,
		maxPerSize: DefaultMaxPerSize,
	}
}

// SetParanoid enables (or disables) release-discipline checking: every
// buffer handed out by Get is tracked, and Put panics when given a buffer
// that is not currently live — a double release or a foreign buffer.
// SAC's reference-counting correctness argument corresponds exactly to
// this discipline; the MG solvers run their test suites with it on.
func (p *Pool) SetParanoid(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if on {
		p.paranoid = make(map[*float64]bool)
	} else {
		p.paranoid = nil
	}
}

// SetMaxPerSize changes the per-size-class retention bound.
func (p *Pool) SetMaxPerSize(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.maxPerSize = n
}

// Enabled reports whether the pool actually recycles buffers.
func (p *Pool) Enabled() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.enabled
}

// Get returns a zeroed buffer of exactly n float64s.
func (p *Pool) Get(n int) []float64 {
	buf := p.GetDirty(n)
	clear(buf)
	return buf
}

// GetDirty returns a buffer of exactly n float64s with unspecified contents.
// Use it when every element will be overwritten (modarray, full genarray).
func (p *Pool) GetDirty(n int) []float64 {
	if p == nil {
		return make([]float64, n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.enabled {
		if list := p.free[n]; len(list) > 0 {
			buf := list[len(list)-1]
			p.free[n] = list[:len(list)-1]
			p.stats.Reuses++
			p.track(buf)
			return buf
		}
	}
	p.stats.Allocs++
	p.stats.BytesAllocated += uint64(n) * 8
	buf := make([]float64, n)
	p.track(buf)
	return buf
}

// track registers a live buffer under paranoid checking (caller holds mu).
func (p *Pool) track(buf []float64) {
	if p.paranoid != nil && len(buf) > 0 {
		p.paranoid[&buf[0]] = true
	}
}

// Put returns a buffer to the pool for reuse. The caller must not use buf
// afterwards. Putting a nil or empty buffer is a no-op.
func (p *Pool) Put(buf []float64) {
	if p == nil || len(buf) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.paranoid != nil {
		key := &buf[0]
		if !p.paranoid[key] {
			panic("mempool: Put of a buffer that is not live (double release or foreign buffer)")
		}
		delete(p.paranoid, key)
	}
	p.stats.Puts++
	if !p.enabled {
		p.stats.Discards++
		return
	}
	n := len(buf)
	if len(p.free[n]) >= p.maxPerSize {
		p.stats.Discards++
		return
	}
	p.free[n] = append(p.free[n], buf[:n])
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Reset drops all retained buffers and zeroes the counters.
func (p *Pool) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = make(map[int][][]float64)
	p.stats = Stats{}
	if p.paranoid != nil {
		p.paranoid = make(map[*float64]bool)
	}
}

// Live returns the number of buffers currently tracked as outstanding
// (paranoid mode only; 0 otherwise). A steady-state leak in a solver
// shows up as Live growing across iterations.
func (p *Pool) Live() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.paranoid)
}

// Retained returns the number of buffers currently held on free lists,
// summed over all size classes.
func (p *Pool) Retained() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, list := range p.free {
		total += len(list)
	}
	return total
}
