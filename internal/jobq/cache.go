package jobq

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: terminal job results
// keyed by the request's truncated-SHA-256 ID, evicted least-recently-used.
// Because every solver is deterministic, a successful entry is a complete
// substitute for re-running the job — repeat traffic is answered from here
// in microseconds instead of re-solving. Failed and cancelled results are
// stored too (so status lookups outlive the job), but Submit treats them
// as misses: a retry of a failed problem runs again.
type resultCache struct {
	mu   sync.Mutex
	max  int
	ll   *list.List // front = most recently used
	byID map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	id  string
	res Result
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{max: max, ll: list.New(), byID: make(map[string]*list.Element)}
}

// lookup returns the stored result without touching hit/miss counters —
// status queries, not admission decisions.
func (c *resultCache) lookup(id string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		return Result{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// get is the admission-path lookup: only a successful (StateDone) entry
// counts as a hit; anything else re-runs.
func (c *resultCache) get(id string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if ok && el.Value.(*cacheEntry).res.State == StateDone {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).res, true
	}
	c.misses++
	return Result{}, false
}

// put stores (or replaces) the terminal result for id and evicts the
// least-recently-used entries beyond the capacity.
func (c *resultCache) put(id string, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[id]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.byID[id] = c.ll.PushFront(&cacheEntry{id: id, res: res})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byID, last.Value.(*cacheEntry).id)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *resultCache) counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
