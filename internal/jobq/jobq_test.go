package jobq

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sReq builds a normalized class-S request with the given overrides.
func sReq(t *testing.T, mutate func(*Request)) Request {
	t.Helper()
	r := Request{Class: "S"}
	if mutate != nil {
		mutate(&r)
	}
	n, err := r.Normalize()
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", r, err)
	}
	return n
}

// instantRun is a stub solver that returns a fixed norm and counts calls.
func instantRun(calls *atomic.Int64) RunFunc {
	return func(ctx context.Context, req Request) (Result, error) {
		calls.Add(1)
		return Result{Rnm2: 0.5, Rnmu: 0.25}, nil
	}
}

// gatedRun blocks every job until release is closed (or the job is
// cancelled), recording execution order by iteration count.
func gatedRun(release <-chan struct{}, order *[]string, mu *sync.Mutex) RunFunc {
	return func(ctx context.Context, req Request) (Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
		if order != nil {
			mu.Lock()
			*order = append(*order, req.Tenant)
			mu.Unlock()
		}
		return Result{Rnm2: 1}, nil
	}
}

func waitDone(t *testing.T, tk *Ticket) Result {
	t.Helper()
	select {
	case <-tk.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", tk.ID())
	}
	return tk.Result()
}

func TestSubmitRejectsMalformedRequests(t *testing.T) {
	q := New(Config{Run: instantRun(&atomic.Int64{})})
	defer q.Close()
	for _, req := range []Request{
		{Class: "Z"},
		{Class: "S", Impl: "cuda"},
		{Class: "S", Iters: -1},
		{Class: "S", Iters: MaxIters + 1},
		{Class: "S", Impl: "f77", Variant: "simd"},
	} {
		if _, err := q.Submit(req); err == nil {
			t.Errorf("Submit(%+v): want error, got nil", req)
		} else {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Errorf("Submit(%+v): error %v is not a *RequestError", req, err)
			}
		}
	}
}

func TestCacheHitServesWithoutRerun(t *testing.T) {
	var calls atomic.Int64
	q := New(Config{Run: instantRun(&calls)})
	defer q.Close()

	req := sReq(t, nil)
	first, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, first)
	if res.State != StateDone || res.Rnm2 != 0.5 {
		t.Fatalf("first result = %+v", res)
	}
	if first.Cached() {
		t.Fatal("first submission reported cached")
	}

	second, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached() {
		t.Fatal("second submission not served from cache")
	}
	got := second.Result()
	if !got.Cached || got.Rnm2 != res.Rnm2 || got.ID != res.ID {
		t.Fatalf("cached result = %+v, want copy of %+v with Cached set", got, res)
	}
	if calls.Load() != 1 {
		t.Fatalf("solver ran %d times, want 1", calls.Load())
	}

	// Force bypasses the cache but refreshes it.
	forced := req
	forced.Force = true
	third, err := q.Submit(forced)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached() {
		t.Fatal("forced submission served from cache")
	}
	waitDone(t, third)
	if calls.Load() != 2 {
		t.Fatalf("solver ran %d times after Force, want 2", calls.Load())
	}

	s := q.Stats()
	if s.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", s.CacheHits)
	}
}

func TestDedupCoalescesInflightJobs(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	q := New(Config{Run: func(ctx context.Context, req Request) (Result, error) {
		calls.Add(1)
		<-release
		return Result{Rnm2: 2}, nil
	}})
	defer q.Close()

	req := sReq(t, nil)
	a, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Fatalf("tickets disagree on ID: %s vs %s", a.ID(), b.ID())
	}
	if b.Cached() {
		t.Fatal("in-flight dedup must attach to the job, not the cache")
	}
	close(release)
	ra, rb := waitDone(t, a), waitDone(t, b)
	if ra.Rnm2 != 2 || rb.Rnm2 != 2 {
		t.Fatalf("results = %+v / %+v", ra, rb)
	}
	if calls.Load() != 1 {
		t.Fatalf("solver ran %d times for identical submissions, want 1", calls.Load())
	}
	if s := q.Stats(); s.Deduped != 1 {
		t.Errorf("Deduped = %d, want 1", s.Deduped)
	}
}

func TestAdmissionControlRejectsWhenFull(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	q := New(Config{Capacity: 2, Run: gatedRun(release, nil, nil)})
	defer q.Close()

	// Distinct keys so dedup does not absorb the submissions.
	if _, err := q.Submit(sReq(t, func(r *Request) { r.Iters = 1 })); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(sReq(t, func(r *Request) { r.Iters = 2 })); err != nil {
		t.Fatal(err)
	}
	_, err := q.Submit(sReq(t, func(r *Request) { r.Iters = 3 }))
	var full *FullError
	if !errors.As(err, &full) {
		t.Fatalf("third submission: got %v, want *FullError", err)
	}
	if full.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %s, want >= 1s floor", full.RetryAfter)
	}
	if s := q.Stats(); s.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", s.Rejected)
	}
}

func TestTenantPrioritiesOrderTheBacklog(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	hold := make(chan struct{})
	decoyStarted := make(chan struct{})
	q := New(Config{
		Runners:    1,
		Priorities: map[string]int{"gold": 10, "bronze": -1},
		Run: func(ctx context.Context, req Request) (Result, error) {
			if req.Iters == 9 {
				// The decoy occupies the single runner while the backlog
				// accumulates, so the pop order is the priority order.
				close(decoyStarted)
				<-hold
				return Result{Rnm2: 1}, nil
			}
			return gatedRun(release, &order, &mu)(ctx, req)
		},
	})
	defer q.Close()
	close(release)

	if _, err := q.Submit(sReq(t, func(r *Request) { r.Iters = 9 })); err != nil {
		t.Fatal(err)
	}
	<-decoyStarted
	for i, tenant := range []string{"bronze", "", "gold", "bronze", "gold"} {
		if _, err := q.Submit(sReq(t, func(r *Request) { r.Tenant = tenant; r.Iters = i + 1 })); err != nil {
			t.Fatal(err)
		}
	}
	close(hold)

	deadline := time.After(10 * time.Second)
	for {
		if q.Stats().Completed == 6 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stalled; stats %+v", q.Stats())
		case <-time.After(5 * time.Millisecond):
		}
	}
	mu.Lock()
	got := strings.Join(order, ",")
	mu.Unlock()
	want := "gold,gold,,bronze,bronze"
	if got != want {
		t.Fatalf("execution order = %q, want %q (priority desc, FIFO within class)", got, want)
	}
}

func TestReleaseCancelsAbandonedJob(t *testing.T) {
	started := make(chan struct{}, 1)
	q := New(Config{Run: func(ctx context.Context, req Request) (Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return Result{}, ctx.Err()
	}})
	defer q.Close()

	tk, err := q.Submit(sReq(t, func(r *Request) { r.Wait = true }))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	tk.Release() // the only waiter disconnects mid-solve
	res := waitDone(t, tk)
	if res.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", res.State)
	}
	if s := q.Stats(); s.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", s.Cancelled)
	}

	// A cancelled result must not satisfy later cache lookups.
	again, err := q.Submit(sReq(t, func(r *Request) { r.Wait = true }))
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached() {
		t.Fatal("cancelled result served as a cache hit")
	}
	<-started
	again.Release()
	waitDone(t, again)
}

func TestReleaseKeepsJobWithFireAndForgetOwner(t *testing.T) {
	release := make(chan struct{})
	q := New(Config{Run: gatedRun(release, nil, nil)})
	defer q.Close()

	fire, err := q.Submit(sReq(t, nil)) // fire-and-forget owner
	if err != nil {
		t.Fatal(err)
	}
	waiter, err := q.Submit(sReq(t, func(r *Request) { r.Wait = true }))
	if err != nil {
		t.Fatal(err)
	}
	waiter.Release() // the wait-mode client disconnects...
	close(release)
	if res := waitDone(t, fire); res.State != StateDone {
		// ...but the fire-and-forget owner still wants the result.
		t.Fatalf("state = %s, want done", res.State)
	}
}

func TestNonFiniteNormFailsJobWithoutKillingQueue(t *testing.T) {
	poison := true
	q := New(Config{Run: func(ctx context.Context, req Request) (Result, error) {
		if poison {
			nan := 0.0
			return Result{Rnm2: nan / nan}, nil
		}
		return Result{Rnm2: 3}, nil
	}})
	defer q.Close()

	tk, err := q.Submit(sReq(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, tk)
	if res.State != StateFailed || !strings.Contains(res.Error, "non-finite") {
		t.Fatalf("poisoned result = %+v, want failed with non-finite error", res)
	}

	// The failure is recorded for status lookups but is not a cache hit:
	// the same problem resubmitted runs again and can succeed.
	if got, ok := q.Lookup(res.ID); !ok || got.State != StateFailed {
		t.Fatalf("Lookup after failure = %+v, %v", got, ok)
	}
	poison = false
	retry, err := q.Submit(sReq(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if retry.Cached() {
		t.Fatal("failed result served as a cache hit")
	}
	if res := waitDone(t, retry); res.State != StateDone || res.Rnm2 != 3 {
		t.Fatalf("retry result = %+v", res)
	}
}

func TestDrainFinishesBacklogAndRefusesNewWork(t *testing.T) {
	release := make(chan struct{})
	q := New(Config{Runners: 2, Run: gatedRun(release, nil, nil)})
	defer q.Close()

	var tickets []*Ticket
	for i := 1; i <= 4; i++ {
		tk, err := q.Submit(sReq(t, func(r *Request) { r.Iters = i }))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()
	time.Sleep(20 * time.Millisecond) // drain must be in effect before we probe intake

	if _, err := q.Submit(sReq(t, func(r *Request) { r.Iters = 9 })); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: got %v, want ErrDraining", err)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, tk := range tickets {
		if res := waitDone(t, tk); res.State != StateDone {
			t.Fatalf("job %s finished %s, want done (drain must complete in-flight work)", res.ID, res.State)
		}
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	q := New(Config{Run: func(ctx context.Context, req Request) (Result, error) {
		<-ctx.Done() // a job that never finishes on its own
		return Result{}, ctx.Err()
	}})
	defer q.Close()

	tk, err := q.Submit(sReq(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain: got %v, want deadline exceeded", err)
	}
	if res := waitDone(t, tk); res.State != StateCancelled {
		t.Fatalf("straggler state = %s, want cancelled", res.State)
	}
}

func TestLookupTracksLifecycle(t *testing.T) {
	release := make(chan struct{})
	q := New(Config{Run: gatedRun(release, nil, nil)})
	defer q.Close()

	req := sReq(t, nil)
	if _, ok := q.Lookup(req.ID()); ok {
		t.Fatal("Lookup before submission succeeded")
	}
	tk, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		res, ok := q.Lookup(tk.ID())
		if !ok {
			t.Fatal("Lookup lost an in-flight job")
		}
		if res.State == StateRunning {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("job never reached running; state %s", res.State)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	waitDone(t, tk)
	res, ok := q.Lookup(tk.ID())
	if !ok || res.State != StateDone {
		t.Fatalf("terminal Lookup = %+v, %v", res, ok)
	}
}

func TestResultCacheEvictsLRU(t *testing.T) {
	var calls atomic.Int64
	q := New(Config{CacheEntries: 2, Run: instantRun(&calls)})
	defer q.Close()

	ids := make([]string, 3)
	for i := 1; i <= 3; i++ {
		tk, err := q.Submit(sReq(t, func(r *Request) { r.Iters = i }))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, tk)
		ids[i-1] = tk.ID()
	}
	if _, ok := q.Lookup(ids[0]); ok {
		t.Fatal("oldest entry survived past the cache capacity")
	}
	for _, id := range ids[1:] {
		if _, ok := q.Lookup(id); !ok {
			t.Fatalf("recent entry %s evicted", id)
		}
	}
}

func TestWritePrometheusSeries(t *testing.T) {
	var calls atomic.Int64
	q := New(Config{Run: instantRun(&calls)})
	defer q.Close()
	tk, err := q.Submit(sReq(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, tk)

	var sb strings.Builder
	q.WritePrometheus(&sb)
	out := sb.String()
	for _, series := range []string{
		"mgd_jobs_submitted_total 1",
		"mgd_jobs_completed_total 1",
		"mgd_cache_misses_total 1",
		"mgd_queue_depth 0",
		"mgd_cache_entries 1",
		"mgd_draining 0",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %q:\n%s", series, out)
		}
	}
}
