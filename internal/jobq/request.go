// Package jobq turns the one-shot MG solver into a multi-tenant service
// core: a bounded job queue with admission control and per-tenant
// priorities, deduplication of identical in-flight jobs, cooperative
// cancellation, graceful drain, and a content-addressed result cache.
// cmd/mgd is the HTTP front end; the queue itself is transport-agnostic
// so the whole service contract is testable in-process.
//
// Jobs are keyed by (class, seed, impl, iterations, variant). Every
// solver in this repository is deterministic and bit-identical across
// worker counts and scheduling policies, so two requests with the same
// key have the same answer — which is what makes the result cache sound
// and lets concurrent identical submissions share one execution.
//
// Concurrent jobs multiplex over one process-global worker set
// (sched.Shared) and draw their grids from one recycling arena
// (mempool.Shared) through per-job scopes, so a resident daemon reuses
// both goroutines and buffers across solves instead of paying the
// per-process setup of the one-shot CLI.
package jobq

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/nas"
	"repro/internal/nasrand"
	"repro/internal/obs"
	"repro/internal/tune"
)

// MaxIters bounds the per-request iteration override. The largest NPB
// class iteration count is 40 (class W); the bound leaves room for
// convergence studies while keeping a single job's runtime finite.
const MaxIters = 256

// MaxRequestBytes bounds the JSON body of one solve submission.
const MaxRequestBytes = 1 << 20

// Impls lists the implementations the service runs, in the paper's
// order: the SAC-style solver, the Fortran-77 reference port, and the
// C/OpenMP port.
var Impls = []string{"sac", "f77", "c"}

// Request is one solve submission. The zero value of every optional
// field selects the benchmark default, so {"class":"S"} is a complete
// request. Wait and Tenant are transport/scheduling options and are not
// part of the job identity; everything else is.
type Request struct {
	// Class is the NPB size class: S, W, A, B or C.
	Class string `json:"class"`
	// Impl selects the implementation: sac (default), f77 or c.
	Impl string `json:"impl,omitempty"`
	// Variant forces the plane-kernel backend (sac only): scalar,
	// buffered or simd. Empty selects the default dispatch. All variants
	// are bit-identical; the key still records the request so repeated
	// traffic maps onto the same cache row it asked for.
	Variant string `json:"variant,omitempty"`
	// Seed selects the zran3 charge stream (46-bit NPB LCG state);
	// 0 means the official seed 314159265. Non-default seeds define
	// alternative deterministic problems without verification constants.
	Seed uint64 `json:"seed,omitempty"`
	// Iters overrides the class's V-cycle iteration count; 0 means the
	// class default. Bounded by MaxIters.
	Iters int `json:"iters,omitempty"`
	// Tenant names the submitting tenant for priority scheduling and
	// accounting. Empty is the anonymous tenant at priority 0.
	Tenant string `json:"tenant,omitempty"`
	// Force bypasses the result cache (the job still deduplicates
	// against identical in-flight jobs and its result still lands in the
	// cache).
	Force bool `json:"force,omitempty"`
	// Wait asks the HTTP front end to hold the connection until the job
	// finishes instead of returning 202 immediately. Not part of the job
	// identity.
	Wait bool `json:"wait,omitempty"`
	// TraceID is the request's 128-bit trace identity (32 hex digits),
	// minted at HTTP ingress or propagated from the X-Mg-Trace-Id
	// header. It threads through the queue, the structured logs, the
	// kernel tracer and the flight recorder. Like Wait and Tenant it is
	// a transport concern, not part of the job identity — two requests
	// for the same problem share one execution and cache row while
	// keeping their own trace IDs. Empty means "mint one at Submit".
	TraceID string `json:"traceId,omitempty"`
}

// RequestError is a typed rejection of a malformed solve request: the
// field at fault and why. It maps to HTTP 400.
type RequestError struct {
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

// Error implements error.
func (e *RequestError) Error() string {
	return fmt.Sprintf("jobq: bad request: %s: %s", e.Field, e.Reason)
}

// ParseRequest decodes and normalizes one JSON solve submission.
// Unknown fields, malformed JSON, and out-of-range values are rejected
// with a *RequestError naming the offending field.
func ParseRequest(body []byte) (Request, error) {
	if len(body) > MaxRequestBytes {
		return Request{}, &RequestError{Field: "body", Reason: "request exceeds 1 MiB"}
	}
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return Request{}, &RequestError{Field: "json", Reason: err.Error()}
	}
	if dec.More() {
		return Request{}, &RequestError{Field: "json", Reason: "trailing data after the request object"}
	}
	return req.Normalize()
}

// Normalize validates the request and fills every defaulted field with
// its concrete value, so equal problems have equal keys. The returned
// request is canonical: Class upper-case, Impl/Variant spelled out, Seed
// reduced to its 46-bit state, Iters the actual count.
func (r Request) Normalize() (Request, error) {
	r.Class = strings.ToUpper(strings.TrimSpace(r.Class))
	class, err := nas.ClassByName(r.Class)
	if err != nil {
		return Request{}, &RequestError{Field: "class", Reason: fmt.Sprintf("unknown class %q (want S, W, A, B or C)", r.Class)}
	}
	if r.Impl == "" {
		r.Impl = "sac"
	}
	valid := false
	for _, impl := range Impls {
		if r.Impl == impl {
			valid = true
		}
	}
	if !valid {
		return Request{}, &RequestError{Field: "impl", Reason: fmt.Sprintf("unknown implementation %q (want sac, f77 or c)", r.Impl)}
	}
	if r.Variant != "" {
		if r.Impl != "sac" {
			return Request{}, &RequestError{Field: "variant", Reason: "kernel variants apply to the sac implementation only"}
		}
		if !tune.ValidVariant(r.Variant) {
			return Request{}, &RequestError{Field: "variant", Reason: fmt.Sprintf("unknown variant %q (want %s, %s or %s)",
				r.Variant, tune.VariantScalar, tune.VariantBuffered, tune.VariantSIMD)}
		}
	}
	if r.Seed == 0 {
		r.Seed = nasrand.DefaultSeed
	}
	r.Seed &= 1<<46 - 1 // the NPB LCG state space
	if r.Seed == 0 {
		return Request{}, &RequestError{Field: "seed", Reason: "seed reduces to the LCG's all-zero fixed point"}
	}
	if r.Iters < 0 || r.Iters > MaxIters {
		return Request{}, &RequestError{Field: "iters", Reason: fmt.Sprintf("iterations must be in [0, %d]", MaxIters)}
	}
	if r.Iters == 0 {
		r.Iters = class.Iter
	}
	if len(r.Tenant) > 64 {
		return Request{}, &RequestError{Field: "tenant", Reason: "tenant name exceeds 64 bytes"}
	}
	if r.TraceID != "" && !obs.ValidTraceID(r.TraceID) {
		return Request{}, &RequestError{Field: "traceId", Reason: "trace ID must be 32 hex digits (W3C trace-id format)"}
	}
	return r, nil
}

// Key is the canonical identity string of the job's problem — the axes
// the paper's harness sweeps, (class, seed, impl, iterations, variant) —
// excluding transport options. Call on a normalized request.
func (r Request) Key() string {
	return fmt.Sprintf("class=%s seed=%d impl=%s iters=%d variant=%s",
		r.Class, r.Seed, r.Impl, r.Iters, r.Variant)
}

// ID is the content address of the job and its result: a truncated
// SHA-256 of the canonical key. Identical problems collide by design —
// that is the dedup and cache identity.
func (r Request) ID() string {
	sum := sha256.Sum256([]byte(r.Key()))
	return hex.EncodeToString(sum[:8])
}

// class resolves the normalized request's class with its iteration
// override applied.
func (r Request) class() nas.Class {
	class, err := nas.ClassByName(r.Class)
	if err != nil {
		panic("jobq: class() on an unnormalized request: " + err.Error())
	}
	class.Iter = r.Iters
	return class
}

// official reports whether the request poses the official benchmark
// problem — default seed and iteration count — for which the NPB
// verification constant applies.
func (r Request) official() bool {
	class, err := nas.ClassByName(r.Class)
	return err == nil && r.Seed == nasrand.DefaultSeed && r.Iters == class.Iter
}
