package jobq

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cport"
	"repro/internal/f77"
	"repro/internal/nas"
	"repro/internal/tune"
	wl "repro/internal/withloop"
)

// directSolve computes the reference norm for a normalized request the
// way the one-shot CLI does: a private sequential environment, no queue,
// no sharing. The service must reproduce it bit for bit.
func directSolve(t *testing.T, req Request) float64 {
	t.Helper()
	class, err := nas.ClassByName(req.Class)
	if err != nil {
		t.Fatal(err)
	}
	class.Iter = req.Iters
	switch req.Impl {
	case "sac":
		env := wl.Default()
		env.Variant = req.Variant
		defer env.Close()
		b := core.NewBenchmark(class, env)
		b.Seed = req.Seed
		rnm2, _ := b.Run()
		return rnm2
	case "f77":
		s := f77.New(class)
		s.Seed = req.Seed
		rnm2, _ := s.Run()
		return rnm2
	case "c":
		s := cport.New(class)
		s.Seed = req.Seed
		rnm2, _ := s.Run()
		return rnm2
	}
	t.Fatalf("unknown impl %q", req.Impl)
	return 0
}

// TestServiceSolveMatchesDirect is the determinism contract of the
// service: for every implementation, kernel variant and seed, a job
// solved through the queue — shared worker pool, shared arena, health
// monitor attached — returns exactly the rnm2 a standalone solve
// produces. Float equality here is bitwise (==), not approximate.
func TestServiceSolveMatchesDirect(t *testing.T) {
	q := New(Config{Runners: 2})
	defer q.Close()

	reqs := []Request{
		{Class: "S"},
		{Class: "S", Impl: "f77"},
		{Class: "S", Impl: "c"},
		{Class: "S", Variant: tune.VariantScalar},
		{Class: "S", Variant: tune.VariantBuffered},
		{Class: "S", Iters: 2},
		{Class: "S", Seed: 271828183, Iters: 3},
		{Class: "S", Impl: "f77", Seed: 271828183, Iters: 3},
		{Class: "S", Impl: "c", Seed: 271828183, Iters: 3},
	}
	for _, raw := range reqs {
		raw := raw
		name := fmt.Sprintf("%s_%s_v%s_s%d_i%d", raw.Class, raw.Impl, raw.Variant, raw.Seed, raw.Iters)
		t.Run(name, func(t *testing.T) {
			req, err := raw.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			tk, err := q.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
			select {
			case <-tk.Done():
			case <-time.After(60 * time.Second):
				t.Fatal("solve did not finish")
			}
			res := tk.Result()
			if res.State != StateDone {
				t.Fatalf("state = %s (%s)", res.State, res.Error)
			}
			want := directSolve(t, req)
			if res.Rnm2 != want {
				t.Errorf("service rnm2 = %v, direct = %v (must be bit-identical)", res.Rnm2, want)
			}
			if req.official() {
				if res.Verified == nil || !*res.Verified {
					t.Errorf("official class-S problem not verified: %+v", res)
				}
			} else if res.Verified != nil {
				t.Errorf("non-official problem carries a verification verdict: %+v", res)
			}
			if req.Impl == "sac" && res.Health == "" {
				t.Error("sac job missing a convergence-health verdict")
			}
		})
	}
}

// TestConcurrentSubmitStress hammers one queue — and through it the
// process-global worker pool and buffer arena — with identical and
// distinct jobs from many goroutines, mixing cache hits, dedup attaches
// and forced re-solves. Run under -race in CI; every result must still
// be bit-identical to the direct solve.
func TestConcurrentSubmitStress(t *testing.T) {
	clients, rounds := 8, 6
	if testing.Short() {
		clients, rounds = 4, 3
	}
	q := New(Config{Runners: 4, Capacity: 4 * clients * rounds})
	defer q.Close()

	// Reference norms per distinct problem, computed once up front.
	variants := []Request{
		{Class: "S", Iters: 1},
		{Class: "S", Iters: 2},
		{Class: "S", Impl: "f77", Iters: 1},
		{Class: "S", Impl: "c", Iters: 1},
	}
	want := make(map[string]float64)
	for i, raw := range variants {
		req, err := raw.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		variants[i] = req
		want[req.ID()] = directSolve(t, req)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				req := variants[(c+r)%len(variants)]
				req.Force = r%3 == 2 // every third round bypasses the cache
				req.Wait = c%2 == 0
				tk, err := q.Submit(req)
				if err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", c, r, err)
					return
				}
				select {
				case <-tk.Done():
				case <-time.After(120 * time.Second):
					errs <- fmt.Errorf("client %d round %d: timeout", c, r)
					return
				}
				res := tk.Result()
				if res.State != StateDone {
					errs <- fmt.Errorf("client %d round %d: state %s (%s)", c, r, res.State, res.Error)
					return
				}
				if res.Rnm2 != want[req.ID()] {
					errs <- fmt.Errorf("client %d round %d: rnm2 %v, want %v", c, r, res.Rnm2, want[req.ID()])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := q.Stats()
	if s.Completed == 0 || s.CacheHits == 0 {
		t.Errorf("stress run exercised too little: %+v", s)
	}
	t.Logf("stress stats: %+v", s)
}

// TestCacheHitLatency checks the shape of the service's headline number:
// repeat traffic answered from the result cache must be far cheaper than
// re-solving. The full >=100x claim is measured by cmd/mgload
// (EXPERIMENTS.md); here a deliberately loose 10x bound keeps the test
// meaningful without timing flakes.
func TestCacheHitLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	q := New(Config{})
	defer q.Close()

	req, err := Request{Class: "S"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	coldStart := time.Now()
	tk, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-tk.Done()
	if res := tk.Result(); res.State != StateDone {
		t.Fatalf("cold solve failed: %+v", res)
	}
	cold := time.Since(coldStart)

	const hits = 200
	hitStart := time.Now()
	for i := 0; i < hits; i++ {
		tk, err := q.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if !tk.Cached() {
			t.Fatal("repeat submission missed the cache")
		}
	}
	perHit := time.Since(hitStart) / hits
	if perHit*10 > cold {
		t.Errorf("cache hit %s vs cold solve %s: want at least 10x cheaper", perHit, cold)
	}
	t.Logf("cold=%s hit=%s ratio=%.0fx", cold, perHit, float64(cold)/float64(perHit))
}
