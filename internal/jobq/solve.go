package jobq

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/cport"
	"repro/internal/f77"
	"repro/internal/health"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/sched"
	wl "repro/internal/withloop"
)

// Solver returns the real RunFunc: each job solves over the shared
// worker pool and draws its grids from a private scope of the shared
// buffer arena. Nil arguments select the process-global runtimes.
func Solver(pool *sched.Pool, mem *mempool.Pool) RunFunc {
	return ObservedSolver(pool, mem, nil)
}

// ObservedSolver is Solver with a kernel-metrics collector attached to
// every sac job's environment — one collector shared across all jobs
// (its per-worker shards are mutex-protected), so the daemon's /metrics
// endpoint aggregates kernel timings over the whole job stream.
func ObservedSolver(pool *sched.Pool, mem *mempool.Pool, col *metrics.Collector) RunFunc {
	if pool == nil {
		pool = sched.Shared()
	}
	if mem == nil {
		mem = mempool.Shared()
	}
	return func(ctx context.Context, req Request) (Result, error) {
		return solve(ctx, req, pool, mem, col)
	}
}

// solve executes one job. Determinism contract: for every (class, seed,
// impl, iterations, variant) the result is bit-identical to a one-shot
// solve of the same request — shared pools, scopes and observation hooks
// never change the arithmetic (asserted by TestServiceSolveMatchesDirect
// and the daemon integration test).
func solve(ctx context.Context, req Request, pool *sched.Pool, mem *mempool.Pool, col *metrics.Collector) (Result, error) {
	class := req.class()
	res := Result{ID: req.ID(), Request: req}
	cancelled := func() bool { return ctx.Err() != nil }
	start := time.Now()

	var rnm2, rnmu float64
	switch req.Impl {
	case "sac":
		env := wl.Service(pool, mem)
		env.Variant = req.Variant
		env.AttachMetrics(col)
		mon := health.New(health.Config{})
		env.Health = mon
		b := core.NewBenchmark(class, env)
		b.Seed = req.Seed
		b.Solver.Cancel = cancelled
		rnm2, rnmu = b.Run()
		scope := env.Pool.Stats()
		res.MemAllocs, res.MemReuses = scope.Allocs, scope.Reuses
		res.Health = mon.Report(metrics.Snapshot{}).Verdict
		// Return the job's grids to the shared arena before the scope is
		// discarded — the next job reuses the buffers instead of the heap.
		env.Release(b.U())
		env.Release(b.V())

	case "f77":
		var s *f77.Solver
		if pool != nil && pool.Workers() > 1 {
			s = f77.NewParallel(class, pool, f77.FullPar)
		} else {
			s = f77.New(class)
		}
		s.Seed = req.Seed
		s.Reset()
		s.EvalResid()
		for it := 0; it < class.Iter && !cancelled(); it++ {
			s.MG3P()
			s.EvalResid()
		}
		rnm2, rnmu = s.Norms()

	case "c":
		var s *cport.Solver
		if pool != nil && pool.Workers() > 1 {
			s = cport.NewParallel(class, pool)
		} else {
			s = cport.New(class)
		}
		s.Seed = req.Seed
		s.Reset()
		s.EvalResid()
		for it := 0; it < class.Iter && !cancelled(); it++ {
			s.MG3P()
			s.EvalResid()
		}
		rnm2, rnmu = s.Norms()
	}

	if err := ctx.Err(); err != nil {
		return res, err
	}
	res.Rnm2, res.Rnmu = rnm2, rnmu
	res.SolveSeconds = time.Since(start).Seconds()
	if req.official() {
		if verified, ok := class.Verify(rnm2); ok {
			res.Verified = &verified
		}
	}
	return res, nil
}
