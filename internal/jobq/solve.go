package jobq

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/cport"
	"repro/internal/f77"
	"repro/internal/health"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	wl "repro/internal/withloop"
)

// SolverConfig configures the real RunFunc. Every field is optional:
// nil pools select the process-global runtimes, nil observability
// sinks disable themselves for free.
type SolverConfig struct {
	// Sched is the worker pool jobs multiplex over; nil = sched.Shared().
	Sched *sched.Pool
	// Mem is the buffer arena; nil = mempool.Shared().
	Mem *mempool.Pool
	// Metrics aggregates per-kernel timings across the whole job stream
	// (one collector shared by all jobs; its shards are mutex-protected).
	Metrics *metrics.Collector
	// Trace receives the solver's V-cycle events. Each job emits through
	// a ForJob view tagged with its trace and job IDs, so the shared
	// stream regroups into per-request span trees (cmd/mgtrace).
	Trace *metrics.Tracer
	// Obs receives each sac solve's health verdict into the flight
	// recorder's verdict history.
	Obs *obs.Observer
}

// Solver returns the real RunFunc: each job solves over the shared
// worker pool and draws its grids from a private scope of the shared
// buffer arena. Nil arguments select the process-global runtimes.
func Solver(pool *sched.Pool, mem *mempool.Pool) RunFunc {
	return NewSolver(SolverConfig{Sched: pool, Mem: mem})
}

// ObservedSolver is Solver with a kernel-metrics collector attached to
// every sac job's environment. Kept for callers that predate
// SolverConfig; NewSolver is the full-width constructor.
func ObservedSolver(pool *sched.Pool, mem *mempool.Pool, col *metrics.Collector) RunFunc {
	return NewSolver(SolverConfig{Sched: pool, Mem: mem, Metrics: col})
}

// NewSolver builds the RunFunc from the config.
func NewSolver(cfg SolverConfig) RunFunc {
	if cfg.Sched == nil {
		cfg.Sched = sched.Shared()
	}
	if cfg.Mem == nil {
		cfg.Mem = mempool.Shared()
	}
	return func(ctx context.Context, req Request) (Result, error) {
		return solve(ctx, req, cfg)
	}
}

// solve executes one job. Determinism contract: for every (class, seed,
// impl, iterations, variant) the result is bit-identical to a one-shot
// solve of the same request — shared pools, scopes and observation hooks
// never change the arithmetic (asserted by TestServiceSolveMatchesDirect
// and the daemon integration test).
func solve(ctx context.Context, req Request, cfg SolverConfig) (Result, error) {
	pool, col := cfg.Sched, cfg.Metrics
	class := req.class()
	res := Result{ID: req.ID(), TraceID: req.TraceID, Request: req}
	cancelled := func() bool { return ctx.Err() != nil }
	start := time.Now()

	var rnm2, rnmu float64
	switch req.Impl {
	case "sac":
		env := wl.Service(pool, cfg.Mem)
		env.Variant = req.Variant
		env.AttachMetrics(col)
		// The per-job tracer view: every kernel span, iteration marker
		// and solve summary this job emits carries its trace/job tags
		// (nil propagates — a disabled tracer stays one nil check).
		env.Trace = cfg.Trace.ForJob(req.TraceID, req.ID())
		mon := health.New(health.Config{})
		env.Health = mon
		b := core.NewBenchmark(class, env)
		b.Seed = req.Seed
		b.Solver.Cancel = cancelled
		rnm2, rnmu = b.Run()
		scope := env.Pool.Stats()
		res.MemAllocs, res.MemReuses = scope.Allocs, scope.Reuses
		res.Health = mon.Report(metrics.Snapshot{}).Verdict
		cfg.Obs.HealthVerdict(res.Health)
		// Return the job's grids to the shared arena before the scope is
		// discarded — the next job reuses the buffers instead of the heap.
		env.Release(b.U())
		env.Release(b.V())

	case "f77":
		var s *f77.Solver
		if pool != nil && pool.Workers() > 1 {
			s = f77.NewParallel(class, pool, f77.FullPar)
		} else {
			s = f77.New(class)
		}
		s.Seed = req.Seed
		s.Reset()
		s.EvalResid()
		for it := 0; it < class.Iter && !cancelled(); it++ {
			s.MG3P()
			s.EvalResid()
		}
		rnm2, rnmu = s.Norms()

	case "c":
		var s *cport.Solver
		if pool != nil && pool.Workers() > 1 {
			s = cport.NewParallel(class, pool)
		} else {
			s = cport.New(class)
		}
		s.Seed = req.Seed
		s.Reset()
		s.EvalResid()
		for it := 0; it < class.Iter && !cancelled(); it++ {
			s.MG3P()
			s.EvalResid()
		}
		rnm2, rnmu = s.Norms()
	}

	if err := ctx.Err(); err != nil {
		return res, err
	}
	res.Rnm2, res.Rnmu = rnm2, rnmu
	res.SolveSeconds = time.Since(start).Seconds()
	if req.official() {
		if verified, ok := class.Verify(rnm2); ok {
			res.Verified = &verified
		}
	}
	return res, nil
}
