package jobq

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzSolveRequest fuzzes the job-submission JSON parser — the daemon's
// only untrusted input. Invariants: ParseRequest never panics; every
// rejection is a typed *RequestError naming a field; every accepted
// request is canonical (Normalize is idempotent), has in-range fields,
// and yields a stable 16-hex-digit content address.
func FuzzSolveRequest(f *testing.F) {
	seeds := []string{
		`{"class":"S"}`,
		`{"class":"s"}`,
		`{"class":"A","impl":"f77","iters":4}`,
		`{"class":"W","impl":"sac","variant":"simd","seed":1,"tenant":"lab","wait":true}`,
		`{"class":"B","impl":"c","force":true}`,
		`{"class":"S","variant":"buffered"}`,
		`{"class":"S","seed":70368744177664}`,
		`{"class":"Z"}`,
		`{"class":"S","impl":"cuda"}`,
		`{"class":"S","iters":-3}`,
		`{"class":"S","iters":100000}`,
		`{"class":"S","impl":"f77","variant":"simd"}`,
		`{"class":"S","unknown":"field"}`,
		`{"class":"S"}{"class":"W"}`,
		`[1,2,3]`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := ParseRequest(body)
		if err != nil {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("ParseRequest(%q): rejection %v is not a *RequestError", body, err)
			}
			if re.Field == "" || re.Reason == "" {
				t.Fatalf("ParseRequest(%q): rejection missing field/reason: %+v", body, re)
			}
			return
		}

		// Accepted requests are fully canonical.
		again, err := req.Normalize()
		if err != nil {
			t.Fatalf("Normalize not idempotent for %q: %v", body, err)
		}
		if again != req {
			t.Fatalf("Normalize not a fixpoint: %+v vs %+v", req, again)
		}
		switch req.Class {
		case "S", "W", "A", "B", "C":
		default:
			t.Fatalf("accepted unknown class %q", req.Class)
		}
		valid := false
		for _, impl := range Impls {
			if req.Impl == impl {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("accepted unknown impl %q", req.Impl)
		}
		if req.Variant != "" && req.Impl != "sac" {
			t.Fatalf("accepted variant %q for impl %q", req.Variant, req.Impl)
		}
		if req.Iters < 1 || req.Iters > MaxIters {
			t.Fatalf("accepted out-of-range iters %d", req.Iters)
		}
		if req.Seed == 0 || req.Seed >= 1<<46 {
			t.Fatalf("accepted out-of-range seed %d", req.Seed)
		}
		if id := req.ID(); len(id) != 16 {
			t.Fatalf("ID %q is not 16 hex digits", id)
		}
		if req.ID() != again.ID() || req.Key() != again.Key() {
			t.Fatal("content address not stable under re-normalization")
		}
		// The canonical request survives a JSON round trip with the same
		// identity — what the daemon echoes back must mean the same job.
		blob, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		round, err := ParseRequest(blob)
		if err != nil {
			t.Fatalf("canonical request %s rejected on re-parse: %v", blob, err)
		}
		if round.ID() != req.ID() {
			t.Fatalf("round trip changed identity: %s vs %s", round.Key(), req.Key())
		}
	})
}
