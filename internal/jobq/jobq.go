package jobq

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
)

// State is a job's position in its lifecycle.
type State string

const (
	// StateQueued: admitted, waiting for a runner.
	StateQueued State = "queued"
	// StateRunning: a runner is executing the solve.
	StateRunning State = "running"
	// StateDone: finished successfully; the result is cached.
	StateDone State = "done"
	// StateFailed: the solve errored or produced a non-finite norm.
	StateFailed State = "failed"
	// StateCancelled: every waiting client released the job (or the queue
	// shut down) before it finished.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// StageBreakdown is the per-stage latency decomposition of one job —
// the monotonic-timestamp differences the queue records at
// submit/admit/dequeue/solve-start/solve-end/respond (stage model:
// internal/obs). It is echoed in /v1/results/{id} so a client can see
// where its request's time went without scraping histograms.
type StageBreakdown struct {
	// IngressSeconds is submit entry → admission decision.
	IngressSeconds float64 `json:"ingressSeconds"`
	// QueueSeconds is admission → a runner dequeued the job.
	QueueSeconds float64 `json:"queueSeconds"`
	// SolveSeconds is runner start → solver return.
	SolveSeconds float64 `json:"solveSeconds"`
	// RespondSeconds is solver return → terminal result published.
	RespondSeconds float64 `json:"respondSeconds"`
	// TotalSeconds is submit entry → terminal result published.
	TotalSeconds float64 `json:"totalSeconds"`
	// DedupWaiters counts submissions that coalesced onto this job
	// instead of running their own solve.
	DedupWaiters int `json:"dedupWaiters,omitempty"`
}

// Result is the full record of one job: identity, lifecycle, norms,
// verification and accounting. It is a value type — lookups return
// copies, so readers never race the runner.
type Result struct {
	// ID is the content address (Request.ID).
	ID string `json:"id"`
	// TraceID is the trace identity of the submission that created the
	// job (dedup attachers and cache hits see their own trace IDs in
	// their responses, the job keeps its creator's).
	TraceID string `json:"traceId,omitempty"`
	// Request is the normalized request that defines the job.
	Request Request `json:"request"`
	// State is the lifecycle position at lookup time.
	State State `json:"state"`
	// Rnm2 and Rnmu are the NPB residual norms (valid when State is done).
	Rnm2 float64 `json:"rnm2,omitempty"`
	Rnmu float64 `json:"rnmu,omitempty"`
	// Verified is the NPB acceptance verdict against the published
	// constant; nil when no constant applies (non-default seed or
	// iteration count, or a class without an official reference).
	Verified *bool `json:"verified,omitempty"`
	// Health is the convergence monitor's verdict for sac solves
	// (healthy, converged, stalled, diverging, nonfinite).
	Health string `json:"health,omitempty"`
	// Error describes the failure when State is failed.
	Error string `json:"error,omitempty"`
	// Cached is set on responses served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// QueueSeconds is the admission-to-start wait; SolveSeconds the
	// execution time of the solve itself.
	QueueSeconds float64 `json:"queueSeconds,omitempty"`
	SolveSeconds float64 `json:"solveSeconds,omitempty"`
	// Stages is the full per-stage latency decomposition, populated on
	// the terminal transition (nil while the job is in flight).
	Stages *StageBreakdown `json:"stages,omitempty"`
	// MemAllocs/MemReuses are the job's private mempool-scope counters:
	// fresh allocations versus buffers recycled from the shared arena.
	MemAllocs uint64 `json:"memAllocs,omitempty"`
	MemReuses uint64 `json:"memReuses,omitempty"`
}

// RunFunc executes one solve. The context is cancelled when every waiter
// releases the job or the queue shuts down; implementations should poll
// it between iterations and return ctx.Err(). Solver returns the real
// implementation; tests substitute stubs.
type RunFunc func(ctx context.Context, req Request) (Result, error)

// Config configures a Queue. The zero value is usable: shared runtimes,
// the real solver, capacity 64, one runner.
type Config struct {
	// Capacity bounds the number of admitted-but-unfinished jobs. A full
	// queue rejects with *FullError (HTTP 429). Default 64.
	Capacity int
	// Runners is the number of jobs solved concurrently. Each runner
	// drives its solve over the shared worker pool, so this multiplexes
	// jobs over threads rather than multiplying them. Default 1.
	Runners int
	// CacheEntries bounds the result cache. Default 256.
	CacheEntries int
	// Priorities maps tenant names to scheduling priority; higher runs
	// first. Unlisted tenants (and the anonymous tenant) run at 0.
	Priorities map[string]int
	// Run executes solves; nil selects Solver(Sched, Mem).
	Run RunFunc
	// Sched is the worker pool for solves; nil selects sched.Shared().
	Sched *sched.Pool
	// Mem is the buffer arena for solves; nil selects mempool.Shared().
	Mem *mempool.Pool
	// Obs is the request-scoped observability layer: structured logs,
	// mgd_stage_seconds histograms and the flight recorder. nil disables
	// all three at the cost of one nil check per lifecycle transition.
	Obs *obs.Observer
	// Trace, when non-nil, receives trace-tagged service-stage events
	// (ingress, queue, dedup, solve) for every job, on the same stream
	// the solver's kernel spans land on — the raw material of the
	// per-job Perfetto span tree. nil disables stage tracing for free.
	Trace *metrics.Tracer
}

// FullError is the admission-control rejection: the queue is at
// capacity. RetryAfter estimates when a slot will free up, from the
// solve-time EMA and the backlog — the value behind the HTTP
// Retry-After header.
type FullError struct {
	Capacity   int
	RetryAfter time.Duration
}

// Error implements error.
func (e *FullError) Error() string {
	return fmt.Sprintf("jobq: queue full (%d jobs); retry after %s", e.Capacity, e.RetryAfter)
}

// ErrDraining rejects submissions during graceful shutdown.
var ErrDraining = fmt.Errorf("jobq: draining; not accepting new jobs")

// job is one admitted, not-yet-terminal job.
type job struct {
	id  string
	req Request
	res Result // mutated under Queue.mu only

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on terminal transition

	prio int
	seq  uint64 // admission order; FIFO tiebreak within a priority
	idx  int    // heap index; -1 once popped

	waiters int  // wait-mode clients that can still Release
	keep    bool // a fire-and-forget submission owns the job: never auto-cancel

	// The stage clock: monotonic timestamps at each lifecycle boundary
	// (submittedAt = Submit entry, queuedAt = admission, startedAt =
	// dequeue/solve start, solveEndAt = the runner's RunFunc returned).
	// Their differences are the job's StageBreakdown.
	submittedAt time.Time
	queuedAt    time.Time
	startedAt   time.Time
	solveEndAt  time.Time
	// dedupAttach records when each coalesced submission attached; their
	// waits (attach → terminal) feed the dedup stage histogram.
	dedupAttach []time.Time
}

// Queue is the service core: admission control, priority scheduling,
// in-flight dedup, cancellation, graceful drain and the result cache.
type Queue struct {
	cfg   Config
	run   RunFunc
	cache *resultCache
	obs   *obs.Observer
	trace *metrics.Tracer

	mu       sync.Mutex
	cond     *sync.Cond // runners wait here; drain waits here too
	pending  jobHeap    // admitted, not yet picked up
	jobs     map[string]*job
	seq      uint64
	running  int
	draining bool
	stopped  bool
	ema      float64 // EMA of solve seconds; 0 = no sample yet
	// stageSecs accumulates per-stage latency over terminal jobs
	// (Stats.StageSeconds); lazily allocated on the first finish.
	stageSecs map[string]float64

	submitted, completed, failed, cancelled, rejected, deduped uint64

	runnersWG sync.WaitGroup
}

// New builds the queue and starts its runners. Call Close (or Drain then
// Close) when done.
func New(cfg Config) *Queue {
	if cfg.Capacity < 1 {
		cfg.Capacity = 64
	}
	if cfg.Runners < 1 {
		cfg.Runners = 1
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 256
	}
	q := &Queue{
		cfg:   cfg,
		run:   cfg.Run,
		cache: newResultCache(cfg.CacheEntries),
		jobs:  make(map[string]*job),
		obs:   cfg.Obs,
		trace: cfg.Trace,
	}
	if q.run == nil {
		q.run = Solver(cfg.Sched, cfg.Mem)
	}
	q.cond = sync.NewCond(&q.mu)
	q.runnersWG.Add(cfg.Runners)
	for i := 0; i < cfg.Runners; i++ {
		go q.runner()
	}
	return q
}

// Ticket is a submitter's handle on a job: the channel to wait on, the
// result once terminal, and Release for wait-mode clients that
// disconnect. Cache hits return a pre-resolved ticket.
type Ticket struct {
	q      *Queue
	job    *job // nil for cache hits
	res    Result
	cached bool

	releaseOnce sync.Once
}

// ID returns the job's content address.
func (t *Ticket) ID() string {
	if t.job != nil {
		return t.job.id
	}
	return t.res.ID
}

// Cached reports whether the ticket was answered from the result cache
// without queueing a job.
func (t *Ticket) Cached() bool { return t.cached }

// Done returns a channel closed when the job is terminal (already closed
// for cache hits).
func (t *Ticket) Done() <-chan struct{} {
	if t.job != nil {
		return t.job.done
	}
	return closedChan
}

// Result returns the job's record. Before Done it is a snapshot of the
// live state; after Done it is the terminal result.
func (t *Ticket) Result() Result {
	if t.job == nil {
		return t.res
	}
	t.q.mu.Lock()
	defer t.q.mu.Unlock()
	return t.job.res
}

// Release detaches a wait-mode submitter — the client-disconnect path.
// When the last waiter of a job with no fire-and-forget owner releases,
// the job's context is cancelled: a queued job dies in the queue, a
// running solve stops at its next iteration boundary. Safe to call more
// than once and after Done; a no-op for cache hits and fire-and-forget
// tickets.
func (t *Ticket) Release() {
	t.releaseOnce.Do(func() {
		if t.job == nil {
			return
		}
		q := t.q
		q.mu.Lock()
		j := t.job
		if j.waiters > 0 {
			j.waiters--
		}
		abandon := j.waiters == 0 && !j.keep && !j.res.State.Terminal()
		q.mu.Unlock()
		if abandon {
			j.cancel()
		}
	})
}

var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Submit admits one normalized request (Submit normalizes defensively).
// The fast path — a cached success for the same content address, unless
// req.Force — returns a resolved ticket without touching the queue.
// Identical in-flight jobs coalesce: the new submitter attaches to the
// existing job. Rejections: *RequestError (malformed), *FullError (at
// capacity), ErrDraining (shutting down).
func (q *Queue) Submit(req Request) (*Ticket, error) {
	ingressStart := time.Now()
	req, err := req.Normalize()
	if err != nil {
		return nil, err
	}
	if req.TraceID == "" {
		// The HTTP front end mints at ingress; direct API users get an
		// ID here so every job is traceable.
		req.TraceID = obs.NewTraceID().String()
	}
	id := req.ID()
	if !req.Force {
		if res, ok := q.cache.get(id); ok {
			res.Cached = true
			res.TraceID = req.TraceID
			ingress := time.Since(ingressStart).Seconds()
			res.Stages = &StageBreakdown{IngressSeconds: ingress, TotalSeconds: ingress}
			q.trace.Emit(metrics.Event{Ev: "stage", Stage: obs.StageIngress,
				Nanos: int64(time.Since(ingressStart)), Trace: req.TraceID, Job: id})
			q.obs.JobFinished(obs.JobRecord{
				TraceID: req.TraceID, JobID: id, Tenant: req.Tenant,
				Class: req.Class, Impl: req.Impl,
				State: string(StateDone), Cached: true,
				SubmitUnixNano: ingressStart.UnixNano(),
				IngressSeconds: ingress, TotalSeconds: ingress,
				Rnm2: res.Rnm2,
			})
			return &Ticket{q: q, res: res, cached: true}, nil
		}
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining || q.stopped {
		return nil, ErrDraining
	}
	q.submitted++
	if j, ok := q.jobs[id]; ok {
		// Same problem already admitted: coalesce instead of re-solving.
		q.deduped++
		if req.Wait {
			j.waiters++
		} else {
			j.keep = true
		}
		j.dedupAttach = append(j.dedupAttach, time.Now())
		q.obs.JobDeduped(req.TraceID, id, req.Tenant)
		return &Ticket{q: q, job: j}, nil
	}
	if len(q.jobs) >= q.cfg.Capacity {
		q.rejected++
		retry := q.retryAfterLocked()
		q.obs.JobRejected(req.TraceID, req.Tenant, retry)
		return nil, &FullError{Capacity: q.cfg.Capacity, RetryAfter: retry}
	}
	ctx, cancel := context.WithCancel(context.Background())
	now := time.Now()
	j := &job{
		id:          id,
		req:         req,
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		prio:        q.cfg.Priorities[req.Tenant],
		seq:         q.seq,
		submittedAt: ingressStart,
		queuedAt:    now,
		res:         Result{ID: id, TraceID: req.TraceID, Request: req, State: StateQueued},
	}
	q.seq++
	if req.Wait {
		j.waiters = 1
	} else {
		j.keep = true
	}
	q.jobs[id] = j
	heap.Push(&q.pending, j)
	q.cond.Signal()
	q.trace.Emit(metrics.Event{Ev: "stage", Stage: obs.StageIngress,
		Nanos: int64(now.Sub(ingressStart)), Trace: req.TraceID, Job: id})
	q.obs.JobAdmitted(req.TraceID, id, req.Tenant, len(q.pending), q.running)
	return &Ticket{q: q, job: j}, nil
}

// retryAfterLocked estimates when the backlog will have drained one
// slot: the solve-time EMA times the jobs ahead, split across runners.
// Floor 1s — the client should never busy-spin.
func (q *Queue) retryAfterLocked() time.Duration {
	ema := q.ema
	if ema == 0 {
		ema = 0.1
	}
	est := ema * float64(len(q.jobs)) / float64(q.cfg.Runners)
	d := time.Duration(est * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return d.Round(time.Second)
}

// runner is one worker loop: pop the highest-priority job, solve it,
// publish the terminal result.
func (q *Queue) runner() {
	defer q.runnersWG.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.stopped {
			q.cond.Wait()
		}
		if q.stopped && len(q.pending) == 0 {
			q.mu.Unlock()
			return
		}
		j := heap.Pop(&q.pending).(*job)
		if j.ctx.Err() != nil {
			// Abandoned while queued: terminal without running.
			rec := q.finishLocked(j, Result{}, j.ctx.Err())
			q.mu.Unlock()
			q.publishFinish(j, rec)
			continue
		}
		dequeued := time.Now()
		j.res.State = StateRunning
		j.res.QueueSeconds = dequeued.Sub(j.queuedAt).Seconds()
		q.running++
		q.mu.Unlock()
		q.trace.Emit(metrics.Event{Ev: "stage", Stage: obs.StageQueue,
			Nanos: int64(dequeued.Sub(j.queuedAt)), Trace: j.req.TraceID, Job: j.id})
		// startedAt is taken after the queue-stage emit: the tracer stamps
		// span ends at emission, so this ordering is what guarantees the
		// queue and solve spans of one job never overlap in the timeline.
		j.startedAt = time.Now()

		res, err := q.run(j.ctx, j.req)
		j.solveEndAt = time.Now()
		q.trace.Emit(metrics.Event{Ev: "stage", Stage: obs.StageSolve,
			Nanos: int64(j.solveEndAt.Sub(j.startedAt)), Trace: j.req.TraceID, Job: j.id})

		q.mu.Lock()
		q.running--
		rec := q.finishLocked(j, res, err)
		q.mu.Unlock()
		q.publishFinish(j, rec)
	}
}

// finishLocked publishes a job's terminal state: result fields, stage
// breakdown, cache entry, counters, EMA, waiter wake-up. Caller holds
// q.mu; the returned flight record is handed to publishFinish outside
// the lock (the observer may log or write a dump file).
func (q *Queue) finishLocked(j *job, res Result, err error) obs.JobRecord {
	now := time.Now()
	queueSecs := j.res.QueueSeconds
	if j.startedAt.IsZero() {
		// Died in the queue: its whole life was queue wait.
		queueSecs = now.Sub(j.queuedAt).Seconds()
	}
	if !j.startedAt.IsZero() {
		res.SolveSeconds = time.Since(j.startedAt).Seconds()
	}
	res.ID = j.id
	res.TraceID = j.req.TraceID
	res.Request = j.req
	res.QueueSeconds = queueSecs
	nonFinite := false
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		res.State = StateCancelled
		res.Error = "cancelled: " + err.Error()
		q.cancelled++
	case err != nil:
		res.State = StateFailed
		res.Error = err.Error()
		q.failed++
	case math.IsNaN(res.Rnm2) || math.IsInf(res.Rnm2, 0) || math.IsNaN(res.Rnmu) || math.IsInf(res.Rnmu, 0):
		// A poisoned solve must surface as a failed job, not a cached
		// "success" or a dead daemon.
		res.State = StateFailed
		res.Error = fmt.Sprintf("non-finite residual norm (rnm2=%v, rnmu=%v)", res.Rnm2, res.Rnmu)
		res.Rnm2, res.Rnmu = 0, 0 // NaN/Inf are not representable in JSON
		nonFinite = true
		q.failed++
	default:
		res.State = StateDone
		q.completed++
		if res.SolveSeconds > 0 {
			if q.ema == 0 {
				q.ema = res.SolveSeconds
			} else {
				q.ema = 0.8*q.ema + 0.2*res.SolveSeconds
			}
		}
	}
	stages := StageBreakdown{
		IngressSeconds: j.queuedAt.Sub(j.submittedAt).Seconds(),
		QueueSeconds:   queueSecs,
		SolveSeconds:   res.SolveSeconds,
		TotalSeconds:   now.Sub(j.submittedAt).Seconds(),
		DedupWaiters:   len(j.dedupAttach),
	}
	if !j.solveEndAt.IsZero() {
		stages.RespondSeconds = now.Sub(j.solveEndAt).Seconds()
	}
	res.Stages = &stages
	if q.stageSecs == nil {
		q.stageSecs = make(map[string]float64, len(obs.Stages))
	}
	q.stageSecs[obs.StageIngress] += stages.IngressSeconds
	q.stageSecs[obs.StageQueue] += stages.QueueSeconds
	q.stageSecs[obs.StageSolve] += stages.SolveSeconds
	q.stageSecs[obs.StageRespond] += stages.RespondSeconds
	j.res = res
	j.cancel() // release the context's resources in every path
	delete(q.jobs, j.id)
	q.cache.put(j.id, res)
	close(j.done)
	q.cond.Broadcast() // wake Drain waiters (and idle runners, harmlessly)

	rec := obs.JobRecord{
		TraceID: j.req.TraceID, JobID: j.id, Tenant: j.req.Tenant,
		Class: j.req.Class, Impl: j.req.Impl,
		State: string(res.State), Error: res.Error, NonFinite: nonFinite,
		SubmitUnixNano: j.submittedAt.UnixNano(),
		IngressSeconds: stages.IngressSeconds,
		QueueSeconds:   stages.QueueSeconds,
		SolveSeconds:   stages.SolveSeconds,
		RespondSeconds: stages.RespondSeconds,
		TotalSeconds:   stages.TotalSeconds,
		DedupWaiters:   stages.DedupWaiters,
		QueueDepth:     len(q.pending),
		Running:        q.running,
		Rnm2:           res.Rnm2,
	}
	for _, at := range j.dedupAttach {
		rec.DedupWaitSeconds = append(rec.DedupWaitSeconds, now.Sub(at).Seconds())
	}
	return rec
}

// publishFinish runs the post-terminal observability work outside q.mu:
// dedup-wait stage events and the observer's histogram/ring/log/dump
// hooks (a dump writes a file — never under the queue lock).
func (q *Queue) publishFinish(j *job, rec obs.JobRecord) {
	if q.trace != nil {
		for _, wait := range rec.DedupWaitSeconds {
			q.trace.Emit(metrics.Event{Ev: "stage", Stage: obs.StageDedup,
				Nanos: int64(wait * float64(time.Second)), Trace: rec.TraceID, Job: rec.JobID})
		}
		q.trace.Emit(metrics.Event{Ev: "stage", Stage: obs.StageRespond,
			Nanos: int64(rec.RespondSeconds * float64(time.Second)),
			Trace: rec.TraceID, Job: rec.JobID})
	}
	q.obs.JobFinished(rec)
}

// Lookup returns the current record of a job by content address: the
// live state for in-flight jobs, the cached terminal result otherwise.
func (q *Queue) Lookup(id string) (Result, bool) {
	q.mu.Lock()
	if j, ok := q.jobs[id]; ok {
		res := j.res
		q.mu.Unlock()
		return res, true
	}
	q.mu.Unlock()
	return q.cache.lookup(id)
}

// Drain begins graceful shutdown: new submissions are rejected with
// ErrDraining while admitted jobs run to completion. It returns nil when
// the queue is empty, or the context's error after cancelling whatever
// was still in flight at the deadline.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	first := !q.draining
	q.draining = true
	q.mu.Unlock()
	if first {
		// The drain snapshot: what the queue looked like when intake
		// stopped — the flight recorder's "end of tape" marker.
		q.obs.DrainStarted()
	}

	done := make(chan struct{})
	go func() {
		q.mu.Lock()
		for len(q.jobs) > 0 {
			q.cond.Wait()
		}
		q.mu.Unlock()
		close(done)
	}()

	select {
	case <-done:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		for _, j := range q.jobs {
			j.cancel()
		}
		q.cond.Broadcast()
		q.mu.Unlock()
		<-done // runners notice the cancelled contexts within an iteration
		return ctx.Err()
	}
}

// Close stops the runners after cancelling everything still in flight
// and waits for them to exit. For a graceful shutdown call Drain first;
// Close alone is the abort path.
func (q *Queue) Close() {
	q.mu.Lock()
	q.draining = true
	q.stopped = true
	for _, j := range q.jobs {
		j.cancel()
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	q.runnersWG.Wait()
}

// Stats is a point-in-time snapshot of the queue's counters and gauges.
type Stats struct {
	Submitted, Completed, Failed, Cancelled, Rejected, Deduped uint64
	CacheHits, CacheMisses                                     uint64
	Queued, Running, CacheEntries                              int
	EMASolveSeconds                                            float64
	Draining                                                   bool
	// StageSeconds is the cumulative per-stage latency over every
	// terminal job, keyed by obs stage name — the coarse companion of
	// the mgd_stage_seconds histograms, cheap enough for /v1/stats.
	StageSeconds map[string]float64 `json:",omitempty"`
}

// Stats returns the snapshot.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	s := Stats{
		Submitted:       q.submitted,
		Completed:       q.completed,
		Failed:          q.failed,
		Cancelled:       q.cancelled,
		Rejected:        q.rejected,
		Deduped:         q.deduped,
		Queued:          len(q.pending),
		Running:         q.running,
		EMASolveSeconds: q.ema,
		Draining:        q.draining,
	}
	if q.stageSecs != nil {
		s.StageSeconds = make(map[string]float64, len(q.stageSecs))
		for stage, secs := range q.stageSecs {
			s.StageSeconds[stage] = secs
		}
	}
	q.mu.Unlock()
	s.CacheHits, s.CacheMisses = q.cache.counters()
	s.CacheEntries = q.cache.len()
	return s
}

// WritePrometheus renders the queue's counters in Prometheus text
// exposition format under the mgd_ namespace — the service-level rows of
// the daemon's /metrics endpoint.
func (q *Queue) WritePrometheus(w io.Writer) {
	s := q.Stats()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("mgd_jobs_submitted_total", "Solve submissions admitted or coalesced.", s.Submitted)
	counter("mgd_jobs_completed_total", "Jobs finished successfully.", s.Completed)
	counter("mgd_jobs_failed_total", "Jobs that errored or produced non-finite norms.", s.Failed)
	counter("mgd_jobs_cancelled_total", "Jobs abandoned by every waiter or cut off by shutdown.", s.Cancelled)
	counter("mgd_jobs_rejected_total", "Submissions rejected by admission control (queue full).", s.Rejected)
	counter("mgd_jobs_deduped_total", "Submissions coalesced onto an identical in-flight job.", s.Deduped)
	counter("mgd_cache_hits_total", "Submissions answered from the result cache.", s.CacheHits)
	counter("mgd_cache_misses_total", "Cache lookups that had to queue a solve.", s.CacheMisses)
	gauge("mgd_queue_depth", "Jobs admitted and waiting for a runner.", float64(s.Queued))
	gauge("mgd_jobs_running", "Jobs currently executing.", float64(s.Running))
	gauge("mgd_cache_entries", "Results currently cached.", float64(s.CacheEntries))
	gauge("mgd_solve_seconds_ema", "Exponential moving average of solve wall time.", s.EMASolveSeconds)
	draining := 0.0
	if s.Draining {
		draining = 1
	}
	gauge("mgd_draining", "1 while the queue is refusing new work for shutdown.", draining)
}

// jobHeap orders pending jobs by priority (higher first), then admission
// order (earlier first) — strict priority with FIFO fairness inside each
// class.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.idx = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.idx = -1
	*h = old[:n-1]
	return j
}
