package cport

import (
	"math"
	"testing"
	"time"

	"repro/internal/f77"
	"repro/internal/nas"
	"repro/internal/sched"
)

func TestVerifyClassS(t *testing.T) {
	s := New(nas.ClassS)
	rnm2, _ := s.Run()
	if verified, ok := nas.ClassS.Verify(rnm2); !ok || !verified {
		want, _, _ := nas.ClassS.VerifyValue()
		t.Fatalf("class S rnm2 = %.13e, want %.13e", rnm2, want)
	}
}

func TestVerifyClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W skipped in -short")
	}
	s := New(nas.ClassW)
	rnm2, _ := s.Run()
	if verified, ok := nas.ClassW.Verify(rnm2); !ok || !verified {
		want, _, _ := nas.ClassW.VerifyValue()
		t.Fatalf("class W rnm2 = %.13e, want %.13e", rnm2, want)
	}
}

// The C port and the Fortran port execute identical arithmetic (the same
// buffers, the same statement order), so their results are bit-identical.
func TestBitIdenticalToF77(t *testing.T) {
	c := New(nas.ClassS)
	cNorm, _ := c.Run()
	f := f77.New(nas.ClassS)
	fNorm, _ := f.Run()
	if cNorm != fNorm {
		t.Fatalf("cport %.17e != f77 %.17e", cNorm, fNorm)
	}
	if !c.U().Equal(f.U()) {
		t.Fatal("solution grids differ between cport and f77")
	}
}

// OpenMP-style parallel execution changes nothing.
func TestParallelBitIdentical(t *testing.T) {
	serial, _ := New(nas.ClassS).Run()
	for _, workers := range []int{2, 4} {
		pool := sched.NewPool(workers)
		s := NewParallel(nas.ClassS, pool)
		rnm2, _ := s.Run()
		pool.Close()
		if rnm2 != serial {
			t.Fatalf("%d workers: %.17e != serial %.17e", workers, rnm2, serial)
		}
	}
}

func TestDirectiveInventory(t *testing.T) {
	if NumDirectives() != 30 {
		t.Fatalf("NumDirectives = %d, want 30 (the paper's count)", NumDirectives())
	}
	ds := Directives()
	if len(ds) != 30 {
		t.Fatalf("Directives() length %d", len(ds))
	}
	ds[0] = "mutated"
	if Directives()[0] == "mutated" {
		t.Fatal("Directives() exposes internal state")
	}
}

func TestResidualConvergence(t *testing.T) {
	s := New(nas.ClassS)
	s.Reset()
	s.EvalResid()
	prev, _ := s.Norms()
	for it := 0; it < 3; it++ {
		s.MG3P()
		s.EvalResid()
		cur, _ := s.Norms()
		if cur >= prev*0.5 {
			t.Fatalf("iteration %d: poor contraction %g → %g", it, prev, cur)
		}
		prev = cur
	}
}

func TestProbe(t *testing.T) {
	s := New(nas.ClassS)
	total := 0
	s.Probe = func(region string, level int, _ time.Duration) {
		total++
		switch region {
		case "resid", "psinv", "rprj3", "interp":
		default:
			t.Errorf("unexpected region %q", region)
		}
	}
	s.Reset()
	s.EvalResid()
	s.MG3P()
	lt := s.Levels()
	want := 1 + (lt - 1) + lt + (lt - 1) + (lt - 1) // resid+residups, psinvs, rprj3s, interps
	if total != want {
		t.Fatalf("probe count = %d, want %d", total, want)
	}
}

func TestNormsMatchInitialCharge(t *testing.T) {
	s := New(nas.ClassS)
	s.Reset()
	s.EvalResid()
	rnm2, rnmu := s.Norms()
	n := float64(nas.ClassS.N)
	want := math.Sqrt(20.0 / (n * n * n))
	if math.Abs(rnm2-want) > 1e-15 || rnmu != 1 {
		t.Fatalf("initial norms %v/%v, want %v/1", rnm2, rnmu, want)
	}
}

func BenchmarkClassSIteration(b *testing.B) {
	s := New(nas.ClassS)
	s.Reset()
	s.EvalResid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MG3P()
		s.EvalResid()
	}
}
