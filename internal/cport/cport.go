// Package cport models the third contestant of the paper's evaluation: the
// C implementation of NAS-MG that RWCP ported directly from the Fortran-77
// reference and decorated with OpenMP directives (compiled by the Omni
// OpenMP compiler in the paper).
//
// The algorithm and the hand stencil optimization (line buffers, four
// multiplications per element) are exactly those of the Fortran code — the
// paper stresses that "the same stencil optimization is applied" — but the
// port is written the way the C code is written, not the way the Fortran
// compiler sees it:
//
//   - grids are accessed through an index-computing accessor on a grid
//     struct (the C port's 3-D macro indexing), so the address arithmetic
//     is re-derived inside the inner loops instead of being hoisted into
//     per-row base pointers as in internal/f77;
//   - kernel-local buffers live per call, like the C automatic arrays.
//
// The paper observes that the C code is 14–22% slower than Fortran-77 and
// notes "it is unclear at the time being why"; the accessor-style indexing
// here reproduces a gap of that nature (a code-generation difference, not
// an algorithmic one). EXPERIMENTS.md reports the measured counterpart.
//
// Parallelism follows the OpenMP model: explicit directives on every
// parallelizable loop nest. NumDirectives counts the parallel regions of
// the port — the paper reports "a total of 30 manually introduced
// compilation directives" for the original.
package cport

import (
	"time"

	"repro/internal/array"
	"repro/internal/nas"
	"repro/internal/nasrand"
	"repro/internal/sched"
	"repro/internal/stencil"
)

// directives lists every loop nest annotated with a parallel-for directive
// in this port — the Go rendering of the original's 30 OpenMP pragmas
// (parallel regions plus the schedule/private clauses that accompany them
// in the C source; one entry per pragma).
var directives = []string{
	"resid:main", "resid:private-u1", "resid:private-u2", "resid:schedule",
	"psinv:main", "psinv:private-r1", "psinv:private-r2", "psinv:schedule",
	"rprj3:main", "rprj3:private-x1", "rprj3:private-y1", "rprj3:schedule",
	"interp:main", "interp:private-z1", "interp:private-z2", "interp:private-z3",
	"comm3:axis1", "comm3:axis2", "comm3:axis3",
	"zero3:main",
	"zran3:fill", "zran3:reduce-ten",
	"norm2u3:reduce-sum", "norm2u3:reduce-max",
	"mg3P:parallel-region", "resid:parallel-region", "psinv:parallel-region",
	"rprj3:parallel-region", "interp:parallel-region", "main:parallel-region",
}

// NumDirectives is the number of OpenMP-style annotations in the port.
func NumDirectives() int { return len(directives) }

// Directives returns the annotation inventory (for documentation tools).
func Directives() []string { return append([]string(nil), directives...) }

// grid wraps an extended cubic grid with C-macro-style indexing.
type grid struct {
	m int
	d []float64
}

func wrap(a *array.Array) grid { return grid{m: a.Shape()[0], d: a.Data()} }

// at and set recompute the full 3-D address per access, like the C port's
// indexing macro.
func (g grid) at(i3, i2, i1 int) float64     { return g.d[(i3*g.m+i2)*g.m+i1] }
func (g grid) set(i3, i2, i1 int, v float64) { g.d[(i3*g.m+i2)*g.m+i1] = v }
func (g grid) add(i3, i2, i1 int, v float64) { g.d[(i3*g.m+i2)*g.m+i1] += v }

// Solver is the C/OpenMP-style MG implementation. Its public surface
// mirrors internal/f77 so the harness can drive all contestants uniformly.
type Solver struct {
	// Class is the problem size class.
	Class nas.Class
	// Probe, when non-nil, receives per-kernel timings.
	Probe nas.Probe
	// Seed selects the zran3 charge stream; 0 means the official NPB
	// seed (the verification constants apply only to that one).
	Seed uint64

	lt   int
	u, r []*array.Array
	v    *array.Array
	a, c stencil.Coeffs

	pool *sched.Pool // nil: serial (ignore the directives)
}

// New creates a serial solver (OpenMP code compiled without -omp).
func New(class nas.Class) *Solver { return NewParallel(class, nil) }

// NewParallel creates a solver whose directive-annotated loop nests run on
// pool — the OpenMP execution model.
func NewParallel(class nas.Class, pool *sched.Pool) *Solver {
	lt := class.LT()
	s := &Solver{
		Class: class,
		lt:    lt,
		u:     make([]*array.Array, lt+1),
		r:     make([]*array.Array, lt+1),
		a:     stencil.A,
		c:     class.SmootherCoeffs(),
		pool:  pool,
	}
	for k := 1; k <= lt; k++ {
		s.u[k] = array.New(class.ExtShape(k))
		s.r[k] = array.New(class.ExtShape(k))
	}
	s.v = array.New(class.ExtShape(lt))
	return s
}

// Levels returns the number of grid levels.
func (s *Solver) Levels() int { return s.lt }

// U returns the finest-level solution grid.
func (s *Solver) U() *array.Array { return s.u[s.lt] }

// V returns the finest-level right-hand side.
func (s *Solver) V() *array.Array { return s.v }

// R returns the finest-level residual grid.
func (s *Solver) R() *array.Array { return s.r[s.lt] }

// Reset restores the initial benchmark state.
func (s *Solver) Reset() {
	for k := 1; k <= s.lt; k++ {
		s.u[k].Zero()
		s.r[k].Zero()
	}
	seed := s.Seed
	if seed == 0 {
		seed = nasrand.DefaultSeed
	}
	nas.Zran3Seeded(s.v, s.Class.N, seed)
}

func (s *Solver) probe(region string, level int, f func()) {
	if s.Probe == nil {
		f()
		return
	}
	start := time.Now()
	f()
	s.Probe(region, level, time.Since(start))
}

// parallelFor is the "#pragma omp parallel for" of the port: every
// directive-annotated nest runs on the pool when one is configured.
func (s *Solver) parallelFor(n int, body func(lo, hi, worker int)) {
	if s.pool == nil || s.pool.Workers() == 1 {
		body(0, n, 0)
		return
	}
	s.pool.For(n, sched.ForOptions{}, body)
}

// resid: r = v − A·u (C port of the Fortran kernel; same buffers, C-style
// indexing). #pragma omp parallel for private(u1,u2)
func (s *Solver) resid(u, v, r *array.Array) {
	ug, vg, rg := wrap(u), wrap(v), wrap(r)
	m := ug.m
	a0, a2, a3 := s.a[0], s.a[2], s.a[3]
	s.parallelFor(m-2, func(lo, hi, _ int) {
		u1 := make([]float64, m)
		u2 := make([]float64, m)
		for i3 := lo + 1; i3 <= hi; i3++ {
			for i2 := 1; i2 < m-1; i2++ {
				for i1 := 0; i1 < m; i1++ {
					u1[i1] = ug.at(i3, i2-1, i1) + ug.at(i3, i2+1, i1) +
						ug.at(i3-1, i2, i1) + ug.at(i3+1, i2, i1)
					u2[i1] = ug.at(i3-1, i2-1, i1) + ug.at(i3-1, i2+1, i1) +
						ug.at(i3+1, i2-1, i1) + ug.at(i3+1, i2+1, i1)
				}
				for i1 := 1; i1 < m-1; i1++ {
					rg.set(i3, i2, i1, vg.at(i3, i2, i1)-
						a0*ug.at(i3, i2, i1)-
						a2*(u2[i1]+u1[i1-1]+u1[i1+1])-
						a3*(u2[i1-1]+u2[i1+1]))
				}
			}
		}
	})
	s.comm3(r)
}

// psinv: u = u + S·r. #pragma omp parallel for private(r1,r2)
func (s *Solver) psinv(r, u *array.Array) {
	rg, ug := wrap(r), wrap(u)
	m := ug.m
	c0, c1, c2 := s.c[0], s.c[1], s.c[2]
	s.parallelFor(m-2, func(lo, hi, _ int) {
		r1 := make([]float64, m)
		r2 := make([]float64, m)
		for i3 := lo + 1; i3 <= hi; i3++ {
			for i2 := 1; i2 < m-1; i2++ {
				for i1 := 0; i1 < m; i1++ {
					r1[i1] = rg.at(i3, i2-1, i1) + rg.at(i3, i2+1, i1) +
						rg.at(i3-1, i2, i1) + rg.at(i3+1, i2, i1)
					r2[i1] = rg.at(i3-1, i2-1, i1) + rg.at(i3-1, i2+1, i1) +
						rg.at(i3+1, i2-1, i1) + rg.at(i3+1, i2+1, i1)
				}
				for i1 := 1; i1 < m-1; i1++ {
					// Same left-to-right association as the Fortran
					// statement u = u + c0·r + c1·(...) + c2·(...).
					ug.set(i3, i2, i1, ug.at(i3, i2, i1)+
						c0*rg.at(i3, i2, i1)+
						c1*(rg.at(i3, i2, i1-1)+rg.at(i3, i2, i1+1)+r1[i1])+
						c2*(r2[i1]+r1[i1-1]+r1[i1+1]))
				}
			}
		}
	})
	s.comm3(u)
}

// rprj3: coarse = P·fine at even points. #pragma omp parallel for
func (s *Solver) rprj3(rk, rj *array.Array) {
	fine, coarse := wrap(rk), wrap(rj)
	mk, mj := fine.m, coarse.m
	s.parallelFor(mj-2, func(lo, hi, _ int) {
		x1 := make([]float64, mk)
		y1 := make([]float64, mk)
		for j3 := lo + 1; j3 <= hi; j3++ {
			i3 := 2 * j3
			for j2 := 1; j2 < mj-1; j2++ {
				i2 := 2 * j2
				for f := 1; f < mk; f += 2 {
					x1[f] = fine.at(i3, i2-1, f) + fine.at(i3, i2+1, f) +
						fine.at(i3-1, i2, f) + fine.at(i3+1, i2, f)
					y1[f] = fine.at(i3-1, i2-1, f) + fine.at(i3+1, i2-1, f) +
						fine.at(i3-1, i2+1, f) + fine.at(i3+1, i2+1, f)
				}
				for j1 := 1; j1 < mj-1; j1++ {
					f := 2 * j1
					y2 := fine.at(i3-1, i2-1, f) + fine.at(i3+1, i2-1, f) +
						fine.at(i3-1, i2+1, f) + fine.at(i3+1, i2+1, f)
					x2 := fine.at(i3, i2-1, f) + fine.at(i3, i2+1, f) +
						fine.at(i3-1, i2, f) + fine.at(i3+1, i2, f)
					coarse.set(j3, j2, j1, 0.5*fine.at(i3, i2, f)+
						0.25*(fine.at(i3, i2, f-1)+fine.at(i3, i2, f+1)+x2)+
						0.125*(x1[f-1]+x1[f+1]+y2)+
						0.0625*(y1[f-1]+y1[f+1]))
				}
			}
		}
	})
	s.comm3(rj)
}

// interp: fine += trilinear(coarse). #pragma omp parallel for private(z1,z2,z3)
func (s *Solver) interp(z, u *array.Array) {
	zc, uf := wrap(z), wrap(u)
	mm := zc.m
	s.parallelFor(mm-1, func(lo, hi, _ int) {
		z1 := make([]float64, mm)
		z2 := make([]float64, mm)
		z3 := make([]float64, mm)
		for c3 := lo; c3 < hi; c3++ {
			for c2 := 0; c2 < mm-1; c2++ {
				for b := 0; b < mm; b++ {
					z1[b] = zc.at(c3, c2+1, b) + zc.at(c3, c2, b)
					z2[b] = zc.at(c3+1, c2, b) + zc.at(c3, c2, b)
					z3[b] = zc.at(c3+1, c2+1, b) + zc.at(c3+1, c2, b) + z1[b]
				}
				for b := 0; b < mm-1; b++ {
					uf.add(2*c3, 2*c2, 2*b, zc.at(c3, c2, b))
					uf.add(2*c3, 2*c2, 2*b+1, 0.5*(zc.at(c3, c2, b+1)+zc.at(c3, c2, b)))
				}
				for b := 0; b < mm-1; b++ {
					uf.add(2*c3, 2*c2+1, 2*b, 0.5*z1[b])
					uf.add(2*c3, 2*c2+1, 2*b+1, 0.25*(z1[b]+z1[b+1]))
				}
				for b := 0; b < mm-1; b++ {
					uf.add(2*c3+1, 2*c2, 2*b, 0.5*z2[b])
					uf.add(2*c3+1, 2*c2, 2*b+1, 0.25*(z2[b]+z2[b+1]))
				}
				for b := 0; b < mm-1; b++ {
					uf.add(2*c3+1, 2*c2+1, 2*b, 0.25*z3[b])
					uf.add(2*c3+1, 2*c2+1, 2*b+1, 0.125*(z3[b]+z3[b+1]))
				}
			}
		}
	})
}

// comm3 updates the periodic border (serial: the halo planes are tiny).
func (s *Solver) comm3(u *array.Array) { nas.Comm3(u) }

// MG3P performs one V-cycle, structured exactly like the Fortran mg3P.
func (s *Solver) MG3P() {
	lt := s.lt
	for k := lt; k >= 2; k-- {
		s.probe("rprj3", k, func() { s.rprj3(s.r[k], s.r[k-1]) })
	}
	s.u[1].Zero()
	s.probe("psinv", 1, func() { s.psinv(s.r[1], s.u[1]) })
	for k := 2; k <= lt-1; k++ {
		k := k
		s.u[k].Zero()
		s.probe("interp", k, func() { s.interp(s.u[k-1], s.u[k]) })
		s.probe("resid", k, func() { s.resid(s.u[k], s.r[k], s.r[k]) })
		s.probe("psinv", k, func() { s.psinv(s.r[k], s.u[k]) })
	}
	s.probe("interp", lt, func() { s.interp(s.u[lt-1], s.u[lt]) })
	s.probe("resid", lt, func() { s.resid(s.u[lt], s.v, s.r[lt]) })
	s.probe("psinv", lt, func() { s.psinv(s.r[lt], s.u[lt]) })
}

// EvalResid recomputes the finest-level residual.
func (s *Solver) EvalResid() {
	s.probe("resid", s.lt, func() { s.resid(s.u[s.lt], s.v, s.r[s.lt]) })
}

// Norms returns the current residual norms.
func (s *Solver) Norms() (rnm2, rnmu float64) {
	return nas.Norm2u3(s.r[s.lt], s.Class.N)
}

// Run executes the complete timed benchmark section and returns the final
// norms.
func (s *Solver) Run() (rnm2, rnmu float64) {
	s.Reset()
	s.EvalResid()
	for it := 0; it < s.Class.Iter; it++ {
		s.MG3P()
		s.EvalResid()
	}
	return s.Norms()
}
