package periodic

import (
	"math"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/nas"
	"repro/internal/shape"
	wl "repro/internal/withloop"
)

// The future-work variant must pass the official NPB verification, like
// the extended-grid implementations.
func TestVerifyClassS(t *testing.T) {
	b := NewBenchmark(nas.ClassS, wl.Default())
	rnm2, _ := b.Run()
	if verified, ok := nas.ClassS.Verify(rnm2); !ok || !verified {
		want, _, _ := nas.ClassS.VerifyValue()
		t.Fatalf("class S rnm2 = %.13e, want %.13e", rnm2, want)
	}
}

func TestVerifyClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W skipped in -short")
	}
	b := NewBenchmark(nas.ClassW, wl.Default())
	rnm2, _ := b.Run()
	if verified, ok := nas.ClassW.Verify(rnm2); !ok || !verified {
		want, _, _ := nas.ClassW.VerifyValue()
		t.Fatalf("class W rnm2 = %.13e, want %.13e", rnm2, want)
	}
}

// The compact solver corresponds exactly to the extended-grid SAC program:
// the final norms agree to the last bit and the solution grids match the
// extended interior element-wise.
func TestMatchesExtendedImplementation(t *testing.T) {
	ext := core.NewBenchmark(nas.ClassS, wl.Default())
	extNorm, _ := ext.Run()
	cmp := NewBenchmark(nas.ClassS, wl.Default())
	cmpNorm, _ := cmp.Run()
	if cmpNorm != extNorm {
		t.Fatalf("compact rnm2 = %.17e, extended %.17e (not bitwise equal)", cmpNorm, extNorm)
	}
	n := nas.ClassS.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				c := cmp.U().At3(i, j, k)
				e := ext.U().At3(i+1, j+1, k+1)
				if c != e {
					t.Fatalf("u differs at (%d,%d,%d): %.17g vs %.17g", i, j, k, c, e)
				}
			}
		}
	}
}

// ResidSubtract equals the extended pipeline's v − A·u on the interior.
func TestResidSubtractMatchesExtended(t *testing.T) {
	n := 8
	env := wl.Default()
	// Build corresponding compact and extended grids.
	uc := array.New(shape.Of(n, n, n))
	vc := array.New(shape.Of(n, n, n))
	for i := range uc.Data() {
		uc.Data()[i] = math.Sin(float64(i) * 0.37)
		vc.Data()[i] = math.Cos(float64(i) * 0.23)
	}
	ue := array.New(shape.Of(n+2, n+2, n+2))
	ve := array.New(shape.Of(n+2, n+2, n+2))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				ue.Set3(i+1, j+1, k+1, uc.At3(i, j, k))
				ve.Set3(i+1, j+1, k+1, vc.At3(i, j, k))
			}
		}
	}
	s := New(env)
	got := s.ResidSubtract(vc, uc)
	extSolver := core.New(env)
	want := extSolver.Env.NewArray(ue.Shape())
	_ = want
	// Extended: border(u); r = v − A·u via the core pipeline pieces.
	au := extSolver.Resid(ue)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				w := ve.At3(i+1, j+1, k+1) - au.At3(i+1, j+1, k+1)
				if g := got.At3(i, j, k); g != w {
					t.Fatalf("(%d,%d,%d): compact %v, extended %v", i, j, k, g, w)
				}
			}
		}
	}
}

// Mapping geometry: Fine2Coarse halves the extent, Coarse2Fine doubles it.
func TestMappingShapes(t *testing.T) {
	s := New(wl.Default())
	fine := array.New(shape.Of(16, 16, 16))
	coarse := s.Fine2Coarse(fine)
	if !coarse.Shape().Equal(shape.Of(8, 8, 8)) {
		t.Fatalf("Fine2Coarse shape = %v", coarse.Shape())
	}
	back := s.Coarse2Fine(coarse)
	if !back.Shape().Equal(shape.Of(16, 16, 16)) {
		t.Fatalf("Coarse2Fine shape = %v", back.Shape())
	}
}

// Interpolating a constant coarse grid reproduces the constant everywhere.
func TestCoarse2FineConstants(t *testing.T) {
	s := New(wl.Default())
	coarse := array.NewFilled(shape.Of(4, 4, 4), 3.25)
	fine := s.Coarse2Fine(coarse)
	for _, v := range fine.Data() {
		if math.Abs(v-3.25) > 1e-14 {
			t.Fatalf("interpolated constant = %v", v)
		}
	}
}

// The wrapped A stencil annihilates constants on the torus — with NO
// special boundary handling, which is the point of this variant.
func TestOperatorAnnihilatesConstantsEverywhere(t *testing.T) {
	s := New(wl.Default())
	u := array.NewFilled(shape.Of(8, 8, 8), 5.0)
	v := array.New(shape.Of(8, 8, 8))
	r := s.ResidSubtract(v, u)
	for i, x := range r.Data() {
		if math.Abs(x) > 1e-12 {
			t.Fatalf("r[%d] = %v on a constant grid (boundary cells included)", i, x)
		}
	}
}

// Translation invariance on the torus: shifting the input cyclically
// shifts the output — a property the extended-grid version only has on
// the interior, but the compact one has everywhere.
func TestTranslationInvariance(t *testing.T) {
	env := wl.Default()
	s := New(env)
	n := 8
	u := array.New(shape.Of(n, n, n))
	for i := range u.Data() {
		u.Data()[i] = math.Sin(float64(i) * 1.7)
	}
	v := array.New(shape.Of(n, n, n))
	r := s.ResidSubtract(v, u)
	// Shift u by (1, 2, 3) cyclically and recompute.
	shifted := array.New(shape.Of(n, n, n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				shifted.Set3((i+1)%n, (j+2)%n, (k+3)%n, u.At3(i, j, k))
			}
		}
	}
	rs := s.ResidSubtract(v, shifted)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				a := r.At3(i, j, k)
				b := rs.At3((i+1)%n, (j+2)%n, (k+3)%n)
				if math.Abs(a-b) > 1e-13 {
					t.Fatalf("translation invariance broken at (%d,%d,%d): %v vs %v", i, j, k, a, b)
				}
			}
		}
	}
}

// Parallel execution is bit-identical.
func TestParallelBitIdentical(t *testing.T) {
	seq, _ := NewBenchmark(nas.ClassS, wl.Default()).Run()
	env := wl.Parallel(4)
	defer env.Close()
	par, _ := NewBenchmark(nas.ClassS, env).Run()
	if par != seq {
		t.Fatalf("parallel %.17e != sequential %.17e", par, seq)
	}
}

// The smallest grids work: VCycle on a 2³ grid is a single smoothing.
func TestVCycleBaseCase(t *testing.T) {
	s := New(wl.Default())
	r := array.New(shape.Of(2, 2, 2))
	for i := range r.Data() {
		r.Data()[i] = float64(i + 1)
	}
	got := s.VCycle(r)
	want := s.SmoothAdd(nil, r)
	if !got.Equal(want) {
		t.Fatal("base case is not a single smoothing step")
	}
}

func TestChecksPanic(t *testing.T) {
	s := New(wl.Default())
	for name, f := range map[string]func(){
		"rank":       func() { s.MGrid(array.New(shape.Of(4, 4)), 1) },
		"non-cube":   func() { s.MGrid(array.New(shape.Of(4, 4, 8)), 1) },
		"non-pow2":   func() { s.MGrid(array.New(shape.Of(6, 6, 6)), 1) },
		"resid-rank": func() { s.ResidSubtract(array.New(shape.Of(2, 2)), array.New(shape.Of(2, 2))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestProbe(t *testing.T) {
	env := wl.Default()
	b := NewBenchmark(nas.ClassS, env)
	counts := map[string]int{}
	b.Solver.Probe = func(region string, level int, _ time.Duration) {
		counts[region]++
		if level < 1 || level > nas.ClassS.LT() {
			t.Errorf("level %d out of range for region %s", level, region)
		}
	}
	b.Reset()
	u := b.Solver.MGrid(b.V(), 1)
	env.Release(u)
	lt := nas.ClassS.LT()
	if counts["resid"] != lt || counts["smooth"] != lt ||
		counts["fine2coarse"] != lt-1 || counts["coarse2fine"] != lt-1 {
		t.Fatalf("probe counts wrong: %v", counts)
	}
}

// The future-work claim: the compact variant must not be slower than the
// extended one (it saves the border bookkeeping). Compared as a single
// run each to keep the test fast; the precise numbers live in the
// benchmark (BenchmarkFutureWork_* in bench_test.go).
func TestCompactNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	ext := core.NewBenchmark(nas.ClassW, wl.Default())
	ext.Reset()
	start := time.Now()
	ext.Solve()
	extTime := time.Since(start)

	cmp := NewBenchmark(nas.ClassW, wl.Default())
	cmp.Reset()
	start = time.Now()
	cmp.Solve()
	cmpTime := time.Since(start)

	if cmpTime.Seconds() > extTime.Seconds()*1.25 {
		t.Fatalf("compact variant much slower than extended: %v vs %v", cmpTime, extTime)
	}
	t.Logf("extended %v, compact %v (ratio %.2f)", extTime, cmpTime,
		cmpTime.Seconds()/extTime.Seconds())
}

// The compact solver obeys the same release discipline.
func TestReleaseDisciplineParanoid(t *testing.T) {
	env := wl.Default()
	env.Pool.SetParanoid(true)
	b := NewBenchmark(nas.ClassS, env)
	b.Run()
	live1 := env.Pool.Live()
	b.Run()
	if live2 := env.Pool.Live(); live2 > live1 {
		t.Fatalf("live buffers grew between runs: %d -> %d (leak)", live1, live2)
	}
}

// Exercise the full-coefficient path of the wrapped relaxation (the NPB
// stencils all have a zero coefficient; the P operator does not).
func TestRelaxAllCoefficientsNonZero(t *testing.T) {
	env := wl.Default()
	s := New(env)
	s.Smoother = [4]float64{0.5, 0.25, 0.125, 0.0625} // the P weights: none zero
	r := array.New(shape.Of(4, 4, 4))
	for i := range r.Data() {
		r.Data()[i] = float64(i%7) - 3
	}
	out := s.SmoothAdd(nil, r)
	// Constant check: sum of weights × constant.
	c := array.NewFilled(shape.Of(4, 4, 4), 2.0)
	total := 0.5 + 6*0.25 + 12*0.125 + 8*0.0625
	outC := s.SmoothAdd(nil, c)
	for _, v := range outC.Data() {
		if math.Abs(v-2*total) > 1e-13 {
			t.Fatalf("full-coefficient relax on constants = %v, want %v", v, 2*total)
		}
	}
	_ = out
	// And the add/sub merge modes with full coefficients.
	z := array.NewFilled(shape.Of(4, 4, 4), 1.0)
	added := s.SmoothAdd(z, c)
	for _, v := range added.Data() {
		if math.Abs(v-(1+2*total)) > 1e-13 {
			t.Fatalf("full-coefficient SmoothAdd = %v", v)
		}
	}
	s.Operator = s.Smoother
	sub := s.ResidSubtract(z, c)
	for _, v := range sub.Data() {
		if math.Abs(v-(1-2*total)) > 1e-13 {
			t.Fatalf("full-coefficient ResidSubtract = %v", v)
		}
	}
}

// Executable-specification cross-check: the optimized compact solver must
// match the deliberately naive oracle written straight from the paper's
// Fig. 2 (nas.Oracle*), up to floating-point reassociation.
func TestMatchesOracleSpecification(t *testing.T) {
	env := wl.Default()
	s := New(env)
	n := 8
	u := array.New(shape.Of(n, n, n))
	v := array.New(shape.Of(n, n, n))
	for i := range u.Data() {
		u.Data()[i] = math.Sin(float64(i) * 0.41)
		v.Data()[i] = math.Cos(float64(i) * 0.29)
	}

	// v − A·u.
	au := nas.OracleStencil(u, [4]float64(s.Operator))
	want := array.New(u.Shape())
	for i := range want.Data() {
		want.Data()[i] = v.Data()[i] - au.Data()[i]
	}
	got := s.ResidSubtract(v, u)
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("ResidSubtract diverges from the oracle (max diff %g)", got.MaxAbsDiff(want))
	}

	// Restriction and prolongation.
	if fc := s.Fine2Coarse(u); !fc.ApproxEqual(nas.OracleRestrict(u), 1e-12) {
		t.Fatal("Fine2Coarse diverges from the oracle")
	}
	zc := array.New(shape.Of(n/2, n/2, n/2))
	for i := range zc.Data() {
		zc.Data()[i] = math.Sin(float64(i) * 1.3)
	}
	if cf := s.Coarse2Fine(zc); !cf.ApproxEqual(nas.OracleInterp(zc), 1e-12) {
		t.Fatal("Coarse2Fine diverges from the oracle")
	}

	// The whole V-cycle.
	r := s.ResidSubtract(v, u)
	gotZ := s.VCycle(r)
	wantZ := nas.OracleVCycle(r, [4]float64(s.Operator), [4]float64(s.Smoother))
	if !gotZ.ApproxEqual(wantZ, 1e-11) {
		t.Fatalf("VCycle diverges from the oracle (max diff %g)", gotZ.MaxAbsDiff(wantZ))
	}
}
