// Package periodic implements the paper's first item of future work (§7):
//
//	"A direct implementation of relaxation with periodic boundary
//	conditions that makes artificial boundary elements obsolete is most
//	desirable. On the one hand, it saves the overhead associated with
//	updating these additional elements. On the other hand, it allows for
//	a benchmark implementation that is even closer to the mathematical
//	specification as the existing one."
//
// Grids here are compact: a problem of interior size n³ lives in an n³
// array, and the stencil kernels wrap their neighbour accesses around the
// torus instead of reading replicated boundary planes. There is no
// SetupPeriodicBorder, no condense/embed adjustment and no take trimming —
// the V-cycle operations map between n³ and (n/2)³ directly, exactly as in
// the paper's mathematical specification (Fig. 2).
//
// # Correspondence with the extended-grid implementation
//
// A compact grid g corresponds to the interior of an extended grid G via
// g[i] = G[i+1]. Because the artificial boundary elements of G are exact
// copies of interior values, every wrapped neighbour read here returns the
// same float64 the extended kernels read from a boundary plane, and the
// kernels fold neighbour sums in the canonical line-buffer-compatible
// association of internal/stencil, exactly like internal/core's folded
// kernels. Consequently the two implementations are bit-identical
// (asserted by tests), and this one also passes the official NPB
// verification.
//
// Note the index shift between the hierarchies: extended coarse interior
// point jc sits under extended fine point 2·jc, so in compact coordinates
// coarse point c lies under fine point 2·c+1 — the coarse anchors are the
// odd compact positions.
package periodic

import (
	"fmt"
	"math"
	"time"

	"repro/internal/array"
	"repro/internal/nas"
	"repro/internal/shape"
	"repro/internal/stencil"
	wl "repro/internal/withloop"
)

// Solver is the border-free MG solver. Rank-3 compact grids only (this is
// the specialised future-work variant; the rank-generic solver is
// internal/core).
type Solver struct {
	// Env supplies scheduling and the memory pool. The optimization level
	// is ignored: this package is by construction the fully folded form.
	Env *wl.Env
	// Smoother, Operator, Project and Interp are the stencil coefficient
	// sets, defaulting to the NPB vectors.
	Smoother, Operator, Project, Interp stencil.Coeffs
	// Probe, when non-nil, receives per-operation timings.
	Probe nas.Probe
}

// New creates a solver with the NPB stencils and the S/W/A smoother.
func New(env *wl.Env) *Solver {
	return &Solver{
		Env:      env,
		Smoother: stencil.SClassSWA,
		Operator: stencil.A,
		Project:  stencil.P,
		Interp:   stencil.Q,
	}
}

func (s *Solver) probe(region string, level int, f func() *array.Array) *array.Array {
	if s.Probe == nil {
		return f()
	}
	start := time.Now()
	out := f()
	s.Probe(region, level, time.Since(start))
	return out
}

func levelOf(a *array.Array) int {
	n := a.Shape()[0]
	l := 0
	for ; n > 1; n >>= 1 {
		l++
	}
	return l
}

func checkCompact(op string, a *array.Array) int {
	shp := a.Shape()
	if shp.Rank() != 3 || shp[0] != shp[1] || shp[0] != shp[2] {
		panic(fmt.Sprintf("periodic: %s requires a cubic rank-3 grid, got %v", op, shp))
	}
	n := shp[0]
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("periodic: %s requires a power-of-two extent, got %d", op, n))
	}
	return n
}

// MGrid is the paper's Fig. 4 driver on compact grids:
//
//	u = 0;  iter × { r = v − A·u;  u = u + VCycle(r) }
func (s *Solver) MGrid(v *array.Array, iter int) *array.Array {
	checkCompact("MGrid", v)
	e := s.Env
	u := e.NewArray(v.Shape())
	for i := 0; i < iter; i++ {
		r := s.ResidSubtract(v, u)
		z := s.VCycle(r)
		e.Release(r)
		u2 := s.add(u, z)
		e.Release(z)
		e.Release(u)
		u = u2
	}
	return u
}

// VCycle recurses down to the 2³ grid, exactly like Fig. 4 — but the
// termination condition reads shape > 2, not 2+2: no artificial borders.
func (s *Solver) VCycle(r *array.Array) *array.Array {
	e := s.Env
	if r.Shape()[0] > 2 {
		rn := s.Fine2Coarse(r)
		zn := s.VCycle(rn)
		e.Release(rn)
		z := s.Coarse2Fine(zn)
		e.Release(zn)
		r2 := s.ResidSubtract(r, z)
		z2 := s.SmoothAdd(z, r2)
		e.Release(r2)
		e.Release(z)
		return z2
	}
	return s.SmoothAdd(nil, r)
}

// add returns u + z element-wise (the MGrid correction step).
func (s *Solver) add(u, z *array.Array) *array.Array {
	out := s.Env.NewArrayDirty(u.Shape())
	od, ud, zd := out.Data(), u.Data(), z.Data()
	for i := range od {
		od[i] = ud[i] + zd[i]
	}
	return out
}

// ResidSubtract computes v − A·u with wrapped neighbour accesses —
// the Resid of Fig. 6 fused with the subtraction, without any border
// preparation.
func (s *Solver) ResidSubtract(v, u *array.Array) *array.Array {
	checkCompact("ResidSubtract", u)
	return s.probe("resid", levelOf(u), func() *array.Array {
		out := s.Env.NewArrayDirty(u.Shape())
		relaxInto(s.Env, out, u, s.Operator, mergeSub, v.Data())
		return out
	})
}

// SmoothAdd computes z + S·r (or just S·r when z is nil — the coarsest
// level of Fig. 4, z = Smooth(r)).
func (s *Solver) SmoothAdd(z, r *array.Array) *array.Array {
	checkCompact("SmoothAdd", r)
	return s.probe("smooth", levelOf(r), func() *array.Array {
		out := s.Env.NewArrayDirty(r.Shape())
		if z == nil {
			relaxInto(s.Env, out, r, s.Smoother, mergeSet, nil)
		} else {
			relaxInto(s.Env, out, r, s.Smoother, mergeAdd, z.Data())
		}
		return out
	})
}

// merge modes for relaxInto: out = stencil, aux − stencil, aux + stencil.
const (
	mergeSet = iota
	mergeSub
	mergeAdd
)

// relaxInto evaluates the 27-point stencil with torus wrap-around at every
// point of u, merging each value with aux according to mode. Neighbour
// sums fold in the canonical association of internal/stencil, matching
// internal/core's folded kernels bit for bit.
func relaxInto(e *wl.Env, out, u *array.Array, c stencil.Coeffs, mode int, aux []float64) {
	n := u.Shape()[0]
	ud, od := u.Data(), out.Data()
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	opts := e.ForOpt
	if per := n * n; per > 0 {
		opts.SeqThreshold = max(opts.SeqThreshold, e.SeqThreshold) / per
	}
	e.Sched.For(n, opts, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			im, ip := (i-1+n)%n, (i+1)%n
			for j := 0; j < n; j++ {
				jm, jp := (j-1+n)%n, (j+1)%n
				mm := (im*n + jm) * n
				mz := (im*n + j) * n
				mp := (im*n + jp) * n
				zm := (i*n + jm) * n
				zz := (i*n + j) * n
				zp := (i*n + jp) * n
				pm := (ip*n + jm) * n
				pz := (ip*n + j) * n
				pp := (ip*n + jp) * n
				uMM, uMZ, uMP := ud[mm:mm+n], ud[mz:mz+n], ud[mp:mp+n]
				uZM, uZZ, uZP := ud[zm:zm+n], ud[zz:zz+n], ud[zp:zp+n]
				uPM, uPZ, uPP := ud[pm:pm+n], ud[pz:pz+n], ud[pp:pp+n]
				oZZ := od[zz : zz+n]
				stencilAt := func(k, km, kp int) float64 {
					u1m := ((uMZ[km] + uZM[km]) + uZP[km]) + uPZ[km]
					u1z := ((uMZ[k] + uZM[k]) + uZP[k]) + uPZ[k]
					u1p := ((uMZ[kp] + uZM[kp]) + uZP[kp]) + uPZ[kp]
					u2m := ((uMM[km] + uMP[km]) + uPM[km]) + uPP[km]
					u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
					u2p := ((uMM[kp] + uMP[kp]) + uPM[kp]) + uPP[kp]
					s1 := (uZZ[km] + uZZ[kp]) + u1z
					s2 := (u2z + u1m) + u1p
					s3 := u2m + u2p
					return ((c0*uZZ[k] + c1*s1) + c2*s2) + c3*s3
				}
				merge := func(k int, val float64) {
					switch mode {
					case mergeSub:
						val = aux[zz+k] - val
					case mergeAdd:
						val = aux[zz+k] + val
					}
					oZZ[k] = val
				}
				// Wrapped edge columns, then the dense interior where the
				// compiler can drop the bounds checks (the stencil body is
				// inlined by hand in each mode's loop; stencilAt serves the
				// two wrapped columns only).
				// Wrapped edge columns, then the dense interior where the
				// compiler can drop the bounds checks. The dense loops are
				// hand-inlined per merge mode and specialised on the zero
				// coefficients exactly like the extended-grid kernels (the
				// eliminated terms are exact zeros, so the values are
				// unchanged); stencilAt serves the two wrapped columns.
				merge(0, stencilAt(0, n-1, 1))
				switch mode {
				case mergeSub:
					vZZ := aux[zz : zz+n]
					switch {
					case c1 == 0:
						for k := 1; k < n-1; k++ {
							u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
							u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
							u2m := ((uMM[k-1] + uMP[k-1]) + uPM[k-1]) + uPP[k-1]
							u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
							u2p := ((uMM[k+1] + uMP[k+1]) + uPM[k+1]) + uPP[k+1]
							s2 := (u2z + u1m) + u1p
							s3 := u2m + u2p
							val := (c0*uZZ[k] + c2*s2) + c3*s3
							oZZ[k] = vZZ[k] - val
						}
					case c3 == 0:
						for k := 1; k < n-1; k++ {
							u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
							u1z := ((uMZ[k] + uZM[k]) + uZP[k]) + uPZ[k]
							u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
							u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
							s1 := (uZZ[k-1] + uZZ[k+1]) + u1z
							s2 := (u2z + u1m) + u1p
							val := (c0*uZZ[k] + c1*s1) + c2*s2
							oZZ[k] = vZZ[k] - val
						}
					default:
						for k := 1; k < n-1; k++ {
							u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
							u1z := ((uMZ[k] + uZM[k]) + uZP[k]) + uPZ[k]
							u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
							u2m := ((uMM[k-1] + uMP[k-1]) + uPM[k-1]) + uPP[k-1]
							u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
							u2p := ((uMM[k+1] + uMP[k+1]) + uPM[k+1]) + uPP[k+1]
							s1 := (uZZ[k-1] + uZZ[k+1]) + u1z
							s2 := (u2z + u1m) + u1p
							s3 := u2m + u2p
							val := ((c0*uZZ[k] + c1*s1) + c2*s2) + c3*s3
							oZZ[k] = vZZ[k] - val
						}
					}
				case mergeAdd:
					zZZ := aux[zz : zz+n]
					switch {
					case c1 == 0:
						for k := 1; k < n-1; k++ {
							u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
							u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
							u2m := ((uMM[k-1] + uMP[k-1]) + uPM[k-1]) + uPP[k-1]
							u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
							u2p := ((uMM[k+1] + uMP[k+1]) + uPM[k+1]) + uPP[k+1]
							s2 := (u2z + u1m) + u1p
							s3 := u2m + u2p
							val := (c0*uZZ[k] + c2*s2) + c3*s3
							oZZ[k] = zZZ[k] + val
						}
					case c3 == 0:
						for k := 1; k < n-1; k++ {
							u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
							u1z := ((uMZ[k] + uZM[k]) + uZP[k]) + uPZ[k]
							u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
							u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
							s1 := (uZZ[k-1] + uZZ[k+1]) + u1z
							s2 := (u2z + u1m) + u1p
							val := (c0*uZZ[k] + c1*s1) + c2*s2
							oZZ[k] = zZZ[k] + val
						}
					default:
						for k := 1; k < n-1; k++ {
							u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
							u1z := ((uMZ[k] + uZM[k]) + uZP[k]) + uPZ[k]
							u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
							u2m := ((uMM[k-1] + uMP[k-1]) + uPM[k-1]) + uPP[k-1]
							u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
							u2p := ((uMM[k+1] + uMP[k+1]) + uPM[k+1]) + uPP[k+1]
							s1 := (uZZ[k-1] + uZZ[k+1]) + u1z
							s2 := (u2z + u1m) + u1p
							s3 := u2m + u2p
							val := ((c0*uZZ[k] + c1*s1) + c2*s2) + c3*s3
							oZZ[k] = zZZ[k] + val
						}
					}
				default:
					switch {
					case c1 == 0:
						for k := 1; k < n-1; k++ {
							u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
							u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
							u2m := ((uMM[k-1] + uMP[k-1]) + uPM[k-1]) + uPP[k-1]
							u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
							u2p := ((uMM[k+1] + uMP[k+1]) + uPM[k+1]) + uPP[k+1]
							s2 := (u2z + u1m) + u1p
							s3 := u2m + u2p
							val := (c0*uZZ[k] + c2*s2) + c3*s3
							oZZ[k] = val
						}
					case c3 == 0:
						for k := 1; k < n-1; k++ {
							u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
							u1z := ((uMZ[k] + uZM[k]) + uZP[k]) + uPZ[k]
							u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
							u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
							s1 := (uZZ[k-1] + uZZ[k+1]) + u1z
							s2 := (u2z + u1m) + u1p
							val := (c0*uZZ[k] + c1*s1) + c2*s2
							oZZ[k] = val
						}
					default:
						for k := 1; k < n-1; k++ {
							u1m := ((uMZ[k-1] + uZM[k-1]) + uZP[k-1]) + uPZ[k-1]
							u1z := ((uMZ[k] + uZM[k]) + uZP[k]) + uPZ[k]
							u1p := ((uMZ[k+1] + uZM[k+1]) + uZP[k+1]) + uPZ[k+1]
							u2m := ((uMM[k-1] + uMP[k-1]) + uPM[k-1]) + uPP[k-1]
							u2z := ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]
							u2p := ((uMM[k+1] + uMP[k+1]) + uPM[k+1]) + uPP[k+1]
							s1 := (uZZ[k-1] + uZZ[k+1]) + u1z
							s2 := (u2z + u1m) + u1p
							s3 := u2m + u2p
							val := ((c0*uZZ[k] + c1*s1) + c2*s2) + c3*s3
							oZZ[k] = val
						}
					}
				}
				merge(n-1, stencilAt(n-1, n-2, 0))
			}
		}
	})
}

// Fine2Coarse restricts r (n³) to the next coarser grid ((n/2)³): the P
// stencil evaluated at the odd compact positions (the coarse anchors; see
// the package comment on the index shift).
func (s *Solver) Fine2Coarse(r *array.Array) *array.Array {
	n := checkCompact("Fine2Coarse", r)
	return s.probe("fine2coarse", levelOf(r), func() *array.Array {
		e := s.Env
		nc := n / 2
		out := e.NewArrayDirty(shape.Of(nc, nc, nc))
		od, rd := out.Data(), r.Data()
		c0, c1, c2, c3 := s.Project[0], s.Project[1], s.Project[2], s.Project[3]
		opts := e.ForOpt
		if per := nc * nc; per > 0 {
			opts.SeqThreshold = max(opts.SeqThreshold, e.SeqThreshold) / per
		}
		e.Sched.For(nc, opts, func(lo, hi, _ int) {
			for ci := lo; ci < hi; ci++ {
				i := 2*ci + 1
				im, ip := i-1, (i+1)%n
				for cj := 0; cj < nc; cj++ {
					j := 2*cj + 1
					jm, jp := j-1, (j+1)%n
					mm := (im*n + jm) * n
					mz := (im*n + j) * n
					mp := (im*n + jp) * n
					zm := (i*n + jm) * n
					zz := (i*n + j) * n
					zp := (i*n + jp) * n
					pm := (ip*n + jm) * n
					pz := (ip*n + j) * n
					pp := (ip*n + jp) * n
					base := (ci*nc + cj) * nc
					for ck := 0; ck < nc; ck++ {
						k := 2*ck + 1
						km, kp := k-1, (k+1)%n
						u1m := ((rd[mz+km] + rd[zm+km]) + rd[zp+km]) + rd[pz+km]
						u1z := ((rd[mz+k] + rd[zm+k]) + rd[zp+k]) + rd[pz+k]
						u1p := ((rd[mz+kp] + rd[zm+kp]) + rd[zp+kp]) + rd[pz+kp]
						u2m := ((rd[mm+km] + rd[mp+km]) + rd[pm+km]) + rd[pp+km]
						u2z := ((rd[mm+k] + rd[mp+k]) + rd[pm+k]) + rd[pp+k]
						u2p := ((rd[mm+kp] + rd[mp+kp]) + rd[pm+kp]) + rd[pp+kp]
						s1 := (rd[zz+km] + rd[zz+kp]) + u1z
						s2 := (u2z + u1m) + u1p
						s3 := u2m + u2p
						od[base+ck] = ((c0*rd[zz+k] + c1*s1) + c2*s2) + c3*s3
					}
				}
			}
		})
		return out
	})
}

// Coarse2Fine interpolates zn ((n/2)³) to the next finer grid (n³):
// trilinear interpolation with the coarse anchors at odd fine positions.
// A fine point with parity bit 1 on an axis lies on a coarse anchor plane
// of that axis; parity 0 lies between two anchors and averages them.
func (s *Solver) Coarse2Fine(zn *array.Array) *array.Array {
	nc := checkCompact("Coarse2Fine", zn)
	return s.probe("coarse2fine", levelOf(zn)+1, func() *array.Array {
		e := s.Env
		n := 2 * nc
		out := e.NewArrayDirty(shape.Of(n, n, n))
		od, zd := out.Data(), zn.Data()
		c0, c1, c2, c3 := s.Interp[0], s.Interp[1], s.Interp[2], s.Interp[3]
		opts := e.ForOpt
		if per := n * n; per > 0 {
			opts.SeqThreshold = max(opts.SeqThreshold, e.SeqThreshold) / per
		}
		e.Sched.For(n, opts, func(lo, hi, _ int) {
			for f3 := lo; f3 < hi; f3++ {
				// On-anchor when f is odd: coarse index (f-1)/2. Between
				// anchors when even: coarse (f/2-1 mod nc) and f/2.
				a3 := f3&1 == 1
				l3, h3 := ((f3/2-1)+nc)%nc, f3/2
				if a3 {
					l3, h3 = (f3-1)/2, (f3-1)/2
				}
				for f2 := 0; f2 < n; f2++ {
					a2 := f2&1 == 1
					l2, h2 := ((f2/2-1)+nc)%nc, f2/2
					if a2 {
						l2, h2 = (f2-1)/2, (f2-1)/2
					}
					base := (f3*n + f2) * n
					bll := (l3*nc + l2) * nc
					blh := (l3*nc + h2) * nc
					bhl := (h3*nc + l2) * nc
					bhh := (h3*nc + h2) * nc
					for f1 := 0; f1 < n; f1++ {
						a1 := f1&1 == 1
						l1, h1 := ((f1/2-1)+nc)%nc, f1/2
						if a1 {
							l1, h1 = (f1-1)/2, (f1-1)/2
						}
						var val float64
						switch {
						case a3 && a2 && a1:
							val = c0 * zd[bll+l1]
						case a3 && a2 && !a1:
							val = c1 * (zd[bll+l1] + zd[bll+h1])
						case a3 && !a2 && a1:
							val = c1 * (zd[bll+l1] + zd[blh+l1])
						case !a3 && a2 && a1:
							val = c1 * (zd[bll+l1] + zd[bhl+l1])
						case a3 && !a2 && !a1:
							val = c2 * ((zd[bll+l1] + zd[blh+l1]) + (zd[bll+h1] + zd[blh+h1]))
						case !a3 && a2 && !a1:
							val = c2 * ((zd[bll+l1] + zd[bhl+l1]) + (zd[bll+h1] + zd[bhl+h1]))
						case !a3 && !a2 && a1:
							val = c2 * (((zd[bll+l1] + zd[blh+l1]) + zd[bhl+l1]) + zd[bhh+l1])
						default:
							val = c3 * ((((zd[bll+l1] + zd[blh+l1]) + zd[bhl+l1]) + zd[bhh+l1]) +
								(((zd[bll+h1] + zd[blh+h1]) + zd[bhl+h1]) + zd[bhh+h1]))
						}
						od[base+f1] = val
					}
				}
			}
		})
		return out
	})
}

// --- NAS benchmark driver --------------------------------------------------------

// Benchmark runs the NPB MG benchmark on compact grids.
type Benchmark struct {
	Class  nas.Class
	Solver *Solver
	v, u   *array.Array
}

// NewBenchmark creates a compact-grid benchmark instance.
func NewBenchmark(class nas.Class, env *wl.Env) *Benchmark {
	s := New(env)
	s.Smoother = class.SmootherCoeffs()
	return &Benchmark{Class: class, Solver: s}
}

// Reset builds the zran3 right-hand side, compacted from the extended
// form so the charges are placed identically to the other implementations.
func (b *Benchmark) Reset() {
	e := b.Solver.Env
	n := b.Class.N
	ext := array.New(b.Class.ExtShape(b.Class.LT()))
	nas.Zran3(ext, n)
	if b.v == nil {
		b.v = e.NewArray(shape.Of(n, n, n))
	}
	vd, ed := b.v.Data(), ext.Data()
	m := n + 2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			copy(vd[(i*n+j)*n:(i*n+j)*n+n], ed[((i+1)*m+j+1)*m+1:((i+1)*m+j+1)*m+1+n])
		}
	}
	if b.u != nil {
		e.Release(b.u)
		b.u = nil
	}
}

// Solve executes the timed section and returns the NPB norms.
func (b *Benchmark) Solve() (rnm2, rnmu float64) {
	e := b.Solver.Env
	if b.u != nil {
		e.Release(b.u)
	}
	b.u = b.Solver.MGrid(b.v, b.Class.Iter)
	r := b.Solver.ResidSubtract(b.v, b.u)
	rnm2, rnmu = norms(r)
	e.Release(r)
	return rnm2, rnmu
}

// Run executes Reset followed by Solve.
func (b *Benchmark) Run() (rnm2, rnmu float64) {
	b.Reset()
	return b.Solve()
}

// U returns the compact solution grid of the last Solve.
func (b *Benchmark) U() *array.Array { return b.u }

// V returns the compact right-hand side.
func (b *Benchmark) V() *array.Array { return b.v }

// norms computes the NPB norms over a compact grid (every element is
// interior). The sum of squares folds in the canonical row→plane order of
// nas.Norm2u3Planes so that the compact result stays bit-identical to the
// extended-grid core path, whose fused resid+norm kernel accumulates in
// exactly that association.
func norms(r *array.Array) (rnm2, rnmu float64) {
	shp := r.Shape()
	n0, n1, n2 := shp[0], shp[1], shp[2]
	d := r.Data()
	sum, maxAbs := 0.0, 0.0
	for i := 0; i < n0; i++ {
		var planeSum float64
		for j := 0; j < n1; j++ {
			base := (i*n1 + j) * n2
			var rowSum float64
			for _, v := range d[base : base+n2] {
				rowSum += v * v
				a := v
				if a < 0 {
					a = -a
				}
				if a > maxAbs {
					maxAbs = a
				}
			}
			planeSum += rowSum
		}
		sum += planeSum
	}
	n := float64(r.Size())
	return math.Sqrt(sum / n), maxAbs
}
