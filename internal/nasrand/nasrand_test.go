package nasrand

import (
	"testing"
	"testing/quick"
)

func TestFirstValuesMatchRecurrence(t *testing.T) {
	r := Default()
	x := DefaultSeed
	for i := 0; i < 100; i++ {
		x = (x * Mult) & (1<<46 - 1)
		want := float64(x) / (1 << 46)
		if got := r.Next(); got != want {
			t.Fatalf("value %d = %v, want %v", i, got, want)
		}
	}
}

func TestValuesInOpenUnitInterval(t *testing.T) {
	r := Default()
	for i := 0; i < 10000; i++ {
		v := r.Next()
		if v <= 0 || v >= 1 {
			t.Fatalf("value %d = %v outside (0,1)", i, v)
		}
	}
}

func TestMultIs5To13(t *testing.T) {
	m := uint64(1)
	for i := 0; i < 13; i++ {
		m *= 5
	}
	if m != Mult {
		t.Fatalf("Mult = %d, want 5^13 = %d", Mult, m)
	}
}

func TestFillMatchesNext(t *testing.T) {
	a := Default()
	b := Default()
	buf := make([]float64, 257)
	a.Fill(buf)
	for i, v := range buf {
		if w := b.Next(); v != w {
			t.Fatalf("Fill[%d] = %v, Next = %v", i, v, w)
		}
	}
	if a.State() != b.State() {
		t.Fatal("Fill and Next leave different states")
	}
}

func TestSkipMatchesNext(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 7, 100, 12345} {
		a := Default()
		b := Default()
		a.Skip(n)
		for i := uint64(0); i < n; i++ {
			b.Next()
		}
		if a.State() != b.State() {
			t.Fatalf("Skip(%d) state %d != Next^%d state %d", n, a.State(), n, b.State())
		}
	}
}

func TestPowModBasics(t *testing.T) {
	if PowMod(Mult, 0) != 1 {
		t.Error("a^0 != 1")
	}
	if PowMod(Mult, 1) != Mult {
		t.Error("a^1 != a")
	}
	if got, want := PowMod(Mult, 2), (Mult*Mult)&(1<<46-1); got != want {
		t.Errorf("a^2 = %d, want %d", got, want)
	}
}

// Property: PowMod is a homomorphism — a^(m+n) == a^m · a^n mod 2^46.
func TestPowModHomomorphismQuick(t *testing.T) {
	f := func(m, n uint16) bool {
		lhs := PowMod(Mult, uint64(m)+uint64(n))
		rhs := (PowMod(Mult, uint64(m)) * PowMod(Mult, uint64(n))) & (1<<46 - 1)
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two streams that split at a power offset interleave exactly —
// the structure zran3 relies on for per-row seeds.
func TestStreamSplittingQuick(t *testing.T) {
	f := func(rows uint8, rowLenRaw uint8) bool {
		rowLen := uint64(rowLenRaw%32) + 1
		aRow := PowMod(Mult, rowLen)
		seq := Default()
		split := Default()
		for row := 0; row < int(rows%16)+1; row++ {
			rowStart := New(split.State())
			buf := make([]float64, rowLen)
			rowStart.Fill(buf)
			for _, v := range buf {
				if v != seq.Next() {
					return false
				}
			}
			split.NextWith(aRow) // jump the split stream one row ahead
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSetStateMasks(t *testing.T) {
	r := New(0)
	r.SetState(1<<63 | 5)
	if r.State() != 5 {
		t.Fatalf("SetState did not mask: %d", r.State())
	}
	if s := New(1<<50 | 3).State(); s != (1<<50|3)&(1<<46-1) {
		t.Fatalf("New did not mask: %d", s)
	}
}

func TestMeanIsApproximatelyHalf(t *testing.T) {
	r := Default()
	const n = 1 << 16
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Next()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of %d values = %v, want ≈0.5", n, mean)
	}
}

func BenchmarkNext(b *testing.B) {
	r := Default()
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.Next()
	}
	_ = s
}

func BenchmarkFill1K(b *testing.B) {
	r := Default()
	buf := make([]float64, 1024)
	b.SetBytes(1024 * 8)
	for i := 0; i < b.N; i++ {
		r.Fill(buf)
	}
}
