package nasrand

import "testing"

// FuzzSkipEquivalence: Skip(n) must equal n sequential steps for fuzzed
// seeds and counts, and PowMod must stay a homomorphism.
func FuzzSkipEquivalence(f *testing.F) {
	f.Add(uint64(314159265), uint16(100))
	f.Add(uint64(1), uint16(1))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16) {
		n := uint64(nRaw % 512)
		a := New(seed)
		b := New(seed)
		a.Skip(n)
		for i := uint64(0); i < n; i++ {
			b.Next()
		}
		if a.State() != b.State() {
			t.Fatalf("Skip(%d) diverges for seed %d", n, seed)
		}
		lhs := PowMod(Mult, n+7)
		rhs := (PowMod(Mult, n) * PowMod(Mult, 7)) & (1<<46 - 1)
		if lhs != rhs {
			t.Fatalf("PowMod homomorphism broken at n=%d", n)
		}
	})
}
