// Package nasrand implements the NAS Parallel Benchmarks pseudorandom
// number generator (randlc / vranlc from the NPB specification): the linear
// congruential sequence
//
//	x_{k+1} = a · x_k  mod 2^46,     r_k = x_k · 2^-46
//
// with multiplier a = 5^13 and default seed 314159265. The generator has
// period 2^44 and produces uniform doubles in (0, 1). MG uses it in zran3
// to build the initial charge distribution, so bit-exact agreement with the
// Fortran original matters: the positions of the +1/−1 charges — and hence
// the official verification norms — depend on every bit of every value.
//
// The Fortran implementation emulates 46-bit integer arithmetic with pairs
// of doubles; here the recurrence is computed directly in 64-bit integers,
// which is exactly equivalent because 2^46 divides 2^64: the low 46 bits of
// the wrapped 64-bit product equal the full product mod 2^46.
package nasrand

// Generator constants from the NPB specification.
const (
	// Mult is the LCG multiplier a = 5^13.
	Mult uint64 = 1220703125
	// DefaultSeed is the seed every NPB benchmark starts from.
	DefaultSeed uint64 = 314159265
	// modMask reduces modulo 2^46.
	modMask uint64 = 1<<46 - 1
	// scale converts a 46-bit state to a double in (0,1).
	scale = 1.0 / (1 << 46)
)

// Rand is a NAS LCG stream. The zero value is invalid; use New.
type Rand struct {
	x uint64
}

// New returns a stream seeded with the given 46-bit state. Seeds are taken
// modulo 2^46. New(0) would produce the all-zero fixed point, so the NPB
// seeds are always odd; the constructor does not reject 0 because PowMod
// composition can legitimately pass through any state the caller computed.
func New(seed uint64) *Rand { return &Rand{x: seed & modMask} }

// Default returns a stream with the NPB default seed.
func Default() *Rand { return New(DefaultSeed) }

// State returns the current 46-bit state x_k.
func (r *Rand) State() uint64 { return r.x }

// SetState replaces the state (modulo 2^46).
func (r *Rand) SetState(x uint64) { r.x = x & modMask }

// Next advances the stream once and returns the new value scaled to (0,1)
// — NPB's randlc(x, a) with the default multiplier.
func (r *Rand) Next() float64 {
	r.x = (r.x * Mult) & modMask
	return float64(r.x) * scale
}

// NextWith advances the stream once using the multiplier a mod 2^46 —
// the general randlc(x, a). NPB uses this to jump streams by precomputed
// powers of the base multiplier.
func (r *Rand) NextWith(a uint64) float64 {
	r.x = (r.x * a) & modMask
	return float64(r.x) * scale
}

// Fill writes len(dst) consecutive values into dst — NPB's
// vranlc(n, x, a, y) with the default multiplier.
func (r *Rand) Fill(dst []float64) {
	x := r.x
	for i := range dst {
		x = (x * Mult) & modMask
		dst[i] = float64(x) * scale
	}
	r.x = x
}

// Skip advances the stream by n steps in O(log n) using
// x ← x · a^n mod 2^46. It matches n calls of Next exactly.
func (r *Rand) Skip(n uint64) {
	r.x = (r.x * PowMod(Mult, n)) & modMask
}

// PowMod computes a^n mod 2^46 by binary exponentiation — NPB's power
// function, used to compute the per-row and per-plane stream offsets of
// zran3.
func PowMod(a uint64, n uint64) uint64 {
	result := uint64(1)
	base := a & modMask
	for n > 0 {
		if n&1 == 1 {
			result = (result * base) & modMask
		}
		base = (base * base) & modMask
		n >>= 1
	}
	return result
}
