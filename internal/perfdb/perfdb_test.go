package perfdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/perfstat"
)

// fixtureSnapshot builds a small two-kernel snapshot; scale multiplies
// every sample of the named kernel (1.0 elsewhere), modelling an
// injected slowdown in exactly one (kernel, level) row.
func fixtureSnapshot(slowKernel string, slowLevel int, scale float64) *Snapshot {
	base := []float64{1.00, 1.01, 0.99, 1.02, 0.98, 1.00, 1.01, 0.99, 1.00, 1.02}
	mk := func(key Key, unit float64, f float64) Row {
		samples := make([]float64, len(base))
		for i, v := range base {
			samples[i] = v * unit * f
		}
		return NewRow(key, samples)
	}
	factor := func(kernel string, level int) float64 {
		if kernel == slowKernel && level == slowLevel {
			return scale
		}
		return 1
	}
	// Per-kernel rows in milliseconds; the solve row is their sum plus
	// fixed overhead, so a kernel slowdown moves the total consistently.
	sub := mk(Key{"SAC", "S", "subRelax", 5}, 10e-3, factor("subRelax", 5))
	interp := mk(Key{"SAC", "S", "interpolate", 5}, 5e-3, factor("interpolate", 5))
	s := &Snapshot{
		Schema:  SchemaVersion,
		Created: "2026-08-06T00:00:00Z",
		Host:    CollectHost(),
		Git:     Git{SHA: "deadbeefdeadbeefdeadbeefdeadbeefdeadbeef"},
		Config:  Config{Samples: len(base), Warmup: 2, Workers: 1},
	}
	solveSamples := make([]float64, len(base))
	for i := range base {
		solveSamples[i] = sub.Samples[i] + interp.Samples[i] + 2e-3
	}
	solve := NewRow(Key{"SAC", "S", TotalKernel, 5}, solveSamples)
	s.Rows = []Row{solve, sub, interp}
	s.SortRows()
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := fixtureSnapshot("", 0, 1)
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := s.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip mismatch:\nsaved  %+v\nloaded %+v", s, back)
	}
}

// copySnapshot deep-copies via a JSON round trip so mutations cannot
// leak between cases.
func copySnapshot(t *testing.T, s *Snapshot) *Snapshot {
	t.Helper()
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	cp, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestValidateRejectsCorruptSnapshots(t *testing.T) {
	good := fixtureSnapshot("", 0, 1)
	cases := []struct {
		name    string
		mutate  func(*Snapshot)
		wantErr string
	}{
		{name: "wrong version", mutate: func(s *Snapshot) { s.Schema = 99 }, wantErr: "unsupported schema version 99"},
		{name: "zero version", mutate: func(s *Snapshot) { s.Schema = 0 }, wantErr: "unsupported schema version"},
		{name: "no rows", mutate: func(s *Snapshot) { s.Rows = nil }, wantErr: "no rows"},
		{name: "empty samples", mutate: func(s *Snapshot) { s.Rows[0].Samples = nil }, wantErr: "no samples"},
		{name: "NaN sample", mutate: func(s *Snapshot) { s.Rows[0].Samples[0] = math.NaN() }, wantErr: "finite"},
		{name: "negative sample", mutate: func(s *Snapshot) { s.Rows[0].Samples[0] = -1 }, wantErr: "finite"},
		{name: "duplicate key", mutate: func(s *Snapshot) { s.Rows = append(s.Rows, s.Rows[0]) }, wantErr: "duplicate row"},
		{name: "unnamed row", mutate: func(s *Snapshot) { s.Rows[0].Kernel = "" }, wantErr: "empty impl, class or kernel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := copySnapshot(t, good)
			tc.mutate(cp)
			err := cp.Validate()
			if err == nil {
				t.Fatalf("Validate accepted corrupt snapshot %q", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadAndLoadRejectCorruptFiles(t *testing.T) {
	// Syntactically broken input fails with a clear parse error.
	if _, err := Read(strings.NewReader("not a snapshot{")); err == nil ||
		!strings.Contains(err.Error(), "not a benchmark snapshot") {
		t.Errorf("Read parse error = %v, want 'not a benchmark snapshot'", err)
	}
	// A mis-versioned file on disk is rejected by Load with the path in
	// the message.
	bad := fixtureSnapshot("", 0, 1)
	bad.Schema = SchemaVersion + 1
	data, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("Load accepted a mis-versioned snapshot")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("unsupported schema version %d", SchemaVersion+1)) ||
		!strings.Contains(err.Error(), "BENCH_bad.json") {
		t.Errorf("Load error %q missing version or path", err)
	}
}

// Schema-1 snapshots (written before the per-row Variant field) must
// keep loading; their rows come back with an empty Variant, meaning the
// scalar kernels those snapshots measured.
func TestReadAcceptsSchema1(t *testing.T) {
	old := fixtureSnapshot("", 0, 1)
	old.Schema = 1
	data, err := json.Marshal(old)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("schema-1 snapshot rejected: %v", err)
	}
	for _, r := range s.Rows {
		if r.Variant != "" {
			t.Fatalf("row %s: schema-1 load produced variant %q, want empty", r.Key(), r.Variant)
		}
	}
}

// The Variant field survives a Write/Read round trip and stays off the
// wire when empty.
func TestVariantRoundTrip(t *testing.T) {
	s := fixtureSnapshot("", 0, 1)
	s.Rows[0].Variant = "buffered"
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Rows[0].Variant; got != "buffered" {
		t.Fatalf("variant after round trip = %q, want %q", got, "buffered")
	}
	unstamped := fixtureSnapshot("", 0, 1)
	buf.Reset()
	if err := unstamped.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"variant"`)) {
		t.Fatalf("empty variants serialized a field:\n%s", buf.String())
	}
}

func TestCompareSelfIsIndistinguishable(t *testing.T) {
	s := fixtureSnapshot("", 0, 1)
	cmp := Compare(s, s, perfstat.Thresholds{Alpha: 0.01, MinRel: 0.10})
	if len(cmp.Rows) != 3 {
		t.Fatalf("compared %d rows, want 3", len(cmp.Rows))
	}
	for _, r := range cmp.Rows {
		if r.Verdict != perfstat.Indistinguishable {
			t.Errorf("self-compare row %s verdict %v, want indistinguishable", r.Key, r.Verdict)
		}
	}
	if cmp.HasRegression() {
		t.Error("self-compare reports a regression")
	}
	var sb strings.Builder
	cmp.WriteTable(&sb)
	if !strings.Contains(sb.String(), "no significant regressions") {
		t.Errorf("table missing the all-clear line:\n%s", sb.String())
	}
}

func TestCompareFlagsInjectedSlowdown(t *testing.T) {
	base := fixtureSnapshot("", 0, 1)
	slowed := fixtureSnapshot("subRelax", 5, 1.6) // 60% slower subRelax@5
	cmp := Compare(base, slowed, perfstat.Thresholds{Alpha: 0.01, MinRel: 0.10})
	if !cmp.HasRegression() {
		t.Fatal("injected slowdown not flagged")
	}
	regs := cmp.Regressions()
	// The top regression by contribution must be either the slowed kernel
	// row or the solve row it inflates; the slowed kernel row itself must
	// be present and correctly attributed.
	var found bool
	for _, r := range regs {
		if r.Key.Kernel == "subRelax" && r.Key.Level == 5 {
			found = true
			if r.Delta < 0.4 || r.Delta > 0.8 {
				t.Errorf("subRelax@5 delta %.2f, want ~0.6", r.Delta)
			}
		}
		if r.Key.Kernel == "interpolate" {
			t.Errorf("untouched kernel %s flagged as regression", r.Key)
		}
	}
	if !found {
		t.Fatalf("subRelax@5 missing from regressions: %+v", regs)
	}
	// Attribution of the solve delta names subRelax@5 first.
	attr := cmp.Attribute("SAC", "S")
	if len(attr) == 0 || attr[0].Key.Kernel != "subRelax" || attr[0].Key.Level != 5 {
		t.Fatalf("attribution did not rank subRelax@5 first: %+v", attr)
	}
	var sb strings.Builder
	cmp.WriteTable(&sb)
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("table missing REGRESSION line:\n%s", out)
	}
	if !strings.Contains(out, "subRelax@5") {
		t.Errorf("table missing the attributed kernel:\n%s", out)
	}
}

func TestCompareReportsMissingRowsAndHostMismatch(t *testing.T) {
	base := fixtureSnapshot("", 0, 1)
	cur := fixtureSnapshot("", 0, 1)
	// Drop one row from current, add a new one, and change the host.
	cur.Rows = cur.Rows[:len(cur.Rows)-1]
	extra := NewRow(Key{"SAC", "S", "comm3", 3}, []float64{1e-3, 1.1e-3, 0.9e-3})
	cur.Rows = append(cur.Rows, extra)
	cur.SortRows()
	cur.Host.CPUs = base.Host.CPUs + 7
	cmp := Compare(base, cur, perfstat.Thresholds{})
	if len(cmp.OnlyBase) != 1 {
		t.Errorf("OnlyBase = %v, want exactly one key", cmp.OnlyBase)
	}
	if len(cmp.OnlyCur) != 1 || cmp.OnlyCur[0].Kernel != "comm3" {
		t.Errorf("OnlyCur = %v, want comm3@3", cmp.OnlyCur)
	}
	if !cmp.HostMismatch {
		t.Error("host mismatch not detected")
	}
	var sb strings.Builder
	cmp.WriteTable(&sb)
	if !strings.Contains(sb.String(), "WARNING") {
		t.Errorf("table missing host-mismatch warning:\n%s", sb.String())
	}
}

func TestGitShortSHA(t *testing.T) {
	g := Git{SHA: "0123456789abcdef0123"}
	if got := g.ShortSHA(); got != "0123456789ab" {
		t.Errorf("ShortSHA = %q", got)
	}
	g = Git{SHA: "unknown"}
	if got := g.ShortSHA(); got != "unknown" {
		t.Errorf("ShortSHA = %q", got)
	}
}
