// Package perfdb defines the durable record of the performance lab: a
// versioned JSON snapshot schema holding repeated timing samples per
// (implementation, class, kernel, level) row together with derived
// GFLOP/s and bandwidth figures and host/git provenance, plus save/load
// with strict validation and a pairwise comparison that attributes a
// whole-benchmark delta to the specific rows that moved.
//
// Snapshots are written as BENCH_<gitsha>.json at the repository root by
// cmd/mgbench -fig perf; a checked-in BENCH_baseline.json is the CI
// gate's reference. The schema is versioned (Schema field) so a loader
// can refuse files it does not understand instead of silently
// misreading them.
package perfdb

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"

	"repro/internal/perfstat"
)

// SchemaVersion is the current snapshot schema. Version 2 added the
// per-row Variant field (the autotuned kernel backend the samples
// measured). Load accepts version 1 files too — they predate kernel
// variants, so their rows read back with an empty Variant, meaning
// scalar.
const SchemaVersion = 2

// minSchemaVersion is the oldest version Load still understands.
const minSchemaVersion = 1

// Key identifies one snapshot row.
type Key struct {
	Impl   string
	Class  string
	Kernel string
	Level  int
}

// String renders e.g. "SAC/S subRelax@5".
func (k Key) String() string {
	return fmt.Sprintf("%s/%s %s@%d", k.Impl, k.Class, k.Kernel, k.Level)
}

// less orders keys for the canonical row order: class, impl, kernel, level.
func (k Key) less(o Key) bool {
	if k.Class != o.Class {
		return k.Class < o.Class
	}
	if k.Impl != o.Impl {
		return k.Impl < o.Impl
	}
	if k.Kernel != o.Kernel {
		return k.Kernel < o.Kernel
	}
	return k.Level < o.Level
}

// Row is one measured (implementation, class, kernel, level) series.
type Row struct {
	Impl   string `json:"impl"`
	Class  string `json:"class"`
	Kernel string `json:"kernel"`
	Level  int    `json:"level"`
	// Samples are per-solve seconds attributed to this row, in execution
	// order, after warm-up discard but before outlier rejection (the
	// comparison re-runs rejection so the raw record stays complete).
	Samples []float64 `json:"samples"`
	// Median, Mean and the bootstrap CI bounds are derived from Samples
	// at snapshot time for human consumption; Compare recomputes them.
	Median float64 `json:"median"`
	Mean   float64 `json:"mean"`
	CILow  float64 `json:"ciLow"`
	CIHigh float64 `json:"ciHigh"`
	// Calibration is the median wall time (seconds) of the fixed
	// perfstat.Spin workload interleaved with this row's samples. Compare
	// prefers it over the snapshot-level calibration because host speed
	// can drift between measurement blocks of one run. 0 = uncalibrated.
	Calibration float64 `json:"calibration,omitempty"`
	// Points is the index points one sample processes (constant across
	// samples of a row). Zero when the row has no point model.
	Points uint64 `json:"points,omitempty"`
	// GFLOPS and GBPerSec are derived from Points, the per-point cost
	// model (internal/metrics.Cost) and the median time. Zero when no
	// cost model applies.
	GFLOPS   float64 `json:"gflops,omitempty"`
	GBPerSec float64 `json:"gbPerSec,omitempty"`
	// Variant is the kernel backend the autotuner had settled on for this
	// (kernel, level) when the samples were taken ("scalar", "buffered"
	// or "simd"; see internal/tune). Empty on schema-1 snapshots and on
	// rows without a per-level plan (e.g. the whole-benchmark total):
	// both mean the scalar loops. Provenance only — Compare matches rows
	// by Key regardless of variant, so a variant flip shows up as a
	// timing delta, which is exactly what changed.
	Variant string `json:"variant,omitempty"`
}

// Key returns the row's identity.
func (r Row) Key() Key { return Key{Impl: r.Impl, Class: r.Class, Kernel: r.Kernel, Level: r.Level} }

// NewRow builds a row with the derived statistics filled in.
func NewRow(key Key, samples []float64) Row {
	clean := perfstat.RejectOutliers(samples)
	lo, hi := perfstat.BootstrapCI(clean, 0.95, 1000)
	return Row{
		Impl: key.Impl, Class: key.Class, Kernel: key.Kernel, Level: key.Level,
		Samples: samples,
		Median:  perfstat.Median(clean),
		Mean:    perfstat.Mean(clean),
		CILow:   lo,
		CIHigh:  hi,
	}
}

// Host records where a snapshot was taken. Comparisons across differing
// hosts are still reported, but the table carries a warning — absolute
// times from different machines are not commensurable.
type Host struct {
	GoVersion string `json:"goVersion"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	Hostname  string `json:"hostname,omitempty"`
}

// CollectHost fills a Host from the running process.
func CollectHost() Host {
	name, _ := os.Hostname()
	return Host{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Hostname:  name,
	}
}

// Git records the source state a snapshot measured.
type Git struct {
	// SHA is the HEAD commit, or "unknown" outside a git checkout.
	SHA string `json:"sha"`
	// Dirty reports uncommitted changes in the working tree.
	Dirty bool `json:"dirty,omitempty"`
}

// CollectGit inspects the repository at dir. Failures degrade to
// SHA "unknown" rather than erroring: a snapshot from an exported
// tarball is still a snapshot.
func CollectGit(dir string) Git {
	g := Git{SHA: "unknown"}
	rev := exec.Command("git", "rev-parse", "HEAD")
	rev.Dir = dir
	if out, err := rev.Output(); err == nil {
		g.SHA = strings.TrimSpace(string(out))
	}
	st := exec.Command("git", "status", "--porcelain")
	st.Dir = dir
	if out, err := st.Output(); err == nil {
		g.Dirty = len(strings.TrimSpace(string(out))) > 0
	}
	return g
}

// ShortSHA returns the first 12 characters of the commit, for filenames.
func (g Git) ShortSHA() string {
	if len(g.SHA) > 12 {
		return g.SHA[:12]
	}
	return g.SHA
}

// Config records how the samples were collected.
type Config struct {
	Samples int `json:"samples"`
	Warmup  int `json:"warmup"`
	Workers int `json:"workers"`
}

// Snapshot is one complete benchmark record.
type Snapshot struct {
	Schema  int    `json:"schema"`
	Created string `json:"created"` // RFC3339, informational
	Host    Host   `json:"host"`
	Git     Git    `json:"git"`
	Config  Config `json:"config"`
	// Calibration is the median wall time (seconds) of the fixed
	// perfstat.Spin workload measured alongside the samples. Compare uses
	// the base/current ratio to normalize away host-speed differences
	// (frequency scaling, hypervisor steal); 0 means not calibrated and
	// disables normalization.
	Calibration float64 `json:"calibration,omitempty"`
	Rows        []Row   `json:"rows"`
}

// SortRows puts the rows into the canonical order (class, impl, kernel,
// level). Save calls it; Load verifies it held.
func (s *Snapshot) SortRows() {
	sort.Slice(s.Rows, func(i, j int) bool { return s.Rows[i].Key().less(s.Rows[j].Key()) })
}

// Validate checks the schema invariants and returns a descriptive error
// for the first violation: version match, non-empty rows, unique keys,
// named impl/class/kernel, and finite non-negative samples.
func (s *Snapshot) Validate() error {
	if s.Schema < minSchemaVersion || s.Schema > SchemaVersion {
		return fmt.Errorf("perfdb: unsupported schema version %d (this build reads versions %d-%d)",
			s.Schema, minSchemaVersion, SchemaVersion)
	}
	if len(s.Rows) == 0 {
		return fmt.Errorf("perfdb: snapshot has no rows")
	}
	if math.IsNaN(s.Calibration) || math.IsInf(s.Calibration, 0) || s.Calibration < 0 {
		return fmt.Errorf("perfdb: calibration %v is not a finite non-negative duration", s.Calibration)
	}
	seen := make(map[Key]bool, len(s.Rows))
	for i, r := range s.Rows {
		key := r.Key()
		if r.Impl == "" || r.Class == "" || r.Kernel == "" {
			return fmt.Errorf("perfdb: row %d (%s) has an empty impl, class or kernel", i, key)
		}
		if seen[key] {
			return fmt.Errorf("perfdb: duplicate row %s", key)
		}
		seen[key] = true
		if len(r.Samples) == 0 {
			return fmt.Errorf("perfdb: row %s has no samples", key)
		}
		for j, v := range r.Samples {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("perfdb: row %s sample %d is %v (want finite and >= 0)", key, j, v)
			}
		}
		if math.IsNaN(r.Calibration) || math.IsInf(r.Calibration, 0) || r.Calibration < 0 {
			return fmt.Errorf("perfdb: row %s calibration %v is not a finite non-negative duration", key, r.Calibration)
		}
	}
	return nil
}

// Write marshals the snapshot (canonically sorted, validated) to w.
func (s *Snapshot) Write(w io.Writer) error {
	s.SortRows()
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Save writes the snapshot to path (atomically via a sibling temp file).
func (s *Snapshot) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("perfdb: save: %w", err)
	}
	if err := s.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("perfdb: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("perfdb: save: %w", err)
	}
	return nil
}

// Read unmarshals and validates a snapshot from r.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("perfdb: not a benchmark snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.SortRows()
	return &s, nil
}

// Load reads and validates the snapshot at path.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("perfdb: load: %w", err)
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
