// Pairwise snapshot comparison: per-row Mann–Whitney verdicts plus an
// attribution pass that explains a whole-benchmark ("solve" row) delta
// in terms of the (kernel, level) rows that moved. The human-readable
// table is what cmd/mgbench prints and what the CI perf job uploads.
package perfdb

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/perfstat"
)

// TotalKernel is the whole-benchmark pseudo-kernel row name (matching
// metrics.TotalKernel); attribution explains deltas of these rows.
const TotalKernel = "solve"

// RowResult is the verdict on one row present in both snapshots.
type RowResult struct {
	Key Key
	perfstat.Comparison
	// ContribSec is the signed median change in seconds — the row's
	// contribution to its benchmark's end-to-end delta.
	ContribSec float64
}

// Comparison is the full base-vs-current report.
type Comparison struct {
	Thresholds perfstat.Thresholds
	Rows       []RowResult
	// OnlyBase and OnlyCur list rows present on one side only (a kernel
	// appeared or disappeared — itself worth noticing).
	OnlyBase, OnlyCur []Key
	// HostMismatch reports that the snapshots come from different
	// hardware or Go versions, which weakens absolute-time verdicts.
	HostMismatch bool
	// SpeedRatio is base.Calibration/cur.Calibration — how much faster
	// (>1) or slower (<1) the current host ran the fixed calibration
	// workload. Current samples are multiplied by it before testing, so
	// verdicts reflect code changes, not host-speed drift. 1 when either
	// snapshot is uncalibrated.
	SpeedRatio float64
}

// hostComparable ignores the hostname: two runners of the same shape
// are commensurable enough to gate on.
func hostComparable(a, b Host) bool {
	return a.OS == b.OS && a.Arch == b.Arch && a.CPUs == b.CPUs && a.GoVersion == b.GoVersion
}

// normalize rescales samples by the calibration speed ratio (a ratio of
// 1 returns the slice unchanged).
func normalize(samples []float64, ratio float64) []float64 {
	if ratio == 1 {
		return samples
	}
	out := make([]float64, len(samples))
	for i, v := range samples {
		out[i] = v * ratio
	}
	return out
}

// Compare evaluates cur against base row by row. th zero-values pick the
// package defaults (alpha 0.01; MinAbs additionally floors per-kernel
// noise at 20µs when unset so microsecond rows cannot gate a build).
func Compare(base, cur *Snapshot, th perfstat.Thresholds) *Comparison {
	if th.MinAbs == 0 {
		th.MinAbs = 20e-6
	}
	out := &Comparison{Thresholds: th, HostMismatch: !hostComparable(base.Host, cur.Host), SpeedRatio: 1}
	if base.Calibration > 0 && cur.Calibration > 0 {
		out.SpeedRatio = base.Calibration / cur.Calibration
	}
	baseRows := make(map[Key]Row, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.Key()] = r
	}
	curSeen := make(map[Key]bool, len(cur.Rows))
	for _, c := range cur.Rows {
		key := c.Key()
		curSeen[key] = true
		b, ok := baseRows[key]
		if !ok {
			out.OnlyCur = append(out.OnlyCur, key)
			continue
		}
		// Per-row calibration (interleaved with the row's measurement
		// block) beats the snapshot-level ratio: host speed can drift
		// between blocks of one run.
		ratio := out.SpeedRatio
		if b.Calibration > 0 && c.Calibration > 0 {
			ratio = b.Calibration / c.Calibration
		}
		cmp := perfstat.Compare(b.Samples, normalize(c.Samples, ratio), th)
		out.Rows = append(out.Rows, RowResult{
			Key:        key,
			Comparison: cmp,
			ContribSec: cmp.CurMedian - cmp.BaseMedian,
		})
	}
	for _, b := range base.Rows {
		if !curSeen[b.Key()] {
			out.OnlyBase = append(out.OnlyBase, b.Key())
		}
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].Key.less(out.Rows[j].Key) })
	return out
}

// ratioFold renders a speed ratio as an "N times" factor >= 1.
func ratioFold(r float64) float64 {
	if r < 1 && r > 0 {
		return 1 / r
	}
	return r
}

// Regressions returns the rows judged Slower, ordered by their absolute
// contribution (largest first) — the attribution order.
func (c *Comparison) Regressions() []RowResult {
	var out []RowResult
	for _, r := range c.Rows {
		if r.Verdict == perfstat.Slower {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].ContribSec) > math.Abs(out[j].ContribSec)
	})
	return out
}

// HasRegression reports whether any row regressed — the CI gate.
func (c *Comparison) HasRegression() bool {
	for _, r := range c.Rows {
		if r.Verdict == perfstat.Slower {
			return true
		}
	}
	return false
}

// Attribute explains the (impl, class) benchmark's end-to-end delta: it
// returns the non-"solve" rows of that benchmark ordered by absolute
// median change, largest first — "which kernels moved the total".
func (c *Comparison) Attribute(impl, class string) []RowResult {
	var out []RowResult
	for _, r := range c.Rows {
		if r.Key.Impl == impl && r.Key.Class == class && r.Key.Kernel != TotalKernel {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].ContribSec) > math.Abs(out[j].ContribSec)
	})
	return out
}

// WriteTable renders the full comparison: one line per row (medians,
// relative delta, p-value, verdict), attribution blocks for every
// benchmark whose "solve" row moved significantly, and the final gate
// line ("no significant regressions" or "REGRESSION").
func (c *Comparison) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Benchmark comparison (alpha %.3g, min relative delta %.1f%%, min absolute delta %.3gms)\n",
		c.Thresholds.Alpha, c.Thresholds.MinRel*100, c.Thresholds.MinAbs*1e3)
	if c.HostMismatch {
		fmt.Fprintf(w, "WARNING: snapshots were taken on different host configurations; absolute\n")
		fmt.Fprintf(w, "times are not commensurable and verdicts below may reflect the hardware.\n")
	}
	if c.SpeedRatio != 1 {
		fmt.Fprintf(w, "calibration: current host ran the reference workload %.2fx %s than the\n",
			ratioFold(c.SpeedRatio), map[bool]string{true: "faster", false: "slower"}[c.SpeedRatio > 1])
		fmt.Fprintf(w, "baseline host; current times are speed-normalized (per row where the\n")
		fmt.Fprintf(w, "rows carry their own calibration, else by the snapshot ratio %.4f).\n", c.SpeedRatio)
	}
	fmt.Fprintf(w, "%-34s %12s %12s %9s %9s  %s\n",
		"row", "base ms", "current ms", "delta", "p", "verdict")
	for _, r := range c.Rows {
		fmt.Fprintf(w, "%-34s %12.4f %12.4f %+8.1f%% %9.4f  %s\n",
			r.Key.String(), r.BaseMedian*1e3, r.CurMedian*1e3, r.Delta*100, r.P, r.Verdict)
	}
	for _, key := range c.OnlyBase {
		fmt.Fprintf(w, "%-34s only in baseline (kernel disappeared)\n", key.String())
	}
	for _, key := range c.OnlyCur {
		fmt.Fprintf(w, "%-34s only in current (new kernel, no baseline)\n", key.String())
	}

	// Attribution: explain every benchmark whose end-to-end row moved.
	for _, r := range c.Rows {
		if r.Key.Kernel != TotalKernel || r.Verdict == perfstat.Indistinguishable {
			continue
		}
		fmt.Fprintf(w, "\n%s/%s end-to-end %s by %+.1f%% (%+.3fms); largest movers:\n",
			r.Key.Impl, r.Key.Class, r.Verdict, r.Delta*100, r.ContribSec*1e3)
		total := r.ContribSec
		for i, k := range c.Attribute(r.Key.Impl, r.Key.Class) {
			if i >= 5 || k.ContribSec == 0 {
				break
			}
			share := 0.0
			if total != 0 {
				share = k.ContribSec / total * 100
			}
			fmt.Fprintf(w, "  %-32s %+10.4fms  %+6.1f%% of the total delta (%s)\n",
				fmt.Sprintf("%s@%d", k.Key.Kernel, k.Key.Level), k.ContribSec*1e3, share, k.Verdict)
		}
	}

	if regs := c.Regressions(); len(regs) > 0 {
		fmt.Fprintf(w, "\nREGRESSION: %d row(s) significantly slower:\n", len(regs))
		for _, r := range regs {
			fmt.Fprintf(w, "  %s: %+.1f%% (p=%.4f, %+.3fms)\n",
				r.Key.String(), r.Delta*100, r.P, r.ContribSec*1e3)
		}
	} else {
		fmt.Fprintf(w, "\nno significant regressions\n")
	}
}
