// Package stencil implements the 27-point relaxation kernels at the heart
// of NAS-MG. Every V-cycle operation of the benchmark — Resid, Smooth,
// Fine2Coarse, Coarse2Fine — "basically consists of a 27-point stencil
// relaxation operation ... with varying stencil coefficients" (paper, §4).
//
// A stencil is described by four coefficients, one per neighbour distance
// class: the centre element, the 6 face neighbours, the 12 edge neighbours
// and the 8 corner neighbours. The NPB specification provides the four
// coefficient vectors A (residual), S (smoother, size-class dependent),
// P (fine-to-coarse projection) and Q (coarse-to-fine interpolation).
//
// Three kernel variants implement the same relaxation:
//
//   - Relax (generic): a WITH-loop over the inner index space, working for
//     grids of rank 1–3 — the paper's rank-generic RelaxKernel.
//   - relax3Fused: the four-multiplication form for rank-3 grids, used at
//     optimization level O3. The paper notes that sac2c derives this
//     optimization implicitly: only four distinct coefficients occur, so
//     27 multiplications collapse to 4 (still 26 additions).
//   - Relax3Buffered: the Fortran-77 trick of sharing partial row sums
//     between neighbouring result elements through two line buffers,
//     reducing the additions to 12–20. The paper states SAC does *not*
//     perform this optimization — which is exactly why the reference
//     implementation (internal/f77) wins Fig. 11. internal/core deploys
//     the same trick inside its fused kernels (tune.VariantBuffered).
//
// # The canonical association
//
// All kernels fold neighbour sums in one fixed, line-buffer-compatible
// association so that every variant — generic, fused, buffered, and the
// SIMD rows of internal/simd — produces bit-identical results. Writing
// uXY[k] for the neighbour value at plane offset X, row offset Y and
// column position k, the per-element sums are
//
//	u1[k] = ((uMZ[k] + uZM[k]) + uZP[k]) + uPZ[k]   (in-plane faces)
//	u2[k] = ((uMM[k] + uMP[k]) + uPM[k]) + uPP[k]   (in-plane edges)
//	s1    = (uZZ[k-1] + uZZ[k+1]) + u1[k]
//	s2    = (u2[k] + u1[k-1]) + u1[k+1]
//	s3    = u2[k-1] + u2[k+1]
//	out   = ((c0·uZZ[k] + c1·s1) + c2·s2) + c3·s3
//
// u1 and u2 are pure functions of the column position, so the buffered
// kernel can memoise them in two line buffers (the f77 u1/u2 arrays) and
// the scalar kernels can expand them inline — the same additions in the
// same order either way, hence bit-identical. Within each sub-sum the
// operands appear in the lexicographic order of the neighbour offsets.
package stencil

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/shape"
	wl "repro/internal/withloop"
)

// Coeffs holds one coefficient per neighbour distance class:
// [0] centre, [1] face, [2] edge, [3] corner.
type Coeffs [4]float64

// The NPB 2.3 stencil coefficient vectors (benchmark specification):
var (
	// A is the discrete Poisson operator used by resid.
	A = Coeffs{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}
	// SClassSWA is the smoother for size classes S, W and A.
	SClassSWA = Coeffs{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0}
	// SClassBC is the smoother for size classes B and C.
	SClassBC = Coeffs{-3.0 / 17.0, 1.0 / 33.0, -1.0 / 61.0, 0.0}
	// P is the fine-to-coarse projection operator (rprj3 weights).
	P = Coeffs{1.0 / 2.0, 1.0 / 4.0, 1.0 / 8.0, 1.0 / 16.0}
	// Q is the coarse-to-fine interpolation operator (trilinear weights).
	Q = Coeffs{1.0, 1.0 / 2.0, 1.0 / 4.0, 1.0 / 8.0}
)

// neighbour is one offset of the 3^rank neighbourhood with its distance
// class (the number of non-zero offset components).
type neighbour struct {
	off   []int
	class int
}

// neighbourhood enumerates {-1,0,1}^rank in lexicographic order, excluding
// the centre (class 0), which kernels handle separately.
func neighbourhood(rank int) []neighbour {
	var nbs []neighbour
	off := make([]int, rank)
	for j := range off {
		off[j] = -1
	}
	for {
		class := 0
		for _, d := range off {
			if d != 0 {
				class++
			}
		}
		if class > 0 {
			nbs = append(nbs, neighbour{off: append([]int(nil), off...), class: class})
		}
		// Odometer increment over {-1,0,1}.
		j := rank - 1
		for ; j >= 0; j-- {
			off[j]++
			if off[j] <= 1 {
				break
			}
			off[j] = -1
		}
		if j < 0 {
			return nbs
		}
	}
}

// Relax applies the stencil with the given coefficients to every inner
// element of a, producing a new array whose boundary elements are zero —
// the fixed-boundary relaxation step of the paper's RelaxKernel. Periodic
// boundary conditions are realised by the caller initialising the
// artificial boundary elements beforehand (SetupPeriodicBorder in
// internal/core).
//
// Grids of rank 1–3 are supported (the four coefficient classes cover at
// most three dimensions). At optimization level O3 a fused rank-3 kernel
// with four multiplications per element replaces the generic WITH-loop;
// the results are bit-identical.
func Relax(e *wl.Env, a *array.Array, c Coeffs) *array.Array {
	rank := a.Dim()
	if rank < 1 || rank > 3 {
		panic(fmt.Sprintf("stencil: Relax supports rank 1-3, got %d", rank))
	}
	if e.Opt >= wl.O3 && rank == 3 {
		return relax3Fused(e, a, c)
	}
	nbs := neighbourhood(rank)
	shp := a.Shape()
	strides := shp.Strides()
	// Precompute linear offsets: within the inner generator every
	// neighbour stays in bounds, so offset arithmetic is safe.
	lin := make([]int, len(nbs))
	buckets := make([]int, len(nbs))
	for i, nb := range nbs {
		d := 0
		for j, o := range nb.off {
			d += o * strides[j]
		}
		lin[i] = d
		buckets[i] = bucketOf(nb, rank)
	}
	data := a.Data()
	return e.Genarray(shp, wl.Inner(shp), func(iv shape.Index) float64 {
		off := 0
		for j := range iv {
			off += iv[j] * strides[j]
		}
		// The seven partial sums of the canonical association (package
		// comment); buckets a lower-rank grid does not populate stay
		// exact zeros and drop out of the chains.
		var zk, u1, u2, u1m, u1p, u2m, u2p float64
		for i := range nbs {
			v := data[off+lin[i]]
			switch buckets[i] {
			case bZK:
				zk += v
			case bU1:
				u1 += v
			case bU2:
				u2 += v
			case bU1M:
				u1m += v
			case bU1P:
				u1p += v
			case bU2M:
				u2m += v
			default:
				u2p += v
			}
		}
		s1 := zk + u1
		s2 := (u2 + u1m) + u1p
		s3 := u2m + u2p
		return ((c[0]*data[off] + c[1]*s1) + c[2]*s2) + c[3]*s3
	})
}

// The partial-sum buckets of the canonical association. The last axis is
// the column (k) axis; class-2 neighbours one column over are the u1 terms
// of that column, class-3 neighbours the u2 terms.
const (
	bZK  = iota // class 1, off the column axis: uZZ[k±1]
	bU1         // class 1 in-column: u1[k]
	bU2         // class 2 in-column: u2[k]
	bU1M        // class 2 at column k-1: u1[k-1]
	bU1P        // class 2 at column k+1: u1[k+1]
	bU2M        // class 3 at column k-1: u2[k-1]
	bU2P        // class 3 at column k+1: u2[k+1]
)

// bucketOf classifies a neighbour offset into its partial-sum bucket by
// distance class and offset along the last (column) axis.
func bucketOf(nb neighbour, rank int) int {
	last := nb.off[rank-1]
	switch nb.class {
	case 1:
		if last != 0 {
			return bZK
		}
		return bU1
	case 2:
		switch last {
		case 0:
			return bU2
		case -1:
			return bU1M
		default:
			return bU1P
		}
	default:
		if last < 0 {
			return bU2M
		}
		return bU2P
	}
}

// relax3Fused is the four-multiplication rank-3 kernel. Neighbour sums
// fold in the canonical association (package comment) so that the generic,
// fused and buffered paths all produce identical floating-point results.
func relax3Fused(e *wl.Env, a *array.Array, c Coeffs) *array.Array {
	shp := a.Shape()
	n0, n1, n2 := shp[0], shp[1], shp[2]
	out := e.NewArray(shp) // zero boundary
	ad, od := a.Data(), out.Data()
	if n0 < 3 || n1 < 3 || n2 < 3 {
		return out
	}
	opts := e.ForOpt
	if per := (n1 - 2) * (n2 - 2); per > 0 {
		opts.SeqThreshold = max(opts.SeqThreshold, e.SeqThreshold) / per
	}
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	e.Sched.For(n0-2, opts, func(lo, hi, _ int) {
		for i := lo + 1; i <= hi; i++ {
			for j := 1; j < n1-1; j++ {
				// Row base offsets of the nine (i±1, j±1) rows.
				mm := ((i-1)*n1 + (j - 1)) * n2 // i-1, j-1
				mz := ((i-1)*n1 + j) * n2       // i-1, j
				mp := ((i-1)*n1 + (j + 1)) * n2 // i-1, j+1
				zm := (i*n1 + (j - 1)) * n2     // i,   j-1
				zz := (i*n1 + j) * n2           // i,   j
				zp := (i*n1 + (j + 1)) * n2     // i,   j+1
				pm := ((i+1)*n1 + (j - 1)) * n2 // i+1, j-1
				pz := ((i+1)*n1 + j) * n2       // i+1, j
				pp := ((i+1)*n1 + (j + 1)) * n2 // i+1, j+1
				for k := 1; k < n2-1; k++ {
					// The canonical association, u1/u2 expanded inline at
					// the three columns k-1, k, k+1 (package comment).
					u1m := ((ad[mz+k-1] + ad[zm+k-1]) + ad[zp+k-1]) + ad[pz+k-1]
					u1z := ((ad[mz+k] + ad[zm+k]) + ad[zp+k]) + ad[pz+k]
					u1p := ((ad[mz+k+1] + ad[zm+k+1]) + ad[zp+k+1]) + ad[pz+k+1]
					u2m := ((ad[mm+k-1] + ad[mp+k-1]) + ad[pm+k-1]) + ad[pp+k-1]
					u2z := ((ad[mm+k] + ad[mp+k]) + ad[pm+k]) + ad[pp+k]
					u2p := ((ad[mm+k+1] + ad[mp+k+1]) + ad[pm+k+1]) + ad[pp+k+1]
					s1 := (ad[zz+k-1] + ad[zz+k+1]) + u1z
					s2 := (u2z + u1m) + u1p
					s3 := u2m + u2p
					od[zz+k] = ((c0*ad[zz+k] + c1*s1) + c2*s2) + c3*s3
				}
			}
		}
	})
	return out
}

// Relax3Buffered is the line-buffered Fortran-77 kernel: partial sums along
// the contiguous axis are shared between neighbouring result elements
// through two buffers, cutting the 26 additions per element to 12–20
// (paper, §5). The buffers memoise exactly the u1/u2 sub-sums of the
// canonical association (package comment), so the result is bit-identical
// to Relax. Boundary elements of the result are zero.
//
// buf1 and buf2 must each hold at least shape[2] elements, or be nil to
// allocate internally; passing buffers lets callers hoist the allocation
// out of V-cycle loops like the Fortran code's automatic arrays.
func Relax3Buffered(e *wl.Env, a *array.Array, c Coeffs, buf1, buf2 []float64) *array.Array {
	shp := a.Shape()
	if shp.Rank() != 3 {
		panic(fmt.Sprintf("stencil: Relax3Buffered requires rank 3, got %d", shp.Rank()))
	}
	n0, n1, n2 := shp[0], shp[1], shp[2]
	out := e.NewArray(shp)
	ad, od := a.Data(), out.Data()
	if n0 < 3 || n1 < 3 || n2 < 3 {
		return out
	}
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	run := func(lo, hi, worker int, u1, u2 []float64) {
		for i := lo + 1; i <= hi; i++ {
			for j := 1; j < n1-1; j++ {
				mz := ((i-1)*n1 + j) * n2
				zm := (i*n1 + (j - 1)) * n2
				zz := (i*n1 + j) * n2
				zp := (i*n1 + (j + 1)) * n2
				pz := ((i+1)*n1 + j) * n2
				mm := ((i-1)*n1 + (j - 1)) * n2
				mp := ((i-1)*n1 + (j + 1)) * n2
				pm := ((i+1)*n1 + (j - 1)) * n2
				pp := ((i+1)*n1 + (j + 1)) * n2
				for k := 0; k < n2; k++ {
					// u1: the four class-1 neighbours off the k axis.
					u1[k] = ((ad[mz+k] + ad[zm+k]) + ad[zp+k]) + ad[pz+k]
					// u2: the four class-2 neighbours off the k axis.
					u2[k] = ((ad[mm+k] + ad[mp+k]) + ad[pm+k]) + ad[pp+k]
				}
				for k := 1; k < n2-1; k++ {
					od[zz+k] = ((c0*ad[zz+k] +
						c1*((ad[zz+k-1]+ad[zz+k+1])+u1[k])) +
						c2*((u2[k]+u1[k-1])+u1[k+1])) +
						c3*(u2[k-1]+u2[k+1])
				}
			}
		}
	}
	if e.Workers() == 1 {
		if buf1 == nil {
			buf1 = make([]float64, n2)
		}
		if buf2 == nil {
			buf2 = make([]float64, n2)
		}
		run(0, n0-2, 0, buf1[:n2], buf2[:n2])
		return out
	}
	// Parallel: per-worker buffers (the supplied ones serve worker 0).
	opts := e.ForOpt
	if per := (n1 - 2) * (n2 - 2); per > 0 {
		opts.SeqThreshold = max(opts.SeqThreshold, e.SeqThreshold) / per
	}
	e.Sched.For(n0-2, opts, func(lo, hi, worker int) {
		u1, u2 := buf1, buf2
		if worker != 0 || u1 == nil || u2 == nil {
			u1 = make([]float64, n2)
			u2 = make([]float64, n2)
		}
		run(lo, hi, worker, u1[:n2], u2[:n2])
	})
	return out
}

// FlopsPerElement reports the multiplication and addition counts per inner
// element for each kernel variant — the arithmetic the paper's §5 analysis
// quotes (27 mult/26 add naive, 4 mult fused, 12–20 add buffered).
func FlopsPerElement(variant string) (mults, adds int) {
	switch variant {
	case "naive":
		return 27, 26
	case "fused":
		// 19 in-bucket adds (26 neighbours in 7 buckets) + 4 cross-bucket
		// adds (s1, s2, s3) + 3 class-combining adds.
		return 4, 26
	case "buffered":
		// 6 adds amortised into the two line buffers (u1, u2: 3 each) +
		// 5 combining adds (zk, s1, s2, s3) + 3 class adds per element
		// = 14 (between the paper's 12 and 20).
		return 4, 14
	default:
		panic(fmt.Sprintf("stencil: unknown variant %q", variant))
	}
}
