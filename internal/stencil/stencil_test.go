package stencil

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/array"
	"repro/internal/shape"
	wl "repro/internal/withloop"
)

func genericEnv() *wl.Env {
	e := wl.Default()
	e.Opt = wl.O1
	e.SeqThreshold = 0
	return e
}

func fusedEnv() *wl.Env {
	e := wl.Default()
	e.SeqThreshold = 0
	return e
}

func randomGrid(n0, n1, n2 int, seed float64) *array.Array {
	e := wl.Default()
	shp := shape.Of(n0, n1, n2)
	return e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
		return math.Sin(seed + float64(iv[0]*31+iv[1]*17+iv[2]*7))
	})
}

func TestNeighbourhoodCounts(t *testing.T) {
	for rank, want := range map[int]int{1: 2, 2: 8, 3: 26} {
		nbs := neighbourhood(rank)
		if len(nbs) != want {
			t.Errorf("rank %d: %d neighbours, want %d", rank, len(nbs), want)
		}
		classes := map[int]int{}
		for _, nb := range nbs {
			classes[nb.class]++
		}
		if rank == 3 && (classes[1] != 6 || classes[2] != 12 || classes[3] != 8) {
			t.Errorf("rank 3 class counts = %v, want 6/12/8", classes)
		}
	}
}

// A constant grid relaxed with any stencil yields (sum of all 27
// coefficients) * constant on every inner element.
func TestRelaxConstantGrid(t *testing.T) {
	for name, c := range map[string]Coeffs{
		"A": A, "S(SWA)": SClassSWA, "S(BC)": SClassBC, "P": P, "Q": Q,
	} {
		total := c[0] + 6*c[1] + 12*c[2] + 8*c[3]
		a := array.NewFilled(shape.Of(5, 5, 5), 2.0)
		got := Relax(fusedEnv(), a, c)
		for i := 1; i < 4; i++ {
			for j := 1; j < 4; j++ {
				for k := 1; k < 4; k++ {
					if d := math.Abs(got.At3(i, j, k) - 2*total); d > 1e-14 {
						t.Fatalf("%s: inner element = %g, want %g", name, got.At3(i, j, k), 2*total)
					}
				}
			}
		}
	}
}

// The A stencil annihilates constants: its coefficients sum to zero, which
// is what makes it a discrete Laplacian.
func TestAStencilAnnihilatesConstants(t *testing.T) {
	sum := A[0] + 6*A[1] + 12*A[2] + 8*A[3]
	if math.Abs(sum) > 1e-15 {
		t.Fatalf("A coefficients sum to %g, want 0", sum)
	}
	a := array.NewFilled(shape.Of(4, 4, 4), 7.3)
	got := Relax(fusedEnv(), a, A)
	for i := 1; i < 3; i++ {
		for j := 1; j < 3; j++ {
			for k := 1; k < 3; k++ {
				if math.Abs(got.At3(i, j, k)) > 1e-13 {
					t.Fatalf("A on constant grid gives %g at (%d,%d,%d)", got.At3(i, j, k), i, j, k)
				}
			}
		}
	}
}

// The Q stencil applied to a scattered grid performs trilinear
// interpolation: the interpolation-operator coefficients 1, 1/2, 1/4, 1/8
// average the 1, 2, 4 or 8 nearest coarse points.
func TestQStencilInterpolates(t *testing.T) {
	// A grid that is non-zero only at even positions (a scatter result).
	e := fusedEnv()
	shp := shape.Of(6, 6, 6)
	a := e.Genarray(shp, wl.Full(shp).WithStep([]int{2, 2, 2}), func(iv shape.Index) float64 {
		return float64(iv[0] + iv[1] + iv[2] + 2)
	})
	got := Relax(e, a, Q)
	// Even-even-even inner point: exactly the coarse value.
	if math.Abs(got.At3(2, 2, 2)-a.At3(2, 2, 2)) > 1e-14 {
		t.Fatalf("even point = %g, want %g", got.At3(2, 2, 2), a.At3(2, 2, 2))
	}
	// Odd along one axis: average of the two neighbours.
	want := 0.5 * (a.At3(2, 2, 2) + a.At3(4, 2, 2))
	if math.Abs(got.At3(3, 2, 2)-want) > 1e-14 {
		t.Fatalf("face point = %g, want %g", got.At3(3, 2, 2), want)
	}
	// Odd along all axes: average of the eight corners.
	sum := 0.0
	for di := 2; di <= 4; di += 2 {
		for dj := 2; dj <= 4; dj += 2 {
			for dk := 2; dk <= 4; dk += 2 {
				sum += a.At3(di, dj, dk)
			}
		}
	}
	if math.Abs(got.At3(3, 3, 3)-sum/8) > 1e-14 {
		t.Fatalf("corner point = %g, want %g", got.At3(3, 3, 3), sum/8)
	}
}

func TestRelaxBoundaryZero(t *testing.T) {
	a := randomGrid(5, 6, 7, 1)
	got := Relax(fusedEnv(), a, SClassSWA)
	shp := a.Shape()
	for i := 0; i < shp[0]; i++ {
		for j := 0; j < shp[1]; j++ {
			for k := 0; k < shp[2]; k++ {
				onBorder := i == 0 || i == shp[0]-1 || j == 0 || j == shp[1]-1 || k == 0 || k == shp[2]-1
				if onBorder && got.At3(i, j, k) != 0 {
					t.Fatalf("boundary (%d,%d,%d) = %g, want 0", i, j, k, got.At3(i, j, k))
				}
			}
		}
	}
}

// Fused O3 kernel must be bit-identical to the generic WITH-loop kernel.
func TestFusedMatchesGenericBitwise(t *testing.T) {
	for _, c := range []Coeffs{A, SClassSWA, P, Q} {
		for _, dims := range [][3]int{{3, 3, 3}, {4, 5, 6}, {10, 10, 10}, {9, 4, 12}} {
			a := randomGrid(dims[0], dims[1], dims[2], float64(dims[0]))
			ref := Relax(genericEnv(), a, c)
			got := Relax(fusedEnv(), a, c)
			if !got.Equal(ref) {
				t.Fatalf("dims %v coeffs %v: fused kernel diverges from generic (max diff %g)",
					dims, c, got.MaxAbsDiff(ref))
			}
		}
	}
}

// Parallel execution must also be bit-identical.
func TestFusedParallelMatchesSequential(t *testing.T) {
	par := wl.Parallel(4)
	defer par.Close()
	par.SeqThreshold = 0
	a := randomGrid(12, 11, 10, 3)
	ref := Relax(fusedEnv(), a, A)
	got := Relax(par, a, A)
	if !got.Equal(ref) {
		t.Fatal("parallel fused kernel diverges from sequential")
	}
}

// Buffered kernel is bit-identical to the generic kernel: its line buffers
// memoise exactly the u1/u2 sub-sums of the canonical association.
func TestBufferedMatchesGenericBitwise(t *testing.T) {
	for _, c := range []Coeffs{A, SClassSWA, P, Q} {
		a := randomGrid(8, 9, 10, 5)
		ref := Relax(genericEnv(), a, c)
		got := Relax3Buffered(fusedEnv(), a, c, nil, nil)
		if !got.Equal(ref) {
			t.Fatalf("coeffs %v: buffered kernel diverges (max diff %g)", c, got.MaxAbsDiff(ref))
		}
	}
}

func TestBufferedWithCallerBuffers(t *testing.T) {
	a := randomGrid(6, 6, 6, 7)
	b1 := make([]float64, 6)
	b2 := make([]float64, 6)
	got := Relax3Buffered(fusedEnv(), a, A, b1, b2)
	ref := Relax3Buffered(fusedEnv(), a, A, nil, nil)
	if !got.Equal(ref) {
		t.Fatal("caller-supplied buffers change the result")
	}
}

func TestBufferedParallel(t *testing.T) {
	par := wl.Parallel(3)
	defer par.Close()
	par.SeqThreshold = 0
	a := randomGrid(10, 8, 9, 11)
	ref := Relax3Buffered(fusedEnv(), a, SClassSWA, nil, nil)
	got := Relax3Buffered(par, a, SClassSWA, nil, nil)
	if !got.Equal(ref) {
		t.Fatal("parallel buffered kernel diverges")
	}
}

// Property: relaxation is linear — Relax(αx + βy) == αRelax(x) + βRelax(y)
// up to rounding.
func TestRelaxLinearityQuick(t *testing.T) {
	e := fusedEnv()
	f := func(alphaRaw, betaRaw int8, seedRaw uint8) bool {
		alpha := float64(alphaRaw) / 16
		beta := float64(betaRaw) / 16
		x := randomGrid(5, 5, 5, float64(seedRaw))
		y := randomGrid(5, 5, 5, float64(seedRaw)+100)
		shp := x.Shape()
		comb := e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
			return alpha*x.At(iv) + beta*y.At(iv)
		})
		left := Relax(e, comb, A)
		rx := Relax(e, x, A)
		ry := Relax(e, y, A)
		right := e.Genarray(shp, wl.Full(shp), func(iv shape.Index) float64 {
			return alpha*rx.At(iv) + beta*ry.At(iv)
		})
		return left.ApproxEqual(right, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRelaxRank1And2(t *testing.T) {
	e := genericEnv()
	// Rank 1: out[i] = c0*a[i] + c1*(a[i-1]+a[i+1]).
	a1 := array.FromSlice(shape.Of(4), []float64{1, 2, 3, 4})
	got1 := Relax(e, a1, Coeffs{2, 1, 0, 0})
	want1 := array.FromSlice(shape.Of(4), []float64{0, 2*2 + (1 + 3), 2*3 + (2 + 4), 0})
	if !got1.ApproxEqual(want1, 1e-14) {
		t.Fatalf("rank-1 relax = %v, want %v", got1, want1)
	}
	// Rank 2: check one inner element by hand.
	a2 := array.FromSlice(shape.Of(3, 3), []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	got2 := Relax(e, a2, Coeffs{1, 0.5, 0.25, 0})
	want := 1*5.0 + 0.5*(2+4+6+8) + 0.25*(1+3+7+9)
	if math.Abs(got2.At(shape.Index{1, 1})-want) > 1e-14 {
		t.Fatalf("rank-2 relax centre = %g, want %g", got2.At(shape.Index{1, 1}), want)
	}
}

func TestRelaxRankPanics(t *testing.T) {
	e := wl.Default()
	for _, a := range []*array.Array{array.Scalar(1), array.New(shape.Of(2, 2, 2, 2))} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d did not panic", a.Dim())
				}
			}()
			Relax(e, a, A)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("Relax3Buffered on rank-2 did not panic")
		}
	}()
	Relax3Buffered(e, array.New(shape.Of(3, 3)), A, nil, nil)
}

func TestTinyGridsAllZero(t *testing.T) {
	// Grids with no inner points produce all-zero output.
	for _, dims := range [][3]int{{2, 5, 5}, {5, 2, 5}, {5, 5, 2}, {1, 1, 1}} {
		a := array.NewFilled(shape.Of(dims[0], dims[1], dims[2]), 3)
		for _, out := range []*array.Array{
			Relax(fusedEnv(), a, A),
			Relax3Buffered(fusedEnv(), a, A, nil, nil),
		} {
			for _, v := range out.Data() {
				if v != 0 {
					t.Fatalf("dims %v: tiny grid relax non-zero", dims)
				}
			}
		}
	}
}

func TestFlopsPerElement(t *testing.T) {
	if m, _ := FlopsPerElement("naive"); m != 27 {
		t.Error("naive mults wrong")
	}
	if m, _ := FlopsPerElement("fused"); m != 4 {
		t.Error("fused mults wrong")
	}
	if _, a := FlopsPerElement("buffered"); a < 12 || a > 20 {
		t.Errorf("buffered adds = %d, want within the paper's 12-20", a)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown variant did not panic")
		}
	}()
	FlopsPerElement("bogus")
}

func benchRelax(b *testing.B, f func(*array.Array) *array.Array) {
	a := randomGrid(66, 66, 66, 1)
	e := wl.Default()
	b.ReportAllocs()
	b.SetBytes(int64(a.Size() * 8))
	for i := 0; i < b.N; i++ {
		out := f(a)
		e.Release(out)
	}
}

// The stencil ablation of the paper's §5 flop analysis: naive WITH-loop
// (O1 generic), fused 4-mult (O3), and buffered Fortran-style kernels.
func BenchmarkRelaxGenericWithLoop(b *testing.B) {
	e := genericEnv()
	benchRelax(b, func(a *array.Array) *array.Array { return Relax(e, a, A) })
}

func BenchmarkRelaxFused4Mult(b *testing.B) {
	e := fusedEnv()
	benchRelax(b, func(a *array.Array) *array.Array { return Relax(e, a, A) })
}

func BenchmarkRelaxBuffered(b *testing.B) {
	e := fusedEnv()
	b1 := make([]float64, 66)
	b2 := make([]float64, 66)
	benchRelax(b, func(a *array.Array) *array.Array { return Relax3Buffered(e, a, A, b1, b2) })
}
