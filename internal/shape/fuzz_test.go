package shape

import "testing"

// FuzzOffsetRoundTrip drives the linearization round-trip with fuzzed
// shapes and offsets (the seed corpus runs as part of the normal test
// suite; `go test -fuzz=FuzzOffsetRoundTrip ./internal/shape` explores
// further).
func FuzzOffsetRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4), uint32(17))
	f.Add(uint8(1), uint8(1), uint8(1), uint32(0))
	f.Add(uint8(64), uint8(64), uint8(64), uint32(123456))
	f.Fuzz(func(t *testing.T, d0, d1, d2 uint8, off uint32) {
		s := Of(int(d0%64)+1, int(d1%64)+1, int(d2%64)+1)
		o := int(off) % s.Size()
		idx := s.Unflatten(o)
		if !s.Contains(idx) {
			t.Fatalf("Unflatten(%d) = %v not contained in %v", o, idx, s)
		}
		if got := s.Offset(idx); got != o {
			t.Fatalf("Offset(Unflatten(%d)) = %d", o, got)
		}
		if got := s.OffsetUnchecked(idx); got != o {
			t.Fatalf("OffsetUnchecked(Unflatten(%d)) = %d", o, got)
		}
	})
}

// FuzzVectorAlgebra checks the ring identities of the vector helpers.
func FuzzVectorAlgebra(f *testing.F) {
	f.Add(int16(1), int16(2), int16(3), int16(4))
	f.Fuzz(func(t *testing.T, a0, a1, b0, b1 int16) {
		a := []int{int(a0), int(a1)}
		b := []int{int(b0), int(b1)}
		if got := Sub(Add(a, b), b); !Shape(got).Equal(Shape(a)) {
			t.Fatalf("Sub(Add(a,b),b) = %v, want %v", got, a)
		}
		if got := Add(a, Zeros(2)); !Shape(got).Equal(Shape(a)) {
			t.Fatalf("a + 0 = %v", got)
		}
		if got := Mul(a, Ones(2)); !Shape(got).Equal(Shape(a)) {
			t.Fatalf("a * 1 = %v", got)
		}
	})
}
