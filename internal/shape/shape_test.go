package shape

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSize(t *testing.T) {
	cases := []struct {
		s    Shape
		want int
	}{
		{Of(), 1},
		{Of(0), 0},
		{Of(5), 5},
		{Of(3, 4), 12},
		{Of(2, 3, 4), 24},
		{Of(1, 1, 1, 1), 1},
		{Of(7, 0, 3), 0},
	}
	for _, c := range cases {
		if got := c.s.Size(); got != c.want {
			t.Errorf("Size(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestRank(t *testing.T) {
	if Of().Rank() != 0 || Of(2).Rank() != 1 || Of(2, 3, 4).Rank() != 3 {
		t.Fatal("Rank returned wrong values")
	}
}

func TestValid(t *testing.T) {
	if !Of(2, 3).Valid() || !Of().Valid() || !Of(0).Valid() {
		t.Error("valid shapes reported invalid")
	}
	if Of(2, -1).Valid() {
		t.Error("negative extent reported valid")
	}
}

func TestStrides(t *testing.T) {
	cases := []struct {
		s    Shape
		want []int
	}{
		{Of(5), []int{1}},
		{Of(3, 4), []int{4, 1}},
		{Of(2, 3, 4), []int{12, 4, 1}},
	}
	for _, c := range cases {
		got := c.s.Strides()
		if !Shape(got).Equal(Shape(c.want)) {
			t.Errorf("Strides(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestOffsetRowMajor(t *testing.T) {
	s := Of(2, 3, 4)
	// Row-major: last axis fastest.
	if s.Offset(Index{0, 0, 0}) != 0 {
		t.Error("origin not at offset 0")
	}
	if s.Offset(Index{0, 0, 1}) != 1 {
		t.Error("last axis not fastest")
	}
	if s.Offset(Index{0, 1, 0}) != 4 {
		t.Error("middle axis stride wrong")
	}
	if s.Offset(Index{1, 0, 0}) != 12 {
		t.Error("first axis stride wrong")
	}
	if s.Offset(Index{1, 2, 3}) != 23 {
		t.Error("last element not at Size()-1")
	}
}

func TestOffsetPanics(t *testing.T) {
	s := Of(2, 3)
	for _, idx := range []Index{{0}, {0, 3}, {-1, 0}, {2, 0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Offset(%v) on %v did not panic", idx, s)
				}
			}()
			s.Offset(idx)
		}()
	}
}

func TestUnflattenPanics(t *testing.T) {
	s := Of(2, 3)
	for _, off := range []int{-1, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Unflatten(%d) on %v did not panic", off, s)
				}
			}()
			s.Unflatten(off)
		}()
	}
}

// Property: Unflatten is the exact inverse of Offset over the whole space.
func TestOffsetUnflattenRoundTrip(t *testing.T) {
	shapes := []Shape{Of(1), Of(7), Of(3, 5), Of(2, 3, 4), Of(2, 2, 2, 2)}
	for _, s := range shapes {
		for off := 0; off < s.Size(); off++ {
			idx := s.Unflatten(off)
			if got := s.Offset(idx); got != off {
				t.Fatalf("shape %v: Offset(Unflatten(%d)) = %d", s, off, got)
			}
		}
	}
}

// Property-based round trip on random shapes via testing/quick.
func TestOffsetUnflattenQuick(t *testing.T) {
	f := func(dims [3]uint8, rawOff uint32) bool {
		s := Of(int(dims[0]%6)+1, int(dims[1]%6)+1, int(dims[2]%6)+1)
		off := int(rawOff) % s.Size()
		idx := s.Unflatten(off)
		return s.Offset(idx) == off && s.Contains(idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOffsetUncheckedMatchesOffset(t *testing.T) {
	s := Of(4, 5, 6)
	for off := 0; off < s.Size(); off++ {
		idx := s.Unflatten(off)
		if s.OffsetUnchecked(idx) != s.Offset(idx) {
			t.Fatalf("OffsetUnchecked diverges at %v", idx)
		}
	}
}

func TestUnflattenInto(t *testing.T) {
	s := Of(3, 4)
	buf := make(Index, 2)
	for off := 0; off < s.Size(); off++ {
		s.UnflattenInto(off, buf)
		if !buf.Equal(s.Unflatten(off)) {
			t.Fatalf("UnflattenInto(%d) = %v, want %v", off, buf, s.Unflatten(off))
		}
	}
}

func TestContains(t *testing.T) {
	s := Of(2, 3)
	if !s.Contains(Index{0, 0}) || !s.Contains(Index{1, 2}) {
		t.Error("in-bounds index reported out of bounds")
	}
	for _, idx := range []Index{{2, 0}, {0, 3}, {-1, 0}, {0}, {0, 0, 0}} {
		if s.Contains(idx) {
			t.Errorf("Contains(%v) on %v = true", idx, s)
		}
	}
}

func TestEqualClone(t *testing.T) {
	s := Of(2, 3, 4)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c[0] = 9
	if s.Equal(c) {
		t.Fatal("clone aliases original")
	}
	if s.Equal(Of(2, 3)) || s.Equal(Of(2, 3, 5)) {
		t.Fatal("Equal confused by different shapes")
	}
}

func TestString(t *testing.T) {
	if Of(2, 3, 4).String() != "[2,3,4]" {
		t.Errorf("Shape.String = %q", Of(2, 3, 4).String())
	}
	if Of().String() != "[]" {
		t.Errorf("empty Shape.String = %q", Of().String())
	}
	if (Index{1, 0}).String() != "[1,0]" {
		t.Errorf("Index.String = %q", Index{1, 0}.String())
	}
}

func TestVectorAlgebra(t *testing.T) {
	a := []int{6, 8, 10}
	b := []int{1, 2, 5}
	if got := Add(a, b); !Shape(got).Equal(Of(7, 10, 15)) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b); !Shape(got).Equal(Of(5, 6, 5)) {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b); !Shape(got).Equal(Of(6, 16, 50)) {
		t.Errorf("Mul = %v", got)
	}
	if got := Div(a, b); !Shape(got).Equal(Of(6, 4, 2)) {
		t.Errorf("Div = %v", got)
	}
	if got := AddScalar(a, 1); !Shape(got).Equal(Of(7, 9, 11)) {
		t.Errorf("AddScalar = %v", got)
	}
	if got := MulScalar(a, 2); !Shape(got).Equal(Of(12, 16, 20)) {
		t.Errorf("MulScalar = %v", got)
	}
	if got := DivScalar(a, 2); !Shape(got).Equal(Of(3, 4, 5)) {
		t.Errorf("DivScalar = %v", got)
	}
}

func TestVectorAlgebraRankMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with rank mismatch did not panic")
		}
	}()
	Add([]int{1, 2}, []int{1})
}

func TestReplicateZerosOnes(t *testing.T) {
	if got := Replicate(3, 7); !Shape(got).Equal(Of(7, 7, 7)) {
		t.Errorf("Replicate = %v", got)
	}
	if got := Zeros(2); !Shape(got).Equal(Of(0, 0)) {
		t.Errorf("Zeros = %v", got)
	}
	if got := Ones(2); !Shape(got).Equal(Of(1, 1)) {
		t.Errorf("Ones = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	if !AllLess([]int{1, 2}, []int{2, 3}) {
		t.Error("AllLess false negative")
	}
	if AllLess([]int{1, 3}, []int{2, 3}) {
		t.Error("AllLess false positive on equality")
	}
	if !AllLessEq([]int{1, 3}, []int{2, 3}) {
		t.Error("AllLessEq false negative")
	}
	if AllLessEq([]int{3, 3}, []int{2, 3}) {
		t.Error("AllLessEq false positive")
	}
}

func TestMinMax(t *testing.T) {
	a, b := []int{1, 5, 3}, []int{2, 4, 3}
	if got := Min(a, b); !Shape(got).Equal(Of(1, 4, 3)) {
		t.Errorf("Min = %v", got)
	}
	if got := Max(a, b); !Shape(got).Equal(Of(2, 5, 3)) {
		t.Errorf("Max = %v", got)
	}
}

// Property: Sub(Add(a,b), b) == a for random vectors.
func TestAddSubQuick(t *testing.T) {
	f := func(av, bv [4]int16) bool {
		a := []int{int(av[0]), int(av[1]), int(av[2]), int(av[3])}
		b := []int{int(bv[0]), int(bv[1]), int(bv[2]), int(bv[3])}
		return Shape(Sub(Add(a, b), b)).Equal(Shape(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkOffset3D(b *testing.B) {
	s := Of(64, 64, 64)
	idx := Index{31, 17, 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.OffsetUnchecked(idx)
	}
}

func BenchmarkUnflattenInto(b *testing.B) {
	s := Of(64, 64, 64)
	buf := make(Index, 3)
	r := rand.New(rand.NewSource(1))
	off := r.Intn(s.Size())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.UnflattenInto(off, buf)
	}
}
