// Package shape provides n-dimensional shape and index-vector algebra.
//
// It is the lowest substrate of the SAC-style array system: every array,
// WITH-loop generator, and stencil in this repository describes its extent
// and positions with the vectors defined here. A Shape is the extent of a
// rectangular n-dimensional index space; an Index is a position inside one.
// Both are plain []int values so that callers can use literals freely, with
// the algebra (linearization, strides, element-wise arithmetic) collected in
// this package.
//
// All arrays in the repository are dense and row-major: the last axis varies
// fastest, exactly like C and like the memory layout SAC compiles to.
package shape

import (
	"fmt"
	"strings"
)

// Shape is the extent of an n-dimensional rectangular index space.
// Every component must be non-negative; a zero component denotes an empty
// space. The rank of the space is len(Shape).
type Shape []int

// Index is a position in an n-dimensional index space. Component j must
// satisfy 0 <= Index[j] < Shape[j] to be in bounds.
type Index []int

// Of builds a Shape from its arguments, for readable call sites:
// shape.Of(4, 4, 4).
func Of(extents ...int) Shape { return Shape(extents) }

// Rank returns the number of axes.
func (s Shape) Rank() int { return len(s) }

// Size returns the total number of elements, i.e. the product of all
// extents. The empty (rank-0) shape has size 1: it describes a scalar.
func (s Shape) Size() int {
	n := 1
	for _, e := range s {
		n *= e
	}
	return n
}

// Valid reports whether every extent is non-negative.
func (s Shape) Valid() bool {
	for _, e := range s {
		if e < 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether s and t have the same rank and extents.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Strides returns the row-major strides of s: the linear distance between
// consecutive elements along each axis. For shape [a b c] the strides are
// [b*c, c, 1].
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for j := len(s) - 1; j >= 0; j-- {
		st[j] = acc
		acc *= s[j]
	}
	return st
}

// Offset linearizes idx in the row-major order defined by s.
// It panics if idx has a different rank or is out of bounds; bounds errors
// in index computations are programming errors, mirroring Go's own slice
// indexing discipline.
func (s Shape) Offset(idx Index) int {
	if len(idx) != len(s) {
		panic(fmt.Sprintf("shape: rank mismatch: index %v vs shape %v", idx, s))
	}
	off := 0
	for j, e := range s {
		i := idx[j]
		if i < 0 || i >= e {
			panic(fmt.Sprintf("shape: index %v out of bounds for shape %v (axis %d)", idx, s, j))
		}
		off = off*e + i
	}
	return off
}

// OffsetUnchecked linearizes idx without bounds checks. Hot loops that have
// already validated their generator against the shape use this form.
func (s Shape) OffsetUnchecked(idx Index) int {
	off := 0
	for j, e := range s {
		off = off*e + idx[j]
	}
	return off
}

// Unflatten is the inverse of Offset: it converts a linear offset back to an
// index vector. It panics if off is outside [0, Size()).
func (s Shape) Unflatten(off int) Index {
	idx := make(Index, len(s))
	s.UnflattenInto(off, idx)
	return idx
}

// UnflattenInto is Unflatten writing into a caller-provided index vector,
// avoiding the allocation in per-element loops.
func (s Shape) UnflattenInto(off int, idx Index) {
	if off < 0 || off >= s.Size() {
		panic(fmt.Sprintf("shape: offset %d out of range for shape %v", off, s))
	}
	if len(idx) != len(s) {
		panic(fmt.Sprintf("shape: rank mismatch: index buffer rank %d vs shape %v", len(idx), s))
	}
	for j := len(s) - 1; j >= 0; j-- {
		e := s[j]
		idx[j] = off % e
		off /= e
	}
}

// Contains reports whether idx is a valid in-bounds position of s.
func (s Shape) Contains(idx Index) bool {
	if len(idx) != len(s) {
		return false
	}
	for j, e := range s {
		if idx[j] < 0 || idx[j] >= e {
			return false
		}
	}
	return true
}

// String renders the shape in SAC vector notation, e.g. "[4,4,4]".
func (s Shape) String() string { return vecString([]int(s)) }

// String renders the index in SAC vector notation, e.g. "[0,1,2]".
func (i Index) String() string { return vecString([]int(i)) }

func vecString(v []int) string {
	var b strings.Builder
	b.WriteByte('[')
	for j, e := range v {
		if j > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", e)
	}
	b.WriteByte(']')
	return b.String()
}

// Clone returns an independent copy of idx.
func (i Index) Clone() Index {
	c := make(Index, len(i))
	copy(c, i)
	return c
}

// Equal reports whether two index vectors are identical.
func (i Index) Equal(j Index) bool { return Shape(i).Equal(Shape(j)) }

// --- element-wise vector algebra -------------------------------------------
//
// SAC programs manipulate index vectors with ordinary arithmetic
// (shape(a)/str, str*iv, iv-pos, shape(rc)+1, ...). The helpers below are
// the Go spellings of those expressions. All of them panic on rank
// mismatch, which is always a programming error.

func checkRank(op string, a, b []int) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("shape: %s: rank mismatch %v vs %v", op, a, b))
	}
}

// Add returns a+b element-wise.
func Add(a, b []int) []int {
	checkRank("Add", a, b)
	c := make([]int, len(a))
	for j := range a {
		c[j] = a[j] + b[j]
	}
	return c
}

// Sub returns a-b element-wise.
func Sub(a, b []int) []int {
	checkRank("Sub", a, b)
	c := make([]int, len(a))
	for j := range a {
		c[j] = a[j] - b[j]
	}
	return c
}

// Mul returns a*b element-wise.
func Mul(a, b []int) []int {
	checkRank("Mul", a, b)
	c := make([]int, len(a))
	for j := range a {
		c[j] = a[j] * b[j]
	}
	return c
}

// Div returns a/b element-wise (Go integer division). It panics if any
// component of b is zero.
func Div(a, b []int) []int {
	checkRank("Div", a, b)
	c := make([]int, len(a))
	for j := range a {
		c[j] = a[j] / b[j]
	}
	return c
}

// AddScalar returns a+k in every component.
func AddScalar(a []int, k int) []int {
	c := make([]int, len(a))
	for j := range a {
		c[j] = a[j] + k
	}
	return c
}

// MulScalar returns a*k in every component.
func MulScalar(a []int, k int) []int {
	c := make([]int, len(a))
	for j := range a {
		c[j] = a[j] * k
	}
	return c
}

// DivScalar returns a/k in every component (integer division).
func DivScalar(a []int, k int) []int {
	c := make([]int, len(a))
	for j := range a {
		c[j] = a[j] / k
	}
	return c
}

// Replicate returns a vector of the given rank with every component equal
// to v. It is the implicit scalar-to-vector replication that SAC performs
// in WITH-loop generators ("simple scalars may be used instead of vectors").
func Replicate(rank, v int) []int {
	c := make([]int, rank)
	for j := range c {
		c[j] = v
	}
	return c
}

// Zeros returns the all-zero vector of the given rank — SAC's "0*shape(a)".
func Zeros(rank int) []int { return make([]int, rank) }

// Ones returns the all-one vector of the given rank.
func Ones(rank int) []int { return Replicate(rank, 1) }

// AllLess reports whether a[j] < b[j] for every axis.
func AllLess(a, b []int) bool {
	checkRank("AllLess", a, b)
	for j := range a {
		if a[j] >= b[j] {
			return false
		}
	}
	return true
}

// AllLessEq reports whether a[j] <= b[j] for every axis.
func AllLessEq(a, b []int) bool {
	checkRank("AllLessEq", a, b)
	for j := range a {
		if a[j] > b[j] {
			return false
		}
	}
	return true
}

// Min returns the element-wise minimum of a and b.
func Min(a, b []int) []int {
	checkRank("Min", a, b)
	c := make([]int, len(a))
	for j := range a {
		c[j] = min(a[j], b[j])
	}
	return c
}

// Max returns the element-wise maximum of a and b.
func Max(a, b []int) []int {
	checkRank("Max", a, b)
	c := make([]int, len(a))
	for j := range a {
		c[j] = max(a[j], b[j])
	}
	return c
}
