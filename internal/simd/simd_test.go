package simd

import (
	"math"
	"math/rand"
	"testing"
)

// withAsm runs f under both dispatch paths (when AVX2 is available) or
// just the fallback (when not), so the suite is meaningful on every host.
func withAsm(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	saved := useAsm
	defer func() { useAsm = saved }()
	useAsm = false
	t.Run("fallback", f)
	if saved {
		useAsm = true
		t.Run("avx2", f)
	}
}

func randRow(rng *rand.Rand, n int) []float64 {
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	return r
}

// refStencil is an independent statement of the canonical combine tree.
func refStencil(x, u1, u2 []float64, k int, c *[4]float64) float64 {
	s1 := (x[k-1] + x[k+1]) + u1[k]
	s2 := (u2[k] + u1[k-1]) + u1[k+1]
	s3 := u2[k-1] + u2[k+1]
	return ((c[0]*x[k] + c[1]*s1) + c[2]*s2) + c[3]*s3
}

// TestRowsBitIdentical checks every primitive against an element-wise
// reference, under both dispatch paths, across row lengths covering the
// empty, tail-only and vector+tail cases.
func TestRowsBitIdentical(t *testing.T) {
	c := [4]float64{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 34, 130, 258} {
		rng := rand.New(rand.NewSource(int64(n) + 1))
		a, b, d, e := randRow(rng, n), randRow(rng, n), randRow(rng, n), randRow(rng, n)
		v, x, u1, u2 := randRow(rng, n), randRow(rng, n), randRow(rng, n), randRow(rng, n)
		withAsm(t, func(t *testing.T) {
			dst := make([]float64, n)
			Sum2(dst, a, b)
			for i := range dst {
				if want := a[i] + b[i]; dst[i] != want {
					t.Fatalf("Sum2 n=%d [%d]: got %x want %x", n, i, dst[i], want)
				}
			}
			Sum4(dst, a, b, d, e)
			for i := range dst {
				if want := ((a[i] + b[i]) + d[i]) + e[i]; dst[i] != want {
					t.Fatalf("Sum4 n=%d [%d]: got %x want %x", n, i, dst[i], want)
				}
			}
			if n < 2 {
				return
			}
			o := make([]float64, n)
			SubRelaxRow(o, v, x, u1, u2, &c)
			for k := 1; k < n-1; k++ {
				if want := v[k] - refStencil(x, u1, u2, k, &c); o[k] != want {
					t.Fatalf("SubRelaxRow n=%d [%d]: got %x want %x", n, k, o[k], want)
				}
			}
			AddRelaxRow(o, v, x, u1, u2, &c)
			for k := 1; k < n-1; k++ {
				if want := v[k] + refStencil(x, u1, u2, k, &c); o[k] != want {
					t.Fatalf("AddRelaxRow n=%d [%d]: got %x want %x", n, k, o[k], want)
				}
			}
			AddRelaxPlusRow(o, e, v, x, u1, u2, &c)
			for k := 1; k < n-1; k++ {
				if want := e[k] + (v[k] + refStencil(x, u1, u2, k, &c)); o[k] != want {
					t.Fatalf("AddRelaxPlusRow n=%d [%d]: got %x want %x", n, k, o[k], want)
				}
			}
		})
	}
}

// TestAsmMatchesFallback cross-checks the two dispatch paths against each
// other on the same inputs — the direct statement of the bit-identity
// contract. Skipped (trivially passing) when AVX2 is unavailable.
func TestAsmMatchesFallback(t *testing.T) {
	if !useAsm {
		t.Skip("AVX2 path not active on this host")
	}
	saved := useAsm
	defer func() { useAsm = saved }()
	c := [4]float64{0.5, 0.25, 0.125, 0.0625}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{6, 18, 66, 258} {
		v, x, u1, u2 := randRow(rng, n), randRow(rng, n), randRow(rng, n), randRow(rng, n)
		asm, ref := make([]float64, n), make([]float64, n)
		useAsm = true
		SubRelaxRow(asm, v, x, u1, u2, &c)
		useAsm = false
		SubRelaxRow(ref, v, x, u1, u2, &c)
		for k := 1; k < n-1; k++ {
			if asm[k] != ref[k] {
				t.Fatalf("n=%d [%d]: asm %x fallback %x", n, k, asm[k], ref[k])
			}
		}
	}
}

// TestSpecialValues checks the primitives propagate non-finite values the
// way the Go expressions do.
func TestSpecialValues(t *testing.T) {
	inf := math.Inf(1)
	a := []float64{1, inf, math.NaN(), -2, 3, 4, 5, 6}
	b := []float64{2, -inf, 1, 7, 8, 9, 10, 11}
	withAsm(t, func(t *testing.T) {
		dst := make([]float64, len(a))
		Sum2(dst, a, b)
		if dst[0] != 3 || !math.IsNaN(dst[1]) || !math.IsNaN(dst[2]) {
			t.Fatalf("Sum2 special values: got %v", dst[:3])
		}
	})
}

func BenchmarkSum4(bm *testing.B) {
	n := 258
	rng := rand.New(rand.NewSource(1))
	a, b, c, d := randRow(rng, n), randRow(rng, n), randRow(rng, n), randRow(rng, n)
	dst := make([]float64, n)
	bm.SetBytes(int64(5 * 8 * n))
	for i := 0; i < bm.N; i++ {
		Sum4(dst, a, b, c, d)
	}
}

func BenchmarkSubRelaxRow(bm *testing.B) {
	n := 258
	c := [4]float64{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}
	rng := rand.New(rand.NewSource(2))
	v, x, u1, u2 := randRow(rng, n), randRow(rng, n), randRow(rng, n), randRow(rng, n)
	o := make([]float64, n)
	bm.SetBytes(int64(5 * 8 * n))
	for i := 0; i < bm.N; i++ {
		SubRelaxRow(o, v, x, u1, u2, &c)
	}
}
