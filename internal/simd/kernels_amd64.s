// AVX2 row kernels for the line-buffered stencil form. Every lane
// evaluates the canonical association of internal/stencil with plain
// VADDPD/VMULPD (no FMA), so results are bit-identical to the pure-Go
// fallbacks. n is a multiple of 4 (the Go wrappers handle tails).

#include "textflag.h"

// func sum2AVX2(dst, a, b *float64, n int)
TEXT ·sum2AVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ n+24(FP), R8
	XORQ AX, AX
sum2loop:
	CMPQ AX, R8
	JGE  sum2done
	VMOVUPD (SI)(AX*8), Y0
	VADDPD  (BX)(AX*8), Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
	JMP  sum2loop
sum2done:
	VZEROUPPER
	RET

// func sum4AVX2(dst, a, b, c, d *float64, n int)
// dst = ((a + b) + c) + d
TEXT ·sum4AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ c+24(FP), CX
	MOVQ d+32(FP), DX
	MOVQ n+40(FP), R8
	XORQ AX, AX
sum4loop:
	CMPQ AX, R8
	JGE  sum4done
	VMOVUPD (SI)(AX*8), Y0
	VADDPD  (BX)(AX*8), Y0, Y0
	VADDPD  (CX)(AX*8), Y0, Y0
	VADDPD  (DX)(AX*8), Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
	JMP  sum4loop
sum4done:
	VZEROUPPER
	RET

// The three relax rows share one combine tree over the centre row x and
// the u1/u2 line buffers, computed for k = AX..AX+3 into Y3:
//
//	s1 = (x[k-1] + x[k+1]) + u1[k]                      (Y0)
//	s2 = (u2[k] + u1[k-1]) + u1[k+1]                    (Y1)
//	s3 = u2[k-1] + u2[k+1]                              (Y2)
//	Y3 = ((c0*x[k] + c1*s1) + c2*s2) + c3*s3
//
// with the broadcast coefficients in Y12..Y15 and x/u1/u2 in R10/R11/R12.
#define STENCIL_COMBINE \
	VMOVUPD -8(R10)(AX*8), Y0  \
	VADDPD  8(R10)(AX*8), Y0, Y0 \
	VADDPD  (R11)(AX*8), Y0, Y0 \
	VMOVUPD (R12)(AX*8), Y1    \
	VADDPD  -8(R11)(AX*8), Y1, Y1 \
	VADDPD  8(R11)(AX*8), Y1, Y1 \
	VMOVUPD -8(R12)(AX*8), Y2  \
	VADDPD  8(R12)(AX*8), Y2, Y2 \
	VMULPD  (R10)(AX*8), Y12, Y3 \
	VMULPD  Y0, Y13, Y4        \
	VADDPD  Y4, Y3, Y3         \
	VMULPD  Y1, Y14, Y4        \
	VADDPD  Y4, Y3, Y3         \
	VMULPD  Y2, Y15, Y4        \
	VADDPD  Y4, Y3, Y3

#define LOAD_COEFFS(creg) \
	VBROADCASTSD 0(creg), Y12  \
	VBROADCASTSD 8(creg), Y13  \
	VBROADCASTSD 16(creg), Y14 \
	VBROADCASTSD 24(creg), Y15

// func subRelaxRowAVX2(o, v, x, u1, u2 *float64, n int, c *[4]float64)
// o[k] = v[k] - stencil(k) for k = 1..n
TEXT ·subRelaxRowAVX2(SB), NOSPLIT, $0-56
	MOVQ o+0(FP), DI
	MOVQ v+8(FP), SI
	MOVQ x+16(FP), R10
	MOVQ u1+24(FP), R11
	MOVQ u2+32(FP), R12
	MOVQ n+40(FP), R8
	MOVQ c+48(FP), R9
	LOAD_COEFFS(R9)
	MOVQ $1, AX
	ADDQ $1, R8   // limit: k runs 1..n inclusive
subloop:
	CMPQ AX, R8
	JGE  subdone
	STENCIL_COMBINE
	VMOVUPD (SI)(AX*8), Y5
	VSUBPD  Y3, Y5, Y5   // v - stencil
	VMOVUPD Y5, (DI)(AX*8)
	ADDQ $4, AX
	JMP  subloop
subdone:
	VZEROUPPER
	RET

// func addRelaxRowAVX2(o, z, x, u1, u2 *float64, n int, c *[4]float64)
// o[k] = z[k] + stencil(k) for k = 1..n
TEXT ·addRelaxRowAVX2(SB), NOSPLIT, $0-56
	MOVQ o+0(FP), DI
	MOVQ z+8(FP), SI
	MOVQ x+16(FP), R10
	MOVQ u1+24(FP), R11
	MOVQ u2+32(FP), R12
	MOVQ n+40(FP), R8
	MOVQ c+48(FP), R9
	LOAD_COEFFS(R9)
	MOVQ $1, AX
	ADDQ $1, R8
addloop:
	CMPQ AX, R8
	JGE  adddone
	STENCIL_COMBINE
	VMOVUPD (SI)(AX*8), Y5
	VADDPD  Y3, Y5, Y5   // z + stencil
	VMOVUPD Y5, (DI)(AX*8)
	ADDQ $4, AX
	JMP  addloop
adddone:
	VZEROUPPER
	RET

// func addRelaxPlusRowAVX2(o, w, z, x, u1, u2 *float64, n int, c *[4]float64)
// o[k] = w[k] + (z[k] + stencil(k)) for k = 1..n
TEXT ·addRelaxPlusRowAVX2(SB), NOSPLIT, $0-64
	MOVQ o+0(FP), DI
	MOVQ w+8(FP), SI
	MOVQ z+16(FP), DX
	MOVQ x+24(FP), R10
	MOVQ u1+32(FP), R11
	MOVQ u2+40(FP), R12
	MOVQ n+48(FP), R8
	MOVQ c+56(FP), R9
	LOAD_COEFFS(R9)
	MOVQ $1, AX
	ADDQ $1, R8
plusloop:
	CMPQ AX, R8
	JGE  plusdone
	STENCIL_COMBINE
	VMOVUPD (DX)(AX*8), Y5
	VADDPD  Y3, Y5, Y5   // z + stencil
	VMOVUPD (SI)(AX*8), Y6
	VADDPD  Y5, Y6, Y6   // w + (z + stencil)
	VMOVUPD Y6, (DI)(AX*8)
	ADDQ $4, AX
	JMP  plusloop
plusdone:
	VZEROUPPER
	RET
