//go:build !amd64

package simd

// Non-amd64 builds have no assembly path: useAsm stays false and every
// primitive runs its pure-Go loop.
func hasAVX2() bool { return false }

func sum2Asm(dst, a, b []float64) int       { return 0 }
func sum4Asm(dst, a, b, c, d []float64) int { return 0 }

func subRelaxRowAVX2(o, v, x, u1, u2 *float64, n int, c *[4]float64)        {}
func addRelaxRowAVX2(o, z, x, u1, u2 *float64, n int, c *[4]float64)        {}
func addRelaxPlusRowAVX2(o, w, z, x, u1, u2 *float64, n int, c *[4]float64) {}
