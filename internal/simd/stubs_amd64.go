package simd

// Assembly kernels (kernels_amd64.s). n is the element count to process
// and must be a multiple of 4; the relax rows start at index 1 (the row
// interior) and read indices 0..n+1 of every input, so the caller
// guarantees n ≤ len−2.

//go:noescape
func sum2AVX2(dst, a, b *float64, n int)

//go:noescape
func sum4AVX2(dst, a, b, c, d *float64, n int)

//go:noescape
func subRelaxRowAVX2(o, v, x, u1, u2 *float64, n int, c *[4]float64)

//go:noescape
func addRelaxRowAVX2(o, z, x, u1, u2 *float64, n int, c *[4]float64)

//go:noescape
func addRelaxPlusRowAVX2(o, w, z, x, u1, u2 *float64, n int, c *[4]float64)
