// Package simd provides 4-wide float64 row primitives for the MG stencil
// kernels: the buffer fills and combine loops of the line-buffered form
// (internal/stencil's canonical association), vectorised with AVX2 on
// amd64 and implemented in pure Go everywhere else.
//
// # Bit-identity
//
// Every primitive evaluates, in each lane, exactly the operation tree of
// the canonical association — plain VADDPD/VMULPD, never FMA, with the
// same grouping as the scalar kernels. Lanes are independent outputs, so
// the vector and fallback paths produce bit-identical results; the
// package test asserts it on random rows. The combine rows apply all four
// coefficient terms unconditionally (like the generic O0 kernel) where
// the scalar fused kernels drop exact-zero terms — adding an exact zero
// cannot change an IEEE-754 sum, so the values still agree bit for bit.
//
// # Dispatch
//
// The AVX2 path is taken when the CPU supports it (runtime CPUID
// detection, including the OSXSAVE/XCR0 check for OS-enabled YMM state)
// and the MG_SIMD_DISABLE environment variable is unset. Otherwise every
// call transparently runs the pure-Go fallback, so callers may select the
// simd kernel variant unconditionally.
package simd

import "os"

// useAsm gates the assembly fast path. It is a variable (not a constant)
// so the package test can force the fallback and compare both paths.
var useAsm = hasAVX2() && os.Getenv("MG_SIMD_DISABLE") == ""

// Available reports whether the AVX2 path is active (supported by the
// hardware and not disabled via MG_SIMD_DISABLE). The row primitives work
// either way; this gates whether the autotuner offers the simd variant.
func Available() bool { return useAsm }

// Sum2 computes dst[i] = a[i] + b[i].
func Sum2(dst, a, b []float64) {
	i := 0
	if useAsm {
		i = sum2Asm(dst, a, b)
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + b[i]
	}
}

// Sum4 computes dst[i] = ((a[i] + b[i]) + c[i]) + d[i] — the u1/u2 buffer
// fill of the canonical association.
func Sum4(dst, a, b, c, d []float64) {
	i := 0
	if useAsm {
		i = sum4Asm(dst, a, b, c, d)
	}
	for ; i < len(dst); i++ {
		dst[i] = ((a[i] + b[i]) + c[i]) + d[i]
	}
}

// stencilAt is the shared combine tree of the relax rows: the canonical
// association over the centre row x and the u1/u2 line buffers.
func stencilAt(x, u1, u2 []float64, k int, c *[4]float64) float64 {
	s1 := (x[k-1] + x[k+1]) + u1[k]
	s2 := (u2[k] + u1[k-1]) + u1[k+1]
	s3 := u2[k-1] + u2[k+1]
	return ((c[0]*x[k] + c[1]*s1) + c[2]*s2) + c[3]*s3
}

// SubRelaxRow computes o[k] = v[k] − stencil(k) for the interior
// k ∈ [1, len(o)−1) of one grid row, where stencil(k) folds the centre
// row x and the u1/u2 line buffers in the canonical association.
func SubRelaxRow(o, v, x, u1, u2 []float64, c *[4]float64) {
	n := len(o)
	k := 1
	if useAsm && n-2 >= 4 {
		m := (n - 2) &^ 3
		subRelaxRowAVX2(&o[0], &v[0], &x[0], &u1[0], &u2[0], m, c)
		k += m
	}
	for ; k < n-1; k++ {
		o[k] = v[k] - stencilAt(x, u1, u2, k, c)
	}
}

// AddRelaxRow computes o[k] = z[k] + stencil(k) for the interior of one
// grid row.
func AddRelaxRow(o, z, x, u1, u2 []float64, c *[4]float64) {
	n := len(o)
	k := 1
	if useAsm && n-2 >= 4 {
		m := (n - 2) &^ 3
		addRelaxRowAVX2(&o[0], &z[0], &x[0], &u1[0], &u2[0], m, c)
		k += m
	}
	for ; k < n-1; k++ {
		o[k] = z[k] + stencilAt(x, u1, u2, k, c)
	}
}

// AddRelaxPlusRow computes o[k] = w[k] + (z[k] + stencil(k)) for the
// interior of one grid row — the fused MGrid correction tail.
func AddRelaxPlusRow(o, w, z, x, u1, u2 []float64, c *[4]float64) {
	n := len(o)
	k := 1
	if useAsm && n-2 >= 4 {
		m := (n - 2) &^ 3
		addRelaxPlusRowAVX2(&o[0], &w[0], &z[0], &x[0], &u1[0], &u2[0], m, c)
		k += m
	}
	for ; k < n-1; k++ {
		o[k] = w[k] + (z[k] + stencilAt(x, u1, u2, k, c))
	}
}
