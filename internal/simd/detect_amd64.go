package simd

// Implemented in cpuid_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// hasAVX2 detects AVX2 the full way: the instruction set must exist
// (CPUID.7.0:EBX bit 5), the AVX state machinery must exist (CPUID.1:ECX
// bits 27/28 — OSXSAVE and AVX), and the OS must have enabled XMM+YMM
// state saving (XCR0 bits 1/2 via XGETBV). Skipping the XCR0 check would
// fault with SIGILL on kernels that mask AVX state.
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsave = 1 << 27
	const avx = 1 << 28
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&(osxsave|avx) != osxsave|avx {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&6 != 6 {
		return false
	}
	const avx2 = 1 << 5
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&avx2 != 0
}

// sum2Asm adds the largest 4-aligned prefix with AVX2 and returns how
// many elements it handled; the caller finishes the tail in Go.
func sum2Asm(dst, a, b []float64) int {
	m := len(dst) &^ 3
	if m == 0 {
		return 0
	}
	sum2AVX2(&dst[0], &a[0], &b[0], m)
	return m
}

func sum4Asm(dst, a, b, c, d []float64) int {
	m := len(dst) &^ 3
	if m == 0 {
		return 0
	}
	sum4AVX2(&dst[0], &a[0], &b[0], &c[0], &d[0], m)
	return m
}
