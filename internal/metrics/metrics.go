// Package metrics is the observability layer of the WITH-loop runtime: a
// low-overhead collector of per-(kernel, grid-level) execution statistics
// and a structured V-cycle event tracer (trace.go).
//
// The paper's entire argument is measurement — per-class runtimes and
// multiprocessor speedups — and the per-region instrumentation literature
// (Barakhshan & Eigenmann, PAPERS.md) shows that such comparisons need
// per-kernel numbers, not end-to-end wall clock alone. This package gives
// the fused kernels, the scheduler and the autotuner one shared sink:
// invocation counts, points processed and nanoseconds per (kernel, level),
// from which the report derives effective GFLOP/s and memory bandwidth.
//
// # Sharding and the disabled fast path
//
// A Collector holds one shard per worker. A worker only ever touches its
// own shard (guarded by an uncontended per-shard mutex and padded to a
// cache line, so concurrent workers never bounce a shared line), and the
// shards are merged only at read time by Snapshot — there are no atomics
// and no shared counters on the recording path. The disabled path is a nil
// *Collector: every method is nil-safe, so instrumented code calls
// c.Record(...) unconditionally and a disabled run pays one nil check and
// zero allocations (asserted by TestMetricsDisabledZeroAlloc and the
// BenchmarkMetricsDisabled/Enabled pair in the root package).
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// Key identifies one instrumented kernel at one MG grid level (log2 of the
// interior extent), matching tune.Key.
type Key struct {
	Kernel string
	Level  int
}

// String renders e.g. "subRelax@5".
func (k Key) String() string { return fmt.Sprintf("%s@%d", k.Kernel, k.Level) }

// HistBuckets is the number of log2 duration-histogram buckets per
// (kernel, level): bucket i counts invocations with elapsed ≤ 1.024µs·2ⁱ
// (see HistBound), the last bucket catching everything beyond ~8.6s —
// comfortably past a class-C solve span. Power-of-two bounds make
// bucketing a bit-length computation instead of a search, keeping the
// enabled recording path cheap.
const HistBuckets = 24

// HistBound returns the upper bound of histogram bucket i in nanoseconds
// (1024·2ⁱ); the final bucket is unbounded.
func HistBound(i int) uint64 { return 1024 << uint(i) }

// histBucket maps an invocation duration to its bucket index: the
// smallest i with ns ≤ HistBound(i), clamped to the overflow bucket.
func histBucket(ns uint64) int {
	if ns <= 1024 {
		return 0
	}
	b := bits.Len64(ns-1) - 10
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// cell accumulates one (kernel, level) inside one shard.
type cell struct {
	invocations uint64
	points      uint64
	nanos       uint64
	variant     string // last recorded kernel variant; "" = none reported
	hist        [HistBuckets]uint64
}

// shard is the private accumulator of one worker. The mutex is uncontended
// by construction (only worker w records into shard w; Snapshot locks all
// shards at read time) and the padding keeps neighbouring shards off the
// same cache line.
type shard struct {
	mu      sync.Mutex
	kernels map[Key]*cell
	loops   uint64 // parallel loop executions this worker took part in
	busy    uint64 // nanoseconds spent inside those loop bodies
	_       [64]byte
}

// Collector accumulates per-(kernel, level) statistics across workers.
// The zero value is not usable; use NewCollector. A nil *Collector is the
// disabled collector: every method is a cheap no-op.
type Collector struct {
	shards []shard
}

// NewCollector creates a collector for a pool of the given worker count
// (workers < 1 is treated as 1). Worker indices passed to Record wrap
// around the shard count, so a collector can safely outlive pool resizes.
func NewCollector(workers int) *Collector {
	if workers < 1 {
		workers = 1
	}
	c := &Collector{shards: make([]shard, workers)}
	for i := range c.shards {
		c.shards[i].kernels = map[Key]*cell{}
	}
	return c
}

// Record adds one finished kernel invocation to worker's shard: points
// index vectors processed in elapsed wall time. Record on a nil collector
// is a no-op and allocates nothing.
func (c *Collector) Record(worker int, kernel string, level int, points int64, elapsed time.Duration) {
	c.RecordVariant(worker, kernel, level, "", points, elapsed)
}

// RecordVariant is Record for kernels with multiple inner-loop backends:
// variant names the one this invocation dispatched to (tune's
// scalar/buffered/simd). The row remembers the latest non-empty variant —
// during tuner calibration invocations alternate backends, so the
// remembered value converges to the settled choice; a snapshot taken
// mid-calibration reports the variant most recently tried.
func (c *Collector) RecordVariant(worker int, kernel string, level int, variant string, points int64, elapsed time.Duration) {
	if c == nil {
		return
	}
	s := &c.shards[worker%len(c.shards)]
	key := Key{Kernel: kernel, Level: level}
	s.mu.Lock()
	cl := s.kernels[key]
	if cl == nil {
		cl = &cell{}
		s.kernels[key] = cl
	}
	cl.invocations++
	cl.points += uint64(points)
	cl.nanos += uint64(elapsed)
	if variant != "" {
		cl.variant = variant
	}
	cl.hist[histBucket(uint64(elapsed))]++
	s.mu.Unlock()
}

// RecordBusy adds one parallel-loop participation of worker: elapsed wall
// time spent inside the loop body (sched.Pool calls this once per worker
// per fan-out). RecordBusy on a nil collector is a no-op.
func (c *Collector) RecordBusy(worker int, elapsed time.Duration) {
	if c == nil {
		return
	}
	s := &c.shards[worker%len(c.shards)]
	s.mu.Lock()
	s.loops++
	s.busy += uint64(elapsed)
	s.mu.Unlock()
}

// Reset clears every shard.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.kernels = map[Key]*cell{}
		s.loops, s.busy = 0, 0
		s.mu.Unlock()
	}
}

// KernelStat is the merged statistic of one (kernel, level). Hist is the
// per-bucket (non-cumulative) invocation-duration histogram; bucket i's
// upper bound is HistBound(i) nanoseconds.
type KernelStat struct {
	Kernel      string `json:"kernel"`
	Level       int    `json:"level"`
	Invocations uint64 `json:"invocations"`
	Points      uint64 `json:"points"`
	Nanos       uint64 `json:"nanos"`
	// Variant is the kernel backend the invocations dispatched to
	// (RecordVariant); empty for kernels with a single backend.
	Variant string   `json:"variant,omitempty"`
	Hist    []uint64 `json:"hist,omitempty"`
}

// Seconds returns the accumulated wall time.
func (k KernelStat) Seconds() float64 { return float64(k.Nanos) / 1e9 }

// GFLOPS derives the effective arithmetic rate from a per-point flop cost.
func (k KernelStat) GFLOPS(flopsPerPoint float64) float64 {
	if k.Nanos == 0 {
		return 0
	}
	return float64(k.Points) * flopsPerPoint / float64(k.Nanos)
}

// GBPerSec derives the effective memory bandwidth from a per-point byte
// cost (unique traffic: each stream counted once, not per stencil read).
func (k KernelStat) GBPerSec(bytesPerPoint float64) float64 {
	if k.Nanos == 0 {
		return 0
	}
	return float64(k.Points) * bytesPerPoint / float64(k.Nanos)
}

// WorkerStat is the merged per-worker scheduler statistic.
type WorkerStat struct {
	Worker    int    `json:"worker"`
	Loops     uint64 `json:"loops"`
	BusyNanos uint64 `json:"busyNanos"`
}

// Snapshot is a merged, read-only view of a collector, ordered by kernel
// name then level. It marshals cleanly to JSON (the expvar endpoint of
// cmd/mg publishes it).
type Snapshot struct {
	Kernels []KernelStat `json:"kernels"`
	Workers []WorkerStat `json:"workers"`
}

// Snapshot merges all shards. It is the only operation that crosses
// shards; recording continues unhindered on other workers.
func (c *Collector) Snapshot() Snapshot {
	var snap Snapshot
	if c == nil {
		return snap
	}
	merged := map[Key]*KernelStat{}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, cl := range s.kernels {
			m := merged[key]
			if m == nil {
				m = &KernelStat{Kernel: key.Kernel, Level: key.Level,
					Hist: make([]uint64, HistBuckets)}
				merged[key] = m
			}
			m.Invocations += cl.invocations
			m.Points += cl.points
			m.Nanos += cl.nanos
			if cl.variant != "" {
				m.Variant = cl.variant
			}
			for b, n := range cl.hist {
				m.Hist[b] += n
			}
		}
		if s.loops > 0 {
			snap.Workers = append(snap.Workers, WorkerStat{Worker: i, Loops: s.loops, BusyNanos: s.busy})
		}
		s.mu.Unlock()
	}
	for _, m := range merged {
		snap.Kernels = append(snap.Kernels, *m)
	}
	sort.Slice(snap.Kernels, func(i, j int) bool {
		a, b := snap.Kernels[i], snap.Kernels[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		return a.Level < b.Level
	})
	return snap
}

// Cost is the per-point work model of one kernel, used to derive the
// GFLOP/s and bandwidth columns of the report.
type Cost struct {
	// Flops is the floating-point operations per output point.
	Flops float64
	// Bytes is the unique memory traffic per output point (each input and
	// output stream counted once — the cache-resident stencil re-reads are
	// excluded, so the column reads as effective bandwidth).
	Bytes float64
}

// CostModel resolves the per-point work model of one kernel row given
// the backend variant its invocations dispatched to (KernelStat.Variant;
// core.KernelCost is the canonical implementation). A zero Cost means
// "no model": the row gets no derived throughput columns.
type CostModel func(kernel, variant string) Cost

// CostMap adapts a variant-blind per-kernel cost table to a CostModel.
func CostMap(m map[string]Cost) CostModel {
	return func(kernel, _ string) Cost { return m[kernel] }
}

// TotalKernel is the pseudo-kernel name under which whole-solve spans are
// recorded (core.Benchmark.Solve); Coverage measures every other kernel
// against it.
const TotalKernel = "solve"

// Coverage reports which fraction of the accumulated TotalKernel time the
// remaining kernels account for — the "do the per-kernel numbers explain
// the end-to-end time" check. ok is false when no solve span was recorded.
func (s Snapshot) Coverage() (fraction float64, ok bool) {
	var kernelNanos, totalNanos uint64
	for _, k := range s.Kernels {
		if k.Kernel == TotalKernel {
			totalNanos += k.Nanos
		} else {
			kernelNanos += k.Nanos
		}
	}
	if totalNanos == 0 {
		return 0, false
	}
	return float64(kernelNanos) / float64(totalNanos), true
}

// WriteReport renders the per-(kernel, level) table. costs supplies the
// per-point work model per (kernel, variant); rows resolving to a zero
// Cost get no derived columns. A coverage line follows when a solve span
// was recorded.
func (s Snapshot) WriteReport(w io.Writer, costs CostModel) {
	fmt.Fprintf(w, "Per-kernel metrics\n")
	fmt.Fprintf(w, "%-18s %6s %9s %8s %14s %12s %9s %8s\n",
		"kernel", "level", "variant", "calls", "points", "ms", "GFLOP/s", "GB/s")
	for _, k := range s.Kernels {
		line := fmt.Sprintf("%-18s %6d %9s %8d %14d %12.3f", k.Kernel, k.Level,
			k.Variant, k.Invocations, k.Points, k.Seconds()*1e3)
		if cost := costs(k.Kernel, k.Variant); cost != (Cost{}) {
			line += fmt.Sprintf(" %9.2f %8.2f", k.GFLOPS(cost.Flops), k.GBPerSec(cost.Bytes))
		}
		fmt.Fprintln(w, line)
	}
	if frac, ok := s.Coverage(); ok {
		fmt.Fprintf(w, "kernel coverage: %.1f%% of solve time\n", frac*100)
	}
	for _, ws := range s.Workers {
		fmt.Fprintf(w, "worker %2d: %6d parallel loops, %10.3f ms busy\n",
			ws.Worker, ws.Loops, float64(ws.BusyNanos)/1e6)
	}
}
