// Cross-rank communication analysis (DESIGN.md §3.5): pairing the
// send/recv events of a merged multi-rank trace, estimating per-rank
// clock offsets from symmetric exchanges, and the skew/overlap report
// behind `mgtrace -commreport` and `mgbench -fig comm`.
//
// # Pairing
//
// Both transports deliver per-(pair, direction) FIFO, and the mgmpi
// observer numbers each (peer, tag) stream independently on both sides,
// so (src, dst, tag, seq) identifies one message globally: the n-th send
// of a stream is consumed by the n-th matching recv. Pairing is a map
// join, no heuristics.
//
// # Clock offsets
//
// Each rank's tracer stamps T relative to its own epoch (process start);
// merged traces therefore disagree by an unknown per-rank offset. For a
// pair of ranks exchanging messages both ways, the classic NTP argument
// applies: for a message a→b, recvEnd_b − sendEnd_a = latency + off_a −
// off_b (in the convention global = local + off). Taking the minimum
// over many messages approaches minLatency + (off_a − off_b); doing the
// same for b→a and halving the difference cancels the (assumed
// symmetric) minimum latency:
//
//	rel(a,b) = off_a − off_b ≈ (min_ab − min_ba) / 2
//
// which is exactly antisymmetric by construction. Offsets are anchored
// at the lowest rank (offset 0) and propagated breadth-first over the
// exchange graph; ranks unreachable through paired traffic fall back to
// aligning their "hello" rendezvous anchors (the bootstrap completes
// within one round-trip on every rank).
//
// # Skew and overlap
//
// Blocked time is the wall time inside Send/Recv (the event's Nanos).
// The report attributes it per (rank, level) against the per-level
// kernel spans, names the per-iteration straggler — the rank that
// waited least, i.e. the one everyone else's halo receives waited for —
// and computes overlap efficiency: 1 − exposed/window, where exposed
// sums both calls' blocked time and window spans send-start to recv-end
// on the aligned timeline. A fully synchronous exchange hides nothing
// (efficiency ≈ 0); overlapping communication with compute pushes it
// toward 1. FW-3c records today's synchronous baseline.
package metrics

import (
	"fmt"
	"io"
	"sort"
)

// CommPair is one matched send/recv event pair on the merged timeline.
// The end stamps are in each side's local clock (the event T).
type CommPair struct {
	Src, Dst, Tag, Level, Iter int
	Seq                        uint64
	Bytes                      int64
	SendEndNs, RecvEndNs       int64 // local-clock emit stamps
	SendNanos, RecvNanos       int64 // blocked time inside each call
}

type commPairKey struct {
	src, dst, tag int
	seq           uint64
}

// PairComms joins the send and recv events of a merged trace by
// (src, dst, tag, seq). It returns the matched pairs plus the events
// that found no counterpart (either side); a clean run has none.
func PairComms(events []Event) (pairs []CommPair, unmatchedSends, unmatchedRecvs []Event) {
	sends := map[commPairKey]Event{}
	dupSends := []Event{}
	for _, e := range events {
		if e.Ev != "send" {
			continue
		}
		k := commPairKey{e.Rank, e.Peer, e.Tag, e.Seq}
		if _, dup := sends[k]; dup {
			dupSends = append(dupSends, e)
			continue
		}
		sends[k] = e
	}
	for _, e := range events {
		if e.Ev != "recv" {
			continue
		}
		k := commPairKey{e.Peer, e.Rank, e.Tag, e.Seq}
		s, ok := sends[k]
		if !ok {
			unmatchedRecvs = append(unmatchedRecvs, e)
			continue
		}
		delete(sends, k)
		pairs = append(pairs, CommPair{
			Src: s.Rank, Dst: e.Rank, Tag: s.Tag, Level: s.Level, Iter: s.Iter,
			Seq: s.Seq, Bytes: s.Bytes,
			SendEndNs: s.T, RecvEndNs: e.T,
			SendNanos: s.Nanos, RecvNanos: e.Nanos,
		})
	}
	for _, s := range sends {
		unmatchedSends = append(unmatchedSends, s)
	}
	unmatchedSends = append(unmatchedSends, dupSends...)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].SendEndNs < pairs[j].SendEndNs })
	return pairs, unmatchedSends, unmatchedRecvs
}

// RankOffset is one rank's estimated clock offset: add OffsetNanos to
// the rank's local T to land on the merged timeline (the anchor rank
// keeps offset 0). Samples counts the paired messages that informed the
// estimate (0 = hello-anchor or anchor-rank fallback).
type RankOffset struct {
	Rank        int   `json:"rank"`
	OffsetNanos int64 `json:"offsetNs"`
	Samples     int   `json:"samples"`
}

// RelativeOffset estimates rel(a,b) = off_a − off_b from the pairs
// exchanged between ranks a and b (both directions required) and
// reports how many pairs informed it. The estimator is exactly
// antisymmetric: RelativeOffset(p, b, a) = −RelativeOffset(p, a, b).
func RelativeOffset(pairs []CommPair, a, b int) (offsetNs int64, samples int) {
	const unset = int64(1)<<62 - 1
	minAB, minBA := unset, unset
	nAB, nBA := 0, 0
	for _, p := range pairs {
		switch {
		case p.Src == a && p.Dst == b:
			if d := p.RecvEndNs - p.SendEndNs; d < minAB {
				minAB = d
			}
			nAB++
		case p.Src == b && p.Dst == a:
			if d := p.RecvEndNs - p.SendEndNs; d < minBA {
				minBA = d
			}
			nBA++
		}
	}
	if nAB == 0 || nBA == 0 {
		return 0, 0
	}
	return (minAB - minBA) / 2, nAB + nBA
}

// EstimateOffsets estimates every rank's clock offset from a merged
// trace: pair the comm events, compute relative offsets per exchanging
// rank pair, anchor the lowest rank at 0 and propagate breadth-first.
// Ranks not reachable through paired traffic fall back to aligning
// their "hello" anchors with the anchor rank's (offset 0 if neither
// exists — for a single-process channel-world trace all offsets are 0
// by construction up to estimator noise).
func EstimateOffsets(events []Event) []RankOffset {
	pairs, _, _ := PairComms(events)
	rankSet := map[int]bool{}
	hello := map[int]int64{}
	for _, e := range events {
		rankSet[e.Rank] = true
		if e.Ev == "hello" {
			hello[e.Rank] = e.T
		}
	}
	if len(rankSet) == 0 {
		return nil
	}
	ranks := make([]int, 0, len(rankSet))
	for r := range rankSet {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	anchor := ranks[0]

	type edge struct {
		to      int
		rel     int64 // off_from − off_to
		samples int
	}
	adj := map[int][]edge{}
	for i, a := range ranks {
		for _, b := range ranks[i+1:] {
			rel, n := RelativeOffset(pairs, a, b)
			if n == 0 {
				continue
			}
			adj[a] = append(adj[a], edge{to: b, rel: rel, samples: n})
			adj[b] = append(adj[b], edge{to: a, rel: -rel, samples: n})
		}
	}

	off := map[int]RankOffset{anchor: {Rank: anchor}}
	queue := []int{anchor}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for _, e := range adj[a] {
			if _, seen := off[e.to]; seen {
				continue
			}
			// rel = off_a − off_to, so off_to = off_a − rel.
			off[e.to] = RankOffset{Rank: e.to, OffsetNanos: off[a].OffsetNanos - e.rel, Samples: e.samples}
			queue = append(queue, e.to)
		}
	}
	out := make([]RankOffset, 0, len(ranks))
	for _, r := range ranks {
		o, ok := off[r]
		if !ok {
			o = RankOffset{Rank: r}
			if hr, okr := hello[r]; okr {
				if ha, oka := hello[anchor]; oka {
					// Align the rendezvous anchors: both hellos mark the
					// same barrier-like instant, the bootstrap completion.
					o.OffsetNanos = ha - hr
				}
			}
		}
		out = append(out, o)
	}
	return out
}

// OffsetMap flattens RankOffsets into the rank → offset form the
// Perfetto alignment consumes.
func OffsetMap(offs []RankOffset) map[int]int64 {
	m := make(map[int]int64, len(offs))
	for _, o := range offs {
		m[o.Rank] = o.OffsetNanos
	}
	return m
}

// CommLevelStat attributes one (rank, level)'s communication against its
// per-level kernel time.
type CommLevelStat struct {
	Rank         int   `json:"rank"`
	Level        int   `json:"level"`
	Sends        int   `json:"sends"`
	Recvs        int   `json:"recvs"`
	Bytes        int64 `json:"bytes"` // payload, both directions
	BlockedNanos int64 `json:"blockedNs"`
	KernelNanos  int64 `json:"kernelNs"`
}

// CommIterStat names the straggler of one V-cycle iteration: the rank
// that spent the least time blocked — the one whose data everyone else's
// receives waited for.
type CommIterStat struct {
	Iter            int   `json:"iter"`
	Straggler       int   `json:"straggler"`
	MinBlockedNanos int64 `json:"minBlockedNs"`
	MaxBlockedNanos int64 `json:"maxBlockedNs"`
	SkewNanos       int64 `json:"skewNs"` // max − min per-rank blocked
}

// CommReport is the skew/overlap analysis of one merged multi-rank trace
// (BuildCommReport). The FW-3c baseline in EXPERIMENTS.md records its
// synchronous-path numbers.
type CommReport struct {
	Ranks          int `json:"ranks"`
	Iterations     int `json:"iterations"`
	Sends          int `json:"sends"`
	Recvs          int `json:"recvs"`
	Matched        int `json:"matched"`
	UnmatchedSends int `json:"unmatchedSends"`
	UnmatchedRecvs int `json:"unmatchedRecvs"`

	TotalBlockedNanos int64   `json:"totalBlockedNs"`
	SolveNanos        int64   `json:"solveNs,omitempty"`
	CommShare         float64 `json:"commShare,omitempty"` // blocked / (ranks × solve wall)

	// ExposedNanos is the blocked time inside Send/Recv across all
	// pairs; WindowNanos the aligned send-start → recv-end extents.
	// OverlapEfficiency = 1 − exposed/window, ≈ 0 for the synchronous
	// exchange (nothing hidden), → 1 when comm hides behind compute.
	ExposedNanos      int64   `json:"exposedNs"`
	WindowNanos       int64   `json:"windowNs"`
	OverlapEfficiency float64 `json:"overlapEfficiency"`

	Offsets []RankOffset    `json:"offsets"`
	Levels  []CommLevelStat `json:"levels"`
	Iters   []CommIterStat  `json:"iters"`
}

// BuildCommReport pairs the comm events of a merged trace and derives
// the skew/overlap report.
func BuildCommReport(events []Event) CommReport {
	pairs, unmatchedS, unmatchedR := PairComms(events)
	offsets := EstimateOffsets(events)
	offMap := OffsetMap(offsets)

	var rep CommReport
	rep.Offsets = offsets
	rep.Matched = len(pairs)
	rep.UnmatchedSends = len(unmatchedS)
	rep.UnmatchedRecvs = len(unmatchedR)

	type rl struct{ rank, level int }
	levels := map[rl]*CommLevelStat{}
	levelOf := func(rank, level int) *CommLevelStat {
		s := levels[rl{rank, level}]
		if s == nil {
			s = &CommLevelStat{Rank: rank, Level: level}
			levels[rl{rank, level}] = s
		}
		return s
	}
	type ir struct{ iter, rank int }
	iterBlocked := map[ir]int64{}
	rankSet := map[int]bool{}

	for _, e := range events {
		rankSet[e.Rank] = true
		switch e.Ev {
		case "send":
			rep.Sends++
			s := levelOf(e.Rank, e.Level)
			s.Sends++
			s.Bytes += e.Bytes
			s.BlockedNanos += e.Nanos
			rep.TotalBlockedNanos += e.Nanos
			if e.Iter > 0 {
				iterBlocked[ir{e.Iter, e.Rank}] += e.Nanos
			}
			if e.Iter > rep.Iterations {
				rep.Iterations = e.Iter
			}
		case "recv":
			rep.Recvs++
			s := levelOf(e.Rank, e.Level)
			s.Recvs++
			s.Bytes += e.Bytes
			s.BlockedNanos += e.Nanos
			rep.TotalBlockedNanos += e.Nanos
			if e.Iter > 0 {
				iterBlocked[ir{e.Iter, e.Rank}] += e.Nanos
			}
			if e.Iter > rep.Iterations {
				rep.Iterations = e.Iter
			}
		case "span":
			// Per-level kernel spans; the mg3P envelope span would double
			// count its children and stays out.
			if e.Kernel != "" && e.Kernel != "mg3P" {
				levelOf(e.Rank, e.Level).KernelNanos += e.Nanos
			}
		case "solve":
			if e.Nanos > rep.SolveNanos {
				rep.SolveNanos = e.Nanos
			}
		}
	}
	rep.Ranks = len(rankSet)

	for _, s := range levels {
		rep.Levels = append(rep.Levels, *s)
	}
	sort.Slice(rep.Levels, func(i, j int) bool {
		a, b := rep.Levels[i], rep.Levels[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Level > b.Level // finest first, like the V-cycle
	})

	for it := 1; it <= rep.Iterations; it++ {
		st := CommIterStat{Iter: it, Straggler: -1}
		first := true
		for r := range rankSet {
			b := iterBlocked[ir{it, r}]
			if first || b < st.MinBlockedNanos {
				st.MinBlockedNanos = b
				st.Straggler = r
			}
			if first || b > st.MaxBlockedNanos {
				st.MaxBlockedNanos = b
			}
			first = false
		}
		st.SkewNanos = st.MaxBlockedNanos - st.MinBlockedNanos
		rep.Iters = append(rep.Iters, st)
	}

	for _, p := range pairs {
		exposed := p.SendNanos + p.RecvNanos
		window := (p.RecvEndNs + offMap[p.Dst]) - (p.SendEndNs - p.SendNanos + offMap[p.Src])
		if window < exposed {
			// Residual clock error can shrink a window below the time
			// provably spent inside the calls; clamp so the efficiency
			// stays in [0, 1].
			window = exposed
		}
		rep.ExposedNanos += exposed
		rep.WindowNanos += window
	}
	if rep.WindowNanos > 0 {
		rep.OverlapEfficiency = 1 - float64(rep.ExposedNanos)/float64(rep.WindowNanos)
	}
	if rep.SolveNanos > 0 && rep.Ranks > 0 {
		rep.CommShare = float64(rep.TotalBlockedNanos) / (float64(rep.Ranks) * float64(rep.SolveNanos))
	}
	return rep
}

// WriteText renders the comm report. The CI distributed job greps this
// output for "unmatched send/recv pairs: 0" and the per-iteration
// "straggler rank" lines — keep both phrasings stable.
func (r CommReport) WriteText(w io.Writer) {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Fprintf(w, "Distributed comm report: %d ranks, %d iterations, %d matched pairs\n",
		r.Ranks, r.Iterations, r.Matched)
	fmt.Fprintf(w, "unmatched send/recv pairs: %d (sends %d, recvs %d)\n",
		r.UnmatchedSends+r.UnmatchedRecvs, r.UnmatchedSends, r.UnmatchedRecvs)
	fmt.Fprintf(w, "clock offsets (add to local time; anchor = lowest rank):\n")
	for _, o := range r.Offsets {
		src := fmt.Sprintf("%d paired messages", o.Samples)
		if o.Samples == 0 {
			src = "anchor/hello fallback"
		}
		fmt.Fprintf(w, "  rank %d: %+0.3f ms (%s)\n", o.Rank, ms(o.OffsetNanos), src)
	}
	fmt.Fprintf(w, "per-(rank, level) comm vs compute:\n")
	fmt.Fprintf(w, "  %-5s %-6s %7s %7s %10s %12s %12s\n",
		"rank", "level", "sends", "recvs", "KiB", "blocked ms", "kernel ms")
	for _, s := range r.Levels {
		fmt.Fprintf(w, "  %-5d %-6d %7d %7d %10.1f %12.3f %12.3f\n",
			s.Rank, s.Level, s.Sends, s.Recvs, float64(s.Bytes)/1024, ms(s.BlockedNanos), ms(s.KernelNanos))
	}
	for _, it := range r.Iters {
		fmt.Fprintf(w, "iteration %d: straggler rank %d (blocked min %.3f ms, max %.3f ms, skew %.3f ms)\n",
			it.Iter, it.Straggler, ms(it.MinBlockedNanos), ms(it.MaxBlockedNanos), ms(it.SkewNanos))
	}
	fmt.Fprintf(w, "overlap efficiency: %.3f (exposed %.3f ms of %.3f ms aligned comm windows)\n",
		r.OverlapEfficiency, ms(r.ExposedNanos), ms(r.WindowNanos))
	if r.SolveNanos > 0 {
		// Blocked time also covers the setup exchange (scatter/broadcast
		// before the timed solve), so the share can exceed 100%.
		fmt.Fprintf(w, "total blocked: %.3f ms incl. setup; solve wall %.3f ms; comm share %.1f%% of %d × wall\n",
			ms(r.TotalBlockedNanos), ms(r.SolveNanos), 100*r.CommShare, r.Ranks)
	} else {
		fmt.Fprintf(w, "total blocked: %.3f ms\n", ms(r.TotalBlockedNanos))
	}
}
