package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndSnapshot(t *testing.T) {
	c := NewCollector(4)
	c.Record(0, "subRelax", 5, 1000, 2*time.Microsecond)
	c.Record(1, "subRelax", 5, 1000, 3*time.Microsecond)
	c.Record(0, "subRelax", 4, 125, time.Microsecond)
	c.Record(2, "interpolate", 5, 8000, 4*time.Microsecond)

	snap := c.Snapshot()
	if len(snap.Kernels) != 3 {
		t.Fatalf("got %d merged kernels, want 3: %+v", len(snap.Kernels), snap.Kernels)
	}
	// Sorted by kernel then level: interpolate@5, subRelax@4, subRelax@5.
	if snap.Kernels[0].Kernel != "interpolate" || snap.Kernels[1].Level != 4 {
		t.Fatalf("unexpected order: %+v", snap.Kernels)
	}
	sr := snap.Kernels[2]
	if sr.Invocations != 2 || sr.Points != 2000 || sr.Nanos != 5000 {
		t.Fatalf("subRelax@5 merged wrong: %+v", sr)
	}
}

func TestRecordConcurrent(t *testing.T) {
	const workers, perWorker = 8, 1000
	c := NewCollector(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Record(w, "k", 3, 10, time.Nanosecond)
				c.RecordBusy(w, time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	snap := c.Snapshot()
	if len(snap.Kernels) != 1 || snap.Kernels[0].Invocations != workers*perWorker {
		t.Fatalf("lost records: %+v", snap.Kernels)
	}
	if len(snap.Workers) != workers {
		t.Fatalf("got %d worker rows, want %d", len(snap.Workers), workers)
	}
	for _, ws := range snap.Workers {
		if ws.Loops != perWorker {
			t.Fatalf("worker %d: %d loops, want %d", ws.Worker, ws.Loops, perWorker)
		}
	}
}

func TestDerivedRates(t *testing.T) {
	k := KernelStat{Points: 1e9, Nanos: 1e9} // 1 Gpoint in 1 s
	if got := k.GFLOPS(24); got != 24 {
		t.Fatalf("GFLOPS = %v, want 24", got)
	}
	if got := k.GBPerSec(24); got != 24 {
		t.Fatalf("GB/s = %v, want 24", got)
	}
	var zero KernelStat
	if zero.GFLOPS(24) != 0 || zero.GBPerSec(24) != 0 {
		t.Fatal("zero-time stats must not divide by zero")
	}
}

func TestCoverage(t *testing.T) {
	c := NewCollector(1)
	if _, ok := c.Snapshot().Coverage(); ok {
		t.Fatal("coverage without a solve span should be not-ok")
	}
	c.Record(0, TotalKernel, 5, 100, 100*time.Millisecond)
	c.Record(0, "subRelax", 5, 100, 90*time.Millisecond)
	frac, ok := c.Snapshot().Coverage()
	if !ok || frac < 0.89 || frac > 0.91 {
		t.Fatalf("coverage = %v ok=%v, want ~0.9", frac, ok)
	}
}

// RecordVariant stamps the row with the dispatched backend; the latest
// non-empty variant wins (mid-calibration the backends alternate), and
// the cost model sees it when deriving throughput.
func TestRecordVariant(t *testing.T) {
	c := NewCollector(2)
	c.RecordVariant(0, "subRelax", 5, "scalar", 100, time.Millisecond)
	c.RecordVariant(0, "subRelax", 5, "buffered", 100, time.Millisecond)
	c.Record(0, "comm3", 5, 100, time.Millisecond)
	snap := c.Snapshot()
	byKernel := map[string]KernelStat{}
	for _, k := range snap.Kernels {
		byKernel[k.Kernel] = k
	}
	if got := byKernel["subRelax"].Variant; got != "buffered" {
		t.Fatalf("subRelax variant = %q, want latest %q", got, "buffered")
	}
	if got := byKernel["comm3"].Variant; got != "" {
		t.Fatalf("comm3 variant = %q, want empty (plain Record)", got)
	}
	var seen []string
	var buf bytes.Buffer
	snap.WriteReport(&buf, func(kernel, variant string) Cost {
		seen = append(seen, kernel+"/"+variant)
		return Cost{}
	})
	want := "subRelax/buffered"
	ok := false
	for _, s := range seen {
		ok = ok || s == want
	}
	if !ok {
		t.Fatalf("cost model never saw %q; calls: %v", want, seen)
	}
}

func TestResetAndWriteReport(t *testing.T) {
	c := NewCollector(2)
	c.Record(0, "subRelax", 5, 100, time.Millisecond)
	c.Record(0, TotalKernel, 5, 100, 2*time.Millisecond)
	var buf bytes.Buffer
	c.Snapshot().WriteReport(&buf, CostMap(map[string]Cost{"subRelax": {Flops: 24, Bytes: 24}}))
	out := buf.String()
	for _, want := range []string{"subRelax", "kernel coverage", "GFLOP/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	c.Reset()
	if snap := c.Snapshot(); len(snap.Kernels) != 0 || len(snap.Workers) != 0 {
		t.Fatalf("reset left data: %+v", snap)
	}
}

func TestSnapshotMarshalsToJSON(t *testing.T) {
	c := NewCollector(1)
	c.Record(0, "subRelax", 5, 100, time.Millisecond)
	c.RecordBusy(0, time.Millisecond)
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	if !strings.Contains(string(b), `"kernel":"subRelax"`) {
		t.Fatalf("unexpected JSON: %s", b)
	}
}

func TestTracerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Event{Ev: "level", Level: 5, Dir: "down"})
	tr.Emit(Event{Ev: "span", Kernel: "resid", Level: 5, Nanos: 1234})
	tr.Emit(Event{Ev: "solve", Nanos: 5678, Rnm2: 0.5e-4})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 3 {
		t.Fatalf("Events() = %d, want 3", tr.Events())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		if ev.Ev == "" {
			t.Fatalf("line %q has no event kind", line)
		}
	}
}

// TestMetricsDisabledZeroAlloc pins the disabled fast path: a nil
// collector and a nil tracer must record and emit for free — 0 bytes per
// operation (the acceptance criterion of the observability layer). The
// nil contract propagates through ForJob, so a daemon without -trace
// pays the same zero on every per-job view.
func TestMetricsDisabledZeroAlloc(t *testing.T) {
	var c *Collector
	var tr *Tracer
	view := tr.ForJob("00112233445566778899aabbccddeeff", "deadbeef")
	if view != nil {
		t.Fatal("ForJob on a nil tracer must return nil")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Record(0, "subRelax", 5, 1000, time.Microsecond)
		c.RecordBusy(0, time.Microsecond)
		tr.Emit(Event{Ev: "span", Kernel: "resid", Level: 5, Nanos: 1000})
		view.Emit(Event{Ev: "stage", Stage: "queue", Nanos: 1000})
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics path allocates %v bytes/op, want 0", allocs)
	}
}

// TestTracerForJobTagging pins the per-job view semantics: a view stamps
// its trace/job tags on every event (an event's own tags win), views
// share their parent's stream and counters, and the untagged root
// tracer's output is unchanged — no trace/job keys appear in its JSON,
// so one-shot CLI traces stay byte-compatible.
func TestTracerForJobTagging(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	view := tr.ForJob("11111111111111111111111111111111", "job1")
	tr.Emit(Event{Ev: "iter", Iter: 1})
	view.Emit(Event{Ev: "stage", Stage: "queue", Nanos: 10})
	view.Emit(Event{Ev: "span", Kernel: "resid", Level: 3, Nanos: 20})
	view.Emit(Event{Ev: "stage", Stage: "solve", Nanos: 30, Trace: "2222", Job: "job2"})
	if tr.Events() != 4 {
		t.Fatalf("shared stream counts %d events, want 4", tr.Events())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Trace != "" || events[0].Job != "" {
		t.Fatalf("root tracer event grew tags: %+v", events[0])
	}
	if strings.Contains(strings.Split(buf.String(), "\n")[0], "trace") {
		t.Fatalf("untagged event serializes trace keys: %s", strings.Split(buf.String(), "\n")[0])
	}
	for _, e := range events[1:3] {
		if e.Trace != "11111111111111111111111111111111" || e.Job != "job1" {
			t.Fatalf("view event not tagged: %+v", e)
		}
	}
	if events[3].Trace != "2222" || events[3].Job != "job2" {
		t.Fatalf("event's own tags must win over the view's: %+v", events[3])
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Record(0, "subRelax", 5, 1000, time.Microsecond)
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	c := NewCollector(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Record(0, "subRelax", 5, 1000, time.Microsecond)
	}
}

// The coverage gauge must aggregate across levels and workers: rows from
// different shards and grid levels all count against the one solve span.
func TestCoverageAcrossWorkersAndLevels(t *testing.T) {
	c := NewCollector(4)
	c.Record(0, TotalKernel, 5, 1000, 100*time.Millisecond)
	c.Record(0, "subRelax", 5, 400, 30*time.Millisecond)
	c.Record(1, "subRelax", 4, 300, 20*time.Millisecond)
	c.Record(2, "addRelax", 3, 200, 10*time.Millisecond)
	c.Record(3, "interpolate", 2, 100, 20*time.Millisecond)
	frac, ok := c.Snapshot().Coverage()
	if !ok || frac < 0.799 || frac > 0.801 {
		t.Fatalf("coverage = %v ok=%v, want 0.8", frac, ok)
	}
	// More than one solve span (repeated Solve calls) keeps the ratio.
	c.Record(1, TotalKernel, 5, 1000, 100*time.Millisecond)
	c.Record(0, "subRelax", 5, 400, 80*time.Millisecond)
	frac, ok = c.Snapshot().Coverage()
	if !ok || frac < 0.799 || frac > 0.801 {
		t.Fatalf("coverage after second solve = %v ok=%v, want 0.8", frac, ok)
	}
}
