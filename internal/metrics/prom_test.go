package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// promSnapshot builds a small collector snapshot with two kernels and two
// workers for the exposition tests.
func promSnapshot() Snapshot {
	c := NewCollector(2)
	c.Record(0, "subRelax", 5, 27000, 2*time.Millisecond)
	c.Record(1, "subRelax", 5, 27000, 3*time.Millisecond)
	c.Record(0, "addRelax", 4, 8000, 500*time.Microsecond)
	c.Record(0, TotalKernel, 5, 100000, 10*time.Millisecond)
	c.RecordBusy(0, 4*time.Millisecond)
	c.RecordBusy(1, 2*time.Millisecond)
	return c.Snapshot()
}

func TestPrometheusRoundTrip(t *testing.T) {
	snap := promSnapshot()
	costs := CostMap(map[string]Cost{"subRelax": {Flops: 24, Bytes: 24}})
	var buf bytes.Buffer
	snap.WritePrometheus(&buf, costs)

	samples, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	idx := PromIndex(samples)

	// The counters must round-trip exactly.
	find := func(name, kernel, level string) PromSample {
		t.Helper()
		for _, s := range idx[name] {
			if s.Label("kernel") == kernel && s.Label("level") == level {
				return s
			}
		}
		t.Fatalf("no sample %s{kernel=%q,level=%q} in:\n%s", name, kernel, level, buf.String())
		return PromSample{}
	}
	if v := find("mg_kernel_invocations_total", "subRelax", "5").Value; v != 2 {
		t.Fatalf("subRelax@5 invocations = %g, want 2", v)
	}
	if v := find("mg_kernel_points_total", "subRelax", "5").Value; v != 54000 {
		t.Fatalf("subRelax@5 points = %g, want 54000", v)
	}
	if v := find("mg_kernel_seconds_total", "subRelax", "5").Value; v != 0.005 {
		t.Fatalf("subRelax@5 seconds = %g, want 0.005", v)
	}
	if v := find("mg_kernel_gflops", "subRelax", "5").Value; v <= 0 {
		t.Fatalf("subRelax@5 gflops = %g, want > 0", v)
	}

	// Histogram invariants: buckets cumulative, count matches, +Inf last.
	var cum float64 = -1
	var infSeen bool
	for _, s := range idx["mg_kernel_duration_seconds_bucket"] {
		if s.Label("kernel") != "subRelax" || s.Label("level") != "5" {
			continue
		}
		if s.Value < cum {
			t.Fatalf("histogram bucket not cumulative: %g after %g", s.Value, cum)
		}
		cum = s.Value
		if s.Label("le") == "+Inf" {
			infSeen = true
			if s.Value != 2 {
				t.Fatalf("+Inf bucket = %g, want 2 (the invocation count)", s.Value)
			}
		}
	}
	if !infSeen {
		t.Fatal("histogram has no +Inf bucket")
	}
	if v := find("mg_kernel_duration_seconds_count", "subRelax", "5").Value; v != 2 {
		t.Fatalf("histogram count = %g, want 2", v)
	}

	// Coverage and worker series present.
	if len(idx["mg_kernel_coverage_ratio"]) != 1 {
		t.Fatal("missing coverage ratio")
	}
	var workers int
	for _, s := range idx["mg_worker_busy_seconds_total"] {
		if s.Label("worker") != "" {
			workers++
		}
	}
	if workers != 2 {
		t.Fatalf("worker busy series = %d, want 2", workers)
	}
}

func TestParsePrometheusEscapes(t *testing.T) {
	in := `m_total{k="a\"b\\c\nd"} 1.5` + "\n"
	samples, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Value != 1.5 {
		t.Fatalf("parsed %+v", samples)
	}
	if got := samples[0].Label("k"); got != "a\"b\\c\nd" {
		t.Fatalf("label = %q", got)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"1leading_digit 2",
		"name_only",
		`m{k="unterminated} 1`,
		`m{k=unquoted} 1`,
		"m not-a-number",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad + "\n")); err == nil {
			t.Fatalf("ParsePrometheus accepted %q", bad)
		}
	}
}

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {1024, 0}, {1025, 1}, {2048, 1}, {2049, 2},
		{1 << 40, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.ns); got != c.want {
			t.Fatalf("histBucket(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	if HistBound(0) != 1024 || HistBound(1) != 2048 {
		t.Fatal("HistBound bounds wrong")
	}
}
