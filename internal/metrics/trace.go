// The V-cycle event tracer: a JSON-lines stream of level transitions,
// kernel spans, iteration markers, tuner plan decisions and whole-solve
// summaries, for offline inspection of one benchmark run (cmd/mgbench
// -trace out.jsonl). One JSON object per line; the schema is the Event
// struct below (documented in DESIGN.md §3.2).
package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one trace record. Ev selects the kind; unused fields are
// omitted from the JSON:
//
//	span   one timed V-cycle region (Kernel = resid | smooth |
//	       fine2coarse | coarse2fine — the restrict/prolong spans keep
//	       their repository names) at Level, taking Nanos
//	wspan  one worker's busy slice of one parallel fan-out: Worker spent
//	       Nanos inside the loop body (sched.Pool with a tracer attached)
//	level  a V-cycle level transition: Dir "down" entering Level,
//	       "up" leaving it
//	iter   the start of MGrid iteration Iter (1-based)
//	plan   the tuner settled on (or was handed) Plan for Kernel@Level
//	solve  one whole benchmark solve: Nanos of wall time, final Rnm2
//
// Rank tags the emitting simulated-MPI rank (internal/mgmpi); it is 0 —
// and omitted — for single-process runs, so traces from several ranks
// concatenate into one stream that mgtrace splits back into per-rank
// Perfetto processes.
type Event struct {
	// T is nanoseconds since the tracer was created; Emit stamps it.
	T int64 `json:"t"`
	// Ev is the event kind: span, wspan, level, iter, plan or solve.
	Ev     string  `json:"ev"`
	Kernel string  `json:"kernel,omitempty"`
	Level  int     `json:"level,omitempty"`
	Dir    string  `json:"dir,omitempty"`
	Nanos  int64   `json:"ns,omitempty"`
	Plan   string  `json:"plan,omitempty"`
	Iter   int     `json:"iter,omitempty"`
	Rnm2   float64 `json:"rnm2,omitempty"`
	Worker int     `json:"worker,omitempty"`
	Rank   int     `json:"rank,omitempty"`
}

// Tracer writes Events as JSON lines. A nil *Tracer is the disabled
// tracer: Emit is a no-op costing one nil check and no allocations.
// A Tracer is safe for concurrent use; the first encoding error sticks
// and suppresses further output (check Err or Close). Close is
// idempotent — the first call flushes and seals the stream, repeated
// calls return the same verdict, and events emitted after Close are
// dropped rather than written to a writer the caller may have closed.
type Tracer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	start  time.Time
	n      int
	err    error
	closed bool
}

// NewTracer creates a tracer writing to w. The stream is buffered; call
// Close (or Flush) when the run is done. The caller retains ownership of
// w and closes it after the tracer.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// Emit writes one event, stamping its T with the time since the tracer
// was created. Emit on a nil tracer is a no-op, as is Emit after Close
// (late events from defers on error paths are dropped, not written).
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.err == nil && !t.closed {
		e.T = int64(time.Since(t.start))
		if err := t.enc.Encode(e); err != nil {
			t.err = err
		} else {
			t.n++
		}
	}
	t.mu.Unlock()
}

// Events returns the number of events written so far.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Flush drains the buffer and returns the first error seen. Flush after
// Close reports the sealed verdict without touching the writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Tracer) flushLocked() error {
	if t.closed {
		return t.err
	}
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Err returns the sticky error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes and seals the stream; it does not close the underlying
// writer. Close is idempotent: the first call does the flush (and on an
// error path records the flush error), every later call returns the
// same verdict without re-touching the writer — so paired defers in
// both a helper and its caller are safe, even when the writer has been
// closed in between.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.flushLocked()
	t.closed = true
	return err
}
