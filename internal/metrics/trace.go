// The V-cycle event tracer: a JSON-lines stream of level transitions,
// kernel spans, iteration markers, tuner plan decisions and whole-solve
// summaries, for offline inspection of one benchmark run (cmd/mgbench
// -trace out.jsonl). One JSON object per line; the schema is the Event
// struct below (documented in DESIGN.md §3.2).
//
// In a resident service (cmd/mgd) many jobs interleave on one stream, so
// a Tracer can derive per-job views with ForJob: a view shares the
// stream, the epoch and the error state of its parent but stamps every
// event it emits with a trace ID and job ID. That is how one request's
// span tree (ingress → queue → solve → kernels) stays connected through
// a shared worker pool — cmd/mgtrace groups events by trace tag.
package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one trace record. Ev selects the kind; unused fields are
// omitted from the JSON:
//
//	span   one timed V-cycle region (Kernel = resid | smooth |
//	       fine2coarse | coarse2fine — the restrict/prolong spans keep
//	       their repository names) at Level, taking Nanos
//	wspan  one worker's busy slice of one parallel fan-out: Worker spent
//	       Nanos inside the loop body (sched.Pool with a tracer attached)
//	level  a V-cycle level transition: Dir "down" entering Level,
//	       "up" leaving it
//	iter   the start of MGrid iteration Iter (1-based)
//	plan   the tuner settled on (or was handed) Plan for Kernel@Level
//	solve  one whole benchmark solve: Nanos of wall time, final Rnm2
//	stage  one service-stage span of a daemon job (internal/jobq):
//	       Stage = ingress | queue | dedup | solve | respond, taking
//	       Nanos, always trace-tagged
//	send   one transport send by Rank to Peer under Tag: Bytes of
//	       payload, the Seq-th message on that (rank, peer, tag)
//	       stream, Nanos inside the Send call, at grid Level during
//	       iteration Iter (internal/mgmpi with tracing enabled)
//	recv   the matching receive on the other side, same tags; a merged
//	       multi-rank trace pairs each send with exactly one recv by
//	       (src, dst, tag, seq) — per-pair FIFO makes Seq line up
//	hello  a per-rank epoch anchor emitted right after the transport
//	       bootstrap completes (cmd/mgrank -trace), the coarse clock
//	       alignment that seeds the offset estimator in commtrace.go
//
// Rank tags the emitting simulated-MPI rank (internal/mgmpi); it is 0 —
// and omitted — for single-process runs, so traces from several ranks
// concatenate into one stream that mgtrace splits back into per-rank
// Perfetto processes.
//
// Trace and Job tag events emitted through a per-job tracer view
// (Tracer.ForJob): Trace is the request's 128-bit trace ID in hex, Job
// the jobq content address. Both are empty — and omitted — for one-shot
// CLI runs, so existing traces are unchanged byte for byte.
type Event struct {
	// T is nanoseconds since the tracer was created; Emit stamps it.
	T int64 `json:"t"`
	// Ev is the event kind: span, wspan, level, iter, plan, solve or
	// stage.
	Ev     string  `json:"ev"`
	Kernel string  `json:"kernel,omitempty"`
	Level  int     `json:"level,omitempty"`
	Dir    string  `json:"dir,omitempty"`
	Nanos  int64   `json:"ns,omitempty"`
	Plan   string  `json:"plan,omitempty"`
	Iter   int     `json:"iter,omitempty"`
	Rnm2   float64 `json:"rnm2,omitempty"`
	Worker int     `json:"worker,omitempty"`
	Rank   int     `json:"rank,omitempty"`
	// Stage names the service stage of a "stage" event.
	Stage string `json:"stage,omitempty"`
	// Peer/Tag/Bytes/Seq describe one message of a send/recv event pair.
	// All four omit their zero values safely: tags start at 1, Seq 0 is
	// the first message of its stream, and a zero-byte payload is a
	// zero-length slice either way.
	Peer  int    `json:"peer,omitempty"`
	Tag   int    `json:"tag,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
	Seq   uint64 `json:"seq,omitempty"`
	// Trace/Job are the request-scoped tags of a daemon job's events.
	Trace string `json:"trace,omitempty"`
	Job   string `json:"job,omitempty"`
}

// tracerCore is the shared half of a Tracer: the locked stream, the
// epoch, and the sticky error state. Every view derived with ForJob
// points at the same core, so their events interleave on one stream
// with one consistent timebase.
type tracerCore struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	start  time.Time
	n      int
	err    error
	closed bool
}

// Tracer writes Events as JSON lines. A nil *Tracer is the disabled
// tracer: Emit is a no-op costing one nil check and no allocations.
// A Tracer is safe for concurrent use; the first encoding error sticks
// and suppresses further output (check Err or Close). Close is
// idempotent — the first call flushes and seals the stream, repeated
// calls return the same verdict, and events emitted after Close are
// dropped rather than written to a writer the caller may have closed.
//
// ForJob derives tagged views that share the stream; closing any view
// seals the stream for all of them (a service closes its tracer once,
// at shutdown).
type Tracer struct {
	core *tracerCore
	// trace/job stamp every event emitted through this view; empty on
	// the root tracer.
	trace, job string
}

// NewTracer creates a tracer writing to w. The stream is buffered; call
// Close (or Flush) when the run is done. The caller retains ownership of
// w and closes it after the tracer.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{core: &tracerCore{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}}
}

// ForJob derives a view of the tracer that stamps every emitted event
// with the given trace and job IDs. The view shares the parent's
// stream, epoch, counters and error state — events from many jobs
// interleave on one stream and mgtrace regroups them by tag. ForJob on
// a nil tracer returns nil (the disabled tracer propagates for free),
// so the call is safe on any service path.
func (t *Tracer) ForJob(traceID, jobID string) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{core: t.core, trace: traceID, job: jobID}
}

// Emit writes one event, stamping its T with the time since the tracer
// was created and, on a ForJob view, the view's trace/job tags (an
// event's own tags win if already set). Emit on a nil tracer is a
// no-op, as is Emit after Close (late events from defers on error paths
// are dropped, not written).
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if e.Trace == "" {
		e.Trace = t.trace
	}
	if e.Job == "" {
		e.Job = t.job
	}
	c := t.core
	c.mu.Lock()
	if c.err == nil && !c.closed {
		e.T = int64(time.Since(c.start))
		if err := c.enc.Encode(e); err != nil {
			c.err = err
		} else {
			c.n++
		}
	}
	c.mu.Unlock()
}

// Events returns the number of events written so far (across all views
// of the stream).
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.core.mu.Lock()
	defer t.core.mu.Unlock()
	return t.core.n
}

// Flush drains the buffer and returns the first error seen. Flush after
// Close reports the sealed verdict without touching the writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.core.mu.Lock()
	defer t.core.mu.Unlock()
	return t.core.flushLocked()
}

func (c *tracerCore) flushLocked() error {
	if c.closed {
		return c.err
	}
	if err := c.bw.Flush(); err != nil && c.err == nil {
		c.err = err
	}
	return c.err
}

// Err returns the sticky error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.core.mu.Lock()
	defer t.core.mu.Unlock()
	return t.core.err
}

// Close flushes and seals the stream; it does not close the underlying
// writer. Close is idempotent: the first call does the flush (and on an
// error path records the flush error), every later call returns the
// same verdict without re-touching the writer — so paired defers in
// both a helper and its caller are safe, even when the writer has been
// closed in between. Closing any ForJob view seals the shared stream.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.core.mu.Lock()
	defer t.core.mu.Unlock()
	err := t.core.flushLocked()
	t.core.closed = true
	return err
}
