package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// traceStream writes a representative two-rank event stream through real
// tracers and reads it back, exercising the emit→parse round trip.
func traceStream(t *testing.T) []Event {
	t.Helper()
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	emitRank := func(rank int) {
		tr.Emit(Event{Ev: "iter", Iter: 1, Level: 5, Rank: rank})
		tr.Emit(Event{Ev: "level", Level: 4, Dir: "down", Rank: rank})
		tr.Emit(Event{Ev: "span", Kernel: "resid", Level: 5, Nanos: int64(2 * time.Millisecond), Rank: rank})
		tr.Emit(Event{Ev: "span", Kernel: "smooth", Level: 4, Nanos: int64(1 * time.Millisecond), Rank: rank})
		tr.Emit(Event{Ev: "wspan", Worker: 0, Nanos: int64(1500 * time.Microsecond), Rank: rank})
		tr.Emit(Event{Ev: "wspan", Worker: 1, Nanos: int64(500 * time.Microsecond), Rank: rank})
		tr.Emit(Event{Ev: "plan", Kernel: "subRelax", Level: 5, Plan: "static-block", Rank: rank})
		tr.Emit(Event{Ev: "level", Level: 4, Dir: "up", Rank: rank})
	}
	emitRank(0)
	emitRank(1)
	tr.Emit(Event{Ev: "span", Kernel: "resid", Level: 5, Nanos: int64(1 * time.Millisecond), Rank: 1})
	tr.Emit(Event{Ev: "solve", Level: 5, Nanos: int64(10 * time.Millisecond), Iter: 4, Rnm2: 5.3e-6})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{\"ev\":\"span\"}\nnot json\n")); err == nil {
		t.Fatal("ReadEvents accepted malformed line")
	}
	events, err := ReadEvents(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Fatalf("empty stream: %v, %d events", err, len(events))
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize(traceStream(t))
	if sum.Iters != 2 || sum.Solves != 1 {
		t.Fatalf("iters=%d solves=%d, want 2/1", sum.Iters, sum.Solves)
	}
	if sum.SolveNanos != int64(10*time.Millisecond) || sum.FinalRnm2 != 5.3e-6 {
		t.Fatalf("solve rollup wrong: %d ns, rnm2 %g", sum.SolveNanos, sum.FinalRnm2)
	}
	// rank 1 has one extra resid span: 2+1+1 = 4ms; rank 0 has 3ms.
	var r0, r1 int64
	for _, r := range sum.Ranks {
		switch r.Rank {
		case 0:
			r0 = r.SpanNanos
		case 1:
			r1 = r.SpanNanos
		}
	}
	if r0 != int64(3*time.Millisecond) || r1 != int64(4*time.Millisecond) {
		t.Fatalf("rank span totals = %d/%d", r0, r1)
	}
	if sum.CriticalPathNanos != r1 {
		t.Fatalf("critical path = %d, want slowest rank %d", sum.CriticalPathNanos, r1)
	}
	// max/mean = 4 / 3.5.
	if got, want := sum.RankImbalance, 4.0/3.5; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("rank imbalance = %g, want %g", got, want)
	}
	// Per-rank worker busy: worker 0 1.5ms, worker 1 0.5ms on each rank →
	// max/mean = 1.5/1.0.
	if got := sum.WorkerImbalance; got < 1.5-1e-9 || got > 1.5+1e-9 {
		t.Fatalf("worker imbalance = %g, want 1.5", got)
	}
	// Span aggregation: rank 1's resid@5 has two spans totalling 3ms.
	var found bool
	for _, sp := range sum.Spans {
		if sp.Rank == 1 && sp.Kernel == "resid" && sp.Level == 5 {
			found = true
			if sp.Count != 2 || sp.Nanos != int64(3*time.Millisecond) {
				t.Fatalf("resid@5 rank1 = %d spans %d ns", sp.Count, sp.Nanos)
			}
		}
	}
	if !found {
		t.Fatal("rank 1 resid@5 missing from summary")
	}

	var buf bytes.Buffer
	sum.WriteText(&buf)
	for _, want := range []string{"critical path", "rank imbalance", "resid"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("summary text missing %q:\n%s", want, buf.String())
		}
	}
}

func TestChromeTraceSchema(t *testing.T) {
	ct := ChromeTraceFrom(traceStream(t))
	if err := ct.Validate(); err != nil {
		t.Fatalf("converter output invalid: %v", err)
	}

	// The JSON itself must match the trace-event container format:
	// a traceEvents array of objects with name/ph/ts/pid/tid of the
	// right JSON types — checked generically, as a loader would see it.
	raw, err := json.Marshal(ct)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	evs, ok := doc["traceEvents"].([]any)
	if !ok {
		t.Fatalf("traceEvents is %T, want array", doc["traceEvents"])
	}
	if len(evs) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]bool{"X": true, "i": true, "C": true, "M": true}
	for i, raw := range evs {
		e, ok := raw.(map[string]any)
		if !ok {
			t.Fatalf("traceEvents[%d] is %T, want object", i, raw)
		}
		if _, ok := e["name"].(string); !ok {
			t.Fatalf("traceEvents[%d] name is %T", i, e["name"])
		}
		ph, ok := e["ph"].(string)
		if !ok || !phases[ph] {
			t.Fatalf("traceEvents[%d] has phase %v", i, e["ph"])
		}
		if _, ok := e["ts"].(float64); !ok {
			t.Fatalf("traceEvents[%d] ts is %T", i, e["ts"])
		}
		for _, key := range []string{"pid", "tid"} {
			v, ok := e[key].(float64)
			if !ok || v != float64(int(v)) {
				t.Fatalf("traceEvents[%d] %s = %v, want integer", i, key, e[key])
			}
		}
		if ph == "X" {
			if d, ok := e["dur"].(float64); ok && d < 0 {
				t.Fatalf("traceEvents[%d] negative dur", i)
			}
		}
	}
}

func TestChromeTraceTracks(t *testing.T) {
	ct := ChromeTraceFrom(traceStream(t))
	// Both ranks must appear as processes, and the three track families
	// (solve, level, worker) must be named.
	type track struct {
		pid, tid int
	}
	names := map[track]string{}
	processes := map[int]bool{}
	for _, e := range ct.TraceEvents {
		if e.Ph != "M" {
			continue
		}
		switch e.Name {
		case "process_name":
			processes[e.Pid] = true
		case "thread_name":
			names[track{e.Pid, e.Tid}] = e.Args["name"].(string)
		}
	}
	if !processes[0] || !processes[1] {
		t.Fatalf("ranks not both named as processes: %v", processes)
	}
	for _, want := range []struct {
		tr   track
		name string
	}{
		{track{0, TidSolve}, "solve"},
		{track{0, TidLevelBase + 5}, "level 5"},
		{track{0, TidWorkerBase + 1}, "worker 1"},
		{track{1, TidLevelBase + 4}, "level 4"},
	} {
		if got := names[want.tr]; got != want.name {
			t.Fatalf("track %v named %q, want %q", want.tr, got, want.name)
		}
	}
	// Region spans land on their level track of their rank's process.
	var spanOK bool
	for _, e := range ct.TraceEvents {
		if e.Ph == "X" && e.Name == "smooth" && e.Pid == 1 && e.Tid == TidLevelBase+4 {
			spanOK = true
		}
	}
	if !spanOK {
		t.Fatal("smooth span not on rank 1's level-4 track")
	}
}

func TestChromeTraceValidateCatchesBadEvents(t *testing.T) {
	bad := []ChromeTrace{
		{TraceEvents: []ChromeEvent{{Name: "", Ph: "X"}}, DisplayTimeUnit: "ms"},
		{TraceEvents: []ChromeEvent{{Name: "x", Ph: "Z"}}, DisplayTimeUnit: "ms"},
		{TraceEvents: []ChromeEvent{{Name: "x", Ph: "X", Dur: -1}}, DisplayTimeUnit: "ms"},
		{TraceEvents: []ChromeEvent{{Name: "x", Ph: "M"}}, DisplayTimeUnit: "ms"},
		{TraceEvents: []ChromeEvent{{Name: "x", Ph: "i", S: "q"}}, DisplayTimeUnit: "ms"},
	}
	for i, ct := range bad {
		if err := ct.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted bad trace", i)
		}
	}
}
