package metrics

import (
	"errors"
	"strings"
	"testing"
)

// failAfterWriter accepts the first n bytes, then fails every write.
type failAfterWriter struct {
	n       int
	written int
	fails   int
}

var errSink = errors.New("sink broke")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		w.fails++
		return 0, errSink
	}
	w.written += len(p)
	return len(p), nil
}

func TestTracerCloseIdempotent(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	tr.Emit(Event{Ev: "iter", Iter: 1})
	if err := tr.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	flushed := sb.String()
	if !strings.Contains(flushed, `"iter":1`) {
		t.Fatalf("event not flushed by Close: %q", flushed)
	}

	// Double Close: same verdict, no further output.
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// Write-after-Close: dropped, not written, not counted.
	n := tr.Events()
	tr.Emit(Event{Ev: "iter", Iter: 2})
	if tr.Events() != n {
		t.Errorf("Emit after Close counted: %d -> %d", n, tr.Events())
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("Flush after Close: %v", err)
	}
	if sb.String() != flushed {
		t.Errorf("output grew after Close:\nbefore %q\nafter  %q", flushed, sb.String())
	}
}

func TestTracerCloseOnErrorPath(t *testing.T) {
	// The sink fails as soon as the buffer drains: Close must surface the
	// flush error, and every later Close must return the same error
	// without re-driving the broken writer.
	w := &failAfterWriter{n: 0}
	tr := NewTracer(w)
	tr.Emit(Event{Ev: "iter", Iter: 1})
	err := tr.Close()
	if !errors.Is(err, errSink) {
		t.Fatalf("Close on a broken sink = %v, want %v", err, errSink)
	}
	failsAfterFirstClose := w.fails
	if err2 := tr.Close(); !errors.Is(err2, errSink) {
		t.Errorf("second Close = %v, want the sealed %v", err2, errSink)
	}
	if err2 := tr.Flush(); !errors.Is(err2, errSink) {
		t.Errorf("Flush after failed Close = %v, want the sealed %v", err2, errSink)
	}
	if w.fails != failsAfterFirstClose {
		t.Errorf("sealed tracer re-touched the writer: %d -> %d failed writes",
			failsAfterFirstClose, w.fails)
	}
	if got := tr.Err(); !errors.Is(got, errSink) {
		t.Errorf("Err = %v, want %v", got, errSink)
	}
	// Emit after a failed Close stays silent.
	tr.Emit(Event{Ev: "iter", Iter: 2})
	if w.fails != failsAfterFirstClose {
		t.Errorf("Emit after failed Close touched the writer")
	}
}

func TestNilTracerCloseAndFlush(t *testing.T) {
	var tr *Tracer
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
}
