package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// syntheticExchange builds a merged two-rank trace with a known clock
// skew: rank 1's clock runs `skew` nanoseconds ahead of rank 0's, the
// one-way latency is symmetric, and the ranks ping-pong `n` messages
// each way on one tag. Event T stamps are in each rank's local clock,
// exactly as a merged per-rank trace would carry them.
func syntheticExchange(n int, skew, latency, blocked int64) []Event {
	var events []Event
	t0, t1 := int64(1_000_000), int64(1_000_000)+skew
	for seq := 0; seq < n; seq++ {
		// rank 0 sends (instantaneous enqueue), rank 1 receives after the
		// wire latency, blocked for `blocked` ns inside the Recv call.
		t0 += 10_000
		events = append(events, Event{
			T: t0, Ev: "send", Rank: 0, Peer: 1, Tag: 7, Level: 5, Iter: 1 + seq%2,
			Bytes: 512, Seq: uint64(seq), Nanos: 1_000,
		})
		recvEnd := (t0 + skew) + latency + blocked // rank 1 local clock (ahead)
		events = append(events, Event{
			T: recvEnd, Ev: "recv", Rank: 1, Peer: 0, Tag: 7, Level: 5, Iter: 1 + seq%2,
			Bytes: 512, Seq: uint64(seq), Nanos: blocked,
		})
		t1 = recvEnd
		// and the reply, rank 1 → rank 0.
		t1 += 10_000
		events = append(events, Event{
			T: t1, Ev: "send", Rank: 1, Peer: 0, Tag: 7, Level: 5, Iter: 1 + seq%2,
			Bytes: 512, Seq: uint64(seq), Nanos: 1_000,
		})
		replyEnd := (t1 - skew) + latency + blocked // rank 0 local clock
		events = append(events, Event{
			T: replyEnd, Ev: "recv", Rank: 0, Peer: 1, Tag: 7, Level: 5, Iter: 1 + seq%2,
			Bytes: 512, Seq: uint64(seq), Nanos: blocked,
		})
		t0 = replyEnd
	}
	return events
}

func TestPairCommsMatchesAll(t *testing.T) {
	events := syntheticExchange(8, 123_456, 5_000, 2_000)
	pairs, us, ur := PairComms(events)
	if len(us) != 0 || len(ur) != 0 {
		t.Fatalf("unmatched: %d sends, %d recvs", len(us), len(ur))
	}
	if len(pairs) != 16 {
		t.Fatalf("pairs = %d, want 16", len(pairs))
	}
	for _, p := range pairs {
		if p.Bytes != 512 || p.Tag != 7 || p.Level != 5 {
			t.Fatalf("bad pair %+v", p)
		}
	}
}

func TestPairCommsUnmatched(t *testing.T) {
	events := syntheticExchange(4, 0, 5_000, 2_000)
	// Drop one recv: its send must surface as unmatched.
	dropped := events[:0:0]
	removed := false
	for _, e := range events {
		if !removed && e.Ev == "recv" && e.Rank == 1 && e.Seq == 2 {
			removed = true
			continue
		}
		dropped = append(dropped, e)
	}
	pairs, us, ur := PairComms(dropped)
	if len(pairs) != 7 || len(us) != 1 || len(ur) != 0 {
		t.Fatalf("pairs=%d unmatchedSends=%d unmatchedRecvs=%d, want 7/1/0",
			len(pairs), len(us), len(ur))
	}
	if us[0].Seq != 2 || us[0].Rank != 0 {
		t.Fatalf("wrong unmatched send: %+v", us[0])
	}
}

func TestRelativeOffsetRecoversSkewAndIsAntisymmetric(t *testing.T) {
	const skew = 777_000 // rank 1 runs 777µs ahead
	events := syntheticExchange(16, skew, 4_000, 1_500)
	pairs, _, _ := PairComms(events)

	// Convention: global = local + off. Rank 1's clock reads ahead, so
	// mapping it onto rank 0's timeline subtracts the skew: rel(0,1) =
	// off_0 − off_1 = skew.
	rel01, n01 := RelativeOffset(pairs, 0, 1)
	rel10, n10 := RelativeOffset(pairs, 1, 0)
	if n01 == 0 || n10 == 0 {
		t.Fatal("no samples")
	}
	if rel01 != -rel10 {
		t.Fatalf("not antisymmetric: rel(0,1)=%d rel(1,0)=%d", rel01, rel10)
	}
	if rel01 != skew {
		t.Fatalf("rel(0,1) = %d, want %d (symmetric latency cancels exactly)", rel01, skew)
	}

	offs := EstimateOffsets(events)
	if len(offs) != 2 {
		t.Fatalf("offsets for %d ranks, want 2", len(offs))
	}
	if offs[0].Rank != 0 || offs[0].OffsetNanos != 0 {
		t.Fatalf("anchor not rank 0 at offset 0: %+v", offs[0])
	}
	if offs[1].OffsetNanos != -skew {
		t.Fatalf("rank 1 offset = %d, want %d", offs[1].OffsetNanos, -skew)
	}
	if offs[1].Samples != 32 {
		t.Fatalf("rank 1 samples = %d, want 32", offs[1].Samples)
	}
}

func TestEstimateOffsetsHelloFallback(t *testing.T) {
	// Two ranks that never exchanged paired traffic: only the hello
	// anchors align them. Rank 1's hello fires at local T 900k vs rank
	// 0's 400k, so mapping rank 1 onto rank 0 subtracts 500k.
	events := []Event{
		{T: 400_000, Ev: "hello", Rank: 0},
		{T: 900_000, Ev: "hello", Rank: 1},
	}
	offs := EstimateOffsets(events)
	if len(offs) != 2 || offs[1].OffsetNanos != -500_000 || offs[1].Samples != 0 {
		t.Fatalf("hello fallback offsets = %+v", offs)
	}
}

func TestBuildCommReport(t *testing.T) {
	const blocked = 2_000
	events := syntheticExchange(6, 50_000, 5_000, blocked)
	// Add kernel spans and a solve so compute attribution and comm share
	// have something to bite on.
	events = append(events,
		Event{T: 2_000_000, Ev: "span", Kernel: "resid", Level: 5, Rank: 0, Nanos: 300_000},
		Event{T: 2_000_000, Ev: "span", Kernel: "mg3P", Level: 5, Rank: 0, Nanos: 900_000},
		Event{T: 2_100_000, Ev: "span", Kernel: "smooth", Level: 5, Rank: 1, Nanos: 400_000},
		Event{T: 3_000_000, Ev: "solve", Rank: 0, Nanos: 2_500_000},
	)
	rep := BuildCommReport(events)

	if rep.Ranks != 2 || rep.Matched != 12 || rep.UnmatchedSends != 0 || rep.UnmatchedRecvs != 0 {
		t.Fatalf("ranks=%d matched=%d unmatched=%d/%d",
			rep.Ranks, rep.Matched, rep.UnmatchedSends, rep.UnmatchedRecvs)
	}
	if rep.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2", rep.Iterations)
	}
	// Every send took 1µs and every recv `blocked`; 12 of each.
	wantBlocked := int64(12*1_000 + 12*blocked)
	if rep.TotalBlockedNanos != wantBlocked {
		t.Fatalf("total blocked = %d, want %d", rep.TotalBlockedNanos, wantBlocked)
	}
	var levelBlocked, kernel int64
	for _, l := range rep.Levels {
		levelBlocked += l.BlockedNanos
		kernel += l.KernelNanos
	}
	if levelBlocked != wantBlocked {
		t.Fatalf("per-level blocked sums to %d, want %d", levelBlocked, wantBlocked)
	}
	if kernel != 700_000 { // resid + smooth; the mg3P envelope must not double count
		t.Fatalf("kernel nanos = %d, want 700000", kernel)
	}
	if len(rep.Iters) != 2 {
		t.Fatalf("iter stats = %d, want 2", len(rep.Iters))
	}
	for _, it := range rep.Iters {
		if it.Straggler < 0 || it.SkewNanos != it.MaxBlockedNanos-it.MinBlockedNanos {
			t.Fatalf("bad iter stat %+v", it)
		}
	}
	if rep.OverlapEfficiency < 0 || rep.OverlapEfficiency > 1 {
		t.Fatalf("overlap efficiency %g outside [0,1]", rep.OverlapEfficiency)
	}
	if rep.SolveNanos != 2_500_000 || rep.CommShare <= 0 {
		t.Fatalf("solve=%d commShare=%g", rep.SolveNanos, rep.CommShare)
	}

	var buf bytes.Buffer
	rep.WriteText(&buf)
	text := buf.String()
	// The CI distributed job greps for these two phrasings; keep stable.
	if !strings.Contains(text, "unmatched send/recv pairs: 0") {
		t.Fatalf("report text missing unmatched-pairs line:\n%s", text)
	}
	if !strings.Contains(text, "straggler rank") {
		t.Fatalf("report text missing straggler line:\n%s", text)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-encodable: %v", err)
	}
}

func TestReadEventsTolerant(t *testing.T) {
	whole := `{"t":1,"ev":"iter","iter":1}
{"t":2,"ev":"span","kernel":"resid","ns":5}
`
	t.Run("clean", func(t *testing.T) {
		ev, torn, err := ReadEventsTolerant(strings.NewReader(whole))
		if err != nil || torn != 0 || len(ev) != 2 {
			t.Fatalf("ev=%d torn=%d err=%v", len(ev), torn, err)
		}
	})
	t.Run("tornTail", func(t *testing.T) {
		in := whole + `{"t":3,"ev":"sol`
		ev, torn, err := ReadEventsTolerant(strings.NewReader(in))
		if err != nil || torn != 1 || len(ev) != 2 {
			t.Fatalf("ev=%d torn=%d err=%v", len(ev), torn, err)
		}
	})
	t.Run("midFileCorruption", func(t *testing.T) {
		in := `{"t":1,"ev":"iter","iter":1}
{"t":2,"ev":"sp
{"t":3,"ev":"span","kernel":"resid","ns":5}
`
		if _, _, err := ReadEventsTolerant(strings.NewReader(in)); err == nil {
			t.Fatal("valid data after a malformed line must error")
		}
	})
	t.Run("empty", func(t *testing.T) {
		ev, torn, err := ReadEventsTolerant(strings.NewReader(""))
		if err != nil || torn != 0 || len(ev) != 0 {
			t.Fatalf("ev=%d torn=%d err=%v", len(ev), torn, err)
		}
	})
	// The strict reader still rejects a torn tail outright.
	if _, err := ReadEvents(strings.NewReader(whole + `{"torn`)); err == nil {
		t.Fatal("strict ReadEvents must reject a torn tail")
	}
}

func TestChromeTraceAlignedCommTracksAndFlows(t *testing.T) {
	const skew = 250_000
	events := syntheticExchange(4, skew, 5_000, 2_000)
	offs := OffsetMap(EstimateOffsets(events))
	ct := ChromeTraceAligned(events, offs)
	if err := ct.Validate(); err != nil {
		t.Fatalf("aligned trace invalid: %v", err)
	}

	commSpans, starts, finishes := 0, map[string]ChromeEvent{}, map[string]ChromeEvent{}
	for _, e := range ct.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Cat == "comm" {
				commSpans++
				if e.Tid < TidCommBase || e.Tid >= TidWorkerBase {
					t.Fatalf("comm span on tid %d outside comm band", e.Tid)
				}
			}
		case "s":
			starts[e.Id] = e
		case "f":
			if e.Bp != "e" {
				t.Fatalf("flow finish without bp=e: %+v", e)
			}
			finishes[e.Id] = e
		}
	}
	if commSpans != 16 {
		t.Fatalf("comm spans = %d, want 16", commSpans)
	}
	if len(starts) != 8 || len(finishes) != 8 {
		t.Fatalf("flow starts=%d finishes=%d, want 8/8", len(starts), len(finishes))
	}
	for id, s := range starts {
		f, ok := finishes[id]
		if !ok {
			t.Fatalf("flow %s has no finish", id)
		}
		if s.Pid == f.Pid {
			t.Fatalf("flow %s does not cross processes", id)
		}
		if f.Ts < s.Ts {
			t.Fatalf("flow %s finishes (%g) before it starts (%g)", id, f.Ts, s.Ts)
		}
	}

	// With the true offsets applied, aligned recv-ends trail their
	// send-ends by the one-way latency — the timeline is causally
	// ordered even though the raw local stamps were ~250µs apart.
	pairs, _, _ := PairComms(events)
	for _, p := range pairs {
		alignedSend := p.SendEndNs + offs[p.Src]
		alignedRecv := p.RecvEndNs + offs[p.Dst]
		if alignedRecv < alignedSend {
			t.Fatalf("aligned recv %d precedes send %d", alignedRecv, alignedSend)
		}
	}
}

func TestValidateFlowEvents(t *testing.T) {
	bad := ChromeTrace{TraceEvents: []ChromeEvent{
		{Name: "msg", Ph: "s", Ts: 1}, // no id
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("flow event without id must fail validation")
	}
	bad = ChromeTrace{TraceEvents: []ChromeEvent{
		{Name: "msg", Ph: "f", Id: "x", Bp: "q", Ts: 1},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("flow finish with bad bp must fail validation")
	}
	good := ChromeTrace{TraceEvents: []ChromeEvent{
		{Name: "msg", Ph: "s", Id: "x", Ts: 1},
		{Name: "msg", Ph: "f", Id: "x", Bp: "e", Ts: 2},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid flow pair rejected: %v", err)
	}
}
