// Prometheus text-format exposition (format version 0.0.4) of a metrics
// snapshot, and a minimal parser of that format so the repository can
// round-trip-test its own exposition without external dependencies.
// cmd/mg serves WritePrometheus on /metrics next to expvar and pprof.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot as Prometheus text-format metrics:
// per-(kernel, level) invocation/point/time counters, a duration
// histogram from the collector's log2 buckets, derived GFLOP/s and
// bandwidth gauges (for kernels with a cost model), the coverage ratio,
// and per-worker scheduler counters. Label values are the kernel name and
// the decimal grid level, so one series per (kernel, level) cell.
func (s Snapshot) WritePrometheus(w io.Writer, costs CostModel) {
	fmt.Fprintln(w, "# HELP mg_kernel_invocations_total Fused-kernel invocations per (kernel, grid level).")
	fmt.Fprintln(w, "# TYPE mg_kernel_invocations_total counter")
	for _, k := range s.Kernels {
		fmt.Fprintf(w, "mg_kernel_invocations_total{kernel=%q,level=\"%d\"} %d\n",
			k.Kernel, k.Level, k.Invocations)
	}
	fmt.Fprintln(w, "# HELP mg_kernel_points_total Grid points processed per (kernel, grid level).")
	fmt.Fprintln(w, "# TYPE mg_kernel_points_total counter")
	for _, k := range s.Kernels {
		fmt.Fprintf(w, "mg_kernel_points_total{kernel=%q,level=\"%d\"} %d\n",
			k.Kernel, k.Level, k.Points)
	}
	fmt.Fprintln(w, "# HELP mg_kernel_seconds_total Wall time accumulated per (kernel, grid level).")
	fmt.Fprintln(w, "# TYPE mg_kernel_seconds_total counter")
	for _, k := range s.Kernels {
		fmt.Fprintf(w, "mg_kernel_seconds_total{kernel=%q,level=\"%d\"} %g\n",
			k.Kernel, k.Level, k.Seconds())
	}
	fmt.Fprintln(w, "# HELP mg_kernel_duration_seconds Invocation duration histogram per (kernel, grid level).")
	fmt.Fprintln(w, "# TYPE mg_kernel_duration_seconds histogram")
	for _, k := range s.Kernels {
		var cum uint64
		for b, n := range k.Hist {
			cum += n
			le := strconv.FormatFloat(float64(HistBound(b))/1e9, 'g', -1, 64)
			if b == len(k.Hist)-1 {
				le = "+Inf"
			}
			fmt.Fprintf(w, "mg_kernel_duration_seconds_bucket{kernel=%q,level=\"%d\",le=%q} %d\n",
				k.Kernel, k.Level, le, cum)
		}
		fmt.Fprintf(w, "mg_kernel_duration_seconds_sum{kernel=%q,level=\"%d\"} %g\n",
			k.Kernel, k.Level, k.Seconds())
		fmt.Fprintf(w, "mg_kernel_duration_seconds_count{kernel=%q,level=\"%d\"} %d\n",
			k.Kernel, k.Level, k.Invocations)
	}
	if costs != nil {
		fmt.Fprintln(w, "# HELP mg_kernel_gflops Effective GFLOP/s per (kernel, grid level), from the per-point work model.")
		fmt.Fprintln(w, "# TYPE mg_kernel_gflops gauge")
		for _, k := range s.Kernels {
			if cost := costs(k.Kernel, k.Variant); cost != (Cost{}) {
				fmt.Fprintf(w, "mg_kernel_gflops{kernel=%q,level=\"%d\"} %g\n",
					k.Kernel, k.Level, k.GFLOPS(cost.Flops))
			}
		}
		fmt.Fprintln(w, "# HELP mg_kernel_gb_per_second Effective memory bandwidth per (kernel, grid level).")
		fmt.Fprintln(w, "# TYPE mg_kernel_gb_per_second gauge")
		for _, k := range s.Kernels {
			if cost := costs(k.Kernel, k.Variant); cost != (Cost{}) {
				fmt.Fprintf(w, "mg_kernel_gb_per_second{kernel=%q,level=\"%d\"} %g\n",
					k.Kernel, k.Level, k.GBPerSec(cost.Bytes))
			}
		}
	}
	if frac, ok := s.Coverage(); ok {
		fmt.Fprintln(w, "# HELP mg_kernel_coverage_ratio Fraction of solve time the per-kernel rows account for.")
		fmt.Fprintln(w, "# TYPE mg_kernel_coverage_ratio gauge")
		fmt.Fprintf(w, "mg_kernel_coverage_ratio %g\n", frac)
	}
	if len(s.Workers) > 0 {
		fmt.Fprintln(w, "# HELP mg_worker_loops_total Parallel loop fan-outs each worker took part in.")
		fmt.Fprintln(w, "# TYPE mg_worker_loops_total counter")
		for _, ws := range s.Workers {
			fmt.Fprintf(w, "mg_worker_loops_total{worker=\"%d\"} %d\n", ws.Worker, ws.Loops)
		}
		fmt.Fprintln(w, "# HELP mg_worker_busy_seconds_total Wall time each worker spent inside parallel loop bodies.")
		fmt.Fprintln(w, "# TYPE mg_worker_busy_seconds_total counter")
		for _, ws := range s.Workers {
			fmt.Fprintf(w, "mg_worker_busy_seconds_total{worker=\"%d\"} %g\n",
				ws.Worker, float64(ws.BusyNanos)/1e9)
		}
	}
}

// PromSample is one parsed Prometheus text-format sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for one label name ("" when absent).
func (s PromSample) Label(name string) string { return s.Labels[name] }

// ParsePrometheus parses Prometheus text format (the subset
// WritePrometheus emits: comment lines, `name value` and
// `name{l1="v1",...} value` sample lines — no timestamps). It exists so
// the exposition can be round-trip-tested without external dependencies;
// it is strict about what it does parse, returning an error with the
// offending line on any malformed input.
func ParsePrometheus(r io.Reader) ([]PromSample, error) {
	var samples []PromSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: prometheus line %d: %w (%q)", lineNo, err, line)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// parsePromLine parses one sample line.
func parsePromLine(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isPromNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("missing metric name")
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		// Find the closing brace outside quoted label values.
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		if err := parsePromLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	valText := strings.TrimSpace(rest)
	if valText == "" {
		return s, fmt.Errorf("missing value")
	}
	v, err := strconv.ParseFloat(valText, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", valText)
	}
	s.Value = v
	return s, nil
}

// parsePromLabels parses `l1="v1",l2="v2"` into labels.
func parsePromLabels(text string, labels map[string]string) error {
	for text != "" {
		eq := strings.IndexByte(text, '=')
		if eq <= 0 {
			return fmt.Errorf("bad label pair %q", text)
		}
		name := text[:eq]
		rest := text[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("unquoted label value for %q", name)
		}
		val, tail, err := unquotePromValue(rest)
		if err != nil {
			return err
		}
		labels[name] = val
		text = strings.TrimPrefix(tail, ",")
	}
	return nil
}

// unquotePromValue consumes one quoted label value (with \\, \" and \n
// escapes) and returns the remainder of the text.
func unquotePromValue(text string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(text); i++ {
		switch text[i] {
		case '\\':
			if i+1 >= len(text) {
				return "", "", fmt.Errorf("dangling escape in %q", text)
			}
			i++
			switch text[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(text[i])
			default:
				return "", "", fmt.Errorf("bad escape \\%c", text[i])
			}
		case '"':
			return b.String(), text[i+1:], nil
		default:
			b.WriteByte(text[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value in %q", text)
}

// isPromNameChar reports whether c may appear in a metric/label name.
func isPromNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	default:
		return false
	}
}

// PromIndex groups parsed samples by metric name, preserving order within
// a name — the shape round-trip tests want to assert against.
func PromIndex(samples []PromSample) map[string][]PromSample {
	idx := map[string][]PromSample{}
	for _, s := range samples {
		idx[s.Name] = append(idx[s.Name], s)
	}
	return idx
}

// PromNames returns the sorted metric names present in samples.
func PromNames(samples []PromSample) []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range samples {
		if !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
	}
	sort.Strings(names)
	return names
}
