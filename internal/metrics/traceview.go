// Offline analysis of the JSON-lines V-cycle trace (trace.go): reading an
// event stream back, aggregating spans per (rank, kernel, level) with a
// critical-path and load-imbalance summary, and converting the stream to
// Chrome trace-event JSON that chrome://tracing and Perfetto load
// directly. cmd/mgtrace is the CLI over these functions.
//
// # Perfetto track layout
//
// Each simulated-MPI rank becomes one Perfetto process (pid = rank), so
// the concatenated traces of an mgmpi run merge into a single timeline.
// Within a process:
//
//	tid 0               the solve track: whole-solve spans, iteration
//	                    instants, and the V-cycle level counter
//	tid 1+level         one track per grid level carrying that level's
//	                    region spans (resid, smooth, fine2coarse,
//	                    coarse2fine) and tuner plan instants
//	tid 500+level       one communication track per grid level carrying
//	                    the rank's send/recv blocked spans; flow arrows
//	                    ("s"/"f" events at the span midpoints) connect
//	                    each matched send to its recv across processes
//	tid 1000+worker     one track per scheduler worker carrying its
//	                    "wspan" busy slices
//	tid 2000+100·j      one block of tracks per daemon job (events
//	                    tagged with a trace ID, in order of first
//	                    appearance): the base tid carries the job's
//	                    service-stage spans (ingress, queue, dedup,
//	                    solve, respond) plus its iteration instants and
//	                    whole-solve span; base+1+level carries its
//	                    kernel region spans. Grouping by trace tag is
//	                    what keeps each request's span tree connected
//	                    when many jobs interleave on shared workers.
//
// Span timestamps derive from the tracer's emit stamp: an event's T is
// taken when the span ends, so its start is T − Nanos. Timestamps are
// microseconds (the trace-event convention).
package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ReadEvents parses a JSON-lines trace stream back into events, in stream
// order. Blank lines are skipped; a malformed line aborts with its line
// number.
func ReadEvents(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("metrics: trace line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// ReadEventsTolerant parses like ReadEvents but forgives a torn trailing
// write — the signature of a rank killed mid-line, which leaves a
// truncated JSON object at the very end of its file. Malformed lines
// with no valid event after them are skipped and counted; a malformed
// line followed by more valid data still aborts, because that is
// corruption, not a torn tail.
func ReadEventsTolerant(r io.Reader) (events []Event, torn int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	var tornErr error
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if uerr := json.Unmarshal(line, &e); uerr != nil {
			torn++
			if tornErr == nil {
				tornErr = fmt.Errorf("metrics: trace line %d: %w", lineNo, uerr)
			}
			continue
		}
		if torn > 0 {
			return nil, 0, fmt.Errorf("metrics: trace line %d: valid event after malformed line (%v)", lineNo, tornErr)
		}
		events = append(events, e)
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, serr
	}
	return events, torn, nil
}

// SpanStat aggregates the "span" events of one (rank, kernel, level).
type SpanStat struct {
	Rank   int    `json:"rank"`
	Kernel string `json:"kernel"`
	Level  int    `json:"level"`
	Count  int    `json:"count"`
	Nanos  int64  `json:"nanos"`
}

// RankStat aggregates one rank's trace: total region-span time, solve
// time, and event count.
type RankStat struct {
	Rank       int   `json:"rank"`
	SpanNanos  int64 `json:"spanNanos"`
	SolveNanos int64 `json:"solveNanos"`
	Events     int   `json:"events"`
}

// WorkerSpanStat aggregates the "wspan" busy slices of one (rank, worker).
type WorkerSpanStat struct {
	Rank   int   `json:"rank"`
	Worker int   `json:"worker"`
	Count  int   `json:"count"`
	Nanos  int64 `json:"nanos"`
}

// StageStat aggregates the service-stage spans of one stage across the
// stream — the trace-side view of the daemon's mgd_stage_seconds
// histograms.
type StageStat struct {
	Stage string `json:"stage"`
	Count int    `json:"count"`
	Nanos int64  `json:"nanos"`
}

// Summary is the aggregated view of one trace stream (Summarize).
type Summary struct {
	Events  int              `json:"events"`
	Iters   int              `json:"iters"`
	Solves  int              `json:"solves"`
	Spans   []SpanStat       `json:"spans"`
	Ranks   []RankStat       `json:"ranks"`
	Workers []WorkerSpanStat `json:"workers,omitempty"`
	// Stages aggregates daemon service-stage spans; Traces counts the
	// distinct trace IDs in the stream (0 for one-shot CLI traces).
	Stages []StageStat `json:"stages,omitempty"`
	Traces int         `json:"traces,omitempty"`
	// SolveNanos sums the whole-solve spans; FinalRnm2 is the last solve
	// event's residual norm.
	SolveNanos int64   `json:"solveNanos"`
	FinalRnm2  float64 `json:"finalRnm2,omitempty"`
	// CriticalPathNanos is the slowest rank's region-span total — with
	// simulated MPI the ranks run their V-cycles in lockstep phases, so
	// the slowest rank bounds the timeline.
	CriticalPathNanos int64 `json:"criticalPathNanos"`
	// RankImbalance is max/mean of the per-rank span totals (0 with
	// fewer than two ranks); WorkerImbalance is max/mean of the
	// per-worker busy totals across all wspans (0 without wspans).
	RankImbalance   float64 `json:"rankImbalance,omitempty"`
	WorkerImbalance float64 `json:"workerImbalance,omitempty"`
}

// Summarize aggregates a trace stream: per-(rank, kernel, level) span
// totals, per-rank and per-worker rollups, and the derived critical-path
// and imbalance figures.
func Summarize(events []Event) Summary {
	sum := Summary{Events: len(events)}
	spans := map[SpanStat]*SpanStat{}
	ranks := map[int]*RankStat{}
	workers := map[[2]int]*WorkerSpanStat{}
	stages := map[string]*StageStat{}
	traces := map[string]bool{}
	rankOf := func(rank int) *RankStat {
		r := ranks[rank]
		if r == nil {
			r = &RankStat{Rank: rank}
			ranks[rank] = r
		}
		return r
	}
	for _, e := range events {
		rankOf(e.Rank).Events++
		if e.Trace != "" {
			traces[e.Trace] = true
		}
		switch e.Ev {
		case "span":
			key := SpanStat{Rank: e.Rank, Kernel: e.Kernel, Level: e.Level}
			s := spans[key]
			if s == nil {
				s = &SpanStat{Rank: e.Rank, Kernel: e.Kernel, Level: e.Level}
				spans[key] = s
			}
			s.Count++
			s.Nanos += e.Nanos
			rankOf(e.Rank).SpanNanos += e.Nanos
		case "wspan":
			key := [2]int{e.Rank, e.Worker}
			w := workers[key]
			if w == nil {
				w = &WorkerSpanStat{Rank: e.Rank, Worker: e.Worker}
				workers[key] = w
			}
			w.Count++
			w.Nanos += e.Nanos
		case "stage":
			s := stages[e.Stage]
			if s == nil {
				s = &StageStat{Stage: e.Stage}
				stages[e.Stage] = s
			}
			s.Count++
			s.Nanos += e.Nanos
		case "iter":
			sum.Iters++
		case "solve":
			sum.Solves++
			sum.SolveNanos += e.Nanos
			sum.FinalRnm2 = e.Rnm2
			rankOf(e.Rank).SolveNanos += e.Nanos
		}
	}
	for _, s := range spans {
		sum.Spans = append(sum.Spans, *s)
	}
	sort.Slice(sum.Spans, func(i, j int) bool {
		a, b := sum.Spans[i], sum.Spans[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		return a.Level < b.Level
	})
	for _, r := range ranks {
		sum.Ranks = append(sum.Ranks, *r)
	}
	sort.Slice(sum.Ranks, func(i, j int) bool { return sum.Ranks[i].Rank < sum.Ranks[j].Rank })
	for _, w := range workers {
		sum.Workers = append(sum.Workers, *w)
	}
	sort.Slice(sum.Workers, func(i, j int) bool {
		a, b := sum.Workers[i], sum.Workers[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Worker < b.Worker
	})

	for _, s := range stages {
		sum.Stages = append(sum.Stages, *s)
	}
	sort.Slice(sum.Stages, func(i, j int) bool { return sum.Stages[i].Stage < sum.Stages[j].Stage })
	sum.Traces = len(traces)

	var rankSum, rankMax int64
	for _, r := range sum.Ranks {
		rankSum += r.SpanNanos
		if r.SpanNanos > rankMax {
			rankMax = r.SpanNanos
		}
	}
	sum.CriticalPathNanos = rankMax
	if len(sum.Ranks) > 1 && rankSum > 0 {
		sum.RankImbalance = float64(rankMax) / (float64(rankSum) / float64(len(sum.Ranks)))
	}
	var busySum, busyMax int64
	for _, w := range sum.Workers {
		busySum += w.Nanos
		if w.Nanos > busyMax {
			busyMax = w.Nanos
		}
	}
	if len(sum.Workers) > 1 && busySum > 0 {
		sum.WorkerImbalance = float64(busyMax) / (float64(busySum) / float64(len(sum.Workers)))
	}
	return sum
}

// WriteText renders the summary as the mgtrace report.
func (s Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Trace summary: %d events, %d iterations, %d solve span(s)\n",
		s.Events, s.Iters, s.Solves)
	if s.Solves > 0 {
		fmt.Fprintf(w, "solve time: %.3f ms, final rnm2 %.6e\n",
			float64(s.SolveNanos)/1e6, s.FinalRnm2)
	}
	fmt.Fprintf(w, "%-6s %-14s %6s %8s %12s\n", "rank", "kernel", "level", "spans", "ms")
	for _, sp := range s.Spans {
		fmt.Fprintf(w, "%-6d %-14s %6d %8d %12.3f\n",
			sp.Rank, sp.Kernel, sp.Level, sp.Count, float64(sp.Nanos)/1e6)
	}
	if len(s.Stages) > 0 {
		fmt.Fprintf(w, "service stages (%d traced job(s)):\n", s.Traces)
		for _, st := range s.Stages {
			fmt.Fprintf(w, "  %-10s %6d span(s) %12.3f ms\n",
				st.Stage, st.Count, float64(st.Nanos)/1e6)
		}
	}
	fmt.Fprintf(w, "critical path (slowest rank): %.3f ms\n", float64(s.CriticalPathNanos)/1e6)
	if s.RankImbalance > 0 {
		fmt.Fprintf(w, "rank imbalance: %.3f (max/mean span time over %d ranks)\n",
			s.RankImbalance, len(s.Ranks))
	}
	if len(s.Workers) > 0 {
		for _, ws := range s.Workers {
			fmt.Fprintf(w, "rank %d worker %2d: %6d busy slices, %10.3f ms\n",
				ws.Rank, ws.Worker, ws.Count, float64(ws.Nanos)/1e6)
		}
		if s.WorkerImbalance > 0 {
			fmt.Fprintf(w, "worker imbalance: %.3f (max/mean busy)\n", s.WorkerImbalance)
		}
	}
}

// ChromeEvent is one Chrome trace-event record (the subset the converter
// emits: complete spans "X", instants "i", counters "C" and metadata "M").
type ChromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	// Ts is the event timestamp in microseconds; Dur the span length.
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
	Cat string  `json:"cat,omitempty"`
	// S is the instant scope ("p" = process).
	S string `json:"s,omitempty"`
	// Id links the "s"/"f" halves of one flow arrow; Bp "e" binds the
	// finish to the enclosing slice (the trace-event flow convention).
	Id   string         `json:"id,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON object container format of the trace-event
// spec; Perfetto and chrome://tracing load it directly.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track id scheme of the converter (see the package comment).
const (
	// TidSolve is the per-rank solve/iteration track.
	TidSolve = 0
	// TidLevelBase + level is the grid-level track.
	TidLevelBase = 1
	// TidCommBase + level is the per-level communication track carrying
	// send/recv blocked spans and the endpoints of their flow arrows.
	TidCommBase = 500
	// TidWorkerBase + worker is the scheduler-worker track.
	TidWorkerBase = 1000
	// TidJobBase + TidJobStride·job is the base track of one traced
	// daemon job (service-stage spans); base+1+level carries the job's
	// kernel region spans. Jobs are numbered by first appearance of
	// their trace tag.
	TidJobBase   = 2000
	TidJobStride = 100
)

// ChromeTraceFrom converts a trace stream to Chrome trace-event JSON:
// pid = rank, one thread per solve/level/worker track, named via metadata
// events. Span starts are reconstructed as T − Nanos (the tracer stamps
// events when they end).
func ChromeTraceFrom(events []Event) ChromeTrace {
	return ChromeTraceAligned(events, nil)
}

// ChromeTraceAligned is ChromeTraceFrom with per-rank clock alignment:
// each event's T is shifted by the rank's estimated offset (OffsetMap of
// EstimateOffsets) and the merged stream is rebased so the earliest span
// start lands at 0 — Perfetto then shows one coherent timeline instead
// of per-rank epochs. Matched send/recv pairs additionally get flow
// arrows ("s" at the send span's midpoint, "f" at the recv's) so each
// message is a visible edge between its two processes. A nil or empty
// offsets map applies no shift.
func ChromeTraceAligned(events []Event, offsets map[int]int64) ChromeTrace {
	if len(offsets) > 0 {
		shifted := make([]Event, len(events))
		copy(shifted, events)
		var minStart int64
		for i := range shifted {
			shifted[i].T += offsets[shifted[i].Rank]
			if start := shifted[i].T - shifted[i].Nanos; i == 0 || start < minStart {
				minStart = start
			}
		}
		if minStart < 0 {
			for i := range shifted {
				shifted[i].T -= minStart
			}
		}
		events = shifted
	}
	out := ChromeTrace{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}
	type track struct{ pid, tid int }
	named := map[track]string{}
	use := func(pid, tid int, name string) {
		named[track{pid, tid}] = name
	}
	usToTs := func(ns int64) float64 { return float64(ns) / 1e3 }
	// spanStart reconstructs a span's start from its end stamp, clamped
	// to the tracer epoch (a span cannot begin before the tracer existed;
	// clock-resolution jitter could otherwise push it negative).
	spanStart := func(end, dur int64) float64 {
		if start := end - dur; start > 0 {
			return usToTs(start)
		}
		return 0
	}
	// Trace-tagged events (daemon jobs) get their own track block so each
	// request's span tree stays connected: jobTid maps a trace ID to its
	// base tid, in order of first appearance.
	jobTids := map[string]int{}
	jobTid := func(e Event) int {
		tid, ok := jobTids[e.Trace]
		if !ok {
			tid = TidJobBase + TidJobStride*len(jobTids)
			jobTids[e.Trace] = tid
			label := e.Job
			if label == "" {
				label = e.Trace
			}
			if len(label) > 16 {
				label = label[:16]
			}
			use(e.Rank, tid, "job "+label)
		}
		return tid
	}
	// jobArgs tags a Chrome event with its trace/job identity so Perfetto
	// queries can join spans back to logs and API results.
	jobArgs := func(e Event, args map[string]any) map[string]any {
		args["trace"] = e.Trace
		if e.Job != "" {
			args["job"] = e.Job
		}
		return args
	}
	for _, e := range events {
		switch e.Ev {
		case "span":
			if e.Trace != "" {
				base := jobTid(e)
				tid := base + 1 + e.Level
				use(e.Rank, tid, fmt.Sprintf("level %d", e.Level))
				out.TraceEvents = append(out.TraceEvents, ChromeEvent{
					Name: e.Kernel, Ph: "X", Cat: "region",
					Ts: spanStart(e.T, e.Nanos), Dur: usToTs(e.Nanos),
					Pid: e.Rank, Tid: tid,
					Args: jobArgs(e, map[string]any{"level": e.Level}),
				})
				continue
			}
			tid := TidLevelBase + e.Level
			use(e.Rank, tid, fmt.Sprintf("level %d", e.Level))
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: e.Kernel, Ph: "X", Cat: "region",
				Ts: spanStart(e.T, e.Nanos), Dur: usToTs(e.Nanos),
				Pid: e.Rank, Tid: tid,
				Args: map[string]any{"level": e.Level},
			})
		case "stage":
			// Service-stage spans only exist trace-tagged; an untagged one
			// (hand-written trace) lands in a shared job block keyed "".
			tid := jobTid(e)
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: e.Stage, Ph: "X", Cat: "stage",
				Ts: spanStart(e.T, e.Nanos), Dur: usToTs(e.Nanos),
				Pid: e.Rank, Tid: tid,
				Args: jobArgs(e, map[string]any{"stage": e.Stage}),
			})
		case "wspan":
			tid := TidWorkerBase + e.Worker
			use(e.Rank, tid, fmt.Sprintf("worker %d", e.Worker))
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: "busy", Ph: "X", Cat: "sched",
				Ts: spanStart(e.T, e.Nanos), Dur: usToTs(e.Nanos),
				Pid: e.Rank, Tid: tid,
				Args: map[string]any{"worker": e.Worker},
			})
		case "iter":
			tid := TidSolve
			args := map[string]any{"iter": e.Iter}
			if e.Trace != "" {
				tid = jobTid(e)
				args = jobArgs(e, args)
			} else {
				use(e.Rank, tid, "solve")
			}
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: fmt.Sprintf("iteration %d", e.Iter), Ph: "i", Cat: "iter",
				Ts: usToTs(e.T), Pid: e.Rank, Tid: tid, S: "p",
				Args: args,
			})
		case "solve":
			tid := TidSolve
			args := map[string]any{"iter": e.Iter, "rnm2": e.Rnm2}
			if e.Trace != "" {
				tid = jobTid(e)
				args = jobArgs(e, args)
			} else {
				use(e.Rank, tid, "solve")
			}
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: "solve", Ph: "X", Cat: "solve",
				Ts: spanStart(e.T, e.Nanos), Dur: usToTs(e.Nanos),
				Pid: e.Rank, Tid: tid,
				Args: args,
			})
		case "level":
			// The V-cycle depth counter: entering a level sets the gauge
			// to that level, leaving it restores the parent (level+1).
			tid := TidSolve
			if e.Trace != "" {
				tid = jobTid(e)
			} else {
				use(e.Rank, tid, "solve")
			}
			val := e.Level
			if e.Dir == "up" {
				val = e.Level + 1
			}
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: "vcycle level", Ph: "C",
				Ts: usToTs(e.T), Pid: e.Rank, Tid: tid,
				Args: map[string]any{"level": val},
			})
		case "plan":
			tid := TidLevelBase + e.Level
			args := map[string]any{"plan": e.Plan}
			if e.Trace != "" {
				tid = jobTid(e) + 1 + e.Level
				args = jobArgs(e, args)
			}
			use(e.Rank, tid, fmt.Sprintf("level %d", e.Level))
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: "plan " + e.Kernel, Ph: "i", Cat: "tune",
				Ts: usToTs(e.T), Pid: e.Rank, Tid: tid, S: "p",
				Args: args,
			})
		case "send", "recv":
			tid := TidCommBase + e.Level
			use(e.Rank, tid, fmt.Sprintf("comm level %d", e.Level))
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: fmt.Sprintf("%s %d↔%d", e.Ev, e.Rank, e.Peer), Ph: "X", Cat: "comm",
				Ts: spanStart(e.T, e.Nanos), Dur: usToTs(e.Nanos),
				Pid: e.Rank, Tid: tid,
				Args: map[string]any{
					"peer": e.Peer, "tag": e.Tag, "bytes": e.Bytes,
					"seq": e.Seq, "iter": e.Iter,
				},
			})
		case "hello":
			use(e.Rank, TidSolve, "solve")
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: "rendezvous", Ph: "i", Cat: "comm",
				Ts: usToTs(e.T), Pid: e.Rank, Tid: TidSolve, S: "p",
			})
		}
	}
	// Flow arrows between the two halves of every matched exchange: one
	// "s"/"f" pair sharing an id, anchored at the span midpoints. The
	// finish is clamped to never precede its start — residual clock error
	// on an aligned merge could otherwise invert an arrow, which renderers
	// reject.
	pairs, _, _ := PairComms(events)
	for i, p := range pairs {
		id := fmt.Sprintf("comm%d", i+1)
		sTs := usToTs(p.SendEndNs - p.SendNanos/2)
		fTs := usToTs(p.RecvEndNs - p.RecvNanos/2)
		if sTs < 0 {
			sTs = 0
		}
		if fTs < sTs {
			fTs = sTs
		}
		out.TraceEvents = append(out.TraceEvents,
			ChromeEvent{Name: "msg", Ph: "s", Cat: "comm", Id: id,
				Ts: sTs, Pid: p.Src, Tid: TidCommBase + p.Level},
			ChromeEvent{Name: "msg", Ph: "f", Bp: "e", Cat: "comm", Id: id,
				Ts: fTs, Pid: p.Dst, Tid: TidCommBase + p.Level},
		)
	}
	// Metadata: name each rank's process and every used track, in
	// deterministic order.
	tracks := make([]track, 0, len(named))
	for tr := range named {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	seenPid := map[int]bool{}
	var meta []ChromeEvent
	for _, tr := range tracks {
		if !seenPid[tr.pid] {
			seenPid[tr.pid] = true
			meta = append(meta, ChromeEvent{
				Name: "process_name", Ph: "M", Pid: tr.pid, Tid: 0,
				Args: map[string]any{"name": fmt.Sprintf("mg rank %d", tr.pid)},
			})
		}
		meta = append(meta, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: tr.pid, Tid: tr.tid,
			Args: map[string]any{"name": named[tr]},
		})
	}
	out.TraceEvents = append(meta, out.TraceEvents...)
	return out
}

// Validate checks the converter's output against the trace-event format
// contract Perfetto relies on: a traceEvents array whose records carry a
// name, a known phase, non-negative timestamps and durations, metadata
// args with a name, and instants with a valid scope. The schema unit test
// and mgtrace -check run it.
func (t ChromeTrace) Validate() error {
	if t.TraceEvents == nil {
		return fmt.Errorf("traceEvents missing")
	}
	for i, e := range t.TraceEvents {
		where := func(msg string, args ...any) error {
			return fmt.Errorf("traceEvents[%d] (%s %q): %s", i, e.Ph, e.Name, fmt.Sprintf(msg, args...))
		}
		if e.Name == "" {
			return fmt.Errorf("traceEvents[%d]: empty name", i)
		}
		switch e.Ph {
		case "X":
			if e.Dur < 0 {
				return where("negative dur %g", e.Dur)
			}
			if e.Ts < 0 {
				return where("negative ts %g", e.Ts)
			}
		case "i":
			if e.S != "" && e.S != "g" && e.S != "p" && e.S != "t" {
				return where("bad instant scope %q", e.S)
			}
			if e.Ts < 0 {
				return where("negative ts %g", e.Ts)
			}
		case "C":
			if len(e.Args) == 0 {
				return where("counter without args")
			}
		case "M":
			if _, ok := e.Args["name"]; !ok {
				return where("metadata without args.name")
			}
		case "s", "f":
			if e.Id == "" {
				return where("flow event without id")
			}
			if e.Ts < 0 {
				return where("negative ts %g", e.Ts)
			}
			if e.Ph == "f" && e.Bp != "" && e.Bp != "e" {
				return where("bad flow binding point %q", e.Bp)
			}
		default:
			return where("unknown phase")
		}
	}
	return nil
}
