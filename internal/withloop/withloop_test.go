package withloop

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/array"
	"repro/internal/mempool"
	"repro/internal/sched"
	"repro/internal/shape"
)

// envs returns environments covering every optimization level and a
// parallel configuration, for equivalence testing. Callers must Close them.
func envs() []*Env {
	list := []*Env{}
	for _, opt := range []OptLevel{O0, O1, O2, O3} {
		e := Default()
		e.Opt = opt
		e.SeqThreshold = 0
		list = append(list, e)
	}
	par := Parallel(4)
	par.SeqThreshold = 0
	list = append(list, par)
	par2 := Parallel(3)
	par2.Opt = O0
	par2.SeqThreshold = 0
	list = append(list, par2)
	return list
}

func closeAll(es []*Env) {
	for _, e := range es {
		e.Close()
	}
}

func TestOptLevelString(t *testing.T) {
	if O0.String() != "O0" || O3.String() != "O3" {
		t.Fatal("OptLevel.String wrong")
	}
}

func TestGenaraySimple(t *testing.T) {
	for _, e := range envs() {
		shp := shape.Of(2, 3)
		a := e.Genarray(shp, Full(shp), func(iv shape.Index) float64 {
			return float64(iv[0]*10 + iv[1])
		})
		want := array.FromSlice(shp, []float64{0, 1, 2, 10, 11, 12})
		if !a.Equal(want) {
			t.Fatalf("env %v/%dw: Genarray = %v, want %v", e.Opt, e.Workers(), a, want)
		}
	}
}

func TestGenarrayDefaultZeroOutsideGenerator(t *testing.T) {
	for _, e := range envs() {
		shp := shape.Of(4, 4)
		a := e.Genarray(shp, Gen([]int{1, 1}, []int{3, 3}), func(iv shape.Index) float64 {
			return 7
		})
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := 0.0
				if i >= 1 && i < 3 && j >= 1 && j < 3 {
					want = 7
				}
				if a.At(shape.Index{i, j}) != want {
					t.Fatalf("env %v: element (%d,%d) = %g, want %g",
						e.Opt, i, j, a.At(shape.Index{i, j}), want)
				}
			}
		}
	}
}

func TestGenarrayScalar(t *testing.T) {
	e := Default()
	a := e.Genarray(shape.Of(), Full(shape.Of()), func(iv shape.Index) float64 { return 5 })
	if a.Dim() != 0 || a.At(shape.Index{}) != 5 {
		t.Fatalf("scalar genarray = %v", a)
	}
}

func TestGenarrayStepWidth(t *testing.T) {
	// ( [0] <= iv < [10] step [3] width [2] ) selects 0,1,3,4,6,7,9.
	for _, e := range envs() {
		g := Gen([]int{0}, []int{10}).WithStep([]int{3}).WithWidth([]int{2})
		a := e.Genarray(shape.Of(10), g, func(iv shape.Index) float64 { return 1 })
		want := []float64{1, 1, 0, 1, 1, 0, 1, 1, 0, 1}
		for i, w := range want {
			if a.Data()[i] != w {
				t.Fatalf("env %v: step/width element %d = %g, want %g", e.Opt, i, a.Data()[i], w)
			}
		}
		if g.Count() != 7 {
			t.Fatalf("Count = %d, want 7", g.Count())
		}
	}
}

func TestGenarrayStride3D(t *testing.T) {
	// The scatter pattern: every 2nd element in each of 3 axes.
	for _, e := range envs() {
		shp := shape.Of(4, 4, 4)
		g := Full(shp).WithStep([]int{2, 2, 2})
		a := e.Genarray(shp, g, func(iv shape.Index) float64 { return 1 })
		count := 0.0
		for _, v := range a.Data() {
			count += v
		}
		if count != 8 {
			t.Fatalf("env %v: strided 3-D generator wrote %g cells, want 8", e.Opt, count)
		}
		if a.At3(0, 0, 0) != 1 || a.At3(2, 2, 2) != 1 || a.At3(1, 0, 0) != 0 {
			t.Fatalf("env %v: strided positions wrong", e.Opt)
		}
	}
}

func TestModarray(t *testing.T) {
	for _, e := range envs() {
		base := array.FromSlice(shape.Of(3, 3), []float64{1, 1, 1, 1, 1, 1, 1, 1, 1})
		out := e.Modarray(base, Inner(base.Shape()), func(iv shape.Index) float64 { return 9 })
		if base.At(shape.Index{1, 1}) != 1 {
			t.Fatalf("env %v: Modarray mutated its argument", e.Opt)
		}
		if out.At(shape.Index{1, 1}) != 9 {
			t.Fatalf("env %v: Modarray did not apply f", e.Opt)
		}
		if out.At(shape.Index{0, 0}) != 1 || out.At(shape.Index{2, 2}) != 1 {
			t.Fatalf("env %v: Modarray changed elements outside the generator", e.Opt)
		}
	}
}

func TestModarrayReadsOldValues(t *testing.T) {
	// f reads the argument array; modarray semantics require the *old*
	// values even where the generator overwrites.
	e := Default()
	baseVals := []float64{1, 2, 3, 4, 5}
	base := array.FromSlice(shape.Of(5), baseVals)
	out := e.Modarray(base, Gen([]int{1}, []int{4}), func(iv shape.Index) float64 {
		return base.At(shape.Index{iv[0] - 1}) // reads a position the loop also writes
	})
	want := []float64{1, 1, 2, 3, 5}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("element %d = %g, want %g", i, out.Data()[i], w)
		}
	}
}

func TestModarrayReuseSemanticsMatchModarray(t *testing.T) {
	for _, e := range envs() {
		mk := func() *array.Array {
			return e.Genarray(shape.Of(4, 4), Full(shape.Of(4, 4)),
				func(iv shape.Index) float64 { return float64(iv[0] + iv[1]) })
		}
		g := Gen([]int{0, 0}, []int{1, 4}) // first row only; f reads other rows
		ref := e.Modarray(mk(), g, func(iv shape.Index) float64 { return -1 })
		a := mk()
		got := e.ModarrayReuse(a, g, func(iv shape.Index) float64 { return -1 })
		if !got.Equal(ref) {
			t.Fatalf("env %v: ModarrayReuse diverges from Modarray", e.Opt)
		}
		if e.Opt >= O2 && got != a {
			t.Fatalf("env %v: ModarrayReuse did not reuse in place", e.Opt)
		}
	}
}

func TestFoldSum(t *testing.T) {
	add := func(a, b float64) float64 { return a + b }
	for _, e := range envs() {
		shp := shape.Of(6, 7)
		got := e.Fold(shp, Full(shp), add, 0, func(iv shape.Index) float64 {
			return float64(iv[0]*7 + iv[1])
		})
		want := float64(41*42) / 2
		if got != want {
			t.Fatalf("env %v/%dw: Fold = %g, want %g", e.Opt, e.Workers(), got, want)
		}
	}
}

func TestFoldMax(t *testing.T) {
	for _, e := range envs() {
		shp := shape.Of(5, 5, 5)
		got := e.Fold(shp, Inner(shp), math.Max, math.Inf(-1), func(iv shape.Index) float64 {
			return math.Sin(float64(iv[0]*25 + iv[1]*5 + iv[2]))
		})
		want := math.Inf(-1)
		for i := 1; i < 4; i++ {
			for j := 1; j < 4; j++ {
				for k := 1; k < 4; k++ {
					want = math.Max(want, math.Sin(float64(i*25+j*5+k)))
				}
			}
		}
		if got != want {
			t.Fatalf("env %v: Fold max = %g, want %g", e.Opt, got, want)
		}
	}
}

func TestFoldEmptyGeneratorYieldsNeutral(t *testing.T) {
	e := Default()
	got := e.Fold(shape.Of(5), Gen([]int{3}, []int{3}),
		func(a, b float64) float64 { return a + b }, 42, func(shape.Index) float64 { return 1 })
	if got != 42 {
		t.Fatalf("empty fold = %g, want neutral 42", got)
	}
}

func TestFoldScalarSpace(t *testing.T) {
	e := Default()
	got := e.Fold(shape.Of(), Full(shape.Of()),
		func(a, b float64) float64 { return a + b }, 1, func(shape.Index) float64 { return 2 })
	if got != 3 {
		t.Fatalf("scalar fold = %g, want 3", got)
	}
}

// All optimization levels and worker counts must produce bit-identical
// arrays for the same WITH-loop.
func TestLevelsAndWorkersEquivalent(t *testing.T) {
	es := envs()
	defer closeAll(es)
	shp := shape.Of(9, 8, 7)
	gens := []Generator{
		Full(shp),
		Inner(shp),
		Gen([]int{0, 2, 1}, []int{9, 8, 6}),
		Full(shp).WithStep([]int{2, 1, 3}),
		Full(shp).WithStep([]int{3, 2, 2}).WithWidth([]int{2, 1, 2}),
	}
	f := func(iv shape.Index) float64 {
		return math.Sqrt(float64(iv[0]+1)) * float64(iv[1]) * 0.25 * float64(iv[2]*iv[2])
	}
	for gi, g := range gens {
		ref := es[0].Genarray(shp, g, f)
		for _, e := range es[1:] {
			got := e.Genarray(shp, g, f)
			if !got.Equal(ref) {
				t.Fatalf("generator %d (%v): env %v/%dw diverges from O0 reference",
					gi, g, e.Opt, e.Workers())
			}
		}
		refFold := es[0].Fold(shp, g, func(a, b float64) float64 { return a + b }, 0, f)
		for _, e := range es[1:] {
			got := e.Fold(shp, g, func(a, b float64) float64 { return a + b }, 0, f)
			if got != refFold {
				t.Fatalf("generator %d: fold at env %v/%dw = %v, want %v (bitwise)",
					gi, e.Opt, e.Workers(), got, refFold)
			}
		}
	}
}

func TestGeneratorContains(t *testing.T) {
	g := Gen([]int{1, 0}, []int{5, 6}).WithStep([]int{2, 3}).WithWidth([]int{1, 2})
	cases := []struct {
		iv   shape.Index
		want bool
	}{
		{shape.Index{1, 0}, true},
		{shape.Index{1, 1}, true},
		{shape.Index{1, 2}, false}, // (2-0)%3=2 >= width 2
		{shape.Index{2, 0}, false}, // (2-1)%2=1 >= width 1
		{shape.Index{3, 3}, true},
		{shape.Index{5, 0}, false}, // upper bound exclusive
		{shape.Index{0, 0}, false}, // below lower
		{shape.Index{1}, false},    // rank mismatch
	}
	for _, c := range cases {
		if got := g.Contains(c.iv); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.iv, got, c.want)
		}
	}
}

// Property: Genarray agrees with a direct evaluation using
// Generator.Contains for random generators.
func TestGenarrayMatchesContainsQuick(t *testing.T) {
	e := Default()
	e.SeqThreshold = 0
	f := func(lraw, uraw [2]uint8, sraw [2]uint8, useStep bool) bool {
		shp := shape.Of(7, 9)
		lower := []int{int(lraw[0] % 7), int(lraw[1] % 9)}
		upper := []int{lower[0] + int(uraw[0]%uint8(8-lower[0])), lower[1] + int(uraw[1]%uint8(10-lower[1]))}
		g := Gen(lower, upper)
		if useStep {
			g = g.WithStep([]int{int(sraw[0]%3) + 1, int(sraw[1]%3) + 1})
		}
		val := func(iv shape.Index) float64 { return float64(iv[0]*100+iv[1]) + 1 }
		a := e.Genarray(shp, g, val)
		iv := make(shape.Index, 2)
		for i := 0; i < 7; i++ {
			for j := 0; j < 9; j++ {
				iv[0], iv[1] = i, j
				want := 0.0
				if g.Contains(iv) {
					want = val(iv)
				}
				if a.At(iv) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Fold(+) over any generator equals the sum of Genarray's
// elements when f is non-zero only inside the generator.
func TestFoldMatchesGenarraySumQuick(t *testing.T) {
	e := Default()
	e.SeqThreshold = 0
	f := func(seed uint8, useStep bool) bool {
		shp := shape.Of(6, 5)
		g := Gen([]int{int(seed % 3), 0}, []int{6, int(seed%4) + 2})
		if useStep {
			g = g.WithStep([]int{2, 1})
		}
		val := func(iv shape.Index) float64 { return float64(iv[0]+2*iv[1]) + 1 }
		arr := e.Genarray(shp, g, val)
		sum := 0.0
		for _, v := range arr.Data() {
			sum += v
		}
		fold := e.Fold(shp, g, func(a, b float64) float64 { return a + b }, 0, val)
		return math.Abs(fold-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidatePanics(t *testing.T) {
	e := Default()
	bad := []Generator{
		Gen([]int{0}, []int{2, 2}),                                                 // rank mismatch in bounds
		Gen([]int{0, 0}, []int{2, 2}).WithStep([]int{1}),                           // step rank
		Gen([]int{0, 0}, []int{2, 2}).WithStep([]int{0, 1}),                        // step < 1
		Gen([]int{0, 0}, []int{2, 2}).WithStep([]int{2, 2}).WithWidth([]int{3, 1}), // width > step
		{Lower: []int{0, 0}, Upper: []int{2, 2}, Width: []int{1, 1}},               // width without step
	}
	for i, g := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad generator %d (%v) did not panic", i, g)
				}
			}()
			e.Genarray(shape.Of(2, 2), g, func(shape.Index) float64 { return 0 })
		}()
	}
}

func TestGeneratorString(t *testing.T) {
	g := Gen([]int{0, 0}, []int{4, 4}).WithStep([]int{2, 2}).WithWidth([]int{1, 2})
	s := g.String()
	for _, frag := range []string{"[0,0]", "[4,4]", "step", "width"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Generator.String() = %q missing %q", s, frag)
		}
	}
}

func TestEnvReleaseRecycles(t *testing.T) {
	e := Default()
	a := e.NewArray(shape.Of(32))
	ptr := &a.Data()[0]
	e.Release(a)
	b := e.NewArray(shape.Of(32))
	if &b.Data()[0] != ptr {
		t.Fatal("Release did not feed the memory pool")
	}
	e.Release(nil) // must not panic
}

func TestEnvNilPoolWorks(t *testing.T) {
	e := &Env{Sched: sched.Sequential, Opt: O3}
	a := e.Genarray(shape.Of(3), Full(shape.Of(3)), func(iv shape.Index) float64 {
		return float64(iv[0])
	})
	if a.Data()[2] != 2 {
		t.Fatal("nil-pool env broken")
	}
	e.Release(a)
}

func TestParallelEnvClose(t *testing.T) {
	e := Parallel(3)
	if e.Workers() != 3 {
		t.Fatalf("Workers = %d", e.Workers())
	}
	e.Close()
	// Close of an env on the shared sequential pool must not close it.
	d := Default()
	d.Close()
	ran := false
	sched.Sequential.For(1, sched.ForOptions{}, func(lo, hi, w int) { ran = true })
	if !ran {
		t.Fatal("Default env Close broke the shared sequential pool")
	}
}

func TestFullInnerGenerators(t *testing.T) {
	shp := shape.Of(5, 6)
	full := Full(shp)
	if full.Count() != 30 || !full.IsFull(shp) {
		t.Fatalf("Full generator wrong: %v", full)
	}
	inner := Inner(shp)
	if inner.Count() != 3*4 || inner.IsFull(shp) {
		t.Fatalf("Inner generator wrong: %v", inner)
	}
}

func TestSeqThresholdRespected(t *testing.T) {
	// With a huge threshold even a parallel env must produce correct (and
	// identical) results — the loop just runs inline.
	e := Parallel(4)
	defer e.Close()
	e.SeqThreshold = 1 << 30
	shp := shape.Of(16, 16)
	a := e.Genarray(shp, Full(shp), func(iv shape.Index) float64 { return float64(iv[0] ^ iv[1]) })
	d := Default()
	b := d.Genarray(shp, Full(shp), func(iv shape.Index) float64 { return float64(iv[0] ^ iv[1]) })
	if !a.Equal(b) {
		t.Fatal("threshold execution diverges")
	}
}

func BenchmarkGenarrayO0(b *testing.B) { benchGenarray(b, O0) }
func BenchmarkGenarrayO1(b *testing.B) { benchGenarray(b, O1) }

func benchGenarray(b *testing.B, opt OptLevel) {
	e := Default()
	e.Opt = opt
	shp := shape.Of(64, 64, 64)
	g := Full(shp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := e.Genarray(shp, g, func(iv shape.Index) float64 {
			return float64(iv[0] + iv[1] + iv[2])
		})
		e.Release(a)
	}
}

var _ = mempool.New // keep import if unused in some build configurations

// Modarray with a strided generator: only the selected grid positions are
// replaced.
func TestModarrayStrided(t *testing.T) {
	for _, e := range envs() {
		base := array.NewFilled(shape.Of(6, 6), 1)
		g := Full(base.Shape()).WithStep([]int{2, 3})
		out := e.Modarray(base, g, func(iv shape.Index) float64 { return 9 })
		iv := make(shape.Index, 2)
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				iv[0], iv[1] = i, j
				want := 1.0
				if g.Contains(iv) {
					want = 9
				}
				if out.At(iv) != want {
					t.Fatalf("env %v: strided modarray at %v = %v, want %v", e.Opt, iv, out.At(iv), want)
				}
			}
		}
	}
}

// Fold with a non-commutative-looking but associative op (max of absolute
// differences from a pivot) across strided generators and all levels.
func TestFoldStridedAllLevels(t *testing.T) {
	var ref float64
	for i, e := range envs() {
		shp := shape.Of(8, 8, 8)
		g := Inner(shp).WithStep([]int{2, 1, 3})
		got := e.Fold(shp, g, math.Max, 0, func(iv shape.Index) float64 {
			return math.Abs(float64(iv[0]*iv[1]) - float64(iv[2]*5))
		})
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("env %v/%dw: strided fold = %v, want %v", e.Opt, e.Workers(), got, ref)
		}
	}
}
