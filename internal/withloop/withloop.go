// Package withloop implements SAC's WITH-loop — the single language
// construct from which all compound array operations in this repository are
// built (paper, Fig. 1).
//
// A WITH-loop consists of a generator and an operation:
//
//	with ( lower <= iv < upper step s width w )
//	    genarray( shp, expr )      → Genarray
//	    modarray( array, expr )    → Modarray
//	    fold( op, neutral, expr )  → Fold
//
// The generator denotes the index-vector set
//
//	{ iv | ∀j: lower[j] <= iv[j] < upper[j]  ∧  (iv[j]-lower[j]) mod s[j] < w[j] }
//
// Because SAC has no built-in compound array operations, everything the MG
// benchmark needs — element-wise arithmetic, condense, scatter, embed, take,
// relaxation stencils — is defined in terms of these three forms (see
// internal/aplib and internal/stencil).
//
// # Optimization levels
//
// The paper's performance results depend on sac2c's "aggressive compiler
// optimizations" (WITH-loop folding, specialization, implicit stencil
// optimization). A Go library cannot compile, so the engine models the
// compiler as a runtime optimization level on the evaluation environment:
//
//	O0  fully generic evaluation: every element goes through index-vector
//	    unflattening and a per-element closure call — the semantics-level
//	    interpreter, the "unoptimized SAC" baseline.
//	O1  dense-box fast paths: full-range generators of rank ≤ 3 iterate
//	    with nested counters instead of unflattening.
//	O2  library fusion: array-library functions (internal/aplib) replace
//	    their WITH-loop definitions with flat fused loops, and modarray on
//	    a uniquely-referenced argument updates in place (SAC's
//	    reference-count-1 reuse).
//	O3  stencil specialization: the 27-point relaxation kernel uses the
//	    fused four-multiplication form that the paper says sac2c derives
//	    implicitly (internal/stencil).
//
// Levels are cumulative. The engine guarantees identical results at every
// level; the equivalence is tested exhaustively.
//
// # Parallel execution
//
// Every WITH-loop is implicitly parallel: the generator's index set is
// flattened and partitioned across the Env's scheduler pool, mirroring
// SAC's implicit multithreading. Results are bit-identical for any worker
// count (fold partials combine in block order).
package withloop

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/health"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/shape"
	"repro/internal/tune"
)

// OptLevel models the sac2c optimization level. See the package comment.
type OptLevel int

const (
	// O0 is fully generic per-element evaluation.
	O0 OptLevel = iota
	// O1 adds dense-box iteration fast paths.
	O1
	// O2 adds array-library fusion and in-place reuse.
	O2
	// O3 adds 27-point stencil specialization.
	O3
)

// String returns "O0".."O3".
func (o OptLevel) String() string { return fmt.Sprintf("O%d", int(o)) }

// Env is the runtime environment of a "compiled SAC program": the scheduler
// (implicit multithreading), the memory manager (reference-count-style
// reuse), and the optimization level. Envs are cheap descriptors; the same
// Env is shared by every operation of one program run.
type Env struct {
	// Sched executes the index spaces. nil means sequential.
	Sched *sched.Pool
	// Pool recycles array buffers. nil means plain allocation.
	Pool *mempool.Pool
	// Opt is the modeled compiler optimization level.
	Opt OptLevel
	// SeqThreshold runs WITH-loops with at most this many index vectors
	// sequentially, regardless of the pool — SAC's small-grid policy.
	SeqThreshold int
	// ForOpt selects the scheduling policy for parallel loops.
	ForOpt sched.ForOptions
	// Tile is the j/k cache-tile edge of the tiled rank-3 kernels when no
	// tuner overrides it (0 = untiled full-plane traversal).
	Tile int
	// Variant, when non-empty, forces the inner-loop kernel backend
	// (tune.VariantScalar/Buffered/SIMD) for every plane kernel,
	// overriding tuned plans — the -variant flag of cmd/mg and
	// cmd/mgbench. The MG_FORCE_VARIANT environment variable overrides
	// even this.
	Variant string
	// Tune, when non-nil, supplies per-(kernel, level) execution plans —
	// scheduling policy, chunk, sequential threshold, tile size and
	// kernel variant — and calibrates them on first use (see
	// internal/tune). It overrides ForOpt, SeqThreshold and Tile for the
	// kernels that consult it.
	Tune *tune.Tuner
	// Metrics, when non-nil, receives per-(kernel, level) invocation
	// statistics from the fused kernels and the benchmark driver
	// (internal/metrics). nil disables collection at the cost of one nil
	// check per kernel invocation. Prefer AttachMetrics, which also wires
	// the environment's own pool for worker busy-time accounting.
	Metrics *metrics.Collector
	// Trace, when non-nil, receives structured V-cycle events — level
	// transitions, kernel spans, iteration markers, solve summaries — as
	// JSON lines. nil disables tracing for free. Prefer AttachTrace,
	// which also wires the environment's own pool for per-worker span
	// events.
	Trace *metrics.Tracer
	// Health, when non-nil, receives runtime convergence signals from the
	// solver hooks: per-iteration residual norms, sampled NaN/Inf kernel
	// guards, and (via the collector snapshot) worker load balance. nil
	// disables monitoring at the cost of one nil check per hook site.
	Health *health.Monitor
}

// Default returns the environment of the paper's sequential measurements:
// single worker, memory pooling on, full optimization.
func Default() *Env {
	return &Env{
		Sched:        sched.Sequential,
		Pool:         mempool.New(true),
		Opt:          O3,
		SeqThreshold: 4096,
	}
}

// Parallel returns an environment with its own worker pool of the given
// size, memory pooling, and full optimization — the paper's implicitly
// parallelized configuration. Close the returned pool via env.Close.
func Parallel(workers int) *Env {
	return &Env{
		Sched:        sched.NewPool(workers),
		Pool:         mempool.New(true),
		Opt:          O3,
		SeqThreshold: 4096,
	}
}

// Service returns an environment for one solve job of a resident
// process: it schedules onto the given shared pool and draws arrays from
// a fresh per-job Scope of the given arena (nil arguments select the
// process-global sched.Shared and mempool.Shared), with full
// optimization. The environment's Close is safe — persistent pools
// ignore it — and the scope's Stats are the job's memory accounting.
func Service(pool *sched.Pool, arena *mempool.Pool) *Env {
	if pool == nil {
		pool = sched.Shared()
	}
	if arena == nil {
		arena = mempool.Shared()
	}
	return &Env{
		Sched:        pool,
		Pool:         arena.Scope(),
		Opt:          O3,
		SeqThreshold: 4096,
	}
}

// Close releases the environment's worker pool. Persistent pools — the
// shared sequential pool, the process-global service pool — ignore
// Close, so environments over shared runtimes are safe to close
// unconditionally.
func (e *Env) Close() {
	if e.Sched != nil {
		e.Sched.Close()
	}
}

// Observing reports whether any observability sink is attached.
func (e *Env) Observing() bool { return e.Metrics != nil || e.Trace != nil || e.Health != nil }

// AttachMetrics installs a collector on the environment and, when the
// environment owns its pool, on the pool as well (per-worker busy time).
// Persistent pools (Sequential, the shared service pool) are never
// mutated — other environments in the process may be using them; their
// environments still collect kernel metrics, just without pool busy
// accounting. AttachMetrics(nil) detaches both.
func (e *Env) AttachMetrics(c *metrics.Collector) {
	e.Metrics = c
	if e.Sched != nil && !e.Sched.Persistent() {
		e.Sched.SetMetrics(c)
	}
}

// AttachTrace installs a tracer on the environment and, when the
// environment owns its pool, on the pool as well (per-worker "wspan" busy
// slices for the Perfetto worker tracks). Like AttachMetrics, persistent
// pools are never mutated. AttachTrace(nil) detaches both.
func (e *Env) AttachTrace(t *metrics.Tracer) {
	e.Trace = t
	if e.Sched != nil && !e.Sched.Persistent() {
		e.Sched.SetTracer(t)
	}
}

// Workers returns the number of workers the environment schedules onto.
func (e *Env) Workers() int {
	if e.Sched == nil {
		return 1
	}
	return e.Sched.Workers()
}

// forOptions merges the environment's scheduling options with its
// sequential threshold for an index space of n elements.
func (e *Env) forOptions() sched.ForOptions {
	o := e.ForOpt
	if o.SeqThreshold < e.SeqThreshold {
		o.SeqThreshold = e.SeqThreshold
	}
	return o
}

// PlanFor resolves the execution schedule of one named kernel invocation
// at the given MG grid level: the scheduler options for its plane loop,
// the cache-tile edge, the inner-loop kernel variant, and a commit
// function the kernel must call when the loop has finished (it feeds the
// measured wall time back to the tuner during calibration). perItem is
// the number of index vectors each loop iteration covers; the sequential
// threshold is defined in index vectors, so it is divided by perItem
// before reaching the scheduler.
//
// The variant resolves by precedence: MG_FORCE_VARIANT, then
// Env.Variant, then the plan's Kernel field (scalar without a tuner).
//
// Without a tuner the plan is the environment's static configuration
// (ForOpt, SeqThreshold, Tile, Variant) and commit is a no-op —
// bit-for-bit the pre-tuner behaviour.
func (e *Env) PlanFor(kernel string, level, perItem int) (sched.ForOptions, int, string, func()) {
	if e.Tune != nil {
		plan, commit := e.Tune.Begin(kernel, level)
		opts := plan.ForOptions()
		if perItem > 0 {
			opts.SeqThreshold /= perItem
		}
		return opts, plan.Tile, e.variantOver(plan.Variant()), commit
	}
	opts := e.ForOpt
	if perItem > 0 {
		opts.SeqThreshold = max(opts.SeqThreshold, e.SeqThreshold) / perItem
	}
	return opts, e.Tile, e.variantOver(tune.VariantScalar), noCommit
}

// VariantFor reports which kernel variant a (kernel, level) invocation
// would run right now, without touching calibration state: the same
// precedence as PlanFor, with the tuner's current plan (settled choice
// or mid-calibration front-runner) as the base. Observation only — the
// perf harness uses it to stamp snapshot rows with the backend that was
// actually measured.
func (e *Env) VariantFor(kernel string, level int) string {
	planned := tune.VariantScalar
	if e.Tune != nil {
		if plan, ok := e.Tune.Plans()[tune.Key{Kernel: kernel, Level: level}]; ok {
			planned = plan.Variant()
		}
	}
	return e.variantOver(planned)
}

// variantOver applies the forced-variant precedence over a plan's choice.
func (e *Env) variantOver(planned string) string {
	if forced := tune.ForcedVariant(); forced != "" {
		return forced
	}
	if e.Variant != "" {
		return e.Variant
	}
	return planned
}

// noCommit is the shared no-op commit of untuned plans.
func noCommit() {}

func (e *Env) pool() *mempool.Pool { return e.Pool }

// NewArray allocates a zeroed array through the environment's memory
// manager.
func (e *Env) NewArray(shp shape.Shape) *array.Array {
	return array.Wrap(shp, e.pool().Get(shp.Size()))
}

// NewArrayDirty allocates an array with unspecified contents through the
// environment's memory manager, for callers
// that overwrite every element.
func (e *Env) NewArrayDirty(shp shape.Shape) *array.Array {
	return array.Wrap(shp, e.pool().GetDirty(shp.Size()))
}

// Release returns an array's storage to the memory manager — the moment
// SAC's reference counter would drop to zero. The caller must not use a
// afterwards. Release(nil) is a no-op.
func (e *Env) Release(a *array.Array) {
	if a == nil {
		return
	}
	e.pool().Put(a.Data())
}

// --- Generators -------------------------------------------------------------

// Generator denotes a rectangular, optionally strided index-vector set:
// ( Lower <= iv < Upper step Step width Width ). Step and Width are nil for
// dense generators; a non-nil Step with nil Width means width 1 (the SAC
// default).
type Generator struct {
	Lower, Upper []int
	Step, Width  []int
}

// Gen builds a dense generator (lower <= iv < upper).
func Gen(lower, upper []int) Generator { return Generator{Lower: lower, Upper: upper} }

// Full builds the generator that covers every index of shp — the SAC
// notation ( . <= iv <= . ) for a result of that shape.
func Full(shp shape.Shape) Generator {
	return Gen(shape.Zeros(shp.Rank()), []int(shp.Clone()))
}

// Inner builds the generator covering every non-boundary index of shp —
// (1*ones <= iv < shp-1), the index set of relaxation kernels.
func Inner(shp shape.Shape) Generator {
	return Gen(shape.Ones(shp.Rank()), shape.AddScalar([]int(shp), -1))
}

// WithStep returns a copy of g with the given step filter (width defaults
// to 1 in every axis).
func (g Generator) WithStep(step []int) Generator {
	g.Step = step
	return g
}

// WithWidth returns a copy of g with the given width filter. Only
// meaningful together with a step.
func (g Generator) WithWidth(width []int) Generator {
	g.Width = width
	return g
}

// Rank returns the rank of the generator's index vectors.
func (g Generator) Rank() int { return len(g.Lower) }

// validate panics unless the generator is well-formed for the given rank.
func (g Generator) validate(rank int) {
	if len(g.Lower) != rank || len(g.Upper) != rank {
		panic(fmt.Sprintf("withloop: generator bounds %v/%v do not have rank %d",
			g.Lower, g.Upper, rank))
	}
	if g.Step != nil && len(g.Step) != rank {
		panic(fmt.Sprintf("withloop: generator step %v does not have rank %d", g.Step, rank))
	}
	if g.Width != nil && len(g.Width) != rank {
		panic(fmt.Sprintf("withloop: generator width %v does not have rank %d", g.Width, rank))
	}
	if g.Width != nil && g.Step == nil {
		panic("withloop: generator width without step")
	}
	for j := 0; j < rank; j++ {
		if g.Step != nil {
			if g.Step[j] < 1 {
				panic(fmt.Sprintf("withloop: generator step %v must be >= 1", g.Step))
			}
			w := 1
			if g.Width != nil {
				w = g.Width[j]
			}
			if w < 1 || w > g.Step[j] {
				panic(fmt.Sprintf("withloop: generator width %v must satisfy 1 <= width <= step %v",
					g.Width, g.Step))
			}
		}
	}
}

// Contains reports whether iv is a member of the generator's index set.
func (g Generator) Contains(iv shape.Index) bool {
	if len(iv) != g.Rank() {
		return false
	}
	for j := range iv {
		if iv[j] < g.Lower[j] || iv[j] >= g.Upper[j] {
			return false
		}
		if g.Step != nil {
			w := 1
			if g.Width != nil {
				w = g.Width[j]
			}
			if (iv[j]-g.Lower[j])%g.Step[j] >= w {
				return false
			}
		}
	}
	return true
}

// positions returns, per axis, the list of coordinate values the generator
// selects. The generator's index set is the cross product of these lists.
func (g Generator) positions() [][]int {
	pos := make([][]int, g.Rank())
	for j := range pos {
		var list []int
		step, width := 1, 1
		if g.Step != nil {
			step = g.Step[j]
			if g.Width != nil {
				width = g.Width[j]
			}
		}
		for i := g.Lower[j]; i < g.Upper[j]; i++ {
			if (i-g.Lower[j])%step < width {
				list = append(list, i)
			}
		}
		pos[j] = list
	}
	return pos
}

// Count returns the number of index vectors in the generator's set.
func (g Generator) Count() int {
	n := 1
	for _, p := range g.positions() {
		n *= len(p)
	}
	return n
}

// IsFull reports whether the generator densely covers all of shp.
func (g Generator) IsFull(shp shape.Shape) bool {
	if g.Rank() != shp.Rank() || g.Step != nil {
		return false
	}
	for j := range g.Lower {
		if g.Lower[j] != 0 || g.Upper[j] != shp[j] {
			return false
		}
	}
	return true
}

// isDense reports whether the generator has no step/width filter.
func (g Generator) isDense() bool { return g.Step == nil }

// String renders the generator in SAC syntax.
func (g Generator) String() string {
	s := fmt.Sprintf("(%v <= iv < %v", shape.Shape(g.Lower), shape.Shape(g.Upper))
	if g.Step != nil {
		s += fmt.Sprintf(" step %v", shape.Shape(g.Step))
		if g.Width != nil {
			s += fmt.Sprintf(" width %v", shape.Shape(g.Width))
		}
	}
	return s + ")"
}

// --- iteration core ----------------------------------------------------------

// iterate invokes visit(iv, off) for every index vector in g's set, where
// off is the row-major offset of iv within shp. The index space is
// partitioned across the environment's workers; visit must only write to
// locations derived from off. The iv buffer passed to visit is reused
// between calls on the same worker and must not be retained.
func (e *Env) iterate(shp shape.Shape, g Generator, visit func(iv shape.Index, off int)) {
	g.validate(shp.Rank())
	rank := shp.Rank()
	if rank == 0 {
		// Scalar space: the only index vector is [].
		visit(shape.Index{}, 0)
		return
	}

	// Fast path (O1+): dense full-range rank-3 generators iterate with
	// plain counters — by far the most common case in MG.
	if e.Opt >= O1 && g.isDense() {
		if rank == 3 {
			e.iterateDense3(shp, g, visit)
			return
		}
		if rank <= 2 {
			e.iterateDenseLow(shp, g, visit)
			return
		}
	}

	// Generic path: cross product of per-axis position lists.
	pos := g.positions()
	total := 1
	for _, p := range pos {
		total *= len(p)
	}
	if total == 0 {
		return
	}
	// Split over the first axis' positions when possible so that workers
	// get large contiguous sub-boxes; otherwise flatten everything.
	inner := total / len(pos[0])
	strides := shp.Strides()
	e.Sched.For(len(pos[0]), e.forOptionsScaled(total, len(pos[0])), func(lo, hi, _ int) {
		iv := make(shape.Index, rank)
		sub := make([]int, rank) // position-list cursor per axis
		for p0 := lo; p0 < hi; p0++ {
			iv[0] = pos[0][p0]
			for j := 1; j < rank; j++ {
				sub[j] = 0
				iv[j] = pos[j][0]
			}
			for c := 0; c < inner; c++ {
				off := 0
				for j := 0; j < rank; j++ {
					off += iv[j] * strides[j]
				}
				visit(iv, off)
				// Odometer increment over axes 1..rank-1.
				for j := rank - 1; j >= 1; j-- {
					sub[j]++
					if sub[j] < len(pos[j]) {
						iv[j] = pos[j][sub[j]]
						break
					}
					sub[j] = 0
					iv[j] = pos[j][0]
				}
			}
		}
	})
}

// forOptionsScaled adapts the sequential threshold when parallelizing over
// an outer axis: the threshold is defined in index vectors, but the loop
// counts outer positions each covering total/outer vectors.
func (e *Env) forOptionsScaled(total, outer int) sched.ForOptions {
	o := e.forOptions()
	if outer > 0 {
		per := total / outer
		if per > 0 {
			o.SeqThreshold = o.SeqThreshold / per
		}
	}
	return o
}

// iterateDense3 handles dense rank-3 generators with nested counters.
func (e *Env) iterateDense3(shp shape.Shape, g Generator, visit func(iv shape.Index, off int)) {
	l0, l1, l2 := g.Lower[0], g.Lower[1], g.Lower[2]
	u0, u1, u2 := g.Upper[0], g.Upper[1], g.Upper[2]
	if u0 <= l0 || u1 <= l1 || u2 <= l2 {
		return
	}
	n1, n2 := shp[1], shp[2]
	total := (u0 - l0) * (u1 - l1) * (u2 - l2)
	e.Sched.For(u0-l0, e.forOptionsScaled(total, u0-l0), func(lo, hi, _ int) {
		iv := make(shape.Index, 3)
		for i0 := l0 + lo; i0 < l0+hi; i0++ {
			iv[0] = i0
			base0 := i0 * n1 * n2
			for i1 := l1; i1 < u1; i1++ {
				iv[1] = i1
				base1 := base0 + i1*n2
				for i2 := l2; i2 < u2; i2++ {
					iv[2] = i2
					visit(iv, base1+i2)
				}
			}
		}
	})
}

// iterateDenseLow handles dense rank-1 and rank-2 generators.
func (e *Env) iterateDenseLow(shp shape.Shape, g Generator, visit func(iv shape.Index, off int)) {
	switch shp.Rank() {
	case 1:
		l0, u0 := g.Lower[0], g.Upper[0]
		if u0 <= l0 {
			return
		}
		e.Sched.For(u0-l0, e.forOptions(), func(lo, hi, _ int) {
			iv := make(shape.Index, 1)
			for i := l0 + lo; i < l0+hi; i++ {
				iv[0] = i
				visit(iv, i)
			}
		})
	case 2:
		l0, l1 := g.Lower[0], g.Lower[1]
		u0, u1 := g.Upper[0], g.Upper[1]
		if u0 <= l0 || u1 <= l1 {
			return
		}
		n1 := shp[1]
		total := (u0 - l0) * (u1 - l1)
		e.Sched.For(u0-l0, e.forOptionsScaled(total, u0-l0), func(lo, hi, _ int) {
			iv := make(shape.Index, 2)
			for i0 := l0 + lo; i0 < l0+hi; i0++ {
				iv[0] = i0
				base := i0 * n1
				for i1 := l1; i1 < u1; i1++ {
					iv[1] = i1
					visit(iv, base+i1)
				}
			}
		})
	}
}

// --- the three WITH-loop operations ------------------------------------------

// ElemFunc computes the WITH-loop body expression for one index vector.
// The iv buffer is reused between calls; implementations must not retain it.
type ElemFunc func(iv shape.Index) float64

// Genarray evaluates
//
//	with (g) genarray(shp, f(iv))
//
// producing an array of the given shape whose elements are f(iv) inside the
// generator's index set and 0 elsewhere.
func (e *Env) Genarray(shp shape.Shape, g Generator, f ElemFunc) *array.Array {
	g.validate(shp.Rank())
	var out *array.Array
	if g.IsFull(shp) {
		out = e.NewArrayDirty(shp) // every element will be written
	} else {
		out = e.NewArray(shp) // zero default outside the generator
	}
	data := out.Data()
	e.iterate(shp, g, func(iv shape.Index, off int) {
		data[off] = f(iv)
	})
	return out
}

// Modarray evaluates
//
//	with (g) modarray(a, f(iv))
//
// producing an array of a's shape whose elements are f(iv) inside the
// generator's index set and a[iv] elsewhere. The argument a is not
// modified. f may read a: the new array is written separately.
func (e *Env) Modarray(a *array.Array, g Generator, f ElemFunc) *array.Array {
	g.validate(a.Dim())
	out := e.NewArrayDirty(a.Shape())
	copy(out.Data(), a.Data())
	data := out.Data()
	e.iterate(a.Shape(), g, func(iv shape.Index, off int) {
		data[off] = f(iv)
	})
	return out
}

// ModarrayReuse is Modarray for a uniquely-referenced argument: at O2+ the
// engine performs SAC's reference-count-1 optimization and updates a in
// place, returning it. Below O2 it behaves exactly like Modarray (and the
// caller's a is released), so results are identical at every level.
// f must not read positions of a that the generator also writes, as the
// update order is unspecified; border-initialization loops satisfy this.
func (e *Env) ModarrayReuse(a *array.Array, g Generator, f ElemFunc) *array.Array {
	if e.Opt >= O2 {
		g.validate(a.Dim())
		data := a.Data()
		e.iterate(a.Shape(), g, func(iv shape.Index, off int) {
			data[off] = f(iv)
		})
		return a
	}
	out := e.Modarray(a, g, f)
	e.Release(a)
	return out
}

// FoldOp combines two values of the fold; it must be associative and
// commutative with the given neutral element, exactly as SAC requires.
type FoldOp func(acc, v float64) float64

// Fold evaluates
//
//	with (g) fold(op, neutral, f(iv))
//
// folding f over the generator's index set. Partial results are combined in
// deterministic block order, so the result is identical for every worker
// count.
func (e *Env) Fold(shp shape.Shape, g Generator, op FoldOp, neutral float64, f ElemFunc) float64 {
	g.validate(shp.Rank())
	// Collect the fold via iterate's partitioning: each worker folds its
	// sub-range; determinism needs ordered combining, so Fold uses the
	// generic position-list path with sched.Reduce over the outer axis.
	pos := g.positions()
	if shp.Rank() == 0 {
		return op(neutral, f(shape.Index{}))
	}
	total := 1
	for _, p := range pos {
		total *= len(p)
	}
	if total == 0 {
		return neutral
	}
	rank := shp.Rank()
	inner := total / len(pos[0])
	return e.Sched.Reduce(len(pos[0]), e.forOptionsScaled(total, len(pos[0])), neutral,
		func(lo, hi int) float64 {
			iv := make(shape.Index, rank)
			sub := make([]int, rank)
			acc := neutral
			for p0 := lo; p0 < hi; p0++ {
				iv[0] = pos[0][p0]
				for j := 1; j < rank; j++ {
					sub[j] = 0
					iv[j] = pos[j][0]
				}
				for c := 0; c < inner; c++ {
					acc = op(acc, f(iv))
					for j := rank - 1; j >= 1; j-- {
						sub[j]++
						if sub[j] < len(pos[j]) {
							iv[j] = pos[j][sub[j]]
							break
						}
						sub[j] = 0
						iv[j] = pos[j][0]
					}
				}
			}
			return acc
		}, func(a, b float64) float64 { return op(a, b) })
}
