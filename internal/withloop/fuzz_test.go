package withloop

import (
	"testing"

	"repro/internal/shape"
)

// FuzzGenarrayMatchesContains drives the WITH-loop engine with fuzzed
// generators and checks the genarray result against the generator's own
// membership predicate — the semantic definition from the paper's §2.
func FuzzGenarrayMatchesContains(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(5), uint8(5), uint8(1), uint8(1), false)
	f.Add(uint8(1), uint8(2), uint8(6), uint8(7), uint8(2), uint8(3), true)
	f.Fuzz(func(t *testing.T, l0, l1, u0, u1, s0, s1 uint8, useStep bool) {
		shp := shape.Of(7, 8)
		lower := []int{int(l0 % 7), int(l1 % 8)}
		upper := []int{
			lower[0] + int(u0)%(8-lower[0]),
			lower[1] + int(u1)%(9-lower[1]),
		}
		g := Gen(lower, upper)
		if useStep {
			g = g.WithStep([]int{int(s0%3) + 1, int(s1%3) + 1})
		}
		e := Default()
		e.SeqThreshold = 0
		val := func(iv shape.Index) float64 { return float64(iv[0]*100+iv[1]) + 0.5 }
		a := e.Genarray(shp, g, val)
		iv := make(shape.Index, 2)
		for i := 0; i < 7; i++ {
			for j := 0; j < 8; j++ {
				iv[0], iv[1] = i, j
				want := 0.0
				if g.Contains(iv) {
					want = val(iv)
				}
				if got := a.At(iv); got != want {
					t.Fatalf("generator %v: element %v = %v, want %v", g, iv, got, want)
				}
			}
		}
		// Count consistency.
		sum := e.Fold(shp, g, func(x, y float64) float64 { return x + y }, 0,
			func(shape.Index) float64 { return 1 })
		if int(sum) != g.Count() {
			t.Fatalf("generator %v: fold-count %v != Count %d", g, sum, g.Count())
		}
	})
}
