package nas

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/array"
	"repro/internal/shape"
	"repro/internal/stencil"
)

func TestClassTable(t *testing.T) {
	cases := []struct {
		c    Class
		n    int
		iter int
		lt   int
	}{
		{ClassS, 32, 4, 5},
		{ClassW, 64, 40, 6},
		{ClassA, 256, 4, 8},
		{ClassB, 256, 20, 8},
		{ClassC, 512, 20, 9},
	}
	for _, tc := range cases {
		if tc.c.N != tc.n || tc.c.Iter != tc.iter || tc.c.LT() != tc.lt {
			t.Errorf("class %c: N/Iter/LT = %d/%d/%d, want %d/%d/%d",
				tc.c.Name, tc.c.N, tc.c.Iter, tc.c.LT(), tc.n, tc.iter, tc.lt)
		}
	}
}

func TestClassByName(t *testing.T) {
	c, err := ClassByName("A")
	if err != nil || c.Name != 'A' {
		t.Fatalf("ClassByName(A) = %v, %v", c, err)
	}
	for _, bad := range []string{"", "X", "AA", "a"} {
		if _, err := ClassByName(bad); err == nil {
			t.Errorf("ClassByName(%q) did not fail", bad)
		}
	}
}

func TestExtShape(t *testing.T) {
	if !ClassS.ExtShape(5).Equal(shape.Of(34, 34, 34)) {
		t.Errorf("ExtShape(5) = %v", ClassS.ExtShape(5))
	}
	if !ClassS.ExtShape(1).Equal(shape.Of(4, 4, 4)) {
		t.Errorf("ExtShape(1) = %v", ClassS.ExtShape(1))
	}
}

func TestSmootherCoeffs(t *testing.T) {
	for _, c := range []Class{ClassS, ClassW, ClassA} {
		if c.SmootherCoeffs() != stencil.SClassSWA {
			t.Errorf("class %c: wrong smoother", c.Name)
		}
	}
	for _, c := range []Class{ClassB, ClassC} {
		if c.SmootherCoeffs() != stencil.SClassBC {
			t.Errorf("class %c: wrong smoother", c.Name)
		}
	}
}

func TestVerify(t *testing.T) {
	v, official, ok := ClassS.VerifyValue()
	if !ok || !official || v != 0.5307707005734e-4 {
		t.Fatalf("ClassS.VerifyValue = %v/%v/%v", v, official, ok)
	}
	if verified, ok := ClassS.Verify(v); !ok || !verified {
		t.Fatal("exact value did not verify")
	}
	if verified, _ := ClassS.Verify(v + 2e-8); verified {
		t.Fatal("out-of-tolerance value verified")
	}
	if verified, ok := ClassS.Verify(v + 0.9e-8); !ok || !verified {
		t.Fatal("in-tolerance value did not verify")
	}
}

func TestClassString(t *testing.T) {
	if ClassA.String() != "A (256³, 4 iterations)" {
		t.Errorf("String = %q", ClassA.String())
	}
}

func TestZran3ChargeStructure(t *testing.T) {
	n := 32
	v := array.New(shape.Of(n+2, n+2, n+2))
	Zran3(v, n)
	var plus, minus, other int
	for i3 := 1; i3 <= n; i3++ {
		for i2 := 1; i2 <= n; i2++ {
			for i1 := 1; i1 <= n; i1++ {
				switch v.At3(i3, i2, i1) {
				case 1:
					plus++
				case -1:
					minus++
				case 0:
				default:
					other++
				}
			}
		}
	}
	if plus != 10 || minus != 10 || other != 0 {
		t.Fatalf("charges: +%d −%d other %d, want +10 −10 0", plus, minus, other)
	}
}

func TestZran3Deterministic(t *testing.T) {
	n := 16
	a := array.New(shape.Of(n+2, n+2, n+2))
	b := array.New(shape.Of(n+2, n+2, n+2))
	Zran3(a, n)
	Zran3(b, n)
	if !a.Equal(b) {
		t.Fatal("Zran3 is not deterministic")
	}
}

func TestZran3BorderIsPeriodic(t *testing.T) {
	n := 8
	v := array.New(shape.Of(n+2, n+2, n+2))
	Zran3(v, n)
	for i := 0; i < n+2; i++ {
		for j := 0; j < n+2; j++ {
			if v.At3(i, j, 0) != v.At3(i, j, n) || v.At3(i, j, n+1) != v.At3(i, j, 1) {
				// Axis-2 exchange only covers interior (i,j) like comm3;
				// skip the outer frame.
				if i >= 1 && i <= n && j >= 1 && j <= n {
					t.Fatalf("border not periodic at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestZran3ShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Zran3 with wrong shape did not panic")
		}
	}()
	Zran3(array.New(shape.Of(10, 10, 10)), 16)
}

func TestComm3(t *testing.T) {
	m := 6
	u := array.New(shape.Of(m, m, m))
	// Distinct interior values.
	for i := 1; i < m-1; i++ {
		for j := 1; j < m-1; j++ {
			for k := 1; k < m-1; k++ {
				u.Set3(i, j, k, float64(i*100+j*10+k))
			}
		}
	}
	Comm3(u)
	// Axis 2: u[i][j][0] == u[i][j][m-2], u[i][j][m-1] == u[i][j][1] for interior i,j.
	for i := 1; i < m-1; i++ {
		for j := 1; j < m-1; j++ {
			if u.At3(i, j, 0) != u.At3(i, j, m-2) || u.At3(i, j, m-1) != u.At3(i, j, 1) {
				t.Fatalf("axis-2 exchange wrong at (%d,%d)", i, j)
			}
		}
	}
	// Axis 1 for interior i, all k.
	for i := 1; i < m-1; i++ {
		for k := 0; k < m; k++ {
			if u.At3(i, 0, k) != u.At3(i, m-2, k) || u.At3(i, m-1, k) != u.At3(i, 1, k) {
				t.Fatalf("axis-1 exchange wrong at (%d,%d)", i, k)
			}
		}
	}
	// Axis 0 full planes.
	for j := 0; j < m; j++ {
		for k := 0; k < m; k++ {
			if u.At3(0, j, k) != u.At3(m-2, j, k) || u.At3(m-1, j, k) != u.At3(1, j, k) {
				t.Fatalf("axis-0 exchange wrong at (%d,%d)", j, k)
			}
		}
	}
}

// Comm3 is idempotent: applying it twice changes nothing.
func TestComm3Idempotent(t *testing.T) {
	m := 8
	u := array.New(shape.Of(m, m, m))
	for i := range u.Data() {
		u.Data()[i] = math.Sin(float64(i))
	}
	Comm3(u)
	once := u.Clone()
	Comm3(u)
	if !u.Equal(once) {
		t.Fatal("Comm3 is not idempotent")
	}
}

// Property: after Comm3, a relaxation that reads borders equals a
// relaxation on the torus (reading with modular wrap-around of the
// interior) — the paper's justification for the extended-grid technique.
func TestComm3RealizesPeriodicityQuick(t *testing.T) {
	f := func(seed uint8) bool {
		n := 4
		m := n + 2
		u := array.New(shape.Of(m, m, m))
		for i3 := 1; i3 <= n; i3++ {
			for i2 := 1; i2 <= n; i2++ {
				for i1 := 1; i1 <= n; i1++ {
					u.Set3(i3, i2, i1, math.Sin(float64(seed)+float64(i3*16+i2*4+i1)))
				}
			}
		}
		Comm3(u)
		// Pick the inner point (1,1,1) whose face neighbours include
		// borders; check each border neighbour equals the wrapped
		// interior value.
		wrap := func(i int) int { return (i-1+n)%n + 1 }
		for _, d := range [][3]int{{-1, 0, 0}, {0, -1, 0}, {0, 0, -1}} {
			bi, bj, bk := 1+d[0], 1+d[1], 1+d[2]
			wi, wj, wk := wrap(bi), wrap(bj), wrap(bk)
			if u.At3(bi, bj, bk) != u.At3(wi, wj, wk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNorm2u3(t *testing.T) {
	n := 4
	r := array.New(shape.Of(n+2, n+2, n+2))
	// Two known interior values; borders must be ignored.
	r.Set3(1, 1, 1, 3)
	r.Set3(2, 3, 4, -4)
	r.Set3(0, 0, 0, 1000) // border noise
	rnm2, rnmu := Norm2u3(r, n)
	wantRnm2 := math.Sqrt((9.0 + 16.0) / 64.0)
	if math.Abs(rnm2-wantRnm2) > 1e-15 {
		t.Fatalf("rnm2 = %v, want %v", rnm2, wantRnm2)
	}
	if rnmu != 4 {
		t.Fatalf("rnmu = %v, want 4", rnmu)
	}
}

// Norm2u3Planes computes the same norms up to reassociation of the sum of
// squares: rnmu must be bitwise identical, rnm2 equal within a few ulps,
// and the blocked association must match an explicit row→plane→total fold
// bit for bit (that fold is the contract the parallel fused resid+norm
// kernel reproduces).
func TestNorm2u3Planes(t *testing.T) {
	n := 8
	r := array.New(shape.Of(n+2, n+2, n+2))
	for i := range r.Data() {
		r.Data()[i] = math.Sin(float64(i) * 0.7)
	}
	flat2, flatU := Norm2u3(r, n)
	got2, gotU := Norm2u3Planes(r, n)
	if gotU != flatU {
		t.Fatalf("rnmu = %v, flat %v (must be bitwise equal)", gotU, flatU)
	}
	if math.Abs(got2-flat2) > 1e-12*flat2 {
		t.Fatalf("rnm2 = %v, flat %v (beyond reassociation tolerance)", got2, flat2)
	}
	var sum float64
	m := n + 2
	for i3 := 1; i3 < m-1; i3++ {
		var plane float64
		for i2 := 1; i2 < m-1; i2++ {
			var row float64
			for i1 := 1; i1 < m-1; i1++ {
				v := r.Data()[(i3*m+i2)*m+i1]
				row += v * v
			}
			plane += row
		}
		sum += plane
	}
	want := math.Sqrt(sum / (float64(n) * float64(n) * float64(n)))
	if got2 != want {
		t.Fatalf("rnm2 = %.17e, blocked fold %.17e (must be bitwise equal)", got2, want)
	}
}

func TestNorm2u3ZeroGrid(t *testing.T) {
	r := array.New(shape.Of(6, 6, 6))
	rnm2, rnmu := Norm2u3(r, 4)
	if rnm2 != 0 || rnmu != 0 {
		t.Fatalf("zero grid norms = %v/%v", rnm2, rnmu)
	}
}

// The initial residual of the benchmark: with u = 0, r = v - A·0 = v, so
// norm2u3(v) for class S must equal the documented initial norm structure:
// sqrt(20/n³) since v holds exactly twenty ±1 charges.
func TestInitialNormOfV(t *testing.T) {
	n := 32
	v := array.New(shape.Of(n+2, n+2, n+2))
	Zran3(v, n)
	rnm2, rnmu := Norm2u3(v, n)
	want := math.Sqrt(20.0 / float64(n*n*n))
	if math.Abs(rnm2-want) > 1e-15 {
		t.Fatalf("||v|| = %v, want %v", rnm2, want)
	}
	if rnmu != 1 {
		t.Fatalf("max|v| = %v, want 1", rnmu)
	}
}

func BenchmarkZran3ClassS(b *testing.B) {
	n := 32
	v := array.New(shape.Of(n+2, n+2, n+2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Zran3(v, n)
	}
}

func BenchmarkComm3(b *testing.B) {
	u := array.New(shape.Of(66, 66, 66))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Comm3(u)
	}
}

func TestFlopCount(t *testing.T) {
	// NPB convention: 58 operations per fine-grid point per iteration.
	want := 58.0 * 32 * 32 * 32 * 4
	if got := ClassS.FlopCount(); got != want {
		t.Fatalf("FlopCount(S) = %v, want %v", got, want)
	}
	if ClassA.FlopCount() <= ClassS.FlopCount() {
		t.Fatal("class A flop count not larger than S")
	}
}
