// Executable specification: a deliberately naive MG implementation used
// only as a test oracle. Every operation is written in the most obvious
// possible form — modular indexing on the torus, 27 explicit coefficient
// lookups per point, no buffers, no fusion, no extended grids — so its
// correctness can be checked by eye against the paper's Fig. 2. The fast
// implementations (internal/core, f77, cport, periodic, mgmpi) are tested
// against it on small grids; the oracle itself is validated by the
// official verification values.
package nas

import "repro/internal/array"

// OracleStencil applies a 27-point stencil with coefficients by distance
// class (centre, face, edge, corner) to a compact n³ torus grid, the
// slow, obviously-correct way.
func OracleStencil(u *array.Array, c [4]float64) *array.Array {
	n := u.Shape()[0]
	out := array.New(u.Shape())
	wrap := func(i int) int { return (i%n + n) % n }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				sum := 0.0
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							class := 0
							if di != 0 {
								class++
							}
							if dj != 0 {
								class++
							}
							if dk != 0 {
								class++
							}
							sum += c[class] * u.At3(wrap(i+di), wrap(j+dj), wrap(k+dk))
						}
					}
				}
				out.Set3(i, j, k, sum)
			}
		}
	}
	return out
}

// OracleRestrict maps a compact fine torus grid (n³) to the coarse one
// ((n/2)³): the P stencil evaluated at the odd fine positions (the coarse
// anchor convention of the extended-grid formulation; see
// internal/periodic's package comment).
func OracleRestrict(r *array.Array) *array.Array {
	pr := OracleStencil(r, [4]float64{0.5, 0.25, 0.125, 0.0625})
	n := r.Shape()[0]
	nc := n / 2
	out := array.New([]int{nc, nc, nc})
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			for k := 0; k < nc; k++ {
				out.Set3(i, j, k, pr.At3(2*i+1, 2*j+1, 2*k+1))
			}
		}
	}
	return out
}

// OracleInterp maps a compact coarse torus grid (nc³) to the fine one
// ((2nc)³) by trilinear interpolation with anchors at odd fine positions.
func OracleInterp(z *array.Array) *array.Array {
	nc := z.Shape()[0]
	n := 2 * nc
	out := array.New([]int{n, n, n})
	wrap := func(c int) int { return (c%nc + nc) % nc }
	// Fine position f: odd → on an anchor (coarse (f-1)/2); even →
	// between anchors (f/2-1 and f/2, wrapped).
	anchors := func(f int) (lo, hi int) {
		if f%2 == 1 {
			c := (f - 1) / 2
			return c, c
		}
		return wrap(f/2 - 1), wrap(f / 2)
	}
	for i := 0; i < n; i++ {
		li, hi_ := anchors(i)
		for j := 0; j < n; j++ {
			lj, hj := anchors(j)
			for k := 0; k < n; k++ {
				lk, hk := anchors(k)
				sum, cnt := 0.0, 0
				for _, ci := range dedup(li, hi_) {
					for _, cj := range dedup(lj, hj) {
						for _, ck := range dedup(lk, hk) {
							sum += z.At3(ci, cj, ck)
							cnt++
						}
					}
				}
				out.Set3(i, j, k, sum/float64(cnt))
			}
		}
	}
	return out
}

func dedup(a, b int) []int {
	if a == b {
		return []int{a}
	}
	return []int{a, b}
}

// OracleVCycle is the recursive V-cycle of the paper's Fig. 2, written
// directly from the mathematical specification on compact torus grids.
func OracleVCycle(r *array.Array, opA, opS [4]float64) *array.Array {
	n := r.Shape()[0]
	if n <= 2 {
		return OracleStencil(r, opS) // M¹ ≡ S
	}
	rn := OracleRestrict(r)
	zn := OracleVCycle(rn, opA, opS)
	z := OracleInterp(zn)
	// r' = r − A z;  z' = z + S r'
	az := OracleStencil(z, opA)
	r2 := array.New(r.Shape())
	for i := range r2.Data() {
		r2.Data()[i] = r.Data()[i] - az.Data()[i]
	}
	sr := OracleStencil(r2, opS)
	out := array.New(r.Shape())
	for i := range out.Data() {
		out.Data()[i] = z.Data()[i] + sr.Data()[i]
	}
	return out
}
