// Package nas defines the NPB MG problem: size classes, the zran3 initial
// charge distribution, the periodic boundary exchange comm3, the norm2u3
// residual norms, and the official verification test. All three MG
// implementations in this repository (internal/core, internal/f77,
// internal/cport) solve exactly this problem, so the package is the single
// source of truth for the benchmark's inputs and its acceptance criterion.
//
// Grids are dense rank-3 arrays in extended form: a problem of interior
// size n³ lives in an (n+2)³ array whose first and last plane along every
// axis are the artificial periodic boundary elements (paper, Fig. 5).
// The array layout is row-major (z, y, x) with x contiguous, matching the
// Fortran original's memory order (Fortran's first index is contiguous).
package nas

import (
	"fmt"
	"math"
	"time"

	"repro/internal/array"
	"repro/internal/nasrand"
	"repro/internal/shape"
	"repro/internal/stencil"
)

// Class describes one NPB MG size class.
type Class struct {
	// Name is the one-letter class name: S, W, A, B or C.
	Name byte
	// N is the interior grid extent per axis (a power of two).
	N int
	// Iter is the number of timed V-cycle iterations.
	Iter int
	// verify is the reference value for the final residual L2 norm, and
	// published says whether it is the official NPB constant or a value
	// computed by this reproduction (see the note on class W below).
	verify    float64
	published bool
}

// The NPB 2.3 size classes. The paper uses W (64³, 40 iterations) and
// A (256³, 4 iterations).
//
// Verification constants are the official NPB values. (Class W at 64³/40
// iterations is NPB 2.x-specific — NPB 3.x redefined W as 128³/4; the 2.3
// constant 0.2503914064394e-17 is also reproduced independently by this
// repository's Fortran-77 port, which computes 2.5039140643941e-18.)
var (
	ClassS = Class{Name: 'S', N: 32, Iter: 4, verify: 0.5307707005734e-4, published: true}
	ClassW = Class{Name: 'W', N: 64, Iter: 40, verify: 0.2503914064394e-17, published: true}
	ClassA = Class{Name: 'A', N: 256, Iter: 4, verify: 0.2433365309069e-5, published: true}
	ClassB = Class{Name: 'B', N: 256, Iter: 20, verify: 0.1800564401355e-5, published: true}
	ClassC = Class{Name: 'C', N: 512, Iter: 20, verify: 0.5706732285740e-6, published: true}
)

// Classes lists all supported classes in size order.
func Classes() []Class { return []Class{ClassS, ClassW, ClassA, ClassB, ClassC} }

// ClassByName resolves a one-letter class name.
func ClassByName(name string) (Class, error) {
	for _, c := range Classes() {
		if len(name) == 1 && name[0] == c.Name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("nas: unknown class %q (want S, W, A, B or C)", name)
}

// String returns e.g. "A (256³, 4 iterations)".
func (c Class) String() string {
	return fmt.Sprintf("%c (%d³, %d iterations)", c.Name, c.N, c.Iter)
}

// FlopCount returns the NPB operation count of the timed benchmark
// section: the benchmark convention is 58 floating-point operations per
// fine-grid point per V-cycle iteration (the Mop/s figures NPB prints are
// this count divided by the measured time).
func (c Class) FlopCount() float64 {
	n := float64(c.N)
	return 58 * n * n * n * float64(c.Iter)
}

// LT returns log2(N) — the number of grid levels (level LT is the finest,
// level 1 the coarsest with 2³ interior points).
func (c Class) LT() int {
	lt := 0
	for n := c.N; n > 1; n >>= 1 {
		lt++
	}
	return lt
}

// ExtShape returns the extended (boundary-augmented) grid shape at the
// given level: (2^level + 2)³.
func (c Class) ExtShape(level int) shape.Shape {
	m := (1 << level) + 2
	return shape.Of(m, m, m)
}

// SmootherCoeffs returns the class-dependent smoother stencil: classes S,
// W and A use one set of coefficients, B and C another (NPB spec).
func (c Class) SmootherCoeffs() stencil.Coeffs {
	if c.Name == 'B' || c.Name == 'C' {
		return stencil.SClassBC
	}
	return stencil.SClassSWA
}

// VerifyValue returns the reference final residual norm and whether it is
// an official NPB constant (as opposed to a value computed and
// cross-checked by this repository). ok is false when no reference exists.
func (c Class) VerifyValue() (value float64, official, ok bool) {
	if c.verify < 0 {
		return 0, false, false
	}
	return c.verify, c.published, true
}

// Epsilon is the NPB verification tolerance: the final residual norm must
// match the reference value to within this absolute difference.
const Epsilon = 1e-8

// Verify applies the official acceptance test to a computed final residual
// norm. When the class has no reference value it returns ok=false with
// verified=false.
func (c Class) Verify(rnm2 float64) (verified, ok bool) {
	v, _, ok := c.VerifyValue()
	if !ok {
		return false, false
	}
	return math.Abs(rnm2-v) <= Epsilon, true
}

// --- zran3: the initial charge distribution -----------------------------------

// Zran3 fills the finest extended grid v with the NPB initial right-hand
// side: zero everywhere except +1 at the positions of the 10 largest and
// −1 at the positions of the 10 smallest values of a pseudorandom field
// drawn from the NAS LCG (seed 314159265). The random field assigns the
// ((i3·ny + i2)·nx + i1)-th stream value to interior point (i3, i2, i1),
// exactly like the Fortran original, so charge positions are bit-exact.
// The periodic border of v is updated afterwards (comm3), as in NPB 2.3.
func Zran3(v *array.Array, n int) {
	Zran3Seeded(v, n, nasrand.DefaultSeed)
}

// Zran3Seeded is Zran3 with an explicit stream seed. The official
// benchmark problem uses nasrand.DefaultSeed (314159265); any other seed
// defines a different — equally deterministic — charge distribution, the
// "scenario" axis a resident solver service exposes to its tenants. The
// NPB verification constants apply only to the default seed.
func Zran3Seeded(v *array.Array, n int, seed uint64) {
	shp := v.Shape()
	if shp.Rank() != 3 || shp[0] != n+2 || shp[1] != n+2 || shp[2] != n+2 {
		panic(fmt.Sprintf("nas: Zran3: grid %v does not match interior size %d", shp, n))
	}
	v.Zero()
	data := v.Data()
	m := n + 2 // extended extent

	// Stream layout: plane stride a2 = a^(nx*ny), row stride a1 = a^nx.
	a1 := nasrand.PowMod(nasrand.Mult, uint64(n))
	a2 := nasrand.PowMod(nasrand.Mult, uint64(n)*uint64(n))
	x0 := nasrand.New(seed)
	row := make([]float64, n)
	for i3 := 1; i3 <= n; i3++ {
		x1 := nasrand.New(x0.State())
		for i2 := 1; i2 <= n; i2++ {
			xx := nasrand.New(x1.State())
			xx.Fill(row)
			copy(data[(i3*m+i2)*m+1:(i3*m+i2)*m+1+n], row)
			x1.NextWith(a1)
		}
		x0.NextWith(a2)
	}

	// Select the ten largest and ten smallest interior values. Scanning
	// order matches the Fortran loops (i3 outer, i1 inner); strict
	// comparisons keep the first occurrence on (improbable) ties.
	const mm = 10
	large := make([]extreme, 0, mm) // ascending; large[0] is the smallest of the top ten
	small := make([]extreme, 0, mm) // descending; small[0] is the largest of the bottom ten
	for i3 := 1; i3 <= n; i3++ {
		for i2 := 1; i2 <= n; i2++ {
			base := (i3*m + i2) * m
			for i1 := 1; i1 <= n; i1++ {
				z := data[base+i1]
				if len(large) < mm || z > large[0].val {
					large = insertAscending(large, extreme{z, base + i1}, mm)
				}
				if len(small) < mm || z < small[0].val {
					small = insertDescending(small, extreme{z, base + i1}, mm)
				}
			}
		}
	}

	v.Zero()
	for _, e := range large {
		data[e.pos] = 1.0
	}
	for _, e := range small {
		data[e.pos] = -1.0
	}
	Comm3(v)
}

// extreme is one candidate charge position: a random field value and its
// flat offset in the extended grid.
type extreme struct {
	val float64
	pos int
}

func insertAscending(list []extreme, e extreme, limit int) []extreme {
	i := 0
	for i < len(list) && list[i].val < e.val {
		i++
	}
	list = append(list, extreme{})
	copy(list[i+1:], list[i:])
	list[i] = e
	if len(list) > limit {
		list = list[1:]
	}
	return list
}

func insertDescending(list []extreme, e extreme, limit int) []extreme {
	i := 0
	for i < len(list) && list[i].val > e.val {
		i++
	}
	list = append(list, extreme{})
	copy(list[i+1:], list[i:])
	list[i] = e
	if len(list) > limit {
		list = list[1:]
	}
	return list
}

// --- comm3: periodic boundary exchange ----------------------------------------

// Comm3 updates the artificial boundary elements of an extended grid from
// the opposite interior planes (paper, Fig. 5): along every axis, plane 0
// receives plane m-2 and plane m-1 receives plane 1. This is the serial
// equivalent of the NPB comm3 halo exchange.
func Comm3(u *array.Array) {
	shp := u.Shape()
	if shp.Rank() != 3 {
		panic(fmt.Sprintf("nas: Comm3 requires rank 3, got %v", shp))
	}
	n0, n1, n2 := shp[0], shp[1], shp[2]
	d := u.Data()
	// Axis 2 (contiguous): only interior planes of axes 0 and 1, like the
	// Fortran loops.
	for i := 1; i < n0-1; i++ {
		for j := 1; j < n1-1; j++ {
			base := (i*n1 + j) * n2
			d[base] = d[base+n2-2]
			d[base+n2-1] = d[base+1]
		}
	}
	// Axis 1: full rows along axis 2, interior planes of axis 0.
	for i := 1; i < n0-1; i++ {
		top := (i * n1) * n2
		bot := (i*n1 + n1 - 1) * n2
		src0 := (i*n1 + n1 - 2) * n2
		src1 := (i*n1 + 1) * n2
		copy(d[top:top+n2], d[src0:src0+n2])
		copy(d[bot:bot+n2], d[src1:src1+n2])
	}
	// Axis 0: full planes.
	plane := n1 * n2
	copy(d[0:plane], d[(n0-2)*plane:(n0-1)*plane])
	copy(d[(n0-1)*plane:n0*plane], d[plane:2*plane])
}

// --- norm2u3: the benchmark's norms --------------------------------------------

// Norm2u3 returns the discrete L2 norm (sqrt of the mean square over the
// nx·ny·nz interior points) and the maximum absolute value of the interior
// of r — NPB's norm2u3, whose L2 result is the verified quantity.
func Norm2u3(r *array.Array, n int) (rnm2, rnmu float64) {
	shp := r.Shape()
	m1, m2 := shp[1], shp[2]
	d := r.Data()
	var sum, maxAbs float64
	for i3 := 1; i3 < shp[0]-1; i3++ {
		for i2 := 1; i2 < m1-1; i2++ {
			base := (i3*m1 + i2) * m2
			for i1 := 1; i1 < m2-1; i1++ {
				v := d[base+i1]
				sum += v * v
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
		}
	}
	total := float64(n) * float64(n) * float64(n)
	return math.Sqrt(sum / total), maxAbs
}

// Norm2u3Planes is Norm2u3 with the sum of squares folded in the canonical
// blocked association of the parallel fused kernels: a running
// left-to-right sum per row, rows folded in ascending order into a plane
// partial, plane partials folded in ascending order. The row sums detach
// from the grand total exactly where the tiled resid+norm kernel detaches
// them, so this function reproduces the parallel result bit for bit on one
// thread — for any worker count, scheduling policy and tile size of the
// parallel run. (The flat Norm2u3 differs from it in the last ulp or two;
// the legacy f77/cport paths keep Norm2u3 so their mutual bitwise equality
// is untouched, while mgmpi's distributed reduction folds per-plane
// partials in this same association — rank-count-invariant for slab
// decompositions.)
func Norm2u3Planes(r *array.Array, n int) (rnm2, rnmu float64) {
	shp := r.Shape()
	m1, m2 := shp[1], shp[2]
	d := r.Data()
	var sum, maxAbs float64
	for i3 := 1; i3 < shp[0]-1; i3++ {
		var planeSum float64
		for i2 := 1; i2 < m1-1; i2++ {
			base := (i3*m1 + i2) * m2
			var rowSum float64
			for i1 := 1; i1 < m2-1; i1++ {
				v := d[base+i1]
				rowSum += v * v
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			planeSum += rowSum
		}
		sum += planeSum
	}
	total := float64(n) * float64(n) * float64(n)
	return math.Sqrt(sum / total), maxAbs
}

// Probe is the instrumentation hook shared by all MG implementations:
// when set on a solver it receives the wall-clock duration of every kernel
// invocation, tagged with the kernel name and grid level. The SMP cost
// model (internal/smp) uses these measurements as its work profile.
type Probe func(region string, level int, elapsed time.Duration)
