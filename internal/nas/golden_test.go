package nas

import (
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/shape"
)

// TestGoldenVerificationValues pins the verification constants against the
// NPB 2.3 reference values restated literally here, so an accidental edit
// of the class table cannot slip through, and exercises the ±Epsilon
// acceptance band of Verify. For class S — the only class where the naive
// oracle is affordable — the constant is additionally reproduced from
// scratch by running the full benchmark on the oracle kernels.
func TestGoldenVerificationValues(t *testing.T) {
	cases := []struct {
		name   string
		class  Class
		golden float64 // NPB 2.3 published value, restated
		oracle bool    // cross-check by running the oracle benchmark
	}{
		{"S", ClassS, 0.5307707005734e-4, true},
		{"W", ClassW, 0.2503914064394e-17, false},
		{"A", ClassA, 0.2433365309069e-5, false},
		{"B", ClassB, 0.1800564401355e-5, false},
		{"C", ClassC, 0.5706732285740e-6, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, official, ok := tc.class.VerifyValue()
			if !ok {
				t.Fatalf("class %s has no verification value", tc.name)
			}
			if !official {
				t.Fatalf("class %s verification value is not marked official", tc.name)
			}
			if v != tc.golden {
				t.Fatalf("class %s verification value = %.17e, want NPB 2.3 %.17e",
					tc.name, v, tc.golden)
			}
			// The acceptance band: within ±Epsilon passes, outside fails.
			for _, probe := range []struct {
				rnm2 float64
				want bool
			}{
				{tc.golden, true},
				{tc.golden + Epsilon/2, true},
				{tc.golden - Epsilon/2, true},
				{tc.golden + 2*Epsilon, false},
				{tc.golden - 2*Epsilon, false},
			} {
				verified, ok := tc.class.Verify(probe.rnm2)
				if !ok {
					t.Fatalf("Verify(%v) not ok", probe.rnm2)
				}
				if verified != probe.want {
					t.Fatalf("class %s: Verify(%.17e) = %v, want %v",
						tc.name, probe.rnm2, verified, probe.want)
				}
			}
			if tc.oracle {
				got := oracleBenchmark(tc.class)
				if math.Abs(got-tc.golden) > Epsilon {
					t.Fatalf("oracle benchmark rnm2 = %.17e, NPB golden %.17e (diff %.2e > ε)",
						got, tc.golden, math.Abs(got-tc.golden))
				}
				t.Logf("oracle class %s rnm2 = %.13e (golden %.13e)", tc.name, got, tc.golden)
			}
		})
	}
}

// oracleBenchmark runs the whole NPB benchmark — zran3 charges, Iter ×
// (residual + V-cycle correction), final residual norm — entirely on the
// naive oracle kernels over compact torus grids, independent of every
// production code path.
func oracleBenchmark(class Class) float64 {
	n := class.N
	opA := [4]float64{-8.0 / 3.0, 0, 1.0 / 6.0, 1.0 / 12.0}
	opS := [4]float64(class.SmootherCoeffs())

	// zran3 fills an extended grid; crop its interior to the compact form.
	ext := array.New(class.ExtShape(class.LT()))
	Zran3(ext, n)
	v := array.New(shape.Of(n, n, n))
	m := n + 2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			src := ((i+1)*m+(j+1))*m + 1
			dst := (i*n + j) * n
			copy(v.Data()[dst:dst+n], ext.Data()[src:src+n])
		}
	}

	u := array.New(shape.Of(n, n, n))
	residual := func() *array.Array {
		au := OracleStencil(u, opA)
		r := array.New(v.Shape())
		for i := range r.Data() {
			r.Data()[i] = v.Data()[i] - au.Data()[i]
		}
		return r
	}
	for it := 0; it < class.Iter; it++ {
		r := residual()
		z := OracleVCycle(r, opA, opS)
		for i := range u.Data() {
			u.Data()[i] += z.Data()[i]
		}
	}
	r := residual()
	var sum float64
	for _, x := range r.Data() {
		sum += x * x
	}
	return math.Sqrt(sum / float64(n*n*n))
}
