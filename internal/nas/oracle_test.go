package nas

import (
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/shape"
)

func torusGrid(n int, seed float64) *array.Array {
	a := array.New(shape.Of(n, n, n))
	for i := range a.Data() {
		a.Data()[i] = math.Sin(seed + float64(i)*0.61)
	}
	return a
}

func TestOracleStencilConstants(t *testing.T) {
	u := array.NewFilled(shape.Of(4, 4, 4), 3.0)
	c := [4]float64{0.5, 0.25, 0.125, 0.0625}
	total := c[0] + 6*c[1] + 12*c[2] + 8*c[3]
	out := OracleStencil(u, c)
	for _, v := range out.Data() {
		if math.Abs(v-3*total) > 1e-13 {
			t.Fatalf("oracle stencil on constants = %v, want %v", v, 3*total)
		}
	}
}

func TestOracleInterpConstants(t *testing.T) {
	z := array.NewFilled(shape.Of(4, 4, 4), 2.5)
	out := OracleInterp(z)
	if out.Shape()[0] != 8 {
		t.Fatalf("interp shape %v", out.Shape())
	}
	for _, v := range out.Data() {
		if math.Abs(v-2.5) > 1e-14 {
			t.Fatalf("oracle interp on constants = %v", v)
		}
	}
}

func TestOracleRestrictShape(t *testing.T) {
	r := torusGrid(8, 1)
	c := OracleRestrict(r)
	if c.Shape()[0] != 4 {
		t.Fatalf("restrict shape %v", c.Shape())
	}
	// Restriction of a constant grid: the P weights sum to 4.
	k := array.NewFilled(shape.Of(8, 8, 8), 1.0)
	ck := OracleRestrict(k)
	for _, v := range ck.Data() {
		if math.Abs(v-4) > 1e-13 {
			t.Fatalf("restrict of ones = %v, want 4", v)
		}
	}
}

func TestOracleVCycleBaseCase(t *testing.T) {
	r := torusGrid(2, 3)
	opS := [4]float64{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0}
	got := OracleVCycle(r, [4]float64{-8.0 / 3.0, 0, 1.0 / 6.0, 1.0 / 12.0}, opS)
	want := OracleStencil(r, opS)
	if !got.Equal(want) {
		t.Fatal("oracle base case is not a single smoothing")
	}
}

// The oracle V-cycle reduces the residual of the periodic Poisson system —
// the Fig. 2 algorithm works when written this naively.
func TestOracleVCycleConverges(t *testing.T) {
	n := 16
	opA := [4]float64{-8.0 / 3.0, 0, 1.0 / 6.0, 1.0 / 12.0}
	opS := [4]float64{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0}
	// Zero-mean right-hand side.
	v := array.New(shape.Of(n, n, n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				v.Set3(i, j, k, math.Sin(2*math.Pi*float64(i)/float64(n))*
					math.Cos(2*math.Pi*float64(j)/float64(n)))
			}
		}
	}
	norm := func(u *array.Array) float64 {
		au := OracleStencil(u, opA)
		s := 0.0
		for i, x := range v.Data() {
			d := x - au.Data()[i]
			s += d * d
		}
		return math.Sqrt(s / float64(n*n*n))
	}
	u := array.New(shape.Of(n, n, n))
	start := norm(u)
	for it := 0; it < 3; it++ {
		au := OracleStencil(u, opA)
		r := array.New(v.Shape())
		for i := range r.Data() {
			r.Data()[i] = v.Data()[i] - au.Data()[i]
		}
		z := OracleVCycle(r, opA, opS)
		for i := range u.Data() {
			u.Data()[i] += z.Data()[i]
		}
	}
	end := norm(u)
	if !(end < start*0.01) {
		t.Fatalf("oracle V-cycle did not converge: %g -> %g", start, end)
	}
}
