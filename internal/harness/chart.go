// ASCII rendering of the speedup figures: the paper presents Figures 12
// and 13 as line charts, so mgbench can draw the same curves in the
// terminal in addition to the numeric series.
package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/nas"
)

// chartHeight is the number of character rows of the plot area.
const chartHeight = 16

// implMark maps each implementation to its curve marker.
var implMark = map[string]byte{"F77": 'F', "SAC": 'S', "C/OpenMP": 'O'}

// RenderSpeedupChart draws the given speedup series (all of one class) as
// an ASCII line chart: x = processors, y = speedup. Markers: F = F77,
// S = SAC, O = C/OpenMP; '*' marks coinciding points.
func RenderSpeedupChart(w io.Writer, title string, series []SpeedupSeries) {
	if len(series) == 0 {
		return
	}
	maxP := 0
	maxS := 1.0
	for _, s := range series {
		if len(s.Speedups) > maxP {
			maxP = len(s.Speedups)
		}
		for _, v := range s.Speedups {
			if v > maxS {
				maxS = v
			}
		}
	}
	const colWidth = 5 // characters per processor column
	width := maxP * colWidth
	grid := make([][]byte, chartHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// Plot each series.
	for _, s := range series {
		mark, ok := implMark[s.Impl]
		if !ok {
			mark = '+'
		}
		for p, v := range s.Speedups {
			x := p*colWidth + colWidth/2
			y := chartHeight - 1 - int(v/maxS*float64(chartHeight-1)+0.5)
			if y < 0 {
				y = 0
			}
			if grid[y][x] == ' ' {
				grid[y][x] = mark
			} else if grid[y][x] != mark {
				grid[y][x] = '*'
			}
		}
	}
	fmt.Fprintf(w, "%s  (F = F77-auto, S = SAC, O = OpenMP, * = coincide)\n", title)
	for i, row := range grid {
		// Y-axis label: the speedup value of this row.
		v := float64(chartHeight-1-i) / float64(chartHeight-1) * maxS
		fmt.Fprintf(w, "%6.1f |%s\n", v, string(row))
	}
	fmt.Fprintf(w, "%6s +%s\n", "", strings.Repeat("-", width))
	var axis strings.Builder
	for p := 1; p <= maxP; p++ {
		axis.WriteString(fmt.Sprintf("%*d", colWidth, p))
	}
	fmt.Fprintf(w, "%6s %s  (processors)\n\n", "", axis.String())
}

// Mops converts a measured benchmark time to the NPB reporting metric
// (millions of operations per second, using the class's official
// operation count).
func Mops(class nas.Class, seconds float64) float64 {
	return class.FlopCount() / seconds / 1e6
}
