package harness

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/jobq"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/perfstat"
)

// ServiceConfig configures the solver-as-a-service saturation benchmark.
type ServiceConfig struct {
	// Clients is the number of concurrent submitters (default 4).
	Clients int
	// Jobs is the number of submissions per client (default 8).
	Jobs int
	// RepeatPercent is how much of the traffic re-requests the base
	// problem — the cache-hit share of a steady-state workload
	// (default 75; the zero value selects the default, so all-unique
	// traffic is RepeatPercent 1, not 0).
	RepeatPercent int
	// Runners is the queue's concurrent-solve limit (default 2).
	Runners int
	// Hits is the number of timed cache-hit probes (default 200).
	Hits int
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Clients < 1 {
		c.Clients = 4
	}
	if c.Jobs < 1 {
		c.Jobs = 8
	}
	if c.RepeatPercent <= 0 || c.RepeatPercent > 100 {
		c.RepeatPercent = 75
	}
	if c.Runners < 1 {
		c.Runners = 2
	}
	if c.Hits < 1 {
		c.Hits = 200
	}
	return c
}

// ServiceReport is the measured service profile of one class: the cold
// solve, the cache-hit latency distribution, the hit/miss speedup and
// the saturation throughput — the numbers behind EXPERIMENTS.md's
// T-service table.
type ServiceReport struct {
	Class       nas.Class
	ColdSeconds float64
	HitP50      float64
	HitP99      float64
	// Speedup is ColdSeconds / HitP50 — how much cheaper repeat traffic
	// is than re-solving.
	Speedup    float64
	JobsPerSec float64
	Elapsed    float64
	Stats      jobq.Stats
}

// RunService measures the solver-as-a-service profile of one class on an
// in-process queue (no HTTP, so the numbers isolate the service core):
// one cold solve, Hits timed cache hits, then a saturation phase of
// Clients×Jobs mixed submissions at RepeatPercent repeat traffic.
func RunService(w io.Writer, class nas.Class, cfg ServiceConfig) (ServiceReport, error) {
	cfg = cfg.withDefaults()
	rep := ServiceReport{Class: class}
	q := jobq.New(jobq.Config{
		Runners:  cfg.Runners,
		Capacity: cfg.Clients*cfg.Jobs + cfg.Hits + 1,
	})
	defer q.Close()

	base := jobq.Request{Class: string(class.Name)}
	wait := func(tk *jobq.Ticket) (jobq.Result, error) {
		<-tk.Done()
		res := tk.Result()
		if res.State != jobq.StateDone {
			return res, fmt.Errorf("job %s ended %s: %s", res.ID, res.State, res.Error)
		}
		return res, nil
	}

	// Cold solve: the price of a miss.
	start := time.Now()
	tk, err := q.Submit(base)
	if err != nil {
		return rep, err
	}
	if _, err := wait(tk); err != nil {
		return rep, err
	}
	rep.ColdSeconds = time.Since(start).Seconds()

	// Cache hits: the price of repeat traffic.
	hitLatency := make([]float64, cfg.Hits)
	for i := range hitLatency {
		start := time.Now()
		tk, err := q.Submit(base)
		if err != nil {
			return rep, err
		}
		if !tk.Cached() {
			return rep, fmt.Errorf("repeat submission %d missed the cache", i)
		}
		hitLatency[i] = time.Since(start).Seconds()
	}
	rep.HitP50 = perfstat.Quantile(hitLatency, 0.5)
	rep.HitP99 = perfstat.Quantile(hitLatency, 0.99)
	if rep.HitP50 > 0 {
		rep.Speedup = rep.ColdSeconds / rep.HitP50
	}

	// Saturation: concurrent clients, mixed repeat/unique traffic. Unique
	// problems vary the zran3 seed — a different deterministic problem,
	// so a genuine cold solve, keyed apart in the cache.
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Clients)
	satStart := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < cfg.Jobs; j++ {
				req := base
				if (c*cfg.Jobs+j*37)%100 >= cfg.RepeatPercent {
					req.Seed = uint64(1_000_000_000 + c*cfg.Jobs + j)
				}
				tk, err := q.Submit(req)
				if err != nil {
					errs <- err
					return
				}
				if _, err := wait(tk); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return rep, err
	}
	rep.Elapsed = time.Since(satStart).Seconds()
	rep.JobsPerSec = float64(cfg.Clients*cfg.Jobs) / rep.Elapsed

	if err := q.Drain(context.Background()); err != nil {
		return rep, err
	}
	rep.Stats = q.Stats()

	fmt.Fprintf(w, "--- Solver service: class %c (%d clients x %d jobs, %d%% repeat, %d runners) ---\n",
		class.Name, cfg.Clients, cfg.Jobs, cfg.RepeatPercent, cfg.Runners)
	fmt.Fprintf(w, "%-22s %12.3f ms\n", "cold solve", rep.ColdSeconds*1e3)
	fmt.Fprintf(w, "%-22s %12.1f us   p99 %.1f us\n", "cache hit p50", rep.HitP50*1e6, rep.HitP99*1e6)
	fmt.Fprintf(w, "%-22s %12.0fx\n", "hit speedup", rep.Speedup)
	fmt.Fprintf(w, "%-22s %12.1f jobs/s over %.2f s\n", "saturation", rep.JobsPerSec, rep.Elapsed)
	s := rep.Stats
	fmt.Fprintf(w, "%-22s submitted=%d completed=%d cachehits=%d deduped=%d\n",
		"queue", s.Submitted, s.Completed, s.CacheHits, s.Deduped)
	// The cumulative stage decomposition (the in-process counterpart of
	// the daemon's mgd_stage_seconds): where the service spent its time,
	// summed over every terminal job.
	fmt.Fprintf(w, "%-22s", "stage seconds")
	for _, stage := range obs.Stages {
		if secs, ok := s.StageSeconds[stage]; ok {
			fmt.Fprintf(w, " %s=%.3f", stage, secs)
		}
	}
	fmt.Fprintf(w, "\n\n")
	return rep, nil
}
