package harness

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/mgmpi"
	"repro/internal/mpi"
	"repro/internal/nas"
)

// DistConfig describes a multi-process distributed run: N cmd/mgrank
// processes on localhost, meshed over TCP.
type DistConfig struct {
	// Binary is the path to a built cmd/mgrank executable.
	Binary string
	// Class is the NPB size class to solve.
	Class nas.Class
	// Ranks is the world size (one process per rank).
	Ranks int
	// Timeout is the per-rank I/O deadline (mgrank -timeout); zero
	// means 30s. The whole run is additionally bounded by twice this
	// plus a launch allowance, so a wedged world returns, not hangs.
	Timeout time.Duration
	// Overlap selects the nonblocking halo exchange (mgrank -overlap);
	// the solve must stay bit-identical to the synchronous path.
	Overlap bool
	// Threads is the per-rank worker-pool width (mgrank -threads);
	// zero or one means serial plane loops.
	Threads int
	// ExtraArgs, when non-nil, appends per-rank flags — fault-injection
	// tests use it to pass -die-after-iter to one rank.
	ExtraArgs func(rank int) []string
}

// DistRank is one rank's observed outcome.
type DistRank struct {
	Rank     int
	ExitCode int
	Stdout   string
	Stderr   string
	// Result is the parsed -json report; nil when the rank exited
	// without one (it died or failed before the solve completed).
	Result *DistResult
}

// DistResult mirrors cmd/mgrank's -json object, including the per-peer
// communication breakdown and histograms.
type DistResult struct {
	Rank          int     `json:"rank"`
	Ranks         int     `json:"np"`
	Class         string  `json:"class"`
	Overlap       bool    `json:"overlap,omitempty"`
	Threads       int     `json:"threads,omitempty"`
	Rnm2          float64 `json:"rnm2"`
	Rnm2Bits      uint64  `json:"rnm2Bits"`
	Rnmu          float64 `json:"rnmu"`
	Verified      bool    `json:"verified"`
	Seconds       float64 `json:"seconds"`
	Messages      uint64  `json:"messages"`
	Bytes         uint64  `json:"bytes"`
	WireBytes     uint64  `json:"wireBytes"`
	ExchangeNanos int64   `json:"exchangeNanos"`

	Peers          []mpi.PeerStat `json:"peers,omitempty"`
	BlockedHist    mpi.Hist       `json:"blockedHist,omitempty"`
	QueueDepthHist mpi.Hist       `json:"queueDepthHist,omitempty"`
}

// RunDistributed launches cfg.Ranks mgrank processes on localhost —
// rank 0 on an ephemeral rendezvous port, the rest joining the address
// it prints — waits for all of them, and returns the per-rank
// outcomes. It errors only on launch-level failures (missing binary,
// no rendezvous address, watchdog expiry); a rank failing its solve is
// reported in its DistRank, which is the point of the fault-injection
// tests.
func RunDistributed(cfg DistConfig) ([]DistRank, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("harness: distributed run needs at least 1 rank, got %d", cfg.Ranks)
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*timeout+60*time.Second)
	defer cancel()

	args := func(rank int) []string {
		a := []string{
			"-rank", fmt.Sprint(rank),
			"-np", fmt.Sprint(cfg.Ranks),
			"-class", string(cfg.Class.Name),
			"-timeout", timeout.String(),
			"-json",
		}
		if rank == 0 {
			a = append(a, "-addr", "127.0.0.1:0")
		}
		if cfg.Overlap {
			a = append(a, "-overlap")
		}
		if cfg.Threads > 1 {
			a = append(a, "-threads", fmt.Sprint(cfg.Threads))
		}
		if cfg.ExtraArgs != nil {
			a = append(a, cfg.ExtraArgs(rank)...)
		}
		return a
	}

	cmds := make([]*exec.Cmd, cfg.Ranks)
	stdouts := make([]*bytes.Buffer, cfg.Ranks)
	stderrs := make([]*bytes.Buffer, cfg.Ranks)

	// Rank 0 first: its stdout leads with "MGRANK LISTEN <addr>", the
	// rendezvous address the other ranks need.
	cmd0 := exec.CommandContext(ctx, cfg.Binary, args(0)...)
	pipe, err := cmd0.StdoutPipe()
	if err != nil {
		return nil, err
	}
	stdouts[0], stderrs[0] = &bytes.Buffer{}, &bytes.Buffer{}
	cmd0.Stderr = stderrs[0]
	if err := cmd0.Start(); err != nil {
		return nil, fmt.Errorf("harness: starting rank 0 (%s): %w", cfg.Binary, err)
	}
	cmds[0] = cmd0
	sc := bufio.NewScanner(pipe)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		if a, ok := strings.CutPrefix(line, "MGRANK LISTEN "); ok {
			addr = a
			break
		}
		stdouts[0].WriteString(line + "\n")
	}
	rest := make(chan struct{})
	go func() {
		defer close(rest)
		io.Copy(stdouts[0], pipe)
	}()
	if addr == "" && cfg.Ranks > 1 {
		cmd0.Process.Kill()
		cmd0.Wait()
		<-rest
		return nil, fmt.Errorf("harness: rank 0 never printed its rendezvous address (stderr: %s)",
			strings.TrimSpace(stderrs[0].String()))
	}

	for rank := 1; rank < cfg.Ranks; rank++ {
		cmd := exec.CommandContext(ctx, cfg.Binary, append(args(rank), "-join", addr)...)
		stdouts[rank], stderrs[rank] = &bytes.Buffer{}, &bytes.Buffer{}
		cmd.Stdout, cmd.Stderr = stdouts[rank], stderrs[rank]
		if err := cmd.Start(); err != nil {
			for r := 0; r < rank; r++ {
				cmds[r].Process.Kill()
				cmds[r].Wait()
			}
			<-rest
			return nil, fmt.Errorf("harness: starting rank %d: %w", rank, err)
		}
		cmds[rank] = cmd
	}

	results := make([]DistRank, cfg.Ranks)
	for rank, cmd := range cmds {
		err := cmd.Wait()
		if rank == 0 {
			<-rest
		}
		res := DistRank{
			Rank:   rank,
			Stdout: stdouts[rank].String(),
			Stderr: stderrs[rank].String(),
		}
		if ee, ok := err.(*exec.ExitError); ok {
			res.ExitCode = ee.ExitCode()
		} else if err != nil {
			res.ExitCode = -1
			res.Stderr += "\n" + err.Error()
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("harness: distributed run exceeded its watchdog (%v): rank %d stderr: %s",
				2*timeout+60*time.Second, rank, strings.TrimSpace(res.Stderr))
		}
		// The JSON report is the last line of stdout (rank 0's LISTEN
		// line was consumed above).
		lines := strings.Split(strings.TrimSpace(res.Stdout), "\n")
		if last := lines[len(lines)-1]; strings.HasPrefix(last, "{") {
			var dr DistResult
			if err := json.Unmarshal([]byte(last), &dr); err == nil {
				res.Result = &dr
			}
		}
		results[rank] = res
	}
	return results, nil
}

// CheckDistributed asserts the acceptance bar of a healthy distributed
// run: every rank exited 0 with a parsed report, every rank passed NPB
// verification, and every rank's rnm2 is bit-identical to the
// in-process channel-transport solve of the same class and rank count.
// It returns the per-rank results for further inspection.
func CheckDistributed(cfg DistConfig) ([]DistRank, error) {
	results, err := RunDistributed(cfg)
	if err != nil {
		return nil, err
	}
	ref := mgmpi.New(cfg.Class, cfg.Ranks)
	ref.Overlap = cfg.Overlap
	ref.Threads = cfg.Threads
	wantRnm2, _ := ref.Run()
	for _, r := range results {
		switch {
		case r.ExitCode != 0:
			return results, fmt.Errorf("rank %d exited %d: %s", r.Rank, r.ExitCode, strings.TrimSpace(r.Stderr))
		case r.Result == nil:
			return results, fmt.Errorf("rank %d produced no JSON report: %q", r.Rank, r.Stdout)
		case !r.Result.Verified:
			return results, fmt.Errorf("rank %d failed NPB verification (rnm2 %v)", r.Rank, r.Result.Rnm2)
		case r.Result.Rnm2Bits != math.Float64bits(wantRnm2):
			return results, fmt.Errorf("rank %d rnm2 %x differs from channel transport %x",
				r.Rank, r.Result.Rnm2, wantRnm2)
		}
	}
	return results, nil
}

// RunFigDist runs the channel-vs-TCP transport comparison for each
// class: the same slab-decomposed solve over the in-process channel
// world and over ranks mgrank processes, reporting message counts,
// payload and wire volume, and the bit-exactness of the result — the
// EXPERIMENTS.md transport table and the CI distributed smoke test.
// With overlap set both worlds run the nonblocking halo exchange,
// which ships the same messages — the volume gate is unchanged.
func RunFigDist(w io.Writer, binary string, classes []nas.Class, ranks int, overlap bool) error {
	mode := ""
	if overlap {
		mode = ", overlapped exchange (-overlap)"
	}
	fmt.Fprintf(w, "Distributed transport comparison — %d ranks, channel (in-process) vs TCP (multi-process)%s\n", ranks, mode)
	fmt.Fprintf(w, "%-8s %-9s %12s %14s %14s %12s\n", "class", "transport", "messages", "payload", "wire", "rnm2")
	for _, class := range classes {
		chanSolver := mgmpi.New(class, ranks)
		chanSolver.Overlap = overlap
		chanRnm2, _ := chanSolver.Run()
		cst := chanSolver.Stats()
		fmt.Fprintf(w, "%-8c %-9s %12d %11.2f MB %14s %12.6e\n",
			class.Name, "channel", cst.Messages, float64(cst.Bytes)/1e6, "—", chanRnm2)

		results, err := CheckDistributed(DistConfig{Binary: binary, Class: class, Ranks: ranks, Overlap: overlap})
		if err != nil {
			return fmt.Errorf("class %c: %w", class.Name, err)
		}
		var msgs, payload, wire uint64
		for _, r := range results {
			msgs += r.Result.Messages
			payload += r.Result.Bytes
			wire += r.Result.WireBytes
		}
		fmt.Fprintf(w, "%-8c %-9s %12d %11.2f MB %11.2f MB %12.6e\n",
			class.Name, "tcp", msgs, float64(payload)/1e6, float64(wire)/1e6, results[0].Result.Rnm2)
		if msgs != cst.Messages || payload != cst.Bytes {
			return fmt.Errorf("class %c: communication volume diverged: tcp %d msgs/%d B, channel %d msgs/%d B",
				class.Name, msgs, payload, cst.Messages, cst.Bytes)
		}
		fmt.Fprintf(w, "  class %c: VERIFICATION SUCCESSFUL on all %d ranks; rnm2 bit-identical to channel transport\n",
			class.Name, ranks)
	}
	fmt.Fprintf(w, "Message counts and payload volume match by construction (same algorithm, same\n")
	fmt.Fprintf(w, "decomposition); TCP additionally pays 20 bytes of framing per message.\n\n")
	return nil
}

// RunFigComm is the FW-3c distributed-observability experiment
// (EXPERIMENTS.md): a traced multi-process TCP solve whose per-rank
// trace files are merged, clock-aligned and analysed. It writes four
// artifacts into outDir —
//
//	rank<N>.jsonl   each rank's raw trace
//	merged.jsonl    their concatenation (mgtrace's input)
//	trace.json      the clock-aligned Perfetto timeline with flow arrows
//	commreport.txt  the skew/overlap report
//
// — and enforces the acceptance gates: the solve stays bit-identical to
// the channel transport with tracing enabled, every send event pairs
// with exactly one recv (matched count == total transport sends), every
// rank's traced blocked time agrees with its transport ExchangeNanos to
// within 5%, and the aligned Perfetto trace validates.
//
// With overlap set the ranks run the nonblocking halo exchange
// (mgrank -overlap): the pairing and bit-identity gates are unchanged,
// but the attribution gate loosens to 5% plus a 2 ms absolute
// allowance — traced send events are stamped at post time, so the
// send-side Wait blocked time appears only in the transport counter.
func RunFigComm(w io.Writer, binary string, class nas.Class, ranks int, overlap bool, outDir string) (metrics.CommReport, error) {
	var rep metrics.CommReport
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return rep, err
	}
	tracePath := func(rank int) string {
		return filepath.Join(outDir, fmt.Sprintf("rank%d.jsonl", rank))
	}
	mode := "synchronous exchange"
	if overlap {
		mode = "overlapped exchange (-overlap)"
	}
	fmt.Fprintf(w, "Distributed observability (FW-3c) — class %c, %d TCP ranks, tracing enabled, %s\n",
		class.Name, ranks, mode)
	results, err := CheckDistributed(DistConfig{
		Binary: binary, Class: class, Ranks: ranks, Overlap: overlap,
		ExtraArgs: func(rank int) []string { return []string{"-trace", tracePath(rank)} },
	})
	if err != nil {
		return rep, fmt.Errorf("traced distributed run: %w", err)
	}
	fmt.Fprintf(w, "solve verified on all ranks; rnm2 bit-identical to channel transport with tracing on\n")

	// Merge the per-rank streams: tolerant per-file reads (a healthy run
	// has no torn tails, but the reader is the same one mgtrace uses),
	// concatenated into one stream for the analysis passes and re-written
	// as merged.jsonl for offline use.
	var events []metrics.Event
	merged, err := os.Create(filepath.Join(outDir, "merged.jsonl"))
	if err != nil {
		return rep, err
	}
	defer merged.Close()
	menc := json.NewEncoder(merged)
	for rank := 0; rank < ranks; rank++ {
		f, err := os.Open(tracePath(rank))
		if err != nil {
			return rep, err
		}
		evs, torn, err := metrics.ReadEventsTolerant(f)
		f.Close()
		if err != nil {
			return rep, fmt.Errorf("rank %d trace: %w", rank, err)
		}
		if torn > 0 {
			return rep, fmt.Errorf("rank %d trace: %d torn trailing line(s) in a run that exited cleanly", rank, torn)
		}
		for _, e := range evs {
			if err := menc.Encode(e); err != nil {
				return rep, err
			}
		}
		events = append(events, evs...)
	}

	rep = metrics.BuildCommReport(events)
	var totalSends uint64
	for _, r := range results {
		totalSends += r.Result.Messages
	}
	if unmatched := rep.UnmatchedSends + rep.UnmatchedRecvs; unmatched > 0 {
		return rep, fmt.Errorf("%d unmatched send/recv pair(s)", unmatched)
	}
	if uint64(rep.Matched) != totalSends {
		return rep, fmt.Errorf("matched %d pairs but the transports counted %d sends", rep.Matched, totalSends)
	}
	fmt.Fprintf(w, "matched %d send/recv pairs == %d transport sends; 0 unmatched\n", rep.Matched, totalSends)

	// Per-rank attribution gate: the traced blocked time (observer spans)
	// must agree with the transport's own ExchangeNanos within 5% — the
	// two clocks bracket the same Send/Recv calls. In overlap mode the
	// traced send events are stamped at post, not at Wait, so the gate
	// additionally tolerates a small absolute gap (the send-side Wait
	// blocked time, which only the transport counter sees).
	slack := int64(0)
	if overlap {
		slack = 2 * int64(time.Millisecond)
	}
	blockedByRank := map[int]int64{}
	for _, l := range rep.Levels {
		blockedByRank[l.Rank] += l.BlockedNanos
	}
	for _, r := range results {
		traced, wire := blockedByRank[r.Rank], r.Result.ExchangeNanos
		diff := traced - wire
		if diff < 0 {
			diff = -diff
		}
		if wire > 0 && float64(diff) > 0.05*float64(wire)+float64(slack) {
			return rep, fmt.Errorf("rank %d: traced blocked time %d ns vs transport ExchangeNanos %d ns (>5%% apart)",
				r.Rank, traced, wire)
		}
		fmt.Fprintf(w, "rank %d blocked-time attribution: traced %.3f ms vs transport %.3f ms (within 5%%)\n",
			r.Rank, float64(traced)/1e6, float64(wire)/1e6)
	}

	ct := metrics.ChromeTraceAligned(events, metrics.OffsetMap(rep.Offsets))
	if err := ct.Validate(); err != nil {
		return rep, fmt.Errorf("aligned Perfetto trace invalid: %w", err)
	}
	pf, err := os.Create(filepath.Join(outDir, "trace.json"))
	if err != nil {
		return rep, err
	}
	enc := json.NewEncoder(pf)
	enc.SetIndent("", " ")
	if err := enc.Encode(ct); err != nil {
		pf.Close()
		return rep, err
	}
	if err := pf.Close(); err != nil {
		return rep, err
	}

	rf, err := os.Create(filepath.Join(outDir, "commreport.txt"))
	if err != nil {
		return rep, err
	}
	rep.WriteText(io.MultiWriter(w, rf))
	if err := rf.Close(); err != nil {
		return rep, err
	}
	fmt.Fprintf(w, "artifacts in %s: rank*.jsonl, merged.jsonl, trace.json (Perfetto), commreport.txt\n\n", outDir)
	return rep, nil
}
