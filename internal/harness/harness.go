// Package harness drives the paper's experiments end to end: it runs the
// three MG implementations, times the NPB-defined benchmark section,
// collects work profiles, feeds them to the SMP simulator, and formats the
// rows/series of every figure in the paper's evaluation (§5):
//
//	Figure 11 — single-processor runtimes of F77, SAC and C per class;
//	Figure 12 — speedups relative to each implementation's own serial
//	            runtime for 1..10 processors;
//	Figure 13 — speedups relative to the fastest serial solution (F77).
//
// It also regenerates the claims stated in the text: the stencil flop
// ablation (T-stencil), the memory-management ablation (T-memmgmt) and
// the code-size comparison (T-codesize). See EXPERIMENTS.md for the
// paper-vs-measured record. cmd/mgbench is the command-line front end.
package harness

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cport"
	"repro/internal/f77"
	"repro/internal/mgmpi"
	"repro/internal/nas"
	"repro/internal/smp"
	"repro/internal/tune"
	wl "repro/internal/withloop"
)

// ImplNames lists the three contestants in the paper's order.
var ImplNames = []string{"F77", "SAC", "C/OpenMP"}

// SACEnv builds the WITH-loop environment the SAC implementation runs in.
// It defaults to the paper's sequential configuration; cmd/mgbench swaps
// it to install a calibrated autotuner plan (-tuneplan) or to attach the
// observability layer (-metrics, -trace).
var SACEnv = wl.Default

// TuneObserver, when non-nil, is installed as the Observer of every tuner
// the harness creates, so plan decisions reach the V-cycle trace
// (cmd/mgbench -trace).
var TuneObserver func(tune.Key, tune.Plan)

// Fig11Row is the measurement of one size class: best-of-repeats seconds
// for the timed benchmark section per implementation, plus verification.
type Fig11Row struct {
	Class    nas.Class
	Seconds  map[string]float64
	Norm     map[string]float64
	Verified map[string]bool
}

// timed runs setup() once (untimed), then body() repeats times, returning
// the minimum duration and the last result.
func timed(repeats int, setup func(), body func() float64) (best time.Duration, norm float64) {
	if repeats < 1 {
		repeats = 1
	}
	best = time.Duration(1<<63 - 1)
	for i := 0; i < repeats; i++ {
		setup()
		start := time.Now()
		norm = body()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, norm
}

// RunFig11 measures the single-processor performance of all three
// implementations for the given classes (paper Fig. 11) and writes the
// table to w. repeats > 1 reports the best run (the NPB convention for
// repeated measurements).
func RunFig11(w io.Writer, classes []nas.Class, repeats int) []Fig11Row {
	var rows []Fig11Row
	fmt.Fprintf(w, "Figure 11 — single processor performance (timed section, best of %d)\n", repeats)
	fmt.Fprintf(w, "%-28s %12s %12s %12s\n", "class", "F77", "SAC", "C/OpenMP")
	for _, class := range classes {
		row := Fig11Row{
			Class:    class,
			Seconds:  map[string]float64{},
			Norm:     map[string]float64{},
			Verified: map[string]bool{},
		}

		fs := f77.New(class)
		d, norm := timed(repeats, func() { fs.Reset() }, func() float64 {
			fs.EvalResid()
			for it := 0; it < class.Iter; it++ {
				fs.MG3P()
				fs.EvalResid()
			}
			rnm2, _ := fs.Norms()
			return rnm2
		})
		row.Seconds["F77"], row.Norm["F77"] = d.Seconds(), norm

		env := SACEnv()
		sb := core.NewBenchmark(class, env)
		d, norm = timed(repeats, func() { sb.Reset() }, func() float64 {
			rnm2, _ := sb.Solve()
			return rnm2
		})
		row.Seconds["SAC"], row.Norm["SAC"] = d.Seconds(), norm

		cs := cport.New(class)
		d, norm = timed(repeats, func() { cs.Reset() }, func() float64 {
			cs.EvalResid()
			for it := 0; it < class.Iter; it++ {
				cs.MG3P()
				cs.EvalResid()
			}
			rnm2, _ := cs.Norms()
			return rnm2
		})
		row.Seconds["C/OpenMP"], row.Norm["C/OpenMP"] = d.Seconds(), norm

		for _, impl := range ImplNames {
			v, ok := class.Verify(row.Norm[impl])
			row.Verified[impl] = v && ok
		}
		fmt.Fprintf(w, "%-28s %11.3fs %11.3fs %11.3fs\n", class.String(),
			row.Seconds["F77"], row.Seconds["SAC"], row.Seconds["C/OpenMP"])
		fmt.Fprintf(w, "%-28s %10.1fM %10.1fM %10.1fM   (Mop/s, NPB metric)\n", "  throughput",
			Mops(class, row.Seconds["F77"]), Mops(class, row.Seconds["SAC"]),
			Mops(class, row.Seconds["C/OpenMP"]))
		fmt.Fprintf(w, "%-28s %12s %11.2fx %11.2fx   (verified: %v %v %v)\n", "  relative to F77", "1.00x",
			row.Seconds["SAC"]/row.Seconds["F77"], row.Seconds["C/OpenMP"]/row.Seconds["F77"],
			row.Verified["F77"], row.Verified["SAC"], row.Verified["C/OpenMP"])
		rows = append(rows, row)
	}
	fmt.Fprintf(w, "Paper shape: F77 fastest; SAC second (paper: +30%% W, +23%% A); C slowest (paper: ~1.5x F77).\n\n")
	return rows
}

// SpeedupSeries is one curve of Figure 12/13.
type SpeedupSeries struct {
	Impl     string
	Class    nas.Class
	Serial   float64   // measured serial seconds of the timed section
	Speedups []float64 // index p-1 → speedup at p processors
}

// CollectProfiles runs each implementation once per class with the probe
// attached and returns the measured work profiles keyed by implementation
// name.
func CollectProfiles(class nas.Class) map[string]smp.Profile {
	out := map[string]smp.Profile{}

	cf := smp.NewCollector("F77", class)
	fs := f77.New(class)
	fs.Probe = cf.Probe
	fs.Run()
	out["F77"] = cf.Profile()

	csac := smp.NewCollector("SAC", class)
	env := SACEnv()
	sb := core.NewBenchmark(class, env)
	sb.Solver.Probe = csac.Probe
	sb.Run()
	out["SAC"] = csac.Profile()

	cc := smp.NewCollector("C/OpenMP", class)
	cs := cport.New(class)
	cs.Probe = cc.Probe
	cs.Run()
	out["C/OpenMP"] = cc.Profile()
	return out
}

// traitsFor maps implementation names to their SMP simulator traits.
func traitsFor(impl string) smp.Traits {
	switch impl {
	case "F77":
		return smp.F77Auto
	case "SAC":
		return smp.SAC
	case "C/OpenMP":
		return smp.OpenMP
	default:
		panic("harness: unknown implementation " + impl)
	}
}

// RunFig12 regenerates Figure 12: per-implementation speedups relative to
// the implementation's own serial runtime, on the simulated SMP.
func RunFig12(w io.Writer, classes []nas.Class, m smp.Machine) []SpeedupSeries {
	var series []SpeedupSeries
	fmt.Fprintf(w, "Figure 12 — speedups relative to own sequential performance (simulated %d-proc SMP)\n", m.MaxProcs)
	for _, class := range classes {
		profiles := CollectProfiles(class)
		fmt.Fprintf(w, "class %c%28s", class.Name, "P=")
		for p := 1; p <= m.MaxProcs; p++ {
			fmt.Fprintf(w, "%6d", p)
		}
		fmt.Fprintln(w)
		for _, impl := range ImplNames {
			prof := profiles[impl]
			s := m.Speedups(prof, traitsFor(impl))
			series = append(series, SpeedupSeries{
				Impl: impl, Class: class,
				Serial:   prof.SerialSeconds(),
				Speedups: s,
			})
			fmt.Fprintf(w, "  %-10s (serial %7.3fs) ", impl, prof.SerialSeconds())
			for _, v := range s {
				fmt.Fprintf(w, "%6.2f", v)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "Paper endpoints at P=10: SAC 5.3 (W) / 7.6 (A); F77-auto 2.8 / 4.0; OpenMP 8.0 / 9.0.\n\n")
	for _, class := range classes {
		var group []SpeedupSeries
		for _, s := range series {
			if s.Class.Name == class.Name {
				group = append(group, s)
			}
		}
		RenderSpeedupChart(w, fmt.Sprintf("Figure 12, class %c", class.Name), group)
	}
	return series
}

// RunFig13 regenerates Figure 13 from Figure 12's series: every curve is
// rebased to the fastest sequential solution in the field — the serial
// Fortran-77 runtime of the same class.
func RunFig13(w io.Writer, series []SpeedupSeries, m smp.Machine) []SpeedupSeries {
	fmt.Fprintf(w, "Figure 13 — speedups relative to sequential Fortran-77 performance\n")
	byClass := map[byte][]SpeedupSeries{}
	var order []byte
	for _, s := range series {
		if _, seen := byClass[s.Class.Name]; !seen {
			order = append(order, s.Class.Name)
		}
		byClass[s.Class.Name] = append(byClass[s.Class.Name], s)
	}
	var out []SpeedupSeries
	for _, name := range order {
		group := byClass[name]
		var f77Serial float64
		for _, s := range group {
			if s.Impl == "F77" {
				f77Serial = s.Serial
			}
		}
		fmt.Fprintf(w, "class %c%28s", name, "P=")
		for p := 1; p <= m.MaxProcs; p++ {
			fmt.Fprintf(w, "%6d", p)
		}
		fmt.Fprintln(w)
		for _, s := range group {
			rebased := SpeedupSeries{Impl: s.Impl, Class: s.Class, Serial: s.Serial}
			factor := f77Serial / s.Serial
			for _, v := range s.Speedups {
				rebased.Speedups = append(rebased.Speedups, v*factor)
			}
			out = append(out, rebased)
			fmt.Fprintf(w, "  %-10s (serial %7.3fs) ", s.Impl, s.Serial)
			for _, v := range rebased.Speedups {
				fmt.Fprintf(w, "%6.2f", v)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "Paper shape: SAC overtakes auto-parallelized F77 (at P=4 in the paper; later here\n")
	fmt.Fprintf(w, "because our serial SAC/F77 gap is larger than the paper's 23%%).\n\n")
	for _, name := range order {
		var group []SpeedupSeries
		for _, s := range out {
			if s.Class.Name == name {
				group = append(group, s)
			}
		}
		RenderSpeedupChart(w, fmt.Sprintf("Figure 13, class %c", name), group)
	}
	return out
}

// MPIStatsRow reports the communication structure of one distributed run.
type MPIStatsRow struct {
	Ranks    int
	Rnm2     float64
	Verified bool
	Messages uint64
	Bytes    uint64
}

// RunMPIStats exercises the future-work MPI comparison: the
// domain-decomposed MG (internal/mgmpi) across rank counts, reporting the
// verification verdict and the communication volume of one full benchmark
// run per configuration.
func RunMPIStats(w io.Writer, class nas.Class, rankCounts []int) []MPIStatsRow {
	fmt.Fprintf(w, "MPI-style domain decomposition (future work §7), class %c\n", class.Name)
	fmt.Fprintf(w, "%14s %14s %10s %12s %14s\n", "proc grid", "rnm2", "verified", "messages", "halo volume")
	var rows []MPIStatsRow
	run := func(label string, s *mgmpi.Solver) {
		rnm2, _ := s.Run()
		verified, _ := class.Verify(rnm2)
		st := s.Stats()
		rows = append(rows, MPIStatsRow{
			Ranks: s.Ranks(), Rnm2: rnm2, Verified: verified,
			Messages: st.Messages, Bytes: st.Bytes,
		})
		fmt.Fprintf(w, "%14s %14.6e %10v %12d %11.2f MB\n",
			label, rnm2, verified, st.Messages, float64(st.Bytes)/1e6)
	}
	for _, ranks := range rankCounts {
		run(fmt.Sprintf("(%d,1,1)", ranks), mgmpi.New(class, ranks))
	}
	// The cube decomposition at the largest slab rank count, for the
	// surface-to-volume comparison (the NPB MPI reference uses 3-D grids).
	if len(rankCounts) > 0 && rankCounts[len(rankCounts)-1] >= 8 {
		run("(2,2,2)", mgmpi.New3D(class, 2, 2, 2))
	}
	fmt.Fprintf(w, "Messages grow with ranks (more halo partners); per-rank volume shrinks\n")
	fmt.Fprintf(w, "(surface-to-volume) — and the 3-D cube decomposition moves less data\n")
	fmt.Fprintf(w, "than the 1-D slab at the same rank count, which is why NPB-MPI uses it.\n\n")
	return rows
}

// CodeSizeRow reports the source volume of one implementation.
type CodeSizeRow struct {
	Impl  string
	Files []string
	Lines int
}

// RunCodeSize regenerates T-codesize: the paper reports the SAC source to
// be "more than an order of magnitude" smaller than the low-level codes.
// It counts non-blank, non-comment lines of the benchmark implementations.
// The SAC-style algorithm is core.go alone — fused.go is the modeled
// output of the SAC compiler's WITH-loop folding, not source a SAC
// programmer writes. The measured Go-level ratio understates the paper's,
// because the original artifacts are ~2000 lines of Fortran-77 (mg.f with
// its own zran3/norms/driver) against ~150 lines of SAC, while our ports
// share the NPB problem spec (internal/nas) and the Go runtime.
func RunCodeSize(w io.Writer, repoRoot string) ([]CodeSizeRow, error) {
	rows := []CodeSizeRow{
		{Impl: "SAC program (paper Figs. 4/6/7 + driver)", Files: []string{"internal/core/core.go"}},
		{Impl: "  sac2c folding output + instrumentation (excluded)", Files: []string{"internal/core/fused.go", "internal/core/observe.go"}},
		{Impl: "F77 reference port", Files: []string{"internal/f77/f77.go"}},
		{Impl: "C/OpenMP port", Files: []string{"internal/cport/cport.go"}},
		{Impl: "shared NPB spec (zran3/comm3/norms)", Files: []string{"internal/nas/nas.go"}},
	}
	fmt.Fprintf(w, "Code size (non-blank, non-comment lines, excluding tests)\n")
	for i := range rows {
		total := 0
		for _, rel := range rows[i].Files {
			n, err := countFileLines(filepath.Join(repoRoot, rel))
			if err != nil {
				return nil, err
			}
			total += n
		}
		rows[i].Lines = total
		fmt.Fprintf(w, "  %-44s %5d lines\n", rows[i].Impl, total)
	}
	fmt.Fprintf(w, "Context: the paper compares ~150 lines of SAC against ~2000 lines of\n")
	fmt.Fprintf(w, "Fortran-77 (mg.f carries its own random numbers, norms and driver, which\n")
	fmt.Fprintf(w, "these ports share via internal/nas), hence its >10x claim.\n\n")
	return rows, nil
}

// countFileLines counts non-blank, non-comment lines of one Go file.
func countFileLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("harness: code size: %w", err)
	}
	defer f.Close()
	total := 0
	sc := bufio.NewScanner(f)
	inBlock := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case inBlock:
			if strings.Contains(line, "*/") {
				inBlock = false
			}
		case line == "" || strings.HasPrefix(line, "//"):
		case strings.HasPrefix(line, "/*"):
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
		default:
			total++
		}
	}
	return total, sc.Err()
}

// RunTune calibrates the per-(kernel, level) autotuner on the SAC
// implementation: it solves the given class repeatedly under a calibrating
// tuner until every loop nest the benchmark executes has settled on a plan
// (or maxSolves is exhausted), prints the chosen schedule, and returns the
// tuner. Calibration never changes results — every candidate plan is
// bit-identical — so the solves double as verification runs. workers <= 0
// selects GOMAXPROCS.
func RunTune(w io.Writer, class nas.Class, workers, maxSolves int) *tune.Tuner {
	env := wl.Parallel(workers)
	defer env.Close()
	tu := tune.New(env.Workers())
	tu.Observer = TuneObserver
	env.Tune = tu
	b := core.NewBenchmark(class, env)
	b.Reset()
	if maxSolves < 1 {
		maxSolves = 1
	}
	start := time.Now()
	solves, rnm2 := 0, 0.0
	for ; solves < maxSolves; solves++ {
		if tu.Settled() && solves > 0 {
			break
		}
		rnm2, _ = b.Solve()
	}
	verified, ok := class.Verify(rnm2)
	fmt.Fprintf(w, "Autotuned schedule — class %c, %d workers (%d solves, %.2fs, settled=%v, verified=%v)\n",
		class.Name, env.Workers(), solves, time.Since(start).Seconds(), tu.Settled(), verified && ok)
	plans := tu.Plans()
	for _, key := range tune.SortedKeys(plans) {
		fmt.Fprintf(w, "  %-20s %s\n", key.String(), plans[key].String())
	}
	fmt.Fprintln(w)
	return tu
}
