package harness

import (
	"strings"
	"testing"

	"repro/internal/nas"
	"repro/internal/perfdb"
	"repro/internal/perfstat"
)

func TestRunPerfSnapshot(t *testing.T) {
	class, err := nas.ClassByName("S")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	snap, err := RunPerf(&sb, []nas.Class{class}, PerfConfig{Samples: 4, Warmup: 1, RepoDir: "../.."})
	if err != nil {
		t.Fatalf("RunPerf: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}

	// All three implementations contribute a whole-benchmark row, and the
	// SAC side is attributed to its fused kernels.
	want := []perfdb.Key{
		{Impl: "SAC", Class: "S", Kernel: perfdb.TotalKernel, Level: class.LT()},
		{Impl: "F77", Class: "S", Kernel: perfdb.TotalKernel, Level: class.LT()},
		{Impl: "C/OpenMP", Class: "S", Kernel: perfdb.TotalKernel, Level: class.LT()},
	}
	rows := map[perfdb.Key]perfdb.Row{}
	sawSubRelax := false
	for _, r := range snap.Rows {
		rows[r.Key()] = r
		if r.Impl == "SAC" && r.Kernel == "subRelax" {
			sawSubRelax = true
		}
		if len(r.Samples) != 4 {
			t.Errorf("row %s has %d samples, want 4", r.Key(), len(r.Samples))
		}
	}
	for _, key := range want {
		if _, ok := rows[key]; !ok {
			t.Errorf("snapshot missing row %s", key)
		}
	}
	if !sawSubRelax {
		t.Error("snapshot has no SAC subRelax kernel rows")
	}

	// The SAC solve row carries the NPB-derived throughput columns.
	solve := rows[want[0]]
	if solve.Points == 0 || solve.GFLOPS <= 0 {
		t.Errorf("SAC solve row lacks derived throughput: %+v", solve)
	}

	// A snapshot compared against itself never alarms.
	cmp := perfdb.Compare(snap, snap, perfstat.Thresholds{Alpha: 0.01, MinRel: 0.10})
	if cmp.HasRegression() {
		t.Error("self-comparison reports a regression")
	}
	for _, r := range cmp.Rows {
		if r.Verdict != perfstat.Indistinguishable {
			t.Errorf("self-comparison row %s verdict %v", r.Key, r.Verdict)
		}
	}

	if !strings.Contains(sb.String(), "Benchmark snapshot") {
		t.Errorf("report header missing:\n%s", sb.String())
	}
}
