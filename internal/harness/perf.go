// The performance-lab driver: repeated-sample benchmark snapshots.
// RunPerf measures every implementation with statistical sampling
// (perfstat), attributes the SAC runs to their (kernel, level) rows via
// the metrics collector, and packages everything as a versioned perfdb
// snapshot — the BENCH_<gitsha>.json record cmd/mgbench -fig perf saves
// and the CI perf gate compares against its checked-in baseline.
package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/cport"
	"repro/internal/f77"
	"repro/internal/metrics"
	"repro/internal/nas"
	"repro/internal/perfdb"
	"repro/internal/perfstat"
)

// PerfConfig tunes the snapshot collection.
type PerfConfig struct {
	// Samples is the recorded solves per (implementation, class)
	// (default 10); Warmup solves are discarded first (default 2).
	Samples int
	Warmup  int
	// RepoDir is where git metadata is collected from (default ".").
	RepoDir string
}

func (c PerfConfig) withDefaults() PerfConfig {
	if c.Samples < 1 {
		c.Samples = 10
	}
	if c.Warmup < 0 {
		c.Warmup = 2
	}
	if c.RepoDir == "" {
		c.RepoDir = "."
	}
	return c
}

// solvePoints is the NPB point count of one timed solve: fine-grid
// points per residual+V-cycle pass, Iter iterations plus the closing
// residual (matching core's "solve" pseudo-kernel row).
func solvePoints(class nas.Class) uint64 {
	n := uint64(class.N)
	return n * n * n * uint64(class.Iter+1)
}

// derive fills a row's throughput columns from the per-point cost model
// of the kernel variant the row measured: the line-buffered backends do
// fewer flops per point than the scalar loops (core.KernelCost), so
// costing them as scalar would overstate their GFLOP/s.
func derive(r *perfdb.Row, points uint64) {
	r.Points = points
	cost := core.KernelCost(r.Kernel, r.Variant)
	if cost.Flops == 0 && cost.Bytes == 0 || r.Median <= 0 || points == 0 {
		return
	}
	nanos := r.Median * 1e9
	r.GFLOPS = float64(points) * cost.Flops / nanos
	r.GBPerSec = float64(points) * cost.Bytes / nanos
}

// RunPerf measures the given classes with repeated sampling and returns
// the snapshot. Per class it collects:
//
//   - SAC: per-(kernel, level) rows from the metrics collector — one
//     sample per solve per row — plus the "solve" pseudo-kernel row;
//   - F77 and C/OpenMP: whole-benchmark "solve" rows (those ports have
//     no kernel instrumentation, matching the paper's treatment of them
//     as opaque reference codes).
//
// Every recorded solve is also a verification run; RunPerf fails if any
// implementation stops verifying, because timings of a wrong answer are
// not worth recording.
func RunPerf(w io.Writer, classes []nas.Class, cfg PerfConfig) (*perfdb.Snapshot, error) {
	cfg = cfg.withDefaults()
	env := SACEnv()
	defer env.Close()
	snap := &perfdb.Snapshot{
		Schema:  perfdb.SchemaVersion,
		Created: time.Now().UTC().Format(time.RFC3339),
		Host:    perfdb.CollectHost(),
		Git:     perfdb.CollectGit(cfg.RepoDir),
		Config:  perfdb.Config{Samples: cfg.Samples, Warmup: cfg.Warmup, Workers: env.Workers()},
		// Calibrate on the same process and CPU set the samples will use,
		// so comparisons can divide out host-speed drift.
		Calibration: perfstat.Calibrate(),
	}
	fmt.Fprintf(w, "Benchmark snapshot — %d samples after %d warm-up solves per implementation\n",
		cfg.Samples, cfg.Warmup)

	for _, class := range classes {
		className := string(class.Name)

		// SAC: per-kernel attribution through the metrics collector. One
		// collector reset per solve turns each solve into one sample per
		// (kernel, level) row.
		collector := metrics.NewCollector(env.Workers())
		env.AttachMetrics(collector)
		b := core.NewBenchmark(class, env)
		b.Reset()
		kernelSamples := map[perfdb.Key][]float64{}
		kernelPoints := map[perfdb.Key]uint64{}
		var rnm2 float64
		var spins []float64
		for i := 0; i < cfg.Warmup+cfg.Samples; i++ {
			collector.Reset()
			rnm2, _ = b.Solve()
			if i < cfg.Warmup {
				continue
			}
			// One calibration spin per recorded solve: the block median
			// tracks the host speed *during* this measurement window.
			spins = append(spins, perfstat.Spin())
			for _, k := range collector.Snapshot().Kernels {
				key := perfdb.Key{Impl: "SAC", Class: className, Kernel: k.Kernel, Level: k.Level}
				kernelSamples[key] = append(kernelSamples[key], k.Seconds())
				kernelPoints[key] = k.Points
			}
		}
		env.AttachMetrics(nil)
		if v, known := class.Verify(rnm2); known && !v {
			return nil, fmt.Errorf("harness: perf: SAC class %s failed verification (rnm2 %.6e)", className, rnm2)
		}
		blockCal := perfstat.Median(perfstat.RejectOutliers(spins))
		for key, samples := range kernelSamples {
			row := perfdb.NewRow(key, samples)
			row.Calibration = blockCal
			// Stamp the backend the (by now warmed-up) tuner runs this
			// kernel with — the variant the recorded samples measured.
			// Kernels without variant dispatch stay unstamped.
			if core.HasVariants(key.Kernel) {
				row.Variant = env.VariantFor(key.Kernel, key.Level)
			}
			derive(&row, kernelPoints[key])
			snap.Rows = append(snap.Rows, row)
		}

		// F77 and C/OpenMP: whole-benchmark rows only.
		refs := []struct {
			impl string
			body func() float64
		}{
			{"F77", func() float64 {
				s := f77.New(class)
				s.Reset()
				s.EvalResid()
				for it := 0; it < class.Iter; it++ {
					s.MG3P()
					s.EvalResid()
				}
				n, _ := s.Norms()
				return n
			}},
			{"C/OpenMP", func() float64 {
				s := cport.New(class)
				s.Reset()
				s.EvalResid()
				for it := 0; it < class.Iter; it++ {
					s.MG3P()
					s.EvalResid()
				}
				n, _ := s.Norms()
				return n
			}},
		}
		for _, ref := range refs {
			var norm float64
			var samples, refSpins []float64
			for i := 0; i < cfg.Warmup+cfg.Samples; i++ {
				start := time.Now()
				norm = ref.body()
				elapsed := time.Since(start).Seconds()
				if i < cfg.Warmup {
					continue
				}
				samples = append(samples, elapsed)
				refSpins = append(refSpins, perfstat.Spin())
			}
			if v, known := class.Verify(norm); known && !v {
				return nil, fmt.Errorf("harness: perf: %s class %s failed verification (rnm2 %.6e)",
					ref.impl, className, norm)
			}
			row := perfdb.NewRow(perfdb.Key{Impl: ref.impl, Class: className,
				Kernel: perfdb.TotalKernel, Level: class.LT()}, samples)
			row.Calibration = perfstat.Median(perfstat.RejectOutliers(refSpins))
			derive(&row, solvePoints(class))
			snap.Rows = append(snap.Rows, row)
		}
	}
	snap.SortRows()
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	writePerfTable(w, snap)
	return snap, nil
}

// writePerfTable prints the per-row summary of a freshly taken snapshot.
func writePerfTable(w io.Writer, snap *perfdb.Snapshot) {
	fmt.Fprintf(w, "%-34s %9s %12s %12s %22s %9s %8s\n",
		"row", "variant", "median ms", "mean ms", "95% CI (ms)", "GFLOP/s", "GB/s")
	for _, r := range snap.Rows {
		ci := fmt.Sprintf("[%.4f, %.4f]", r.CILow*1e3, r.CIHigh*1e3)
		line := fmt.Sprintf("%-34s %9s %12.4f %12.4f %22s", r.Key().String(),
			r.Variant, r.Median*1e3, r.Mean*1e3, ci)
		if r.GFLOPS > 0 || r.GBPerSec > 0 {
			line += fmt.Sprintf(" %9.2f %8.2f", r.GFLOPS, r.GBPerSec)
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "git %s%s, go %s, %d CPUs\n\n", snap.Git.ShortSHA(),
		map[bool]string{true: " (dirty)", false: ""}[snap.Git.Dirty],
		snap.Host.GoVersion, snap.Host.CPUs)
}
