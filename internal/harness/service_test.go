package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/nas"
)

func TestRunServiceClassS(t *testing.T) {
	var buf bytes.Buffer
	rep, err := RunService(&buf, nas.ClassS, ServiceConfig{Clients: 2, Jobs: 3, Hits: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColdSeconds <= 0 || rep.HitP50 <= 0 || rep.JobsPerSec <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.Speedup <= 1 {
		t.Errorf("cache hit (%.3g s) not cheaper than cold solve (%.3g s)", rep.HitP50, rep.ColdSeconds)
	}
	if rep.Stats.Completed == 0 || rep.Stats.CacheHits == 0 {
		t.Errorf("queue stats show no traffic: %+v", rep.Stats)
	}
	out := buf.String()
	for _, want := range []string{"Solver service: class S", "cold solve", "cache hit p50", "saturation"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}
