package harness

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/nas"
	wl "repro/internal/withloop"
)

// HealthRow is the convergence-health summary of one instrumented solve.
type HealthRow struct {
	Class   nas.Class
	Workers int
	Rnm2    float64
	Report  health.Report
}

// RunHealth runs one SAC solve per class with the convergence-health
// monitor (and a metrics collector, for the worker-imbalance gauges)
// attached and writes the verdict table to w. It deliberately does NOT
// reuse RunFig11/RunPerf: those produce the timing numbers the perf gate
// compares, and the monitor's residual fold and NaN sampling — cheap but
// nonzero — must never perturb them.
func RunHealth(w io.Writer, classes []nas.Class, workers int) []HealthRow {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(w, "Convergence health (SAC implementation, %d worker(s))\n", workers)
	fmt.Fprintf(w, "%-22s %10s %12s %12s %10s %9s\n",
		"class", "verdict", "rate", "expected", "imbalance", "verified")
	var rows []HealthRow
	for _, class := range classes {
		collector := metrics.NewCollector(workers)
		monitor := health.New(health.Config{})
		var env *wl.Env
		if workers > 1 {
			env = wl.Parallel(workers)
		} else {
			env = SACEnv()
		}
		env.AttachMetrics(collector)
		env.Health = monitor
		b := core.NewBenchmark(class, env)
		b.Reset()
		rnm2, _ := b.Solve()
		env.Close()

		rep := monitor.Report(collector.Snapshot())
		verified, known := class.Verify(rnm2)
		status := "-"
		if known {
			status = fmt.Sprintf("%t", verified)
		}
		fmt.Fprintf(w, "%-22s %10s %12.4f %12.4f %10.3f %9s\n",
			class, rep.Verdict, rep.ConvergenceRate, rep.ExpectedRate,
			rep.WorkerImbalance, status)
		rows = append(rows, HealthRow{Class: class, Workers: workers, Rnm2: rnm2, Report: rep})
	}
	return rows
}
