package harness

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/nas"
)

// buildMgrank compiles cmd/mgrank into a temp dir once per test that
// needs it.
func buildMgrank(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "mgrank")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/mgrank")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mgrank: %v\n%s", err, out)
	}
	return bin
}

// TestRunDistributed is the distributed smoke test: a 4-rank class-S
// solve across real processes over TCP must pass NPB verification on
// every rank with rnm2 bit-identical to the in-process channel world.
func TestRunDistributed(t *testing.T) {
	bin := buildMgrank(t)
	results, err := CheckDistributed(DistConfig{
		Binary: bin,
		Class:  nas.ClassS,
		Ranks:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Result.Seconds <= 0 {
			t.Errorf("rank %d reported non-positive solve time %v", r.Rank, r.Result.Seconds)
		}
		if r.Result.WireBytes <= r.Result.Bytes && r.Result.Messages > 0 {
			t.Errorf("rank %d wire bytes %d should exceed payload %d (framing)",
				r.Rank, r.Result.WireBytes, r.Result.Bytes)
		}
		// The per-peer breakdown must decompose the aggregates exactly:
		// sent messages sum to the rank's Messages counter.
		if len(r.Result.Peers) == 0 || len(r.Result.BlockedHist) == 0 {
			t.Errorf("rank %d -json report lacks the per-peer breakdown", r.Rank)
			continue
		}
		var sent uint64
		for _, p := range r.Result.Peers {
			sent += p.SentMsgs
		}
		if sent != r.Result.Messages {
			t.Errorf("rank %d per-peer sent %d != Messages %d", r.Rank, sent, r.Result.Messages)
		}
	}
}

// TestRunFigComm is the distributed-observability acceptance test
// (FW-3c): a traced 4-rank class-S TCP solve, merged and analysed. The
// pairing gate (matched == transport sends), the 5% blocked-time
// attribution gate and the Perfetto validation run inside RunFigComm;
// this test additionally checks the artifacts on disk, the CI grep
// phrases, the straggler attribution and the estimator's antisymmetry
// on the real (not synthetic) trace.
func TestRunFigComm(t *testing.T) {
	bin := buildMgrank(t)
	dir := t.TempDir()
	rep, err := RunFigComm(io.Discard, bin, nas.ClassS, 4, false, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != 4 || rep.Matched == 0 || rep.Iterations != nas.ClassS.Iter {
		t.Fatalf("report ranks=%d matched=%d iters=%d", rep.Ranks, rep.Matched, rep.Iterations)
	}
	if len(rep.Iters) != nas.ClassS.Iter {
		t.Fatalf("straggler attribution for %d iterations, want %d", len(rep.Iters), nas.ClassS.Iter)
	}
	for _, it := range rep.Iters {
		if it.Straggler < 0 || it.Straggler > 3 {
			t.Fatalf("iteration %d straggler %d out of range", it.Iter, it.Straggler)
		}
	}
	if rep.OverlapEfficiency < 0 || rep.OverlapEfficiency > 1 {
		t.Fatalf("overlap efficiency %g outside [0,1]", rep.OverlapEfficiency)
	}

	for _, name := range []string{"rank0.jsonl", "rank3.jsonl", "merged.jsonl", "trace.json", "commreport.txt"} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err != nil || fi.Size() == 0 {
			t.Fatalf("artifact %s missing or empty (err %v)", name, err)
		}
	}
	text, err := os.ReadFile(filepath.Join(dir, "commreport.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, phrase := range []string{"unmatched send/recv pairs: 0", "straggler rank"} {
		if !strings.Contains(string(text), phrase) {
			t.Fatalf("commreport.txt missing CI gate phrase %q:\n%s", phrase, text)
		}
	}

	// Antisymmetry on the real trace: every exchanging rank pair's
	// relative offset must negate exactly under swapping.
	mf, err := os.Open(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	events, torn, err := metrics.ReadEventsTolerant(mf)
	if err != nil || torn != 0 {
		t.Fatalf("merged trace: torn=%d err=%v", torn, err)
	}
	pairs, us, ur := metrics.PairComms(events)
	if len(us) != 0 || len(ur) != 0 {
		t.Fatalf("unmatched in merged trace: %d sends, %d recvs", len(us), len(ur))
	}
	exchanged := 0
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			ab, nab := metrics.RelativeOffset(pairs, a, b)
			ba, nba := metrics.RelativeOffset(pairs, b, a)
			if nab != nba {
				t.Fatalf("sample counts differ: rel(%d,%d) n=%d, rel(%d,%d) n=%d", a, b, nab, b, a, nba)
			}
			if nab == 0 {
				continue
			}
			exchanged++
			if ab != -ba {
				t.Fatalf("rel(%d,%d)=%d not antisymmetric with rel(%d,%d)=%d", a, b, ab, b, a, ba)
			}
		}
	}
	if exchanged == 0 {
		t.Fatal("no rank pair exchanged traffic")
	}
}

// TestRunFigCommOverlap runs the same traced distributed experiment
// with the nonblocking overlapped exchange (FW-3d): every gate in
// RunFigComm — bit-identity against the overlapped channel reference,
// pairing, the (relaxed) attribution gate, Perfetto validation — must
// hold, and the report's overlap efficiency must stay well-formed.
func TestRunFigCommOverlap(t *testing.T) {
	bin := buildMgrank(t)
	dir := t.TempDir()
	rep, err := RunFigComm(io.Discard, bin, nas.ClassS, 4, true, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != 4 || rep.Matched == 0 {
		t.Fatalf("report ranks=%d matched=%d", rep.Ranks, rep.Matched)
	}
	if rep.OverlapEfficiency < 0 || rep.OverlapEfficiency > 1 {
		t.Fatalf("overlap efficiency %g outside [0,1]", rep.OverlapEfficiency)
	}
	text, err := os.ReadFile(filepath.Join(dir, "commreport.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "overlap efficiency") {
		t.Fatalf("commreport.txt lacks the overlap efficiency line:\n%s", text)
	}
}

// TestDistributedDeadRank is the fault acceptance test: kill one rank
// mid-solve and every survivor must exit non-zero with an error naming
// the dead rank, within the configured deadline — never a hang.
func TestDistributedDeadRank(t *testing.T) {
	bin := buildMgrank(t)
	const victim = 2
	timeout := 5 * time.Second
	start := time.Now()
	results, err := RunDistributed(DistConfig{
		Binary:  bin,
		Class:   nas.ClassS,
		Ranks:   4,
		Timeout: timeout,
		ExtraArgs: func(rank int) []string {
			if rank == victim {
				return []string{"-die-after-iter", "2"}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Generous bound: detection must come from the abort cascade or a
	// connection reset, not from waiting out a full solve.
	if elapsed := time.Since(start); elapsed > 3*timeout {
		t.Errorf("run took %v, want well under the watchdog (deadline %v)", elapsed, timeout)
	}
	for _, r := range results {
		if r.Rank == victim {
			if r.ExitCode != 3 {
				t.Errorf("victim rank %d exit code = %d, want 3 (deliberate death)", r.Rank, r.ExitCode)
			}
			continue
		}
		if r.ExitCode == 0 {
			t.Errorf("survivor rank %d exited 0 after a peer died mid-solve", r.Rank)
		}
		if !strings.Contains(r.Stderr, fmt.Sprintf("rank %d", victim)) {
			t.Errorf("survivor rank %d stderr does not name the dead rank %d:\n%s", r.Rank, victim, r.Stderr)
		}
	}
}
