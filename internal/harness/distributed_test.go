package harness

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/nas"
)

// buildMgrank compiles cmd/mgrank into a temp dir once per test that
// needs it.
func buildMgrank(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "mgrank")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/mgrank")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mgrank: %v\n%s", err, out)
	}
	return bin
}

// TestRunDistributed is the distributed smoke test: a 4-rank class-S
// solve across real processes over TCP must pass NPB verification on
// every rank with rnm2 bit-identical to the in-process channel world.
func TestRunDistributed(t *testing.T) {
	bin := buildMgrank(t)
	results, err := CheckDistributed(DistConfig{
		Binary: bin,
		Class:  nas.ClassS,
		Ranks:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Result.Seconds <= 0 {
			t.Errorf("rank %d reported non-positive solve time %v", r.Rank, r.Result.Seconds)
		}
		if r.Result.WireBytes <= r.Result.Bytes && r.Result.Messages > 0 {
			t.Errorf("rank %d wire bytes %d should exceed payload %d (framing)",
				r.Rank, r.Result.WireBytes, r.Result.Bytes)
		}
	}
}

// TestDistributedDeadRank is the fault acceptance test: kill one rank
// mid-solve and every survivor must exit non-zero with an error naming
// the dead rank, within the configured deadline — never a hang.
func TestDistributedDeadRank(t *testing.T) {
	bin := buildMgrank(t)
	const victim = 2
	timeout := 5 * time.Second
	start := time.Now()
	results, err := RunDistributed(DistConfig{
		Binary:  bin,
		Class:   nas.ClassS,
		Ranks:   4,
		Timeout: timeout,
		ExtraArgs: func(rank int) []string {
			if rank == victim {
				return []string{"-die-after-iter", "2"}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Generous bound: detection must come from the abort cascade or a
	// connection reset, not from waiting out a full solve.
	if elapsed := time.Since(start); elapsed > 3*timeout {
		t.Errorf("run took %v, want well under the watchdog (deadline %v)", elapsed, timeout)
	}
	for _, r := range results {
		if r.Rank == victim {
			if r.ExitCode != 3 {
				t.Errorf("victim rank %d exit code = %d, want 3 (deliberate death)", r.Rank, r.ExitCode)
			}
			continue
		}
		if r.ExitCode == 0 {
			t.Errorf("survivor rank %d exited 0 after a peer died mid-solve", r.Rank)
		}
		if !strings.Contains(r.Stderr, fmt.Sprintf("rank %d", victim)) {
			t.Errorf("survivor rank %d stderr does not name the dead rank %d:\n%s", r.Rank, victim, r.Stderr)
		}
	}
}
